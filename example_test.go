package deltarepair_test

import (
	"fmt"

	deltarepair "repro"
)

// ExampleRepair demonstrates the minimal end-to-end flow: declare a schema,
// load tuples, parse a delta program, and compute the minimum repair.
func ExampleRepair() {
	schema, _ := deltarepair.ParseSchema(`
		Grant(gid, name)
		AuthGrant:ag(aid, gid)
	`)
	db := deltarepair.NewDatabase(schema)
	db.MustInsert("Grant", deltarepair.Int(2), deltarepair.Str("ERC"))
	db.MustInsert("AuthGrant", deltarepair.Int(4), deltarepair.Int(2))

	prog, _ := deltarepair.ParseProgram(`
		(0) Delta_Grant(g, n) :- Grant(g, n), n = 'ERC'.
		(1) Delta_AuthGrant(a, g) :- AuthGrant(a, g), Delta_Grant(g, n).
	`, schema)

	res, _, _ := deltarepair.Repair(db, prog, deltarepair.Independent)
	fmt.Println(res)
	// Output:
	// independent: 2 tuples deleted {g1, ag1}
}

// ExampleRepairAll contrasts the four semantics on a two-rule program with
// a shared body — the shape where they genuinely diverge (Prop. 3.19 of
// the paper).
func ExampleRepairAll() {
	schema, _ := deltarepair.ParseSchema(`
		R(a)
		S(a)
	`)
	db := deltarepair.NewDatabase(schema)
	db.MustInsert("R", deltarepair.Str("a"))
	db.MustInsert("S", deltarepair.Str("b"))

	prog, _ := deltarepair.ParseProgram(`
		Delta_R(x) :- R(x), S(y).
		Delta_S(y) :- R(x), S(y).
	`, schema)

	results, _ := deltarepair.RepairAll(db, prog)
	for _, sem := range deltarepair.AllSemantics {
		fmt.Printf("%s: %d deleted\n", sem, results[sem].Size())
	}
	// Output:
	// independent: 1 deleted
	// step: 1 deleted
	// stage: 2 deleted
	// end: 2 deleted
}

// ExamplePrepare demonstrates the amortized server-style flow: validate
// and plan the program once, then repair many databases over the same
// schema. Each Repair call reuses the compiled rules, the per-shape join
// plans, and pooled execution state.
func ExamplePrepare() {
	schema, _ := deltarepair.ParseSchema(`
		Dept(id)
		Emp(id, dept)
	`)
	prog, _ := deltarepair.ParseProgram(`
		Delta_Dept(d) :- Dept(d), d > 1.
		Delta_Emp(e, d) :- Emp(e, d), Delta_Dept(d).
	`, schema)
	pp, _ := deltarepair.Prepare(prog, schema) // once per program

	for _, nDepts := range []int{2, 3} { // once per request
		db := deltarepair.NewDatabase(schema)
		for d := 1; d <= nDepts; d++ {
			db.MustInsert("Dept", deltarepair.Int(d))
			db.MustInsert("Emp", deltarepair.Int(10*d), deltarepair.Int(d))
		}
		res, _, _ := pp.Repair(db, deltarepair.Stage)
		fmt.Printf("%d departments: %d deletions\n", nDepts, res.Size())
	}
	// Output:
	// 2 departments: 2 deletions
	// 3 departments: 4 deletions
}

// ExampleDatabase_Freeze shows the recommended serving pattern over one
// large shared base: Prepare once, Freeze once, Fork per request. Each
// fork is an O(changes) copy-on-write working copy sharing the frozen
// storage and warm indexes; forks are independent and safe to repair
// concurrently.
func ExampleDatabase_Freeze() {
	schema, _ := deltarepair.ParseSchema(`
		Dept(id)
		Emp(id, dept)
	`)
	prog, _ := deltarepair.ParseProgram(`
		Delta_Emp(e, d) :- Emp(e, d), Delta_Dept(d).
	`, schema)
	pp, _ := deltarepair.Prepare(prog, schema) // once per program

	db := deltarepair.NewDatabase(schema)
	for d := 1; d <= 3; d++ {
		db.MustInsert("Dept", deltarepair.Int(d))
		db.MustInsert("Emp", deltarepair.Int(10*d), deltarepair.Int(d))
	}
	snap := db.Freeze() // once per base
	deptKeys := db.Relation("Dept").Keys()

	for _, key := range deptKeys[:2] { // once per request
		work := snap.Fork() // O(changes) working copy
		work.DeleteToDelta(key)
		res, _, _ := pp.Repair(work, deltarepair.Stage)
		fmt.Printf("deleting %s cascades to %d employees\n", key, res.Size())
	}
	// Output:
	// deleting Dept(i1) cascades to 1 employees
	// deleting Dept(i2) cascades to 1 employees
}

// ExampleIsStable shows stability checking before and after a repair.
func ExampleIsStable() {
	schema, _ := deltarepair.ParseSchema(`N(v)`)
	db := deltarepair.NewDatabase(schema)
	db.MustInsert("N", deltarepair.Int(1))
	db.MustInsert("N", deltarepair.Int(5))

	prog, _ := deltarepair.ParseProgram(`Delta_N(v) :- N(v), v > 3.`, schema)

	before, _ := deltarepair.IsStable(db, prog)
	_, repaired, _ := deltarepair.Repair(db, prog, deltarepair.Stage)
	after, _ := deltarepair.IsStable(repaired, prog)
	fmt.Println(before, after)
	// Output:
	// false true
}

// ExampleNewExplainer answers "why was this tuple deleted" with a
// derivation chain back to the initiating deletion.
func ExampleNewExplainer() {
	schema, _ := deltarepair.ParseSchema(`
		Grant(gid, name)
		AuthGrant:ag(aid, gid)
	`)
	db := deltarepair.NewDatabase(schema)
	db.MustInsert("Grant", deltarepair.Int(2), deltarepair.Str("ERC"))
	db.MustInsert("AuthGrant", deltarepair.Int(4), deltarepair.Int(2))

	prog, _ := deltarepair.ParseProgram(`
		(0) Delta_Grant(g, n) :- Grant(g, n), n = 'ERC'.
		(1) Delta_AuthGrant(a, g) :- AuthGrant(a, g), Delta_Grant(g, n).
	`, schema)

	res, _, _ := deltarepair.Repair(db, prog, deltarepair.End)
	explainer, _ := deltarepair.NewExplainer(db, prog)
	for _, entry := range explainer.ExplainResult(res) {
		fmt.Print(entry.Explanation)
	}
	// Output:
	// Grant(i2,"ERC") deleted (layer 1)
	// AuthGrant(i4,i2) deleted (layer 2)
	//   after:
	//     Grant(i2,"ERC") deleted (layer 1)
}

// ExampleRepairAfterDeletions models a causal "intervention": the database
// is consistent, the user deletes a tuple, and the program repairs the
// fallout.
func ExampleRepairAfterDeletions() {
	schema, _ := deltarepair.ParseSchema(`
		Emp(id, dept)
		Dept(id)
	`)
	db := deltarepair.NewDatabase(schema)
	db.MustInsert("Dept", deltarepair.Int(1))
	db.MustInsert("Emp", deltarepair.Int(10), deltarepair.Int(1))
	db.MustInsert("Emp", deltarepair.Int(11), deltarepair.Int(1))

	// Cascade: employees of a deleted department are deleted.
	prog, _ := deltarepair.ParseProgram(`
		Delta_Emp(e, d) :- Emp(e, d), Delta_Dept(d).
	`, schema)

	deptKey := db.Relation("Dept").Keys()[0]
	res, _, _ := deltarepair.RepairAfterDeletions(db, prog, []string{deptKey}, deltarepair.Stage)
	fmt.Printf("cascade deleted %d employees\n", res.Size())
	// Output:
	// cascade deleted 2 employees
}
