package programs

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/tpch"
)

// TPCHClass returns the classification of TPC-H program n (1-6): programs
// 1-3 perform cascade deletion, 4-6 mix constraint and cascade behaviour.
func TPCHClass(n int) Class {
	if n >= 1 && n <= 3 {
		return ClassCascade
	}
	return ClassMixed
}

// TPCH returns TPC-H program n (1-6) of Table 2 with constants bound from
// the dataset's key cuts. The paper's abbreviated attribute vectors (X, Y,
// Z) are expanded to the fragment's full attribute lists.
func TPCH(n int, ds *tpch.Dataset) (*datalog.Program, error) {
	if n < 1 || n > 6 {
		return nil, fmt.Errorf("programs: TPC-H program %d out of range 1-6", n)
	}
	src, err := tpchSource(n, ds)
	if err != nil {
		return nil, err
	}
	return datalog.ParseAndValidate(src, tpch.Schema())
}

// TPCHAll returns all 6 TPC-H programs keyed by number.
func TPCHAll(ds *tpch.Dataset) (map[int]*datalog.Program, error) {
	out := make(map[int]*datalog.Program, 6)
	for n := 1; n <= 6; n++ {
		p, err := TPCH(n, ds)
		if err != nil {
			return nil, fmt.Errorf("program T-%d: %w", n, err)
		}
		out[n] = p
	}
	return out, nil
}

// TPCHSource exposes the concrete rule text of program T-n.
func TPCHSource(n int, ds *tpch.Dataset) (string, error) { return tpchSource(n, ds) }

func tpchSource(n int, ds *tpch.Dataset) (string, error) {
	skCut := ds.SuppKeyCut
	okCut := ds.OrderKeyCut
	nation := ds.TargetNation

	switch n {
	case 1:
		return fmt.Sprintf(`
(1) Delta_PartSupp(pk, sk, q) :- PartSupp(pk, sk, q), Supplier(sk, sn, snk), sk < %d.
(2) Delta_LineItem(ok, ln, pk, sk, q) :- LineItem(ok, ln, pk, sk, q), Delta_PartSupp(pk2, sk, q2).
`, skCut), nil
	case 2:
		return fmt.Sprintf(`
(1) Delta_PartSupp(pk, sk, q) :- PartSupp(pk, sk, q), sk < %d.
(2) Delta_LineItem(ok, ln, pk, sk, q) :- LineItem(ok, ln, pk, sk, q), Delta_PartSupp(pk2, sk, q2).
`, skCut), nil
	case 3:
		return fmt.Sprintf(`
(1) Delta_PartSupp(pk, sk, q) :- PartSupp(pk, sk, q), Supplier(sk, sn, snk), Part(pk, pn), sk < %d.
(2) Delta_LineItem(ok, ln, pk, sk, q) :- LineItem(ok, ln, pk, sk, q), Delta_PartSupp(pk2, sk, q2).
`, skCut), nil
	case 4:
		return fmt.Sprintf(`
(1) Delta_LineItem(ok, ln, pk, sk, q) :- LineItem(ok, ln, pk, sk, q), ok < %d.
(2) Delta_Supplier(sk, sn, snk) :- Supplier(sk, sn, snk), Delta_LineItem(ok, ln, pk, sk, q).
(3) Delta_Customer(ck, cn, cnk) :- Customer(ck, cn, cnk), Orders(ok, ck, pr), Delta_LineItem(ok, ln, pk, sk, q).
`, okCut), nil
	case 5:
		return fmt.Sprintf(`
(1) Delta_Nation(nk, nn, rk) :- Nation(nk, nn, rk), nk = %d.
(2) Delta_Supplier(sk, sn, nk) :- Supplier(sk, sn, nk), Delta_Nation(nk, nn, rk), Customer(ck, cn, nk).
(3) Delta_Customer(ck, cn, nk) :- Customer(ck, cn, nk), Delta_Nation(nk, nn, rk), Supplier(sk, sn, nk).
`, nation), nil
	case 6:
		return fmt.Sprintf(`
(1) Delta_Orders(ok, ck, pr) :- Orders(ok, ck, pr), Customer(ck, cn, cnk), ok < %d.
(2) Delta_PartSupp(pk, sk, q) :- PartSupp(pk, sk, q), Supplier(sk, sn, snk), sk < %d.
(3) Delta_LineItem(ok, ln, pk, sk, q) :- LineItem(ok, ln, pk, sk, q), Delta_Orders(ok, ck, pr).
(4) Delta_LineItem(ok, ln, pk, sk, q) :- LineItem(ok, ln, pk, sk, q), Delta_PartSupp(pk2, sk, q2).
`, okCut, skCut), nil
	default:
		return "", fmt.Errorf("programs: TPC-H program %d out of range", n)
	}
}
