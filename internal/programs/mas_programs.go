// Package programs instantiates the paper's evaluation workloads: the 20
// MAS programs of Table 1, the 6 TPC-H programs of Table 2, the four denial
// constraints of the HoloClean comparison (§6), and the running example of
// Figures 1–2. Constants (the paper's C, C1, C2, ...) are bound from
// dataset metadata (hub entities and key cuts).
package programs

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/mas"
)

// Class is the paper's three-way program classification (§6, "Test
// programs").
type Class int

// Program classes.
const (
	// ClassDC mimics integrity constraints such as denial constraints
	// (programs 1-4, 11-15).
	ClassDC Class = iota
	// ClassCascade performs cascade deletion (programs 5, 9, 10, 16-20;
	// TPC-H 1-3).
	ClassCascade
	// ClassMixed mixes both (programs 6-8; TPC-H 4-6).
	ClassMixed
)

// String names the class as in the paper.
func (c Class) String() string {
	switch c {
	case ClassDC:
		return "integrity-constraint"
	case ClassCascade:
		return "cascade-deletion"
	case ClassMixed:
		return "mixed"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// MASClass returns the classification of MAS program n (1-20).
func MASClass(n int) Class {
	switch {
	case n >= 1 && n <= 4, n >= 11 && n <= 15:
		return ClassDC
	case n == 5, n == 9, n == 10, n >= 16 && n <= 20:
		return ClassCascade
	default:
		return ClassMixed
	}
}

// MAS returns MAS program n (1-20) of Table 1, with constants bound from
// the dataset: C1/C = the hub author's name or id (programs 1-3, 5-9),
// the hub organization (4, 10, 16-20), and the hub publication (7).
func MAS(n int, ds *mas.Dataset) (*datalog.Program, error) {
	if n < 1 || n > 20 {
		return nil, fmt.Errorf("programs: MAS program %d out of range 1-20", n)
	}
	src, err := masSource(n, ds)
	if err != nil {
		return nil, err
	}
	return datalog.ParseAndValidate(src, mas.Schema())
}

// MASAll returns all 20 MAS programs keyed by number.
func MASAll(ds *mas.Dataset) (map[int]*datalog.Program, error) {
	out := make(map[int]*datalog.Program, 20)
	for n := 1; n <= 20; n++ {
		p, err := MAS(n, ds)
		if err != nil {
			return nil, fmt.Errorf("program %d: %w", n, err)
		}
		out[n] = p
	}
	return out, nil
}

// MASSource exposes the concrete rule text of program n (for docs, the CLI,
// and tests).
func MASSource(n int, ds *mas.Dataset) (string, error) { return masSource(n, ds) }

func masSource(n int, ds *mas.Dataset) (string, error) {
	authorName := ds.HubAuthorName
	authorID := ds.HubAuthor
	orgID := ds.HubOrg
	pubID := ds.HubPub
	pidCut := ds.NumPublications/2 + 1

	switch n {
	case 1:
		return fmt.Sprintf(`
(1) Delta_Author(aid, n, oid) :- Author(aid, n, oid), n = '%s'.
(2) Delta_Writes(aid, pid) :- Writes(aid, pid), aid = %d.
`, authorName, authorID), nil
	case 2:
		return fmt.Sprintf(`
(1) Delta_Writes(aid, pid) :- Writes(aid, pid), Author(aid, n, oid), aid = %d.
`, authorID), nil
	case 3:
		return fmt.Sprintf(`
(1) Delta_Author(aid, n, oid) :- Writes(aid, pid), Author(aid, n, oid), aid = %d.
(2) Delta_Writes(aid, pid) :- Writes(aid, pid), Author(aid, n, oid), aid = %d.
`, authorID, authorID), nil
	case 4:
		// Paper head "∆A(aid, pid)" normalized to the full Author vector
		// (Def. 3.1); see DESIGN.md §4.
		return fmt.Sprintf(`
(1) Delta_Author(aid, n, oid) :- Organization(oid, n2), Author(aid, n, oid), oid = %d.
(2) Delta_Organization(oid, n2) :- Organization(oid, n2), Author(aid, n, oid), oid = %d.
`, orgID, orgID), nil
	case 5:
		return fmt.Sprintf(`
(1) Delta_Author(aid, n, oid) :- Author(aid, n, oid), n = '%s'.
(2) Delta_Writes(aid, pid) :- Writes(aid, pid), Delta_Author(aid, n, oid).
`, authorName), nil
	case 6:
		return fmt.Sprintf(`
(1) Delta_Author(aid, n, oid) :- Author(aid, n, oid), n = '%s'.
(2) Delta_Writes(aid, pid) :- Writes(aid, pid), Delta_Author(aid, n, oid).
(3) Delta_Publication(pid, t) :- Publication(pid, t), Delta_Writes(aid, pid), Author(aid, n, oid).
`, authorName), nil
	case 7:
		return fmt.Sprintf(`
(1) Delta_Publication(pid, t) :- Publication(pid, t), pid = %d.
(2) Delta_Cite(pid, cited) :- Cite(pid, cited), Delta_Publication(pid, t).
(3) Delta_Cite(citing, pid) :- Cite(citing, pid), Delta_Publication(pid, t).
`, pubID), nil
	case 8:
		return fmt.Sprintf(`
(1) Delta_Author(aid, n, oid) :- Writes(aid, pid), Author(aid, n, oid), aid = %d.
(2) Delta_Writes(aid, pid) :- Writes(aid, pid), Author(aid, n, oid), aid = %d.
(3) Delta_Publication(pid, t) :- Publication(pid, t), Delta_Writes(aid, pid), Author(aid, n, oid).
(4) Delta_Publication(pid, t) :- Publication(pid, t), Writes(aid, pid), Delta_Author(aid, n, oid).
`, authorID, authorID), nil
	case 9:
		return fmt.Sprintf(`
(1) Delta_Author(aid, n, oid) :- Author(aid, n, oid), n = '%s'.
(2) Delta_Writes(aid, pid) :- Writes(aid, pid), Delta_Author(aid, n, oid).
(3) Delta_Publication(pid, t) :- Publication(pid, t), Delta_Writes(aid, pid).
(4) Delta_Cite(pid, cited) :- Cite(pid, cited), Delta_Publication(pid, t), pid < %d.
`, authorName, pidCut), nil
	case 10:
		return fmt.Sprintf(`
(1) Delta_Organization(oid, n2) :- Organization(oid, n2), oid = %d.
(2) Delta_Author(aid, n, oid) :- Author(aid, n, oid), Delta_Organization(oid, n2).
(3) Delta_Writes(aid, pid) :- Writes(aid, pid), Delta_Author(aid, n, oid).
(4) Delta_Publication(pid, t) :- Publication(pid, t), Delta_Writes(aid, pid).
`, orgID), nil
	case 11, 12, 13, 14, 15:
		// Single rule with n-11 extra joins (paper's nested-braces row;
		// body atom P(t, pid) normalized to Publication(pid, t)).
		body := "Cite(pid, c2)"
		if n >= 12 {
			body += ", Publication(pid, t)"
		}
		if n >= 13 {
			body += ", Writes(aid, pid)"
		}
		if n >= 14 {
			body += ", Author(aid, nm, oid)"
		}
		if n >= 15 {
			body += ", Organization(oid, n2)"
		}
		return fmt.Sprintf("(1) Delta_Cite(pid, c2) :- %s.\n", body), nil
	case 16, 17, 18, 19, 20:
		// Cascade chain prefixes (paper's rule tags normalized to
		// prefixes; see DESIGN.md §4).
		rules := []string{
			fmt.Sprintf("(1) Delta_Organization(oid, n2) :- Organization(oid, n2), oid = %d.", orgID),
			"(2) Delta_Author(aid, n, oid) :- Author(aid, n, oid), Delta_Organization(oid, n2).",
			"(3) Delta_Writes(aid, pid) :- Writes(aid, pid), Delta_Author(aid, n, oid).",
			"(4) Delta_Publication(pid, t) :- Publication(pid, t), Delta_Writes(aid, pid).",
			"(5) Delta_Cite(citing, pid) :- Cite(citing, pid), Delta_Publication(pid, t).",
		}
		src := ""
		for i := 0; i < n-15; i++ {
			src += rules[i] + "\n"
		}
		return src, nil
	default:
		return "", fmt.Errorf("programs: MAS program %d out of range", n)
	}
}
