package programs_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/programs"
)

// Golden-file regression tests for the paper's running example (Figures
// 1-2): the expected stabilizing sets of all four semantics plus the
// Table 3 containment flags are committed under testdata/golden and
// compared byte-for-byte, so any semantics regression shows up as a
// reviewable diff rather than a flaky assertion.
//
// Regenerate after an intentional semantics change with:
//
//	WRITE_GOLDEN=1 go test ./internal/programs -run Golden
//
// and review the diff against the paper's Figure 2 discussion before
// committing.

const goldenPath = "testdata/golden/running_example.golden"

// renderGolden produces the canonical text: one block per semantics in
// the paper's presentation order (deterministic Seq-ordered keys), then
// the containment flags.
func renderGolden(results map[core.Semantics]*core.Result) string {
	var b strings.Builder
	b.WriteString("# Running example (Figures 1-2): stabilizing sets per semantics.\n")
	b.WriteString("# Regenerate with WRITE_GOLDEN=1 go test ./internal/programs -run Golden\n")
	for _, sem := range core.AllSemantics {
		res := results[sem]
		fmt.Fprintf(&b, "\n[%s] size=%d optimal=%v\n", sem, res.Size(), res.Optimal)
		for _, key := range res.Keys() {
			fmt.Fprintf(&b, "%s\n", key)
		}
	}
	cont := core.CheckContainment(results)
	b.WriteString("\n[containment] # Table 3 row for the running example\n")
	fmt.Fprintf(&b, "step_eq_stage=%v\n", cont.StepEqStage)
	fmt.Fprintf(&b, "ind_in_stage=%v\n", cont.IndInStage)
	fmt.Fprintf(&b, "ind_in_step=%v\n", cont.IndInStep)
	fmt.Fprintf(&b, "stage_in_end=%v\n", cont.StageInEnd)
	fmt.Fprintf(&b, "step_in_end=%v\n", cont.StepInEnd)
	fmt.Fprintf(&b, "ind_le_step=%v\n", cont.IndLeStep)
	fmt.Fprintf(&b, "ind_le_stage=%v\n", cont.IndLeStage)
	return b.String()
}

func TestRunningExampleGolden(t *testing.T) {
	db := programs.RunningExampleDB()
	// Validate against db's own schema object so prepared execution
	// accepts it (RunningExampleProgram builds a fresh schema).
	prog, err := datalog.ParseAndValidate(programs.RunningExampleSource, db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	results := make(map[core.Semantics]*core.Result, len(core.AllSemantics))
	for _, sem := range core.AllSemantics {
		res, _, err := core.Run(db, prog, sem)
		if err != nil {
			t.Fatalf("%s: %v", sem, err)
		}
		results[sem] = res
	}
	got := renderGolden(results)

	if os.Getenv("WRITE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with WRITE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("running example results drifted from %s.\ngot:\n%s\nwant:\n%s\nIf the change is intentional, regenerate with WRITE_GOLDEN=1 and review the diff.",
			goldenPath, got, want)
	}
}

// TestRunningExampleGoldenPaperFacts cross-checks the committed golden
// content against facts the paper states directly, so the golden file
// cannot silently drift to a wrong-but-stable state: rule (0) always
// deletes the ERC grant, end semantics deletes the most, and the repair
// sizes respect Prop. 3.20.
func TestRunningExampleGoldenPaperFacts(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with WRITE_GOLDEN=1): %v", err)
	}
	content := string(data)
	for _, want := range []string{
		`Grant(i2,"ERC")`, // rule (0): the ERC grant dies under every semantics
		"[independent]",   // all four blocks present
		"[step]", "[stage]", "[end]",
		"stage_in_end=true",
		"step_in_end=true",
		"ind_le_step=true",
		"ind_le_stage=true",
	} {
		if !strings.Contains(content, want) {
			t.Errorf("golden file missing %q", want)
		}
	}
}
