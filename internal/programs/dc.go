package programs

import (
	"fmt"
	"math/rand"

	"repro/internal/datalog"
	"repro/internal/engine"
)

// The HoloClean comparison (§6) runs on a single extended Author table
// Author(aid, name, oid, organization) with four denial constraints,
// expressed as delta rules that simulate DC semantics:
//
//	DC1: no two tuples with the same aid and different oid
//	DC2: no two tuples with the same aid and different name
//	DC3: no two tuples with the same aid and different organization
//	DC4: no two tuples with the same oid and different organization
//
// Equality predicates are inlined as shared variables (a1 = a2 becomes a
// single variable), which is semantically identical and joins efficiently.

// DCSchema returns the single-table schema of the HoloClean comparison.
func DCSchema() *engine.Schema {
	s := engine.NewSchema()
	s.MustAddRelation("Author", "a", "aid", "name", "oid", "organization")
	return s
}

// DCSource is the delta-rule text of DC1-DC4.
const DCSource = `
(DC1) Delta_Author(a, n1, o1, on1) :- Author(a, n1, o1, on1), Author(a, n2, o2, on2), o1 != o2.
(DC2) Delta_Author(a, n1, o1, on1) :- Author(a, n1, o1, on1), Author(a, n2, o2, on2), n1 != n2.
(DC3) Delta_Author(a, n1, o1, on1) :- Author(a, n1, o1, on1), Author(a, n2, o2, on2), on1 != on2.
(DC4) Delta_Author(a1, n1, o, on1) :- Author(a1, n1, o, on1), Author(a2, n2, o, on2), on1 != on2.
`

// DCs returns the four denial constraints as a validated delta program.
func DCs() (*datalog.Program, error) {
	return datalog.ParseAndValidate(DCSource, DCSchema())
}

// DCByIndex returns a program holding only DC i (1-4), for per-constraint
// violation counting (Table 5).
func DCByIndex(i int) (*datalog.Program, error) {
	p, err := DCs()
	if err != nil {
		return nil, err
	}
	if i < 1 || i > len(p.Rules) {
		return nil, fmt.Errorf("programs: DC index %d out of range 1-%d", i, len(p.Rules))
	}
	single := datalog.NewProgram(p.Rules[i-1])
	if err := single.Validate(DCSchema()); err != nil {
		return nil, err
	}
	return single, nil
}

// CleanAuthorTable generates a DC-consistent Author table of the given
// size: aids unique, names functionally determined by aid, organization
// name functionally determined by oid. numOrgs controls the oid domain.
func CleanAuthorTable(rows, numOrgs int, seed int64) *engine.Database {
	rng := rand.New(rand.NewSource(seed))
	db := engine.NewDatabase(DCSchema())
	if numOrgs < 1 {
		numOrgs = 1
	}
	for aid := 1; aid <= rows; aid++ {
		oid := 1 + rng.Intn(numOrgs)
		db.MustInsert("Author",
			engine.Int(aid),
			engine.Str(fmt.Sprintf("name%d", aid)),
			engine.Int(oid),
			engine.Str(fmt.Sprintf("org%d", oid)),
		)
	}
	return db
}

// ErrorKind enumerates the cell corruptions InjectErrors applies.
type ErrorKind int

// The three corruption shapes, chosen to trip different DCs.
const (
	// ErrDuplicateAid overwrites a row's aid with another row's aid,
	// violating DC1-DC3 against that row.
	ErrDuplicateAid ErrorKind = iota
	// ErrWrongOrgName overwrites a row's organization name, violating DC4
	// against every other member of the org (and DC3 if aid duplicated).
	ErrWrongOrgName
	// ErrBoth applies both corruptions to the same row.
	ErrBoth
)

// InjectErrors corrupts n distinct rows of a clean Author table in place,
// cycling through the three error kinds (the mix drives the over-deletion
// growth of Table 4). It returns the keys of the corrupted tuples.
// Corruption replaces tuples (delete + insert), so set semantics hold.
func InjectErrors(db *engine.Database, n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	authors := db.Relation("Author")
	tuples := authors.Tuples()
	rows := len(tuples)
	if n > rows/2 {
		n = rows / 2
	}
	perm := rng.Perm(rows)
	var corrupted []string
	used := make(map[int]bool, 2*n)

	for i, injected := 0, 0; injected < n && i < rows; i++ {
		victimIdx := perm[i]
		if used[victimIdx] {
			continue
		}
		victim := tuples[victimIdx]
		// Pick a distinct donor row whose aid the victim may copy.
		donorIdx := rng.Intn(rows)
		for donorIdx == victimIdx || used[donorIdx] {
			donorIdx = rng.Intn(rows)
		}
		donor := tuples[donorIdx]
		used[victimIdx], used[donorIdx] = true, true

		vals := append([]engine.Value(nil), victim.Vals...)
		// Typo values carry the victim's aid so two typos in one org stay
		// distinct: the minimum repair then always deletes the corrupted
		// rows themselves, keeping |Ind| = #errors (Table 4's baseline).
		typo := func(s string) engine.Value {
			return engine.Str(fmt.Sprintf("%s_typo%d", s, victim.Vals[0].Int))
		}
		switch ErrorKind(injected % 3) {
		case ErrDuplicateAid:
			vals[0] = donor.Vals[0]
		case ErrWrongOrgName:
			vals[3] = typo(vals[3].Str)
		case ErrBoth:
			vals[0] = donor.Vals[0]
			vals[3] = typo(vals[3].Str)
		}
		newKey := engine.ContentKey("Author", vals)
		if authors.Contains(newKey) {
			continue // corruption would collapse into an existing tuple
		}
		authors.Delete(victim.Key())
		nt, err := db.Insert("Author", vals...)
		if err != nil {
			panic(err)
		}
		corrupted = append(corrupted, nt.Key())
		injected++
	}
	return corrupted
}
