package programs

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/mas"
	"repro/internal/tpch"
)

func tinyMAS(t *testing.T) *mas.Dataset {
	t.Helper()
	return mas.Generate(mas.Config{Scale: 0.01, Seed: 11})
}

func tinyTPCH(t *testing.T) *tpch.Dataset {
	t.Helper()
	return tpch.Generate(tpch.Config{Scale: 0.01, Seed: 11})
}

func TestAllMASProgramsValidate(t *testing.T) {
	ds := tinyMAS(t)
	ps, err := MASAll(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 20 {
		t.Fatalf("got %d programs, want 20", len(ps))
	}
	// Rule counts per Table 1 (with the 16-20 prefix normalization).
	wantRules := map[int]int{
		1: 2, 2: 1, 3: 2, 4: 2, 5: 2, 6: 3, 7: 3, 8: 4, 9: 4, 10: 4,
		11: 1, 12: 1, 13: 1, 14: 1, 15: 1, 16: 1, 17: 2, 18: 3, 19: 4, 20: 5,
	}
	for n, want := range wantRules {
		if got := len(ps[n].Rules); got != want {
			t.Errorf("program %d: %d rules, want %d", n, got, want)
		}
	}
	if _, err := MAS(0, ds); err == nil {
		t.Error("program 0 should be rejected")
	}
	if _, err := MAS(21, ds); err == nil {
		t.Error("program 21 should be rejected")
	}
}

func TestAllTPCHProgramsValidate(t *testing.T) {
	ds := tinyTPCH(t)
	ps, err := TPCHAll(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 6 {
		t.Fatalf("got %d programs, want 6", len(ps))
	}
	wantRules := map[int]int{1: 2, 2: 2, 3: 2, 4: 3, 5: 3, 6: 4}
	for n, want := range wantRules {
		if got := len(ps[n].Rules); got != want {
			t.Errorf("program T-%d: %d rules, want %d", n, got, want)
		}
	}
	if _, err := TPCH(0, ds); err == nil {
		t.Error("program T-0 should be rejected")
	}
	if _, err := TPCH(7, ds); err == nil {
		t.Error("program T-7 should be rejected")
	}
}

func TestProgramClasses(t *testing.T) {
	wantDC := []int{1, 2, 3, 4, 11, 12, 13, 14, 15}
	for _, n := range wantDC {
		if MASClass(n) != ClassDC {
			t.Errorf("program %d should be DC-class, got %v", n, MASClass(n))
		}
	}
	wantCascade := []int{5, 9, 10, 16, 17, 18, 19, 20}
	for _, n := range wantCascade {
		if MASClass(n) != ClassCascade {
			t.Errorf("program %d should be cascade-class, got %v", n, MASClass(n))
		}
	}
	for _, n := range []int{6, 7, 8} {
		if MASClass(n) != ClassMixed {
			t.Errorf("program %d should be mixed-class, got %v", n, MASClass(n))
		}
	}
	for n := 1; n <= 3; n++ {
		if TPCHClass(n) != ClassCascade {
			t.Errorf("T-%d should be cascade-class", n)
		}
	}
	for n := 4; n <= 6; n++ {
		if TPCHClass(n) != ClassMixed {
			t.Errorf("T-%d should be mixed-class", n)
		}
	}
	if ClassDC.String() == "" || ClassCascade.String() == "" || ClassMixed.String() == "" || Class(9).String() == "" {
		t.Error("class names must render")
	}
}

// TestProgram4Semantics checks the paper's program-4 story: end and stage
// delete the organization plus all its authors, step and independent delete
// a single tuple.
func TestProgram4Semantics(t *testing.T) {
	ds := tinyMAS(t)
	p, err := MAS(4, ds)
	if err != nil {
		t.Fatal(err)
	}
	end, _, err := core.RunEnd(ds.DB, p)
	if err != nil {
		t.Fatal(err)
	}
	if end.Size() != ds.HubOrgAuthors+1 {
		t.Fatalf("end size = %d, want %d (org + its authors)", end.Size(), ds.HubOrgAuthors+1)
	}
	step, _, err := core.RunStepGreedy(ds.DB, p)
	if err != nil {
		t.Fatal(err)
	}
	if step.Size() != 1 || step.Deleted[0].Rel != "Organization" {
		t.Fatalf("step = %v, want single Organization tuple", step.Keys())
	}
	ind, _, err := core.RunIndependent(ds.DB, p, core.IndependentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ind.Size() != 1 {
		t.Fatalf("ind size = %d, want 1", ind.Size())
	}
}

// TestProgram2IndependentNotContained checks the Table 3 story for program
// 2: Ind deletes the single Author tuple, which is not derivable, so
// Ind ⊄ Stage and Ind ⊄ Step.
func TestProgram2IndependentNotContained(t *testing.T) {
	ds := tinyMAS(t)
	p, err := MAS(2, ds)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := core.RunAll(ds.DB, p)
	if err != nil {
		t.Fatal(err)
	}
	ind := rs[core.SemIndependent]
	if ind.Size() != 1 || ind.Deleted[0].Rel != "Author" {
		t.Fatalf("ind = %v, want the single hub Author tuple", ind.Keys())
	}
	c := core.CheckContainment(rs)
	if c.IndInStage || c.IndInStep {
		t.Fatalf("Ind should not be contained for program 2: %+v", c)
	}
	if !c.StepEqStage {
		t.Fatalf("Step = Stage should hold for program 2: %+v", c)
	}
	// Stage/end delete the hub author's Writes tuples.
	if rs[core.SemStage].Size() != ds.HubAuthorWrites {
		t.Fatalf("stage size = %d, want %d", rs[core.SemStage].Size(), ds.HubAuthorWrites)
	}
}

// TestProgram8SeparatesStepAndStage checks the Prop. 3.20-based design of
// program 8: step and stage produce same-size but different results.
func TestProgram8SeparatesStepAndStage(t *testing.T) {
	ds := tinyMAS(t)
	p, err := MAS(8, ds)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := core.RunAll(ds.DB, p)
	if err != nil {
		t.Fatal(err)
	}
	c := core.CheckContainment(rs)
	if c.StepEqStage {
		t.Fatalf("program 8 must separate step from stage: step=%v stage=%v",
			rs[core.SemStep].Keys(), rs[core.SemStage].Keys())
	}
	// Stage = author + writes; step = author + publications.
	stageBy := rs[core.SemStage].ByRelation()
	stepBy := rs[core.SemStep].ByRelation()
	if stageBy["Publication"] != 0 {
		t.Fatalf("stage should not delete publications: %v", stageBy)
	}
	if stepBy["Publication"] == 0 || stepBy["Writes"] != 0 {
		t.Fatalf("step should delete publications, not writes: %v", stepBy)
	}
}

// TestPrograms16To20Cascade: all four semantics coincide on the pure
// cascade chain, growing with the prefix length (Figure 6c's shape).
func TestPrograms16To20Cascade(t *testing.T) {
	ds := tinyMAS(t)
	prevEnd := -1
	for n := 16; n <= 20; n++ {
		p, err := MAS(n, ds)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := core.RunAll(ds.DB, p)
		if err != nil {
			t.Fatalf("program %d: %v", n, err)
		}
		end := rs[core.SemEnd]
		for _, sem := range []core.Semantics{core.SemStage, core.SemStep, core.SemIndependent} {
			if !rs[sem].SameSet(end) {
				t.Fatalf("program %d: %s (%d tuples) differs from end (%d)",
					n, sem, rs[sem].Size(), end.Size())
			}
		}
		if end.Size() < prevEnd {
			t.Fatalf("program %d: cascade shrank: %d < %d", n, end.Size(), prevEnd)
		}
		prevEnd = end.Size()
	}
}

// TestPrograms11To15IndependentShrinks: with more joins, independent
// semantics can shift deletions to smaller join partners (Figure 6b).
func TestPrograms11To15IndependentShrinks(t *testing.T) {
	ds := tinyMAS(t)
	var endSizes, indSizes []int
	for n := 11; n <= 15; n++ {
		p, err := MAS(n, ds)
		if err != nil {
			t.Fatal(err)
		}
		end, _, err := core.RunEnd(ds.DB, p)
		if err != nil {
			t.Fatal(err)
		}
		ind, _, err := core.RunIndependent(ds.DB, p, core.IndependentOptions{MaxNodes: 200000})
		if err != nil {
			t.Fatal(err)
		}
		endSizes = append(endSizes, end.Size())
		indSizes = append(indSizes, ind.Size())
	}
	// Program 11 deletes every Cite tuple under both.
	if indSizes[0] != endSizes[0] {
		t.Fatalf("program 11: ind %d != end %d", indSizes[0], endSizes[0])
	}
	// By program 15 the independent result must be strictly smaller.
	if indSizes[4] >= endSizes[4] {
		t.Fatalf("program 15: ind %d should beat end %d", indSizes[4], endSizes[4])
	}
	// Non-increasing from 12 on (the paper's observed trend).
	for i := 1; i < len(indSizes); i++ {
		if indSizes[i] > indSizes[i-1] {
			t.Fatalf("ind sizes should not grow with joins: %v", indSizes)
		}
	}
}

func TestRunningExampleProgramFixture(t *testing.T) {
	db := RunningExampleDB()
	p, err := RunningExampleProgram()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := core.RunAll(db, p)
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[core.Semantics]int{
		core.SemIndependent: 3, core.SemStep: 5, core.SemStage: 7, core.SemEnd: 8,
	}
	for sem, want := range sizes {
		if rs[sem].Size() != want {
			t.Fatalf("%s size = %d, want %d", sem, rs[sem].Size(), want)
		}
	}
}

func TestDCProgram(t *testing.T) {
	p, err := DCs()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 4 {
		t.Fatalf("DC rules = %d, want 4", len(p.Rules))
	}
	for i := 1; i <= 4; i++ {
		single, err := DCByIndex(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(single.Rules) != 1 {
			t.Fatalf("DCByIndex(%d) rules = %d", i, len(single.Rules))
		}
	}
	if _, err := DCByIndex(0); err == nil {
		t.Error("DC 0 should be rejected")
	}
	if _, err := DCByIndex(5); err == nil {
		t.Error("DC 5 should be rejected")
	}
	if !strings.Contains(DCSource, "o1 != o2") {
		t.Error("DC1 inequality missing")
	}
}

func TestCleanAuthorTableIsStable(t *testing.T) {
	db := CleanAuthorTable(200, 10, 1)
	p, err := DCs()
	if err != nil {
		t.Fatal(err)
	}
	stable, err := core.CheckStable(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Fatal("clean table must satisfy all DCs")
	}
	if db.Relation("Author").Len() != 200 {
		t.Fatalf("rows = %d, want 200", db.Relation("Author").Len())
	}
}

func TestInjectErrorsCreatesViolations(t *testing.T) {
	db := CleanAuthorTable(300, 10, 1)
	corrupted := InjectErrors(db, 30, 2)
	if len(corrupted) != 30 {
		t.Fatalf("injected %d errors, want 30", len(corrupted))
	}
	if db.Relation("Author").Len() != 300 {
		t.Fatalf("rows changed: %d", db.Relation("Author").Len())
	}
	p, err := DCs()
	if err != nil {
		t.Fatal(err)
	}
	stable, err := core.CheckStable(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if stable {
		t.Fatal("corrupted table must violate some DC")
	}
	// Each corrupted key must exist in the table.
	for _, k := range corrupted {
		if !db.Relation("Author").Contains(k) {
			t.Fatalf("corrupted key %s missing", k)
		}
	}
	// Independent semantics repairs with roughly one deletion per error
	// (it may need slightly more when donor rows themselves conflict).
	ind, _, err := core.RunIndependent(db, p, core.IndependentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ind.Size() < 25 || ind.Size() > 45 {
		t.Fatalf("ind repairs %d deletions for 30 errors", ind.Size())
	}
}

func TestInjectErrorsDeterministic(t *testing.T) {
	a := CleanAuthorTable(100, 5, 3)
	b := CleanAuthorTable(100, 5, 3)
	ka := InjectErrors(a, 10, 9)
	kb := InjectErrors(b, 10, 9)
	if len(ka) != len(kb) {
		t.Fatal("determinism broken: different counts")
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("determinism broken at %d: %s vs %s", i, ka[i], kb[i])
		}
	}
}

// TestMASSourceRoundTrip: every program's source reparses to itself.
func TestMASSourceRoundTrip(t *testing.T) {
	ds := tinyMAS(t)
	for n := 1; n <= 20; n++ {
		src, err := MASSource(n, ds)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := datalog.Parse(src); err != nil {
			t.Fatalf("program %d source does not reparse: %v", n, err)
		}
	}
	for n := 1; n <= 6; n++ {
		tds := tinyTPCH(t)
		src, err := TPCHSource(n, tds)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := datalog.Parse(src); err != nil {
			t.Fatalf("program T-%d source does not reparse: %v", n, err)
		}
	}
}

// TestTPCHProgramsSmoke runs all semantics on a tiny TPC-H instance and
// checks basic stabilization plus the T-5 step-vs-stage separation the
// paper reports (step deletes the smaller of suppliers/customers).
func TestTPCHProgramsSmoke(t *testing.T) {
	ds := tinyTPCH(t)
	for n := 1; n <= 6; n++ {
		p, err := TPCH(n, ds)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := core.RunAll(ds.DB, p)
		if err != nil {
			t.Fatalf("T-%d: %v", n, err)
		}
		for sem, res := range rs {
			if ok, err := core.IsStabilizing(ds.DB, p, res.Keys()); err != nil || !ok {
				t.Fatalf("T-%d %s: not stabilizing (%v)", n, sem, err)
			}
		}
		c := core.CheckContainment(rs)
		if !c.StageInEnd || !c.StepInEnd || !c.IndLeStage {
			t.Fatalf("T-%d: containment violated: %+v", n, c)
		}
	}
	// T-5: both nation-cascade rules share a body; step picks the cheaper
	// side, so Step ≤ Stage and typically strictly smaller.
	p5, _ := TPCH(5, ds)
	rs, err := core.RunAll(ds.DB, p5)
	if err != nil {
		t.Fatal(err)
	}
	if rs[core.SemStep].Size() > rs[core.SemStage].Size() {
		t.Fatalf("T-5: step %d > stage %d", rs[core.SemStep].Size(), rs[core.SemStage].Size())
	}
	_ = engine.Int(0) // keep engine import for the helper below
}
