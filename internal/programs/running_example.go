package programs

import (
	"repro/internal/datalog"
	"repro/internal/engine"
)

// RunningExampleSchema returns the academic schema of Figure 1.
func RunningExampleSchema() *engine.Schema {
	s := engine.NewSchema()
	s.MustAddRelation("Grant", "g", "gid", "name")
	s.MustAddRelation("AuthGrant", "ag", "aid", "gid")
	s.MustAddRelation("Author", "a", "aid", "name")
	s.MustAddRelation("Writes", "w", "aid", "pid")
	s.MustAddRelation("Pub", "p", "pid", "title")
	s.MustAddRelation("Cite", "c", "citing", "cited")
	return s
}

// RunningExampleDB returns the database instance D of Figure 1.
func RunningExampleDB() *engine.Database {
	db := engine.NewDatabase(RunningExampleSchema())
	db.MustInsert("Grant", engine.Int(1), engine.Str("NSF"))
	db.MustInsert("Grant", engine.Int(2), engine.Str("ERC"))
	db.MustInsert("AuthGrant", engine.Int(2), engine.Int(1))
	db.MustInsert("AuthGrant", engine.Int(4), engine.Int(2))
	db.MustInsert("AuthGrant", engine.Int(5), engine.Int(2))
	db.MustInsert("Author", engine.Int(2), engine.Str("Maggie"))
	db.MustInsert("Author", engine.Int(4), engine.Str("Marge"))
	db.MustInsert("Author", engine.Int(5), engine.Str("Homer"))
	db.MustInsert("Cite", engine.Int(7), engine.Int(6))
	db.MustInsert("Writes", engine.Int(4), engine.Int(6))
	db.MustInsert("Writes", engine.Int(5), engine.Int(7))
	db.MustInsert("Pub", engine.Int(6), engine.Str("x"))
	db.MustInsert("Pub", engine.Int(7), engine.Str("y"))
	return db
}

// RunningExampleSource is the delta program of Figure 2.
const RunningExampleSource = `
(0) Delta_Grant(g, n) :- Grant(g, n), n = 'ERC'.
(1) Delta_Author(a, n) :- Author(a, n), AuthGrant(a, g), Delta_Grant(g, gn).
(2) Delta_Pub(p, t) :- Pub(p, t), Writes(a, p), Delta_Author(a, n).
(3) Delta_Writes(a, p) :- Pub(p, t), Writes(a, p), Delta_Author(a, n).
(4) Delta_Cite(c, p) :- Cite(c, p), Delta_Pub(p, t), Writes(a1, c), Writes(a2, p).
`

// RunningExampleProgram returns the validated delta program of Figure 2.
func RunningExampleProgram() (*datalog.Program, error) {
	return datalog.ParseAndValidate(RunningExampleSource, RunningExampleSchema())
}
