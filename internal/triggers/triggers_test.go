package triggers

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/mas"
	"repro/internal/programs"
)

func tinyMAS(t *testing.T) *mas.Dataset {
	t.Helper()
	return mas.Generate(mas.Config{Scale: 0.01, Seed: 11})
}

func masProgram(t *testing.T, ds *mas.Dataset, n int) *datalog.Program {
	t.Helper()
	p, err := programs.MAS(n, ds)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileClassifiesStatementsAndTriggers(t *testing.T) {
	ds := tinyMAS(t)
	p := masProgram(t, ds, 5) // rule 1: condition; rule 2: cascade on Author
	trigs, err := Compile(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(trigs) != 2 {
		t.Fatalf("triggers = %d, want 2", len(trigs))
	}
	if !trigs[0].IsStatement() {
		t.Fatal("rule 1 should compile to a statement")
	}
	if trigs[1].IsStatement() || trigs[1].EventRel != "Author" {
		t.Fatalf("rule 2 should be an AFTER DELETE ON Author trigger, got %+v", trigs[1])
	}
}

func TestCompileRejectsMultiDeltaRules(t *testing.T) {
	s := engine.NewSchema()
	s.MustAddRelation("R", "r", "a")
	s.MustAddRelation("S", "s", "a")
	p, err := datalog.ParseAndValidate(`
Delta_R(x) :- R(x), Delta_S(x), Delta_R(y), x != y.
`, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(p, nil); err == nil {
		t.Fatal("multi-delta rule should not compile to a trigger")
	}
}

func TestCompileNameValidation(t *testing.T) {
	ds := tinyMAS(t)
	p := masProgram(t, ds, 5)
	if _, err := Compile(p, []string{"only_one"}); err == nil {
		t.Fatal("wrong name count should error")
	}
	trigs, err := Compile(p, []string{"b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if trigs[0].Name != "b" || trigs[1].Name != "a" {
		t.Fatal("explicit names not applied")
	}
	// Unvalidated rules are rejected.
	raw := datalog.MustParse("Delta_R(x) :- R(x).")
	if _, err := Compile(raw, nil); err == nil {
		t.Fatal("unvalidated program should not compile")
	}
}

// TestProgram4OrderAnomaly reproduces the paper's program-4 observation:
// with the Author-deleting statement ordered first (PostgreSQL alphabetical
// order on names), all Author tuples of the organization are deleted and
// the Organization tuple survives; with the Organization statement first
// (MySQL creation order in this arrangement), one Organization tuple is
// deleted and the authors survive.
func TestProgram4OrderAnomaly(t *testing.T) {
	ds := tinyMAS(t)
	p := masProgram(t, ds, 4)
	// Rule 0 deletes Authors, rule 1 deletes the Organization. Name them so
	// the Author statement sorts first alphabetically, while creation order
	// starts with the Organization statement.
	reordered := datalog.NewProgram(p.Rules[1], p.Rules[0]) // org first by creation
	if err := reordered.Validate(mas.Schema()); err != nil {
		t.Fatal(err)
	}
	trigs, err := Compile(reordered, []string{"z_delete_org", "a_delete_authors"})
	if err != nil {
		t.Fatal(err)
	}

	pg, pgDB, err := Execute(ds.DB, trigs, Alphabetical)
	if err != nil {
		t.Fatal(err)
	}
	// Alphabetical: a_delete_authors first -> all hub-org authors die, the
	// org statement then finds no matching author and deletes nothing.
	if pg.Size() != ds.HubOrgAuthors {
		t.Fatalf("PostgreSQL-order deleted %d tuples, want %d authors", pg.Size(), ds.HubOrgAuthors)
	}
	if pgDB.Relation("Organization").Len() != ds.NumOrganizations {
		t.Fatal("PostgreSQL-order should keep the Organization tuple")
	}

	my, myDB, err := Execute(ds.DB, trigs, CreationOrder)
	if err != nil {
		t.Fatal(err)
	}
	// Creation order: z_delete_org first -> one Organization tuple dies,
	// the author statement then finds no organization and deletes nothing.
	if my.Size() != 1 {
		t.Fatalf("MySQL-order deleted %d tuples, want 1 organization", my.Size())
	}
	if myDB.Relation("Author").Len() != ds.NumAuthors {
		t.Fatal("MySQL-order should keep all authors")
	}

	// The paper's point: step semantics achieves the size-1 repair
	// regardless of naming or creation order.
	step, _, err := core.RunStepGreedy(ds.DB, p)
	if err != nil {
		t.Fatal(err)
	}
	if step.Size() != 1 {
		t.Fatalf("step size = %d, want 1", step.Size())
	}
}

// TestProgram8CreationOrderDependence reproduces the MySQL observation:
// with the Author rule created before the Writes rule, the author and its
// publications are deleted; reversed, the writes and publications are.
func TestProgram8CreationOrderDependence(t *testing.T) {
	ds := tinyMAS(t)
	p := masProgram(t, ds, 8)

	// Original creation order: rule1 (Author), rule2 (Writes), cascades 3, 4.
	trigs, err := Compile(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	authorFirst, _, err := Execute(ds.DB, trigs, CreationOrder)
	if err != nil {
		t.Fatal(err)
	}
	byRel := map[string]int{}
	for _, tup := range authorFirst.Deleted {
		byRel[tup.Rel]++
	}
	if byRel["Author"] != 1 || byRel["Publication"] == 0 || byRel["Writes"] != 0 {
		t.Fatalf("author-first: deleted %v, want author + its publications", byRel)
	}

	// Reversed creation order of the two statements: Writes deleted first;
	// the Author statement then fails (its body needs a live Writes tuple),
	// and rule 3 cascades to the publications.
	reversed := datalog.NewProgram(p.Rules[1], p.Rules[0], p.Rules[2], p.Rules[3])
	if err := reversed.Validate(mas.Schema()); err != nil {
		t.Fatal(err)
	}
	trigs2, err := Compile(reversed, nil)
	if err != nil {
		t.Fatal(err)
	}
	writesFirst, _, err := Execute(ds.DB, trigs2, CreationOrder)
	if err != nil {
		t.Fatal(err)
	}
	byRel2 := map[string]int{}
	for _, tup := range writesFirst.Deleted {
		byRel2[tup.Rel]++
	}
	if byRel2["Writes"] == 0 || byRel2["Publication"] == 0 || byRel2["Author"] != 0 {
		t.Fatalf("writes-first: deleted %v, want writes + publications", byRel2)
	}
}

// TestProgram5TriggersMatchSemantics: for the pure cascade program 5, the
// trigger result equals all four semantics (the paper's observation).
func TestProgram5TriggersMatchSemantics(t *testing.T) {
	ds := tinyMAS(t)
	p := masProgram(t, ds, 5)
	trigs, err := Compile(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []Policy{Alphabetical, CreationOrder} {
		res, _, err := Execute(ds.DB, trigs, pol)
		if err != nil {
			t.Fatal(err)
		}
		endRes, _, err := core.RunEnd(ds.DB, p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Size() != endRes.Size() {
			t.Fatalf("%v: trigger result %d != semantics %d", pol, res.Size(), endRes.Size())
		}
	}
}

// TestProgram20TriggersMatchSemantics: the deep cascade chain also agrees
// with the four semantics (paper: "the same number of tuples were deleted
// by the PostgreSQL triggers as for the four semantics").
func TestProgram20TriggersMatchSemantics(t *testing.T) {
	ds := tinyMAS(t)
	p := masProgram(t, ds, 20)
	trigs, err := Compile(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, triggeredDB, err := Execute(ds.DB, trigs, Alphabetical)
	if err != nil {
		t.Fatal(err)
	}
	endRes, _, err := core.RunEnd(ds.DB, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != endRes.Size() {
		t.Fatalf("trigger result %d != end semantics %d", res.Size(), endRes.Size())
	}
	// The trigger-repaired database is stable w.r.t. the program.
	stable, err := core.CheckStable(triggeredDB, p)
	if err != nil || !stable {
		t.Fatalf("trigger result should stabilize the cascade program: %v %v", stable, err)
	}
	if res.Fired["t0_Organization"] != 1 {
		t.Fatalf("firing counts missing: %v", res.Fired)
	}
}

// TestExecuteDoesNotMutateInput verifies clone semantics and determinism.
func TestExecuteDoesNotMutateInput(t *testing.T) {
	ds := tinyMAS(t)
	before := ds.DB.TotalTuples()
	p := masProgram(t, ds, 10)
	trigs, err := Compile(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := Execute(ds.DB, trigs, Alphabetical)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Execute(ds.DB, trigs, Alphabetical)
	if err != nil {
		t.Fatal(err)
	}
	if ds.DB.TotalTuples() != before || ds.DB.TotalDeltaTuples() != 0 {
		t.Fatal("Execute mutated the input database")
	}
	if a.Size() != b.Size() {
		t.Fatalf("nondeterministic execution: %d vs %d", a.Size(), b.Size())
	}
	ka, kb := a.Keys(), b.Keys()
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("deletion order differs at %d", i)
		}
	}
	if Alphabetical.String() == "" || CreationOrder.String() == "" || Policy(9).String() == "" {
		t.Fatal("policy names must render")
	}
}
