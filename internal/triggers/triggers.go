// Package triggers simulates the SQL-trigger implementation of delta
// programs the paper compares against (§6, "Comparison with Triggers"):
// "after delete, delete" row-level triggers plus initial DELETE statements,
// under the two firing-order policies the paper contrasts —
// PostgreSQL fires same-event triggers alphabetically by name, MySQL in
// creation order.
//
// The model: a delta rule with no delta body atom becomes an initial DELETE
// statement (it fires against the starting state); a rule with exactly one
// delta body atom becomes an AFTER DELETE trigger on that atom's relation,
// fired once per deleted row with the row bound to the delta atom. Each
// statement's deletions cascade immediately (depth-first), as in the row-by-
// row behaviour of real engines. Unlike the paper's four semantics, the
// outcome depends on trigger names/creation order — which is exactly the
// anomaly the comparison demonstrates.
package triggers

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/datalog"
	"repro/internal/engine"
)

// Policy selects the firing order among triggers on the same event.
type Policy int

// Firing-order policies.
const (
	// Alphabetical fires triggers in name order (PostgreSQL).
	Alphabetical Policy = iota
	// CreationOrder fires triggers in the order they were created (MySQL).
	CreationOrder
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Alphabetical:
		return "alphabetical (PostgreSQL)"
	case CreationOrder:
		return "creation-order (MySQL)"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Trigger is one compiled trigger or initial statement.
type Trigger struct {
	// Name orders the trigger under the Alphabetical policy.
	Name string
	// Created orders the trigger under the CreationOrder policy.
	Created int
	// Rule is the underlying delta rule.
	Rule *datalog.Rule
	// EventRel is the relation whose row deletions fire this trigger;
	// empty for initial statements (rules without delta body atoms).
	EventRel string
	// deltaIdx is the body index of the event's delta atom (-1 for
	// statements).
	deltaIdx int
}

// IsStatement reports whether this is an initial DELETE statement rather
// than an event trigger.
func (t *Trigger) IsStatement() bool { return t.EventRel == "" }

// Compile translates a delta program into triggers and statements. Rules
// must have at most one delta body atom (a SQL trigger reacts to a single
// event); names default to "t<created>_<head relation>" when names is nil,
// otherwise names[i] names the trigger of rule i.
func Compile(p *datalog.Program, names []string) ([]*Trigger, error) {
	if names != nil && len(names) != len(p.Rules) {
		return nil, fmt.Errorf("triggers: %d names for %d rules", len(names), len(p.Rules))
	}
	var out []*Trigger
	for i, r := range p.Rules {
		if r.SelfIdx < 0 {
			return nil, fmt.Errorf("triggers: rule %d not validated", i)
		}
		deltaIdx, eventRel := -1, ""
		for bi, a := range r.Body {
			if a.Delta {
				if deltaIdx >= 0 {
					return nil, fmt.Errorf("triggers: rule %d has multiple delta atoms; not expressible as a single SQL trigger", i)
				}
				deltaIdx = bi
				eventRel = a.Rel
			}
		}
		name := fmt.Sprintf("t%d_%s", i, r.Head.Rel)
		if names != nil {
			name = names[i]
		}
		out = append(out, &Trigger{
			Name:     name,
			Created:  i,
			Rule:     r,
			EventRel: eventRel,
			deltaIdx: deltaIdx,
		})
	}
	return out, nil
}

// ExecResult reports a trigger execution.
type ExecResult struct {
	// Deleted is the deleted tuple set in deletion order.
	Deleted []*engine.Tuple
	// Fired counts firings (with ≥1 deletion) per trigger name.
	Fired map[string]int
	// Elapsed is the wall-clock execution time.
	Elapsed time.Duration
}

// Size returns the number of deleted tuples.
func (r *ExecResult) Size() int { return len(r.Deleted) }

// Keys returns deleted tuple keys in deletion order.
func (r *ExecResult) Keys() []string {
	out := make([]string, len(r.Deleted))
	for i, t := range r.Deleted {
		out[i] = t.Key()
	}
	return out
}

// executor carries the run state.
type executor struct {
	work    *engine.Database
	byEvent map[string][]*Trigger
	res     *ExecResult
	guard   int // deletion budget: no run can delete more tuples than exist

	// prepared evaluation state: one plan set for the trigger rules, one
	// reusable execution context (execution is strictly sequential).
	prepOf map[*Trigger]*datalog.PreparedRule
	ctx    *datalog.ExecContext
}

// Execute runs the trigger system: initial statements in policy order, each
// deletion cascading through AFTER DELETE triggers (depth-first row-by-row,
// same-event triggers ordered by policy). Returns the execution report and
// the final database. The input database is not modified.
func Execute(db *engine.Database, trigs []*Trigger, policy Policy) (*ExecResult, *engine.Database, error) {
	ordered := append([]*Trigger(nil), trigs...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if policy == Alphabetical {
			if ordered[i].Name != ordered[j].Name {
				return ordered[i].Name < ordered[j].Name
			}
			return ordered[i].Created < ordered[j].Created
		}
		return ordered[i].Created < ordered[j].Created
	})

	ex := &executor{
		work:    db.Fork(),
		byEvent: make(map[string][]*Trigger),
		res:     &ExecResult{Fired: make(map[string]int)},
		guard:   db.TotalTuples() + 1,
	}
	for _, t := range ordered {
		if !t.IsStatement() {
			ex.byEvent[t.EventRel] = append(ex.byEvent[t.EventRel], t)
		}
	}

	// Prepare the trigger rules once per execution: statements run on the
	// operational plan, event triggers on the seminaive pass plan whose
	// frontier is the single event row (indexes build lazily — execution is
	// strictly sequential).
	rules := make([]*datalog.Rule, len(trigs))
	for i, t := range trigs {
		rules[i] = t.Rule
	}
	prep, err := datalog.Prepare(datalog.NewProgram(rules...), db.Schema)
	if err != nil {
		return nil, nil, err
	}
	ex.prepOf = make(map[*Trigger]*datalog.PreparedRule, len(trigs))
	for i, t := range trigs {
		ex.prepOf[t] = prep.Rules[i]
	}
	ex.ctx = prep.AcquireContext()
	defer prep.ReleaseContext(ex.ctx)

	start := time.Now()
	for _, t := range ordered {
		if !t.IsStatement() {
			continue
		}
		if err := ex.runStatement(t); err != nil {
			return nil, nil, err
		}
	}
	ex.res.Elapsed = time.Since(start)
	return ex.res, ex.work, nil
}

// runStatement executes an initial DELETE statement: evaluate the rule
// against the current state, delete every matched head, then cascade.
func (ex *executor) runStatement(t *Trigger) error {
	heads, err := ex.matchHeads(t, nil)
	if err != nil {
		return err
	}
	if len(heads) > 0 {
		ex.res.Fired[t.Name]++
	}
	return ex.deleteAndCascade(heads)
}

// matchHeads evaluates the trigger's rule; for event triggers, the delta
// atom is bound to exactly the event row (FOR EACH ROW semantics).
func (ex *executor) matchHeads(t *Trigger, eventRow *engine.Tuple) ([]*engine.Tuple, error) {
	pr := ex.prepOf[t]
	var heads []*engine.Tuple
	seen := make(map[engine.TupleID]bool)
	collect := func(asn *datalog.Assignment) bool {
		h := asn.Head()
		if !seen[h.TID] {
			seen[h.TID] = true
			heads = append(heads, h)
		}
		return true
	}
	if t.IsStatement() {
		// Statements have no delta body atoms: the operational plan reads
		// only live base relations.
		err := pr.EvalOperational(ex.work, ex.ctx, collect)
		return heads, err
	}
	// Event trigger: the single delta atom is seminaive pass 0's frontier,
	// holding exactly the deleted row; the pass plan seeds the join there.
	sources := make([]datalog.AtomSource, len(t.Rule.Body))
	for i, a := range t.Rule.Body {
		if i == t.deltaIdx {
			single := engine.NewScratchRelation(a.Rel, len(eventRow.Vals))
			single.Insert(eventRow)
			sources[i] = datalog.AtomSource{single}
		} else {
			sources[i] = datalog.AtomSource{ex.work.Relation(a.Rel)}
		}
	}
	err := pr.EvalPass(0, sources, ex.ctx, collect)
	return heads, err
}

// deleteAndCascade removes the rows and fires AFTER DELETE triggers per
// row, depth-first.
func (ex *executor) deleteAndCascade(rows []*engine.Tuple) error {
	for _, row := range rows {
		if !ex.work.Relation(row.Rel).ContainsTuple(row) {
			continue // already deleted by an earlier cascade
		}
		if len(ex.res.Deleted) >= ex.guard {
			return fmt.Errorf("triggers: cascade deleted more tuples than the database holds")
		}
		ex.work.DeleteTupleToDelta(row)
		ex.res.Deleted = append(ex.res.Deleted, row)
		for _, t := range ex.byEvent[row.Rel] {
			heads, err := ex.matchHeads(t, row)
			if err != nil {
				return err
			}
			if len(heads) > 0 {
				ex.res.Fired[t.Name]++
			}
			if err := ex.deleteAndCascade(heads); err != nil {
				return err
			}
		}
	}
	return nil
}
