package cqa

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/programs"
	"repro/internal/sideeffect"
)

func runningExample(t *testing.T) (*engine.Database, *core.RepairSpace) {
	t.Helper()
	db := programs.RunningExampleDB()
	p, err := programs.RunningExampleProgram()
	if err != nil {
		t.Fatal(err)
	}
	space, err := core.EnumerateRepairs(db, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !space.Optimal {
		t.Fatal("running example should enumerate within budget")
	}
	// Brute-force agreement below compares against exactly the enumerated
	// repairs, so completeness is not required — but the example's space
	// is small enough that k=8 exhausts it.
	return db, space
}

// bruteAnswers re-evaluates the view on each materialized repair and
// intersects/unions the row keys — the definitionally correct certain and
// possible answers over the enumerated set.
func bruteAnswers(t *testing.T, db *engine.Database, v *sideeffect.View, space *core.RepairSpace) (certain, possible map[string]bool) {
	t.Helper()
	certain = nil
	possible = make(map[string]bool)
	for _, res := range space.Repairs {
		work := db.Fork()
		for _, tp := range res.Deleted {
			if !work.DeleteTupleToDelta(tp) {
				t.Fatalf("repair tuple %s not deletable", tp.Key())
			}
		}
		rows, err := v.Eval(work)
		if err != nil {
			t.Fatal(err)
		}
		keys := make(map[string]bool, len(rows))
		for _, row := range rows {
			keys[row.Key()] = true
			possible[row.Key()] = true
		}
		if certain == nil {
			certain = keys
		} else {
			for k := range certain {
				if !keys[k] {
					delete(certain, k)
				}
			}
		}
	}
	return certain, possible
}

func keySet(rows [][]engine.Value) map[string]bool {
	out := make(map[string]bool, len(rows))
	for _, vals := range rows {
		r := sideeffect.Row{Values: vals}
		out[r.Key()] = true
	}
	return out
}

func TestAnswerAgreesWithBruteForce(t *testing.T) {
	db, space := runningExample(t)
	queries := []string{
		// Unary over a relation every repair prunes differently.
		"Q(a) :- Writes(a, p).",
		// Join crossing two repaired relations.
		"Q(a, t) :- Writes(a, p), Pub(p, t).",
		// Untouched relation: everything stays certain.
		"Q(a, g) :- AuthGrant(a, g).",
		// Join with an untouched relation.
		"Q(n) :- Author(a, n), AuthGrant(a, g), Grant(g, gn).",
		// Comparison predicate.
		"Q(g) :- Grant(g, n), g > 1.",
	}
	for _, src := range queries {
		v, err := sideeffect.ParseView(src, db.Schema)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		ans, err := Answer(db, v, space)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		wantCertain, wantPossible := bruteAnswers(t, db, v, space)
		if got := keySet(ans.Certain); !reflect.DeepEqual(got, wantCertain) {
			t.Errorf("%s: certain = %v, brute force %v", src, got, wantCertain)
		}
		if got := keySet(ans.Possible); !reflect.DeepEqual(got, wantPossible) {
			t.Errorf("%s: possible = %v, brute force %v", src, got, wantPossible)
		}
		// Structural sanity: certain ⊆ possible, and both orders are
		// deterministic re-running the same classification.
		if len(ans.Certain) > len(ans.Possible) {
			t.Errorf("%s: more certain than possible answers", src)
		}
		again, err := Answer(db, v, space)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ans, again) {
			t.Errorf("%s: classification not deterministic", src)
		}
	}
}

func TestAnswerForcedAndUntouchableRows(t *testing.T) {
	// Grant(2, 'ERC') matches the self-referential rule (0), so every
	// repair deletes it: the row is neither certain nor possible. Grant(1,
	// 'NSF') appears in no stability clause, so no set-minimal repair can
	// delete it: the row is certain.
	db, space := runningExample(t)
	v, err := sideeffect.ParseView("Q(g, n) :- Grant(g, n).", db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := Answer(db, v, space)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Certain) != 1 || len(ans.Possible) != 1 {
		t.Fatalf("Grant rows: certain %d possible %d, want 1/1", len(ans.Certain), len(ans.Possible))
	}
	if got := ans.Certain[0][1].Str; got != "NSF" {
		t.Fatalf("surviving grant = %q, want NSF", got)
	}
	if ans.Columns != 2 || ans.Repairs != space.K() {
		t.Fatalf("answer metadata = %+v", ans)
	}
}

func TestAnswerPossibleNotCertain(t *testing.T) {
	// The running example's minimal repairs differ on which Writes/Author
	// tuples go, so some Writes-derived answers must be possible-only.
	db, space := runningExample(t)
	if space.K() < 2 {
		t.Skip("space collapsed to one repair; nothing to distinguish")
	}
	v, err := sideeffect.ParseView("Q(a, p) :- Writes(a, p).", db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := Answer(db, v, space)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Possible) == len(ans.Certain) {
		t.Fatalf("expected possible-only answers across %d distinct repairs: certain %d possible %d",
			space.K(), len(ans.Certain), len(ans.Possible))
	}
}
