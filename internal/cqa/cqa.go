// Package cqa answers conjunctive queries consistently across a space of
// repairs: an answer is *certain* when it holds in every repair and
// *possible* when it holds in at least one (the classical consistent
// query answering notions, evaluated Molinaro–Chomicki-style over a
// compact representation of the repair space instead of materializing and
// re-querying each repair).
//
// The representation is core.RepairSpace's per-tuple deletion mask: bit i
// says repair i deletes the tuple. The query is evaluated once over the
// unrepaired database — every repair is a subset of it, so the witnesses
// found there cover every repair — and each witness's survival mask is the
// complement of the OR of its tuples' deletion masks. An answer row's mask
// is the OR over its witnesses: all-ones means certain, nonzero means
// possible. One evaluation pass classifies against all k repairs at once.
package cqa

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sideeffect"
)

// Answers reports the consistent answers of one conjunctive query against
// a repair space. All classifications are relative to the space's
// enumerated repairs: when Complete is false, unenumerated repairs may
// exist, making Certain an over-approximation (a further repair could
// break an answer) and Possible an under-approximation of the answers
// over the full space.
type Answers struct {
	// Columns is the query head arity.
	Columns int
	// Certain lists the rows derivable in every repair, in first-derived
	// order (deterministic for a given database).
	Certain [][]engine.Value
	// Possible lists the rows derivable in at least one repair — certain
	// rows included — in the same order.
	Possible [][]engine.Value
	// Repairs is the number of repairs classified against.
	Repairs int
	// Complete and Optimal mirror the repair space's flags.
	Complete bool
	Optimal  bool
}

// Answer evaluates the conjunctive view over db (the unrepaired instance
// the space was enumerated from, or any fork of the same snapshot version:
// tuple identities must match the space's masks) and classifies every
// answer row as certain and/or possible across the space's repairs.
func Answer(db *engine.Database, v *sideeffect.View, space *core.RepairSpace) (*Answers, error) {
	rows, err := v.Eval(db)
	if err != nil {
		return nil, err
	}
	full := space.FullMask()
	ans := &Answers{
		Columns:  len(v.HeadVars),
		Repairs:  space.K(),
		Complete: space.Complete,
		Optimal:  space.Optimal,
	}
	for _, row := range rows {
		// live accumulates the repairs in which *some* witness survives
		// intact; a witness dies in exactly the repairs deleting any of
		// its tuples.
		var live uint64
		for _, w := range row.Witnesses {
			var dead uint64
			for _, tp := range w {
				dead |= space.DeletedMask(tp.TID)
			}
			live |= full &^ dead
			if live == full {
				break
			}
		}
		if live == 0 {
			continue
		}
		ans.Possible = append(ans.Possible, row.Values)
		if live == full {
			ans.Certain = append(ans.Certain, row.Values)
		}
	}
	return ans, nil
}
