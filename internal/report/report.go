// Package report renders a full repair analysis as Markdown: database
// statistics, violation witnesses, all four semantics' repairs with
// per-relation breakdowns and timings, the containment relationships
// (Table 3 form), and sample deletion explanations. It is the "what would
// each semantics do to my database" document a database administrator
// would want before choosing a repair policy — the decision the paper
// argues admins must make (§1).
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/engine"
)

// Options tunes report generation.
type Options struct {
	// Title heads the report; empty means a default.
	Title string
	// MaxExplained bounds the number of per-semantics example explanations
	// (0 means 3).
	MaxExplained int
	// Independent forwards Algorithm 1 options.
	Independent core.IndependentOptions
}

// Generate runs all four semantics and writes the Markdown report. The
// input database is not modified.
func Generate(w io.Writer, db *engine.Database, p *datalog.Program, opts Options) error {
	title := opts.Title
	if title == "" {
		title = "Delta-rule repair report"
	}
	maxExplained := opts.MaxExplained
	if maxExplained <= 0 {
		maxExplained = 3
	}

	fmt.Fprintf(w, "# %s\n\n", title)

	// Database overview.
	fmt.Fprintf(w, "## Database\n\n")
	fmt.Fprintf(w, "| Relation | Live tuples | Already deleted |\n|---|---|---|\n")
	for _, st := range db.Stats() {
		fmt.Fprintf(w, "| %s | %d | %d |\n", st.Name, st.Live, st.Deleted)
	}
	fmt.Fprintf(w, "\nTotal: %d live tuples.\n\n", db.TotalTuples())

	// Program and stability.
	fmt.Fprintf(w, "## Program\n\n```prolog\n%s\n```\n\n", p.String())
	stable, err := core.CheckStable(db, p)
	if err != nil {
		return err
	}
	if stable {
		fmt.Fprintf(w, "The database is **stable**: no rule has a satisfying assignment, no repair is needed.\n")
		return nil
	}
	witness, err := core.FirstViolation(db, p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "The database is **unstable**. First violation witness:\n\n")
	fmt.Fprintf(w, "    %s\n\n", witness)

	// Run everything.
	results := make(map[core.Semantics]*core.Result, 4)
	for _, sem := range core.AllSemantics {
		res, _, err := core.RunWith(db, p, sem, core.Options{Independent: opts.Independent})
		if err != nil {
			return fmt.Errorf("%s: %w", sem, err)
		}
		results[sem] = res
	}

	// Side-by-side summary.
	fmt.Fprintf(w, "## Repairs\n\n")
	fmt.Fprintf(w, "| Semantics | Deleted | Optimal proven | Rounds/Layers | Time |\n|---|---|---|---|---|\n")
	for _, sem := range core.AllSemantics {
		r := results[sem]
		fmt.Fprintf(w, "| %s | %d | %v | %d | %v |\n",
			sem, r.Size(), r.Optimal, r.Rounds, r.Timing.Total().Round(10e3))
	}
	fmt.Fprintln(w)

	// Per-relation breakdown.
	fmt.Fprintf(w, "### Deletions by relation\n\n")
	relSet := make(map[string]bool)
	for _, sem := range core.AllSemantics {
		for rel := range results[sem].ByRelation() {
			relSet[rel] = true
		}
	}
	rels := make([]string, 0, len(relSet))
	for rel := range relSet {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	fmt.Fprintf(w, "| Relation | Ind | Step | Stage | End |\n|---|---|---|---|---|\n")
	for _, rel := range rels {
		fmt.Fprintf(w, "| %s |", rel)
		for _, sem := range core.AllSemantics {
			fmt.Fprintf(w, " %d |", results[sem].ByRelation()[rel])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)

	// Containment flags.
	c := core.CheckContainment(results)
	fmt.Fprintf(w, "### Relationships (Table 3 form)\n\n")
	fmt.Fprintf(w, "- Step = Stage: **%v**\n", c.StepEqStage)
	fmt.Fprintf(w, "- Ind ⊆ Stage: **%v**\n", c.IndInStage)
	fmt.Fprintf(w, "- Ind ⊆ Step: **%v**\n", c.IndInStep)
	fmt.Fprintf(w, "- Stage ⊆ End: %v, Step ⊆ End: %v (always hold)\n\n", c.StageInEnd, c.StepInEnd)

	// Sample explanations from the step repair (always derivable).
	ex, err := core.NewExplainer(db, p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "### Why were tuples deleted? (sample from the step repair)\n\n")
	shown := 0
	for _, entry := range ex.ExplainResult(results[core.SemStep]) {
		if shown >= maxExplained {
			break
		}
		if entry.Explanation == nil {
			continue
		}
		fmt.Fprintf(w, "```\n%s```\n\n", entry.Explanation)
		shown++
	}

	// Recommendation heuristic, echoing the paper's guidance (§6).
	fmt.Fprintf(w, "## Recommendation\n\n")
	switch {
	case results[core.SemEnd].SameSet(results[core.SemIndependent]):
		fmt.Fprintf(w, "All semantics agree (pure cascade): use **end** or **stage** — they are the cheapest to compute and provably unique.\n")
	case c.IndInStep && results[core.SemIndependent].Size() < results[core.SemStep].Size():
		fmt.Fprintf(w, "**independent** finds a strictly smaller repair (%d vs %d) that the operational semantics can also realize in part; use it if minimum data loss is the goal and the solver cost is acceptable.\n",
			results[core.SemIndependent].Size(), results[core.SemStep].Size())
	case results[core.SemIndependent].Size() < results[core.SemStep].Size():
		fmt.Fprintf(w, "**independent** deletes the least (%d vs %d) but chooses tuples no trigger-like execution would touch; prefer it for integrity-constraint cleanup, and **step** when deletions must follow rule firings.\n",
			results[core.SemIndependent].Size(), results[core.SemStep].Size())
	default:
		fmt.Fprintf(w, "**step** matches the minimum repair while remaining realizable by rule firings; it is the best default here.\n")
	}
	return nil
}

// ProgramListing renders rule-per-line program text with its labels, used
// by callers that embed program listings in their own documents.
func ProgramListing(p *datalog.Program) string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}
