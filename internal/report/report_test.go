package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/programs"
)

func TestGenerateRunningExampleReport(t *testing.T) {
	db := programs.RunningExampleDB()
	p, err := programs.RunningExampleProgram()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Generate(&buf, db, p, Options{Title: "Running example"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Running example",
		"## Database",
		"| Grant | 2 | 0 |",
		"## Program",
		"Delta_Grant(g, n)",
		"**unstable**",
		"## Repairs",
		"| independent | 3 |",
		"| step | 5 |",
		"| stage | 7 |",
		"| end | 8 |",
		"### Deletions by relation",
		"### Relationships (Table 3 form)",
		"- Step = Stage: **false**",
		"### Why were tuples deleted?",
		"layer 1",
		"## Recommendation",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestGenerateStableDatabaseShortReport(t *testing.T) {
	db := programs.RunningExampleDB()
	p, err := datalog.ParseAndValidate(
		"Delta_Grant(g, n) :- Grant(g, n), n = 'NIH'.", programs.RunningExampleSchema())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Generate(&buf, db, p, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "**stable**") {
		t.Fatalf("stable database should short-circuit:\n%s", out)
	}
	if strings.Contains(out, "## Repairs") {
		t.Fatal("stable database should not run repairs")
	}
}

func TestGenerateCascadeRecommendsEnd(t *testing.T) {
	// A pure cascade: all semantics agree; the report must recommend
	// end/stage.
	db := programs.RunningExampleDB()
	p, err := datalog.ParseAndValidate(`
(0) Delta_Grant(g, n) :- Grant(g, n), n = 'ERC'.
(1) Delta_AuthGrant(a, g) :- AuthGrant(a, g), Delta_Grant(g, n).
`, programs.RunningExampleSchema())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Generate(&buf, db, p, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "use **end** or **stage**") {
		t.Fatalf("cascade should recommend end/stage:\n%s", buf.String())
	}
}

func TestProgramListing(t *testing.T) {
	p, err := programs.RunningExampleProgram()
	if err != nil {
		t.Fatal(err)
	}
	listing := ProgramListing(p)
	if strings.Count(listing, "\n") != 5 {
		t.Fatalf("listing should have 5 lines:\n%s", listing)
	}
}

func TestGenerateMaxExplained(t *testing.T) {
	db := programs.RunningExampleDB()
	p, err := programs.RunningExampleProgram()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Generate(&buf, db, p, Options{MaxExplained: 1}); err != nil {
		t.Fatal(err)
	}
	// Exactly one explanation block in the sample section.
	section := buf.String()[strings.Index(buf.String(), "### Why"):]
	if got := strings.Count(section, "```\n"); got != 2 { // open + close
		t.Fatalf("explanation fences = %d, want 2:\n%s", got, section)
	}
}
