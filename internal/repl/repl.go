// Package repl implements an interactive step-semantics debugger: the
// paper's step semantics (Def. 3.5) fires one nondeterministically chosen
// rule instance at a time — this session makes the user the scheduler.
// At every point the session lists the currently deletable tuples (the
// satisfying assignments' heads), lets the user fire one, undo, inspect
// relations and explanations, or hand the rest of the repair to any of the
// four automatic semantics.
//
// The interpreter is I/O-agnostic (Execute takes a command line, output
// goes to an io.Writer), so it is fully testable; cmd/repair-debug wraps
// it in a stdin loop.
package repl

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/engine"
)

// Session is one interactive repair session over a working copy of the
// database. The original database is never modified.
type Session struct {
	orig *engine.Database
	work *engine.Database
	prog *datalog.Program
	out  io.Writer

	fired      []*engine.Tuple // deletions in firing order
	candidates []*engine.Tuple // last "violations" listing
	explainer  *core.Explainer // lazy; built on the original database

	prep    *datalog.Prepared // lazy; amortizes planning across commands
	prepErr error
}

// New starts a session on a copy-on-write fork of db: the original is
// frozen once and every session copy (including undo rebuilds) forks the
// shared frozen base in O(changes) instead of deep-cloning.
func New(db *engine.Database, p *datalog.Program, out io.Writer) *Session {
	return &Session{orig: db, work: db.Fork(), prog: p, out: out}
}

// prepared returns the session's prepared program, planning it on first
// use; every subsequent command (violations, fire cascades, auto, status)
// reuses the plans.
func (s *Session) prepared() (*datalog.Prepared, error) {
	if s.prep == nil && s.prepErr == nil {
		s.prep, s.prepErr = datalog.Prepare(s.prog, s.orig.Schema)
	}
	return s.prep, s.prepErr
}

// Deleted returns the tuples fired so far, in order.
func (s *Session) Deleted() []*engine.Tuple {
	return append([]*engine.Tuple(nil), s.fired...)
}

// Execute runs one command line; it reports whether the session should
// end. Unknown commands and bad arguments print a message and keep the
// session alive (user typos must not kill a repair session); internal
// failures return an error.
func (s *Session) Execute(line string) (quit bool, err error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 {
		return false, nil
	}
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help", "?":
		s.printHelp()
	case "status":
		return false, s.cmdStatus()
	case "violations", "v":
		return false, s.cmdViolations(args)
	case "fire", "f":
		return false, s.cmdFire(args)
	case "undo":
		return false, s.cmdUndo()
	case "auto":
		return false, s.cmdAuto(args)
	case "show":
		return false, s.cmdShow(args)
	case "explain":
		return false, s.cmdExplain(args)
	case "quit", "exit", "q":
		return true, nil
	default:
		fmt.Fprintf(s.out, "unknown command %q; try help\n", cmd)
	}
	return false, nil
}

// Run drives the session as a read-eval loop until EOF or quit.
func (s *Session) Run(in io.Reader) error {
	fmt.Fprintln(s.out, "step-semantics debugger — 'violations' lists deletable tuples, 'fire N' deletes one, 'help' for more")
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(s.out, "repair> ")
		if !sc.Scan() {
			fmt.Fprintln(s.out)
			return sc.Err()
		}
		quit, err := s.Execute(sc.Text())
		if err != nil {
			return err
		}
		if quit {
			return nil
		}
	}
}

func (s *Session) printHelp() {
	fmt.Fprint(s.out, `commands:
  status            database size, deletions so far, stability
  violations [n]    list up to n currently deletable tuples (default 20)
  fire <k>          delete candidate #k from the last listing (cascade-aware)
  undo              revert the most recent fire
  auto <semantics>  finish the repair automatically (independent|step|stage|end)
  show <relation>   list a relation's live tuples
  explain <k>       derivation of candidate #k (why it is deletable)
  quit              end the session
`)
}

func (s *Session) cmdStatus() error {
	prep, err := s.prepared()
	if err != nil {
		return err
	}
	stable, err := core.CheckStableP(s.work, prep)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "%d live tuples, %d deleted this session, stable: %v\n",
		s.work.TotalTuples(), len(s.fired), stable)
	return nil
}

// currentCandidates enumerates the distinct heads deletable right now.
func (s *Session) currentCandidates() ([]*engine.Tuple, error) {
	prep, err := s.prepared()
	if err != nil {
		return nil, err
	}
	ctx := prep.AcquireContext()
	defer prep.ReleaseContext(ctx)
	seen := make(map[engine.TupleID]bool)
	var heads []*engine.Tuple
	for _, pr := range prep.Rules {
		err := pr.EvalOperational(s.work, ctx, func(a *datalog.Assignment) bool {
			h := a.Head()
			if !seen[h.TID] {
				seen[h.TID] = true
				heads = append(heads, h)
			}
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	return heads, nil
}

func (s *Session) cmdViolations(args []string) error {
	limit := 20
	if len(args) > 0 {
		if n, err := strconv.Atoi(args[0]); err == nil && n > 0 {
			limit = n
		}
	}
	heads, err := s.currentCandidates()
	if err != nil {
		return err
	}
	s.candidates = heads
	if len(heads) == 0 {
		fmt.Fprintln(s.out, "stable: no rule is satisfiable — repair complete")
		return nil
	}
	fmt.Fprintf(s.out, "%d deletable tuples:\n", len(heads))
	for i, h := range heads {
		if i >= limit {
			fmt.Fprintf(s.out, "  ... and %d more\n", len(heads)-limit)
			break
		}
		fmt.Fprintf(s.out, "  [%d] %s\n", i+1, h)
	}
	return nil
}

func (s *Session) cmdFire(args []string) error {
	if len(args) != 1 {
		fmt.Fprintln(s.out, "usage: fire <k> (run 'violations' first)")
		return nil
	}
	k, err := strconv.Atoi(args[0])
	if err != nil || k < 1 || k > len(s.candidates) {
		fmt.Fprintf(s.out, "no candidate #%s; run 'violations' and pick a listed number\n", args[0])
		return nil
	}
	h := s.candidates[k-1]
	if !s.work.Relation(h.Rel).ContainsTuple(h) {
		fmt.Fprintf(s.out, "%s is no longer live; re-run 'violations'\n", h)
		return nil
	}
	s.work.DeleteTupleToDelta(h)
	s.fired = append(s.fired, h)
	fmt.Fprintf(s.out, "deleted %s (%d so far)\n", h, len(s.fired))
	return nil
}

func (s *Session) cmdUndo() error {
	if len(s.fired) == 0 {
		fmt.Fprintln(s.out, "nothing to undo")
		return nil
	}
	// Rebuild the working copy from the original plus all but the last
	// deletion: delta relations have no "un-delete", and rebuilding keeps
	// the session state canonical. Forking the frozen original makes the
	// rebuild O(deletions so far), not O(database).
	last := s.fired[len(s.fired)-1]
	s.fired = s.fired[:len(s.fired)-1]
	s.work = s.orig.Fork()
	for _, t := range s.fired {
		s.work.DeleteTupleToDelta(t)
	}
	s.candidates = nil
	fmt.Fprintf(s.out, "undid deletion of %s\n", last)
	return nil
}

func (s *Session) cmdAuto(args []string) error {
	if len(args) != 1 {
		fmt.Fprintln(s.out, "usage: auto independent|step|stage|end")
		return nil
	}
	var sem core.Semantics
	switch args[0] {
	case "independent":
		sem = core.SemIndependent
	case "step":
		sem = core.SemStep
	case "stage":
		sem = core.SemStage
	case "end":
		sem = core.SemEnd
	default:
		fmt.Fprintf(s.out, "unknown semantics %q\n", args[0])
		return nil
	}
	prep, err := s.prepared()
	if err != nil {
		return err
	}
	res, repaired, err := core.RunWith(s.work, s.prog, sem, core.Options{Prepared: prep})
	if err != nil {
		return err
	}
	s.work = repaired
	s.fired = append(s.fired, res.Deleted...)
	s.candidates = nil
	fmt.Fprintf(s.out, "%s semantics deleted %d more tuples; session total %d\n",
		sem, res.Size(), len(s.fired))
	return nil
}

func (s *Session) cmdShow(args []string) error {
	if len(args) != 1 {
		fmt.Fprintln(s.out, "usage: show <relation>")
		return nil
	}
	rel := s.work.Relation(args[0])
	if rel == nil {
		fmt.Fprintf(s.out, "unknown relation %q (have: %s)\n",
			args[0], strings.Join(s.work.Schema.Names(), ", "))
		return nil
	}
	tuples := rel.Tuples()
	sort.Slice(tuples, func(i, j int) bool { return tuples[i].Seq < tuples[j].Seq })
	fmt.Fprintf(s.out, "%s: %d live tuples\n", args[0], len(tuples))
	for i, t := range tuples {
		if i >= 25 {
			fmt.Fprintf(s.out, "  ... and %d more\n", len(tuples)-25)
			break
		}
		fmt.Fprintf(s.out, "  %s\n", t)
	}
	return nil
}

func (s *Session) cmdExplain(args []string) error {
	if len(args) != 1 {
		fmt.Fprintln(s.out, "usage: explain <k> (a candidate number from 'violations')")
		return nil
	}
	k, err := strconv.Atoi(args[0])
	if err != nil || k < 1 || k > len(s.candidates) {
		fmt.Fprintf(s.out, "no candidate #%s; run 'violations' first\n", args[0])
		return nil
	}
	if s.explainer == nil {
		ex, err := core.NewExplainer(s.orig, s.prog)
		if err != nil {
			return err
		}
		s.explainer = ex
	}
	h := s.candidates[k-1]
	if e := s.explainer.ExplainTuple(h); e != nil {
		fmt.Fprint(s.out, e.String())
	} else {
		fmt.Fprintf(s.out, "%s has no recorded derivation\n", h)
	}
	return nil
}
