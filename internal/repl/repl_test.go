package repl

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/programs"
)

func newSession(t *testing.T) (*Session, *bytes.Buffer) {
	t.Helper()
	db := programs.RunningExampleDB()
	p, err := programs.RunningExampleProgram()
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	return New(db, p, &out), &out
}

// exec runs a command and returns the output it produced.
func exec(t *testing.T, s *Session, out *bytes.Buffer, line string) string {
	t.Helper()
	out.Reset()
	quit, err := s.Execute(line)
	if err != nil {
		t.Fatalf("%q: %v", line, err)
	}
	if quit {
		t.Fatalf("%q unexpectedly quit", line)
	}
	return out.String()
}

func TestSessionStatusAndViolations(t *testing.T) {
	s, out := newSession(t)
	got := exec(t, s, out, "status")
	if !strings.Contains(got, "13 live tuples") || !strings.Contains(got, "stable: false") {
		t.Fatalf("status: %q", got)
	}
	got = exec(t, s, out, "violations")
	// Initially only rule (0) fires: exactly one deletable tuple, g2.
	if !strings.Contains(got, "1 deletable tuples") || !strings.Contains(got, "Grant(2, 'ERC')") {
		t.Fatalf("violations: %q", got)
	}
}

func TestSessionFireCascades(t *testing.T) {
	s, out := newSession(t)
	exec(t, s, out, "violations")
	got := exec(t, s, out, "fire 1")
	if !strings.Contains(got, "deleted g2") {
		t.Fatalf("fire: %q", got)
	}
	// After g2, rule (1) exposes the two authors.
	got = exec(t, s, out, "violations")
	if !strings.Contains(got, "2 deletable tuples") {
		t.Fatalf("violations after fire: %q", got)
	}
	exec(t, s, out, "fire 1") // a2
	exec(t, s, out, "violations")
	exec(t, s, out, "fire 1")
	if len(s.Deleted()) != 3 {
		t.Fatalf("deleted = %d, want 3", len(s.Deleted()))
	}
}

func TestSessionUndo(t *testing.T) {
	s, out := newSession(t)
	exec(t, s, out, "violations")
	exec(t, s, out, "fire 1")
	if len(s.Deleted()) != 1 {
		t.Fatal("fire did not record")
	}
	got := exec(t, s, out, "undo")
	if !strings.Contains(got, "undid deletion") || len(s.Deleted()) != 0 {
		t.Fatalf("undo: %q", got)
	}
	// The database is back to its initial state: same single candidate.
	got = exec(t, s, out, "violations")
	if !strings.Contains(got, "1 deletable tuples") {
		t.Fatalf("violations after undo: %q", got)
	}
	if got := exec(t, s, out, "undo"); !strings.Contains(got, "nothing to undo") {
		t.Fatalf("empty undo: %q", got)
	}
}

func TestSessionAutoFinishes(t *testing.T) {
	s, out := newSession(t)
	exec(t, s, out, "violations")
	exec(t, s, out, "fire 1") // g2 manually
	got := exec(t, s, out, "auto step")
	if !strings.Contains(got, "step semantics deleted") {
		t.Fatalf("auto: %q", got)
	}
	got = exec(t, s, out, "status")
	if !strings.Contains(got, "stable: true") {
		t.Fatalf("status after auto: %q", got)
	}
	// Manual g2 + step's remaining 4 = 5 total (Example 5.2).
	if len(s.Deleted()) != 5 {
		t.Fatalf("total deletions = %d, want 5", len(s.Deleted()))
	}
}

func TestSessionShowAndExplain(t *testing.T) {
	s, out := newSession(t)
	got := exec(t, s, out, "show Author")
	if !strings.Contains(got, "Author: 3 live tuples") || !strings.Contains(got, "Maggie") {
		t.Fatalf("show: %q", got)
	}
	got = exec(t, s, out, "show Nope")
	if !strings.Contains(got, "unknown relation") {
		t.Fatalf("show unknown: %q", got)
	}
	exec(t, s, out, "violations")
	got = exec(t, s, out, "explain 1")
	if !strings.Contains(got, "layer 1") {
		t.Fatalf("explain: %q", got)
	}
}

func TestSessionBadInputIsForgiving(t *testing.T) {
	s, out := newSession(t)
	for _, line := range []string{
		"", "   ", "frobnicate", "fire", "fire 99", "fire x",
		"auto", "auto nope", "show", "explain", "explain 7",
	} {
		out.Reset()
		quit, err := s.Execute(line)
		if err != nil {
			t.Fatalf("%q returned error: %v", line, err)
		}
		if quit {
			t.Fatalf("%q quit the session", line)
		}
	}
	if got := exec(t, s, out, "help"); !strings.Contains(got, "fire <k>") {
		t.Fatalf("help: %q", got)
	}
}

func TestSessionQuitAndRunLoop(t *testing.T) {
	s, out := newSession(t)
	quit, err := s.Execute("quit")
	if err != nil || !quit {
		t.Fatal("quit should end the session")
	}
	// Full loop over a scripted stdin.
	db := programs.RunningExampleDB()
	p, _ := programs.RunningExampleProgram()
	var buf bytes.Buffer
	sess := New(db, p, &buf)
	script := "violations\nfire 1\nauto stage\nstatus\nquit\n"
	if err := sess.Run(strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "stable: true") {
		t.Fatalf("scripted session output:\n%s", buf.String())
	}
	_ = out
}

// TestSessionManualEqualsStepSemantics: firing the greedy algorithm's
// choices by hand ends at the same repair as RunStepGreedy.
func TestSessionManualEqualsStepSemantics(t *testing.T) {
	db := programs.RunningExampleDB()
	p, _ := programs.RunningExampleProgram()
	want, _, err := core.RunStepGreedy(db, p)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	s := New(db, p, &out)
	// Fire everything step semantics would, by key.
	for _, tp := range want.Deleted {
		heads, err := s.currentCandidates()
		if err != nil {
			t.Fatal(err)
		}
		s.candidates = heads
		found := false
		for i, h := range heads {
			if h.Key() == tp.Key() {
				if err := s.cmdFire([]string{strconv.Itoa(i + 1)}); err != nil {
					t.Fatal(err)
				}
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("greedy choice %s not offered by the session", tp.Key())
		}
	}
	stable, err := core.CheckStable(s.work, p)
	if err != nil || !stable {
		t.Fatal("manual replay of the greedy repair should stabilize")
	}
}
