package provenance

import (
	"fmt"
	"slices"
	"strings"

	"repro/internal/engine"
)

// Graph is the provenance graph of §5.2: for every derived delta tuple ∆(t)
// it stores all assignments deriving it (as clauses), and the layer at
// which ∆(t) is first derived (the round of the End-semantics evaluation;
// cf. Figure 5 of the paper). Algorithm 2 traverses the graph layer by
// layer, choosing tuples by benefit. Tuples are identified by their
// interned engine.TupleID throughout.
type Graph struct {
	// Heads lists derived delta tuple IDs in first-derivation order.
	Heads []engine.TupleID
	// Assignments maps each head to its deduplicated deriving clauses.
	Assignments map[engine.TupleID][]Clause
	// Layer maps each head to its 1-based first-derivation layer.
	Layer map[engine.TupleID]int
	// NumLayers is the maximum layer.
	NumLayers int

	seen       map[string]bool // per-head clause dedup
	sigBuf     []byte          // reusable dedup-key scratch
	sigScratch []engine.TupleID
}

// NewGraph creates an empty provenance graph.
func NewGraph() *Graph {
	return &Graph{
		Assignments: make(map[engine.TupleID][]Clause),
		Layer:       make(map[engine.TupleID]int),
		seen:        make(map[string]bool),
	}
}

// AddDerivation records that clause derives ∆(head) at the given 1-based
// layer. The layer is retained only for the first derivation of a head;
// repeated identical clauses are dropped. It reports whether the clause was
// recorded.
func (g *Graph) AddDerivation(head engine.TupleID, layer int, c Clause) bool {
	if _, known := g.Layer[head]; !known {
		g.Heads = append(g.Heads, head)
		g.Layer[head] = layer
		if layer > g.NumLayers {
			g.NumLayers = layer
		}
	}
	g.sigBuf, g.sigScratch = appendSig(g.sigBuf[:0], g.sigScratch, head, c)
	if g.seen[string(g.sigBuf)] { // compiler-optimized: no allocation on hit
		return false
	}
	g.seen[string(g.sigBuf)] = true
	g.Assignments[head] = append(g.Assignments[head], c)
	return true
}

// LayerHeads returns the heads first derived at the given layer, in
// derivation order.
func (g *Graph) LayerHeads(layer int) []engine.TupleID {
	var out []engine.TupleID
	for _, h := range g.Heads {
		if g.Layer[h] == layer {
			out = append(out, h)
		}
	}
	return out
}

// NumAssignments returns the total number of recorded assignments.
func (g *Graph) NumAssignments() int {
	n := 0
	for _, cs := range g.Assignments {
		n += len(cs)
	}
	return n
}

// Benefits computes the benefit b_t of every base tuple t mentioned in the
// graph: the number of assignments t participates in (positively) minus the
// number of assignments ∆(t) participates in (as a delta dependency). This
// is exactly the greedy score of Algorithm 2 — deleting a high-benefit
// tuple voids many derivations while enabling few.
func (g *Graph) Benefits() map[engine.TupleID]int {
	b := make(map[engine.TupleID]int)
	for _, cs := range g.Assignments {
		for _, c := range cs {
			for _, id := range c.Pos {
				b[id]++
			}
			for _, id := range c.Neg {
				b[id]--
			}
		}
	}
	return b
}

// String renders a per-layer summary for debugging, e.g.
// "layer 1: t12[1]". Resolve IDs through the database for content keys.
func (g *Graph) String() string {
	var b strings.Builder
	for l := 1; l <= g.NumLayers; l++ {
		fmt.Fprintf(&b, "layer %d:", l)
		heads := g.LayerHeads(l)
		slices.Sort(heads)
		for _, h := range heads {
			fmt.Fprintf(&b, " t%d[%d]", h, len(g.Assignments[h]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
