// Package provenance implements the provenance representations of §5 of the
// paper: Boolean-formula provenance (DNF per delta tuple, used by Algorithm
// 1 for independent semantics) and the layered provenance graph with tuple
// benefits (used by Algorithm 2 for step semantics).
//
// Throughout, tuples are identified by their interned engine.TupleID; a
// delta tuple ∆(t) is identified by t's ID — delta relations share tuples
// with their base relations, so no separate ID space is needed. Rendering
// IDs back to readable content keys is the caller's concern (resolve
// through the database; see internal/viz and core's Explainer).
package provenance

import (
	"fmt"
	"slices"
	"strings"

	"repro/internal/datalog"
	"repro/internal/engine"
)

// Clause is the provenance of one assignment α: the conjunction of the base
// tuples α binds positively (Pos, "must be present") and the base
// counterparts of the delta tuples α binds (Neg, "must have been deleted").
// In formula terms the clause is  t₁ ∧ … ∧ tₖ ∧ ¬d₁ ∧ … ∧ ¬dₘ  where
// negated variables stand for deleted tuples (§5.1).
type Clause struct {
	Pos []engine.TupleID
	Neg []engine.TupleID
}

// ClauseOf extracts the provenance clause of an assignment: tuples bound to
// non-delta body atoms go to Pos, tuples bound to delta atoms to Neg.
// Duplicates (the same tuple bound by several atoms) are removed, and a
// tuple bound both positively and as a delta yields both entries (the
// clause is then unsatisfiable in any consistent state, but Algorithm 1's
// negation handles it soundly). Rule bodies are short, so dedup is a linear
// scan over the slices themselves — no maps, no allocation beyond the
// clause.
func ClauseOf(asn *datalog.Assignment) Clause {
	var c Clause
	for i, tp := range asn.Tuples {
		id := tp.TID
		if asn.Rule.Body[i].Delta {
			if !slices.Contains(c.Neg, id) {
				c.Neg = append(c.Neg, id)
			}
		} else if !slices.Contains(c.Pos, id) {
			c.Pos = append(c.Pos, id)
		}
	}
	return c
}

// appendID appends one TupleID as 8 little-endian bytes.
func appendID(buf []byte, id engine.TupleID) []byte {
	return append(buf,
		byte(id), byte(id>>8), byte(id>>16), byte(id>>24),
		byte(id>>32), byte(id>>40), byte(id>>48), byte(id>>56))
}

// appendSig appends the canonical dedup key "head | clause content" to
// buf: the head ID, sorted Pos IDs, a separator, sorted Neg IDs, each ID
// as 8 little-endian bytes. scratch is reused for sorting the ID runs;
// both grown slices are returned so callers can recycle them — dedup
// lookups run once per enumerated assignment, so the key must not allocate
// on the hit path.
func appendSig(buf []byte, scratch []engine.TupleID, head engine.TupleID, c Clause) ([]byte, []engine.TupleID) {
	buf = appendID(buf, head)
	appendIDs := func(ids []engine.TupleID) {
		scratch = append(scratch[:0], ids...)
		slices.Sort(scratch)
		for _, id := range scratch {
			buf = appendID(buf, id)
		}
	}
	appendIDs(c.Pos)
	// Single-byte Pos/Neg separator. Re-parsing ambiguity would need an
	// ID whose encoding straddles the separator position, i.e. an ID of
	// at least 0xfe<<56 — unreachable for the sequential intern counter.
	buf = append(buf, 0xfe)
	appendIDs(c.Neg)
	return buf, scratch
}

// sigKey builds the dedup map key "head | clause content" as a compact
// binary string.
func sigKey(head engine.TupleID, c Clause) string {
	buf := make([]byte, 0, 24+8*(len(c.Pos)+len(c.Neg)))
	buf, _ = appendSig(buf, nil, head, c)
	return string(buf)
}

// String renders the clause as a conjunction of tuple IDs, e.g.
// "t3 ∧ ¬t7" (debugging; resolve IDs through the database for readable
// content keys).
func (c Clause) String() string {
	var parts []string
	for _, id := range c.Pos {
		parts = append(parts, fmt.Sprintf("t%d", id))
	}
	for _, id := range c.Neg {
		parts = append(parts, fmt.Sprintf("¬t%d", id))
	}
	return strings.Join(parts, " ∧ ")
}

// Formula is the flat provenance of all possible delta tuples: one clause
// per assignment, the disjunction of which is the formula F of Algorithm 1.
// Heads records the delta tuple each clause derives (parallel to Clauses);
// Algorithm 1 itself only needs the clause bodies, but heads are kept for
// reporting and tests. A synthetic head of 0 is permitted (used by the
// side-effect solver for view-witness clauses).
type Formula struct {
	Clauses []Clause
	Heads   []engine.TupleID

	seen       map[string]bool // canonical clause+head dedup
	sigBuf     []byte          // reusable dedup-key scratch
	sigScratch []engine.TupleID
}

// NewFormula creates an empty provenance formula.
func NewFormula() *Formula {
	return &Formula{seen: make(map[string]bool)}
}

// Add records the clause deriving head, deduplicating exact repeats. It
// reports whether the clause was new.
func (f *Formula) Add(head engine.TupleID, c Clause) bool {
	f.sigBuf, f.sigScratch = appendSig(f.sigBuf[:0], f.sigScratch, head, c)
	if f.seen[string(f.sigBuf)] { // compiler-optimized: no allocation on hit
		return false
	}
	f.seen[string(f.sigBuf)] = true
	f.Clauses = append(f.Clauses, c)
	f.Heads = append(f.Heads, head)
	return true
}

// Len returns the number of clauses.
func (f *Formula) Len() int { return len(f.Clauses) }

// TupleIDs returns every distinct tuple ID mentioned in the formula
// (positively or negatively), in first-occurrence order.
func (f *Formula) TupleIDs() []engine.TupleID {
	var out []engine.TupleID
	seen := make(map[engine.TupleID]bool)
	add := func(id engine.TupleID) {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, c := range f.Clauses {
		for _, id := range c.Pos {
			add(id)
		}
		for _, id := range c.Neg {
			add(id)
		}
	}
	return out
}
