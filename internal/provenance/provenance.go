// Package provenance implements the provenance representations of §5 of the
// paper: Boolean-formula provenance (DNF per delta tuple, used by Algorithm
// 1 for independent semantics) and the layered provenance graph with tuple
// benefits (used by Algorithm 2 for step semantics).
//
// Throughout, tuples are identified by their engine content keys
// ("Rel(v1,v2)"); a delta tuple ∆(t) is identified by t's key — delta
// relations share content with their base relations, so no separate key
// space is needed.
package provenance

import (
	"sort"
	"strings"

	"repro/internal/datalog"
)

// Clause is the provenance of one assignment α: the conjunction of the base
// tuples α binds positively (Pos, "must be present") and the base
// counterparts of the delta tuples α binds (Neg, "must have been deleted").
// In formula terms the clause is  t₁ ∧ … ∧ tₖ ∧ ¬d₁ ∧ … ∧ ¬dₘ  where
// negated variables stand for deleted tuples (§5.1).
type Clause struct {
	Pos []string
	Neg []string
}

// ClauseOf extracts the provenance clause of an assignment: tuples bound to
// non-delta body atoms go to Pos, tuples bound to delta atoms to Neg.
// Duplicates (the same tuple bound by several atoms) are removed, and a
// tuple bound both positively and as a delta yields both entries (the
// clause is then unsatisfiable in any consistent state, but Algorithm 1's
// negation handles it soundly).
func ClauseOf(asn *datalog.Assignment) Clause {
	var c Clause
	seenPos := make(map[string]bool, len(asn.Tuples))
	seenNeg := make(map[string]bool, 2)
	for i, tp := range asn.Tuples {
		key := tp.Key()
		if asn.Rule.Body[i].Delta {
			if !seenNeg[key] {
				seenNeg[key] = true
				c.Neg = append(c.Neg, key)
			}
		} else if !seenPos[key] {
			seenPos[key] = true
			c.Pos = append(c.Pos, key)
		}
	}
	return c
}

// CanonicalKey returns a canonical string identifying the clause content,
// used to deduplicate assignments that bind the same tuple multiset.
func (c Clause) CanonicalKey() string {
	pos := append([]string(nil), c.Pos...)
	neg := append([]string(nil), c.Neg...)
	sort.Strings(pos)
	sort.Strings(neg)
	var b strings.Builder
	for _, k := range pos {
		b.WriteByte('+')
		b.WriteString(k)
	}
	for _, k := range neg {
		b.WriteByte('-')
		b.WriteString(k)
	}
	return b.String()
}

// String renders the clause as a conjunction, e.g. "g2 ∧ ¬a2".
func (c Clause) String() string {
	var parts []string
	for _, k := range c.Pos {
		parts = append(parts, k)
	}
	for _, k := range c.Neg {
		parts = append(parts, "¬"+k)
	}
	return strings.Join(parts, " ∧ ")
}

// Formula is the flat provenance of all possible delta tuples: one clause
// per assignment, the disjunction of which is the formula F of Algorithm 1.
// Heads records the delta tuple each clause derives (parallel to Clauses);
// Algorithm 1 itself only needs the clause bodies, but heads are kept for
// reporting and tests.
type Formula struct {
	Clauses []Clause
	Heads   []string

	seen map[string]bool // canonical clause+head dedup
}

// NewFormula creates an empty provenance formula.
func NewFormula() *Formula {
	return &Formula{seen: make(map[string]bool)}
}

// Add records the clause deriving head, deduplicating exact repeats. It
// reports whether the clause was new.
func (f *Formula) Add(head string, c Clause) bool {
	key := head + "|" + c.CanonicalKey()
	if f.seen[key] {
		return false
	}
	f.seen[key] = true
	f.Clauses = append(f.Clauses, c)
	f.Heads = append(f.Heads, head)
	return true
}

// Len returns the number of clauses.
func (f *Formula) Len() int { return len(f.Clauses) }

// TupleKeys returns every distinct tuple key mentioned in the formula
// (positively or negatively), in first-occurrence order.
func (f *Formula) TupleKeys() []string {
	var out []string
	seen := make(map[string]bool)
	add := func(k string) {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for _, c := range f.Clauses {
		for _, k := range c.Pos {
			add(k)
		}
		for _, k := range c.Neg {
			add(k)
		}
	}
	return out
}
