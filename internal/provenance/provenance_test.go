package provenance

import (
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/engine"
)

func simpleSchema() *engine.Schema {
	s := engine.NewSchema()
	s.MustAddRelation("R", "r", "a")
	s.MustAddRelation("S", "s", "a")
	return s
}

func TestClauseOfSeparatesPosAndNeg(t *testing.T) {
	s := simpleSchema()
	db := engine.NewDatabase(s)
	r1 := db.MustInsert("R", engine.Int(1))
	s1 := db.MustInsert("S", engine.Int(1))
	db.DeleteTupleToDelta(s1)

	p, err := datalog.ParseAndValidate("Delta_R(x) :- R(x), Delta_S(x).", s)
	if err != nil {
		t.Fatal(err)
	}
	var clauses []Clause
	if err := datalog.EvalRuleOnDB(db, p.Rules[0], func(a *datalog.Assignment) bool {
		clauses = append(clauses, ClauseOf(a))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(clauses) != 1 {
		t.Fatalf("clauses = %d, want 1", len(clauses))
	}
	c := clauses[0]
	if len(c.Pos) != 1 || c.Pos[0] != r1.Key() {
		t.Fatalf("Pos = %v, want [%s]", c.Pos, r1.Key())
	}
	if len(c.Neg) != 1 || c.Neg[0] != s1.Key() {
		t.Fatalf("Neg = %v, want [%s]", c.Neg, s1.Key())
	}
	if !strings.Contains(c.String(), "¬"+s1.Key()) {
		t.Fatalf("String = %q missing negation", c.String())
	}
}

func TestClauseOfDeduplicatesRepeatedTuples(t *testing.T) {
	s := simpleSchema()
	db := engine.NewDatabase(s)
	db.MustInsert("R", engine.Int(1))
	// Rule with the same atom twice: R(x), R(x) binds the same tuple.
	p, err := datalog.ParseAndValidate("Delta_R(x) :- R(x), R(x).", s)
	if err != nil {
		t.Fatal(err)
	}
	var c Clause
	datalog.EvalRuleOnDB(db, p.Rules[0], func(a *datalog.Assignment) bool {
		c = ClauseOf(a)
		return false
	})
	if len(c.Pos) != 1 {
		t.Fatalf("Pos = %v, want single deduplicated entry", c.Pos)
	}
}

func TestClauseCanonicalKeyOrderInsensitive(t *testing.T) {
	a := Clause{Pos: []string{"R(i1)", "S(i2)"}, Neg: []string{"T(i3)"}}
	b := Clause{Pos: []string{"S(i2)", "R(i1)"}, Neg: []string{"T(i3)"}}
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Fatal("canonical keys should ignore Pos order")
	}
	c := Clause{Pos: []string{"R(i1)"}, Neg: []string{"S(i2)", "T(i3)"}}
	if a.CanonicalKey() == c.CanonicalKey() {
		t.Fatal("different clauses must have different keys")
	}
	// Pos vs Neg placement matters.
	d := Clause{Pos: []string{"R(i1)", "S(i2)", "T(i3)"}}
	if a.CanonicalKey() == d.CanonicalKey() {
		t.Fatal("sign placement must be part of the key")
	}
}

func TestFormulaDedupAndTupleKeys(t *testing.T) {
	f := NewFormula()
	c1 := Clause{Pos: []string{"R(i1)"}, Neg: []string{"S(i1)"}}
	if !f.Add("R(i1)", c1) {
		t.Fatal("first add should be new")
	}
	if f.Add("R(i1)", Clause{Pos: []string{"R(i1)"}, Neg: []string{"S(i1)"}}) {
		t.Fatal("duplicate clause should be dropped")
	}
	if !f.Add("R(i2)", c1) {
		t.Fatal("same clause under a different head is distinct")
	}
	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2", f.Len())
	}
	keys := f.TupleKeys()
	if len(keys) != 2 || keys[0] != "R(i1)" || keys[1] != "S(i1)" {
		t.Fatalf("TupleKeys = %v", keys)
	}
}

func TestGraphLayersAndBenefits(t *testing.T) {
	g := NewGraph()
	// Layer 1: ∆(g) via {g}; layer 2: ∆(a) via {a, ag, ¬g} twice-ish.
	if !g.AddDerivation("G(i2)", 1, Clause{Pos: []string{"G(i2)"}}) {
		t.Fatal("first derivation should record")
	}
	g.AddDerivation("A(i4)", 2, Clause{Pos: []string{"A(i4)", "AG(i4)"}, Neg: []string{"G(i2)"}})
	g.AddDerivation("A(i5)", 2, Clause{Pos: []string{"A(i5)", "AG(i5)"}, Neg: []string{"G(i2)"}})
	// Duplicate clause for A(i4) dropped.
	if g.AddDerivation("A(i4)", 3, Clause{Pos: []string{"A(i4)", "AG(i4)"}, Neg: []string{"G(i2)"}}) {
		t.Fatal("duplicate clause should be dropped")
	}
	// Layer is fixed by the first derivation.
	if g.Layer["A(i4)"] != 2 {
		t.Fatalf("layer = %d, want 2", g.Layer["A(i4)"])
	}
	if g.NumLayers != 2 {
		t.Fatalf("NumLayers = %d, want 2", g.NumLayers)
	}
	if heads := g.LayerHeads(2); len(heads) != 2 {
		t.Fatalf("layer-2 heads = %v", heads)
	}
	if g.NumAssignments() != 3 {
		t.Fatalf("NumAssignments = %d, want 3", g.NumAssignments())
	}
	b := g.Benefits()
	// G(i2): +1 (own assignment) -2 (delta dep of two A assignments) = -1.
	if b["G(i2)"] != -1 {
		t.Fatalf("benefit[G] = %d, want -1", b["G(i2)"])
	}
	// A(i4): +1; AG(i4): +1.
	if b["A(i4)"] != 1 || b["AG(i4)"] != 1 {
		t.Fatalf("benefits = %v", b)
	}
	if s := g.String(); !strings.Contains(s, "layer 1:") || !strings.Contains(s, "layer 2:") {
		t.Fatalf("String = %q", s)
	}
}

// TestGraphMatchesPaperFigure5 rebuilds the running example's provenance
// graph and checks the benefits annotated in Figure 5: w1:3, p1:1, a2:-1,
// g2:-1, a3:-1, p2:2(*), w2:3, c:1, ag2/ag3 not derived (∅ benefit in the
// figure because they have no delta node; they participate in assignments).
func TestGraphMatchesPaperFigure5(t *testing.T) {
	g := NewGraph()
	// Rule (0): ∆(g2) from {g2}.
	g.AddDerivation("g2", 1, Clause{Pos: []string{"g2"}})
	// Rule (1): ∆(a2) from {a2, ag2, ¬g2}; ∆(a3) from {a3, ag3, ¬g2}.
	g.AddDerivation("a2", 2, Clause{Pos: []string{"a2", "ag2"}, Neg: []string{"g2"}})
	g.AddDerivation("a3", 2, Clause{Pos: []string{"a3", "ag3"}, Neg: []string{"g2"}})
	// Rules (2)/(3): ∆(p1), ∆(w1) from {p1, w1, ¬a2}; ∆(p2), ∆(w2) from {p2, w2, ¬a3}.
	g.AddDerivation("p1", 3, Clause{Pos: []string{"p1", "w1"}, Neg: []string{"a2"}})
	g.AddDerivation("w1", 3, Clause{Pos: []string{"p1", "w1"}, Neg: []string{"a2"}})
	g.AddDerivation("p2", 3, Clause{Pos: []string{"p2", "w2"}, Neg: []string{"a3"}})
	g.AddDerivation("w2", 3, Clause{Pos: []string{"p2", "w2"}, Neg: []string{"a3"}})
	// Rule (4): ∆(c) from {c, w1 (writes a1,c=7), w2 (writes a2,p=6?), ¬p1}.
	// In the running database, Writes(a1,c)=w2 (author 5 writes 7=c) and
	// Writes(a2,p)=w1 (author 4 writes 6=p).
	g.AddDerivation("c", 4, Clause{Pos: []string{"c", "w1", "w2"}, Neg: []string{"p1"}})

	b := g.Benefits()
	want := map[string]int{
		"g2": 1 - 2, // own + delta-dep of a2, a3
		"a2": 1 - 2, // own + delta-dep of p1/w1 clause (one clause shared? two clauses)
		"a3": 1 - 2,
		"w1": 3, // p1 clause, w1 clause, c clause
		"w2": 3,
		"p1": 2 - 1, // p1+w1 clauses positively, delta-dep of c
		"p2": 2,
		"c":  1,
	}
	for k, wv := range want {
		if b[k] != wv {
			t.Errorf("benefit[%s] = %d, want %d", k, b[k], wv)
		}
	}
	if g.NumLayers != 4 {
		t.Fatalf("NumLayers = %d, want 4", g.NumLayers)
	}
}
