package provenance

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/engine"
)

func simpleSchema() *engine.Schema {
	s := engine.NewSchema()
	s.MustAddRelation("R", "r", "a")
	s.MustAddRelation("S", "s", "a")
	return s
}

func TestClauseOfSeparatesPosAndNeg(t *testing.T) {
	s := simpleSchema()
	db := engine.NewDatabase(s)
	r1 := db.MustInsert("R", engine.Int(1))
	s1 := db.MustInsert("S", engine.Int(1))
	db.DeleteTupleToDelta(s1)

	p, err := datalog.ParseAndValidate("Delta_R(x) :- R(x), Delta_S(x).", s)
	if err != nil {
		t.Fatal(err)
	}
	var clauses []Clause
	if err := datalog.EvalRuleOnDB(db, p.Rules[0], func(a *datalog.Assignment) bool {
		clauses = append(clauses, ClauseOf(a))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(clauses) != 1 {
		t.Fatalf("clauses = %d, want 1", len(clauses))
	}
	c := clauses[0]
	if len(c.Pos) != 1 || c.Pos[0] != r1.TID {
		t.Fatalf("Pos = %v, want [%d]", c.Pos, r1.TID)
	}
	if len(c.Neg) != 1 || c.Neg[0] != s1.TID {
		t.Fatalf("Neg = %v, want [%d]", c.Neg, s1.TID)
	}
	if !strings.Contains(c.String(), fmt.Sprintf("¬t%d", s1.TID)) {
		t.Fatalf("String = %q missing negation", c.String())
	}
}

func TestClauseOfDeduplicatesRepeatedTuples(t *testing.T) {
	s := simpleSchema()
	db := engine.NewDatabase(s)
	db.MustInsert("R", engine.Int(1))
	// Rule with the same atom twice: R(x), R(x) binds the same tuple.
	p, err := datalog.ParseAndValidate("Delta_R(x) :- R(x), R(x).", s)
	if err != nil {
		t.Fatal(err)
	}
	var c Clause
	datalog.EvalRuleOnDB(db, p.Rules[0], func(a *datalog.Assignment) bool {
		c = ClauseOf(a)
		return false
	})
	if len(c.Pos) != 1 {
		t.Fatalf("Pos = %v, want single deduplicated entry", c.Pos)
	}
}

func TestClauseSigOrderInsensitive(t *testing.T) {
	a := Clause{Pos: []engine.TupleID{1, 2}, Neg: []engine.TupleID{3}}
	b := Clause{Pos: []engine.TupleID{2, 1}, Neg: []engine.TupleID{3}}
	if sigKey(9, a) != sigKey(9, b) {
		t.Fatal("canonical sigs should ignore Pos order")
	}
	c := Clause{Pos: []engine.TupleID{1}, Neg: []engine.TupleID{2, 3}}
	if sigKey(9, a) == sigKey(9, c) {
		t.Fatal("different clauses must have different sigs")
	}
	// Pos vs Neg placement matters.
	d := Clause{Pos: []engine.TupleID{1, 2, 3}}
	if sigKey(9, a) == sigKey(9, d) {
		t.Fatal("sign placement must be part of the sig")
	}
	// The head is part of the sig.
	if sigKey(9, a) == sigKey(8, a) {
		t.Fatal("head must be part of the sig")
	}
}

func TestFormulaDedupAndTupleIDs(t *testing.T) {
	f := NewFormula()
	c1 := Clause{Pos: []engine.TupleID{1}, Neg: []engine.TupleID{2}}
	if !f.Add(1, c1) {
		t.Fatal("first add should be new")
	}
	if f.Add(1, Clause{Pos: []engine.TupleID{1}, Neg: []engine.TupleID{2}}) {
		t.Fatal("duplicate clause should be dropped")
	}
	if !f.Add(3, c1) {
		t.Fatal("same clause under a different head is distinct")
	}
	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2", f.Len())
	}
	ids := f.TupleIDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("TupleIDs = %v", ids)
	}
}

func TestGraphLayersAndBenefits(t *testing.T) {
	// IDs: g=1, a4=2, ag4=3, a5=4, ag5=5.
	const g, a4, ag4, a5, ag5 = 1, 2, 3, 4, 5
	gr := NewGraph()
	// Layer 1: ∆(g) via {g}; layer 2: ∆(a) via {a, ag, ¬g} twice-ish.
	if !gr.AddDerivation(g, 1, Clause{Pos: []engine.TupleID{g}}) {
		t.Fatal("first derivation should record")
	}
	gr.AddDerivation(a4, 2, Clause{Pos: []engine.TupleID{a4, ag4}, Neg: []engine.TupleID{g}})
	gr.AddDerivation(a5, 2, Clause{Pos: []engine.TupleID{a5, ag5}, Neg: []engine.TupleID{g}})
	// Duplicate clause for a4 dropped.
	if gr.AddDerivation(a4, 3, Clause{Pos: []engine.TupleID{a4, ag4}, Neg: []engine.TupleID{g}}) {
		t.Fatal("duplicate clause should be dropped")
	}
	// Layer is fixed by the first derivation.
	if gr.Layer[a4] != 2 {
		t.Fatalf("layer = %d, want 2", gr.Layer[a4])
	}
	if gr.NumLayers != 2 {
		t.Fatalf("NumLayers = %d, want 2", gr.NumLayers)
	}
	if heads := gr.LayerHeads(2); len(heads) != 2 {
		t.Fatalf("layer-2 heads = %v", heads)
	}
	if gr.NumAssignments() != 3 {
		t.Fatalf("NumAssignments = %d, want 3", gr.NumAssignments())
	}
	b := gr.Benefits()
	// g: +1 (own assignment) -2 (delta dep of two a assignments) = -1.
	if b[g] != -1 {
		t.Fatalf("benefit[g] = %d, want -1", b[g])
	}
	// a4: +1; ag4: +1.
	if b[a4] != 1 || b[ag4] != 1 {
		t.Fatalf("benefits = %v", b)
	}
	if s := gr.String(); !strings.Contains(s, "layer 1:") || !strings.Contains(s, "layer 2:") {
		t.Fatalf("String = %q", s)
	}
}

// TestGraphMatchesPaperFigure5 rebuilds the running example's provenance
// graph and checks the benefits annotated in Figure 5: w1:3, p1:1, a2:-1,
// g2:-1, a3:-1, p2:2(*), w2:3, c:1, ag2/ag3 not derived (∅ benefit in the
// figure because they have no delta node; they participate in assignments).
func TestGraphMatchesPaperFigure5(t *testing.T) {
	// Tuple IDs standing in for the paper's named tuples.
	const g2, a2, ag2, a3, ag3, p1, w1, p2, w2, c = 1, 2, 3, 4, 5, 6, 7, 8, 9, 10
	ids := func(xs ...engine.TupleID) []engine.TupleID { return xs }
	g := NewGraph()
	// Rule (0): ∆(g2) from {g2}.
	g.AddDerivation(g2, 1, Clause{Pos: ids(g2)})
	// Rule (1): ∆(a2) from {a2, ag2, ¬g2}; ∆(a3) from {a3, ag3, ¬g2}.
	g.AddDerivation(a2, 2, Clause{Pos: ids(a2, ag2), Neg: ids(g2)})
	g.AddDerivation(a3, 2, Clause{Pos: ids(a3, ag3), Neg: ids(g2)})
	// Rules (2)/(3): ∆(p1), ∆(w1) from {p1, w1, ¬a2}; ∆(p2), ∆(w2) from {p2, w2, ¬a3}.
	g.AddDerivation(p1, 3, Clause{Pos: ids(p1, w1), Neg: ids(a2)})
	g.AddDerivation(w1, 3, Clause{Pos: ids(p1, w1), Neg: ids(a2)})
	g.AddDerivation(p2, 3, Clause{Pos: ids(p2, w2), Neg: ids(a3)})
	g.AddDerivation(w2, 3, Clause{Pos: ids(p2, w2), Neg: ids(a3)})
	// Rule (4): ∆(c) from {c, w1, w2, ¬p1}.
	g.AddDerivation(c, 4, Clause{Pos: ids(c, w1, w2), Neg: ids(p1)})

	b := g.Benefits()
	want := map[engine.TupleID]int{
		g2: 1 - 2, // own + delta-dep of a2, a3
		a2: 1 - 2, // own + delta-dep of p1/w1 clause (two clauses)
		a3: 1 - 2,
		w1: 3, // p1 clause, w1 clause, c clause
		w2: 3,
		p1: 2 - 1, // p1+w1 clauses positively, delta-dep of c
		p2: 2,
		c:  1,
	}
	for k, wv := range want {
		if b[k] != wv {
			t.Errorf("benefit[t%d] = %d, want %d", k, b[k], wv)
		}
	}
	if g.NumLayers != 4 {
		t.Fatalf("NumLayers = %d, want 4", g.NumLayers)
	}
}
