package engine

import (
	"fmt"
	"testing"
)

// TestShardOfMapKeyConsistency: values that compare equal across kinds
// (integral floats narrow to ints under mapKey) must hash to the same
// shard, or a replicated probe would miss co-located join partners.
func TestShardOfMapKeyConsistency(t *testing.T) {
	for _, p := range []int{2, 3, 4, 64} {
		for i := -5; i <= 5; i++ {
			a := ShardOf(Int(i), p)
			b := ShardOf(Float(float64(i)), p)
			if a != b {
				t.Fatalf("p=%d: ShardOf(Int(%d))=%d != ShardOf(Float(%d))=%d", p, i, a, i, b)
			}
		}
	}
	// Degenerate widths: everything lands on shard 0.
	if ShardOf(Int(42), 1) != 0 || ShardOf(Str("x"), 0) != 0 {
		t.Fatal("shards<=1 must map every value to shard 0")
	}
}

// TestShardOfSpread: a modest range of keys must not collapse onto one
// shard (mix64 finalization, not raw modulo of small ints).
func TestShardOfSpread(t *testing.T) {
	const p = 4
	counts := make([]int, p)
	for i := 0; i < 256; i++ {
		counts[ShardOf(Int(i), p)]++
		counts[ShardOf(Str(fmt.Sprintf("k%d", i)), p)]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d received no values: %v", s, counts)
		}
	}
}

// TestShardForksPartition: the forks returned by ShardForks must be a
// disjoint, complete partition of every keyed relation — each live tuple
// visible in exactly one fork, at the shard its key column hashes to —
// while unkeyed relations stay fully visible everywhere.
func TestShardForksPartition(t *testing.T) {
	db := cowDB(t, 200)
	// Mixed-core shape: freeze once, then grow a delta tail and delete a
	// few frozen rows so base cores, delta cores, and fdel overlays all
	// participate in the partition.
	_ = db.Freeze()
	for i := 0; i < 40; i++ {
		db.MustInsert("R", Int(100+i), Str("tail"))
	}
	rt := db.Relation("R").Tuples()
	db.DeleteTupleToDelta(rt[0])
	db.DeleteTupleToDelta(rt[3])
	snap := db.Freeze()

	const p = 4
	forks := snap.ShardForks(p, map[string]int{"R": 0})
	if len(forks) != p {
		t.Fatalf("got %d forks, want %d", len(forks), p)
	}

	seen := make(map[TupleID]int)
	for s, f := range forks {
		f.Relation("R").Scan(func(tp *Tuple) bool {
			if want := ShardOf(tp.Vals[0], p); want != s {
				t.Fatalf("tuple %s in shard %d, key hashes to %d", tp.Key(), s, want)
			}
			if prev, dup := seen[tp.TID]; dup {
				t.Fatalf("tuple %s visible in shards %d and %d", tp.Key(), prev, s)
			}
			seen[tp.TID] = s
			return true
		})
		// Unkeyed relation: every fork sees all of S.
		if got, want := f.Relation("S").Len(), db.Relation("S").Len(); got != want {
			t.Fatalf("shard %d sees %d S-tuples, want %d (replicated)", s, got, want)
		}
	}
	if got, want := len(seen), db.Relation("R").Len(); got != want {
		t.Fatalf("union of shards holds %d R-tuples, want %d", got, want)
	}
	// The partition must not leak back: the source database still sees
	// every live tuple.
	if db.Relation("R").Len() != len(seen) {
		t.Fatal("sharding mutated the source database")
	}

	// Width 1 short-circuits to a plain fork.
	one := snap.ShardForks(1, map[string]int{"R": 0})
	if len(one) != 1 || one[0].Relation("R").Len() != db.Relation("R").Len() {
		t.Fatal("ShardForks(1) must return one full fork")
	}
}
