package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// cowSchema builds the two-relation schema the CoW tests share.
func cowSchema(t testing.TB) *Schema {
	t.Helper()
	s := NewSchema()
	if _, err := s.AddRelation("R", "r", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddRelation("S", "s", "x", "y"); err != nil {
		t.Fatal(err)
	}
	return s
}

// cowDB builds a database with n R-rows and n/2 S-rows of varied values.
func cowDB(t testing.TB, n int) *Database {
	t.Helper()
	db := NewDatabase(cowSchema(t))
	for i := 0; i < n; i++ {
		db.MustInsert("R", Int(i%7), Str(fmt.Sprintf("v%d", i%5)))
		if i%2 == 0 {
			db.MustInsert("S", Int(i%3), Int(i))
		}
	}
	return db
}

// observe renders every observable facet of a relation into one string:
// length, iteration order, per-column lookups over a value sample, lookup
// counts, and key-based membership. Tuples print as key#seq/id — all
// deterministic across a fork and a deep clone fed identical mutation
// streams (fresh inserts intern distinct TupleIDs on each side, so TIDs
// are deliberately not part of the observation). Two relations with equal
// observations are indistinguishable through the public API.
func observe(r *Relation) string {
	var b bytes.Buffer
	name := func(t *Tuple) string { return fmt.Sprintf("%s#%d/%s", t.Key(), t.Seq, t.ID) }
	fmt.Fprintf(&b, "len=%d\n", r.Len())
	r.Scan(func(t *Tuple) bool {
		b.WriteString(name(t))
		b.WriteByte(' ')
		return true
	})
	b.WriteByte('\n')
	for col := 0; col < r.Arity; col++ {
		for _, v := range []Value{Int(0), Int(1), Int(2), Int(4), Int(6), Str("v0"), Str("v3")} {
			fmt.Fprintf(&b, "c%d/%s:%d[", col, v, r.LookupCount(col, v))
			for _, t := range r.Lookup(col, v) {
				b.WriteString(name(t))
				b.WriteByte(' ')
			}
			b.WriteString("] ")
		}
		b.WriteByte('\n')
	}
	for _, k := range r.Keys() {
		if t := r.Get(k); t == nil {
			fmt.Fprintf(&b, "MISSING %s\n", k)
		}
	}
	return b.String()
}

// observeDB renders base and delta observations for every relation.
func observeDB(db *Database) string {
	var b bytes.Buffer
	for _, rs := range db.Schema.Relations {
		fmt.Fprintf(&b, "== %s base ==\n%s== %s delta ==\n%s",
			rs.Name, observe(db.Relation(rs.Name)), rs.Name, observe(db.Delta(rs.Name)))
	}
	return b.String()
}

// TestForkDifferentialModel is the model-based differential test for the
// copy-on-write fork: a fork and a deep clone of the same frozen state
// receive an identical randomized interleaved stream of inserts and
// deletes (hitting frozen tuples, tail tuples, duplicate content, and
// re-insertions) and must stay byte-identical through every public
// observation; meanwhile the parent receives its own mutation stream and
// must never see the fork's changes, nor the fork the parent's — mutation
// isolation in both directions. Runs under -race in CI.
func TestForkDifferentialModel(t *testing.T) {
	for _, n := range []int{10, 60, 300} {
		for seed := int64(0); seed < 6; seed++ {
			t.Run(fmt.Sprintf("n%d/seed%d", n, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				db := cowDB(t, n)
				parentBefore := observeDB(db)
				snap := db.Freeze()
				if got := observeDB(db); got != parentBefore {
					t.Fatalf("Freeze changed the parent's observable state:\n%s\nvs\n%s", got, parentBefore)
				}
				fork := snap.Fork()
				clone := db.Clone() // deep, flat: the reference behaviour

				// Pools of tuples the mutation stream draws from.
				frozen := append(db.Relation("R").Tuples(), db.Relation("S").Tuples()...)
				var inserted []*Tuple

				step := func(target, ref *Database) {
					rel := "R"
					if rng.Intn(3) == 0 {
						rel = "S"
					}
					switch op := rng.Intn(10); {
					case op < 3: // insert fresh content
						v1, v2 := Int(rng.Intn(9)), Int(1000+rng.Intn(2*n))
						a, err := target.Insert(rel, v1, v2)
						if err != nil {
							t.Fatal(err)
						}
						if ref != nil {
							if _, err := ref.Insert(rel, v1, v2); err != nil {
								t.Fatal(err)
							}
						}
						inserted = append(inserted, a)
					case op < 5: // delete a frozen-base tuple
						tp := frozen[rng.Intn(len(frozen))]
						got := target.Relation(tp.Rel).DeleteTuple(tp)
						if got {
							target.Delta(tp.Rel).Insert(tp)
						}
						if ref != nil {
							want := ref.Relation(tp.Rel).DeleteTuple(tp)
							if want {
								ref.Delta(tp.Rel).Insert(tp)
							}
							if got != want {
								t.Fatalf("DeleteTuple(%s) fork=%v clone=%v", tp, got, want)
							}
						}
					case op < 7 && len(inserted) > 0: // delete tail content by key
						// The fork and the clone mint distinct tuple objects
						// for the same inserted content, so tail deletion is
						// mirrored by content key, not object identity.
						tp := inserted[rng.Intn(len(inserted))]
						got := target.Relation(tp.Rel).Delete(tp.Key())
						if ref != nil {
							want := ref.Relation(tp.Rel).Delete(tp.Key())
							if got != want {
								t.Fatalf("tail Delete(%q) fork=%v clone=%v", tp.Key(), got, want)
							}
						}
					case op < 8: // re-insert a frozen tuple object (same TID)
						tp := frozen[rng.Intn(len(frozen))]
						got := target.Relation(tp.Rel).Insert(tp)
						if ref != nil {
							want := ref.Relation(tp.Rel).Insert(tp)
							if got != want {
								t.Fatalf("re-Insert(%s) fork=%v clone=%v", tp, got, want)
							}
						}
					case op < 9: // duplicate content under a fresh object
						tp := frozen[rng.Intn(len(frozen))]
						fresh := NewTuple(tp.Rel, tp.Vals...)
						fresh.Seq = tp.Seq
						got := target.Relation(tp.Rel).Insert(fresh)
						if ref != nil {
							want := ref.Relation(tp.Rel).Insert(fresh)
							if got != want {
								t.Fatalf("dup Insert(%s) fork=%v clone=%v", tp, got, want)
							}
						}
					default: // key-based delete
						tp := frozen[rng.Intn(len(frozen))]
						got := target.Relation(tp.Rel).Delete(tp.Key())
						if ref != nil {
							want := ref.Relation(tp.Rel).Delete(tp.Key())
							if got != want {
								t.Fatalf("Delete(%q) fork=%v clone=%v", tp.Key(), got, want)
							}
						}
					}
				}

				// Interleave: fork+clone get the same stream; the parent a
				// private one. Deletion volume intentionally crosses the
				// materialize threshold for the small sizes.
				steps := 4 * n
				for i := 0; i < steps; i++ {
					step(fork, clone)
					if i%3 == 0 {
						step(db, nil)
					}
					if i%16 == 0 {
						if got, want := observeDB(fork), observeDB(clone); got != want {
							t.Fatalf("step %d: fork diverged from clone:\n%s\nvs\n%s", i, got, want)
						}
					}
				}
				if got, want := observeDB(fork), observeDB(clone); got != want {
					t.Fatalf("final: fork diverged from clone:\n%s\nvs\n%s", got, want)
				}

				// Both directions of isolation: a fresh fork of the same
				// snapshot still observes the original frozen state even
				// though both the parent and the sibling fork mutated.
				if got := observeDB(snap.Fork()); got != parentBefore {
					t.Fatalf("snapshot state leaked mutations:\n%s\nvs\n%s", got, parentBefore)
				}
			})
		}
	}
}

// TestForkSharedWarmIndexes asserts the RunAllParallel satellite: sibling
// forks of one snapshot share warm index pages, and forking does not
// rebuild indexes for untouched relations. The frozen index is built at
// most once per (snapshot, column) — either donated by the frozen
// database or built by the first fork to probe — and every later fork
// reads the identical bucket map.
func TestForkSharedWarmIndexes(t *testing.T) {
	db := cowDB(t, 200)
	db.Relation("R").EnsureIndex(0) // warm before freezing
	snap := db.Freeze()

	fzR := snap.base["R"]
	idx0 := fzR.indexes.Load()
	if idx0 == nil {
		t.Fatal("freeze did not donate the warm index to the frozen core")
	}
	warm := (*idx0)[0]
	if warm == nil {
		t.Fatal("frozen core missing the pre-warmed column-0 index")
	}

	fork1, fork2 := snap.Fork(), snap.Fork()
	if len(fork1.Relation("R").Lookup(0, Int(3))) == 0 {
		t.Fatal("fork1 lookup empty")
	}
	if len(fork2.Relation("R").Lookup(0, Int(3))) == 0 {
		t.Fatal("fork2 lookup empty")
	}
	after := fzR.indexes.Load()
	if got := (*after)[0]; fmt.Sprintf("%p", got) != fmt.Sprintf("%p", warm) {
		t.Fatal("fork lookups rebuilt the column-0 index instead of sharing the warm one")
	}

	// A column no fork has touched: the first probing fork builds it once
	// on the shared core; the second reads the identical map.
	if fork1.Relation("R").LookupCount(1, Str("v1")) == 0 {
		t.Fatal("fork1 col-1 lookup empty")
	}
	built := (*fzR.indexes.Load())[1]
	if built == nil {
		t.Fatal("first probe did not publish the shared col-1 index")
	}
	if fork2.Relation("R").LookupCount(1, Str("v1")) == 0 {
		t.Fatal("fork2 col-1 lookup empty")
	}
	if got := (*fzR.indexes.Load())[1]; fmt.Sprintf("%p", got) != fmt.Sprintf("%p", built) {
		t.Fatal("second fork rebuilt the col-1 index instead of sharing it")
	}

	// Untouched relation S: forking it allocated no index at all.
	if fork1.Relation("S").indexes != nil || fork2.Relation("S").indexes != nil {
		t.Fatal("fork allocated tail indexes for an untouched relation")
	}
	if snap.base["S"].indexes.Load() != nil {
		t.Fatal("frozen core built an index nobody asked for")
	}
}

// TestFreezeIdempotentAndCached: freezing an unmodified database (or a
// pristine fork) returns the cached snapshot without copying; mutating
// then refreezing mints a new snapshot that reflects the mutation while
// sharing cores of untouched relations.
func TestFreezeIdempotentAndCached(t *testing.T) {
	db := cowDB(t, 50)
	s1 := db.Freeze()
	if s2 := db.Freeze(); s2 != s1 {
		t.Fatal("refreezing an unmodified database minted a new snapshot")
	}
	fork := s1.Fork()
	if s3 := fork.Freeze(); s3 != s1 {
		t.Fatal("freezing a pristine fork did not share the parent snapshot")
	}

	// Diverge R on the fork, leave S untouched: the refreeze must mint a
	// new snapshot, share S's core, and replace R's.
	victim := fork.Relation("R").Tuples()[0]
	if !fork.DeleteTupleToDelta(victim) {
		t.Fatal("delete failed")
	}
	s4 := fork.Freeze()
	if s4 == s1 {
		t.Fatal("freezing a diverged fork returned the stale snapshot")
	}
	if s4.base["S"] != s1.base["S"] {
		t.Fatal("refreeze copied the core of an untouched relation")
	}
	if s4.base["R"] == s1.base["R"] {
		t.Fatal("refreeze shared the core of a diverged relation")
	}
	if got, want := s4.Fork().Relation("R").Len(), db.Relation("R").Len()-1; got != want {
		t.Fatalf("refrozen R length = %d, want %d", got, want)
	}
	// The original snapshot still serves the pre-mutation state.
	if got := s1.Fork().Relation("R").Len(); got != db.Relation("R").Len() {
		t.Fatalf("original snapshot R length = %d, want %d", got, db.Relation("R").Len())
	}
}

// TestSnapshotSaveLoadForked is the regression test for snapshot
// persistence of forked databases: Save must flatten the overlay (frozen
// base minus this fork's deletions plus its tail) and round-trip through
// LoadSnapshot byte-identically, including delta contents, warm index
// columns, and ID-minting state.
func TestSnapshotSaveLoadForked(t *testing.T) {
	db := cowDB(t, 40)
	db.Relation("R").EnsureIndex(1)
	snap := db.Freeze()
	fork := snap.Fork()

	// Diverge the fork: delete two frozen tuples, insert one new one.
	tuples := fork.Relation("R").Tuples()
	for _, tp := range []*Tuple{tuples[3], tuples[17]} {
		if !fork.DeleteTupleToDelta(tp) {
			t.Fatalf("delete %s failed", tp)
		}
	}
	added := fork.MustInsert("R", Int(99), Str("fresh"))

	var buf bytes.Buffer
	if err := fork.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}

	for _, rel := range []string{"R", "S"} {
		wantBase, gotBase := fork.Relation(rel).Keys(), loaded.Relation(rel).Keys()
		if fmt.Sprint(wantBase) != fmt.Sprint(gotBase) {
			t.Fatalf("%s base mismatch after round-trip:\n%v\nvs\n%v", rel, gotBase, wantBase)
		}
		wantDelta, gotDelta := fork.Delta(rel).Keys(), loaded.Delta(rel).Keys()
		if fmt.Sprint(wantDelta) != fmt.Sprint(gotDelta) {
			t.Fatalf("%s delta mismatch after round-trip:\n%v\nvs\n%v", rel, gotDelta, wantDelta)
		}
	}
	if got := loaded.Relation("R").Get(added.Key()); got == nil || got.ID != added.ID {
		t.Fatalf("tail tuple %s did not round-trip (got %v)", added, got)
	}
	if got := fmt.Sprint(loaded.Relation("R").IndexedColumns()); got != fmt.Sprint(fork.Relation("R").IndexedColumns()) {
		t.Fatalf("warm index columns did not round-trip: %s vs %v", got, fork.Relation("R").IndexedColumns())
	}
	// ID minting continues identically on both sides.
	a, b := fork.MustInsert("R", Int(5), Str("post")), loaded.MustInsert("R", Int(5), Str("post"))
	if a.ID != b.ID || a.Seq != b.Seq {
		t.Fatalf("minting diverged after round-trip: fork %s/seq%d, loaded %s/seq%d", a.ID, a.Seq, b.ID, b.Seq)
	}
	// The parent and snapshot remain untouched by all of the above.
	if got := snap.Fork().Relation("R").Len(); got != db.Relation("R").Len() {
		t.Fatalf("snapshot mutated: R length %d, want %d", got, db.Relation("R").Len())
	}
}

// TestForkConcurrentReaders: many goroutines fork one snapshot and probe
// unbuilt indexes and intern maps concurrently — the lazy shared builds
// must be race-free (meaningful under -race, which CI runs).
func TestForkConcurrentReaders(t *testing.T) {
	db := cowDB(t, 300)
	snap := db.Freeze()
	done := make(chan string, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			fork := snap.Fork()
			total := 0
			for col := 0; col < 2; col++ {
				for i := 0; i < 9; i++ {
					total += fork.Relation("R").LookupCount(col, Int(i))
					total += len(fork.Relation("S").Lookup(col, Int(i)))
				}
			}
			if !fork.Relation("R").Contains(ContentKey("R", []Value{Int(1), Str("v1")})) {
				done <- "missing key"
				return
			}
			tp := fork.Relation("R").Tuples()[g]
			if !fork.DeleteTupleToDelta(tp) {
				done <- "delete failed"
				return
			}
			done <- fmt.Sprintf("%d/%d", total, fork.Relation("R").Len())
		}(g)
	}
	first := <-done
	for g := 1; g < 8; g++ {
		if got := <-done; got != first {
			t.Fatalf("goroutine observations diverged: %s vs %s", got, first)
		}
	}
}
