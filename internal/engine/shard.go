package engine

import "math"

// Hash-shard views over frozen cores.
//
// Sharded parallel evaluation (see internal/core) splits a snapshot into P
// disjoint partitions, one per worker, with each partitioned relation
// hash-split on its partition key column. A shard is an ordinary
// copy-on-write fork whose deletion bitmap pre-marks every frozen row the
// shard does not own — a positional filter over the shared cores, no tuple
// copies — so all of the engine's read paths (columnar probes, frozen
// indexes, scans) work on shards unchanged, and relations without a
// partition key are replicated to every shard for free by the fork itself.

// MaxShards caps the shard fan-out of one evaluation. Well above any
// plausible core count; bounds the per-relation bitmap work.
const MaxShards = 64

// mix64 is the splitmix64 finalizer: a cheap full-avalanche bijection so
// that dense integer keys (the common case — entity IDs) spread uniformly
// across shards instead of striping.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fnv64 is FNV-1a over the string bytes.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// shardHash hashes the mapKey-normalized value, so values that are Equal
// (1 == 1.0 cross-kind) always hash to the same shard.
func shardHash(v Value) uint64 {
	k := v.mapKey()
	switch k.Kind {
	case KindInt:
		return mix64(uint64(k.Int))
	case KindString:
		return mix64(fnv64(k.Str))
	default: // non-integral float (mapKey narrows integral floats to int)
		return mix64(math.Float64bits(k.Flt) ^ 0x9e3779b97f4a7c15)
	}
}

// ShardOf returns the shard owning the value under a hash-partitioning
// into the given number of shards. Deterministic across processes;
// consistent with Value.Equal (equal values share a shard).
func ShardOf(v Value, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(shardHash(v) % uint64(shards))
}

// ShardForks mints p working copies of the snapshot with every relation
// named in keys hash-partitioned on its key column: fork i sees exactly
// the frozen rows (base and delta side) whose key value hashes to shard i,
// plus every unkeyed relation in full. The partition is a per-fork
// deletion bitmap over the shared frozen cores — O(rows/64) words per
// shard and no tuple copies — computed on the columnar key vector when the
// columnar image is available.
func (s *Snapshot) ShardForks(p int, keys map[string]int) []*Database {
	if p > MaxShards {
		p = MaxShards
	}
	if p < 1 {
		p = 1
	}
	forks := make([]*Database, p)
	for i := range forks {
		forks[i] = s.Fork()
	}
	if p == 1 {
		return forks
	}
	for name, col := range keys {
		shardCore(forks, s.base[name], col, true)
		shardCore(forks, s.delta[name], col, false)
	}
	return forks
}

// shardCore installs the partition bitmaps for one frozen core (the base
// or delta side of one keyed relation) into every fork.
func shardCore(forks []*Database, fz *frozenRel, col int, base bool) {
	if fz == nil || len(fz.order) == 0 {
		return
	}
	p := len(forks)
	owners := fz.shardOwners(col, p)
	n := len(owners)
	words := (n + 63) / 64
	counts := make([]int, p)
	for _, o := range owners {
		counts[o]++
	}
	for i, fdb := range forks {
		if counts[i] == n {
			continue // this shard owns every row: stay a pristine overlay
		}
		r := fdb.delta[fz.name]
		if base {
			r = fdb.base[fz.name]
		}
		bits := make([]uint64, words)
		for w := range bits {
			bits[w] = ^uint64(0) // stray bits past n are never queried
		}
		for pos, o := range owners {
			if int(o) == i {
				bits[pos>>6] &^= 1 << (uint(pos) & 63)
			}
		}
		r.fdel, r.fdead = bits, n-counts[i]
	}
}

// shardOwners computes the owning shard of every frozen row by hashing the
// key column. The columnar fast path hashes int cells straight off the
// vector and memoizes string cells per intern index (equal strings share
// an index, so each distinct string is hashed once per core).
func (fz *frozenRel) shardOwners(col, p int) []uint8 {
	owners := make([]uint8, len(fz.order))
	fc := fz.columnar()
	if fc == nil {
		for pos, t := range fz.order {
			owners[pos] = uint8(ShardOf(t.Vals[col], p))
		}
		return owners
	}
	cv := &fc.cols[col]
	var strOwner []int16 // per intern index: owner+1, 0 = not yet hashed
	for pos := range owners {
		switch cv.kindAt(pos) {
		case KindInt:
			owners[pos] = uint8(mix64(uint64(cv.data[pos])) % uint64(p))
		case KindFloat:
			// Reconstruct so mapKey normalization (integral floats narrow
			// to int) keeps cross-kind equal values on one shard.
			f := math.Float64frombits(uint64(cv.data[pos]))
			owners[pos] = uint8(ShardOf(Value{Kind: KindFloat, Flt: f}, p))
		default:
			if strOwner == nil {
				strOwner = make([]int16, len(fc.strs))
			}
			si := cv.data[pos]
			o := strOwner[si]
			if o == 0 {
				o = int16(ShardOf(Value{Kind: KindString, Str: fc.strs[si]}, p)) + 1
				strOwner[si] = o
			}
			owners[pos] = uint8(o - 1)
		}
	}
	return owners
}
