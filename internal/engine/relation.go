package engine

import (
	"fmt"
	"sort"
)

// Relation is a set of tuples with deterministic iteration order and lazily
// built hash indexes on single columns. Identity is the interned TupleID:
// membership, deletion, and index buckets are all integer-keyed, and
// iteration walks a compacted slice with a liveness bitmap — no content key
// is hashed or built on the scan/lookup path. A content-key intern map
// exists only for the key-based API (Contains/Get/Delete by string) and is
// built lazily the first time it is needed.
//
// Deletions are O(1) per index (buckets tombstone lazily); iteration skips
// dead slots and the backing slice is compacted when more than half of it
// is dead.
//
// A Relation is either flat (it owns all of its storage) or a
// copy-on-write overlay over a shared immutable frozenRel (see cow.go). An
// overlay records divergence from the frozen base as a per-fork deletion
// bitmap (fdel/fdead) plus a private appended tail, for which the flat
// machinery below (byID/order/live/indexes/byKey) is reused unchanged.
// Every read merges "frozen minus deleted" with the tail in insertion
// order, so an overlay is observationally identical to the deep clone it
// replaces while forking in O(1) and mutating in O(changes).
//
// A Relation is used both for base relations R_i and delta relations ∆_i
// (which share the base relation's schema per §3.1 of the paper).
type Relation struct {
	Name  string
	Arity int

	// frozen, when non-nil, is the shared immutable base this relation
	// overlays. fdel marks deleted frozen tuples by their position in
	// frozen.order (lazily allocated bitmap); fdead counts the set bits.
	// All remaining fields then describe only the private tail.
	frozen *frozenRel
	fdel   []uint64
	fdead  int

	byID  map[TupleID]int32 // live tuples: TID -> position in order
	order []*Tuple          // insertion order; dead slots remain until compact
	live  []bool            // liveness bitmap parallel to order
	dead  int               // number of dead slots in order

	// byKey is the content intern map (content key -> TID). It is built
	// lazily on the first insert or key-based operation and maintained
	// afterwards; relations that are only scanned, probed, and deleted
	// from (forked bases inside executors) never pay for it. For an
	// overlay it covers only the tail: frozen content resolves through the
	// frozenRel's shared intern map, built once per snapshot.
	byKey map[string]TupleID

	// indexes[col][value] -> bucket of TIDs having that value at col.
	// Values are normalized with Value.mapKey, so probing hashes the Value
	// directly — no string building. For an overlay these buckets cover
	// only the tail; the frozen side of a lookup reads the frozenRel's
	// shared warm index, built at most once per snapshot across all forks.
	indexes map[int]map[Value]*idxBucket

	// dirty lists index buckets holding tombstoned IDs since the last
	// SyncIndexes call, so staleness can be flushed in O(affected buckets)
	// before a phase that reads the relation concurrently.
	dirty []*idxBucket

	// positional marks a scratch relation (NewScratchRelation): inserts of
	// interned tuples dedup by ID alone and skip intern-map maintenance.
	positional bool
}

// idxBucket is one hash-index bucket: tuple IDs in insertion order, of
// which n are still live (dead IDs are filtered out lazily on lookup).
type idxBucket struct {
	ids   []TupleID
	n     int32 // live count
	stale bool  // queued on Relation.dirty for the next SyncIndexes

	// maxSeq and unsorted track whether ids is provably Seq-ascending, so
	// LookupEach can stream the bucket without materializing and sorting a
	// result slice. Appends below the running max mark the bucket unsorted;
	// compaction preserves relative order, so the flag only ever needs to
	// be set on insert (it stays conservatively set even if deletions
	// restore sortedness).
	maxSeq   int
	unsorted bool
}

// NewRelation creates an empty relation.
func NewRelation(name string, arity int) *Relation {
	return &Relation{
		Name:  name,
		Arity: arity,
		byID:  make(map[TupleID]int32),
	}
}

// NewScratchRelation creates a positional scratch relation for evaluation
// internals (seminaive frontiers, single-row event sources): inserting an
// already-interned tuple dedups by TupleID alone, with no content-key work
// at all. The caller must only insert tuples drawn from one database
// lineage (where equal content implies the same tuple object) — exactly
// the invariant evaluation scratch space satisfies. Key-based lookups
// still work (the intern map builds lazily) but are not expected here.
func NewScratchRelation(name string, arity int) *Relation {
	r := NewRelation(name, arity)
	r.positional = true
	return r
}

// fdelGet reports whether the frozen tuple at the given position has been
// deleted in this overlay.
func (r *Relation) fdelGet(pos int32) bool {
	if r.fdel == nil {
		return false
	}
	return r.fdel[uint32(pos)>>6]&(1<<(uint32(pos)&63)) != 0
}

// fdelSet marks the frozen tuple at the given position deleted, allocating
// the bitmap on first use (one word per 64 frozen tuples).
func (r *Relation) fdelSet(pos int32) {
	if r.fdel == nil {
		r.fdel = make([]uint64, (len(r.frozen.order)+63)/64)
	}
	r.fdel[uint32(pos)>>6] |= 1 << (uint32(pos) & 63)
}

// Len returns the number of live tuples.
func (r *Relation) Len() int {
	n := len(r.byID)
	if r.frozen != nil {
		n += len(r.frozen.order) - r.fdead
	}
	return n
}

// ContainsID reports whether the tuple with the given interned ID is live.
func (r *Relation) ContainsID(id TupleID) bool {
	if _, ok := r.byID[id]; ok {
		return true
	}
	if r.frozen != nil {
		if pos, ok := r.frozen.byID[id]; ok {
			return !r.fdelGet(pos)
		}
	}
	return false
}

// ContainsTuple reports whether the given tuple is live in the relation.
func (r *Relation) ContainsTuple(t *Tuple) bool { return r.ContainsID(t.TID) }

// GetID returns the live tuple with the given interned ID, or nil.
func (r *Relation) GetID(id TupleID) *Tuple {
	if pos, ok := r.byID[id]; ok {
		return r.order[pos]
	}
	if r.frozen != nil {
		if pos, ok := r.frozen.byID[id]; ok && !r.fdelGet(pos) {
			return r.frozen.order[pos]
		}
	}
	return nil
}

// Contains reports whether a tuple with the given content key is live.
func (r *Relation) Contains(key string) bool {
	_, ok := r.lookupKey(key)
	return ok
}

// Get returns the live tuple with the given content key, or nil.
func (r *Relation) Get(key string) *Tuple {
	if id, ok := r.lookupKey(key); ok {
		return r.GetID(id)
	}
	return nil
}

// lookupKey resolves a content key to a live tuple's ID, consulting the
// tail intern map and, for overlays, the snapshot-shared frozen intern map
// filtered through the deletion bitmap.
func (r *Relation) lookupKey(key string) (TupleID, bool) {
	if id, ok := r.internKeys()[key]; ok {
		return id, true
	}
	if fz := r.frozen; fz != nil && len(fz.order) > 0 {
		if id, ok := fz.keyMap()[key]; ok && !r.fdelGet(fz.byID[id]) {
			return id, true
		}
	}
	return 0, false
}

// internKeys returns the tail content intern map, building it on first use.
// For a flat relation the tail is the whole relation.
func (r *Relation) internKeys() map[string]TupleID {
	if r.byKey == nil {
		r.byKey = make(map[string]TupleID, len(r.byID))
		for i, t := range r.order {
			if r.live[i] {
				r.byKey[t.Key()] = t.TID
			}
		}
	}
	return r.byKey
}

// Insert adds a tuple; it reports whether the tuple was new (set
// semantics: content that is already present, under any tuple object, is
// not inserted again). The tuple's arity must match the relation's. A tuple
// inserted for the first time anywhere is interned (assigned its TupleID).
//
// This is the insert/dedup boundary — the one place outside reporting where
// the content intern map is consulted. The common case (an interned tuple
// already present by ID) short-circuits before any content-key work. On an
// overlay, inserts always land in the private tail; the frozen base is
// never modified.
func (r *Relation) Insert(t *Tuple) bool {
	if len(t.Vals) != r.Arity {
		panic(fmt.Sprintf("engine: arity mismatch inserting %s into %s/%d", t, r.Name, r.Arity))
	}
	if t.TID != 0 {
		if _, dup := r.byID[t.TID]; dup {
			return false
		}
		if fz := r.frozen; fz != nil {
			if pos, ok := fz.byID[t.TID]; ok && !r.fdelGet(pos) {
				return false
			}
		}
	}
	if !r.positional || t.TID == 0 {
		if _, dup := r.lookupKey(t.Key()); dup {
			return false
		}
	}
	assignTupleID(t)
	// Index maintenance runs before t joins byID: compacting a bucket with
	// stale entries here drops any tombstoned id t left behind from an
	// earlier delete, so re-insertion cannot duplicate it.
	for col, idx := range r.indexes {
		v := t.Vals[col].mapKey()
		b := idx[v]
		if b == nil {
			b = &idxBucket{}
			idx[v] = b
		}
		if int(b.n) != len(b.ids) {
			b.compact(r)
		}
		b.ids = append(b.ids, t.TID)
		b.n++
		if t.Seq < b.maxSeq {
			b.unsorted = true
		} else {
			b.maxSeq = t.Seq
		}
	}
	pos := int32(len(r.order))
	r.byID[t.TID] = pos
	r.order = append(r.order, t)
	r.live = append(r.live, true)
	if r.byKey != nil {
		r.byKey[t.Key()] = t.TID
	}
	return true
}

// DeleteID removes the tuple with the given interned ID; it reports whether
// the tuple was live. Deleting a frozen tuple from an overlay sets one bit
// in the fork's deletion bitmap — the shared base and its warm indexes are
// untouched (lookups filter through the bitmap lazily).
func (r *Relation) DeleteID(id TupleID) bool {
	pos, ok := r.byID[id]
	if !ok {
		if fz := r.frozen; fz != nil {
			if fpos, ok := fz.byID[id]; ok && !r.fdelGet(fpos) {
				r.fdelSet(fpos)
				r.fdead++
				// The tail intern map never holds frozen keys, and frozen
				// index buckets are filtered through the bitmap at lookup,
				// so no map or bucket maintenance is needed here.
				// Mirror the flat-relation compaction policy: once most of
				// the frozen base is deleted the overlay stops paying the
				// bitmap filter on every scan and flattens into a private
				// flat relation.
				if r.fdead*2 > len(fz.order) && len(fz.order) > 16 {
					r.materialize()
				}
				return true
			}
		}
		return false
	}
	t := r.order[pos]
	delete(r.byID, id)
	r.live[pos] = false
	if r.byKey != nil {
		delete(r.byKey, t.Key())
	}
	for col, idx := range r.indexes {
		if b := idx[t.Vals[col].mapKey()]; b != nil {
			b.n-- // the stale ID is filtered lazily on the next lookup
			if b.n == 0 {
				delete(idx, t.Vals[col].mapKey())
			} else if !b.stale {
				b.stale = true
				r.dirty = append(r.dirty, b)
			}
		}
	}
	// Tombstone in the order slice; compact when mostly dead.
	r.dead++
	if r.dead*2 > len(r.order) && len(r.order) > 16 {
		r.compact()
	}
	return true
}

// DeleteTuple removes the given tuple; it reports whether it was live.
func (r *Relation) DeleteTuple(t *Tuple) bool { return r.DeleteID(t.TID) }

// Delete removes the tuple with the given content key; it reports whether
// the tuple was present.
func (r *Relation) Delete(key string) bool {
	id, ok := r.lookupKey(key)
	if !ok {
		return false
	}
	return r.DeleteID(id)
}

// compact drops dead slots from the tail's order slice.
func (r *Relation) compact() {
	n := 0
	for i, t := range r.order {
		if r.live[i] {
			r.order[n] = t
			r.byID[t.TID] = int32(n)
			n++
		}
	}
	for i := range n {
		r.live[i] = true
	}
	r.order = r.order[:n]
	r.live = r.live[:n]
	r.dead = 0
}

// materialize flattens an overlay into a private flat relation: the live
// frozen tuples and the live tail merge into owned storage, and indexed
// columns are rebuilt locally. Called when the overlay has diverged so far
// (or must be refrozen) that structural sharing no longer pays.
func (r *Relation) materialize() {
	r.flatten(r.IndexedColumns())
}

// flatten merges the live frozen tuples and the live tail into owned flat
// storage, then rebuilds local indexes for cols (nil skips the rebuild —
// freeze flattens this way because the new core builds its own positional
// indexes from the merged order).
func (r *Relation) flatten(cols []int) {
	fz := r.frozen
	if fz == nil {
		return
	}
	n := r.Len()
	order := make([]*Tuple, 0, n)
	byID := make(map[TupleID]int32, n)
	for i, t := range fz.order {
		if r.fdelGet(int32(i)) {
			continue
		}
		byID[t.TID] = int32(len(order))
		order = append(order, t)
	}
	for i, t := range r.order {
		if !r.live[i] {
			continue
		}
		byID[t.TID] = int32(len(order))
		order = append(order, t)
	}
	live := make([]bool, len(order))
	for i := range live {
		live[i] = true
	}
	r.frozen, r.fdel, r.fdead = nil, nil, 0
	r.byID, r.order, r.live, r.dead = byID, order, live, 0
	r.byKey = nil
	r.indexes = nil
	r.dirty = nil
	for _, col := range cols {
		r.ensureIndex(col)
	}
}

// Scan calls fn for each live tuple in insertion order; fn returning false
// stops the scan. Mutating the relation during a scan is not supported.
// For an overlay the frozen base (minus this fork's deletions) precedes the
// tail, which is exactly the insertion order a deep clone would observe.
func (r *Relation) Scan(fn func(*Tuple) bool) {
	if fz := r.frozen; fz != nil {
		if r.fdead == 0 {
			for _, t := range fz.order {
				if !fn(t) {
					return
				}
			}
		} else {
			for i, t := range fz.order {
				if r.fdelGet(int32(i)) {
					continue
				}
				if !fn(t) {
					return
				}
			}
		}
	}
	for i, t := range r.order {
		if !r.live[i] {
			continue
		}
		if !fn(t) {
			return
		}
	}
}

// Tuples returns the live tuples in insertion order.
func (r *Relation) Tuples() []*Tuple {
	out := make([]*Tuple, 0, r.Len())
	r.Scan(func(t *Tuple) bool { out = append(out, t); return true })
	return out
}

// Keys returns the live tuples' content keys in insertion order (reporting
// convenience; not used on evaluation paths).
func (r *Relation) Keys() []string {
	out := make([]string, 0, r.Len())
	r.Scan(func(t *Tuple) bool { out = append(out, t.Key()); return true })
	return out
}

// IDs returns the live tuples' interned IDs in insertion order.
func (r *Relation) IDs() []TupleID {
	out := make([]TupleID, 0, r.Len())
	r.Scan(func(t *Tuple) bool { out = append(out, t.TID); return true })
	return out
}

// EnsureIndex builds the hash index on col if missing. Prepared programs
// declare their (relation, column) index requirements up front and build
// them here before evaluation starts, so no lazy index construction (a
// write) happens on the lookup hot path — a requirement for evaluating
// rules concurrently over a shared relation. On an overlay this warms the
// snapshot-shared frozen index (built at most once across all forks) plus
// the private tail index.
func (r *Relation) EnsureIndex(col int) {
	if col >= 0 && col < r.Arity {
		r.ensureIndex(col)
		if fz := r.frozen; fz != nil && len(fz.order) > 0 {
			fz.index(col)
		}
	}
}

// IndexedColumns returns the columns with built indexes, sorted ascending.
// Snapshots persist these so a restored database can pre-warm the same
// indexes instead of rebuilding them lazily on the first query. For an
// overlay the frozen base's warm columns count: they are equally warm for
// this fork.
func (r *Relation) IndexedColumns() []int {
	set := make(map[int]bool, len(r.indexes))
	for col := range r.indexes {
		set[col] = true
	}
	if r.frozen != nil {
		for _, col := range r.frozen.indexedColumns() {
			set[col] = true
		}
	}
	if len(set) == 0 {
		return nil
	}
	out := make([]int, 0, len(set))
	for col := range set {
		out = append(out, col)
	}
	sort.Ints(out)
	return out
}

// SyncIndexes compacts every index bucket holding tombstoned IDs, in
// O(affected buckets). After a sync (and until the next deletion) Lookup
// performs no writes, so the relation can be read from multiple goroutines.
// Frozen buckets are never stale, so only the tail needs syncing.
func (r *Relation) SyncIndexes() {
	for _, b := range r.dirty {
		if b.stale {
			b.compact(r)
		}
	}
	r.dirty = r.dirty[:0]
}

// Reset empties the relation for reuse, keeping allocated capacity and
// registered index columns (their buckets are dropped; inserts repopulate
// them). Used to recycle seminaive scratch relations across rounds and
// runs instead of allocating fresh ones. Any frozen base is detached.
func (r *Relation) Reset() {
	r.frozen, r.fdel, r.fdead = nil, nil, 0
	clear(r.byID)
	r.order = r.order[:0]
	r.live = r.live[:0]
	r.dead = 0
	r.byKey = nil
	r.dirty = r.dirty[:0]
	for col := range r.indexes {
		clear(r.indexes[col])
	}
}

// ensureIndex builds the tail hash index on col if missing. For a flat
// relation the tail is the whole relation.
func (r *Relation) ensureIndex(col int) map[Value]*idxBucket {
	if r.indexes == nil {
		r.indexes = make(map[int]map[Value]*idxBucket)
	}
	idx, ok := r.indexes[col]
	if ok {
		return idx
	}
	idx = make(map[Value]*idxBucket)
	for i, t := range r.order {
		if !r.live[i] {
			continue
		}
		v := t.Vals[col].mapKey()
		b := idx[v]
		if b == nil {
			b = &idxBucket{}
			idx[v] = b
		}
		b.ids = append(b.ids, t.TID)
		b.n++
		if t.Seq < b.maxSeq {
			b.unsorted = true
		} else {
			b.maxSeq = t.Seq
		}
	}
	r.indexes[col] = idx
	return idx
}

// Lookup returns the live tuples whose value at col equals v (numeric
// values compare cross-kind, mirroring Value.Equal), ordered by insertion
// sequence (deterministic). The first call on a column builds its index in
// O(n). No content key is built: the probe hashes the Value itself. On an
// overlay the frozen side reads the snapshot-shared warm index filtered
// through the deletion bitmap, then the tail index is merged in. A probe
// answered entirely by a frozen bucket (no deletions, no tail hits) shares
// the bucket's Seq-sorted slice zero-copy; results are read-only in either
// case (appending is safe — the shared slice's capacity is clipped).
func (r *Relation) Lookup(col int, v Value) []*Tuple {
	if col < 0 || col >= r.Arity {
		return nil
	}
	mk := v.mapKey()
	var fb *frozenBucket
	fz := r.frozen
	if fz != nil && len(fz.order) > 0 {
		fb = fz.index(col)[mk]
	}
	tb := r.ensureIndex(col)[mk]
	if tb != nil && int(tb.n) != len(tb.ids) {
		tb.compact(r)
	}
	frozenN, tailN := 0, 0
	if fb != nil {
		frozenN = len(fb.tuples)
	}
	if tb != nil {
		tailN = int(tb.n)
	}
	if frozenN+tailN == 0 {
		return nil
	}
	if tailN == 0 && r.fdead == 0 && columnarOn.Load() {
		// Zero-copy fast path: the frozen bucket is the whole answer and is
		// already in result order.
		return fb.tuples[:frozenN:frozenN]
	}
	out := make([]*Tuple, 0, frozenN+tailN)
	sorted := true
	if fb != nil {
		if r.fdead == 0 {
			out = append(out, fb.tuples...)
		} else {
			for i, pos := range fb.poss {
				if !r.fdelGet(pos) {
					out = append(out, fb.tuples[i])
				}
			}
		}
	}
	if tb != nil {
		for _, id := range tb.ids {
			t := r.order[r.byID[id]]
			if len(out) > 0 && out[len(out)-1].Seq > t.Seq {
				sorted = false
			}
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		return nil
	}
	if !sorted {
		sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	}
	return out
}

// LookupEach calls fn for each live tuple whose value at col equals v and
// that satisfies every check, in Lookup order (Seq-ascending), without
// materializing a result slice; fn returning false stops the iteration.
// Checks are evaluated on the frozen core's column vectors when the
// columnar image is available, culling failing candidates before their
// tuples are touched. When the merged order cannot be streamed directly
// (an unsorted tail bucket, or a tail that interleaves with the frozen
// side), it falls back to Lookup and filters — the yielded sequence is
// identical either way. Mutating the relation mid-iteration is not
// supported.
func (r *Relation) LookupEach(col int, v Value, checks []ColCheck, fn func(*Tuple) bool) {
	if col < 0 || col >= r.Arity {
		return
	}
	if !columnarOn.Load() {
		for _, t := range r.Lookup(col, v) {
			if checksMatchTuple(t, checks) && !fn(t) {
				return
			}
		}
		return
	}
	mk := v.mapKey()
	var fb *frozenBucket
	fz := r.frozen
	if fz != nil && len(fz.order) > 0 {
		fb = fz.index(col)[mk]
	}
	tb := r.ensureIndex(col)[mk]
	if tb != nil && int(tb.n) != len(tb.ids) {
		tb.compact(r)
	}
	if tb != nil && tb.n > 0 {
		stream := !tb.unsorted
		if stream && fb != nil && len(fb.tuples) > 0 {
			// The tail follows the frozen side in result order only if its
			// earliest tuple postdates the frozen bucket's latest.
			first := r.order[r.byID[tb.ids[0]]]
			stream = first.Seq >= fb.tuples[len(fb.tuples)-1].Seq
		}
		if !stream {
			for _, t := range r.Lookup(col, v) {
				if checksMatchTuple(t, checks) && !fn(t) {
					return
				}
			}
			return
		}
	}
	if fb != nil {
		var fc *frozenCols
		if len(checks) > 0 {
			fc = fz.columnar()
		}
		for i, pos := range fb.poss {
			if r.fdead > 0 && r.fdelGet(pos) {
				continue
			}
			if fc != nil {
				if !fc.match(int(pos), checks) {
					continue
				}
			} else if !checksMatchTuple(fb.tuples[i], checks) {
				continue
			}
			if !fn(fb.tuples[i]) {
				return
			}
		}
	}
	if tb != nil {
		for _, id := range tb.ids {
			t := r.order[r.byID[id]]
			if checksMatchTuple(t, checks) && !fn(t) {
				return
			}
		}
	}
}

// ScanChecked calls fn for each live tuple satisfying every check, in Scan
// order; fn returning false stops the scan. Checks are evaluated on the
// frozen core's column vectors when the columnar image is available, so a
// failing frozen row is rejected on flat vectors without touching its
// tuple.
func (r *Relation) ScanChecked(checks []ColCheck, fn func(*Tuple) bool) {
	if len(checks) == 0 {
		r.Scan(fn)
		return
	}
	var fc *frozenCols
	fz := r.frozen
	if fz != nil {
		fc = fz.columnar() // nil when disabled or the core is empty
	}
	if fc != nil {
		for pos := range fz.order {
			if r.fdead > 0 && r.fdelGet(int32(pos)) {
				continue
			}
			if !fc.match(pos, checks) {
				continue
			}
			if !fn(fz.order[pos]) {
				return
			}
		}
		for i, t := range r.order {
			if !r.live[i] || !checksMatchTuple(t, checks) {
				continue
			}
			if !fn(t) {
				return
			}
		}
		return
	}
	r.Scan(func(t *Tuple) bool {
		if !checksMatchTuple(t, checks) {
			return true
		}
		return fn(t)
	})
}

// ScanRuns calls fn with maximal runs of consecutive live tuples in Scan
// order — whole frozen-core stretches between deletions, then whole tail
// stretches between dead slots — so batch consumers iterate plain slices
// instead of paying a callback per tuple. fn returning false stops the
// scan. Runs alias internal storage: fn must not retain or mutate them
// past the call.
func (r *Relation) ScanRuns(fn func([]*Tuple) bool) {
	if fz := r.frozen; fz != nil && len(fz.order) > 0 {
		if r.fdead == 0 {
			if !fn(fz.order) {
				return
			}
		} else {
			start := 0
			for pos := range fz.order {
				if r.fdelGet(int32(pos)) {
					if pos > start && !fn(fz.order[start:pos]) {
						return
					}
					start = pos + 1
				}
			}
			if start < len(fz.order) && !fn(fz.order[start:]) {
				return
			}
		}
	}
	start := -1
	for i := range r.order {
		if r.live[i] {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 && !fn(r.order[start:i]) {
			return
		}
		start = -1
	}
	if start >= 0 {
		fn(r.order[start:])
	}
}

// compact drops dead IDs from the bucket.
func (b *idxBucket) compact(r *Relation) {
	n := 0
	for _, id := range b.ids {
		if _, ok := r.byID[id]; ok {
			b.ids[n] = id
			n++
		}
	}
	b.ids = b.ids[:n]
	b.stale = false
}

// LookupCount returns the number of live tuples whose value at col equals v
// without materializing them.
func (r *Relation) LookupCount(col int, v Value) int {
	if col < 0 || col >= r.Arity {
		return 0
	}
	mk := v.mapKey()
	n := 0
	if fz := r.frozen; fz != nil && len(fz.order) > 0 {
		if b := fz.index(col)[mk]; b != nil {
			if r.fdead == 0 {
				n += len(b.tuples)
			} else {
				for _, pos := range b.poss {
					if !r.fdelGet(pos) {
						n++
					}
				}
			}
		}
	}
	if b := r.ensureIndex(col)[mk]; b != nil {
		n += int(b.n)
	}
	return n
}

// Clone returns a deep copy of the relation structure. Tuples are shared by
// pointer (they are immutable); the ID map and order slices are copied, and
// indexes and the content intern map are dropped (they rebuild lazily on
// demand). Overlays flatten: the clone owns plain storage regardless of the
// receiver's representation. No content keys are touched.
func (r *Relation) Clone() *Relation {
	n := r.Len()
	c := &Relation{
		Name:       r.Name,
		Arity:      r.Arity,
		byID:       make(map[TupleID]int32, n),
		order:      make([]*Tuple, 0, n),
		live:       make([]bool, 0, n),
		positional: r.positional,
	}
	r.Scan(func(t *Tuple) bool {
		c.byID[t.TID] = int32(len(c.order))
		c.order = append(c.order, t)
		c.live = append(c.live, true)
		return true
	})
	return c
}

// String renders "Name[n]".
func (r *Relation) String() string {
	return fmt.Sprintf("%s[%d]", r.Name, r.Len())
}
