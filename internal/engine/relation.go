package engine

import (
	"fmt"
	"sort"
)

// Relation is a set of tuples with deterministic iteration order and lazily
// built hash indexes on single columns. Deletions are supported in O(1) per
// index; iteration skips tombstones and the backing slice is compacted when
// more than half of it is dead.
//
// A Relation is used both for base relations R_i and delta relations ∆_i
// (which share the base relation's schema per §3.1 of the paper).
type Relation struct {
	Name  string
	Arity int

	tuples map[string]*Tuple // content key -> tuple
	order  []*Tuple          // insertion order; nil entries are tombstones
	dead   int               // number of tombstones in order

	// indexes[col][valueKey] -> tuples having that value at col.
	indexes map[int]map[string]map[string]*Tuple
}

// NewRelation creates an empty relation.
func NewRelation(name string, arity int) *Relation {
	return &Relation{
		Name:   name,
		Arity:  arity,
		tuples: make(map[string]*Tuple),
	}
}

// Len returns the number of live tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Contains reports whether a tuple with the given content key is present.
func (r *Relation) Contains(key string) bool {
	_, ok := r.tuples[key]
	return ok
}

// Get returns the tuple with the given content key, or nil.
func (r *Relation) Get(key string) *Tuple { return r.tuples[key] }

// Insert adds a tuple; it reports whether the tuple was new. The tuple's
// arity must match the relation's.
func (r *Relation) Insert(t *Tuple) bool {
	if len(t.Vals) != r.Arity {
		panic(fmt.Sprintf("engine: arity mismatch inserting %s into %s/%d", t, r.Name, r.Arity))
	}
	key := t.Key()
	if _, dup := r.tuples[key]; dup {
		return false
	}
	r.tuples[key] = t
	r.order = append(r.order, t)
	for col, idx := range r.indexes {
		vk := t.Vals[col].keyString()
		bucket := idx[vk]
		if bucket == nil {
			bucket = make(map[string]*Tuple)
			idx[vk] = bucket
		}
		bucket[key] = t
	}
	return true
}

// Delete removes the tuple with the given content key; it reports whether
// the tuple was present.
func (r *Relation) Delete(key string) bool {
	t, ok := r.tuples[key]
	if !ok {
		return false
	}
	delete(r.tuples, key)
	for col, idx := range r.indexes {
		vk := t.Vals[col].keyString()
		if bucket := idx[vk]; bucket != nil {
			delete(bucket, key)
			if len(bucket) == 0 {
				delete(idx, vk)
			}
		}
	}
	// Tombstone in the order slice; compact when mostly dead.
	r.dead++
	if r.dead*2 > len(r.order) && len(r.order) > 16 {
		r.compact()
	}
	return true
}

func (r *Relation) compact() {
	live := r.order[:0]
	for _, t := range r.order {
		if t != nil && r.tuples[t.Key()] == t {
			live = append(live, t)
		}
	}
	r.order = live
	r.dead = 0
}

// Scan calls fn for each live tuple in insertion order; fn returning false
// stops the scan. Mutating the relation during a scan is not supported.
func (r *Relation) Scan(fn func(*Tuple) bool) {
	for _, t := range r.order {
		if t == nil || r.tuples[t.Key()] != t {
			continue
		}
		if !fn(t) {
			return
		}
	}
}

// Tuples returns the live tuples in insertion order.
func (r *Relation) Tuples() []*Tuple {
	out := make([]*Tuple, 0, len(r.tuples))
	r.Scan(func(t *Tuple) bool { out = append(out, t); return true })
	return out
}

// Keys returns the live tuples' content keys in insertion order.
func (r *Relation) Keys() []string {
	out := make([]string, 0, len(r.tuples))
	r.Scan(func(t *Tuple) bool { out = append(out, t.Key()); return true })
	return out
}

// ensureIndex builds the hash index on col if missing.
func (r *Relation) ensureIndex(col int) map[string]map[string]*Tuple {
	if r.indexes == nil {
		r.indexes = make(map[int]map[string]map[string]*Tuple)
	}
	idx, ok := r.indexes[col]
	if ok {
		return idx
	}
	idx = make(map[string]map[string]*Tuple)
	for key, t := range r.tuples {
		vk := t.Vals[col].keyString()
		bucket := idx[vk]
		if bucket == nil {
			bucket = make(map[string]*Tuple)
			idx[vk] = bucket
		}
		bucket[key] = t
	}
	r.indexes[col] = idx
	return idx
}

// Lookup returns the live tuples whose value at col equals v, ordered by
// insertion sequence (deterministic). The first call on a column builds its
// index in O(n).
func (r *Relation) Lookup(col int, v Value) []*Tuple {
	if col < 0 || col >= r.Arity {
		return nil
	}
	idx := r.ensureIndex(col)
	bucket := idx[v.keyString()]
	if len(bucket) == 0 {
		return nil
	}
	out := make([]*Tuple, 0, len(bucket))
	for _, t := range bucket {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// LookupCount returns the number of live tuples whose value at col equals v
// without materializing them.
func (r *Relation) LookupCount(col int, v Value) int {
	if col < 0 || col >= r.Arity {
		return 0
	}
	return len(r.ensureIndex(col)[v.keyString()])
}

// Clone returns a deep copy of the relation structure. Tuples are shared by
// pointer (they are immutable); maps and the order slice are copied, and
// indexes are dropped (they rebuild lazily on demand).
func (r *Relation) Clone() *Relation {
	c := &Relation{
		Name:   r.Name,
		Arity:  r.Arity,
		tuples: make(map[string]*Tuple, len(r.tuples)),
		order:  make([]*Tuple, 0, len(r.tuples)),
	}
	r.Scan(func(t *Tuple) bool {
		c.tuples[t.Key()] = t
		c.order = append(c.order, t)
		return true
	})
	return c
}

// String renders "Name[n]".
func (r *Relation) String() string {
	return fmt.Sprintf("%s[%d]", r.Name, r.Len())
}
