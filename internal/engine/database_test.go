package engine

import (
	"strings"
	"testing"
)

// paperSchema builds the running example's schema (Figure 1 of the paper).
func paperSchema() *Schema {
	s := NewSchema()
	s.MustAddRelation("Grant", "g", "gid", "name")
	s.MustAddRelation("AuthGrant", "ag", "aid", "gid")
	s.MustAddRelation("Author", "a", "aid", "name")
	s.MustAddRelation("Writes", "w", "aid", "pid")
	s.MustAddRelation("Pub", "p", "pid", "title")
	s.MustAddRelation("Cite", "c", "citing", "cited")
	return s
}

// paperDatabase builds the database instance D of Figure 1.
func paperDatabase() *Database {
	db := NewDatabase(paperSchema())
	db.MustInsert("Grant", Int(1), Str("NSF"))
	db.MustInsert("Grant", Int(2), Str("ERC"))
	db.MustInsert("AuthGrant", Int(2), Int(1))
	db.MustInsert("AuthGrant", Int(4), Int(2))
	db.MustInsert("AuthGrant", Int(5), Int(2))
	db.MustInsert("Author", Int(2), Str("Maggie"))
	db.MustInsert("Author", Int(4), Str("Marge"))
	db.MustInsert("Author", Int(5), Str("Homer"))
	db.MustInsert("Cite", Int(7), Int(6))
	db.MustInsert("Writes", Int(4), Int(6))
	db.MustInsert("Writes", Int(5), Int(7))
	db.MustInsert("Pub", Int(6), Str("x"))
	db.MustInsert("Pub", Int(7), Str("y"))
	return db
}

func TestSchemaConstruction(t *testing.T) {
	s := paperSchema()
	if len(s.Relations) != 6 {
		t.Fatalf("relations = %d, want 6", len(s.Relations))
	}
	if !s.Has("Grant") || s.Has("Nope") {
		t.Fatal("Has is wrong")
	}
	if s.Relation("Author").Arity() != 2 {
		t.Fatal("Author arity should be 2")
	}
	if got := s.AttrIndex("Writes", "pid"); got != 1 {
		t.Fatalf("AttrIndex(Writes, pid) = %d, want 1", got)
	}
	if got := s.AttrIndex("Writes", "zzz"); got != -1 {
		t.Fatalf("AttrIndex miss = %d, want -1", got)
	}
	if got := s.AttrIndex("Zzz", "pid"); got != -1 {
		t.Fatalf("AttrIndex unknown rel = %d, want -1", got)
	}
	names := s.Names()
	if names[0] != "Grant" || names[5] != "Cite" {
		t.Fatalf("Names order wrong: %v", names)
	}
	if !strings.Contains(s.String(), "Writes(aid, pid)") {
		t.Fatalf("schema String missing relation: %s", s)
	}
}

func TestSchemaErrors(t *testing.T) {
	s := NewSchema()
	if _, err := s.AddRelation("", "x", "a"); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := s.AddRelation("R", "", "a", "a"); err == nil {
		t.Error("duplicate attrs should fail")
	}
	if _, err := s.AddRelation("R", ""); err == nil {
		t.Error("no attrs should fail")
	}
	if _, err := s.AddRelation("R", "", "a"); err != nil {
		t.Errorf("valid relation failed: %v", err)
	}
	if _, err := s.AddRelation("R", "", "b"); err == nil {
		t.Error("duplicate relation should fail")
	}
	// Derived prefix from name.
	if s.Relation("R").IDPrefix != "r" {
		t.Errorf("derived prefix = %q, want r", s.Relation("R").IDPrefix)
	}
}

func TestDatabaseInsertMintsPaperIDs(t *testing.T) {
	db := paperDatabase()
	g := db.Relation("Grant").Lookup(1, Str("ERC"))
	if len(g) != 1 || g[0].ID != "g2" {
		t.Fatalf("ERC grant should be g2, got %v", g)
	}
	ag := db.Relation("AuthGrant").Lookup(0, Int(5))
	if len(ag) != 1 || ag[0].ID != "ag3" {
		t.Fatalf("AuthGrant(5,2) should be ag3, got %v", ag)
	}
}

func TestDatabaseInsertErrors(t *testing.T) {
	db := NewDatabase(paperSchema())
	if _, err := db.Insert("Nope", Int(1)); err == nil {
		t.Error("unknown relation should fail")
	}
	if _, err := db.Insert("Grant", Int(1)); err == nil {
		t.Error("wrong arity should fail")
	}
	a, _ := db.Insert("Grant", Int(1), Str("NSF"))
	b, _ := db.Insert("Grant", Int(1), Str("NSF"))
	if a != b {
		t.Error("re-inserting same content should return the stored tuple")
	}
	if db.Relation("Grant").Len() != 1 {
		t.Error("duplicate insert should not grow the relation")
	}
}

func TestDeleteToDelta(t *testing.T) {
	db := paperDatabase()
	key := ContentKey("Grant", []Value{Int(2), Str("ERC")})
	if !db.DeleteToDelta(key) {
		t.Fatal("DeleteToDelta of live tuple should succeed")
	}
	if db.Relation("Grant").Contains(key) {
		t.Fatal("tuple should be gone from base")
	}
	if !db.Delta("Grant").Contains(key) {
		t.Fatal("tuple should be recorded in delta")
	}
	if db.DeleteToDelta(key) {
		t.Fatal("second DeleteToDelta should report false")
	}
	// Lookup resolves deleted tuples via the delta side.
	if got := db.Lookup(key); got == nil || got.ID != "g2" {
		t.Fatalf("Lookup(%s) = %v, want g2", key, got)
	}
	if db.DeleteToDelta("Garbage") {
		t.Fatal("malformed key should report false")
	}
	if db.DeleteToDelta("Nope(i1)") {
		t.Fatal("unknown relation key should report false")
	}
}

func TestDeleteTupleToDelta(t *testing.T) {
	db := paperDatabase()
	tp := db.Relation("Author").Tuples()[0]
	if !db.DeleteTupleToDelta(tp) {
		t.Fatal("DeleteTupleToDelta should succeed")
	}
	if db.Relation("Author").Len() != 2 || db.Delta("Author").Len() != 1 {
		t.Fatal("counts after delete are wrong")
	}
}

func TestTotalsAndStats(t *testing.T) {
	db := paperDatabase()
	if db.TotalTuples() != 13 {
		t.Fatalf("TotalTuples = %d, want 13", db.TotalTuples())
	}
	if db.TotalDeltaTuples() != 0 {
		t.Fatalf("TotalDeltaTuples = %d, want 0", db.TotalDeltaTuples())
	}
	db.DeleteToDelta(ContentKey("Grant", []Value{Int(2), Str("ERC")}))
	if db.TotalTuples() != 12 || db.TotalDeltaTuples() != 1 {
		t.Fatal("totals after delete are wrong")
	}
	stats := db.Stats()
	if stats[0].Name != "Grant" || stats[0].Live != 1 || stats[0].Deleted != 1 {
		t.Fatalf("Grant stat = %+v", stats[0])
	}
}

func TestDatabaseCloneIsolation(t *testing.T) {
	db := paperDatabase()
	c := db.Clone()
	key := ContentKey("Author", []Value{Int(4), Str("Marge")})
	c.DeleteToDelta(key)
	if !db.Relation("Author").Contains(key) {
		t.Fatal("delete in clone must not affect original")
	}
	if c.Relation("Author").Contains(key) {
		t.Fatal("delete in clone should be visible in clone")
	}
	// Insert into clone mints fresh IDs continuing the sequence.
	tp := c.MustInsert("Author", Int(9), Str("Lisa"))
	if tp.ID != "a4" {
		t.Fatalf("clone insert ID = %s, want a4", tp.ID)
	}
	if db.Relation("Author").Len() != 3 {
		t.Fatal("original should be unaffected by clone insert")
	}
}

func TestRelOfKey(t *testing.T) {
	if rel, ok := RelOfKey(`Grant(i2,"ERC")`); !ok || rel != "Grant" {
		t.Fatalf("RelOfKey = %q/%v", rel, ok)
	}
	if _, ok := RelOfKey("nope"); ok {
		t.Fatal("malformed key should not parse")
	}
	if _, ok := RelOfKey("(i1)"); ok {
		t.Fatal("empty relation name should not parse")
	}
}

func TestDatabaseString(t *testing.T) {
	db := paperDatabase()
	s := db.String()
	if !strings.Contains(s, "Grant: 2 live, 0 deleted") {
		t.Fatalf("String missing Grant line:\n%s", s)
	}
	if !strings.Contains(s, "g2: Grant(2, 'ERC')") {
		t.Fatalf("String missing small-relation dump:\n%s", s)
	}
}

func TestLookupUnknown(t *testing.T) {
	db := paperDatabase()
	if db.Lookup("Nope(i1)") != nil {
		t.Fatal("unknown relation lookup should be nil")
	}
	if db.Lookup("garbage") != nil {
		t.Fatal("malformed key lookup should be nil")
	}
	if db.Lookup(ContentKey("Grant", []Value{Int(99), Str("zz")})) != nil {
		t.Fatal("missing tuple lookup should be nil")
	}
}
