package engine

import (
	"fmt"
	"strings"
)

// RelationSchema describes one relation: its name, attribute names, and the
// prefix used to mint tuple identifiers (e.g. "ag" for AuthGrant so tuples
// are named ag1, ag2, ... as in the paper's running example).
type RelationSchema struct {
	Name     string
	Attrs    []string
	IDPrefix string
}

// Arity returns the number of attributes.
func (rs *RelationSchema) Arity() int { return len(rs.Attrs) }

// String renders "Name(attr1, attr2)".
func (rs *RelationSchema) String() string {
	return rs.Name + "(" + strings.Join(rs.Attrs, ", ") + ")"
}

// Schema is an ordered collection of relation schemas. Order matters only
// for display; lookup is by name.
type Schema struct {
	Relations []*RelationSchema
	byName    map[string]*RelationSchema
}

// NewSchema creates an empty schema.
func NewSchema() *Schema {
	return &Schema{byName: make(map[string]*RelationSchema)}
}

// MustAddRelation adds a relation schema and panics on duplicates or empty
// names; it is intended for static schema construction in tests, generators,
// and examples.
func (s *Schema) MustAddRelation(name, idPrefix string, attrs ...string) *RelationSchema {
	rs, err := s.AddRelation(name, idPrefix, attrs...)
	if err != nil {
		panic(err)
	}
	return rs
}

// AddRelation adds a relation schema. The idPrefix may be empty, in which
// case a prefix is derived from the lowercase leading letters of the name.
func (s *Schema) AddRelation(name, idPrefix string, attrs ...string) (*RelationSchema, error) {
	if name == "" {
		return nil, fmt.Errorf("engine: relation name must be non-empty")
	}
	if _, dup := s.byName[name]; dup {
		return nil, fmt.Errorf("engine: duplicate relation %q", name)
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("engine: relation %q needs at least one attribute", name)
	}
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if seen[a] {
			return nil, fmt.Errorf("engine: relation %q has duplicate attribute %q", name, a)
		}
		seen[a] = true
	}
	if idPrefix == "" {
		idPrefix = strings.ToLower(name[:1])
	}
	rs := &RelationSchema{Name: name, Attrs: append([]string(nil), attrs...), IDPrefix: idPrefix}
	s.Relations = append(s.Relations, rs)
	s.byName[name] = rs
	return rs, nil
}

// Relation returns the schema of the named relation, or nil.
func (s *Schema) Relation(name string) *RelationSchema {
	return s.byName[name]
}

// Has reports whether the schema contains the named relation.
func (s *Schema) Has(name string) bool {
	_, ok := s.byName[name]
	return ok
}

// Names returns the relation names in declaration order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Relations))
	for i, rs := range s.Relations {
		out[i] = rs.Name
	}
	return out
}

// AttrIndex returns the position of attribute attr in relation rel, or -1.
func (s *Schema) AttrIndex(rel, attr string) int {
	rs := s.byName[rel]
	if rs == nil {
		return -1
	}
	for i, a := range rs.Attrs {
		if a == attr {
			return i
		}
	}
	return -1
}

// String renders the schema one relation per line.
func (s *Schema) String() string {
	var b strings.Builder
	for i, rs := range s.Relations {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(rs.String())
	}
	return b.String()
}

// ParseSchema parses a schema declaration, one relation per line:
//
//	# comments allowed
//	Organization(oid, name)
//	Author:au(aid, name, oid)     # optional ":prefix" names tuple IDs au1, au2, ...
//
// Both '#' and '%' start comments. The deltarepair.ParseSchema facade and
// the repair server's session-registration endpoint delegate here.
func ParseSchema(src string) (*Schema, error) {
	s := NewSchema()
	for lineNo, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if i := strings.IndexAny(line, "#%"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		open := strings.IndexByte(line, '(')
		if open < 0 || !strings.HasSuffix(line, ")") {
			return nil, fmt.Errorf("engine: schema line %d: want Name(attr, ...), got %q", lineNo+1, line)
		}
		name, prefix := line[:open], ""
		if c := strings.IndexByte(name, ':'); c >= 0 {
			name, prefix = name[:c], name[c+1:]
		}
		name = strings.TrimSpace(name)
		var attrs []string
		for _, a := range strings.Split(line[open+1:len(line)-1], ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				return nil, fmt.Errorf("engine: schema line %d: empty attribute", lineNo+1)
			}
			attrs = append(attrs, a)
		}
		if _, err := s.AddRelation(name, prefix, attrs...); err != nil {
			return nil, fmt.Errorf("engine: schema line %d: %w", lineNo+1, err)
		}
	}
	if len(s.Relations) == 0 {
		return nil, fmt.Errorf("engine: empty schema")
	}
	return s, nil
}
