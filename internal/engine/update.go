package engine

import (
	"fmt"
	"sort"
	"sync"
)

// Versioned base-table updates over copy-on-write snapshots.
//
// A Snapshot is immutable, but serving systems answer repairs over data
// that changes between requests. Apply produces the *next* immutable
// version from a batch of base-table inserts and deletes: it forks the
// snapshot, applies the batch to the fork's private overlay, and
// re-freezes — so relations the batch never touches keep sharing their
// frozen core (storage, warm indexes, intern map) with every earlier
// version, and the cost of an update is O(touched relations + changes),
// never O(database). A SnapshotRing strings versions together under a
// monotonically increasing version counter with a small retention window,
// so in-flight requests keep reading the version they started on while
// writers advance the head.

// Row addresses one base tuple by content: a relation name and its values
// in schema order. Rows are how update batches name insertions and
// deletions at API boundaries (the engine's internal identity remains the
// interned TupleID).
type Row struct {
	Rel  string
	Vals []Value
}

// ApplyInfo reports what an Apply batch actually did.
type ApplyInfo struct {
	// Inserted and Deleted count the rows that took effect. Inserting
	// content that is already live and deleting content that is not are
	// no-ops, excluded from the counts (set semantics).
	Inserted, Deleted int
	// Changed lists the relations the batch modified, sorted. Empty means
	// the whole batch was a no-op and Apply returned the receiver itself.
	Changed []string
	// InsertedTuples holds the interned tuples of the effective inserts,
	// per relation, in application order. Warm-start layers seed
	// incremental stability probes and derivations with exactly these.
	InsertedTuples map[string][]*Tuple
	// DeletedTuples holds the tuples of the effective deletes, per
	// relation.
	DeletedTuples map[string][]*Tuple
}

// InsertOnly reports whether the batch performed no effective deletions.
func (ai *ApplyInfo) InsertOnly() bool { return ai.Deleted == 0 }

// DeleteOnly reports whether the batch performed no effective insertions.
func (ai *ApplyInfo) DeleteOnly() bool { return ai.Inserted == 0 }

// Apply produces the snapshot of the database after deleting the given
// rows and then inserting the given rows (deletes first, so a batch can
// replace a row's content). The receiver is untouched — existing forks
// keep reading it — and the returned snapshot shares the frozen core of
// every relation the batch did not modify, including its lazily built warm
// indexes and intern map. Only relations with effective changes are
// re-frozen (flatten + donate), so update cost scales with the touched
// relations and the changes, not the database.
//
// Deleted rows leave the database entirely: a base-table update is
// upstream data churn, not a repair, so nothing is recorded in the delta
// relations. Deleting absent content and inserting present content are
// no-ops (set semantics), reported via ApplyInfo. A batch with no
// effective change returns the receiver itself (pointer-equal) with a nil
// Changed list.
//
// Every row is validated against the schema before any work happens; an
// unknown relation or an arity mismatch fails the whole batch atomically.
// Apply is safe to call concurrently with Fork and with other Apply calls
// (each works on its own private fork), though callers that need a linear
// version history must serialize their writers — see SnapshotRing.
func (s *Snapshot) Apply(inserts, deletes []Row) (*Snapshot, *ApplyInfo, error) {
	for _, batch := range [2][]Row{deletes, inserts} {
		for _, row := range batch {
			rs := s.schema.Relation(row.Rel)
			if rs == nil {
				return nil, nil, fmt.Errorf("engine: update references unknown relation %q", row.Rel)
			}
			if len(row.Vals) != rs.Arity() {
				return nil, nil, fmt.Errorf("engine: update row for %s has %d values, schema arity is %d",
					row.Rel, len(row.Vals), rs.Arity())
			}
		}
	}

	work := s.Fork()
	info := &ApplyInfo{
		InsertedTuples: make(map[string][]*Tuple),
		DeletedTuples:  make(map[string][]*Tuple),
	}
	changed := make(map[string]bool)
	for _, row := range deletes {
		r := work.Relation(row.Rel)
		t := r.Get(ContentKey(row.Rel, row.Vals))
		if t == nil {
			continue // absent content: no-op
		}
		r.DeleteTuple(t)
		info.Deleted++
		info.DeletedTuples[row.Rel] = append(info.DeletedTuples[row.Rel], t)
		changed[row.Rel] = true
	}
	for _, row := range inserts {
		r := work.Relation(row.Rel)
		before := r.Len()
		t, err := work.Insert(row.Rel, row.Vals...)
		if err != nil {
			return nil, nil, err // unreachable after validation; defensive
		}
		if r.Len() == before {
			continue // content already live: no-op
		}
		info.Inserted++
		info.InsertedTuples[row.Rel] = append(info.InsertedTuples[row.Rel], t)
		changed[row.Rel] = true
	}
	if len(changed) == 0 {
		// Freeze on the pristine fork would hand back s anyway; short-circuit
		// so no-op batches are visibly free.
		return s, info, nil
	}
	info.Changed = make([]string, 0, len(changed))
	for rel := range changed {
		info.Changed = append(info.Changed, rel)
	}
	sort.Strings(info.Changed)
	return work.Freeze(), info, nil
}

// SnapshotRing is a bounded history of snapshot versions: a monotonically
// increasing version counter with the most recent capacity versions
// retained. Writers Advance the head; readers resolve a pinned version
// with At (read-your-writes) or take the newest with Head. Versions that
// fall out of the ring are only dropped from the *ring* — forks already
// minted from them stay fully usable, because forks hold their own
// references to the frozen cores.
//
// A SnapshotRing is safe for concurrent use. Advance calls are serialized
// internally, but callers that derive the next snapshot from the current
// head (the Apply-then-Advance pattern) must hold their own write lock
// around the whole read-modify-advance sequence to keep history linear.
type SnapshotRing struct {
	mu    sync.RWMutex
	slots []*Snapshot
	// metas[v%cap] describes the update batch that produced version v —
	// the ApplyInfo recorded by AdvanceApplied, nil for the base version
	// and for versions advanced without metadata. Serving layers chain
	// warm starts across consecutive versions from these without keeping
	// their own version bookkeeping; eviction is automatic with the slot.
	metas []*ApplyInfo
	head  uint64 // newest version; versions start at 1
	n     int    // number of retained versions, ≤ len(slots)
}

// DefaultRetainedVersions is the ring capacity used when NewSnapshotRing
// is given a non-positive one.
const DefaultRetainedVersions = 4

// NewSnapshotRing starts a version history at version 1 = base. A
// capacity ≤ 0 means DefaultRetainedVersions; capacity 1 retains only the
// head (every update immediately unpins all older versions).
func NewSnapshotRing(base *Snapshot, capacity int) *SnapshotRing {
	return NewSnapshotRingAt(base, 1, capacity)
}

// NewSnapshotRingAt starts a version history with base installed at the
// given version number instead of 1. Crash recovery uses this to resume a
// session's version counter where the durable history left off, so
// version numbers handed to clients before a restart stay meaningful
// after it. A version of 0 is treated as 1 (versions start at 1).
func NewSnapshotRingAt(base *Snapshot, version uint64, capacity int) *SnapshotRing {
	if capacity <= 0 {
		capacity = DefaultRetainedVersions
	}
	if version == 0 {
		version = 1
	}
	r := &SnapshotRing{slots: make([]*Snapshot, capacity), metas: make([]*ApplyInfo, capacity), head: version, n: 1}
	r.slots[version%uint64(capacity)] = base
	return r
}

// Head returns the newest snapshot and its version.
func (r *SnapshotRing) Head() (*Snapshot, uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.slots[r.head%uint64(len(r.slots))], r.head
}

// HeadVersion returns the newest version number.
func (r *SnapshotRing) HeadVersion() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.head
}

// Oldest returns the oldest retained version number.
func (r *SnapshotRing) Oldest() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.head - uint64(r.n) + 1
}

// Retained returns the number of retained versions.
func (r *SnapshotRing) Retained() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.n
}

// At resolves a pinned version. ok is false when the version has been
// evicted from the ring (too old) or has not been minted yet (ahead of
// the head); the two cases are distinguishable by comparing against Head.
func (r *SnapshotRing) At(version uint64) (*Snapshot, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if version > r.head || version+uint64(r.n) <= r.head {
		return nil, false
	}
	return r.slots[version%uint64(len(r.slots))], true
}

// Advance installs next as the new head and returns its version number.
// The oldest retained version is evicted once the ring is full. Advancing
// with the current head snapshot (a no-op update) still mints a fresh
// version number, keeping "one update = one version" bookkeeping simple
// for callers.
func (r *SnapshotRing) Advance(next *Snapshot) uint64 {
	return r.AdvanceApplied(next, nil)
}

// AdvanceApplied is Advance additionally recording the ApplyInfo of the
// update batch that produced the new version, retrievable with AppliedAt
// while the version stays in the ring. A no-op batch's (empty) info is
// worth recording too: it keeps the metadata chain unbroken so warm
// starts can fold across the version.
func (r *SnapshotRing) AdvanceApplied(next *Snapshot, info *ApplyInfo) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.head++
	idx := r.head % uint64(len(r.slots))
	r.slots[idx] = next
	r.metas[idx] = info
	if r.n < len(r.slots) {
		r.n++
	}
	return r.head
}

// AppliedAt returns the ApplyInfo recorded for a version by
// AdvanceApplied. ok is false when the version has left the ring (or was
// never minted) or carries no metadata — the base version, or a version
// advanced without info; warm-start folds treat either as a break in the
// chain.
func (r *SnapshotRing) AppliedAt(version uint64) (*ApplyInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if version > r.head || version+uint64(r.n) <= r.head {
		return nil, false
	}
	info := r.metas[version%uint64(len(r.slots))]
	return info, info != nil
}
