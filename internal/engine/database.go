package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Database is an instance over a schema: one base relation R_i and one delta
// relation ∆_i per relation schema. Per §3.1 of the paper, ∆_i records the
// tuples deleted from R_i; a tuple moves from base to delta, it is never
// destroyed, so provenance and reporting can always resolve tuple IDs.
type Database struct {
	Schema *Schema

	base   map[string]*Relation
	delta  map[string]*Relation
	nextID map[string]int // per-relation ordinal for minted tuple IDs
	seq    int            // global insertion sequence

	// snap caches the snapshot this database was frozen into (or forked
	// from), so Freeze on an unmodified database is O(relations) instead
	// of re-freezing; freezeMu serializes Freeze calls. See cow.go.
	snap     *Snapshot
	freezeMu sync.Mutex
}

// NewDatabase creates an empty database over the schema.
func NewDatabase(schema *Schema) *Database {
	db := &Database{
		Schema: schema,
		base:   make(map[string]*Relation, len(schema.Relations)),
		delta:  make(map[string]*Relation, len(schema.Relations)),
		nextID: make(map[string]int, len(schema.Relations)),
	}
	for _, rs := range schema.Relations {
		db.base[rs.Name] = NewRelation(rs.Name, rs.Arity())
		// Delta relations keep full content dedup (not scratch): deleting a
		// tuple and re-inserting equal content mints a fresh identity, so a
		// second deletion would hand the delta a distinct object with
		// duplicate content — the content check is what preserves the
		// delta's set semantics. Cost: one cached-key hash per deletion.
		db.delta[rs.Name] = NewRelation(rs.Name, rs.Arity())
	}
	return db
}

// Relation returns the base relation R named rel, or nil if not in schema.
func (db *Database) Relation(rel string) *Relation { return db.base[rel] }

// Delta returns the delta relation ∆_rel, or nil if not in schema.
func (db *Database) Delta(rel string) *Relation { return db.delta[rel] }

// Insert adds a new tuple to the base relation, minting an identifier from
// the relation's ID prefix and interning the tuple (assigning its TupleID).
// It returns the stored tuple; re-inserting existing content returns the
// already-stored tuple. This is the insert/dedup boundary: the one hot-ish
// place a content key is computed, to intern content exactly once.
func (db *Database) Insert(rel string, vals ...Value) (*Tuple, error) {
	rs := db.Schema.Relation(rel)
	if rs == nil {
		return nil, fmt.Errorf("engine: unknown relation %q", rel)
	}
	if len(vals) != rs.Arity() {
		return nil, fmt.Errorf("engine: %s expects %d values, got %d", rel, rs.Arity(), len(vals))
	}
	r := db.base[rel]
	key := ContentKey(rel, vals)
	if t := r.Get(key); t != nil {
		return t, nil
	}
	db.nextID[rel]++
	db.seq++
	t := &Tuple{
		ID:   fmt.Sprintf("%s%d", rs.IDPrefix, db.nextID[rel]),
		Rel:  rel,
		Vals: append([]Value(nil), vals...),
		Seq:  db.seq,
		key:  key, // already computed; cache for reporting
	}
	r.Insert(t)
	return t, nil
}

// MustInsert is Insert that panics on error; for generators and tests.
func (db *Database) MustInsert(rel string, vals ...Value) *Tuple {
	t, err := db.Insert(rel, vals...)
	if err != nil {
		panic(err)
	}
	return t
}

// DeleteTupleToDelta moves a tuple from its base relation into its delta
// relation, implementing ∆(S) bookkeeping: deleting t from R_i adds it to
// ∆_i. It reports whether the tuple was live in base. This is the hot-path
// deletion primitive — pure integer-identity work, no keys built or parsed.
func (db *Database) DeleteTupleToDelta(t *Tuple) bool {
	r := db.base[t.Rel]
	d := db.delta[t.Rel]
	if r == nil || d == nil {
		return false
	}
	if !r.DeleteTuple(t) {
		return false
	}
	d.Insert(t)
	return true
}

// DeleteToDelta is DeleteTupleToDelta addressed by content key, for API
// boundaries (REPL commands, user-supplied deletion sets).
func (db *Database) DeleteToDelta(key string) bool {
	rel, ok := relOfKey(key)
	if !ok {
		return false
	}
	r := db.base[rel]
	if r == nil {
		return false
	}
	t := r.Get(key)
	if t == nil {
		return false
	}
	return db.DeleteTupleToDelta(t)
}

// relOfKey extracts the relation name from a content key "Rel(...)".
func relOfKey(key string) (string, bool) {
	i := strings.IndexByte(key, '(')
	if i <= 0 {
		return "", false
	}
	return key[:i], true
}

// RelOfKey exposes relation-name extraction from a content key.
func RelOfKey(key string) (string, bool) { return relOfKey(key) }

// Lookup finds the live base tuple with the given content key across all
// relations, or the delta tuple if it has been deleted, or nil.
func (db *Database) Lookup(key string) *Tuple {
	rel, ok := relOfKey(key)
	if !ok {
		return nil
	}
	if r := db.base[rel]; r != nil {
		if t := r.Get(key); t != nil {
			return t
		}
	}
	if d := db.delta[rel]; d != nil {
		if t := d.Get(key); t != nil {
			return t
		}
	}
	return nil
}

// LookupID finds the tuple with the given interned ID, live or deleted, or
// nil. Tuples move between base and delta but are never destroyed, so every
// ID ever handed out by this database (or its ancestors, for clones)
// resolves.
func (db *Database) LookupID(id TupleID) *Tuple {
	for _, r := range db.base {
		if t := r.GetID(id); t != nil {
			return t
		}
	}
	for _, d := range db.delta {
		if t := d.GetID(id); t != nil {
			return t
		}
	}
	return nil
}

// DisplayKey renders a tuple ID as its human-readable content key, falling
// back to "t<id>" for IDs this database cannot resolve. Reporting only.
func (db *Database) DisplayKey(id TupleID) string {
	if t := db.LookupID(id); t != nil {
		return t.Key()
	}
	return fmt.Sprintf("t%d", id)
}

// TotalTuples returns the number of live base tuples across all relations.
func (db *Database) TotalTuples() int {
	n := 0
	for _, r := range db.base {
		n += r.Len()
	}
	return n
}

// TotalDeltaTuples returns the number of delta tuples across all relations.
func (db *Database) TotalDeltaTuples() int {
	n := 0
	for _, d := range db.delta {
		n += d.Len()
	}
	return n
}

// Clone returns a deep structural copy sharing immutable tuples; overlays
// flatten, so the clone owns plain storage with no frozen base attached.
// Executors use the O(changes) Fork (see cow.go) for their working copies;
// Clone remains for callers that need a fully private copy — and as the
// reference behaviour the copy-on-write fork is differentially tested
// against.
func (db *Database) Clone() *Database {
	c := &Database{
		Schema: db.Schema,
		base:   make(map[string]*Relation, len(db.base)),
		delta:  make(map[string]*Relation, len(db.delta)),
		nextID: make(map[string]int, len(db.nextID)),
		seq:    db.seq,
	}
	for name, r := range db.base {
		c.base[name] = r.Clone()
	}
	for name, d := range db.delta {
		c.delta[name] = d.Clone()
	}
	for name, n := range db.nextID {
		c.nextID[name] = n
	}
	return c
}

// Stats returns per-relation live/deleted counts, ordered by schema.
func (db *Database) Stats() []RelationStat {
	out := make([]RelationStat, 0, len(db.Schema.Relations))
	for _, rs := range db.Schema.Relations {
		out = append(out, RelationStat{
			Name:    rs.Name,
			Live:    db.base[rs.Name].Len(),
			Deleted: db.delta[rs.Name].Len(),
		})
	}
	return out
}

// RelationStat summarizes one relation's live and deleted tuple counts.
type RelationStat struct {
	Name    string
	Live    int
	Deleted int
}

// String renders a compact multi-line dump of the database suitable for
// small examples and debugging; large relations are summarized.
func (db *Database) String() string {
	var b strings.Builder
	for _, rs := range db.Schema.Relations {
		r := db.base[rs.Name]
		d := db.delta[rs.Name]
		fmt.Fprintf(&b, "%s: %d live, %d deleted\n", rs.Name, r.Len(), d.Len())
		if r.Len() <= 20 {
			tuples := r.Tuples()
			sort.Slice(tuples, func(i, j int) bool { return tuples[i].Seq < tuples[j].Seq })
			for _, t := range tuples {
				fmt.Fprintf(&b, "  %s\n", t)
			}
		}
	}
	return b.String()
}
