package engine

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	db := paperDatabase()
	// Delete a couple of tuples so the delta side is non-trivial.
	db.DeleteToDelta(ContentKey("Grant", []Value{Int(2), Str("ERC")}))
	db.DeleteToDelta(ContentKey("Author", []Value{Int(4), Str("Marge")}))

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Schema round trip.
	if len(back.Schema.Relations) != len(db.Schema.Relations) {
		t.Fatal("schema relation count differs")
	}
	for i, rs := range db.Schema.Relations {
		brs := back.Schema.Relations[i]
		if rs.Name != brs.Name || rs.IDPrefix != brs.IDPrefix || strings.Join(rs.Attrs, ",") != strings.Join(brs.Attrs, ",") {
			t.Fatalf("schema relation %d differs: %v vs %v", i, rs, brs)
		}
	}
	// Contents round trip, including order, IDs, and deltas.
	for _, rs := range db.Schema.Relations {
		a, b := db.Relation(rs.Name).Tuples(), back.Relation(rs.Name).Tuples()
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d tuples", rs.Name, len(a), len(b))
		}
		for i := range a {
			if a[i].Key() != b[i].Key() || a[i].ID != b[i].ID || a[i].Seq != b[i].Seq {
				t.Fatalf("%s[%d]: %v vs %v", rs.Name, i, a[i], b[i])
			}
		}
		da, dbt := db.Delta(rs.Name).Tuples(), back.Delta(rs.Name).Tuples()
		if len(da) != len(dbt) {
			t.Fatalf("%s delta: %d vs %d", rs.Name, len(da), len(dbt))
		}
	}
	// Inserting after load continues the ID sequence without collisions.
	tp := back.MustInsert("Author", Int(99), Str("Lisa"))
	if tp.ID != "a4" {
		t.Fatalf("post-load insert ID = %s, want a4", tp.ID)
	}
	if tp.Seq <= 13 {
		t.Fatalf("post-load Seq = %d should exceed loaded maximum", tp.Seq)
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.snap")
	db := paperDatabase()
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalTuples() != db.TotalTuples() {
		t.Fatalf("tuple counts differ: %d vs %d", back.TotalTuples(), db.TotalTuples())
	}
}

func TestSnapshotErrors(t *testing.T) {
	if _, err := LoadSnapshot(strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("garbage input should fail")
	}
	if _, err := LoadSnapshotFile("/nonexistent/db.snap"); err == nil {
		t.Fatal("missing file should fail")
	}
	db := paperDatabase()
	if err := db.SaveFile("/nonexistent/dir/db.snap"); err == nil {
		t.Fatal("unwritable path should fail")
	}
}

func TestSnapshotEmptyDatabase(t *testing.T) {
	db := NewDatabase(paperSchema())
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalTuples() != 0 || len(back.Schema.Relations) != 6 {
		t.Fatal("empty database should round trip")
	}
}

// TestSnapshotPreWarmsIndexes: indexes built before Save are rebuilt by
// LoadSnapshot, so a restored session pays no first-query latency spike.
func TestSnapshotPreWarmsIndexes(t *testing.T) {
	db := paperDatabase()
	db.Relation("Grant").EnsureIndex(0)
	db.Relation("AuthGrant").EnsureIndex(1)
	db.DeleteToDelta(ContentKey("Grant", []Value{Int(2), Str("ERC")}))
	db.Delta("Grant").EnsureIndex(1)

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cols := back.Relation("Grant").IndexedColumns(); len(cols) != 1 || cols[0] != 0 {
		t.Fatalf("Grant base indexes after restore = %v, want [0]", cols)
	}
	if cols := back.Relation("AuthGrant").IndexedColumns(); len(cols) != 1 || cols[0] != 1 {
		t.Fatalf("AuthGrant base indexes after restore = %v, want [1]", cols)
	}
	if cols := back.Delta("Grant").IndexedColumns(); len(cols) != 1 || cols[0] != 1 {
		t.Fatalf("Grant delta indexes after restore = %v, want [1]", cols)
	}
	// The rebuilt index must answer correctly.
	if n := back.Relation("Grant").LookupCount(0, Int(1)); n != 1 {
		t.Fatalf("restored index lookup = %d, want 1", n)
	}
}

// TestSnapshotSeqCounterSurvivesDeletes: the global Seq counter must
// round-trip even when the highest-Seq tuples were deleted before the
// save — otherwise tuples minted after a load would reuse Seq numbers,
// breaking byte-identical replay in crash recovery.
func TestSnapshotSeqCounterSurvivesDeletes(t *testing.T) {
	schema, err := ParseSchema("R(a)")
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(schema)
	keep := db.MustInsert("R", Int(1))
	doomed := db.MustInsert("R", Int(2))
	db.Relation("R").DeleteTuple(doomed)
	_ = keep

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := db.MustInsert("R", Int(3))
	reloaded := loaded.MustInsert("R", Int(3))
	if orig.Seq != reloaded.Seq {
		t.Fatalf("post-load Seq diverged: original %d, reloaded %d", orig.Seq, reloaded.Seq)
	}
	if orig.ID != reloaded.ID {
		t.Fatalf("post-load ID diverged: original %s, reloaded %s", orig.ID, reloaded.ID)
	}
}
