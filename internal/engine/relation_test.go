package engine

import (
	"fmt"
	"testing"
)

func mkTuple(rel string, seq int, vals ...Value) *Tuple {
	t := NewTuple(rel, vals...)
	t.Seq = seq
	return t
}

func TestRelationInsertDeleteContains(t *testing.T) {
	r := NewRelation("R", 2)
	a := mkTuple("R", 1, Int(1), Str("x"))
	b := mkTuple("R", 2, Int(2), Str("y"))

	if !r.Insert(a) {
		t.Fatal("first insert should be new")
	}
	if r.Insert(mkTuple("R", 3, Int(1), Str("x"))) {
		t.Fatal("duplicate content insert should report false")
	}
	r.Insert(b)
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if !r.Contains(a.Key()) || !r.Contains(b.Key()) {
		t.Fatal("Contains should report inserted tuples")
	}
	if !r.Delete(a.Key()) {
		t.Fatal("delete of live tuple should succeed")
	}
	if r.Delete(a.Key()) {
		t.Fatal("double delete should report false")
	}
	if r.Len() != 1 || r.Contains(a.Key()) {
		t.Fatal("tuple should be gone after delete")
	}
}

func TestRelationArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inserting a wrong-arity tuple should panic")
		}
	}()
	r := NewRelation("R", 2)
	r.Insert(mkTuple("R", 1, Int(1)))
}

func TestRelationScanOrderIsInsertionOrder(t *testing.T) {
	r := NewRelation("R", 1)
	var want []string
	for i := 0; i < 50; i++ {
		tp := mkTuple("R", i+1, Int(i))
		r.Insert(tp)
		want = append(want, tp.Key())
	}
	// Delete every third tuple to introduce tombstones.
	for i := 0; i < 50; i += 3 {
		r.Delete(ContentKey("R", []Value{Int(i)}))
	}
	var liveWant []string
	for i, k := range want {
		if i%3 != 0 {
			liveWant = append(liveWant, k)
		}
	}
	got := r.Keys()
	if len(got) != len(liveWant) {
		t.Fatalf("got %d keys, want %d", len(got), len(liveWant))
	}
	for i := range got {
		if got[i] != liveWant[i] {
			t.Fatalf("order mismatch at %d: got %s want %s", i, got[i], liveWant[i])
		}
	}
}

func TestRelationScanEarlyStop(t *testing.T) {
	r := NewRelation("R", 1)
	for i := 0; i < 10; i++ {
		r.Insert(mkTuple("R", i+1, Int(i)))
	}
	n := 0
	r.Scan(func(*Tuple) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("scan visited %d tuples, want 3", n)
	}
}

func TestRelationCompactionPreservesContent(t *testing.T) {
	r := NewRelation("R", 1)
	for i := 0; i < 200; i++ {
		r.Insert(mkTuple("R", i+1, Int(i)))
	}
	for i := 0; i < 150; i++ {
		r.Delete(ContentKey("R", []Value{Int(i)}))
	}
	if r.Len() != 50 {
		t.Fatalf("Len = %d, want 50", r.Len())
	}
	keys := r.Keys()
	if len(keys) != 50 {
		t.Fatalf("Keys len = %d, want 50", len(keys))
	}
	for i, k := range keys {
		want := ContentKey("R", []Value{Int(150 + i)})
		if k != want {
			t.Fatalf("after compaction key[%d] = %s, want %s", i, k, want)
		}
	}
}

func TestRelationLookup(t *testing.T) {
	r := NewRelation("W", 2)
	// Writes(aid, pid): author 4 writes papers 6 and 8; author 5 writes 7.
	w1 := mkTuple("W", 1, Int(4), Int(6))
	w2 := mkTuple("W", 2, Int(5), Int(7))
	w3 := mkTuple("W", 3, Int(4), Int(8))
	r.Insert(w1)
	r.Insert(w2)
	r.Insert(w3)

	got := r.Lookup(0, Int(4))
	if len(got) != 2 || got[0] != w1 || got[1] != w3 {
		t.Fatalf("Lookup(0, 4) = %v, want [w1 w3] in Seq order", got)
	}
	if n := r.LookupCount(0, Int(4)); n != 2 {
		t.Fatalf("LookupCount = %d, want 2", n)
	}
	if got := r.Lookup(1, Int(7)); len(got) != 1 || got[0] != w2 {
		t.Fatalf("Lookup(1, 7) = %v, want [w2]", got)
	}
	if got := r.Lookup(0, Int(99)); got != nil {
		t.Fatalf("Lookup miss should be nil, got %v", got)
	}
	if got := r.Lookup(5, Int(1)); got != nil {
		t.Fatalf("Lookup out-of-range column should be nil, got %v", got)
	}
}

func TestRelationLookupStaysCorrectUnderMutation(t *testing.T) {
	r := NewRelation("R", 2)
	for i := 0; i < 20; i++ {
		r.Insert(mkTuple("R", i+1, Int(i%4), Int(i)))
	}
	// Build the index.
	if n := len(r.Lookup(0, Int(1))); n != 5 {
		t.Fatalf("pre-delete Lookup = %d, want 5", n)
	}
	// Delete two tuples with value 1 at col 0 (i = 1, 5).
	r.Delete(ContentKey("R", []Value{Int(1), Int(1)}))
	r.Delete(ContentKey("R", []Value{Int(1), Int(5)}))
	if n := len(r.Lookup(0, Int(1))); n != 3 {
		t.Fatalf("post-delete Lookup = %d, want 3", n)
	}
	// Insert after index exists: index must pick it up.
	r.Insert(mkTuple("R", 100, Int(1), Int(999)))
	if n := len(r.Lookup(0, Int(1))); n != 4 {
		t.Fatalf("post-insert Lookup = %d, want 4", n)
	}
}

func TestRelationCloneIsIndependent(t *testing.T) {
	r := NewRelation("R", 1)
	for i := 0; i < 10; i++ {
		r.Insert(mkTuple("R", i+1, Int(i)))
	}
	c := r.Clone()
	r.Delete(ContentKey("R", []Value{Int(0)}))
	c.Insert(mkTuple("R", 11, Int(100)))
	if r.Len() != 9 {
		t.Fatalf("original Len = %d, want 9", r.Len())
	}
	if c.Len() != 11 {
		t.Fatalf("clone Len = %d, want 11", c.Len())
	}
	if !c.Contains(ContentKey("R", []Value{Int(0)})) {
		t.Fatal("clone should still contain the tuple deleted from the original")
	}
}

func TestTupleKeyAndString(t *testing.T) {
	tp := mkTuple("Grant", 1, Int(2), Str("ERC"))
	tp.ID = "g2"
	if tp.Key() != `Grant(i2,"ERC")` {
		t.Fatalf("Key = %q", tp.Key())
	}
	if tp.String() != "g2: Grant(2, 'ERC')" {
		t.Fatalf("String = %q", tp.String())
	}
	if tp.Arity() != 2 {
		t.Fatalf("Arity = %d", tp.Arity())
	}
}

func TestTupleEqualContent(t *testing.T) {
	a := mkTuple("R", 1, Int(1), Str("x"))
	b := mkTuple("R", 9, Int(1), Str("x"))
	c := mkTuple("R", 2, Int(2), Str("x"))
	d := mkTuple("S", 3, Int(1), Str("x"))
	if !a.EqualContent(b) {
		t.Error("same content should be equal regardless of Seq")
	}
	if a.EqualContent(c) || a.EqualContent(d) {
		t.Error("different values or relation should not be equal")
	}
}

func TestRelationStringer(t *testing.T) {
	r := NewRelation("R", 1)
	r.Insert(mkTuple("R", 1, Int(1)))
	if s := fmt.Sprint(r); s != "R[1]" {
		t.Fatalf("String = %q, want R[1]", s)
	}
}
