package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func mkTuple(rel string, seq int, vals ...Value) *Tuple {
	t := NewTuple(rel, vals...)
	t.Seq = seq
	return t
}

func TestRelationInsertDeleteContains(t *testing.T) {
	r := NewRelation("R", 2)
	a := mkTuple("R", 1, Int(1), Str("x"))
	b := mkTuple("R", 2, Int(2), Str("y"))

	if !r.Insert(a) {
		t.Fatal("first insert should be new")
	}
	if r.Insert(mkTuple("R", 3, Int(1), Str("x"))) {
		t.Fatal("duplicate content insert should report false")
	}
	r.Insert(b)
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if !r.Contains(a.Key()) || !r.Contains(b.Key()) {
		t.Fatal("Contains should report inserted tuples")
	}
	if !r.Delete(a.Key()) {
		t.Fatal("delete of live tuple should succeed")
	}
	if r.Delete(a.Key()) {
		t.Fatal("double delete should report false")
	}
	if r.Len() != 1 || r.Contains(a.Key()) {
		t.Fatal("tuple should be gone after delete")
	}
}

func TestRelationArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inserting a wrong-arity tuple should panic")
		}
	}()
	r := NewRelation("R", 2)
	r.Insert(mkTuple("R", 1, Int(1)))
}

func TestRelationScanOrderIsInsertionOrder(t *testing.T) {
	r := NewRelation("R", 1)
	var want []string
	for i := 0; i < 50; i++ {
		tp := mkTuple("R", i+1, Int(i))
		r.Insert(tp)
		want = append(want, tp.Key())
	}
	// Delete every third tuple to introduce tombstones.
	for i := 0; i < 50; i += 3 {
		r.Delete(ContentKey("R", []Value{Int(i)}))
	}
	var liveWant []string
	for i, k := range want {
		if i%3 != 0 {
			liveWant = append(liveWant, k)
		}
	}
	got := r.Keys()
	if len(got) != len(liveWant) {
		t.Fatalf("got %d keys, want %d", len(got), len(liveWant))
	}
	for i := range got {
		if got[i] != liveWant[i] {
			t.Fatalf("order mismatch at %d: got %s want %s", i, got[i], liveWant[i])
		}
	}
}

func TestRelationScanEarlyStop(t *testing.T) {
	r := NewRelation("R", 1)
	for i := 0; i < 10; i++ {
		r.Insert(mkTuple("R", i+1, Int(i)))
	}
	n := 0
	r.Scan(func(*Tuple) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("scan visited %d tuples, want 3", n)
	}
}

func TestRelationCompactionPreservesContent(t *testing.T) {
	r := NewRelation("R", 1)
	for i := 0; i < 200; i++ {
		r.Insert(mkTuple("R", i+1, Int(i)))
	}
	for i := 0; i < 150; i++ {
		r.Delete(ContentKey("R", []Value{Int(i)}))
	}
	if r.Len() != 50 {
		t.Fatalf("Len = %d, want 50", r.Len())
	}
	keys := r.Keys()
	if len(keys) != 50 {
		t.Fatalf("Keys len = %d, want 50", len(keys))
	}
	for i, k := range keys {
		want := ContentKey("R", []Value{Int(150 + i)})
		if k != want {
			t.Fatalf("after compaction key[%d] = %s, want %s", i, k, want)
		}
	}
}

func TestRelationLookup(t *testing.T) {
	r := NewRelation("W", 2)
	// Writes(aid, pid): author 4 writes papers 6 and 8; author 5 writes 7.
	w1 := mkTuple("W", 1, Int(4), Int(6))
	w2 := mkTuple("W", 2, Int(5), Int(7))
	w3 := mkTuple("W", 3, Int(4), Int(8))
	r.Insert(w1)
	r.Insert(w2)
	r.Insert(w3)

	got := r.Lookup(0, Int(4))
	if len(got) != 2 || got[0] != w1 || got[1] != w3 {
		t.Fatalf("Lookup(0, 4) = %v, want [w1 w3] in Seq order", got)
	}
	if n := r.LookupCount(0, Int(4)); n != 2 {
		t.Fatalf("LookupCount = %d, want 2", n)
	}
	if got := r.Lookup(1, Int(7)); len(got) != 1 || got[0] != w2 {
		t.Fatalf("Lookup(1, 7) = %v, want [w2]", got)
	}
	if got := r.Lookup(0, Int(99)); got != nil {
		t.Fatalf("Lookup miss should be nil, got %v", got)
	}
	if got := r.Lookup(5, Int(1)); got != nil {
		t.Fatalf("Lookup out-of-range column should be nil, got %v", got)
	}
}

func TestRelationLookupStaysCorrectUnderMutation(t *testing.T) {
	r := NewRelation("R", 2)
	for i := 0; i < 20; i++ {
		r.Insert(mkTuple("R", i+1, Int(i%4), Int(i)))
	}
	// Build the index.
	if n := len(r.Lookup(0, Int(1))); n != 5 {
		t.Fatalf("pre-delete Lookup = %d, want 5", n)
	}
	// Delete two tuples with value 1 at col 0 (i = 1, 5).
	r.Delete(ContentKey("R", []Value{Int(1), Int(1)}))
	r.Delete(ContentKey("R", []Value{Int(1), Int(5)}))
	if n := len(r.Lookup(0, Int(1))); n != 3 {
		t.Fatalf("post-delete Lookup = %d, want 3", n)
	}
	// Insert after index exists: index must pick it up.
	r.Insert(mkTuple("R", 100, Int(1), Int(999)))
	if n := len(r.Lookup(0, Int(1))); n != 4 {
		t.Fatalf("post-insert Lookup = %d, want 4", n)
	}
}

func TestRelationCloneIsIndependent(t *testing.T) {
	r := NewRelation("R", 1)
	for i := 0; i < 10; i++ {
		r.Insert(mkTuple("R", i+1, Int(i)))
	}
	c := r.Clone()
	r.Delete(ContentKey("R", []Value{Int(0)}))
	c.Insert(mkTuple("R", 11, Int(100)))
	if r.Len() != 9 {
		t.Fatalf("original Len = %d, want 9", r.Len())
	}
	if c.Len() != 11 {
		t.Fatalf("clone Len = %d, want 11", c.Len())
	}
	if !c.Contains(ContentKey("R", []Value{Int(0)})) {
		t.Fatal("clone should still contain the tuple deleted from the original")
	}
}

func TestTupleKeyAndString(t *testing.T) {
	tp := mkTuple("Grant", 1, Int(2), Str("ERC"))
	tp.ID = "g2"
	if tp.Key() != `Grant(i2,"ERC")` {
		t.Fatalf("Key = %q", tp.Key())
	}
	if tp.String() != "g2: Grant(2, 'ERC')" {
		t.Fatalf("String = %q", tp.String())
	}
	if tp.Arity() != 2 {
		t.Fatalf("Arity = %d", tp.Arity())
	}
}

func TestTupleEqualContent(t *testing.T) {
	a := mkTuple("R", 1, Int(1), Str("x"))
	b := mkTuple("R", 9, Int(1), Str("x"))
	c := mkTuple("R", 2, Int(2), Str("x"))
	d := mkTuple("S", 3, Int(1), Str("x"))
	if !a.EqualContent(b) {
		t.Error("same content should be equal regardless of Seq")
	}
	if a.EqualContent(c) || a.EqualContent(d) {
		t.Error("different values or relation should not be equal")
	}
}

func TestRelationStringer(t *testing.T) {
	r := NewRelation("R", 1)
	r.Insert(mkTuple("R", 1, Int(1)))
	if s := fmt.Sprint(r); s != "R[1]" {
		t.Fatalf("String = %q, want R[1]", s)
	}
}

// --- Model-based identity-invariant test ------------------------------------

// refModel is a naive reference implementation of a Relation: a slice of
// live tuples in insertion order with content-key dedup. The real Relation
// (ID maps, liveness bitmap, lazy intern map, index buckets, compaction)
// must agree with it after any operation sequence.
type refModel struct {
	live []*Tuple
}

// insert mirrors Relation.Insert's set semantics: content already present
// under any tuple object is not inserted again.
func (m *refModel) insert(t *Tuple) bool {
	for _, u := range m.live {
		if u.EqualContent(t) {
			return false
		}
	}
	m.live = append(m.live, t)
	return true
}

func (m *refModel) delete_(key string) bool {
	for i, u := range m.live {
		if u.Key() == key {
			m.live = append(m.live[:i], m.live[i+1:]...)
			return true
		}
	}
	return false
}

// deleteTuple removes by object identity (the semantics of DeleteTuple and
// DeleteID): a detached duplicate-content tuple that was never stored does
// not match the stored tuple of equal content.
func (m *refModel) deleteTuple(tp *Tuple) bool {
	for i, u := range m.live {
		if u == tp {
			m.live = append(m.live[:i], m.live[i+1:]...)
			return true
		}
	}
	return false
}

func (m *refModel) lookup(col int, v Value) []*Tuple {
	var out []*Tuple
	for _, u := range m.live {
		if u.Vals[col].Equal(v) {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// checkAgainstModel compares Len, iteration order, Contains/ContainsID, and
// per-column Lookup/LookupCount between the relation and the model.
func checkAgainstModel(t *testing.T, tag string, r *Relation, m *refModel, domain []Value) {
	t.Helper()
	if r.Len() != len(m.live) {
		t.Fatalf("%s: Len = %d, model %d", tag, r.Len(), len(m.live))
	}
	got := r.Tuples()
	if len(got) != len(m.live) {
		t.Fatalf("%s: iteration length %d, model %d", tag, len(got), len(m.live))
	}
	for i := range got {
		if got[i] != m.live[i] {
			t.Fatalf("%s: iteration order diverges at %d: %s vs %s", tag, i, got[i], m.live[i])
		}
	}
	for _, u := range m.live {
		if !r.Contains(u.Key()) || !r.ContainsID(u.TID) || r.Get(u.Key()) != u || r.GetID(u.TID) != u {
			t.Fatalf("%s: %s should be visible by key and by ID", tag, u)
		}
	}
	for col := 0; col < r.Arity; col++ {
		for _, v := range domain {
			want := m.lookup(col, v)
			have := r.Lookup(col, v)
			if len(have) != len(want) {
				t.Fatalf("%s: Lookup(%d, %s) = %d tuples, model %d", tag, col, v, len(have), len(want))
			}
			for i := range have {
				if have[i] != want[i] {
					t.Fatalf("%s: Lookup(%d, %s)[%d] = %s, model %s", tag, col, v, i, have[i], want[i])
				}
			}
			if n := r.LookupCount(col, v); n != len(want) {
				t.Fatalf("%s: LookupCount(%d, %s) = %d, model %d", tag, col, v, n, len(want))
			}
		}
	}
}

// TestRelationAgainstReferenceModel drives interleaved Insert/Delete (by
// key, by ID, and by tuple), index builds, compaction, and Clone against
// the naive model, checking the identity invariants after every step.
func TestRelationAgainstReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	domain := []Value{Int(0), Int(1), Int(2), Int(3), Str("a"), Str("b")}
	randVal := func() Value { return domain[rng.Intn(len(domain))] }

	r := NewRelation("M", 2)
	m := &refModel{}
	seq := 0
	var everInserted []*Tuple

	// Force the index and the intern map alive early so every later
	// mutation exercises their maintenance paths.
	r.Lookup(0, Int(0))
	r.Contains("M(i0,i0)")

	for step := 0; step < 600; step++ {
		tag := fmt.Sprintf("step %d", step)
		switch op := rng.Intn(10); {
		case op < 5: // insert a fresh tuple (possibly duplicate content)
			seq++
			tp := mkTuple("M", seq, randVal(), randVal())
			if r.Insert(tp) != m.insert(tp) {
				t.Fatalf("%s: insert disagreement for %s", tag, tp)
			}
			everInserted = append(everInserted, tp)
		case op < 6 && len(everInserted) > 0: // re-insert an old tuple object
			tp := everInserted[rng.Intn(len(everInserted))]
			if r.Insert(tp) != m.insert(tp) {
				t.Fatalf("%s: re-insert disagreement for %s", tag, tp)
			}
		case op < 8 && len(everInserted) > 0: // delete by key or by tuple/ID
			tp := everInserted[rng.Intn(len(everInserted))]
			var got, want bool
			switch rng.Intn(3) {
			case 0: // content identity
				got, want = r.Delete(tp.Key()), m.delete_(tp.Key())
			case 1: // object identity
				got, want = r.DeleteTuple(tp), m.deleteTuple(tp)
			default:
				got, want = r.DeleteID(tp.TID), m.deleteTuple(tp)
			}
			if got != want {
				t.Fatalf("%s: delete disagreement for %s", tag, tp)
			}
		default: // delete a random live tuple to drive compaction
			if len(m.live) == 0 {
				continue
			}
			tp := m.live[rng.Intn(len(m.live))]
			if !r.DeleteTuple(tp) || !m.deleteTuple(tp) {
				t.Fatalf("%s: live delete failed for %s", tag, tp)
			}
		}
		checkAgainstModel(t, tag, r, m, domain)
	}

	// Clone must agree with the same model, stay correct after further
	// mutation, and leave the original untouched.
	c := r.Clone()
	checkAgainstModel(t, "clone", c, m, domain)
	mc := &refModel{live: append([]*Tuple(nil), m.live...)}
	for step := 0; step < 200; step++ {
		tag := fmt.Sprintf("clone step %d", step)
		if rng.Intn(2) == 0 {
			seq++
			tp := mkTuple("M", seq, randVal(), randVal())
			if c.Insert(tp) != mc.insert(tp) {
				t.Fatalf("%s: insert disagreement", tag)
			}
		} else if len(mc.live) > 0 {
			tp := mc.live[rng.Intn(len(mc.live))]
			if !c.DeleteTuple(tp) || !mc.deleteTuple(tp) {
				t.Fatalf("%s: delete disagreement", tag)
			}
		}
		checkAgainstModel(t, tag, c, mc, domain)
	}
	checkAgainstModel(t, "original after clone mutation", r, m, domain)
}

// TestRelationIndexSurvivesDeleteReinsert is a regression test: deleting an
// indexed tuple and re-inserting the same tuple object, with no lookup in
// between, must not leave a duplicate entry in the index bucket.
func TestRelationIndexSurvivesDeleteReinsert(t *testing.T) {
	r := NewRelation("R", 2)
	t1 := mkTuple("R", 1, Int(7), Int(1))
	t2 := mkTuple("R", 2, Int(7), Int(2))
	r.Insert(t1)
	r.Insert(t2)
	if n := len(r.Lookup(0, Int(7))); n != 2 { // build the index
		t.Fatalf("initial Lookup = %d, want 2", n)
	}
	r.DeleteTuple(t1)
	r.Insert(t1) // re-insert while the bucket still holds the stale entry
	got := r.Lookup(0, Int(7))
	if len(got) != 2 {
		t.Fatalf("Lookup after delete+reinsert = %v (%d tuples), want 2", got, len(got))
	}
	if r.LookupCount(0, Int(7)) != 2 {
		t.Fatalf("LookupCount = %d, want 2", r.LookupCount(0, Int(7)))
	}
	seen := map[TupleID]bool{}
	for _, tp := range got {
		if seen[tp.TID] {
			t.Fatalf("duplicate tuple %s in lookup result", tp)
		}
		seen[tp.TID] = true
	}
}

// TestRelationSyncIndexes: after deletions, SyncIndexes leaves every
// bucket fully compacted so lookups perform no writes (the invariant the
// parallel evaluation phase depends on), with unchanged results.
func TestRelationSyncIndexes(t *testing.T) {
	r := NewRelation("R", 2)
	var tuples []*Tuple
	for i := 0; i < 20; i++ {
		tp := NewTuple("R", Int(i%4), Int(i))
		r.Insert(tp)
		tuples = append(tuples, tp)
	}
	r.EnsureIndex(0)
	for i := 0; i < 20; i += 2 {
		r.DeleteTuple(tuples[i])
	}
	r.SyncIndexes()
	// Exact per-bucket counts: odd i survive, so only values 1 and 3 keep
	// five tuples each; every returned tuple must be live.
	want := map[int]int{1: 5, 3: 5}
	for v := 0; v < 4; v++ {
		got := r.Lookup(0, Int(v))
		for _, tp := range got {
			if !r.ContainsTuple(tp) {
				t.Fatalf("lookup returned dead tuple %v", tp)
			}
		}
		if len(got) != want[v] {
			t.Fatalf("Lookup(0,%d) = %d tuples, want %d", v, len(got), want[v])
		}
	}
}

// TestRelationReset: Reset empties the relation but keeps registered index
// columns, and reuse after Reset behaves like a fresh relation.
func TestRelationReset(t *testing.T) {
	r := NewScratchRelation("S", 1)
	r.EnsureIndex(0)
	a, b := NewTuple("S", Int(1)), NewTuple("S", Int(2))
	r.Insert(a)
	r.Insert(b)
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", r.Len())
	}
	if cols := r.IndexedColumns(); len(cols) != 1 || cols[0] != 0 {
		t.Fatalf("Reset dropped index registration: %v", cols)
	}
	if got := r.Lookup(0, Int(1)); len(got) != 0 {
		t.Fatalf("Lookup after Reset returned %v", got)
	}
	r.Insert(b)
	if got := r.Lookup(0, Int(2)); len(got) != 1 || got[0] != b {
		t.Fatalf("Lookup after reuse = %v, want [b]", got)
	}
	if r.Contains(a.Key()) {
		t.Fatal("Reset kept stale content key")
	}
}
