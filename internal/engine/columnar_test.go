package engine

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Differential tests for the columnar frozen-core read paths: every
// batch API must agree, tuple for tuple and in order, with the
// row-oriented reference (the same code with the columnar toggle off),
// across random overlay states — frozen cores, private tails, deletions
// on both sides — and adversarial values (NaN, -0.0, cross-kind
// numerics, interned strings).

// colTestVals is the adversarial value pool: cross-kind equal pairs
// (int 2 vs float 2.0), negative zero, NaN, floats, and strings.
func colTestVals() []Value {
	return []Value{
		{Kind: KindInt, Int: 0},
		{Kind: KindInt, Int: 2},
		{Kind: KindInt, Int: -7},
		{Kind: KindFloat, Flt: 2},
		{Kind: KindFloat, Flt: 0},
		{Kind: KindFloat, Flt: math.Copysign(0, -1)},
		{Kind: KindFloat, Flt: 2.5},
		{Kind: KindFloat, Flt: math.NaN()},
		{Kind: KindString, Str: "a"},
		{Kind: KindString, Str: "b"},
		{Kind: KindString, Str: ""},
		{Kind: KindString, Str: "2"},
	}
}

// TestColVecMatchRowMirrorsEqual: matchRow on a columnar cell must agree
// with Value.Equal on the reconstructed cell, for every (cell, probe)
// pair in the adversarial pool — on mixed-kind columns (per-row kinds)
// and on uniform single-kind columns.
func TestColVecMatchRowMirrorsEqual(t *testing.T) {
	vals := colTestVals()
	groups := map[string][]Value{"mixed": vals}
	for _, v := range vals {
		key := fmt.Sprintf("uniform-kind%d", v.Kind)
		groups[key] = append(groups[key], v)
	}
	for name, cells := range groups {
		order := make([]*Tuple, len(cells))
		for i, v := range cells {
			order[i] = &Tuple{Vals: []Value{v}, Seq: i}
		}
		fc := buildFrozenCols(order, 1)
		for i, cell := range cells {
			if got := fc.valueAt(0, i); !got.Equal(cell) && !(cell.Kind == KindFloat && math.IsNaN(cell.Flt)) {
				t.Fatalf("%s: valueAt(%d) = %#v, want %#v", name, i, got, cell)
			}
			for _, probe := range vals {
				got := fc.cols[0].matchRow(fc.strs, i, probe)
				want := cell.Equal(probe)
				if got != want {
					t.Fatalf("%s: matchRow(cell %#v, probe %#v) = %v, Value.Equal = %v", name, cell, probe, got, want)
				}
			}
		}
	}
}

// randomOverlay builds a relation in a random overlay state: a frozen
// core, a private tail, and random deletions on both sides.
func randomOverlay(rng *rand.Rand) *Relation {
	schema := NewSchema()
	if _, err := schema.AddRelation("R", "r", "a", "b", "c"); err != nil {
		panic(err)
	}
	db := NewDatabase(schema)
	pool := colTestVals()
	// NaN is excluded from stored cells (NaN map keys would split index
	// buckets); it stays in the probe pool.
	stored := make([]Value, 0, len(pool))
	for _, v := range pool {
		if v.Kind == KindFloat && math.IsNaN(v.Flt) {
			continue
		}
		stored = append(stored, v)
	}
	pick := func() Value { return stored[rng.Intn(len(stored))] }
	for i, n := 0, rng.Intn(40); i < n; i++ {
		db.MustInsert("R", pick(), pick(), pick())
	}
	db.Freeze()
	for i, n := 0, rng.Intn(20); i < n; i++ {
		db.MustInsert("R", pick(), pick(), pick())
	}
	rel := db.Relation("R")
	var all []*Tuple
	rel.Scan(func(t *Tuple) bool { all = append(all, t); return true })
	for _, tp := range all {
		if rng.Intn(5) == 0 {
			rel.DeleteTuple(tp)
		}
	}
	return rel
}

// sameTuples reports whether two tuple sequences are identical, pointer
// for pointer, in order.
func sameTuples(a, b []*Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBatchAPIsMatchRowReference: on random overlay states, Lookup,
// LookupEach, ScanChecked, and ScanRuns with the columnar paths on must
// yield exactly the sequences the row-oriented reference (columnar off)
// yields — which in turn must match the brute-force Lookup/Scan+filter
// composition.
func TestBatchAPIsMatchRowReference(t *testing.T) {
	prev := SetColumnarEnabled(true)
	defer SetColumnarEnabled(prev)
	probes := colTestVals()
	for trial := 0; trial < 120; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		rel := randomOverlay(rng)

		scan := func() (out []*Tuple) {
			rel.Scan(func(tp *Tuple) bool { out = append(out, tp); return true })
			return
		}
		runs := func() (out []*Tuple) {
			rel.ScanRuns(func(run []*Tuple) bool {
				if len(run) == 0 {
					t.Fatalf("trial %d: ScanRuns yielded an empty run", trial)
				}
				out = append(out, run...)
				return true
			})
			return
		}
		each := func(col int, v Value, checks []ColCheck) (out []*Tuple) {
			rel.LookupEach(col, v, checks, func(tp *Tuple) bool { out = append(out, tp); return true })
			return
		}
		checked := func(checks []ColCheck) (out []*Tuple) {
			rel.ScanChecked(checks, func(tp *Tuple) bool { out = append(out, tp); return true })
			return
		}
		filter := func(in []*Tuple, checks []ColCheck) (out []*Tuple) {
			for _, tp := range in {
				if checksMatchTuple(tp, checks) {
					out = append(out, tp)
				}
			}
			return
		}

		if got := runs(); !sameTuples(got, scan()) {
			t.Fatalf("trial %d: ScanRuns order diverged from Scan", trial)
		}

		for p := 0; p < 12; p++ {
			col := rng.Intn(3)
			v := probes[rng.Intn(len(probes))]
			var checks []ColCheck
			for len(checks) < rng.Intn(3) {
				checks = append(checks, ColCheck{Col: rng.Intn(3), Val: probes[rng.Intn(len(probes))]})
			}

			colLookup := rel.Lookup(col, v)
			colEach := each(col, v, checks)
			colChecked := checked(checks)

			SetColumnarEnabled(false)
			rowLookup := rel.Lookup(col, v)
			rowEach := each(col, v, checks)
			rowChecked := checked(checks)
			SetColumnarEnabled(true)

			if !sameTuples(colLookup, rowLookup) {
				t.Fatalf("trial %d probe %d: Lookup(%d, %#v) columnar %d tuples, row %d", trial, p, col, v, len(colLookup), len(rowLookup))
			}
			want := filter(rowLookup, checks)
			if !sameTuples(colEach, want) || !sameTuples(rowEach, want) {
				t.Fatalf("trial %d probe %d: LookupEach(%d, %#v, %v) diverged from Lookup+filter", trial, p, col, v, checks)
			}
			wantScan := filter(scan(), checks)
			if !sameTuples(colChecked, wantScan) || !sameTuples(rowChecked, wantScan) {
				t.Fatalf("trial %d probe %d: ScanChecked(%v) diverged from Scan+filter", trial, p, checks)
			}
		}
	}
}

// TestLookupZeroCopyFrozen: a probe answered entirely by a pristine
// frozen core shares the bucket slice — zero allocations, capacity
// clipped so appends cannot scribble on the shared storage.
func TestLookupZeroCopyFrozen(t *testing.T) {
	prev := SetColumnarEnabled(true)
	defer SetColumnarEnabled(prev)
	schema := NewSchema()
	if _, err := schema.AddRelation("R", "r", "a", "b"); err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(schema)
	for i := 0; i < 100; i++ {
		db.MustInsert("R", Value{Kind: KindInt, Int: int64(i % 10)}, Value{Kind: KindInt, Int: int64(i)})
	}
	db.Freeze()
	rel := db.Relation("R")
	rel.EnsureIndex(0)
	v := Value{Kind: KindInt, Int: 3}
	got := rel.Lookup(0, v)
	if len(got) != 10 {
		t.Fatalf("Lookup returned %d tuples, want 10", len(got))
	}
	if cap(got) != len(got) {
		t.Fatalf("zero-copy result capacity %d not clipped to length %d", cap(got), len(got))
	}
	if allocs := testing.AllocsPerRun(200, func() { rel.Lookup(0, v) }); allocs != 0 {
		t.Fatalf("frozen-core Lookup allocated %.1f times per op, want 0", allocs)
	}
	// The row path must return the same tuples, just in freshly allocated
	// storage.
	SetColumnarEnabled(false)
	row := rel.Lookup(0, v)
	SetColumnarEnabled(true)
	if !sameTuples(got, row) {
		t.Fatal("columnar and row Lookup disagree on a pristine frozen core")
	}
}

// TestSnapshotFormatsCrossLoad: the same database saved in row (format
// 1) and columnar (format 2) encodings must declare the expected format
// on the wire and load back content-identical.
func TestSnapshotFormatsCrossLoad(t *testing.T) {
	schema := NewSchema()
	if _, err := schema.AddRelation("R", "r", "a", "b", "c"); err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(schema)
	rng := rand.New(rand.NewSource(7))
	pool := colTestVals()
	var tuples []*Tuple
	for i := 0; i < 60; i++ {
		v := func() Value {
			for {
				v := pool[rng.Intn(len(pool))]
				// NaN map keys split index buckets, and -0.0 is lossy on
				// the wire either way (gob omits zero-valued fields, and
				// the columnar decoder normalizes to match): neither
				// belongs in stored round-trip content.
				if v.Kind == KindFloat && (math.IsNaN(v.Flt) || v.Flt == 0 && math.Signbit(v.Flt)) {
					continue
				}
				return v
			}
		}
		tuples = append(tuples, db.MustInsert("R", v(), v(), v()))
	}
	for _, tp := range tuples {
		if rng.Intn(4) == 0 {
			db.DeleteTupleToDelta(tp)
		}
	}
	ref := fuzzDumpDB(db)

	for _, mode := range []struct {
		name       string
		columnar   bool
		wantFormat int
	}{{"row", false, 1}, {"columnar", true, 2}} {
		var buf bytes.Buffer
		prevSet := SetColumnarEnabled(mode.columnar)
		err := db.Save(&buf)
		SetColumnarEnabled(prevSet)
		if err != nil {
			t.Fatalf("%s: save: %v", mode.name, err)
		}
		var snap snapshot
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&snap); err != nil {
			t.Fatalf("%s: decode: %v", mode.name, err)
		}
		if snap.Format != mode.wantFormat {
			t.Fatalf("%s: snapshot declares format %d, want %d", mode.name, snap.Format, mode.wantFormat)
		}
		rdb, err := LoadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: load: %v", mode.name, err)
		}
		if got := fuzzDumpDB(rdb); got != ref {
			t.Fatalf("%s: round trip changed content:\n%s\nwant:\n%s", mode.name, got, ref)
		}
	}
}
