package engine

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	db := paperDatabase()
	var buf bytes.Buffer
	if err := db.WriteCSV("Author", &buf); err != nil {
		t.Fatal(err)
	}
	want := "2,Maggie\n4,Marge\n5,Homer\n"
	if buf.String() != want {
		t.Fatalf("WriteCSV = %q, want %q", buf.String(), want)
	}

	db2 := NewDatabase(paperSchema())
	n, err := db2.LoadCSV("Author", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || db2.Relation("Author").Len() != 3 {
		t.Fatalf("loaded %d tuples, relation has %d; want 3", n, db2.Relation("Author").Len())
	}
	// Values must come back with the same kinds (int aid, string name).
	got := db2.Relation("Author").Lookup(0, Int(4))
	if len(got) != 1 || got[0].Vals[1].Str != "Marge" {
		t.Fatalf("round-tripped tuple wrong: %v", got)
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grant.csv")
	db := paperDatabase()
	if err := db.WriteCSVFile("Grant", path); err != nil {
		t.Fatal(err)
	}
	db2 := NewDatabase(paperSchema())
	n, err := db2.LoadCSVFile("Grant", path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("loaded %d, want 2", n)
	}
	if db2.Relation("Grant").Lookup(1, Str("ERC")) == nil {
		t.Fatal("ERC grant missing after file round trip")
	}
}

func TestCSVErrors(t *testing.T) {
	db := NewDatabase(paperSchema())
	if _, err := db.LoadCSV("Nope", strings.NewReader("1,2\n")); err == nil {
		t.Error("unknown relation should fail")
	}
	if _, err := db.LoadCSV("Grant", strings.NewReader("1\n")); err == nil {
		t.Error("wrong field count should fail")
	}
	if err := db.WriteCSV("Nope", &bytes.Buffer{}); err == nil {
		t.Error("unknown relation write should fail")
	}
	if _, err := db.LoadCSVFile("Grant", "/nonexistent/path.csv"); err == nil {
		t.Error("missing file should fail")
	}
	if err := db.WriteCSVFile("Grant", "/nonexistent/dir/out.csv"); err == nil {
		t.Error("unwritable path should fail")
	}
}

func TestCSVQuotedStrings(t *testing.T) {
	db := NewDatabase(paperSchema())
	// A name containing a comma must survive the round trip via CSV quoting.
	db.MustInsert("Author", Int(1), Str("Simpson, Homer"))
	var buf bytes.Buffer
	if err := db.WriteCSV("Author", &buf); err != nil {
		t.Fatal(err)
	}
	db2 := NewDatabase(paperSchema())
	if _, err := db2.LoadCSV("Author", strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	got := db2.Relation("Author").Lookup(0, Int(1))
	if len(got) != 1 || got[0].Vals[1].Str != "Simpson, Homer" {
		t.Fatalf("comma string did not round trip: %v", got)
	}
}
