package engine

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"
)

// Snapshot persistence: a Database (schema, base relations, delta
// relations, tuple identities) serialized with encoding/gob. Snapshots let
// a repair session be saved and resumed — including the record of what was
// already deleted, which CSV export cannot carry.

// snapTuple is the serialized form of one tuple (format 1, and the decoded
// intermediate for every format).
type snapTuple struct {
	ID   string
	Seq  int
	Vals []Value
}

// snapVec is one serialized column vector (format 2): integers inline,
// floats as IEEE-754 bits, strings as indexes into the relation's string
// table. Kinds is nil when the column is uniformly Kind — the schema-clean
// common case — so a typical column serializes as one flat []int64.
type snapVec struct {
	Kind  byte
	Kinds []byte // per-row kinds; nil when uniform
	Data  []int64
}

// snapCols is the columnar serialized form of one relation side, mirroring
// the in-memory frozenCols layout: parallel ID/Seq slices, one vector per
// column, and the string intern table the string cells index into.
type snapCols struct {
	IDs  []string
	Seqs []int
	Cols []snapVec
	Strs []string
}

// snapRelation is the serialized form of one relation schema plus its base
// and delta contents — row-oriented (Base/Delta, format 1) or columnar
// (BaseC/DeltaC, format 2). BaseIdx/DeltaIdx record which single-column
// hash indexes were built at save time so LoadSnapshot can pre-warm them —
// restoring into the same steady state instead of paying a first-query
// latency spike while indexes rebuild lazily. All content fields are
// optional (other-format snapshots decode them as nil).
type snapRelation struct {
	Name     string
	IDPrefix string
	Attrs    []string
	NextID   int
	Base     []snapTuple
	Delta    []snapTuple
	BaseC    *snapCols
	DeltaC   *snapCols
	BaseIdx  []int
	DeltaIdx []int
}

// snapshot is the full serialized database.
type snapshot struct {
	Format    int // version tag for forward compatibility
	Relations []snapRelation
	// NextSeq is the database's global sequence counter at save time.
	// Older snapshots lack it (gob decodes it as 0); LoadSnapshot then
	// falls back to the max stored Seq, which can under-count when the
	// highest-Seq tuples were deleted before the save. Persisting the
	// counter keeps Seq allocation identical across a save/load boundary —
	// a requirement for byte-identical crash recovery.
	NextSeq int
}

// snapshotFormat is the current snapshot version: columnar relation
// contents. Format-1 (row-oriented) streams still load; Save emits format 1
// when the columnar paths are disabled, keeping the row encoder alive as
// the differential reference.
const snapshotFormat = 2

// encodeSnapCols converts one relation side to columnar serialized form.
func encodeSnapCols(tuples []*Tuple, arity int) *snapCols {
	n := len(tuples)
	sc := &snapCols{
		IDs:  make([]string, n),
		Seqs: make([]int, n),
		Cols: make([]snapVec, arity),
	}
	strIdx := make(map[string]int64)
	for i, t := range tuples {
		sc.IDs[i], sc.Seqs[i] = t.ID, t.Seq
	}
	for col := range sc.Cols {
		sv := &sc.Cols[col]
		sv.Data = make([]int64, n)
		uniform := true
		for i, t := range tuples {
			v := t.Vals[col]
			if i == 0 {
				sv.Kind = byte(v.Kind)
			} else if byte(v.Kind) != sv.Kind {
				uniform = false
			}
			switch v.Kind {
			case KindInt:
				sv.Data[i] = v.Int
			case KindFloat:
				sv.Data[i] = int64(math.Float64bits(v.Flt))
			default:
				idx, ok := strIdx[v.Str]
				if !ok {
					idx = int64(len(sc.Strs))
					sc.Strs = append(sc.Strs, v.Str)
					strIdx[v.Str] = idx
				}
				sv.Data[i] = idx
			}
		}
		if !uniform {
			sv.Kinds = make([]byte, n)
			for i, t := range tuples {
				sv.Kinds[i] = byte(t.Vals[col].Kind)
			}
		}
	}
	return sc
}

// rows flattens a columnar side back into row-oriented snapTuples.
func (sc *snapCols) rows(arity int) ([]snapTuple, error) {
	out := make([]snapTuple, len(sc.IDs))
	if len(sc.Seqs) != len(sc.IDs) || len(sc.Cols) != arity {
		return nil, fmt.Errorf("engine: malformed columnar snapshot block")
	}
	for _, sv := range sc.Cols {
		if len(sv.Data) != len(sc.IDs) || (sv.Kinds != nil && len(sv.Kinds) != len(sc.IDs)) {
			return nil, fmt.Errorf("engine: malformed columnar snapshot vector")
		}
	}
	for i := range out {
		vals := make([]Value, arity)
		for c := range vals {
			sv := &sc.Cols[c]
			kind := Kind(sv.Kind)
			if sv.Kinds != nil {
				kind = Kind(sv.Kinds[i])
			}
			switch kind {
			case KindInt:
				vals[c] = Value{Kind: KindInt, Int: sv.Data[i]}
			case KindFloat:
				// -0.0 normalization happens in sanitizeSnapTuple, shared
				// with the row decoding path.
				vals[c] = Value{Kind: KindFloat, Flt: math.Float64frombits(uint64(sv.Data[i]))}
			case KindString:
				d := sv.Data[i]
				if d < 0 || d >= int64(len(sc.Strs)) {
					return nil, fmt.Errorf("engine: columnar snapshot string index out of range")
				}
				vals[c] = Value{Kind: KindString, Str: sc.Strs[d]}
			default:
				return nil, fmt.Errorf("engine: columnar snapshot has unknown value kind %d", kind)
			}
		}
		out[i] = snapTuple{ID: sc.IDs[i], Seq: sc.Seqs[i], Vals: vals}
	}
	return out, nil
}

// Save serializes the database (schema, base and delta relations, tuple
// identifiers and order) to w.
func (db *Database) Save(w io.Writer) error {
	columnar := columnarOn.Load()
	snap := snapshot{Format: snapshotFormat, NextSeq: db.seq}
	if !columnar {
		snap.Format = 1
	}
	for _, rs := range db.Schema.Relations {
		sr := snapRelation{
			Name:     rs.Name,
			IDPrefix: rs.IDPrefix,
			Attrs:    rs.Attrs,
			NextID:   db.nextID[rs.Name],
			BaseIdx:  db.base[rs.Name].IndexedColumns(),
			DeltaIdx: db.delta[rs.Name].IndexedColumns(),
		}
		if columnar {
			sr.BaseC = encodeSnapCols(db.base[rs.Name].Tuples(), len(rs.Attrs))
			sr.DeltaC = encodeSnapCols(db.delta[rs.Name].Tuples(), len(rs.Attrs))
		} else {
			db.base[rs.Name].Scan(func(t *Tuple) bool {
				sr.Base = append(sr.Base, snapTuple{ID: t.ID, Seq: t.Seq, Vals: t.Vals})
				return true
			})
			db.delta[rs.Name].Scan(func(t *Tuple) bool {
				sr.Delta = append(sr.Delta, snapTuple{ID: t.ID, Seq: t.Seq, Vals: t.Vals})
				return true
			})
		}
		snap.Relations = append(snap.Relations, sr)
	}
	return gob.NewEncoder(w).Encode(snap)
}

// SaveFile is Save writing to a file path.
func (db *Database) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return db.Save(f)
}

// sanitizeSnapTuple validates one decoded tuple against its relation
// schema before insertion: gob decodes arbitrary bytes, so arity and
// value kinds cannot be trusted (Relation.Insert panics on arity
// mismatches by contract). Float zeros are normalized to +0.0 — gob
// omits zero-valued struct fields, so -0.0 cannot survive a re-save,
// and load-time normalization keeps save/load a fixpoint.
func sanitizeSnapTuple(st *snapTuple, sr *snapRelation) error {
	if len(st.Vals) != len(sr.Attrs) {
		return fmt.Errorf("engine: snapshot tuple %q has %d values, relation %s has arity %d",
			st.ID, len(st.Vals), sr.Name, len(sr.Attrs))
	}
	for i := range st.Vals {
		switch st.Vals[i].Kind {
		case KindInt, KindString:
		case KindFloat:
			if st.Vals[i].Flt == 0 {
				st.Vals[i].Flt = 0
			}
		default:
			return fmt.Errorf("engine: snapshot tuple %q has unknown value kind %d", st.ID, st.Vals[i].Kind)
		}
	}
	return nil
}

// LoadSnapshot reconstructs a database from a Save stream. Tuple
// identifiers, sequence order, and delta contents round-trip exactly.
func LoadSnapshot(r io.Reader) (*Database, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("engine: decoding snapshot: %w", err)
	}
	if snap.Format != 1 && snap.Format != snapshotFormat {
		return nil, fmt.Errorf("engine: unsupported snapshot format %d", snap.Format)
	}
	schema := NewSchema()
	for _, sr := range snap.Relations {
		if _, err := schema.AddRelation(sr.Name, sr.IDPrefix, sr.Attrs...); err != nil {
			return nil, err
		}
	}
	db := NewDatabase(schema)
	maxSeq := 0
	for i := range snap.Relations {
		sr := &snap.Relations[i]
		// A columnar (format 2) relation flattens back to rows up front;
		// the insertion path below is shared by both formats.
		if sr.BaseC != nil {
			rows, err := sr.BaseC.rows(len(sr.Attrs))
			if err != nil {
				return nil, err
			}
			sr.Base = rows
		}
		if sr.DeltaC != nil {
			rows, err := sr.DeltaC.rows(len(sr.Attrs))
			if err != nil {
				return nil, err
			}
			sr.Delta = rows
		}
	}
	for _, sr := range snap.Relations {
		for _, st := range sr.Base {
			if err := sanitizeSnapTuple(&st, &sr); err != nil {
				return nil, err
			}
			t := &Tuple{ID: st.ID, Rel: sr.Name, Vals: st.Vals, Seq: st.Seq}
			db.base[sr.Name].Insert(t)
			if st.Seq > maxSeq {
				maxSeq = st.Seq
			}
		}
		for _, st := range sr.Delta {
			if err := sanitizeSnapTuple(&st, &sr); err != nil {
				return nil, err
			}
			t := &Tuple{ID: st.ID, Rel: sr.Name, Vals: st.Vals, Seq: st.Seq}
			db.delta[sr.Name].Insert(t)
			if st.Seq > maxSeq {
				maxSeq = st.Seq
			}
		}
		db.nextID[sr.Name] = sr.NextID
		// Pre-warm the indexes that existed at save time: building them now,
		// while the data is hot, avoids a lazy rebuild on the first query.
		for _, col := range sr.BaseIdx {
			db.base[sr.Name].EnsureIndex(col)
		}
		for _, col := range sr.DeltaIdx {
			db.delta[sr.Name].EnsureIndex(col)
		}
	}
	if snap.NextSeq > maxSeq {
		maxSeq = snap.NextSeq
	}
	db.seq = maxSeq
	return db, nil
}

// LoadSnapshotFile is LoadSnapshot reading from a file path.
func LoadSnapshotFile(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSnapshot(f)
}
