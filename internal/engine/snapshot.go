package engine

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Snapshot persistence: a Database (schema, base relations, delta
// relations, tuple identities) serialized with encoding/gob. Snapshots let
// a repair session be saved and resumed — including the record of what was
// already deleted, which CSV export cannot carry.

// snapTuple is the serialized form of one tuple.
type snapTuple struct {
	ID   string
	Seq  int
	Vals []Value
}

// snapRelation is the serialized form of one relation schema plus its base
// and delta contents. BaseIdx/DeltaIdx record which single-column hash
// indexes were built at save time so LoadSnapshot can pre-warm them —
// restoring into the same steady state instead of paying a first-query
// latency spike while indexes rebuild lazily. Both fields are optional
// (older snapshots decode them as nil).
type snapRelation struct {
	Name     string
	IDPrefix string
	Attrs    []string
	NextID   int
	Base     []snapTuple
	Delta    []snapTuple
	BaseIdx  []int
	DeltaIdx []int
}

// snapshot is the full serialized database.
type snapshot struct {
	Format    int // version tag for forward compatibility
	Relations []snapRelation
}

// snapshotFormat is the current snapshot version.
const snapshotFormat = 1

// Save serializes the database (schema, base and delta relations, tuple
// identifiers and order) to w.
func (db *Database) Save(w io.Writer) error {
	snap := snapshot{Format: snapshotFormat}
	for _, rs := range db.Schema.Relations {
		sr := snapRelation{
			Name:     rs.Name,
			IDPrefix: rs.IDPrefix,
			Attrs:    rs.Attrs,
			NextID:   db.nextID[rs.Name],
			BaseIdx:  db.base[rs.Name].IndexedColumns(),
			DeltaIdx: db.delta[rs.Name].IndexedColumns(),
		}
		db.base[rs.Name].Scan(func(t *Tuple) bool {
			sr.Base = append(sr.Base, snapTuple{ID: t.ID, Seq: t.Seq, Vals: t.Vals})
			return true
		})
		db.delta[rs.Name].Scan(func(t *Tuple) bool {
			sr.Delta = append(sr.Delta, snapTuple{ID: t.ID, Seq: t.Seq, Vals: t.Vals})
			return true
		})
		snap.Relations = append(snap.Relations, sr)
	}
	return gob.NewEncoder(w).Encode(snap)
}

// SaveFile is Save writing to a file path.
func (db *Database) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return db.Save(f)
}

// LoadSnapshot reconstructs a database from a Save stream. Tuple
// identifiers, sequence order, and delta contents round-trip exactly.
func LoadSnapshot(r io.Reader) (*Database, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("engine: decoding snapshot: %w", err)
	}
	if snap.Format != snapshotFormat {
		return nil, fmt.Errorf("engine: unsupported snapshot format %d", snap.Format)
	}
	schema := NewSchema()
	for _, sr := range snap.Relations {
		if _, err := schema.AddRelation(sr.Name, sr.IDPrefix, sr.Attrs...); err != nil {
			return nil, err
		}
	}
	db := NewDatabase(schema)
	maxSeq := 0
	for _, sr := range snap.Relations {
		for _, st := range sr.Base {
			t := &Tuple{ID: st.ID, Rel: sr.Name, Vals: st.Vals, Seq: st.Seq}
			db.base[sr.Name].Insert(t)
			if st.Seq > maxSeq {
				maxSeq = st.Seq
			}
		}
		for _, st := range sr.Delta {
			t := &Tuple{ID: st.ID, Rel: sr.Name, Vals: st.Vals, Seq: st.Seq}
			db.delta[sr.Name].Insert(t)
			if st.Seq > maxSeq {
				maxSeq = st.Seq
			}
		}
		db.nextID[sr.Name] = sr.NextID
		// Pre-warm the indexes that existed at save time: building them now,
		// while the data is hot, avoids a lazy rebuild on the first query.
		for _, col := range sr.BaseIdx {
			db.base[sr.Name].EnsureIndex(col)
		}
		for _, col := range sr.DeltaIdx {
			db.delta[sr.Name].EnsureIndex(col)
		}
	}
	db.seq = maxSeq
	return db, nil
}

// LoadSnapshotFile is LoadSnapshot reading from a file path.
func LoadSnapshotFile(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSnapshot(f)
}
