package engine

import (
	"fmt"
	"sync"
	"testing"
)

func updateTestSnapshot(t *testing.T) (*Snapshot, *Schema) {
	t.Helper()
	schema, err := ParseSchema("R(a, b)\nS(a)\nT(a)")
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(schema)
	for i := 0; i < 8; i++ {
		db.MustInsert("R", Int(i), Int(i*10))
	}
	db.MustInsert("S", Int(1))
	db.MustInsert("S", Int(2))
	db.MustInsert("T", Int(7))
	return db.Freeze(), schema
}

func relKeys(db *Database, rel string) string {
	return fmt.Sprintf("%v", db.Relation(rel).Keys())
}

func TestSnapshotApplyBasics(t *testing.T) {
	snap, _ := updateTestSnapshot(t)
	next, info, err := snap.Apply(
		[]Row{{Rel: "S", Vals: []Value{Int(3)}}, {Rel: "S", Vals: []Value{Int(1)}}},                  // Int(1) is a dup
		[]Row{{Rel: "R", Vals: []Value{Int(0), Int(0)}}, {Rel: "R", Vals: []Value{Int(99), Int(0)}}}, // Int(99) absent
	)
	if err != nil {
		t.Fatal(err)
	}
	if info.Inserted != 1 || info.Deleted != 1 {
		t.Fatalf("info counts: %+v, want 1 insert / 1 delete applied", info)
	}
	if got := fmt.Sprintf("%v", info.Changed); got != "[R S]" {
		t.Fatalf("changed relations %s, want [R S]", got)
	}
	if info.InsertOnly() || info.DeleteOnly() {
		t.Fatalf("mixed batch misclassified: %+v", info)
	}

	// New version sees the changes; the old version is untouched.
	newDB, oldDB := next.Fork(), snap.Fork()
	if newDB.Relation("R").Len() != 7 || newDB.Relation("S").Len() != 3 {
		t.Fatalf("new version contents: R=%d S=%d", newDB.Relation("R").Len(), newDB.Relation("S").Len())
	}
	if oldDB.Relation("R").Len() != 8 || oldDB.Relation("S").Len() != 2 {
		t.Fatalf("old version mutated: R=%d S=%d", oldDB.Relation("R").Len(), oldDB.Relation("S").Len())
	}
	if newDB.Relation("R").Contains("R(i0,i0)") {
		t.Fatal("deleted row still live in new version")
	}
	if !newDB.Relation("S").Contains("S(i3)") {
		t.Fatal("inserted row missing from new version")
	}
	// Base-table deletes are upstream churn, not repairs: no delta record.
	if newDB.Delta("R").Len() != 0 {
		t.Fatalf("update recorded %d delta tuples", newDB.Delta("R").Len())
	}
}

func TestSnapshotApplySharesUntouchedCores(t *testing.T) {
	snap, _ := updateTestSnapshot(t)
	// Warm an index on the untouched relation so sharing is observable work
	// saved, not just pointer equality.
	snap.base["R"].index(0)

	next, _, err := snap.Apply(nil, []Row{{Rel: "S", Vals: []Value{Int(1)}}})
	if err != nil {
		t.Fatal(err)
	}
	if next == snap {
		t.Fatal("effective update returned the same snapshot")
	}
	if next.base["R"] != snap.base["R"] || next.base["T"] != snap.base["T"] {
		t.Fatal("untouched relation cores not shared across versions")
	}
	if next.base["S"] == snap.base["S"] {
		t.Fatal("touched relation core unexpectedly shared")
	}
	if next.base["R"].indexes.Load() != snap.base["R"].indexes.Load() {
		t.Fatal("untouched relation's warm indexes not shared")
	}
	// Deltas were never touched: all shared.
	for name := range snap.delta {
		if next.delta[name] != snap.delta[name] {
			t.Fatalf("delta core %s not shared", name)
		}
	}
}

func TestSnapshotApplyNoOpReturnsReceiver(t *testing.T) {
	snap, _ := updateTestSnapshot(t)
	next, info, err := snap.Apply(
		[]Row{{Rel: "S", Vals: []Value{Int(1)}}},           // already present
		[]Row{{Rel: "R", Vals: []Value{Int(42), Int(42)}}}, // absent
	)
	if err != nil {
		t.Fatal(err)
	}
	if next != snap {
		t.Fatal("no-op batch minted a new snapshot")
	}
	if info.Inserted != 0 || info.Deleted != 0 || len(info.Changed) != 0 {
		t.Fatalf("no-op info: %+v", info)
	}
}

func TestSnapshotApplyValidatesAtomically(t *testing.T) {
	snap, _ := updateTestSnapshot(t)
	if _, _, err := snap.Apply([]Row{{Rel: "Nope", Vals: []Value{Int(1)}}}, nil); err == nil {
		t.Error("unknown relation accepted")
	}
	if _, _, err := snap.Apply([]Row{{Rel: "S", Vals: []Value{Int(1), Int(2)}}}, nil); err == nil {
		t.Error("arity mismatch accepted")
	}
	// A bad row anywhere in the batch fails before any work: the receiver
	// must still be the frozen head with its full contents.
	if _, _, err := snap.Apply(
		[]Row{{Rel: "S", Vals: []Value{Int(77)}}, {Rel: "Nope", Vals: []Value{Int(1)}}},
		[]Row{{Rel: "S", Vals: []Value{Int(1)}}},
	); err == nil {
		t.Error("mixed good/bad batch accepted")
	}
	if db := snap.Fork(); db.Relation("S").Len() != 2 || db.Relation("S").Contains("S(i77)") {
		t.Error("failed batch partially applied")
	}
}

func TestSnapshotApplyDeleteThenReinsert(t *testing.T) {
	snap, _ := updateTestSnapshot(t)
	// Deleting and re-inserting the same content in one batch replaces the
	// tuple: same content key, fresh identity.
	next, info, err := snap.Apply(
		[]Row{{Rel: "S", Vals: []Value{Int(1)}}},
		[]Row{{Rel: "S", Vals: []Value{Int(1)}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if info.Inserted != 1 || info.Deleted != 1 {
		t.Fatalf("replace batch: %+v", info)
	}
	db := next.Fork()
	if db.Relation("S").Len() != 2 || !db.Relation("S").Contains("S(i1)") {
		t.Fatalf("replace lost content: %s", relKeys(db, "S"))
	}
	oldT := info.DeletedTuples["S"][0]
	newT := info.InsertedTuples["S"][0]
	if oldT.TID == newT.TID {
		t.Fatal("replacement reused the deleted tuple's identity")
	}
}

func TestSnapshotApplyChains(t *testing.T) {
	// A chain of updates must accumulate correctly and leave every
	// intermediate version readable.
	snap, _ := updateTestSnapshot(t)
	versions := []*Snapshot{snap}
	cur := snap
	for i := 0; i < 20; i++ {
		var err error
		cur, _, err = cur.Apply(
			[]Row{{Rel: "T", Vals: []Value{Int(100 + i)}}},
			[]Row{{Rel: "T", Vals: []Value{Int(100 + i - 1)}}},
		)
		if err != nil {
			t.Fatal(err)
		}
		versions = append(versions, cur)
	}
	for i, v := range versions {
		db := v.Fork()
		// Base T(7) plus the current chain element (element i-1 was deleted).
		want := 1
		if i > 0 {
			want = 2
		}
		if db.Relation("T").Len() != want {
			t.Fatalf("version %d: T has %d tuples, want %d (%s)", i, db.Relation("T").Len(), want, relKeys(db, "T"))
		}
		// Untouched relations share one core across the whole chain.
		if v.base["R"] != snap.base["R"] {
			t.Fatalf("version %d: R core not shared", i)
		}
	}
}

func TestSnapshotRingRetention(t *testing.T) {
	snap, _ := updateTestSnapshot(t)
	ring := NewSnapshotRing(snap, 3)
	if _, v := ring.Head(); v != 1 {
		t.Fatalf("initial head %d, want 1", v)
	}
	if got, ok := ring.At(1); !ok || got != snap {
		t.Fatal("At(1) should resolve the base")
	}
	if _, ok := ring.At(2); ok {
		t.Fatal("future version resolved")
	}

	cur := snap
	for i := 0; i < 5; i++ {
		next, _, err := cur.Apply([]Row{{Rel: "S", Vals: []Value{Int(50 + i)}}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if v := ring.Advance(next); v != uint64(i+2) {
			t.Fatalf("advance %d returned version %d", i, v)
		}
		cur = next
	}
	if _, v := ring.Head(); v != 6 {
		t.Fatalf("head %d, want 6", v)
	}
	if ring.Oldest() != 4 || ring.Retained() != 3 {
		t.Fatalf("retention: oldest %d retained %d, want 4/3", ring.Oldest(), ring.Retained())
	}
	for v := uint64(1); v <= 3; v++ {
		if _, ok := ring.At(v); ok {
			t.Errorf("evicted version %d still resolves", v)
		}
	}
	for v := uint64(4); v <= 6; v++ {
		s, ok := ring.At(v)
		if !ok || s == nil {
			t.Errorf("retained version %d does not resolve", v)
			continue
		}
		// Version v contains the base 2 S-tuples plus v-1 inserts.
		if db := s.Fork(); db.Relation("S").Len() != 2+int(v-1) {
			t.Errorf("version %d: S has %d tuples, want %d", v, db.Relation("S").Len(), 2+int(v-1))
		}
	}
}

func TestSnapshotRingDefaultCapacity(t *testing.T) {
	snap, _ := updateTestSnapshot(t)
	ring := NewSnapshotRing(snap, 0)
	for i := 0; i < DefaultRetainedVersions+2; i++ {
		ring.Advance(snap)
	}
	if ring.Retained() != DefaultRetainedVersions {
		t.Fatalf("retained %d, want default %d", ring.Retained(), DefaultRetainedVersions)
	}
}

// TestSnapshotRingConcurrentReaders advances the ring while readers fork
// whatever versions they can resolve; run under -race this checks the
// locking, and evicted-version forks staying readable checks that
// retention only affects the ring, not outstanding forks.
func TestSnapshotRingConcurrentReaders(t *testing.T) {
	snap, _ := updateTestSnapshot(t)
	ring := NewSnapshotRing(snap, 2)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var pinned *Database // fork from an early version, read throughout
			for {
				select {
				case <-stop:
					return
				default:
				}
				s, v := ring.Head()
				db := s.Fork()
				if db.Relation("R").Len() != 8 {
					errs <- fmt.Errorf("version %d: R drifted to %d tuples", v, db.Relation("R").Len())
					return
				}
				if pinned == nil {
					pinned = db
				}
				if pinned.Relation("S").Len() < 2 {
					errs <- fmt.Errorf("pinned fork lost tuples")
					return
				}
			}
		}()
	}
	cur := snap
	for i := 0; i < 50; i++ {
		next, _, err := cur.Apply([]Row{{Rel: "S", Vals: []Value{Int(1000 + i)}}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		ring.Advance(next)
		cur = next
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSnapshotRingAppliedMetadata: AdvanceApplied records per-version
// ApplyInfo retrievable while the version stays in the ring; plain
// Advance and the base version read as chain breaks; eviction drops the
// metadata with the slot.
func TestSnapshotRingAppliedMetadata(t *testing.T) {
	snap, _ := updateTestSnapshot(t)
	ring := NewSnapshotRing(snap, 3)

	// The base version carries no metadata.
	if _, ok := ring.AppliedAt(1); ok {
		t.Fatal("base version reported metadata")
	}

	cur := snap
	var infos []*ApplyInfo
	for i := 0; i < 4; i++ {
		next, info, err := cur.Apply([]Row{{Rel: "S", Vals: []Value{Int(60 + i)}}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if v := ring.AdvanceApplied(next, info); v != uint64(i+2) {
			t.Fatalf("advance %d returned version %d", i, v)
		}
		infos = append(infos, info)
		cur = next
	}

	// Retained versions (3..5 with capacity 3) return exactly the info
	// recorded for them; evicted and future versions do not.
	for v := uint64(3); v <= 5; v++ {
		info, ok := ring.AppliedAt(v)
		if !ok || info != infos[v-2] {
			t.Fatalf("AppliedAt(%d): ok=%v info=%p, want %p", v, ok, info, infos[v-2])
		}
	}
	if _, ok := ring.AppliedAt(2); ok {
		t.Fatal("evicted version still reports metadata")
	}
	if _, ok := ring.AppliedAt(6); ok {
		t.Fatal("future version reports metadata")
	}

	// A plain Advance overwrites the slot's stale metadata: the new
	// version must read as a chain break, not as the evicted version's
	// ApplyInfo.
	if v := ring.Advance(cur); v != 6 {
		t.Fatalf("plain advance returned version %d", v)
	}
	if _, ok := ring.AppliedAt(6); ok {
		t.Fatal("metadata-free advance reported stale metadata")
	}
	if info, ok := ring.AppliedAt(5); !ok || info != infos[3] {
		t.Fatal("retained metadata lost after plain advance")
	}
}

// TestSnapshotRingAt covers starting a version history at an arbitrary
// version (crash recovery resumes the counter where the durable history
// left off).
func TestSnapshotRingAt(t *testing.T) {
	snap, _ := updateTestSnapshot(t)
	r := NewSnapshotRingAt(snap, 7, 2)
	if got, ver := r.Head(); got != snap || ver != 7 {
		t.Fatalf("head = v%d, want v7 with the base snapshot", ver)
	}
	if r.Oldest() != 7 || r.Retained() != 1 {
		t.Fatalf("oldest=%d retained=%d, want 7/1", r.Oldest(), r.Retained())
	}
	next, _, err := snap.Apply([]Row{{Rel: "S", Vals: []Value{Int(9)}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Advance(next); v != 8 {
		t.Fatalf("advance = %d, want 8", v)
	}
	if _, ok := r.At(7); !ok {
		t.Fatal("version 7 evicted from a capacity-2 ring holding 2 versions")
	}
	if v := r.Advance(next); v != 9 {
		t.Fatalf("advance = %d, want 9", v)
	}
	if _, ok := r.At(7); ok {
		t.Fatal("version 7 still resolvable past the retention window")
	}
	// Version 0 normalizes to 1 (versions start at 1).
	r0 := NewSnapshotRingAt(snap, 0, 1)
	if _, ver := r0.Head(); ver != 1 {
		t.Fatalf("ring at version 0 starts at %d, want 1", ver)
	}
}
