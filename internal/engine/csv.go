package engine

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"
)

// LoadCSV reads tuples for relation rel from r (one row per tuple, no
// header) and inserts them into the database. Values are parsed with
// ParseValue, so quoted fields become strings and numerics become ints or
// floats. It returns the number of tuples inserted.
func (db *Database) LoadCSV(rel string, r io.Reader) (int, error) {
	rs := db.Schema.Relation(rel)
	if rs == nil {
		return 0, fmt.Errorf("engine: unknown relation %q", rel)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = rs.Arity()
	n := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, fmt.Errorf("engine: reading CSV for %s: %w", rel, err)
		}
		vals := make([]Value, len(rec))
		for i, f := range rec {
			vals[i] = ParseValue(f)
		}
		if _, err := db.Insert(rel, vals...); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// LoadCSVFile is LoadCSV reading from a file path.
func (db *Database) LoadCSVFile(rel, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return db.LoadCSV(rel, f)
}

// WriteCSV writes the live tuples of relation rel to w, one row per tuple
// in deterministic (Seq) order, without a header. String values are written
// bare; the CSV layer adds quoting only where syntax requires it.
func (db *Database) WriteCSV(rel string, w io.Writer) error {
	r := db.base[rel]
	if r == nil {
		return fmt.Errorf("engine: unknown relation %q", rel)
	}
	cw := csv.NewWriter(w)
	tuples := r.Tuples()
	sort.Slice(tuples, func(i, j int) bool { return tuples[i].Seq < tuples[j].Seq })
	rec := make([]string, r.Arity)
	for _, t := range tuples {
		for i, v := range t.Vals {
			if v.Kind == KindString {
				rec[i] = v.Str
			} else {
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile is WriteCSV writing to a file path.
func (db *Database) WriteCSVFile(rel, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return db.WriteCSV(rel, f)
}
