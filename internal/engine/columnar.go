package engine

import (
	"math"
	"os"
	"sync/atomic"
)

// Columnar frozen cores.
//
// A frozen core is immutable and shared by every fork of every version of
// a session, so a cache-friendly layout amortizes across all serving
// traffic at once. frozenCols is the columnar image of one core: per
// column a flat int64 vector (integers inline, floats as IEEE-754 bits,
// strings as indexes into a per-core intern table) plus a parallel
// TupleID slice mirroring the core's positions. The row-oriented tuple
// objects remain the identity layer — deltas, provenance, and reports
// share *Tuple pointers — but the hot evaluation loops filter candidate
// positions on these vectors and only materialize the survivors, so a
// failing candidate never touches tuple memory.
//
// The columnar form builds lazily, at most once per core across all
// forks (same discipline as the frozen hash indexes), and the overlay
// tail stays row-oriented for cheap writes. REPRO_COLUMNAR=0 (or
// SetColumnarEnabled(false)) disables every columnar read path, turning
// the row-oriented code back into the reference implementation the
// columnar path is differentially tested against.

// columnarOn gates every columnar read path. Default on; REPRO_COLUMNAR=0
// in the environment starts the process with it off.
var columnarOn atomic.Bool

func init() {
	switch os.Getenv("REPRO_COLUMNAR") {
	case "0", "false", "off":
	default:
		columnarOn.Store(true)
	}
}

// ColumnarEnabled reports whether columnar frozen-core read paths are
// active.
func ColumnarEnabled() bool { return columnarOn.Load() }

// SetColumnarEnabled toggles the columnar frozen-core read paths and
// returns the previous setting. Both settings are exact — results are
// byte-identical either way — so the toggle exists for differential tests
// and benchmarks, and as a kill switch.
func SetColumnarEnabled(on bool) bool { return columnarOn.Swap(on) }

// ColCheck is one additional equality constraint on a scan or probe: the
// tuple's value at Col must equal Val (cross-kind numeric equality,
// mirroring Value.Equal). The batch scan/probe APIs evaluate ColChecks on
// the frozen core's column vectors when available, culling candidates
// before any tuple is materialized.
type ColCheck struct {
	Col int
	Val Value
}

// colVec is one column of a frozen core: a flat int64 vector with a kind
// tag. Uniform columns (the common case — schema columns hold one kind)
// carry a single kind; mixed columns a parallel per-row kind slice.
type colVec struct {
	kind  Kind
	kinds []Kind // nil when the column is uniformly kind
	data  []int64
}

// kindAt returns the kind of the cell at row.
func (cv *colVec) kindAt(row int) Kind {
	if cv.kinds != nil {
		return cv.kinds[row]
	}
	return cv.kind
}

// matchRow reports whether the cell at row equals v, mirroring
// Value.Equal exactly (cross-kind numeric equality; NaN equals nothing).
func (cv *colVec) matchRow(strs []string, row int, v Value) bool {
	d := cv.data[row]
	switch cv.kindAt(row) {
	case KindInt:
		switch v.Kind {
		case KindInt:
			return v.Int == d
		case KindFloat:
			return v.Flt == float64(d)
		}
		return false
	case KindFloat:
		f := math.Float64frombits(uint64(d))
		switch v.Kind {
		case KindInt:
			return float64(v.Int) == f
		case KindFloat:
			return v.Flt == f
		}
		return false
	default:
		return v.Kind == KindString && v.Str == strs[d]
	}
}

// valueAt reconstructs the Value of the cell at row.
func (cv *colVec) valueAt(strs []string, row int) Value {
	d := cv.data[row]
	switch cv.kindAt(row) {
	case KindInt:
		return Value{Kind: KindInt, Int: d}
	case KindFloat:
		return Value{Kind: KindFloat, Flt: math.Float64frombits(uint64(d))}
	default:
		return Value{Kind: KindString, Str: strs[d]}
	}
}

// frozenCols is the columnar image of a frozen core: one colVec per
// column, a parallel TupleID slice, and the string intern table the
// string cells index into. Immutable once built.
type frozenCols struct {
	tids []TupleID
	cols []colVec
	strs []string
}

// Rows returns the number of rows (frozen positions).
func (fc *frozenCols) Rows() int { return len(fc.tids) }

// valueAt reconstructs the Value at (column, row).
func (fc *frozenCols) valueAt(col, row int) Value {
	return fc.cols[col].valueAt(fc.strs, row)
}

// match reports whether the row satisfies every check.
func (fc *frozenCols) match(row int, checks []ColCheck) bool {
	for _, c := range checks {
		if !fc.cols[c.Col].matchRow(fc.strs, row, c.Val) {
			return false
		}
	}
	return true
}

// buildFrozenCols converts a frozen core's tuples into columnar form.
func buildFrozenCols(order []*Tuple, arity int) *frozenCols {
	n := len(order)
	fc := &frozenCols{
		tids: make([]TupleID, n),
		cols: make([]colVec, arity),
	}
	strIdx := make(map[string]int64)
	intern := func(s string) int64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := int64(len(fc.strs))
		fc.strs = append(fc.strs, s)
		strIdx[s] = i
		return i
	}
	for i, t := range order {
		fc.tids[i] = t.TID
	}
	for col := range fc.cols {
		cv := &fc.cols[col]
		cv.data = make([]int64, n)
		uniform := true
		for i, t := range order {
			v := t.Vals[col]
			if i == 0 {
				cv.kind = v.Kind
			} else if v.Kind != cv.kind {
				uniform = false
			}
			switch v.Kind {
			case KindInt:
				cv.data[i] = v.Int
			case KindFloat:
				cv.data[i] = int64(math.Float64bits(v.Flt))
			default:
				cv.data[i] = intern(v.Str)
			}
		}
		if !uniform {
			cv.kinds = make([]Kind, n)
			for i, t := range order {
				cv.kinds[i] = t.Vals[col].Kind
			}
		}
	}
	return fc
}

// checksMatchTuple evaluates checks against a row-oriented tuple — the
// overlay-tail and columnar-disabled fallback, and the behaviour the
// columnar matchRow must agree with.
func checksMatchTuple(t *Tuple, checks []ColCheck) bool {
	for _, c := range checks {
		if !t.Vals[c.Col].Equal(c.Val) {
			return false
		}
	}
	return true
}
