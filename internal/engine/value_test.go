package engine

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Int(7), KindInt},
		{Int64(-3), KindInt},
		{Str("x"), KindString},
		{Float(2.5), KindFloat},
	}
	for _, c := range cases {
		if c.v.Kind != c.kind {
			t.Errorf("value %v: kind = %v, want %v", c.v, c.v.Kind, c.kind)
		}
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Float(1.5), Float(1.5), true},
		{Int(1), Float(1.0), true}, // cross-kind numeric equality
		{Float(2.0), Int(2), true}, // symmetric
		{Int(1), Str("1"), false},  // no numeric/string coercion
		{Str(""), Int(0), false},   // zero values of different kinds differ
		{Float(1.25), Int(1), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Float(1.5), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("a"), 1},
		{Str("a"), Str("a"), 0},
		{Int(999), Str("a"), -1}, // numerics order before strings
		{Str("a"), Int(999), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Int64(a).Compare(Int64(b)) == -Int64(b).Compare(Int64(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		return Str(a).Compare(Str(b)) == -Str(b).Compare(Str(a))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(42), "42"},
		{Int64(-1), "-1"},
		{Str("ERC"), "'ERC'"},
		{Float(2.5), "2.5"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueKeyStringInjective(t *testing.T) {
	// Distinct values must have distinct key strings, including tricky
	// string contents that could collide with numeric encodings.
	vals := []Value{
		Int(1), Int(12), Str("1"), Str("i1"), Str("a,b"), Str("a\"b"),
		Float(1), Float(1.5), Str("f1"), Str(""), Int(0),
	}
	seen := make(map[string]Value)
	for _, v := range vals {
		k := v.keyString()
		if prev, dup := seen[k]; dup {
			t.Errorf("keyString collision: %v and %v both map to %q", prev, v, k)
		}
		seen[k] = v
	}
}

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"42", Int(42)},
		{"-7", Int(-7)},
		{"2.5", Float(2.5)},
		{"'ERC'", Str("ERC")},
		{`"NSF"`, Str("NSF")},
		{"hello", Str("hello")},
		{"  13 ", Int(13)},
	}
	for _, c := range cases {
		got := ParseValue(c.in)
		if !got.Equal(c.want) || got.Kind != c.want.Kind {
			t.Errorf("ParseValue(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindInt.String() != "int" || KindString.String() != "string" || KindFloat.String() != "float" {
		t.Error("kind names are wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestAsFloat(t *testing.T) {
	if Int(3).AsFloat() != 3.0 {
		t.Error("Int(3).AsFloat() != 3.0")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("Float(2.5).AsFloat() != 2.5")
	}
	if Str("x").AsFloat() != 0 {
		t.Error("Str.AsFloat() should be 0")
	}
}
