package engine

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzParseValue: parsing never panics, and the parsed value's display
// form re-parses to an equal value of the same kind.
func FuzzParseValue(f *testing.F) {
	for _, s := range []string{"42", "-1", "2.5", "'x'", `"y"`, "hello", "", " 13 ", "1e9", "'a,b'", "i1"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		v := ParseValue(src)
		back := ParseValue(v.String())
		if !back.Equal(v) {
			// Strings containing quote characters render quoted and lose
			// the outer quotes on re-parse; only flag kind flips for
			// simple content.
			if v.Kind != KindString || !strings.ContainsAny(v.Str, "'\"") {
				t.Fatalf("round trip changed value: %#v -> %q -> %#v", v, v.String(), back)
			}
		}
	})
}

// fuzzDumpDB renders every relation's live base and delta content —
// IDs, sequence numbers, values — as one canonical string for
// round-trip comparisons.
func fuzzDumpDB(db *Database) string {
	var b strings.Builder
	for _, rs := range db.Schema.Relations {
		for _, side := range []struct {
			name string
			rel  *Relation
		}{{"base", db.base[rs.Name]}, {"delta", db.delta[rs.Name]}} {
			fmt.Fprintf(&b, "%s/%s:", rs.Name, side.name)
			side.rel.Scan(func(t *Tuple) bool {
				fmt.Fprintf(&b, " %s#%d%v", t.ID, t.Seq, t.Vals)
				return true
			})
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// FuzzSnapshot: loading arbitrary bytes never panics; it either errors or
// yields a database that survives, content-identical, a freeze/flatten
// cycle (building and discarding columnar cores) and a save/load
// round-trip in both the row (format 1) and columnar (format 2)
// snapshot encodings.
func FuzzSnapshot(f *testing.F) {
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := LoadSnapshot(strings.NewReader(string(data)))
		if err != nil {
			return
		}
		_ = db.TotalTuples()
		_ = db.Stats()
		ref := fuzzDumpDB(db)

		// Freeze into (columnar-indexed) immutable cores, then flatten
		// back to flat row storage: content must be untouched.
		db.Freeze()
		if got := fuzzDumpDB(db); got != ref {
			t.Fatalf("freeze changed content:\n%s\nwant:\n%s", got, ref)
		}
		for _, rs := range db.Schema.Relations {
			db.base[rs.Name].materialize()
			db.delta[rs.Name].materialize()
		}
		if got := fuzzDumpDB(db); got != ref {
			t.Fatalf("flatten changed content:\n%s\nwant:\n%s", got, ref)
		}

		// Save/load round-trip in both encodings. The toggle is global,
		// but fuzz executions are sequential within a worker process and
		// the prior value is restored before the next check.
		for _, columnar := range []bool{false, true} {
			prev := SetColumnarEnabled(columnar)
			var buf strings.Builder
			err := db.Save(&buf)
			SetColumnarEnabled(prev)
			if err != nil {
				t.Fatalf("save (columnar=%v): %v", columnar, err)
			}
			rdb, err := LoadSnapshot(strings.NewReader(buf.String()))
			if err != nil {
				t.Fatalf("reload (columnar=%v): %v", columnar, err)
			}
			if got := fuzzDumpDB(rdb); got != ref {
				t.Fatalf("round trip (columnar=%v) changed content:\n%s\nwant:\n%s", columnar, got, ref)
			}
		}
	})
}
