package engine

import (
	"strings"
	"testing"
)

// FuzzParseValue: parsing never panics, and the parsed value's display
// form re-parses to an equal value of the same kind.
func FuzzParseValue(f *testing.F) {
	for _, s := range []string{"42", "-1", "2.5", "'x'", `"y"`, "hello", "", " 13 ", "1e9", "'a,b'", "i1"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		v := ParseValue(src)
		back := ParseValue(v.String())
		if !back.Equal(v) {
			// Strings containing quote characters render quoted and lose
			// the outer quotes on re-parse; only flag kind flips for
			// simple content.
			if v.Kind != KindString || !strings.ContainsAny(v.Str, "'\"") {
				t.Fatalf("round trip changed value: %#v -> %q -> %#v", v, v.String(), back)
			}
		}
	})
}

// FuzzSnapshot: loading arbitrary bytes never panics; it either errors or
// yields a database whose accessors work.
func FuzzSnapshot(f *testing.F) {
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := LoadSnapshot(strings.NewReader(string(data)))
		if err != nil {
			return
		}
		_ = db.TotalTuples()
		_ = db.Stats()
	})
}
