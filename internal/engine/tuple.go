package engine

import (
	"strings"
	"sync/atomic"
)

// TupleID is a dense integer tuple identity, assigned once when a tuple is
// first inserted into a relation (interned). It is the identity used on
// every hot path — relation storage, index buckets, join dedup, provenance
// clauses, and SAT variables — replacing the string content key, which is
// now computed only for human-readable reports.
//
// The zero value means "not yet interned". IDs are unique process-wide
// (assigned from one atomic 64-bit counter — effectively inexhaustible, and
// never reclaimed), so tuples can move freely between a database, its
// clones, and derived scratch relations without re-keying, and long-lived
// processes that create many databases cannot wrap the ID space.
type TupleID uint64

// nextTupleID is the global interning counter; see assignTupleID.
var nextTupleID atomic.Uint64

// assignTupleID interns the tuple, giving it a fresh TupleID unless it
// already has one. Safe for concurrent use.
func assignTupleID(t *Tuple) TupleID {
	if t.TID == 0 {
		t.TID = TupleID(nextTupleID.Add(1))
	}
	return t.TID
}

// Tuple is an immutable row of a relation. Tuples carry a stable external
// identifier (ID, e.g. "a2" for the second Author tuple) used in repair
// reports and in the paper's figures, an interned integer identity (TID)
// used for set semantics everywhere inside the engine, and a sequence
// number fixing a deterministic global order.
//
// Tuples are shared by pointer between a database, its clones, and its delta
// relations; they must never be mutated after insertion.
type Tuple struct {
	// ID is the stable human-readable identifier, assigned at insertion
	// (relation prefix + ordinal) or provided by the caller.
	ID string
	// Rel is the relation name the tuple belongs to.
	Rel string
	// Vals holds the attribute values, in schema order.
	Vals []Value
	// Seq is a database-global insertion sequence number; it defines the
	// deterministic iteration and tie-breaking order everywhere.
	Seq int
	// TID is the interned integer identity, assigned at first insertion
	// (0 until then). Two stored tuples share a TID iff they are the same
	// tuple object.
	TID TupleID

	key string // cached content key, built lazily for reporting
}

// NewTuple builds a detached tuple (Seq, ID, and TID are set on insertion).
func NewTuple(rel string, vals ...Value) *Tuple {
	return &Tuple{Rel: rel, Vals: vals}
}

// Key returns the injective content key "Rel(v1,v2,...)". Two tuples with
// the same relation and values share the same key. The key exists for
// human-readable reports, explanations, and key-based lookups at API
// boundaries; engine-internal identity is TID.
func (t *Tuple) Key() string {
	if t.key == "" {
		t.key = ContentKey(t.Rel, t.Vals)
	}
	return t.key
}

// ContentKey computes the content key for a relation name and value list
// without materializing a tuple.
func ContentKey(rel string, vals []Value) string {
	var b strings.Builder
	b.Grow(len(rel) + 2 + len(vals)*8)
	b.WriteString(rel)
	b.WriteByte('(')
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(v.keyString())
	}
	b.WriteByte(')')
	return b.String()
}

// Arity returns the number of attributes.
func (t *Tuple) Arity() int { return len(t.Vals) }

// String renders the tuple as "id: Rel(v1, v2)".
func (t *Tuple) String() string {
	var b strings.Builder
	if t.ID != "" {
		b.WriteString(t.ID)
		b.WriteString(": ")
	}
	b.WriteString(t.Rel)
	b.WriteByte('(')
	for i, v := range t.Vals {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// EqualContent reports whether two tuples have the same relation and values.
func (t *Tuple) EqualContent(o *Tuple) bool {
	if t.Rel != o.Rel || len(t.Vals) != len(o.Vals) {
		return false
	}
	for i := range t.Vals {
		if !t.Vals[i].Equal(o.Vals[i]) {
			return false
		}
	}
	return true
}
