package engine

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Copy-on-write database snapshots.
//
// Every semantics executor starts from a private working copy of the input
// database, and the exhaustive step search needs one per explored state.
// Deep cloning makes that O(database) per copy; since repairs are
// deletion-only deltas over a stable base (the observation behind
// disjunctive repair representations), a working copy can instead be a
// structural-sharing fork: each relation overlays a frozen immutable core
// with a per-fork deletion bitmap and a private appended tail, and warm
// hash indexes are shared read-only by every fork until a relation
// diverges. Freeze converts a database into such a core in place (so the
// original keeps working, as a pristine fork); Fork mints working copies
// in O(relations), with later per-fork cost proportional to the changes,
// not the database.
//
// Concurrency: a Snapshot is safe for concurrent Fork and concurrent reads
// through any number of forks. The only mutable shared state — lazily
// built frozen indexes and the frozen content-intern map — is published
// via atomic pointers to immutable maps, with builders serialized on a
// mutex, so readers never lock and never observe a partially built
// structure. Each forked Database itself is single-goroutine, like any
// Database.

// frozenRel is the immutable core shared by all forks of one relation:
// the live tuples at freeze time, their ID->position map, and lazily
// built shared read structures — positional hash indexes, the columnar
// image of the tuples (see columnar.go), and the content intern map.
type frozenRel struct {
	name       string
	arity      int
	positional bool

	order []*Tuple          // live tuples at freeze time, insertion order
	byID  map[TupleID]int32 // TID -> position in order

	// indexes, cols, and keys hold immutable snapshots behind atomic
	// pointers: readers load without locking; builders serialize on mu and
	// publish a fresh value. Buckets reachable from here are never mutated.
	mu      sync.Mutex
	indexes atomic.Pointer[map[int]map[Value]*frozenBucket]
	cols    atomic.Pointer[frozenCols]
	keys    atomic.Pointer[map[string]TupleID]
}

// frozenBucket is one frozen hash-index bucket: the matching tuples in
// Seq-ascending order (Lookup's result order) with the parallel positions
// in the core. Resolving a candidate costs one slice load, no ID-map
// lookup, and the deletion bitmap filters by position. Buckets are
// immutable once published, so pristine forks can hand out tuples as a
// shared zero-copy Lookup result.
type frozenBucket struct {
	poss   []int32  // positions in the core, parallel to tuples
	tuples []*Tuple // Seq-ascending
}

// index returns the frozen hash index on col, building and publishing it
// on first use. The build happens at most once per (snapshot, column)
// across all forks — this is what lets RunAllParallel's four forks probe
// one warm index instead of four rebuilt ones.
func (fz *frozenRel) index(col int) map[Value]*frozenBucket {
	if m := fz.indexes.Load(); m != nil {
		if idx, ok := (*m)[col]; ok {
			return idx
		}
	}
	fz.mu.Lock()
	defer fz.mu.Unlock()
	return fz.buildIndexLocked(col)
}

// buildIndexLocked builds and publishes the positional index on col; the
// caller must hold fz.mu. Returns the existing index if already built.
func (fz *frozenRel) buildIndexLocked(col int) map[Value]*frozenBucket {
	old := fz.indexes.Load()
	if old != nil {
		if idx, ok := (*old)[col]; ok {
			return idx
		}
	}
	idx := make(map[Value]*frozenBucket)
	sortNeeded := false
	for pos, t := range fz.order {
		v := t.Vals[col].mapKey()
		b := idx[v]
		if b == nil {
			b = &frozenBucket{}
			idx[v] = b
		}
		if n := len(b.tuples); n > 0 && b.tuples[n-1].Seq > t.Seq {
			sortNeeded = true
		}
		b.poss = append(b.poss, int32(pos))
		b.tuples = append(b.tuples, t)
	}
	if sortNeeded {
		// Frozen cores almost always hold tuples in Seq order (compaction
		// and flattening preserve insertion order); when one doesn't, sort
		// tuples and positions in tandem so every bucket is Seq-ascending.
		for _, b := range idx {
			if sort.SliceIsSorted(b.tuples, func(i, j int) bool { return b.tuples[i].Seq < b.tuples[j].Seq }) {
				continue
			}
			perm := make([]int, len(b.tuples))
			for i := range perm {
				perm[i] = i
			}
			sort.Slice(perm, func(i, j int) bool { return b.tuples[perm[i]].Seq < b.tuples[perm[j]].Seq })
			tuples := make([]*Tuple, len(b.tuples))
			poss := make([]int32, len(b.poss))
			for i, p := range perm {
				tuples[i], poss[i] = b.tuples[p], b.poss[p]
			}
			b.tuples, b.poss = tuples, poss
		}
	}
	next := make(map[int]map[Value]*frozenBucket, 4)
	if old != nil {
		for c, m := range *old {
			next[c] = m
		}
	}
	next[col] = idx
	fz.indexes.Store(&next)
	return idx
}

// columnar returns the core's columnar image, building and publishing it
// on first use (at most once per snapshot across all forks), or nil when
// columnar read paths are disabled or the core is empty.
func (fz *frozenRel) columnar() *frozenCols {
	if !columnarOn.Load() || len(fz.order) == 0 {
		return nil
	}
	if fc := fz.cols.Load(); fc != nil {
		return fc
	}
	fz.mu.Lock()
	defer fz.mu.Unlock()
	if fc := fz.cols.Load(); fc != nil {
		return fc
	}
	fc := buildFrozenCols(fz.order, fz.arity)
	fz.cols.Store(fc)
	return fc
}

// indexedColumns returns the frozen columns with built indexes.
func (fz *frozenRel) indexedColumns() []int {
	m := fz.indexes.Load()
	if m == nil {
		return nil
	}
	out := make([]int, 0, len(*m))
	for col := range *m {
		out = append(out, col)
	}
	return out
}

// keyMap returns the frozen content-intern map, building and publishing it
// on first use (at most once per snapshot across all forks).
func (fz *frozenRel) keyMap() map[string]TupleID {
	if m := fz.keys.Load(); m != nil {
		return *m
	}
	fz.mu.Lock()
	defer fz.mu.Unlock()
	if m := fz.keys.Load(); m != nil {
		return *m
	}
	keys := make(map[string]TupleID, len(fz.order))
	for _, t := range fz.order {
		keys[t.Key()] = t.TID
	}
	fz.keys.Store(&keys)
	return keys
}

// fork mints a pristine overlay relation over the frozen core: O(1).
func (fz *frozenRel) fork() *Relation {
	return &Relation{
		Name:       fz.name,
		Arity:      fz.arity,
		positional: fz.positional,
		frozen:     fz,
		byID:       make(map[TupleID]int32),
	}
}

// freeze returns an immutable core holding the relation's current live
// contents and converts the relation in place into a pristine overlay of
// that core. A relation that is already a pristine overlay shares its
// existing core (no copying); a diverged overlay flattens first. The
// relation's storage — order slice, ID map, intern map — is donated to
// the core, so freezing an undiverged relation is O(tuples per warm
// column) to rebuild positional indexes, plus any pending compaction.
// Columns that were warm before the freeze stay warm after it.
func (r *Relation) freeze() *frozenRel {
	if r.frozen != nil && r.fdead == 0 && len(r.order) == 0 {
		return r.frozen
	}
	warm := r.IndexedColumns()
	if r.frozen != nil {
		// Flatten without rebuilding the flat tail indexes: the core builds
		// its own positional indexes below, so a local rebuild here would be
		// immediately thrown away.
		r.flatten(nil)
	}
	if r.dead > 0 {
		r.compact()
	}
	fz := &frozenRel{
		name:       r.Name,
		arity:      r.Arity,
		positional: r.positional,
		order:      r.order,
		byID:       r.byID,
	}
	if r.byKey != nil {
		keys := r.byKey
		fz.keys.Store(&keys)
	}
	if len(warm) > 0 {
		fz.mu.Lock()
		for _, col := range warm {
			fz.buildIndexLocked(col)
		}
		fz.mu.Unlock()
	}
	r.frozen, r.fdel, r.fdead = fz, nil, 0
	r.byID = make(map[TupleID]int32)
	r.order, r.live, r.dead = nil, nil, 0
	r.byKey = nil
	r.indexes = nil
	r.dirty = nil
	return fz
}

// Snapshot is an immutable frozen database state: the shared base every
// fork overlays. The recommended serving pattern is Prepare once, Freeze
// once, Fork per request — each request then pays O(relations) to fork
// plus O(its own changes) to repair, never O(database).
type Snapshot struct {
	schema *Schema
	base   map[string]*frozenRel
	delta  map[string]*frozenRel
	nextID map[string]int
	seq    int

	// forks counts the working copies minted from this snapshot, updated
	// atomically because Fork is safe to call concurrently. Serving layers
	// use it for per-session accounting (forks served == requests that
	// shared this frozen base).
	forks atomic.Int64
}

// Forks returns the number of working copies minted from this snapshot so
// far. Safe to call concurrently with Fork.
func (s *Snapshot) Forks() int64 { return s.forks.Load() }

// Freeze converts the database into a copy-on-write snapshot handle. The
// database keeps working — it becomes a pristine fork of the snapshot, so
// reads see identical contents and later mutations land in its private
// overlay. Freezing an unmodified fork returns the cached snapshot without
// copying anything, so repeated Freeze/Fork chains (each executor forks
// its input) cost O(relations), and freezing after mutations flattens and
// refreezes only the relations that actually diverged.
//
// Freeze serializes internally, but mutating the database concurrently
// with Freeze (or with anything else) is not supported — same contract as
// every other Database method.
func (db *Database) Freeze() *Snapshot {
	db.freezeMu.Lock()
	defer db.freezeMu.Unlock()
	if db.snap != nil && db.pristineSince(db.snap) {
		return db.snap
	}
	snap := &Snapshot{
		schema: db.Schema,
		base:   make(map[string]*frozenRel, len(db.base)),
		delta:  make(map[string]*frozenRel, len(db.delta)),
		nextID: make(map[string]int, len(db.nextID)),
		seq:    db.seq,
	}
	for name, r := range db.base {
		snap.base[name] = r.freeze()
	}
	for name, d := range db.delta {
		snap.delta[name] = d.freeze()
	}
	for name, n := range db.nextID {
		snap.nextID[name] = n
	}
	db.snap = snap
	return snap
}

// pristineSince reports whether the database is still exactly the state
// captured by s: every relation is an untouched overlay of s's cores and
// no tuple has been minted since (seq unchanged). Checked under freezeMu.
func (db *Database) pristineSince(s *Snapshot) bool {
	if db.seq != s.seq {
		return false
	}
	for name, r := range db.base {
		if r.frozen != s.base[name] || r.fdead != 0 || len(r.order) != 0 {
			return false
		}
	}
	for name, d := range db.delta {
		if d.frozen != s.delta[name] || d.fdead != 0 || len(d.order) != 0 {
			return false
		}
	}
	return true
}

// Fork mints a working database over the frozen snapshot in O(relations):
// no tuples, maps, or indexes are copied. The fork is observationally
// identical to a deep clone of the frozen database — same contents, same
// iteration order, same lookup results — but its cost scales with the
// changes made to it, not with the database. Forks are independent:
// mutations to one are invisible to the snapshot, the original database,
// and every other fork. Safe to call concurrently.
func (s *Snapshot) Fork() *Database {
	s.forks.Add(1)
	db := &Database{
		Schema: s.schema,
		base:   make(map[string]*Relation, len(s.base)),
		delta:  make(map[string]*Relation, len(s.delta)),
		nextID: make(map[string]int, len(s.nextID)),
		seq:    s.seq,
		snap:   s,
	}
	for name, fz := range s.base {
		db.base[name] = fz.fork()
	}
	for name, fz := range s.delta {
		db.delta[name] = fz.fork()
	}
	for name, n := range s.nextID {
		db.nextID[name] = n
	}
	return db
}

// Schema returns the snapshot's schema.
func (s *Snapshot) Schema() *Schema { return s.schema }

// TotalTuples returns the number of live base tuples frozen in the
// snapshot.
func (s *Snapshot) TotalTuples() int {
	n := 0
	for _, fz := range s.base {
		n += len(fz.order)
	}
	return n
}

// Fork is shorthand for Freeze().Fork(): a copy-on-write working copy of
// the database. The first call freezes the current state (converting the
// database into a pristine fork of it); subsequent calls on an unmodified
// database reuse the cached snapshot, so a run of executor calls over one
// base shares a single frozen core and its warm indexes.
func (db *Database) Fork() *Database { return db.Freeze().Fork() }
