// Package engine implements the in-memory relational substrate the delta-rule
// framework runs on: typed values, tuples with stable identifiers, relations
// with hash indexes that remain valid under deletion, and databases that pair
// every base relation R_i with its delta relation ∆_i of deleted tuples.
//
// The paper ("On Multiple Semantics for Declarative Database Repairs",
// SIGMOD 2020) stores data in PostgreSQL and evaluates delta rules as SQL
// queries; this package is the equivalent substrate for a pure-Go build. All
// operations are deterministic: relations iterate in insertion order and
// index lookups return tuples in insertion order, so repair results are
// reproducible run to run.
package engine

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the value types supported by the engine. The paper's
// datasets (MAS, TPC-H) need integers and strings; floats are included for
// TPC-H numeric columns.
type Kind uint8

// Supported value kinds.
const (
	KindInt Kind = iota
	KindString
	KindFloat
)

// String returns a human-readable name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindFloat:
		return "float"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a typed scalar stored in a tuple. The zero value is the integer 0.
// Values are immutable and safe to copy and compare with ==, except that
// cross-kind numeric comparison should use Compare.
type Value struct {
	Kind Kind
	Int  int64
	Flt  float64
	Str  string
}

// Int64 returns an integer value.
func Int64(i int64) Value { return Value{Kind: KindInt, Int: i} }

// Int returns an integer value from a machine int.
func Int(i int) Value { return Value{Kind: KindInt, Int: int64(i)} }

// Str returns a string value. (Not named String because String is the
// Stringer method.)
func Str(s string) Value { return Value{Kind: KindString, Str: s} }

// Float returns a float value.
func Float(f float64) Value { return Value{Kind: KindFloat, Flt: f} }

// IsNumeric reports whether the value is an int or a float.
func (v Value) IsNumeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }

// AsFloat returns the numeric value widened to float64. Strings return 0.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt:
		return float64(v.Int)
	case KindFloat:
		return v.Flt
	default:
		return 0
	}
}

// Equal reports value equality. Ints and floats compare numerically
// cross-kind (1 == 1.0), mirroring SQL comparison semantics.
func (v Value) Equal(o Value) bool {
	if v.Kind == o.Kind {
		switch v.Kind {
		case KindInt:
			return v.Int == o.Int
		case KindFloat:
			return v.Flt == o.Flt
		default:
			return v.Str == o.Str
		}
	}
	if v.IsNumeric() && o.IsNumeric() {
		return v.AsFloat() == o.AsFloat()
	}
	return false
}

// Compare returns -1, 0, or +1 ordering v relative to o. Numeric kinds
// compare numerically; strings compare lexicographically; a numeric value
// orders before a string (arbitrary but fixed cross-kind order).
func (v Value) Compare(o Value) int {
	vn, on := v.IsNumeric(), o.IsNumeric()
	switch {
	case vn && on:
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	case vn && !on:
		return -1
	case !vn && on:
		return 1
	default:
		return strings.Compare(v.Str, o.Str)
	}
}

// String renders the value for display: integers and floats bare, strings
// single-quoted.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Flt, 'g', -1, 64)
	default:
		return "'" + v.Str + "'"
	}
}

// mapKey returns the canonical form of the value for direct use as a Go map
// key in hash indexes: only the field matching Kind is populated (defending
// against hand-built Values with stray fields), and integral floats narrow
// to KindInt so that cross-kind numeric equality (1 == 1.0, per Equal)
// agrees with map-key equality. This is what lets indexes probe Values
// directly instead of building keyString strings on the lookup path.
//
// NaN maps to an unreachable key (NaN != NaN), which is consistent with
// Equal being false for NaN; the engine's numeric domain is finite.
func (v Value) mapKey() Value {
	switch v.Kind {
	case KindInt:
		return Value{Kind: KindInt, Int: v.Int}
	case KindFloat:
		if t := math.Trunc(v.Flt); t == v.Flt && v.Flt >= -9.2233720368547758e18 && v.Flt < 9.2233720368547758e18 {
			return Value{Kind: KindInt, Int: int64(t)}
		}
		return Value{Kind: KindFloat, Flt: v.Flt}
	default:
		return Value{Kind: KindString, Str: v.Str}
	}
}

// keyString renders the value for use inside tuple content keys. The
// encoding is injective across kinds: integers as i<n>, floats as f<x>,
// strings quoted (so embedded commas or parens cannot collide).
func (v Value) keyString() string {
	switch v.Kind {
	case KindInt:
		return "i" + strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return "f" + strconv.FormatFloat(v.Flt, 'g', -1, 64)
	default:
		return strconv.Quote(v.Str)
	}
}

// ParseValue parses a literal into a Value: quoted text ('x' or "x")
// becomes a string, text with a decimal point or exponent a finite float,
// digits an int, and anything else a string. NaN and infinity spellings
// stay strings — the engine's numeric domain is finite, keeping Equal
// reflexive and Compare a total order.
func ParseValue(s string) Value {
	t := strings.TrimSpace(s)
	if len(t) >= 2 {
		if (t[0] == '\'' && t[len(t)-1] == '\'') || (t[0] == '"' && t[len(t)-1] == '"') {
			return Str(t[1 : len(t)-1])
		}
	}
	if i, err := strconv.ParseInt(t, 10, 64); err == nil {
		return Int64(i)
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil && !math.IsNaN(f) && !math.IsInf(f, 0) {
		return Float(f)
	}
	return Str(t)
}
