package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return b.String()
}

func TestCounterAndVec(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("requests_total", "Total requests.")
	cv := r.NewCounterVec("by_kind_total", "Requests by kind and status.", "kind", "status")
	c.Inc()
	c.Add(2)
	cv.With("repair", "ok").Add(5)
	cv.With("update", "error").Inc()

	out := render(t, r)
	for _, want := range []string{
		"# HELP requests_total Total requests.",
		"# TYPE requests_total counter",
		"requests_total 3",
		`by_kind_total{kind="repair",status="ok"} 5`,
		`by_kind_total{kind="update",status="error"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005) // le=0.01
	h.Observe(0.05)  // le=0.1
	h.Observe(0.5)   // le=1
	h.Observe(5)     // +Inf
	h.Observe(0.1)   // boundary lands in le=0.1

	out := render(t, r)
	for _, want := range []string{
		`latency_seconds_bucket{le="0.01"} 1`,
		`latency_seconds_bucket{le="0.1"} 3`,
		`latency_seconds_bucket{le="1"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		"latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if !strings.Contains(out, "latency_seconds_sum 5.65") {
		t.Errorf("sum not rendered: %s", out)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 0.0
	r.NewGaugeFunc("sessions", "Live sessions.", func() float64 { return v })
	v = 42
	if out := render(t, r); !strings.Contains(out, "sessions 42") {
		t.Errorf("gauge not sampled at scrape: %s", out)
	}
}

func TestObserveSeconds(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("d_seconds", "d", []float64{0.5})
	h.ObserveSeconds(100 * time.Millisecond)
	if out := render(t, r); !strings.Contains(out, `d_seconds_bucket{le="0.5"} 1`) {
		t.Errorf("duration observation missing: %s", out)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewCounter("x", "x")
}

// TestConcurrentUse drives every mutation path and the renderer from many
// goroutines at once; meaningful under -race.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c", "c")
	cv := r.NewCounterVec("cv", "cv", "l")
	h := r.NewHistogram("h", "h", nil)
	r.NewGaugeFunc("g", "g", func() float64 { return float64(c.Value()) })

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c.Inc()
				cv.With([]string{"a", "b", "c"}[i%3]).Inc()
				h.Observe(float64(j) / 100)
				if j%50 == 0 {
					var b strings.Builder
					r.WriteTo(&b)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 1600 {
		t.Errorf("counter = %d, want 1600", c.Value())
	}
	if h.Count() != 1600 {
		t.Errorf("histogram count = %d, want 1600", h.Count())
	}
}
