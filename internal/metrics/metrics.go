// Package metrics is a dependency-free observability layer rendering in
// the Prometheus text exposition format. It covers the shapes the serving
// layer needs — monotonic counters (plain and labeled), fixed-bucket
// latency histograms, and gauges sampled at scrape time — without pulling
// in a client library: the repo's no-new-dependencies rule and the small
// metric inventory make a hand-rolled registry the right trade.
//
// All mutation paths are lock-free (atomics) except labeled-counter child
// creation, which takes a mutex once per new label value. Rendering takes
// a snapshot under the registry lock and is safe to call concurrently
// with updates.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (callers must keep counters monotonic; negative deltas are
// a programming error and are ignored).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// CounterVec is a counter partitioned by one or more label values. Child
// counters are created on first use and live for the registry's lifetime,
// so label values must be low-cardinality (request kinds, status classes —
// never session names or user input).
type CounterVec struct {
	labels   []string
	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the child counter for the given label values (one per
// declared label, in order).
func (cv *CounterVec) With(values ...string) *Counter {
	if len(values) != len(cv.labels) {
		panic(fmt.Sprintf("metrics: counter vec has labels %v, got %d values", cv.labels, len(values)))
	}
	key := strings.Join(values, "\x00")
	cv.mu.Lock()
	defer cv.mu.Unlock()
	c, ok := cv.children[key]
	if !ok {
		c = &Counter{}
		cv.children[key] = c
	}
	return c
}

// Histogram is a fixed-bucket cumulative histogram of float64
// observations (the Prometheus histogram shape: le-labeled cumulative
// bucket counts plus _sum and _count). Buckets are set at registration
// and never change.
type Histogram struct {
	bounds []float64       // upper bounds, ascending; implicit +Inf last
	counts []atomic.Uint64 // len(bounds)+1, non-cumulative per bucket
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSeconds records a duration in seconds, the Prometheus base unit
// for time.
func (h *Histogram) ObserveSeconds(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// DefBuckets spans microseconds to seconds — wide enough for both WAL
// fsync appends (~ms) and cold session warms (~100ms+).
var DefBuckets = []float64{
	0.000025, 0.0001, 0.00025, 0.001, 0.0025, 0.01, 0.025, 0.1, 0.25, 1, 2.5, 10,
}

// GaugeFunc is sampled at scrape time; use it for values owned elsewhere
// (live session count, head versions) instead of mirroring them into the
// registry on every change.
type GaugeFunc func() float64

// metric is one registered family, in registration order.
type metric struct {
	name, help string
	counter    *Counter
	vec        *CounterVec
	hist       *Histogram
	gauge      GaugeFunc
}

// Registry holds registered metrics and renders them. The zero value is
// not usable; call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) add(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.name] {
		panic("metrics: duplicate metric name " + m.name)
	}
	r.names[m.name] = true
	r.metrics = append(r.metrics, m)
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.add(&metric{name: name, help: help, counter: c})
	return c
}

// NewCounterVec registers and returns a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	cv := &CounterVec{labels: labels, children: make(map[string]*Counter)}
	r.add(&metric{name: name, help: help, vec: cv})
	return cv
}

// NewHistogram registers and returns a histogram with the given ascending
// upper bounds (nil means DefBuckets).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("metrics: histogram bounds must be ascending: " + name)
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	r.add(&metric{name: name, help: help, hist: h})
	return h
}

// NewGaugeFunc registers a gauge sampled from fn at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn GaugeFunc) {
	r.add(&metric{name: name, help: help, gauge: fn})
}

// fmtFloat renders a float the way Prometheus clients do: integral values
// without an exponent, otherwise shortest round-trip form.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// WriteTo renders every registered metric in the Prometheus text format,
// families in registration order, label sets sorted within a family.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := make([]*metric, len(r.metrics))
	copy(fams, r.metrics)
	r.mu.Unlock()

	var b strings.Builder
	for _, m := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
		switch {
		case m.counter != nil:
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", m.name, m.name, m.counter.Value())
		case m.vec != nil:
			fmt.Fprintf(&b, "# TYPE %s counter\n", m.name)
			m.vec.mu.Lock()
			keys := make([]string, 0, len(m.vec.children))
			for k := range m.vec.children {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				vals := strings.Split(k, "\x00")
				pairs := make([]string, len(vals))
				for i, v := range vals {
					pairs[i] = fmt.Sprintf(`%s=%q`, m.vec.labels[i], escapeLabel(v))
				}
				fmt.Fprintf(&b, "%s{%s} %d\n", m.name, strings.Join(pairs, ","), m.vec.children[k].Value())
			}
			m.vec.mu.Unlock()
		case m.hist != nil:
			fmt.Fprintf(&b, "# TYPE %s histogram\n", m.name)
			var cum uint64
			for i, bound := range m.hist.bounds {
				cum += m.hist.counts[i].Load()
				fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", m.name, fmtFloat(bound), cum)
			}
			cum += m.hist.counts[len(m.hist.bounds)].Load()
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
			sum := math.Float64frombits(m.hist.sum.Load())
			fmt.Fprintf(&b, "%s_sum %s\n%s_count %d\n", m.name, fmtFloat(sum), m.name, cum)
		case m.gauge != nil:
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", m.name, m.name, fmtFloat(m.gauge()))
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
