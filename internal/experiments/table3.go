package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// Table3Row is one row of Table 3: the containment flags for one program.
type Table3Row struct {
	Program     string
	StepEqStage bool
	IndInStage  bool
	IndInStep   bool
	// Invariant flags (must always hold, Prop. 3.20); recorded so the
	// harness can assert them.
	StageInEnd bool
	StepInEnd  bool
}

// Table3 computes the containment rows from program runs.
func Table3(runs []*ProgramRun) []Table3Row {
	out := make([]Table3Row, 0, len(runs))
	for _, r := range runs {
		c := core.CheckContainment(r.Results)
		out = append(out, Table3Row{
			Program:     r.Label,
			StepEqStage: c.StepEqStage,
			IndInStage:  c.IndInStage,
			IndInStep:   c.IndInStep,
			StageInEnd:  c.StageInEnd,
			StepInEnd:   c.StepInEnd,
		})
	}
	return out
}

// WriteTable3 renders the rows in the paper's Table 3 layout.
func WriteTable3(w io.Writer, rows []Table3Row) {
	tw := newTable(w)
	fmt.Fprintln(tw, "Program\tStep = Stage\tInd ⊆ Stage\tInd ⊆ Step")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", r.Program,
			check(r.StepEqStage), check(r.IndInStage), check(r.IndInStep))
	}
	tw.Flush()
}
