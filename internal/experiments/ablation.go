package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/mas"
	"repro/internal/programs"
)

// AblationRow compares a design choice on one program: the full algorithm
// vs the ablated variant.
type AblationRow struct {
	Ablation string
	Program  string
	FullSize int
	AblSize  int
	FullTime time.Duration
	AblTime  time.Duration
}

// Ablations runs the three design-choice ablations DESIGN.md calls out:
//
//  1. Algorithm 2 without benefit ordering (arbitrary in-layer order) —
//     shows the benefit heuristic's effect on repair size.
//  2. Algorithm 1 with a greedy-only solver (node budget 1) — size vs
//     runtime tradeoff of the branch-and-bound search.
//  3. Naive vs seminaive end-semantics evaluation — runtime only, results
//     are identical by construction.
func Ablations(cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	ds := mas.Generate(mas.Config{Scale: cfg.MASScale, Seed: cfg.Seed})
	var out []AblationRow

	// 1. Benefit ordering (programs where greedy choice matters).
	for _, n := range []int{3, 4, 8} {
		p, err := programs.MAS(n, ds)
		if err != nil {
			return nil, err
		}
		full, _, err := core.RunStepGreedy(ds.DB, p)
		if err != nil {
			return nil, err
		}
		abl, _, err := core.RunStepGreedyWithOptions(ds.DB, p, core.StepGreedyOptions{IgnoreBenefits: true})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationRow{
			Ablation: "step: no benefit ordering",
			Program:  fmt.Sprint(n),
			FullSize: full.Size(), AblSize: abl.Size(),
			FullTime: full.Timing.Total(), AblTime: abl.Timing.Total(),
		})
	}

	// 2. Solver search (DC-style programs where min-ones is non-trivial).
	for _, n := range []int{13, 14} {
		p, err := programs.MAS(n, ds)
		if err != nil {
			return nil, err
		}
		full, _, err := core.RunIndependent(ds.DB, p, core.IndependentOptions{MaxNodes: cfg.IndMaxNodes})
		if err != nil {
			return nil, err
		}
		abl, _, err := core.RunIndependent(ds.DB, p, core.IndependentOptions{MaxNodes: 1})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationRow{
			Ablation: "independent: greedy-only solver",
			Program:  fmt.Sprint(n),
			FullSize: full.Size(), AblSize: abl.Size(),
			FullTime: full.Timing.Total(), AblTime: abl.Timing.Total(),
		})
	}

	// 3. Naive vs seminaive evaluation (deep cascade chains).
	for _, n := range []int{10, 20} {
		p, err := programs.MAS(n, ds)
		if err != nil {
			return nil, err
		}
		full, _, err := core.RunEnd(ds.DB, p)
		if err != nil {
			return nil, err
		}
		abl, _, err := core.RunEndNaive(ds.DB, p)
		if err != nil {
			return nil, err
		}
		if !full.SameSet(abl) {
			return nil, fmt.Errorf("ablation: naive and seminaive end results differ on program %d", n)
		}
		out = append(out, AblationRow{
			Ablation: "end: naive evaluation",
			Program:  fmt.Sprint(n),
			FullSize: full.Size(), AblSize: abl.Size(),
			FullTime: full.Timing.Total(), AblTime: abl.Timing.Total(),
		})
	}
	return out, nil
}

// WriteAblations renders the ablation rows.
func WriteAblations(w io.Writer, rows []AblationRow) {
	tw := newTable(w)
	fmt.Fprintln(tw, "Ablation\tProgram\tFull size\tAblated size\tFull ms\tAblated ms")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%s\t%s\n",
			r.Ablation, r.Program, r.FullSize, r.AblSize, ms(r.FullTime), ms(r.AblTime))
	}
	tw.Flush()
}
