package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

// testCfg is a fast configuration for CI: tiny datasets, small SAT budget.
func testCfg() Config {
	return Config{
		MASScale:    0.01,
		TPCHScale:   0.005,
		Rows:        600,
		Errors:      24,
		Seed:        1,
		IndMaxNodes: 150000,
		// The paper's ladder scaled to 600 rows (same 2%-20% error rates).
		ErrorLevels: []int{12, 24, 36, 60, 84, 120},
	}
}

func TestRunMASAndTable3(t *testing.T) {
	runs, ds, err := RunMAS(testCfg(), []int{1, 2, 3, 4, 5, 8, 16, 20})
	if err != nil {
		t.Fatal(err)
	}
	if ds == nil || len(runs) != 8 {
		t.Fatalf("runs = %d", len(runs))
	}
	rows := Table3(runs)
	byProg := map[string]Table3Row{}
	for _, r := range rows {
		byProg[r.Program] = r
		// Prop. 3.20 invariants must hold on every row.
		if !r.StageInEnd || !r.StepInEnd {
			t.Fatalf("program %s: containment invariant violated: %+v", r.Program, r)
		}
	}
	// Paper Table 3 flags that are data-independent:
	// program 2: no containment of Ind; Step = Stage.
	if r := byProg["2"]; !r.StepEqStage || r.IndInStage || r.IndInStep {
		t.Fatalf("program 2 flags wrong: %+v", r)
	}
	// programs 3, 4: Step != Stage, Ind contained in both.
	for _, n := range []string{"3", "4"} {
		if r := byProg[n]; r.StepEqStage || !r.IndInStage || !r.IndInStep {
			t.Fatalf("program %s flags wrong: %+v", n, r)
		}
	}
	// program 8: Step != Stage, Ind ⊆ Step only.
	if r := byProg["8"]; r.StepEqStage || r.IndInStage || !r.IndInStep {
		t.Fatalf("program 8 flags wrong: %+v", r)
	}
	// programs 5, 16, 20: everything coincides.
	for _, n := range []string{"5", "16", "20"} {
		if r := byProg[n]; !r.StepEqStage || !r.IndInStage || !r.IndInStep {
			t.Fatalf("program %s flags wrong: %+v", n, r)
		}
	}

	var buf bytes.Buffer
	WriteTable3(&buf, rows)
	if !strings.Contains(buf.String(), "Ind ⊆ Stage") {
		t.Fatalf("table rendering wrong:\n%s", buf.String())
	}
}

func TestSizesAndTimes(t *testing.T) {
	runs, _, err := RunMAS(testCfg(), []int{4, 10})
	if err != nil {
		t.Fatal(err)
	}
	sizes := Sizes(runs)
	if len(sizes) != 2 {
		t.Fatal("size rows missing")
	}
	// Program 4 (Figure 6a note): end/stage = org's authors + 1, step/ind = 1.
	if sizes[0].Ind != 1 || sizes[0].Step != 1 || sizes[0].End <= 1 || sizes[0].Stage != sizes[0].End {
		t.Fatalf("program 4 sizes wrong: %+v", sizes[0])
	}
	// Program 10: all semantics identical (Figure 6a note: 24,798 at paper
	// scale — all equal).
	if !(sizes[1].Ind == sizes[1].Step && sizes[1].Step == sizes[1].Stage && sizes[1].Stage == sizes[1].End) {
		t.Fatalf("program 10 sizes should all match: %+v", sizes[1])
	}
	times := Times(runs)
	if len(times) != 2 || times[0].End <= 0 {
		t.Fatalf("time rows wrong: %+v", times)
	}
	var buf bytes.Buffer
	WriteSizes(&buf, "Figure 6a", sizes)
	WriteTimes(&buf, "Figure 7", times)
	if !strings.Contains(buf.String(), "Figure 6a") || !strings.Contains(buf.String(), "End (ms)") {
		t.Fatalf("render:\n%s", buf.String())
	}
}

func TestBreakdown(t *testing.T) {
	runs, _, err := RunMAS(testCfg(), []int{5, 16, 17})
	if err != nil {
		t.Fatal(err)
	}
	rows := Breakdown(runs, "sample", func(*ProgramRun) bool { return true })
	if len(rows) != 2 {
		t.Fatalf("breakdown rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		sum := r.EvalPct + r.ProcessPct + r.FinalPct
		if sum < 99.0 || sum > 101.0 {
			t.Fatalf("%s shares sum to %.1f%%", r.Algorithm, sum)
		}
	}
	if Breakdown(runs, "none", func(*ProgramRun) bool { return false }) != nil {
		t.Fatal("empty group should return nil")
	}
	var buf bytes.Buffer
	WriteBreakdown(&buf, rows)
	if !strings.Contains(buf.String(), "Algorithm 1") {
		t.Fatal("render missing Algorithm 1")
	}
}

func TestRunTPCH(t *testing.T) {
	runs, ds, err := RunTPCH(testCfg(), []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumLineItems == 0 || len(runs) != 2 {
		t.Fatal("TPC-H runs missing")
	}
	for _, r := range runs {
		c := core.CheckContainment(r.Results)
		if !c.StageInEnd || !c.StepInEnd {
			t.Fatalf("%s: invariants violated", r.Label)
		}
	}
	// T-2: Ind ⊆ Stage holds (paper Table 3 row T-2: all yes).
	rows := Table3(runs)
	if !rows[0].StepEqStage || !rows[0].IndInStage {
		t.Fatalf("T-2 flags wrong: %+v", rows[0])
	}
}

func TestTables4And5Shapes(t *testing.T) {
	// Use a smaller ladder for CI speed by shrinking rows; the shapes must
	// still hold: Ind ≈ 0 over-deletion, Stage = End > Step ≥ Ind,
	// HoloClean negative and worsening.
	cfg := testCfg()
	t4, t5, err := Tables4And5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t4) != len(cfg.ErrorLevels) || len(t5) != len(cfg.ErrorLevels) {
		t.Fatalf("rows: %d/%d", len(t4), len(t5))
	}
	for i, r := range t4 {
		if r.OverInd < 0 || r.OverStep < 0 || r.OverStage < 0 {
			t.Fatalf("row %d: negative over-deletion: %+v", i, r)
		}
		// Ind stays within a whisker of the minimum even when the solver
		// budget is exhausted (greedy seeding), and the operational
		// semantics over-delete progressively more.
		if r.OverInd > 2+r.Errors/20 {
			t.Fatalf("row %d: independent over-deletion too large: %+v", i, r)
		}
		if r.OverStep > r.OverStage {
			t.Fatalf("row %d: step should not over-delete beyond stage here: %+v", i, r)
		}
		if r.OverStage != r.OverEnd {
			t.Fatalf("row %d: stage and end should over-delete equally on DCs: %+v", i, r)
		}
		if r.HoloDelta > 0 {
			t.Fatalf("row %d: HoloClean cannot repair more tuples than errors: %+v", i, r)
		}
	}
	// Under-repair worsens as errors grow (compare first vs last level).
	first, last := t4[0], t4[len(t4)-1]
	if !(last.HoloDelta < first.HoloDelta) {
		t.Fatalf("HoloClean under-repair should worsen: first %+v last %+v", first, last)
	}
	// End over-deletion grows with errors.
	if !(last.OverEnd > first.OverEnd) {
		t.Fatalf("End over-deletion should grow: first %+v last %+v", first, last)
	}
	for i, r := range t5 {
		if r.SemanticsTotalAfter != 0 {
			t.Fatalf("row %d: semantics left violations: %+v", i, r)
		}
		if r.TotalBefore == 0 {
			t.Fatalf("row %d: no violations before repair", i)
		}
		if r.HoloTotalAfter > r.TotalBefore {
			t.Fatalf("row %d: HoloClean increased violations: %+v", i, r)
		}
	}
	// At the highest error level HoloClean leaves residual violations.
	if t5[len(t5)-1].HoloTotalAfter == 0 {
		t.Fatal("HoloClean should leave residual violations at high error rates")
	}
	var buf bytes.Buffer
	WriteTable4(&buf, t4)
	WriteTable5(&buf, t5)
	out := buf.String()
	if !strings.Contains(out, "HoloClean") || !strings.Contains(out, "Semantics Total") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFig10Sweeps(t *testing.T) {
	cfg := testCfg()
	rows, err := Fig10Errors(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.ErrorLevels) {
		t.Fatalf("fig10a rows = %d", len(rows))
	}
	rrows, err := Fig10Rows(cfg, []int{300, 600})
	if err != nil {
		t.Fatal(err)
	}
	if len(rrows) != 2 || rrows[0].X != 300 {
		t.Fatalf("fig10b rows = %+v", rrows)
	}
	var buf bytes.Buffer
	WriteFig10(&buf, "Errors", rows)
	WriteFig10(&buf, "Rows", rrows)
	if !strings.Contains(buf.String(), "HoloClean (ms)") {
		t.Fatal("render missing HoloClean column")
	}
}

func TestTriggerComparison(t *testing.T) {
	rows, err := TriggerComparison(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(TriggerPrograms) {
		t.Fatalf("rows = %d", len(rows))
	}
	byProg := map[string]TriggerRow{}
	for _, r := range rows {
		byProg[r.Program] = r
	}
	// Program 4: order-dependent (the paper's PostgreSQL-vs-MySQL anomaly).
	if !byProg["4"].OrderDependent {
		t.Fatalf("program 4 should be order dependent: %+v", byProg["4"])
	}
	// Program 5 and 20 (pure cascades): same result under both policies,
	// equal to the semantics.
	for _, n := range []string{"5", "20"} {
		r := byProg[n]
		if r.OrderDependent {
			t.Fatalf("program %s should be order independent: %+v", n, r)
		}
		if r.PGDeleted != r.End {
			t.Fatalf("program %s: triggers %d != end %d", n, r.PGDeleted, r.End)
		}
	}
	var buf bytes.Buffer
	WriteTriggerComparison(&buf, rows)
	if !strings.Contains(buf.String(), "Order-dep") {
		t.Fatal("render missing order column")
	}
}

func TestAblations(t *testing.T) {
	rows, err := Ablations(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("ablation rows = %d, want 7", len(rows))
	}
	for _, r := range rows {
		switch r.Ablation {
		case "step: no benefit ordering":
			if r.AblSize < r.FullSize {
				t.Fatalf("benefit ordering should not hurt size: %+v", r)
			}
		case "independent: greedy-only solver":
			if r.AblSize < r.FullSize {
				t.Fatalf("full search should not be beaten by greedy: %+v", r)
			}
		case "end: naive evaluation":
			if r.AblSize != r.FullSize {
				t.Fatalf("naive evaluation must match: %+v", r)
			}
		}
	}
	// The benefit heuristic must matter on program 4: ablated greedy
	// deletes the authors instead of the single organization.
	found := false
	for _, r := range rows {
		if r.Ablation == "step: no benefit ordering" && r.Program == "4" && r.AblSize > r.FullSize {
			found = true
		}
	}
	if !found {
		t.Fatal("program 4 should demonstrate the benefit heuristic's value")
	}
	var buf bytes.Buffer
	WriteAblations(&buf, rows)
	if !strings.Contains(buf.String(), "Ablated size") {
		t.Fatal("render missing header")
	}
}
