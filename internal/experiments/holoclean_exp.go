package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/holoclean"
	"repro/internal/programs"
)

// Table4Row is one row of Table 4: deletions beyond the minimum repair for
// each semantics (+) vs HoloClean's repaired-tuple shortfall (−). The
// minimum repair is the independent-semantics size (proven minimal by the
// solver; in the paper's setup it coincides with the error count, but with
// randomized organization sizes the true minimum can be slightly smaller).
type Table4Row struct {
	Errors int
	// MinRepair is the baseline |Ind| (the provably minimum repair).
	MinRepair int
	OverInd   int
	OverStep  int
	OverStage int
	OverEnd   int
	// HoloDelta = repairedTuples − errors (negative: under-repair).
	HoloDelta int
}

// Table5Row is one row of Table 5: violating-tuple counts per DC
// after/before the HoloClean repair, plus the semantics' after-total
// (always 0, asserted by the harness).
type Table5Row struct {
	Errors              int
	Before              [4]int
	HoloAfter           [4]int
	TotalBefore         int
	HoloTotalAfter      int
	SemanticsTotalAfter int
}

// Fig10Row is one x-point of Figure 10: runtimes of the four semantics and
// HoloClean.
type Fig10Row struct {
	X         int // number of errors (10a) or rows (10b)
	Ind       time.Duration
	Step      time.Duration
	Stage     time.Duration
	End       time.Duration
	HoloClean time.Duration
}

// dcWorkload builds the corrupted Author table of the HoloClean comparison:
// rows authors across rows/5 organizations (≈5-member org groups — the DC4
// fan-out behind Table 4's over-deletion growth), with nErrors injected.
func dcWorkload(rows, nErrors int, seed int64) (*engine.Database, *datalog.Program, error) {
	db := programs.CleanAuthorTable(rows, rows/5+1, seed)
	programs.InjectErrors(db, nErrors, seed+1)
	dcs, err := programs.DCs()
	if err != nil {
		return nil, nil, err
	}
	return db, dcs, nil
}

// Tables4And5 runs the full HoloClean comparison at every error level and
// returns both tables' rows. Semantics repairs are verified to clear every
// violation (the paper's headline contrast).
func Tables4And5(cfg Config) ([]Table4Row, []Table5Row, error) {
	cfg = cfg.withDefaults()
	var t4 []Table4Row
	var t5 []Table5Row
	for _, errs := range cfg.ErrorLevels {
		db, dcs, err := dcWorkload(cfg.Rows, errs, cfg.Seed)
		if err != nil {
			return nil, nil, err
		}
		perDCBefore, totalBefore, err := holoclean.ViolatingTuples(db, dcs)
		if err != nil {
			return nil, nil, err
		}

		row4 := Table4Row{Errors: errs}
		row5 := Table5Row{Errors: errs, TotalBefore: totalBefore}
		copy(row5.Before[:], perDCBefore)

		semAfterTotal := 0
		sizes := make(map[core.Semantics]int, 4)
		for _, sem := range core.AllSemantics {
			res, repaired, err := core.RunWith(db, dcs, sem,
				core.Options{Independent: core.IndependentOptions{MaxNodes: cfg.IndMaxNodes}})
			if err != nil {
				return nil, nil, fmt.Errorf("errors=%d %s: %w", errs, sem, err)
			}
			_, after, err := holoclean.ViolatingTuples(repaired, dcs)
			if err != nil {
				return nil, nil, err
			}
			if after != 0 {
				return nil, nil, fmt.Errorf("errors=%d %s: %d violations left after repair", errs, sem, after)
			}
			semAfterTotal += after
			sizes[sem] = res.Size()
		}
		row5.SemanticsTotalAfter = semAfterTotal
		// Baseline: the smallest repair any semantics produced (normally
		// |Ind|; under an exhausted solver budget the greedy step result
		// can occasionally edge it out by a tuple).
		row4.MinRepair = sizes[core.SemIndependent]
		for _, sz := range sizes {
			if sz < row4.MinRepair {
				row4.MinRepair = sz
			}
		}
		row4.OverInd = sizes[core.SemIndependent] - row4.MinRepair
		row4.OverStep = sizes[core.SemStep] - row4.MinRepair
		row4.OverStage = sizes[core.SemStage] - row4.MinRepair
		row4.OverEnd = sizes[core.SemEnd] - row4.MinRepair

		hcRep, hcDB, err := holoclean.Repair(db, holoclean.Config{ConfidenceThreshold: cfg.HoloConfidence})
		if err != nil {
			return nil, nil, err
		}
		row4.HoloDelta = hcRep.RepairedTuples - errs
		perDCAfter, totalAfter, err := holoclean.ViolatingTuples(hcDB, dcs)
		if err != nil {
			return nil, nil, err
		}
		copy(row5.HoloAfter[:], perDCAfter)
		row5.HoloTotalAfter = totalAfter

		t4 = append(t4, row4)
		t5 = append(t5, row5)
	}
	return t4, t5, nil
}

// WriteTable4 renders Table 4.
func WriteTable4(w io.Writer, rows []Table4Row) {
	tw := newTable(w)
	fmt.Fprintln(tw, "Errors\tInd\tStep\tStage\tEnd\tHoloClean")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%+d\t%+d\t%+d\t%+d\t%+d\n",
			r.Errors, r.OverInd, r.OverStep, r.OverStage, r.OverEnd, r.HoloDelta)
	}
	tw.Flush()
}

// WriteTable5 renders Table 5 (after/before per DC for HoloClean; the
// semantics' totals are always 0 after the repair).
func WriteTable5(w io.Writer, rows []Table5Row) {
	tw := newTable(w)
	fmt.Fprintln(tw, "Errors\tDC1\tDC2\tDC3\tDC4\tHC Total\tSemantics Total")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d/%d\t%d/%d\t%d/%d\t%d/%d\t%d/%d\t%d/%d\n",
			r.Errors,
			r.HoloAfter[0], r.Before[0],
			r.HoloAfter[1], r.Before[1],
			r.HoloAfter[2], r.Before[2],
			r.HoloAfter[3], r.Before[3],
			r.HoloTotalAfter, r.TotalBefore,
			r.SemanticsTotalAfter, r.TotalBefore)
	}
	tw.Flush()
}

// Fig10Errors sweeps the error count at fixed rows (Figure 10a).
func Fig10Errors(cfg Config) ([]Fig10Row, error) {
	cfg = cfg.withDefaults()
	var out []Fig10Row
	for _, errs := range cfg.ErrorLevels {
		row, err := fig10Point(cfg, cfg.Rows, errs)
		if err != nil {
			return nil, err
		}
		row.X = errs
		out = append(out, *row)
	}
	return out, nil
}

// Fig10Rows sweeps the row count at a fixed error count (Figure 10b).
func Fig10Rows(cfg Config, rowCounts []int) ([]Fig10Row, error) {
	cfg = cfg.withDefaults()
	if rowCounts == nil {
		rowCounts = []int{1000, 2000, 5000, 10000}
	}
	var out []Fig10Row
	for _, rows := range rowCounts {
		errs := cfg.Errors
		if errs > rows/3 {
			errs = rows / 3
		}
		row, err := fig10Point(cfg, rows, errs)
		if err != nil {
			return nil, err
		}
		row.X = rows
		out = append(out, *row)
	}
	return out, nil
}

func fig10Point(cfg Config, rows, errs int) (*Fig10Row, error) {
	db, dcs, err := dcWorkload(rows, errs, cfg.Seed)
	if err != nil {
		return nil, err
	}
	out := &Fig10Row{}
	for _, sem := range core.AllSemantics {
		res, _, err := core.RunWith(db, dcs, sem,
			core.Options{Independent: core.IndependentOptions{MaxNodes: cfg.IndMaxNodes}})
		if err != nil {
			return nil, fmt.Errorf("rows=%d errors=%d %s: %w", rows, errs, sem, err)
		}
		d := res.Timing.Total()
		switch sem {
		case core.SemIndependent:
			out.Ind = d
		case core.SemStep:
			out.Step = d
		case core.SemStage:
			out.Stage = d
		case core.SemEnd:
			out.End = d
		}
	}
	hcRep, _, err := holoclean.Repair(db, holoclean.Config{ConfidenceThreshold: cfg.HoloConfidence})
	if err != nil {
		return nil, err
	}
	out.HoloClean = hcRep.Elapsed
	return out, nil
}

// WriteFig10 renders a Figure 10 sweep.
func WriteFig10(w io.Writer, xLabel string, rows []Fig10Row) {
	tw := newTable(w)
	fmt.Fprintf(tw, "%s\tInd (ms)\tStep (ms)\tStage (ms)\tEnd (ms)\tHoloClean (ms)\n", xLabel)
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%s\n",
			r.X, ms(r.Ind), ms(r.Step), ms(r.Stage), ms(r.End), ms(r.HoloClean))
	}
	tw.Flush()
}
