package experiments

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/programs"
)

// TestProfileDCIndependent is a manual profiling probe for the 5000-row DC
// workload; run with -run TestProfileDCIndependent -v -tags).
func TestProfileDCIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling probe")
	}
	for _, errs := range []int{500, 1000} {
		db := programs.CleanAuthorTable(5000, 1001, 1)
		programs.InjectErrors(db, errs, 2)
		dcs, err := programs.DCs()
		if err != nil {
			t.Fatal(err)
		}
		t0 := time.Now()
		res, _, err := core.RunIndependent(db, dcs, core.IndependentOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("errs=%d size=%d dur=%v optimal=%v nodes=%d clauses=%d timing=%+v",
			errs, res.Size(), time.Since(t0).Round(time.Millisecond), res.Optimal,
			res.SolverNodes, res.FormulaClauses, res.Timing)
	}
}
