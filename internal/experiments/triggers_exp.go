package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/mas"
	"repro/internal/programs"
	"repro/internal/triggers"
)

// TriggerRow compares trigger execution with the four semantics for one
// program (§6, "Comparison with Triggers"). The paper runs programs 3, 4,
// 5, 8, and 20.
type TriggerRow struct {
	Program string
	// PGDeleted / MySQLDeleted are the deletion counts under the
	// alphabetical (PostgreSQL) and creation-order (MySQL) policies.
	PGDeleted    int
	MySQLDeleted int
	PGTime       time.Duration
	MySQLTime    time.Duration
	// Semantics result sizes for contrast.
	Ind, Step, Stage, End int
	// OrderDependent reports whether the two policies' results differ
	// (the anomaly the paper demonstrates).
	OrderDependent bool
}

// TriggerPrograms are the programs the paper runs through SQL triggers.
var TriggerPrograms = []int{3, 4, 5, 8, 20}

// TriggerComparison runs the trigger simulation against the semantics on
// the paper's five programs. Trigger names are chosen so the alphabetical
// policy reverses the creation order on the multi-statement programs,
// exposing the order dependence the paper observed between PostgreSQL and
// MySQL.
func TriggerComparison(cfg Config) ([]TriggerRow, error) {
	cfg = cfg.withDefaults()
	ds := mas.Generate(mas.Config{Scale: cfg.MASScale, Seed: cfg.Seed})
	var out []TriggerRow
	for _, n := range TriggerPrograms {
		p, err := programs.MAS(n, ds)
		if err != nil {
			return nil, err
		}
		// Name triggers in reverse rule order so alphabetical != creation.
		names := make([]string, len(p.Rules))
		for i := range names {
			names[i] = fmt.Sprintf("t%c_rule%d", 'a'+len(names)-1-i, i+1)
		}
		trigs, err := triggers.Compile(p, names)
		if err != nil {
			return nil, err
		}
		pg, _, err := triggers.Execute(ds.DB, trigs, triggers.Alphabetical)
		if err != nil {
			return nil, err
		}
		my, _, err := triggers.Execute(ds.DB, trigs, triggers.CreationOrder)
		if err != nil {
			return nil, err
		}
		row := TriggerRow{
			Program:      fmt.Sprint(n),
			PGDeleted:    pg.Size(),
			MySQLDeleted: my.Size(),
			PGTime:       pg.Elapsed,
			MySQLTime:    my.Elapsed,
		}
		pgKeys := map[string]bool{}
		for _, k := range pg.Keys() {
			pgKeys[k] = true
		}
		row.OrderDependent = pg.Size() != my.Size()
		if !row.OrderDependent {
			for _, k := range my.Keys() {
				if !pgKeys[k] {
					row.OrderDependent = true
					break
				}
			}
		}
		rs, err := core.RunAll(ds.DB, p)
		if err != nil {
			return nil, err
		}
		row.Ind = rs[core.SemIndependent].Size()
		row.Step = rs[core.SemStep].Size()
		row.Stage = rs[core.SemStage].Size()
		row.End = rs[core.SemEnd].Size()
		out = append(out, row)
	}
	return out, nil
}

// WriteTriggerComparison renders the trigger comparison.
func WriteTriggerComparison(w io.Writer, rows []TriggerRow) {
	tw := newTable(w)
	fmt.Fprintln(tw, "Program\tPG del\tMySQL del\tOrder-dep\tInd\tStep\tStage\tEnd\tPG ms\tMySQL ms")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%d\t%d\t%d\t%d\t%s\t%s\n",
			r.Program, r.PGDeleted, r.MySQLDeleted, check(r.OrderDependent),
			r.Ind, r.Step, r.Stage, r.End, ms(r.PGTime), ms(r.MySQLTime))
	}
	tw.Flush()
}
