// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): Table 3 (containment of results), Figures 6-8 (result
// sizes, runtimes, and runtime breakdowns over the MAS programs), Figure 9
// (TPC-H sizes and runtimes), Tables 4-5 and Figure 10 (the HoloClean
// comparison), and the trigger comparison — plus the ablations DESIGN.md
// calls out. Each experiment produces typed rows and a paper-shaped text
// rendering.
package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// Config selects workload sizes and budgets. The zero value gives the
// defaults used throughout the repository's recorded outputs: scaled-down
// datasets that preserve every relative shape the paper reports (see
// EXPERIMENTS.md for the paper-vs-measured record).
type Config struct {
	// MASScale scales the MAS dataset; default 0.05 (~6.2K tuples).
	MASScale float64
	// TPCHScale scales the TPC-H fragment; default 0.02 (~7.5K tuples).
	TPCHScale float64
	// Rows is the Author-table size for the HoloClean comparison;
	// default 5000 (the paper's setting).
	Rows int
	// Errors is the injected error count for Figure 10b; default 700.
	Errors int
	// Seed drives all dataset generation; default 1.
	Seed int64
	// IndMaxNodes overrides the Min-Ones solver budget (0 = default).
	IndMaxNodes int64
	// ErrorLevels are the injected error counts of Tables 4-5 and Figure
	// 10a; nil means the paper's ladder (100..1000).
	ErrorLevels []int
	// HoloConfidence is the cell-repair confidence threshold used in the
	// comparison; 0 means 0.8, tuned to the ≈5-member organization groups
	// of the workload (a 1-typo group votes 4/5 = 0.8).
	HoloConfidence float64
}

func (c Config) withDefaults() Config {
	if c.MASScale <= 0 {
		c.MASScale = 0.05
	}
	if c.TPCHScale <= 0 {
		c.TPCHScale = 0.02
	}
	if c.Rows <= 0 {
		c.Rows = 5000
	}
	if c.Errors <= 0 {
		c.Errors = 700
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ErrorLevels == nil {
		c.ErrorLevels = []int{100, 200, 300, 500, 700, 1000}
	}
	if c.HoloConfidence <= 0 {
		c.HoloConfidence = 0.8
	}
	return c
}

// check renders a boolean as the paper's ✓/✗ marks.
func check(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// ms renders a duration in milliseconds with sensible precision.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000.0)
}

// newTable builds a tabwriter for aligned experiment output.
func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}
