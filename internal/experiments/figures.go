package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
)

// SizeRow is one bar group of Figure 6 or 9a: result sizes per semantics.
type SizeRow struct {
	Program string
	Ind     int
	Step    int
	Stage   int
	End     int
}

// Sizes extracts the size rows of Figures 6a/6b/6c and 9a from runs.
func Sizes(runs []*ProgramRun) []SizeRow {
	out := make([]SizeRow, 0, len(runs))
	for _, r := range runs {
		out = append(out, SizeRow{
			Program: r.Label,
			Ind:     r.Results[core.SemIndependent].Size(),
			Step:    r.Results[core.SemStep].Size(),
			Stage:   r.Results[core.SemStage].Size(),
			End:     r.Results[core.SemEnd].Size(),
		})
	}
	return out
}

// WriteSizes renders size rows (Figures 6 and 9a).
func WriteSizes(w io.Writer, title string, rows []SizeRow) {
	fmt.Fprintln(w, title)
	tw := newTable(w)
	fmt.Fprintln(tw, "Program\tInd\tStep\tStage\tEnd")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\n", r.Program, r.Ind, r.Step, r.Stage, r.End)
	}
	tw.Flush()
}

// TimeRow is one group of Figure 7 or 9b: per-semantics execution time.
type TimeRow struct {
	Program string
	Ind     time.Duration
	Step    time.Duration
	Stage   time.Duration
	End     time.Duration
}

// Times extracts the runtime rows of Figures 7 and 9b from runs.
func Times(runs []*ProgramRun) []TimeRow {
	out := make([]TimeRow, 0, len(runs))
	for _, r := range runs {
		out = append(out, TimeRow{
			Program: r.Label,
			Ind:     r.Results[core.SemIndependent].Timing.Total(),
			Step:    r.Results[core.SemStep].Timing.Total(),
			Stage:   r.Results[core.SemStage].Timing.Total(),
			End:     r.Results[core.SemEnd].Timing.Total(),
		})
	}
	return out
}

// WriteTimes renders runtime rows in milliseconds (Figures 7 and 9b).
func WriteTimes(w io.Writer, title string, rows []TimeRow) {
	fmt.Fprintln(w, title)
	tw := newTable(w)
	fmt.Fprintln(tw, "Program\tInd (ms)\tStep (ms)\tStage (ms)\tEnd (ms)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", r.Program,
			ms(r.Ind), ms(r.Step), ms(r.Stage), ms(r.End))
	}
	tw.Flush()
}

// BreakdownRow aggregates Figure 8: the average share of each phase of
// Algorithm 1 (independent) or Algorithm 2 (step) over a program group.
type BreakdownRow struct {
	Algorithm string // "Algorithm 1" or "Algorithm 2"
	Group     string // "programs 1-15" or "programs 16-20"
	// Phase shares in percent (0-100): Eval, ProcessProv, and Solve (Alg 1)
	// or Traverse (Alg 2).
	EvalPct, ProcessPct, FinalPct float64
}

// Breakdown computes Figure 8's phase shares for the given program group.
func Breakdown(runs []*ProgramRun, group string, filter func(*ProgramRun) bool) []BreakdownRow {
	var indEval, indProc, indSolve time.Duration
	var stepEval, stepProc, stepTrav time.Duration
	n := 0
	for _, r := range runs {
		if !filter(r) {
			continue
		}
		n++
		it := r.Results[core.SemIndependent].Timing
		indEval += it.Eval
		indProc += it.ProcessProv
		indSolve += it.Solve
		st := r.Results[core.SemStep].Timing
		stepEval += st.Eval
		stepProc += st.ProcessProv
		stepTrav += st.Traverse
	}
	if n == 0 {
		return nil
	}
	pct := func(part, total time.Duration) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(part) / float64(total)
	}
	indTotal := indEval + indProc + indSolve
	stepTotal := stepEval + stepProc + stepTrav
	return []BreakdownRow{
		{
			Algorithm: "Algorithm 1 (independent)", Group: group,
			EvalPct: pct(indEval, indTotal), ProcessPct: pct(indProc, indTotal), FinalPct: pct(indSolve, indTotal),
		},
		{
			Algorithm: "Algorithm 2 (step)", Group: group,
			EvalPct: pct(stepEval, stepTotal), ProcessPct: pct(stepProc, stepTotal), FinalPct: pct(stepTrav, stepTotal),
		},
	}
}

// WriteBreakdown renders Figure 8 rows.
func WriteBreakdown(w io.Writer, rows []BreakdownRow) {
	tw := newTable(w)
	fmt.Fprintln(tw, "Algorithm\tGroup\tEval %\tProcess Prov %\tSolve/Traverse %")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.1f\t%.1f\t%.1f\n",
			r.Algorithm, r.Group, r.EvalPct, r.ProcessPct, r.FinalPct)
	}
	tw.Flush()
}
