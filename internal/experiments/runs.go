package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/mas"
	"repro/internal/programs"
	"repro/internal/tpch"
)

// ProgramRun holds the four semantics' results for one test program.
type ProgramRun struct {
	// Label is the paper's program name: "1".."20" or "T-1".."T-6".
	Label string
	// Number is the program index within its suite.
	Number int
	// Class is the paper's program classification.
	Class programs.Class
	// Results maps each semantics to its result.
	Results map[core.Semantics]*core.Result
}

// runProgram executes all four semantics over db, preparing the program
// once so the executors share the compiled plans. The dataset is frozen
// up front: all four executors (and, because datasets are reused across
// programs, every later runProgram on the same db) fork one shared
// copy-on-write base instead of deep-cloning it per run, and share its
// lazily warmed indexes.
func runProgram(label string, number int, class programs.Class,
	db *engine.Database, p *datalog.Program, indOpts core.IndependentOptions) (*ProgramRun, error) {

	db.Freeze()
	prep, err := datalog.Prepare(p, db.Schema)
	if err != nil {
		return nil, fmt.Errorf("program %s: %w", label, err)
	}
	run := &ProgramRun{
		Label:   label,
		Number:  number,
		Class:   class,
		Results: make(map[core.Semantics]*core.Result, 4),
	}
	for _, sem := range core.AllSemantics {
		res, _, err := core.RunWith(db, p, sem, core.Options{Independent: indOpts, Prepared: prep})
		if err != nil {
			return nil, fmt.Errorf("program %s, %s semantics: %w", label, sem, err)
		}
		run.Results[sem] = res
	}
	return run, nil
}

// RunMAS executes all four semantics on the selected MAS programs (nil
// means all 20) over a dataset generated per the config.
func RunMAS(cfg Config, selected []int) ([]*ProgramRun, *mas.Dataset, error) {
	cfg = cfg.withDefaults()
	ds := mas.Generate(mas.Config{Scale: cfg.MASScale, Seed: cfg.Seed})
	if selected == nil {
		for n := 1; n <= 20; n++ {
			selected = append(selected, n)
		}
	}
	var runs []*ProgramRun
	for _, n := range selected {
		p, err := programs.MAS(n, ds)
		if err != nil {
			return nil, nil, err
		}
		run, err := runProgram(fmt.Sprint(n), n, programs.MASClass(n), ds.DB, p,
			core.IndependentOptions{MaxNodes: cfg.IndMaxNodes})
		if err != nil {
			return nil, nil, err
		}
		runs = append(runs, run)
	}
	return runs, ds, nil
}

// RunTPCH executes all four semantics on the selected TPC-H programs (nil
// means all 6).
func RunTPCH(cfg Config, selected []int) ([]*ProgramRun, *tpch.Dataset, error) {
	cfg = cfg.withDefaults()
	ds := tpch.Generate(tpch.Config{Scale: cfg.TPCHScale, Seed: cfg.Seed})
	if selected == nil {
		selected = []int{1, 2, 3, 4, 5, 6}
	}
	var runs []*ProgramRun
	for _, n := range selected {
		p, err := programs.TPCH(n, ds)
		if err != nil {
			return nil, nil, err
		}
		run, err := runProgram(fmt.Sprintf("T-%d", n), n, programs.TPCHClass(n), ds.DB, p,
			core.IndependentOptions{MaxNodes: cfg.IndMaxNodes})
		if err != nil {
			return nil, nil, err
		}
		runs = append(runs, run)
	}
	return runs, ds, nil
}
