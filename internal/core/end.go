package core

import (
	"context"
	"time"

	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/provenance"
)

// RunEnd computes End(P, D) (Def. 3.10): standard datalog evaluation
// treating delta relations as intensional — all possible delta tuples are
// derived against the original base relations, and the bases are updated
// once at the very end. The result is unique (the datalog fixpoint).
//
// The returned database is the repaired instance (D \ S) ∪ ∆(S).
func RunEnd(db *engine.Database, p *datalog.Program) (*Result, *engine.Database, error) {
	prep, err := datalog.Prepare(p, db.Schema)
	if err != nil {
		return nil, nil, err
	}
	return runEnd(nil, db, prep, 0, 0)
}

func runEnd(ctx context.Context, db *engine.Database, prep *datalog.Prepared, par, shardMin int) (*Result, *engine.Database, error) {
	res, work, _, err := runEndCaptured(ctx, db, prep, false, par, shardMin)
	return res, work, err
}

// CaptureProvenance runs end-semantics derivation and returns the layered
// provenance graph (§5.2, Figure 5 of the paper) without applying any
// deletions. The graph underlies Algorithm 2, the Explainer, and the DOT
// visualization.
func CaptureProvenance(db *engine.Database, p *datalog.Program) (*provenance.Graph, error) {
	prep, err := datalog.Prepare(p, db.Schema)
	if err != nil {
		return nil, err
	}
	_, _, graph, err := runEndCaptured(nil, db, prep, true, 0, 0)
	return graph, err
}

// RunEndNaive is RunEnd evaluated without the seminaive frontier
// optimization: every round re-evaluates every rule against all deltas
// derived so far. The result is identical to RunEnd; this entry point
// exists for the evaluation-strategy ablation benchmark (the paper's
// implementation uses "standard naïve evaluation", §6).
func RunEndNaive(db *engine.Database, p *datalog.Program) (*Result, *engine.Database, error) {
	prep, err := datalog.Prepare(p, db.Schema)
	if err != nil {
		return nil, nil, err
	}
	work := db.Fork()
	start := time.Now()
	derived, rounds, err := derive(work, prep, deriveConfig{naive: true})
	evalDur := time.Since(start)
	if err != nil {
		return nil, nil, err
	}
	updStart := time.Now()
	for _, t := range derived {
		work.Relation(t.Rel).DeleteTuple(t)
	}
	res := newResult(SemEnd, append([]*engine.Tuple(nil), derived...))
	res.Rounds = rounds
	res.Optimal = true
	res.Timing = Breakdown{Eval: evalDur, Update: time.Since(updStart)}
	return res, work, nil
}

// runEndWarm continues the end-semantics fixpoint from a previous
// version's result after insert-only base updates, instead of re-deriving
// from scratch. Soundness: end-semantics derivation is monotone in the
// base (bodies are positive and bases never shrink during the run), so
// with no deletions since the previous version every previously derived
// delta is still derivable — the old fixpoint is a subset of the new one.
// The old deltas are installed as already-derived, and the first round
// evaluates only the insert-seeded passes (every genuinely new assignment
// binds at least one inserted tuple); later rounds run the normal
// seminaive frontier. The unique-fixpoint result is identical to a
// from-scratch run.
//
// ok reports whether the warm continuation applied; when false (no usable
// hints, or a hint referenced a tuple that is not live — a stale hint)
// the caller must run the full executor.
func runEndWarm(ctx context.Context, db *engine.Database, prep *datalog.Prepared, par, shardMin int, w *WarmStart) (*Result, *engine.Database, bool, error) {
	if w == nil || !w.InsertOnly || w.PrevResult == nil || w.PrevResult.Semantics != SemEnd {
		return nil, nil, false, nil
	}
	work := db.Fork()
	prev := w.PrevResult.Deleted
	for _, t := range prev {
		if !work.Relation(t.Rel).ContainsTuple(t) {
			return nil, nil, false, nil // stale hint: recompute from scratch
		}
		work.Delta(t.Rel).Insert(t)
	}
	start := time.Now()
	derived, rounds, err := deriveAuto(work, prep, deriveConfig{
		parallelism: par,
		shardMin:    shardMin,
		ctx:         ctx,
		warmSeeds:   w.seedRelations(work),
	})
	evalDur := time.Since(start)
	if err != nil {
		return nil, nil, true, err
	}
	all := make([]*engine.Tuple, 0, len(prev)+len(derived))
	all = append(append(all, prev...), derived...)
	updStart := time.Now()
	for _, t := range all {
		work.Relation(t.Rel).DeleteTuple(t)
	}
	res := newResult(SemEnd, all)
	res.Rounds = rounds
	res.Optimal = true
	res.Timing = Breakdown{Eval: evalDur, Update: time.Since(updStart)}
	return res, work, true, nil
}

// runEndCaptured is runEnd optionally capturing the provenance graph for
// Algorithm 2 (step semantics): the graph records every assignment of the
// end-semantics derivation with its round as the layer.
func runEndCaptured(ctx context.Context, db *engine.Database, prep *datalog.Prepared, capture bool, par, shardMin int) (*Result, *engine.Database, *provenance.Graph, error) {
	work := db.Fork()
	var graph *provenance.Graph
	if capture {
		graph = provenance.NewGraph()
	}

	start := time.Now()
	derived, rounds, err := deriveAuto(work, prep, deriveConfig{shrinkBases: false, capture: graph, parallelism: par, shardMin: shardMin, ctx: ctx})
	evalDur := time.Since(start)
	if err != nil {
		return nil, nil, nil, err
	}

	// Def. 3.10 final state: R_i^T ← R_i^0 \ ∆_i^T.
	updStart := time.Now()
	for _, t := range derived {
		work.Relation(t.Rel).DeleteTuple(t)
	}
	updDur := time.Since(updStart)

	res := newResult(SemEnd, append([]*engine.Tuple(nil), derived...))
	res.Rounds = rounds
	res.Optimal = true // unique fixpoint; nothing to optimize
	res.Timing = Breakdown{Eval: evalDur, Update: updDur}
	if graph != nil {
		res.GraphAssignments = graph.NumAssignments()
	}
	return res, work, graph, nil
}
