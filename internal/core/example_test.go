package core

// This file fixes the paper's running example (Figures 1, 2, 4, 5 and
// Examples 1.3, 3.4, 3.6, 3.8, 3.11, 5.1, 5.2) as test fixtures shared by
// the semantics tests.

import (
	"testing"

	"repro/internal/datalog"
	"repro/internal/engine"
)

// academicSchema is the schema of Figure 1.
func academicSchema() *engine.Schema {
	s := engine.NewSchema()
	s.MustAddRelation("Grant", "g", "gid", "name")
	s.MustAddRelation("AuthGrant", "ag", "aid", "gid")
	s.MustAddRelation("Author", "a", "aid", "name")
	s.MustAddRelation("Writes", "w", "aid", "pid")
	s.MustAddRelation("Pub", "p", "pid", "title")
	s.MustAddRelation("Cite", "c", "citing", "cited")
	return s
}

// academicDB is the database instance D of Figure 1.
func academicDB() *engine.Database {
	db := engine.NewDatabase(academicSchema())
	db.MustInsert("Grant", engine.Int(1), engine.Str("NSF"))
	db.MustInsert("Grant", engine.Int(2), engine.Str("ERC"))
	db.MustInsert("AuthGrant", engine.Int(2), engine.Int(1))
	db.MustInsert("AuthGrant", engine.Int(4), engine.Int(2))
	db.MustInsert("AuthGrant", engine.Int(5), engine.Int(2))
	db.MustInsert("Author", engine.Int(2), engine.Str("Maggie"))
	db.MustInsert("Author", engine.Int(4), engine.Str("Marge"))
	db.MustInsert("Author", engine.Int(5), engine.Str("Homer"))
	db.MustInsert("Cite", engine.Int(7), engine.Int(6))
	db.MustInsert("Writes", engine.Int(4), engine.Int(6))
	db.MustInsert("Writes", engine.Int(5), engine.Int(7))
	db.MustInsert("Pub", engine.Int(6), engine.Str("x"))
	db.MustInsert("Pub", engine.Int(7), engine.Str("y"))
	return db
}

// academicProgram is the delta program of Figure 2.
func academicProgram(t testing.TB) *datalog.Program {
	t.Helper()
	p, err := datalog.ParseAndValidate(`
(0) Delta_Grant(g, n) :- Grant(g, n), n = 'ERC'.
(1) Delta_Author(a, n) :- Author(a, n), AuthGrant(a, g), Delta_Grant(g, gn).
(2) Delta_Pub(p, t) :- Pub(p, t), Writes(a, p), Delta_Author(a, n).
(3) Delta_Writes(a, p) :- Pub(p, t), Writes(a, p), Delta_Author(a, n).
(4) Delta_Cite(c, p) :- Cite(c, p), Delta_Pub(p, t), Writes(a1, c), Writes(a2, p).
`, academicSchema())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// ids extracts tuple IDs from a result for compact assertions.
func ids(r *Result) map[string]bool {
	out := make(map[string]bool, r.Size())
	for _, t := range r.Deleted {
		out[t.ID] = true
	}
	return out
}

func wantIDs(t *testing.T, r *Result, want ...string) {
	t.Helper()
	got := ids(r)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d tuples %v, want %d %v", r.Semantics, len(got), r.Keys(), len(want), want)
	}
	for _, id := range want {
		if !got[id] {
			t.Fatalf("%s: missing %s in %v", r.Semantics, id, r.Keys())
		}
	}
}

// mustStable asserts that applying the result to the database stabilizes it.
func mustStable(t *testing.T, db *engine.Database, p *datalog.Program, r *Result) {
	t.Helper()
	if _, err := Apply(db, p, r); err != nil {
		t.Fatalf("%s result is not stabilizing: %v", r.Semantics, err)
	}
}
