package core

import (
	"fmt"
	"testing"

	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/mas"
	"repro/internal/programs"
)

// checkForkVsClone runs every semantics twice — once on a CoW fork of the
// frozen base, once on a deep clone — and requires byte-identical results:
// same stabilizing set, same deletion order, same repaired instance. Deep
// clones share tuple pointers with the original, so deletion order is
// compared by object identity, the strongest available check.
func checkForkVsClone(t *testing.T, db *engine.Database, prog *datalog.Program) {
	t.Helper()
	snap := db.Freeze()
	for _, sem := range AllSemantics {
		resFork, repFork, err := Run(snap.Fork(), prog, sem)
		if err != nil {
			t.Fatalf("%s on fork: %v", sem, err)
		}
		resClone, repClone, err := Run(db.Clone(), prog, sem)
		if err != nil {
			t.Fatalf("%s on clone: %v", sem, err)
		}
		if len(resFork.Deleted) != len(resClone.Deleted) {
			t.Fatalf("%s: stabilizing set size %d on fork vs %d on clone",
				sem, len(resFork.Deleted), len(resClone.Deleted))
		}
		for i := range resFork.Deleted {
			if resFork.Deleted[i] != resClone.Deleted[i] {
				t.Fatalf("%s: deletion order diverges at %d: %s vs %s",
					sem, i, resFork.Deleted[i], resClone.Deleted[i])
			}
		}
		for _, rs := range db.Schema.Relations {
			fb := fmt.Sprint(repFork.Relation(rs.Name).Keys())
			cb := fmt.Sprint(repClone.Relation(rs.Name).Keys())
			if fb != cb {
				t.Fatalf("%s: repaired %s base diverges:\n%s\nvs\n%s", sem, rs.Name, fb, cb)
			}
			fd := fmt.Sprint(repFork.Delta(rs.Name).Keys())
			cd := fmt.Sprint(repClone.Delta(rs.Name).Keys())
			if fd != cd {
				t.Fatalf("%s: repaired %s delta diverges:\n%s\nvs\n%s", sem, rs.Name, fd, cd)
			}
		}
	}
}

// TestForkVsCloneAllPrograms is the copy-on-write acceptance gate: every
// MAS program (all 20) plus the paper's running example must produce
// byte-identical results under all four semantics whether the executor
// input is a CoW fork of a frozen base or a deep clone.
func TestForkVsCloneAllPrograms(t *testing.T) {
	t.Run("running-example", func(t *testing.T) {
		db := programs.RunningExampleDB()
		p, err := programs.RunningExampleProgram()
		if err != nil {
			t.Fatal(err)
		}
		checkForkVsClone(t, db, p)

		// The exhaustive step search (which forks one frozen base per
		// explored state) must agree with itself across representations.
		exFork, _, err := RunStepExhaustive(db.Fork(), p, StepExhaustiveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		exClone, _, err := RunStepExhaustive(db.Clone(), p, StepExhaustiveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if exFork.Size() != exClone.Size() {
			t.Fatalf("exhaustive step: %d deletions on fork vs %d on clone", exFork.Size(), exClone.Size())
		}
		for i := range exFork.Deleted {
			if exFork.Deleted[i] != exClone.Deleted[i] {
				t.Fatalf("exhaustive step order diverges at %d", i)
			}
		}
	})

	ds := mas.Generate(mas.Config{Scale: 0.01, Seed: 1})
	for n := 1; n <= 20; n++ {
		t.Run(fmt.Sprintf("mas-%d", n), func(t *testing.T) {
			p, err := programs.MAS(n, ds)
			if err != nil {
				t.Fatal(err)
			}
			checkForkVsClone(t, ds.DB, p)
		})
	}
}
