// Package core implements the paper's primary contribution: the four
// semantics for delta programs — independent (§3.2), step (§3.3), stage
// (§3.4), and end (§3.5) — together with the two heuristic algorithms for
// the NP-hard semantics: Algorithm 1 (provenance + Min-Ones-SAT) for
// independent semantics and Algorithm 2 (layered provenance-graph greedy)
// for step semantics.
//
// All executors take the input database by value semantics: they clone it,
// never mutating the caller's instance, and return both the computed
// stabilizing set and the repaired database.
package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/engine"
)

// Semantics identifies one of the four delta-rule semantics.
type Semantics int

// The four semantics of the paper, plus auxiliary step executors.
const (
	// SemEnd is end semantics (Def. 3.10): derive all delta tuples first,
	// update the database once at the end. PTIME; the baseline.
	SemEnd Semantics = iota
	// SemStage is stage semantics (Def. 3.7): derive everything derivable
	// from the previous stage, update, repeat. PTIME, deterministic.
	SemStage
	// SemStep is step semantics (Def. 3.5) computed by Algorithm 2's
	// greedy provenance-graph traversal. Finding the true minimum is
	// NP-hard (Prop. 4.2); the greedy output is a valid stabilizing set
	// realizable by a step execution.
	SemStep
	// SemIndependent is independent semantics (Def. 3.3) computed by
	// Algorithm 1 (provenance formula + Min-Ones-SAT). NP-hard; exact when
	// the solver completes within budget.
	SemIndependent
)

// String returns the semantics name as used in the paper's tables.
func (s Semantics) String() string {
	switch s {
	case SemEnd:
		return "end"
	case SemStage:
		return "stage"
	case SemStep:
		return "step"
	case SemIndependent:
		return "independent"
	default:
		return fmt.Sprintf("Semantics(%d)", int(s))
	}
}

// AllSemantics lists the four semantics in the paper's presentation order.
var AllSemantics = []Semantics{SemIndependent, SemStep, SemStage, SemEnd}

// Breakdown records per-phase execution time, mirroring Figure 8 of the
// paper: Eval (rule evaluation / provenance storage), ProcessProv
// (formula or graph construction), Solve (SAT search, Algorithm 1 only),
// Traverse (graph traversal, Algorithm 2 only), and Update (applying
// deletions to the database).
type Breakdown struct {
	Eval        time.Duration
	ProcessProv time.Duration
	Solve       time.Duration
	Traverse    time.Duration
	Update      time.Duration
}

// Total sums all phases.
func (b Breakdown) Total() time.Duration {
	return b.Eval + b.ProcessProv + b.Solve + b.Traverse + b.Update
}

// Result is the outcome of running one semantics: the stabilizing set S
// (the set of non-delta tuples deleted), diagnostics, and timings.
type Result struct {
	// Semantics identifies the executor that produced the result.
	Semantics Semantics
	// Deleted is the stabilizing set S in deterministic (Seq) order.
	Deleted []*engine.Tuple
	// Rounds is the number of derivation rounds/stages taken (end, stage)
	// or provenance layers traversed (step).
	Rounds int
	// Timing is the per-phase runtime breakdown.
	Timing Breakdown
	// Optimal reports whether minimality was proven (independent semantics
	// with a completed solver run; vacuously true for end and stage whose
	// results are unique).
	Optimal bool
	// SolverNodes is the number of SAT search nodes (independent only).
	SolverNodes int64
	// FormulaClauses is the provenance formula size (independent only).
	FormulaClauses int
	// GraphAssignments is the provenance graph size (step only).
	GraphAssignments int
	// RepairCost is the weighted objective value (independent semantics
	// with IndependentOptions.Weight; equals Size() under the default
	// minimum-cardinality metric).
	RepairCost int64

	ids  map[engine.TupleID]bool
	keys map[string]bool // lazy; built only for key-based queries
}

// newResult builds a Result from tuples, sorting deterministically.
func newResult(sem Semantics, deleted []*engine.Tuple) *Result {
	sort.Slice(deleted, func(i, j int) bool { return deleted[i].Seq < deleted[j].Seq })
	r := &Result{Semantics: sem, Deleted: deleted, ids: make(map[engine.TupleID]bool, len(deleted))}
	for _, t := range deleted {
		r.ids[t.TID] = true
	}
	return r
}

// Size returns |S|.
func (r *Result) Size() int { return len(r.Deleted) }

// ContainsID reports whether the stabilizing set includes the tuple with
// the given interned ID.
func (r *Result) ContainsID(id engine.TupleID) bool { return r.ids[id] }

// ContainsTuple reports whether the stabilizing set includes the tuple.
func (r *Result) ContainsTuple(t *engine.Tuple) bool { return r.ids[t.TID] }

// Contains reports whether the stabilizing set includes the tuple with the
// given content key (reporting/API convenience; identity checks inside the
// engine use ContainsID).
func (r *Result) Contains(key string) bool {
	if r.keys == nil {
		r.keys = make(map[string]bool, len(r.Deleted))
		for _, t := range r.Deleted {
			r.keys[t.Key()] = true
		}
	}
	return r.keys[key]
}

// Keys returns the content keys of the stabilizing set in Seq order.
func (r *Result) Keys() []string {
	out := make([]string, len(r.Deleted))
	for i, t := range r.Deleted {
		out[i] = t.Key()
	}
	return out
}

// SubsetOf reports S_r ⊆ S_o.
func (r *Result) SubsetOf(o *Result) bool {
	if r.Size() > o.Size() {
		return false
	}
	for id := range r.ids {
		if !o.ids[id] {
			return false
		}
	}
	return true
}

// SameSet reports S_r = S_o.
func (r *Result) SameSet(o *Result) bool {
	return r.Size() == o.Size() && r.SubsetOf(o)
}

// String renders a short summary; small sets are listed in full.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d tuples deleted", r.Semantics, r.Size())
	if r.Size() <= 12 {
		b.WriteString(" {")
		for i, t := range r.Deleted {
			if i > 0 {
				b.WriteString(", ")
			}
			if t.ID != "" {
				b.WriteString(t.ID)
			} else {
				b.WriteString(t.Key())
			}
		}
		b.WriteByte('}')
	}
	return b.String()
}

// ByRelation returns per-relation deletion counts, sorted by relation name.
func (r *Result) ByRelation() map[string]int {
	out := make(map[string]int)
	for _, t := range r.Deleted {
		out[t.Rel]++
	}
	return out
}
