package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/sat"
)

// IndependentOptions configures Algorithm 1.
type IndependentOptions struct {
	// MaxNodes is the Min-Ones-SAT node budget (0 = solver default). When
	// the budget is exhausted the best satisfying assignment found is used:
	// it still yields a stabilizing set, just without a minimality proof —
	// mirroring the paper's remark that any satisfying assignment
	// stabilizes the database.
	MaxNodes int64
	// MaxClauses caps the provenance formula size; 0 means
	// DefaultMaxClauses. Exceeding the cap is an error (the positivized
	// join blew up; rescale the workload).
	MaxClauses int
	// DisablePreferDerivable turns off the tie-breaking preference for
	// end-derivable tuples. With the preference on (default), when several
	// minimum repairs exist the solver steers toward tuples that other
	// semantics can also delete, maximizing Ind ⊆ Step/Stage containment
	// (the configuration the paper's tables reflect).
	DisablePreferDerivable bool
	// Weight, when non-nil, turns the objective from minimum cardinality
	// into minimum total weight: deleting tuple t costs Weight(t) (values
	// < 1 count as 1). This generalizes the paper's minimum-cardinality
	// metric to tuples of unequal importance — e.g. penalize deleting
	// master-data rows over link rows.
	Weight func(*engine.Tuple) int64
}

// DefaultMaxClauses bounds the provenance formula of Algorithm 1.
const DefaultMaxClauses = 5_000_000

// RunIndependent computes Ind(P, D) with Algorithm 1: store the DNF
// provenance of every *possible* delta tuple (delta body atoms range over
// all base tuples, not just derivable ones), negate into CNF over "tuple
// deleted" variables, and find a satisfying assignment setting the minimum
// number of variables true. The deleted-variable set is the repair.
//
// The returned database is the repaired instance; Result.Optimal reports
// whether the solver proved minimality.
func RunIndependent(db *engine.Database, p *datalog.Program, opts IndependentOptions) (*Result, *engine.Database, error) {
	prep, err := datalog.Prepare(p, db.Schema)
	if err != nil {
		return nil, nil, err
	}
	return runIndependent(nil, db, prep, 0, opts)
}

// indCNF is the compiled Algorithm 1 instance — the positivized provenance
// formula negated into CNF over deletion variables, plus the solver
// steering derived from it. It is shared between the single-repair solver
// (runIndependent) and the repair-space enumerator (enumerateRepairs): both
// must see the byte-identical formula so their first solutions agree.
type indCNF struct {
	formula    *provenance.Formula
	cnf        *sat.Formula
	ids        []engine.TupleID
	varOf      map[engine.TupleID]int
	preDeleted map[engine.TupleID]bool
	prefer     []int
	weights    []int64
	evalDur    time.Duration
	ppDur      time.Duration
}

// buildIndependentCNF runs phases 1–2 of Algorithm 1 (Eval + ProcessProv)
// and assembles the solver inputs.
func buildIndependentCNF(ctx context.Context, db *engine.Database, prep *datalog.Prepared, par int, opts IndependentOptions) (*indCNF, error) {
	maxClauses := opts.MaxClauses
	if maxClauses <= 0 {
		maxClauses = DefaultMaxClauses
	}

	// Phase 1 (Eval): provenance of all possible delta tuples (line 1 of
	// Algorithm 1) — one positivized evaluation pass per rule. Delta atoms
	// range over every *possible* deletion: all live base tuples plus any
	// tuples already deleted before this run (the §3.6 "user deletes a
	// specific set of tuples" initialization); the latter are forced
	// deleted in the CNF below. Rules are independent here, so with
	// par > 1 each rule's sweep runs on a worker; per-rule clause buffers
	// are merged in rule order, keeping the formula (and therefore SAT
	// variable numbering and the solver's tie-breaking) byte-identical to
	// the sequential sweep.
	evalStart := time.Now()
	formula := provenance.NewFormula()
	if par > 1 && len(prep.Rules) > 1 {
		// Concurrent sweeps read base and delta relations: build the probed
		// indexes up front (and flush bucket staleness from any earlier
		// deletions) so lookups perform no writes.
		prep.WarmFromBaseIndexes(db)
		// Each worker dedups its rule's clauses into a private formula —
		// the same canonical dedup the merged formula applies — so the cap
		// check counts distinct clauses exactly like the sequential sweep
		// (a self-join emits each clause body twice but stores it once). A
		// single rule exceeding the cap on its own distinct clauses dooms
		// the merged total, so stopping that rule early is safe.
		allRules := make([]int, len(prep.Rules))
		for ri := range prep.Rules {
			allRules[ri] = ri
		}
		locals := make([]*provenance.Formula, len(prep.Rules))
		overflow := make([]bool, len(prep.Rules))
		errs := forEachRuleParallel(prep, par, allRules,
			func(ri int, ec *datalog.ExecContext) error {
				if err := ctxErr(ctx); err != nil {
					return err
				}
				locals[ri] = provenance.NewFormula()
				emitted := 0
				return prep.Rules[ri].EvalFromBase(db, true, ec, func(asn *datalog.Assignment) bool {
					locals[ri].Add(asn.Head().TID, provenance.ClauseOf(asn))
					if locals[ri].Len() > maxClauses {
						overflow[ri] = true
						return false
					}
					emitted++
					return emitted%evalCheckEvery != 0 || ctxErr(ctx) == nil
				})
			})
		for ri := range prep.Rules {
			if errs[ri] != nil {
				return nil, errs[ri]
			}
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
			if overflow[ri] {
				return nil, fmt.Errorf("core: provenance formula exceeded %d clauses", maxClauses)
			}
			for ci, c := range locals[ri].Clauses {
				formula.Add(locals[ri].Heads[ci], c)
			}
			if formula.Len() > maxClauses {
				return nil, fmt.Errorf("core: provenance formula exceeded %d clauses", maxClauses)
			}
		}
	} else {
		ec := prep.AcquireContext()
		var evalErr error
		for _, pr := range prep.Rules {
			if err := ctxErr(ctx); err != nil {
				prep.ReleaseContext(ec)
				return nil, err
			}
			emitted := 0
			err := pr.EvalFromBase(db, true, ec, func(asn *datalog.Assignment) bool {
				formula.Add(asn.Head().TID, provenance.ClauseOf(asn))
				if formula.Len() > maxClauses {
					evalErr = fmt.Errorf("core: provenance formula exceeded %d clauses", maxClauses)
					return false
				}
				emitted++
				return emitted%evalCheckEvery != 0 || ctxErr(ctx) == nil
			})
			if err != nil {
				prep.ReleaseContext(ec)
				return nil, err
			}
			if evalErr != nil {
				prep.ReleaseContext(ec)
				return nil, evalErr
			}
		}
		prep.ReleaseContext(ec)
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
	}
	evalDur := time.Since(evalStart)

	// Phase 2 (ProcessProv): negate into CNF over deletion variables
	// (lines 2–4): clause (t₁ ∧ … ∧ ¬d₁ ∧ …) negates to
	// (x_t₁ ∨ … ∨ ¬x_d₁ ∨ …) where x_t means "t is deleted". SAT variables
	// map 1:1 to interned tuple IDs (numbered by first occurrence); no
	// string keys exist anywhere on this path.
	ppStart := time.Now()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	ids := formula.TupleIDs()
	varOf := make(map[engine.TupleID]int, len(ids))
	for i, id := range ids {
		varOf[id] = i + 1
	}
	cnf := sat.NewFormula(len(ids))
	for _, c := range formula.Clauses {
		lits := make([]int, 0, len(c.Pos)+len(c.Neg))
		for _, id := range c.Pos {
			lits = append(lits, varOf[id])
		}
		for _, id := range c.Neg {
			lits = append(lits, -varOf[id])
		}
		if err := cnf.AddClause(lits...); err != nil {
			return nil, err
		}
	}
	// Pre-existing deletions are facts, not choices: force their
	// variables true so the stability clauses respect them.
	preDeleted := make(map[engine.TupleID]bool)
	for _, rs := range db.Schema.Relations {
		db.Delta(rs.Name).Scan(func(t *engine.Tuple) bool {
			preDeleted[t.TID] = true
			if v, ok := varOf[t.TID]; ok {
				if err := cnf.AddClause(v); err != nil {
					return false
				}
			}
			return true
		})
	}

	// Tie preference: try end-derivable tuples first (deepest layer first),
	// steering equal-cost optima toward sets other semantics contain.
	var prefer []int
	if !opts.DisablePreferDerivable {
		if _, _, graph, err := runEndCaptured(ctx, db, prep, true, par, 0); err == nil {
			heads := append([]engine.TupleID(nil), graph.Heads...)
			idx := make(map[engine.TupleID]int, len(heads))
			for i, h := range heads {
				idx[h] = i
			}
			sort.SliceStable(heads, func(i, j int) bool {
				li, lj := graph.Layer[heads[i]], graph.Layer[heads[j]]
				if li != lj {
					return li > lj
				}
				return idx[heads[i]] < idx[heads[j]]
			})
			for _, h := range heads {
				if v, ok := varOf[h]; ok {
					prefer = append(prefer, v)
				}
			}
		}
	}
	ppDur := time.Since(ppStart)

	// Optional weighted objective: minimum total weight instead of
	// minimum cardinality.
	var weights []int64
	if opts.Weight != nil {
		weights = make([]int64, len(ids)+1)
		for i, id := range ids {
			t := db.LookupID(id)
			w := int64(1)
			if t != nil {
				if tw := opts.Weight(t); tw > 1 {
					w = tw
				}
			}
			weights[i+1] = w
		}
	}

	return &indCNF{
		formula:    formula,
		cnf:        cnf,
		ids:        ids,
		varOf:      varOf,
		preDeleted: preDeleted,
		prefer:     prefer,
		weights:    weights,
		evalDur:    evalDur,
		ppDur:      ppDur,
	}, nil
}

// satOptions assembles the solver options for one Min-Ones search over the
// compiled CNF.
func (ic *indCNF) satOptions(ctx context.Context, opts IndependentOptions) sat.Options {
	var cancel func() bool
	if ctx != nil {
		cancel = func() bool { return ctx.Err() != nil }
	}
	return sat.Options{MaxNodes: opts.MaxNodes, Prefer: ic.prefer, Weights: ic.weights, Cancel: cancel}
}

// materialize turns a satisfying assignment into the deleted-tuple set and
// the repaired fork, verifying stabilization (correctness of Algorithm 1):
// fail loudly rather than return a bad repair.
func (ic *indCNF) materialize(ctx context.Context, db *engine.Database, prep *datalog.Prepared, par int, assignment []bool) ([]*engine.Tuple, *engine.Database, error) {
	work := db.Fork()
	var deleted []*engine.Tuple
	for i, id := range ic.ids {
		if assignment[i+1] && !ic.preDeleted[id] {
			t := db.LookupID(id)
			if t == nil || !work.DeleteTupleToDelta(t) {
				return nil, nil, fmt.Errorf("core: solver selected unknown tuple t%d", id)
			}
			deleted = append(deleted, t)
		}
	}
	stable, err := CheckStableParCtx(ctx, work, prep, par)
	if err != nil {
		return nil, nil, err
	}
	if !stable {
		return nil, nil, fmt.Errorf("core: independent repair failed to stabilize (internal error)")
	}
	return deleted, work, nil
}

func runIndependent(ctx context.Context, db *engine.Database, prep *datalog.Prepared, par int, opts IndependentOptions) (*Result, *engine.Database, error) {
	ic, err := buildIndependentCNF(ctx, db, prep, par, opts)
	if err != nil {
		return nil, nil, err
	}

	// Phase 3 (Solve): Min-Ones-SAT (line 5).
	solveStart := time.Now()
	solved := sat.MinOnes(ic.cnf, ic.satOptions(ctx, opts))
	solveDur := time.Since(solveStart)
	if err := ctxErr(ctx); err != nil {
		return nil, nil, err
	}
	if !solved.Satisfiable {
		// Cannot happen: every clause has a positive literal (the self
		// atom), so the all-true assignment satisfies the CNF.
		return nil, nil, fmt.Errorf("core: provenance CNF unexpectedly unsatisfiable")
	}

	// Output (line 6): tuples whose deletion variable is true.
	updStart := time.Now()
	deleted, work, err := ic.materialize(ctx, db, prep, par, solved.Assignment)
	if err != nil {
		return nil, nil, err
	}
	updDur := time.Since(updStart)

	res := newResult(SemIndependent, deleted)
	res.Optimal = solved.Optimal
	res.SolverNodes = solved.Nodes
	res.FormulaClauses = ic.formula.Len()
	res.RepairCost = solved.WeightedCost
	res.Timing = Breakdown{Eval: ic.evalDur, ProcessProv: ic.ppDur, Solve: solveDur, Update: updDur}
	return res, work, nil
}
