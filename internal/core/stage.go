package core

import (
	"context"
	"time"

	"repro/internal/datalog"
	"repro/internal/engine"
)

// RunStage computes Stage(P, D) (Def. 3.7): at every stage all rules are
// evaluated against the previous stage's database, all derivable delta
// tuples are added at once, and the base relations are updated before the
// next stage (seminaive-style, rule-order independent). By Prop. 3.9 the
// result is a unique fixpoint.
//
// The returned database is the repaired instance (D \ S) ∪ ∆(S).
func RunStage(db *engine.Database, p *datalog.Program) (*Result, *engine.Database, error) {
	prep, err := datalog.Prepare(p, db.Schema)
	if err != nil {
		return nil, nil, err
	}
	return runStage(nil, db, prep, 0, 0)
}

func runStage(ctx context.Context, db *engine.Database, prep *datalog.Prepared, par, shardMin int) (*Result, *engine.Database, error) {
	work := db.Fork()
	start := time.Now()
	derived, rounds, err := deriveAuto(work, prep, deriveConfig{shrinkBases: true, parallelism: par, shardMin: shardMin, ctx: ctx})
	evalDur := time.Since(start)
	if err != nil {
		return nil, nil, err
	}
	res := newResult(SemStage, append([]*engine.Tuple(nil), derived...))
	res.Rounds = rounds
	res.Optimal = true // unique fixpoint
	res.Timing = Breakdown{Eval: evalDur}
	return res, work, nil
}
