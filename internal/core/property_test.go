package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datalog"
	"repro/internal/engine"
)

// randomInstance builds a random small database and a random valid delta
// program, deterministically from a seed. Databases use a tiny value domain
// so joins actually hit; programs mix condition rules, cascades, and
// DC-style multi-head rules.
func randomInstance(seed int64) (*engine.Database, *datalog.Program, error) {
	rng := rand.New(rand.NewSource(seed))
	s := engine.NewSchema()
	s.MustAddRelation("R1", "r", "a")
	s.MustAddRelation("R2", "q", "a", "b")
	s.MustAddRelation("R3", "u", "a")

	db := engine.NewDatabase(s)
	dom := 1 + rng.Intn(4)
	for i, n := 0, rng.Intn(5); i < n; i++ {
		db.MustInsert("R1", engine.Int(rng.Intn(dom)))
	}
	for i, n := 0, rng.Intn(6); i < n; i++ {
		db.MustInsert("R2", engine.Int(rng.Intn(dom)), engine.Int(rng.Intn(dom)))
	}
	for i, n := 0, rng.Intn(5); i < n; i++ {
		db.MustInsert("R3", engine.Int(rng.Intn(dom)))
	}

	rels := []struct {
		name  string
		arity int
	}{{"R1", 1}, {"R2", 2}, {"R3", 1}}

	varPool := []string{"x", "y", "z", "w"}
	nRules := 1 + rng.Intn(3)
	var rules []*datalog.Rule
	for ri := 0; ri < nRules; ri++ {
		hi := rng.Intn(len(rels))
		head := rels[hi]
		headTerms := make([]datalog.Term, head.arity)
		for i := range headTerms {
			headTerms[i] = datalog.V(varPool[i]) // distinct head vars
		}
		body := []datalog.Atom{{Rel: head.name, Terms: headTerms}}
		// 0-2 extra atoms, possibly delta, sharing variables.
		for ei, nExtra := 0, rng.Intn(3); ei < nExtra; ei++ {
			bi := rng.Intn(len(rels))
			b := rels[bi]
			terms := make([]datalog.Term, b.arity)
			for i := range terms {
				terms[i] = datalog.V(varPool[rng.Intn(len(varPool))])
			}
			body = append(body, datalog.Atom{
				Delta: rng.Intn(3) == 0, // one third delta atoms
				Rel:   b.name,
				Terms: terms,
			})
		}
		var comps []datalog.Comparison
		if rng.Intn(3) == 0 {
			comps = append(comps, datalog.Comparison{
				Left:  datalog.V(varPool[0]),
				Op:    datalog.CompOp(rng.Intn(6)),
				Right: datalog.CInt(int64(rng.Intn(4))),
			})
		}
		rules = append(rules, datalog.NewRule(fmt.Sprint(ri), datalog.NewDeltaAtom(head.name, headTerms...), body, comps...))
	}
	p := datalog.NewProgram(rules...)
	if err := p.Validate(s); err != nil {
		return nil, nil, err
	}
	return db, p, nil
}

// TestPropertyAllSemanticsStabilize: for random instances, every executor's
// output is a stabilizing set (Prop. 3.18 / Defs. 3.3-3.10).
func TestPropertyAllSemanticsStabilize(t *testing.T) {
	f := func(seed int64) bool {
		db, p, err := randomInstance(seed)
		if err != nil {
			t.Logf("seed %d: instance generation failed: %v", seed, err)
			return false
		}
		for _, sem := range AllSemantics {
			res, _, err := Run(db, p, sem)
			if err != nil {
				t.Logf("seed %d %s: %v", seed, sem, err)
				return false
			}
			if _, err := Apply(db, p, res); err != nil {
				t.Logf("seed %d %s: %v", seed, sem, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropertyContainmentAndSizes: Stage ⊆ End, Step ⊆ End, and |Ind| is no
// larger than any other result (Prop. 3.20 item 1, using the exact solver).
func TestPropertyContainmentAndSizes(t *testing.T) {
	f := func(seed int64) bool {
		db, p, err := randomInstance(seed)
		if err != nil {
			return false
		}
		rs, err := RunAll(db, p)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		c := CheckContainment(rs)
		if !c.StageInEnd {
			t.Logf("seed %d: Stage ⊄ End", seed)
			return false
		}
		if !c.StepInEnd {
			t.Logf("seed %d: Step ⊄ End", seed)
			return false
		}
		if !rs[SemIndependent].Optimal {
			return true // solver budget exhausted: size bound not guaranteed
		}
		if !c.IndLeStage || !c.IndLeStep {
			t.Logf("seed %d: |Ind|=%d > |Stage|=%d or |Step|=%d", seed,
				rs[SemIndependent].Size(), rs[SemStage].Size(), rs[SemStep].Size())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropertyGreedyStepVsExhaustive: the true Step minimum never exceeds
// the greedy Algorithm 2 output, and |Ind| ≤ |Step| with exact solvers.
func TestPropertyGreedyStepVsExhaustive(t *testing.T) {
	f := func(seed int64) bool {
		db, p, err := randomInstance(seed)
		if err != nil {
			return false
		}
		greedy, _, err := RunStepGreedy(db, p)
		if err != nil {
			t.Logf("seed %d greedy: %v", seed, err)
			return false
		}
		exh, _, err := RunStepExhaustive(db, p, StepExhaustiveOptions{MaxStates: 30000})
		if err != nil {
			return true // state budget blown: skip comparison
		}
		if exh.Size() > greedy.Size() {
			t.Logf("seed %d: exhaustive %d > greedy %d", seed, exh.Size(), greedy.Size())
			return false
		}
		ind, _, err := RunIndependent(db, p, IndependentOptions{})
		if err != nil {
			t.Logf("seed %d ind: %v", seed, err)
			return false
		}
		if ind.Optimal && ind.Size() > exh.Size() {
			t.Logf("seed %d: |Ind|=%d > |Step*|=%d", seed, ind.Size(), exh.Size())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyStageEndRuleOrderInvariance: stage and end results are unique
// fixpoints (Prop. 3.9), so permuting the program's rules cannot change them.
func TestPropertyStageEndRuleOrderInvariance(t *testing.T) {
	f := func(seed int64) bool {
		db, p, err := randomInstance(seed)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		perm := rng.Perm(len(p.Rules))
		rules := make([]*datalog.Rule, len(p.Rules))
		for i, j := range perm {
			rules[i] = p.Rules[j]
		}
		p2 := datalog.NewProgram(rules...)
		if err := p2.Validate(db.Schema); err != nil {
			return false
		}
		for _, sem := range []Semantics{SemEnd, SemStage} {
			a, _, err1 := Run(db, p, sem)
			b, _, err2 := Run(db, p2, sem)
			if err1 != nil || err2 != nil {
				t.Logf("seed %d: %v %v", seed, err1, err2)
				return false
			}
			if !a.SameSet(b) {
				t.Logf("seed %d: %s differs under rule permutation: %v vs %v",
					seed, sem, a.Keys(), b.Keys())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDeterminism: running any semantics twice yields identical
// results (full pipeline determinism, including SAT tie-breaking and greedy
// traversal ordering).
func TestPropertyDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		db, p, err := randomInstance(seed)
		if err != nil {
			return false
		}
		for _, sem := range AllSemantics {
			a, _, err1 := Run(db, p, sem)
			b, _, err2 := Run(db, p, sem)
			if err1 != nil || err2 != nil {
				return false
			}
			if !a.SameSet(b) {
				t.Logf("seed %d: %s nondeterministic: %v vs %v", seed, sem, a.Keys(), b.Keys())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRandomStepSubsetOfEnd: any random step execution deletes only
// end-derivable tuples and stabilizes.
func TestPropertyRandomStepSubsetOfEnd(t *testing.T) {
	f := func(seed int64) bool {
		db, p, err := randomInstance(seed)
		if err != nil {
			return false
		}
		endRes, _, err := RunEnd(db, p)
		if err != nil {
			return false
		}
		res, _, err := RunStepRandom(db, p, seed)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !res.SubsetOf(endRes) {
			t.Logf("seed %d: random step escaped End", seed)
			return false
		}
		if _, err := Apply(db, p, res); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestStabilityHelpers covers FirstViolation and IsStabilizing directly.
func TestStabilityHelpers(t *testing.T) {
	db := academicDB()
	p := academicProgram(t)
	w, err := FirstViolation(db, p)
	if err != nil || w == nil {
		t.Fatalf("unstable database must have a violation witness, got %v, %v", w, err)
	}
	if w.Head().ID != "g2" {
		t.Fatalf("first violation should be rule (0) on g2, got %v", w.Head())
	}
	ok, err := IsStabilizing(db, p, []string{})
	if err != nil || ok {
		t.Fatal("empty set must not stabilize an unstable database")
	}
	// The whole database is always a stabilizing set (Prop. 3.18).
	var all []string
	for _, rs := range db.Schema.Relations {
		all = append(all, db.Relation(rs.Name).Keys()...)
	}
	ok, err = IsStabilizing(db, p, all)
	if err != nil || !ok {
		t.Fatalf("the full database must be stabilizing: %v, %v", ok, err)
	}
	// Apply with a bogus result errors.
	bogus := newResult(SemEnd, nil)
	if _, err := Apply(db, p, bogus); err == nil {
		t.Fatal("applying a non-stabilizing result should error")
	}
}

// TestExhaustiveStepBudget exercises the state-budget failure path.
func TestExhaustiveStepBudget(t *testing.T) {
	db, p := academicDB(), academicProgram(t)
	if _, _, err := RunStepExhaustive(db, p, StepExhaustiveOptions{MaxStates: 3}); err == nil {
		t.Fatal("tiny state budget should error")
	}
}

// TestIndependentClauseBudget exercises the formula-cap failure path.
func TestIndependentClauseBudget(t *testing.T) {
	db, p := academicDB(), academicProgram(t)
	if _, _, err := RunIndependent(db, p, IndependentOptions{MaxClauses: 1}); err == nil {
		t.Fatal("tiny clause budget should error")
	}
}

// TestIndependentPreferenceToggle: with and without the derivable-tuple
// preference the result size must be identical (both optimal), though the
// chosen set may differ.
func TestIndependentPreferenceToggle(t *testing.T) {
	db, p := academicDB(), academicProgram(t)
	a, _, err := RunIndependent(db, p, IndependentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunIndependent(db, p, IndependentOptions{DisablePreferDerivable: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != b.Size() {
		t.Fatalf("preference changed optimal size: %d vs %d", a.Size(), b.Size())
	}
}
