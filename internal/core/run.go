package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/datalog"
	"repro/internal/engine"
)

// Options bundles per-semantics knobs for the Run dispatcher.
type Options struct {
	// Independent configures Algorithm 1 when sem == SemIndependent.
	Independent IndependentOptions
	// Parallelism sets the evaluation worker count; 0 or 1 evaluates
	// sequentially. Seminaive derivation (end and stage semantics) uses it
	// as the shard fan-out for hash-sharded evaluation, engaging only when
	// the co-partitioning analysis proved the program shard-local and the
	// base clears the size threshold (small sessions never pay shard
	// setup); Algorithm 1's provenance sweep and the parallel stability
	// probe fan out per rule. Results are byte-identical to sequential
	// execution either way.
	Parallelism int
	// ShardMinTuples overrides the minimum live base size before sharded
	// derivation engages: 0 keeps the default threshold (2048 tuples),
	// negative removes the floor entirely (differential tests use this to
	// force sharding on small databases).
	ShardMinTuples int
	// Prepared supplies a pre-compiled execution plan (datalog.Prepare) so
	// repeated runs amortize validation and join planning. It must have
	// been prepared from the same program passed to RunWith. Nil means
	// prepare on the fly.
	Prepared *datalog.Prepared
	// Ctx, when non-nil, carries per-request cancellation and deadlines
	// into the executors: the derivation loop checks it every round and
	// every evalCheckEvery emitted assignments, Algorithm 1 additionally
	// between its phases and inside the SAT search, and Algorithm 2
	// between its phases. A canceled run returns ctx.Err() promptly
	// instead of a partial result.
	Ctx context.Context
	// Warm, when non-nil, carries incremental-update hints from a
	// versioned serving layer (see WarmStart): a previous version's result
	// plus the base changes since. Updates outside the prepared read-set
	// replay the previous result without deriving anything; end semantics
	// continues the previous fixpoint incrementally — directly after
	// insert-only updates, via DRed-style over-delete/re-derive after
	// updates containing deletions; the other semantics replay the
	// previous result whenever a seeded change probe proves the batch
	// interacts with no rule. Hints never change results — inapplicable
	// ones simply fall back to a full run.
	Warm *WarmStart
}

// evalCheckEvery is how many emitted assignments pass between cancellation
// checks inside a single rule evaluation, bounding the latency of a cancel
// during one huge join at a negligible per-assignment cost.
const evalCheckEvery = 4096

// CtxErr reports the context's error, treating nil as "never canceled".
// Exported for sibling internal packages (sideeffect, server) that poll
// the same way; callers outside the module use context directly.
func CtxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// ctxErr is the package-internal alias used on hot paths.
func ctxErr(ctx context.Context) error { return CtxErr(ctx) }

// Run executes the chosen semantics with default options and returns the
// stabilizing set and the repaired database. The input database is cloned,
// never mutated.
func Run(db *engine.Database, p *datalog.Program, sem Semantics) (*Result, *engine.Database, error) {
	return RunWith(db, p, sem, Options{})
}

// RunWith is Run with explicit options.
func RunWith(db *engine.Database, p *datalog.Program, sem Semantics, opts Options) (*Result, *engine.Database, error) {
	prep := opts.Prepared
	if prep == nil {
		var err error
		prep, err = datalog.Prepare(p, db.Schema)
		if err != nil {
			return nil, nil, err
		}
	} else if p != nil && prep.Program != p {
		return nil, nil, fmt.Errorf("core: prepared plan was built from a different program")
	} else if err := prep.CompatibleWith(db.Schema); err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, nil, err
	}
	if res, work, ok := runWarmShortcut(db, prep, sem, opts.Warm); ok {
		return res, work, nil
	}
	switch sem {
	case SemEnd:
		// Insert-only batches continue the previous fixpoint directly;
		// batches with deletions run the DRed over-delete/re-derive
		// continuation. Either way the warm path costs O(changes).
		if res, work, ok, err := runEndWarm(opts.Ctx, db, prep, opts.Parallelism, opts.ShardMinTuples, opts.Warm); ok || err != nil {
			return res, work, err
		}
		if res, work, ok, err := runEndWarmDelete(opts.Ctx, db, prep, opts.Parallelism, opts.ShardMinTuples, opts.Warm); ok || err != nil {
			return res, work, err
		}
		return runEnd(opts.Ctx, db, prep, opts.Parallelism, opts.ShardMinTuples)
	case SemStage:
		if res, work, ok, err := runChangeProbe(opts.Ctx, db, prep, sem, opts.Warm); ok || err != nil {
			return res, work, err
		}
		return runStage(opts.Ctx, db, prep, opts.Parallelism, opts.ShardMinTuples)
	case SemStep:
		if res, work, ok, err := runChangeProbe(opts.Ctx, db, prep, sem, opts.Warm); ok || err != nil {
			return res, work, err
		}
		return runStepGreedy(opts.Ctx, db, prep, opts.Parallelism, StepGreedyOptions{})
	case SemIndependent:
		if res, work, ok, err := runChangeProbe(opts.Ctx, db, prep, sem, opts.Warm); ok || err != nil {
			return res, work, err
		}
		return runIndependent(opts.Ctx, db, prep, opts.Parallelism, opts.Independent)
	default:
		return nil, nil, fmt.Errorf("core: unknown semantics %v", sem)
	}
}

// RunAll executes all four semantics and returns results keyed by
// semantics, in AllSemantics order.
func RunAll(db *engine.Database, p *datalog.Program) (map[Semantics]*Result, error) {
	out := make(map[Semantics]*Result, len(AllSemantics))
	for _, sem := range AllSemantics {
		res, _, err := Run(db, p, sem)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sem, err)
		}
		out[sem] = res
	}
	return out, nil
}

// RunAllParallel is RunAll with one goroutine per semantics. Every
// executor works on a private copy-on-write fork of one frozen base and
// the executors share no mutable state, so results are identical to the
// sequential RunAll; wall-clock time approaches the slowest single
// semantics (usually independent). The forks share the snapshot's warm
// indexes — the first executor to probe a column builds it once and every
// other fork reads it — so, unlike the old deep-clone fan-out, parallel
// execution no longer repeats index construction per goroutine.
func RunAllParallel(db *engine.Database, p *datalog.Program) (map[Semantics]*Result, error) {
	// Freeze once up front (Freeze mutates the database's representation,
	// so it must not race with the executors), then hand each goroutine a
	// private O(relations) fork of the shared frozen base.
	snap := db.Freeze()
	forks := make([]*engine.Database, len(AllSemantics))
	for i := range AllSemantics {
		forks[i] = snap.Fork()
	}
	results := make([]*Result, len(AllSemantics))
	errs := make([]error, len(AllSemantics))
	var wg sync.WaitGroup
	for i, sem := range AllSemantics {
		wg.Add(1)
		go func(i int, sem Semantics) {
			defer wg.Done()
			results[i], _, errs[i] = Run(forks[i], p, sem)
		}(i, sem)
	}
	wg.Wait()
	out := make(map[Semantics]*Result, len(AllSemantics))
	for i, sem := range AllSemantics {
		if errs[i] != nil {
			return nil, fmt.Errorf("%s: %w", sem, errs[i])
		}
		out[sem] = results[i]
	}
	return out, nil
}

// Containment summarizes the relationships the paper reports in Table 3
// for a set of results: whether step equals stage, and whether the
// independent result is contained in stage and in step.
type Containment struct {
	StepEqStage bool
	IndInStage  bool
	IndInStep   bool
	// Always-true relationships (Prop. 3.20), reported for verification:
	StageInEnd bool
	StepInEnd  bool
	IndLeStep  bool // |Ind| ≤ |Step|
	IndLeStage bool // |Ind| ≤ |Stage|
}

// CheckContainment computes the Table 3 flags from a RunAll result map.
func CheckContainment(rs map[Semantics]*Result) Containment {
	ind, step, stage, end := rs[SemIndependent], rs[SemStep], rs[SemStage], rs[SemEnd]
	return Containment{
		StepEqStage: step.SameSet(stage),
		IndInStage:  ind.SubsetOf(stage),
		IndInStep:   ind.SubsetOf(step),
		StageInEnd:  stage.SubsetOf(end),
		StepInEnd:   step.SubsetOf(end),
		IndLeStep:   ind.Size() <= step.Size(),
		IndLeStage:  ind.Size() <= stage.Size(),
	}
}
