package core

import (
	"testing"

	"repro/internal/datalog"
	"repro/internal/engine"
)

// TestEndSemanticsRunningExample checks Example 3.11 / 1.3: End(P, D) =
// {g2, a2, a3, w1, w2, p1, p2, c}.
func TestEndSemanticsRunningExample(t *testing.T) {
	db, p := academicDB(), academicProgram(t)
	res, repaired, err := RunEnd(db, p)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs(t, res, "g2", "a2", "a3", "w1", "w2", "p1", "p2", "c1")
	mustStable(t, db, p, res)
	// The repaired database of Figure 4: only g1, ag*, a1 remain plus empty
	// Writes/Pub/Cite.
	if repaired.Relation("Writes").Len() != 0 || repaired.Relation("Pub").Len() != 0 ||
		repaired.Relation("Cite").Len() != 0 {
		t.Fatal("end semantics should empty Writes, Pub, Cite")
	}
	if repaired.Relation("Author").Len() != 1 || repaired.Relation("Grant").Len() != 1 {
		t.Fatal("end semantics should keep a1 and g1")
	}
	if repaired.Relation("AuthGrant").Len() != 3 {
		t.Fatal("AuthGrant should be untouched")
	}
	// Deltas recorded.
	if repaired.Delta("Author").Len() != 2 || repaired.Delta("Cite").Len() != 1 {
		t.Fatal("delta relations not recorded")
	}
	// Derivation takes 4 rounds (layers of Figure 5).
	if res.Rounds != 4 {
		t.Fatalf("rounds = %d, want 4", res.Rounds)
	}
	// The input database must be untouched.
	if db.TotalTuples() != 13 || db.TotalDeltaTuples() != 0 {
		t.Fatal("input database was mutated")
	}
}

// TestStageSemanticsRunningExample checks Example 3.8: Stage(P, D) =
// {g2, a2, a3, w1, w2, p1, p2} — the Cite tuple survives because Writes is
// already empty when rule (4) could fire.
func TestStageSemanticsRunningExample(t *testing.T) {
	db, p := academicDB(), academicProgram(t)
	res, repaired, err := RunStage(db, p)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs(t, res, "g2", "a2", "a3", "w1", "w2", "p1", "p2")
	mustStable(t, db, p, res)
	if repaired.Relation("Cite").Len() != 1 {
		t.Fatal("stage semantics must keep the Cite tuple")
	}
	if res.Rounds != 3 {
		t.Fatalf("stages = %d, want 3", res.Rounds)
	}
}

// TestStepGreedyRunningExample checks Example 5.2: Algorithm 2 returns
// S = {g2, a2, a3, w1, w2}.
func TestStepGreedyRunningExample(t *testing.T) {
	db, p := academicDB(), academicProgram(t)
	res, repaired, err := RunStepGreedy(db, p)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs(t, res, "g2", "a2", "a3", "w1", "w2")
	mustStable(t, db, p, res)
	if repaired.Relation("Pub").Len() != 2 {
		t.Fatal("step semantics must keep both publications")
	}
	if res.GraphAssignments == 0 {
		t.Fatal("provenance graph diagnostics missing")
	}
}

// TestStepExhaustiveRunningExample: the true Step(P, D) minimum is also 5
// (Example 1.3 modulo the initiating tuple g2, which the formal definition
// S = D⁰ \ Dᵗ includes).
func TestStepExhaustiveRunningExample(t *testing.T) {
	db, p := academicDB(), academicProgram(t)
	res, _, err := RunStepExhaustive(db, p, StepExhaustiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 5 {
		t.Fatalf("exhaustive step size = %d (%v), want 5", res.Size(), res.Keys())
	}
	if !res.Optimal {
		t.Fatal("exhaustive search should mark results optimal")
	}
	mustStable(t, db, p, res)
}

// TestIndependentRunningExample checks Examples 3.4 and 5.1:
// Ind(P, D) = {g2, ag2, ag3}.
func TestIndependentRunningExample(t *testing.T) {
	db, p := academicDB(), academicProgram(t)
	res, repaired, err := RunIndependent(db, p, IndependentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantIDs(t, res, "g2", "ag2", "ag3")
	if !res.Optimal {
		t.Fatal("solver should prove optimality on the running example")
	}
	mustStable(t, db, p, res)
	// Figure 4 (independent): authors survive, links are gone.
	if repaired.Relation("Author").Len() != 3 {
		t.Fatal("independent semantics must keep all authors")
	}
	if repaired.Relation("AuthGrant").Len() != 1 {
		t.Fatal("independent semantics should keep only ag1")
	}
	if res.FormulaClauses == 0 || res.SolverNodes == 0 {
		t.Fatalf("diagnostics missing: %+v", res)
	}
}

// TestRandomStepIsStabilizing: any nondeterministic step execution yields a
// stabilizing set (Prop. 3.18) that contains the end result's bound.
func TestRandomStepIsStabilizing(t *testing.T) {
	db, p := academicDB(), academicProgram(t)
	endRes, _, err := RunEnd(db, p)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		res, _, err := RunStepRandom(db, p, seed)
		if err != nil {
			t.Fatal(err)
		}
		mustStable(t, db, p, res)
		if !res.SubsetOf(endRes) {
			t.Fatalf("seed %d: step execution deleted tuples outside End: %v", seed, res.Keys())
		}
		if res.Size() < 5 {
			t.Fatalf("seed %d: no step execution can beat the minimum 5, got %d", seed, res.Size())
		}
	}
}

// TestRelationshipsRunningExample verifies the Figure 3 relationships on the
// running example: |Ind| ≤ |Step| ≤ ... and Stage, Step ⊆ End.
func TestRelationshipsRunningExample(t *testing.T) {
	db, p := academicDB(), academicProgram(t)
	rs, err := RunAll(db, p)
	if err != nil {
		t.Fatal(err)
	}
	c := CheckContainment(rs)
	if !c.StageInEnd || !c.StepInEnd {
		t.Fatalf("Stage/Step must be contained in End: %+v", c)
	}
	if !c.IndLeStep || !c.IndLeStage {
		t.Fatalf("|Ind| must be ≤ |Step|, |Stage|: %+v", c)
	}
	// For this program the independent result ({g2, ag2, ag3}) is NOT
	// contained in step or stage (AuthGrant tuples are not derivable).
	if c.IndInStage || c.IndInStep {
		t.Fatalf("Ind ⊆ Stage/Step should not hold here: %+v", c)
	}
	if c.StepEqStage {
		t.Fatal("Step and Stage differ on the running example")
	}
	// Sizes per Example 1.3 (+g2): 3, 5, 7, 8.
	sizes := []int{rs[SemIndependent].Size(), rs[SemStep].Size(), rs[SemStage].Size(), rs[SemEnd].Size()}
	want := []int{3, 5, 7, 8}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
}

// TestProposition319 reproduces the two-result construction: D = {R1(a),
// R2(b)} with rules ∆1(x) :- R1(x), R2(y) and ∆2(y) :- R1(x), R2(y). Both
// independent and step semantics have two minimum results of size 1; our
// deterministic executors must return one of them.
func TestProposition319(t *testing.T) {
	s := engine.NewSchema()
	s.MustAddRelation("R1", "r", "a")
	s.MustAddRelation("R2", "q", "a")
	db := engine.NewDatabase(s)
	db.MustInsert("R1", engine.Str("a"))
	db.MustInsert("R2", engine.Str("b"))
	p, err := datalog.ParseAndValidate(`
Delta_R1(x) :- R1(x), R2(y).
Delta_R2(y) :- R1(x), R2(y).
`, s)
	if err != nil {
		t.Fatal(err)
	}
	indRes, _, err := RunIndependent(db, p, IndependentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if indRes.Size() != 1 {
		t.Fatalf("Ind size = %d, want 1", indRes.Size())
	}
	stepRes, _, err := RunStepExhaustive(db, p, StepExhaustiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stepRes.Size() != 1 {
		t.Fatalf("Step size = %d, want 1", stepRes.Size())
	}
	greedyRes, _, err := RunStepGreedy(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if greedyRes.Size() != 1 {
		t.Fatalf("greedy step size = %d, want 1", greedyRes.Size())
	}
	mustStable(t, db, p, indRes)
	mustStable(t, db, p, stepRes)
	mustStable(t, db, p, greedyRes)
	// End and Stage delete both tuples.
	endRes, _, _ := RunEnd(db, p)
	if endRes.Size() != 2 {
		t.Fatalf("End size = %d, want 2", endRes.Size())
	}
}

// TestProposition320Item1 uses the proof's construction: R1(a1..an), R2(b)
// with the single rule ∆1(x) :- R1(x), R2(y). Ind = {b} (size 1); every
// other semantics must delete all n R1 tuples.
func TestProposition320Item1(t *testing.T) {
	const n = 6
	s := engine.NewSchema()
	s.MustAddRelation("R1", "r", "a")
	s.MustAddRelation("R2", "q", "a")
	db := engine.NewDatabase(s)
	for i := 0; i < n; i++ {
		db.MustInsert("R1", engine.Int(i))
	}
	db.MustInsert("R2", engine.Str("b"))
	p, err := datalog.ParseAndValidate("Delta_R1(x) :- R1(x), R2(y).", s)
	if err != nil {
		t.Fatal(err)
	}
	ind, _, err := RunIndependent(db, p, IndependentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ind.Size() != 1 || ind.Deleted[0].Rel != "R2" {
		t.Fatalf("Ind = %v, want the single R2 tuple", ind.Keys())
	}
	for _, sem := range []Semantics{SemEnd, SemStage, SemStep} {
		res, _, err := Run(db, p, sem)
		if err != nil {
			t.Fatal(err)
		}
		if res.Size() != n {
			t.Fatalf("%s size = %d, want %d", sem, res.Size(), n)
		}
		mustStable(t, db, p, res)
	}
}

// TestProposition320Item2 uses the chain construction where End strictly
// contains Stage: rules (1) ∆1(x) :- R1(x); (2) ∆2(x) :- ∆1(x), R2(x);
// (3) ∆3(y) :- R1(x), ∆2(x), R3(y). Stage stops after {R1(a), R2(a)};
// End also deletes every R3 tuple.
func TestProposition320Item2(t *testing.T) {
	const n = 5
	s := engine.NewSchema()
	s.MustAddRelation("R1", "r", "a")
	s.MustAddRelation("R2", "q", "a")
	s.MustAddRelation("R3", "u", "a")
	db := engine.NewDatabase(s)
	db.MustInsert("R1", engine.Str("a"))
	db.MustInsert("R2", engine.Str("a"))
	for i := 0; i < n; i++ {
		db.MustInsert("R3", engine.Int(i))
	}
	p, err := datalog.ParseAndValidate(`
Delta_R1(x) :- R1(x).
Delta_R2(x) :- R2(x), Delta_R1(x).
Delta_R3(y) :- R3(y), R1(x), Delta_R2(x).
`, s)
	if err != nil {
		t.Fatal(err)
	}
	stage, _, err := RunStage(db, p)
	if err != nil {
		t.Fatal(err)
	}
	end, _, err := RunEnd(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if stage.Size() != 2 {
		t.Fatalf("Stage size = %d (%v), want 2", stage.Size(), stage.Keys())
	}
	if end.Size() != n+2 {
		t.Fatalf("End size = %d, want %d", end.Size(), n+2)
	}
	if !stage.SubsetOf(end) || stage.SameSet(end) {
		t.Fatal("Stage must be strictly contained in End")
	}
	mustStable(t, db, p, stage)
	mustStable(t, db, p, end)
}

// TestProposition320Item4Part1 is the Step ⊊ Stage construction: two rules
// with the same body R1(x), R2(y) and heads ∆1(x) / ∆2(y). Stage deletes
// everything; one step execution deletes only R1(a).
func TestProposition320Item4Part1(t *testing.T) {
	const n = 4
	s := engine.NewSchema()
	s.MustAddRelation("R1", "r", "a")
	s.MustAddRelation("R2", "q", "a")
	db := engine.NewDatabase(s)
	db.MustInsert("R1", engine.Str("a"))
	for i := 0; i < n; i++ {
		db.MustInsert("R2", engine.Int(i))
	}
	p, err := datalog.ParseAndValidate(`
Delta_R1(x) :- R1(x), R2(y).
Delta_R2(y) :- R1(x), R2(y).
`, s)
	if err != nil {
		t.Fatal(err)
	}
	stage, _, err := RunStage(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if stage.Size() != n+1 {
		t.Fatalf("Stage size = %d, want %d (the whole database)", stage.Size(), n+1)
	}
	step, _, err := RunStepGreedy(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if step.Size() != 1 || step.Deleted[0].Rel != "R1" {
		t.Fatalf("greedy step = %v, want just R1(a)", step.Keys())
	}
	exh, _, err := RunStepExhaustive(db, p, StepExhaustiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if exh.Size() != 1 {
		t.Fatalf("exhaustive step size = %d, want 1", exh.Size())
	}
	mustStable(t, db, p, step)
}

// TestProposition320Item4Part2 is the Stage ⊊ Step construction (proof of
// item 4, part 2): stage stops at {R1(a), R2(b)} while every step execution
// is forced through all R3 tuples.
func TestProposition320Item4Part2(t *testing.T) {
	const n = 4
	s := engine.NewSchema()
	s.MustAddRelation("R1", "r", "a")
	s.MustAddRelation("R2", "q", "a")
	s.MustAddRelation("R3", "u", "a")
	db := engine.NewDatabase(s)
	db.MustInsert("R1", engine.Str("a"))
	db.MustInsert("R2", engine.Str("b"))
	for i := 0; i < n; i++ {
		db.MustInsert("R3", engine.Int(i))
	}
	p, err := datalog.ParseAndValidate(`
Delta_R1(x) :- R1(x), R2(y).
Delta_R2(y) :- R1(x), R2(y).
Delta_R3(z) :- R3(z), Delta_R1(x), R2(y).
Delta_R3(z) :- R3(z), R1(x), Delta_R2(y).
`, s)
	if err != nil {
		t.Fatal(err)
	}
	stage, _, err := RunStage(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if stage.Size() != 2 {
		t.Fatalf("Stage size = %d (%v), want 2", stage.Size(), stage.Keys())
	}
	step, _, err := RunStepGreedy(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if step.Size() != n+1 {
		t.Fatalf("greedy step size = %d (%v), want %d", step.Size(), step.Keys(), n+1)
	}
	mustStable(t, db, p, stage)
	mustStable(t, db, p, step)
	// Exhaustive confirms no execution beats n+1.
	exh, _, err := RunStepExhaustive(db, p, StepExhaustiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if exh.Size() != n+1 {
		t.Fatalf("exhaustive step size = %d, want %d", exh.Size(), n+1)
	}
}

// TestVertexCoverReduction reproduces the Prop. 4.2 reduction on a small
// graph and checks that independent semantics computes a minimum vertex
// cover. Graph: triangle {1,2,3} plus pendant edge 3-4; min VC = {1or2, 3}.
func TestVertexCoverReduction(t *testing.T) {
	s := engine.NewSchema()
	s.MustAddRelation("E", "e", "u", "v")
	s.MustAddRelation("VC", "n", "v")
	db := engine.NewDatabase(s)
	edges := [][2]int{{1, 2}, {2, 3}, {1, 3}, {3, 4}}
	for _, e := range edges {
		db.MustInsert("E", engine.Int(e[0]), engine.Int(e[1]))
		db.MustInsert("E", engine.Int(e[1]), engine.Int(e[0]))
	}
	for v := 1; v <= 4; v++ {
		db.MustInsert("VC", engine.Int(v))
	}
	p, err := datalog.ParseAndValidate(`
Delta_VC(x) :- E(x, y), VC(x), VC(y).
Delta_VC(x) :- VC(x), Delta_E(x, y).
Delta_VC(y) :- VC(y), Delta_E(x, y).
`, s)
	if err != nil {
		t.Fatal(err)
	}
	ind, _, err := RunIndependent(db, p, IndependentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ind.Size() != 2 {
		t.Fatalf("Ind size = %d (%v), want 2 (min vertex cover)", ind.Size(), ind.Keys())
	}
	for _, tp := range ind.Deleted {
		if tp.Rel != "VC" {
			t.Fatalf("reduction should delete only VC tuples, got %v", tp)
		}
	}
	mustStable(t, db, p, ind)
}

// TestStableDatabaseNeedsNoRepair: on a stable database every semantics
// returns the empty set (Prop. 3.18 footnote).
func TestStableDatabaseNeedsNoRepair(t *testing.T) {
	db := academicDB()
	s := academicSchema()
	// A program whose condition matches nothing.
	p, err := datalog.ParseAndValidate("Delta_Grant(g, n) :- Grant(g, n), n = 'NIH'.", s)
	if err != nil {
		t.Fatal(err)
	}
	for _, sem := range AllSemantics {
		res, repaired, err := Run(db, p, sem)
		if err != nil {
			t.Fatal(err)
		}
		if res.Size() != 0 {
			t.Fatalf("%s deleted %d tuples from a stable database", sem, res.Size())
		}
		if repaired.TotalTuples() != db.TotalTuples() {
			t.Fatalf("%s changed a stable database", sem)
		}
	}
	stable, err := CheckStable(db, p)
	if err != nil || !stable {
		t.Fatalf("CheckStable = %v, %v", stable, err)
	}
}

// TestPreExistingDeltasSeedDerivation: the "user deletes a specific set of
// tuples" initialization (§3.6) — deltas present before the run cascade.
func TestPreExistingDeltasSeedDerivation(t *testing.T) {
	db, p := academicDB(), academicProgram(t)
	// Drop rule (0); instead pre-delete g2 by hand.
	p2 := datalog.NewProgram(p.Rules[1:]...)
	if err := p2.Validate(academicSchema()); err != nil {
		t.Fatal(err)
	}
	work := db.Clone()
	work.DeleteToDelta(engine.ContentKey("Grant", []engine.Value{engine.Int(2), engine.Str("ERC")}))

	res, _, err := RunEnd(work, p2)
	if err != nil {
		t.Fatal(err)
	}
	// Same cascade as the full program minus the g2 self-derivation:
	// a2, a3, w1, w2, p1, p2, c.
	wantIDs(t, res, "a2", "a3", "w1", "w2", "p1", "p2", "c1")
}

// TestIndependentWithPreExistingDeltas regression-tests the §3.6 user-
// initiated-deletion scenario for Algorithm 1: with g2 already deleted,
// the provenance must still see constraints flowing through the existing
// delta tuple, and the minimum completion is {ag2, ag3}.
func TestIndependentWithPreExistingDeltas(t *testing.T) {
	db, p := academicDB(), academicProgram(t)
	work := db.Clone()
	work.DeleteToDelta(engine.ContentKey("Grant", []engine.Value{engine.Int(2), engine.Str("ERC")}))

	res, repaired, err := RunIndependent(work, p, IndependentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The result reports only NEW deletions: the two AuthGrant links.
	wantIDs(t, res, "ag2", "ag3")
	stable, err := CheckStable(repaired, p)
	if err != nil || !stable {
		t.Fatal("repair with pre-existing deltas must stabilize")
	}
	// Also with every other semantics for parity.
	for _, sem := range []Semantics{SemEnd, SemStage, SemStep} {
		res, repaired, err := Run(work, p, sem)
		if err != nil {
			t.Fatalf("%s: %v", sem, err)
		}
		if ok, _ := CheckStable(repaired, p); !ok {
			t.Fatalf("%s: unstable after repair", sem)
		}
		if res.Contains(engine.ContentKey("Grant", []engine.Value{engine.Int(2), engine.Str("ERC")})) {
			t.Fatalf("%s: pre-deleted tuple reported as new deletion", sem)
		}
	}
}

func TestRunDispatcherAndErrors(t *testing.T) {
	db, p := academicDB(), academicProgram(t)
	if _, _, err := Run(db, p, Semantics(99)); err == nil {
		t.Fatal("unknown semantics should error")
	}
	res, _, err := Run(db, p, SemStage)
	if err != nil || res.Semantics != SemStage {
		t.Fatalf("dispatch failed: %v %v", res, err)
	}
	if Semantics(99).String() == "" {
		t.Fatal("unknown semantics should still render")
	}
	all, err := RunAll(db, p)
	if err != nil || len(all) != 4 {
		t.Fatalf("RunAll = %v, %v", all, err)
	}
}

func TestResultHelpers(t *testing.T) {
	db, p := academicDB(), academicProgram(t)
	res, _, err := RunIndependent(db, p, IndependentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contains(engine.ContentKey("Grant", []engine.Value{engine.Int(2), engine.Str("ERC")})) {
		t.Fatal("Contains(g2) should hold")
	}
	by := res.ByRelation()
	if by["AuthGrant"] != 2 || by["Grant"] != 1 {
		t.Fatalf("ByRelation = %v", by)
	}
	if res.String() == "" {
		t.Fatal("String should render")
	}
	if len(res.Keys()) != res.Size() {
		t.Fatal("Keys length mismatch")
	}
}
