package core

import (
	"fmt"
	"testing"

	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/mas"
	"repro/internal/programs"
)

// warmInfo folds an ApplyInfo and the previous result into the WarmStart
// a serving layer would pass for the next request at the new version.
func warmInfo(prev *Result, info *engine.ApplyInfo) *WarmStart {
	return &WarmStart{
		PrevResult:  prev,
		ChangedRels: info.Changed,
		Inserted:    info.InsertedTuples,
		Deleted:     info.DeletedTuples,
		InsertOnly:  info.InsertOnly(),
	}
}

// exactKeys is the byte-identity comparison: Seq-ordered keys, valid when
// both results were computed on forks of the same snapshot lineage.
func exactKeys(res *Result) string { return fmt.Sprintf("%v", res.Keys()) }

// TestWarmEndDeleteContinuation: mixed insert/delete batches chain warm
// end-semantics runs through the DRed pipeline; every version's warm
// result is byte-identical to a cold run on the same lineage.
func TestWarmEndDeleteContinuation(t *testing.T) {
	_, db, prog, prep := warmFixture(t)
	snap := db.Freeze()
	prev, _, err := RunWith(snap.Fork(), prog, SemEnd, Options{Prepared: prep})
	if err != nil {
		t.Fatal(err)
	}

	batches := []struct {
		name             string
		inserts, deletes []engine.Row
	}{
		{"delete violation root", nil,
			[]engine.Row{{Rel: "A", Vals: []engine.Value{engine.Int(7)}}}},
		{"mixed cascade", []engine.Row{
			{Rel: "A", Vals: []engine.Value{engine.Int(11)}},
			{Rel: "B", Vals: []engine.Value{engine.Int(11), engine.Int(1)}},
		}, []engine.Row{
			{Rel: "B", Vals: []engine.Value{engine.Int(6), engine.Int(0)}},
		}},
		{"delete support edge", nil,
			[]engine.Row{{Rel: "B", Vals: []engine.Value{engine.Int(11), engine.Int(1)}}}},
		{"replace a row", []engine.Row{
			{Rel: "A", Vals: []engine.Value{engine.Int(6)}},
		}, []engine.Row{
			{Rel: "A", Vals: []engine.Value{engine.Int(6)}},
		}},
	}
	for _, b := range batches {
		next, info, err := snap.Apply(b.inserts, b.deletes)
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		if info.InsertOnly() {
			t.Fatalf("%s: batch should contain effective deletes", b.name)
		}
		cold, _, err := RunWith(next.Fork(), prog, SemEnd, Options{Prepared: prep})
		if err != nil {
			t.Fatalf("%s cold: %v", b.name, err)
		}
		got, repaired, err := RunWith(next.Fork(), prog, SemEnd, Options{Prepared: prep, Warm: warmInfo(prev, info)})
		if err != nil {
			t.Fatalf("%s warm: %v", b.name, err)
		}
		if exactKeys(got) != exactKeys(cold) {
			t.Fatalf("%s: warm %s != cold %s", b.name, exactKeys(got), exactKeys(cold))
		}
		if stable, err := CheckStableP(repaired, prep); err != nil || !stable {
			t.Fatalf("%s: warm-repaired fork not stable (err=%v)", b.name, err)
		}
		// The pipeline continues the previous fixpoint instead of
		// recomputing: with no inserted tuples there is no new frontier,
		// so a delete-only continuation derives zero rounds while the
		// cold run pays the full derivation depth. (Mixed batches may
		// legitimately cascade as deep as the cold run.)
		if info.DeleteOnly() && got.Rounds != 0 {
			t.Errorf("%s: delete-only warm run derived %d rounds, want 0 (cold took %d)",
				b.name, got.Rounds, cold.Rounds)
		}
		snap, prev = next, got
	}
}

// TestWarmEndDeleteAlternativeSupport: an over-deleted tuple with a
// surviving alternative derivation is revived by the re-derive phase
// rather than lost — the classic case derivation counting gets right and
// naive over-deletion gets wrong.
func TestWarmEndDeleteAlternativeSupport(t *testing.T) {
	schema, err := engine.ParseSchema("A(x)\nB(x, y)\nC(x)")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := datalog.ParseAndValidate(`
		Delta_A(x) :- A(x), x > 5.
		Delta_C(y) :- C(y), B(x, y), Delta_A(x).
	`, schema)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := datalog.Prepare(prog, schema)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewDatabase(schema)
	db.MustInsert("A", engine.Int(6))
	db.MustInsert("A", engine.Int(7))
	db.MustInsert("B", engine.Int(6), engine.Int(0))
	db.MustInsert("B", engine.Int(7), engine.Int(0))
	db.MustInsert("C", engine.Int(0))
	snap := db.Freeze()
	prev, _, err := RunWith(snap.Fork(), prog, SemEnd, Options{Prepared: prep})
	if err != nil {
		t.Fatal(err)
	}
	if prev.Size() != 3 { // A(6), A(7), C(0) — C(0) supported twice
		t.Fatalf("fixture fixpoint has %d tuples, want 3", prev.Size())
	}

	// Deleting A(7) invalidates one of C(0)'s two derivations; the other
	// (through A(6)) survives, so C(0) must stay in the repair.
	next, info, err := snap.Apply(nil, []engine.Row{{Rel: "A", Vals: []engine.Value{engine.Int(7)}}})
	if err != nil {
		t.Fatal(err)
	}
	cold, _, err := RunWith(next.Fork(), prog, SemEnd, Options{Prepared: prep})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := RunWith(next.Fork(), prog, SemEnd, Options{Prepared: prep, Warm: warmInfo(prev, info)})
	if err != nil {
		t.Fatal(err)
	}
	if exactKeys(got) != exactKeys(cold) {
		t.Fatalf("warm %s != cold %s", exactKeys(got), exactKeys(cold))
	}
	if got.Size() != 2 {
		t.Fatalf("repair has %d tuples, want 2 (A(6) and the revived C(0))", got.Size())
	}
	if got.Rounds != 0 {
		t.Errorf("delete-only continuation derived %d rounds, want 0", got.Rounds)
	}
}

// TestWarmEndDeleteCyclicSupport: tuples whose only remaining support is
// a derivation cycle must die with the cycle — the re-derive phase is a
// least fixpoint from below, so mutually supporting dead tuples cannot
// revive each other (the unsoundness that rules out pure counting for
// recursive programs).
func TestWarmEndDeleteCyclicSupport(t *testing.T) {
	schema, err := engine.ParseSchema("N(x)\nE(x, y)\nBad(x)")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := datalog.ParseAndValidate(`
		Delta_N(x) :- N(x), Bad(x).
		Delta_N(x) :- N(x), E(x, y), Delta_N(y).
	`, schema)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := datalog.Prepare(prog, schema)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewDatabase(schema)
	for i := 1; i <= 3; i++ {
		db.MustInsert("N", engine.Int(i))
	}
	// 1 and 2 form a support cycle; 3 is the externally bad root that
	// feeds the cycle through E(1, 3).
	db.MustInsert("E", engine.Int(1), engine.Int(2))
	db.MustInsert("E", engine.Int(2), engine.Int(1))
	db.MustInsert("E", engine.Int(1), engine.Int(3))
	db.MustInsert("Bad", engine.Int(3))
	snap := db.Freeze()
	prev, _, err := RunWith(snap.Fork(), prog, SemEnd, Options{Prepared: prep})
	if err != nil {
		t.Fatal(err)
	}
	if prev.Size() != 3 {
		t.Fatalf("fixture fixpoint has %d tuples, want all of N", prev.Size())
	}

	for _, tc := range []struct {
		name string
		del  engine.Row
		want int
	}{
		// Severing the edge into the cycle: N(3) stays bad, but N(1)/N(2)
		// lose their well-founded support and must not keep each other
		// alive through E(1,2)/E(2,1).
		{"cut cycle feed", engine.Row{Rel: "E", Vals: []engine.Value{engine.Int(1), engine.Int(3)}}, 1},
		// Deleting the bad root empties the fixpoint entirely.
		{"delete bad root", engine.Row{Rel: "Bad", Vals: []engine.Value{engine.Int(3)}}, 0},
	} {
		next, info, err := snap.Apply(nil, []engine.Row{tc.del})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		cold, _, err := RunWith(next.Fork(), prog, SemEnd, Options{Prepared: prep})
		if err != nil {
			t.Fatalf("%s cold: %v", tc.name, err)
		}
		got, repaired, err := RunWith(next.Fork(), prog, SemEnd, Options{Prepared: prep, Warm: warmInfo(prev, info)})
		if err != nil {
			t.Fatalf("%s warm: %v", tc.name, err)
		}
		if exactKeys(got) != exactKeys(cold) {
			t.Fatalf("%s: warm %s != cold %s", tc.name, exactKeys(got), exactKeys(cold))
		}
		if got.Size() != tc.want {
			t.Fatalf("%s: repair has %d tuples, want %d", tc.name, got.Size(), tc.want)
		}
		if stable, err := CheckStableP(repaired, prep); err != nil || !stable {
			t.Fatalf("%s: warm-repaired fork not stable (err=%v)", tc.name, err)
		}
	}
}

// TestWarmChangeProbeReplay: for the semantics without an incremental
// executor, a delete-containing batch whose tuples provably join no rule
// replays the cached result, while an interacting batch recomputes.
func TestWarmChangeProbeReplay(t *testing.T) {
	schema, err := engine.ParseSchema("A(x)\nB(x)")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := datalog.ParseAndValidate("Delta_A(x) :- A(x), B(x).", schema)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := datalog.Prepare(prog, schema)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewDatabase(schema)
	db.MustInsert("A", engine.Int(1))
	db.MustInsert("A", engine.Int(2))
	db.MustInsert("B", engine.Int(2))
	snap := db.Freeze()

	for _, sem := range []Semantics{SemStage, SemStep, SemIndependent} {
		prev, _, err := RunWith(snap.Fork(), prog, sem, Options{Prepared: prep})
		if err != nil {
			t.Fatalf("%s: %v", sem, err)
		}
		if prev.Size() != 1 {
			t.Fatalf("%s: fixture repair has %d tuples, want 1", sem, prev.Size())
		}

		// A(1) has no B partner in either version: the probe finds no
		// assignment binding it, so the cached result replays verbatim.
		next, info, err := snap.Apply(nil, []engine.Row{{Rel: "A", Vals: []engine.Value{engine.Int(1)}}})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := RunWith(next.Fork(), prog, sem, Options{Prepared: prep, Warm: warmInfo(prev, info)})
		if err != nil {
			t.Fatalf("%s warm: %v", sem, err)
		}
		cold, _, err := RunWith(next.Fork(), prog, sem, Options{Prepared: prep})
		if err != nil {
			t.Fatalf("%s cold: %v", sem, err)
		}
		if exactKeys(got) != exactKeys(cold) {
			t.Fatalf("%s: replay %s != cold %s", sem, exactKeys(got), exactKeys(cold))
		}
		if got.Timing.Eval != 0 {
			t.Errorf("%s: probe replay ran an executor (eval %v)", sem, got.Timing.Eval)
		}

		// Deleting B(2) interacts (it bound the only assignment): the
		// probe hits, the executor reruns, and the repair empties.
		next2, info2, err := snap.Apply(nil, []engine.Row{{Rel: "B", Vals: []engine.Value{engine.Int(2)}}})
		if err != nil {
			t.Fatal(err)
		}
		got2, _, err := RunWith(next2.Fork(), prog, sem, Options{Prepared: prep, Warm: warmInfo(prev, info2)})
		if err != nil {
			t.Fatalf("%s warm interacting: %v", sem, err)
		}
		if got2.Size() != 0 {
			t.Fatalf("%s: deleting the join partner should empty the repair, got %s", sem, exactKeys(got2))
		}
	}
}

// TestWarmDeleteMASPrograms is the acceptance sweep: all 20 MAS programs
// plus the running example, × all four semantics. Each program gets a
// mixed batch deleting two tuples of the previous repair (guaranteed
// fixpoint interaction) plus one unrelated base row resurrection; the
// warm result must be byte-identical to a cold recompute on the same
// lineage.
func TestWarmDeleteMASPrograms(t *testing.T) {
	ds := mas.Generate(mas.Config{Scale: 0.01, Seed: 11})
	masProgs, err := programs.MASAll(ds)
	if err != nil {
		t.Fatal(err)
	}
	type fixture struct {
		name string
		db   *engine.Database
		prog *datalog.Program
	}
	var fixtures []fixture
	for n := 1; n <= 20; n++ {
		fixtures = append(fixtures, fixture{fmt.Sprintf("mas%02d", n), ds.DB, masProgs[n]})
	}
	reProg, err := programs.RunningExampleProgram()
	if err != nil {
		t.Fatal(err)
	}
	fixtures = append(fixtures, fixture{"running-example", programs.RunningExampleDB(), reProg})

	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			t.Parallel()
			prep, err := datalog.Prepare(fx.prog, fx.db.Schema)
			if err != nil {
				t.Fatal(err)
			}
			snap := fx.db.Freeze()
			for _, sem := range AllSemantics {
				prev, _, err := RunWith(snap.Fork(), fx.prog, sem, Options{Prepared: prep})
				if err != nil {
					t.Fatalf("%s prev: %v", sem, err)
				}

				// Delete the first and last tuples of the previous repair
				// (when it has any — both live as base rows under end/step/
				// stage/independent deletion-only semantics), and resurrect
				// the first: a mixed batch inside the read-set.
				var deletes, inserts []engine.Row
				if prev.Size() > 0 {
					first := prev.Deleted[0]
					last := prev.Deleted[len(prev.Deleted)-1]
					deletes = append(deletes, engine.Row{Rel: first.Rel, Vals: first.Vals})
					if last.TID != first.TID {
						deletes = append(deletes, engine.Row{Rel: last.Rel, Vals: last.Vals})
					}
					inserts = append(inserts, engine.Row{Rel: first.Rel, Vals: first.Vals})
				} else {
					// Stable program: delete an arbitrary base row so the
					// batch still contains an effective delete.
					found := false
					for _, rs := range fx.db.Schema.Relations {
						snap.Fork().Relation(rs.Name).Scan(func(tp *engine.Tuple) bool {
							deletes = append(deletes, engine.Row{Rel: tp.Rel, Vals: tp.Vals})
							found = true
							return false
						})
						if found {
							break
						}
					}
					if !found {
						t.Skipf("%s: empty instance", sem)
					}
				}
				next, info, err := snap.Apply(inserts, deletes)
				if err != nil {
					t.Fatalf("%s apply: %v", sem, err)
				}
				cold, _, err := RunWith(next.Fork(), fx.prog, sem, Options{Prepared: prep})
				if err != nil {
					t.Fatalf("%s cold: %v", sem, err)
				}
				got, repaired, err := RunWith(next.Fork(), fx.prog, sem, Options{Prepared: prep, Warm: warmInfo(prev, info)})
				if err != nil {
					t.Fatalf("%s warm: %v", sem, err)
				}
				if exactKeys(got) != exactKeys(cold) {
					t.Fatalf("%s: warm %s != cold %s", sem, exactKeys(got), exactKeys(cold))
				}
				if stable, err := CheckStableP(repaired, prep); err != nil || !stable {
					t.Fatalf("%s: warm-repaired fork not stable (err=%v)", sem, err)
				}
			}
		})
	}
}
