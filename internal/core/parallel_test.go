package core

import (
	"testing"
	"testing/quick"
)

// TestRunAllParallelMatchesSequential: parallel execution yields exactly
// the sequential results (run with -race to exercise the concurrency).
func TestRunAllParallelMatchesSequential(t *testing.T) {
	db, p := academicDB(), academicProgram(t)
	seq, err := RunAll(db, p)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunAllParallel(db, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, sem := range AllSemantics {
		if !seq[sem].SameSet(par[sem]) {
			t.Fatalf("%s: parallel %v != sequential %v", sem, par[sem].Keys(), seq[sem].Keys())
		}
	}
	// The input database must be untouched by either path.
	if db.TotalTuples() != 13 || db.TotalDeltaTuples() != 0 {
		t.Fatal("input database mutated")
	}
}

// TestPropertyParallelDeterminism: random instances agree between parallel
// and sequential execution.
func TestPropertyParallelDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		db, p, err := randomInstance(seed)
		if err != nil {
			return false
		}
		seq, err1 := RunAll(db, p)
		par, err2 := RunAllParallel(db, p)
		if err1 != nil || err2 != nil {
			t.Logf("seed %d: %v / %v", seed, err1, err2)
			return false
		}
		for _, sem := range AllSemantics {
			if !seq[sem].SameSet(par[sem]) {
				t.Logf("seed %d: %s differs", seed, sem)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
