package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/sat"
)

// MaxEnumRepairs caps EnumerateOptions.K: per-tuple repair membership is a
// 64-bit mask, so a space never holds more than 64 repairs.
const MaxEnumRepairs = 64

// ClampEnumK returns k normalized to [1, MaxEnumRepairs] — the clamping
// EnumerateRepairs applies. Exported so serving layers can key caches by
// the effective k.
func ClampEnumK(k int) int {
	if k < 1 {
		return 1
	}
	if k > MaxEnumRepairs {
		return MaxEnumRepairs
	}
	return k
}

// EnumerateOptions configures repair-space enumeration under independent
// semantics.
type EnumerateOptions struct {
	// K caps the number of repairs returned; values are clamped to
	// [1, MaxEnumRepairs].
	K int
	// CardinalityOnly restricts the space to cardinality-minimal repairs
	// (Lopatenko–Bertossi): only repairs tied with the minimum (weighted)
	// cost are returned, and Complete reports whether that tie band was
	// exhausted. The default enumerates the k best set-minimal repairs in
	// nondecreasing cost order.
	CardinalityOnly bool
}

// RepairSpace is the result of enumerating the k best independent-semantics
// repairs of one database, plus the per-tuple certain/possible
// classification across them. All classification answers are relative to
// the enumerated repairs: when Complete is false, more repairs may exist —
// "certainly deleted" can shrink and "possibly deleted" can grow against
// the full space.
type RepairSpace struct {
	// Repairs holds distinct minimal repairs in nondecreasing (weighted)
	// cost order; ties resolve deterministically by the solver's
	// tie-breaking. Repairs[0] is byte-identical to the single
	// RunIndependent result under the same options.
	Repairs []*Result
	// Complete reports that the enumeration provably exhausted the space
	// (or, with CardinalityOnly, the minimum-cost tie band): no further
	// repair of the requested kind exists beyond Repairs.
	Complete bool
	// Optimal reports that every solver search proved optimality; false
	// means a node budget ran out — the tail of Repairs is best-effort and
	// the enumeration stopped early.
	Optimal bool
	// SolverNodes totals search nodes across all solver calls.
	SolverNodes int64
	// FormulaClauses is the provenance formula size (built once and shared
	// by every solve).
	FormulaClauses int
	// Timing is the phase breakdown; Solve spans all solver calls and
	// Update spans materializing every repair.
	Timing Breakdown

	deletedIn map[engine.TupleID]uint64 // bit i set ⇔ Repairs[i] deletes the tuple
	certain   []*engine.Tuple           // deleted in every repair, Seq order
	possible  []*engine.Tuple           // deleted in ≥ 1 repair, Seq order
}

// K returns the number of repairs in the space.
func (rs *RepairSpace) K() int { return len(rs.Repairs) }

// FullMask returns the bitmask with one bit per repair (bit i = Repairs[i]).
func (rs *RepairSpace) FullMask() uint64 {
	if len(rs.Repairs) >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(len(rs.Repairs))) - 1
}

// DeletedMask returns the set of repairs deleting the tuple, as a bitmask
// over Repairs. Zero means the tuple survives every enumerated repair.
func (rs *RepairSpace) DeletedMask(id engine.TupleID) uint64 { return rs.deletedIn[id] }

// CertainlyDeleted lists the tuples deleted by every enumerated repair, in
// Seq order. A tuple is *certain* (in the CQA sense: present in every
// repair) iff it is live and not in PossiblyDeleted.
func (rs *RepairSpace) CertainlyDeleted() []*engine.Tuple { return rs.certain }

// PossiblyDeleted lists the tuples deleted by at least one enumerated
// repair, in Seq order. A live tuple outside this set survives every
// repair; a tuple in it but not in CertainlyDeleted is *possible* —
// present in some repairs, absent from others.
func (rs *RepairSpace) PossiblyDeleted() []*engine.Tuple { return rs.possible }

// classify builds the per-tuple masks and the certain/possible slices from
// the enumerated repairs.
func (rs *RepairSpace) classify() {
	rs.deletedIn = make(map[engine.TupleID]uint64)
	byID := make(map[engine.TupleID]*engine.Tuple)
	for i, res := range rs.Repairs {
		for _, t := range res.Deleted {
			rs.deletedIn[t.TID] |= uint64(1) << uint(i)
			byID[t.TID] = t
		}
	}
	full := rs.FullMask()
	for id, mask := range rs.deletedIn {
		t := byID[id]
		rs.possible = append(rs.possible, t)
		if mask == full {
			rs.certain = append(rs.certain, t)
		}
	}
	sort.Slice(rs.possible, func(i, j int) bool { return rs.possible[i].Seq < rs.possible[j].Seq })
	sort.Slice(rs.certain, func(i, j int) bool { return rs.certain[i].Seq < rs.certain[j].Seq })
}

// EnumerateRepairs enumerates the k best independent-semantics repairs of
// db under p with default options. The input database is cloned, never
// mutated.
func EnumerateRepairs(db *engine.Database, p *datalog.Program, k int) (*RepairSpace, error) {
	return EnumerateRepairsWith(db, p, Options{}, EnumerateOptions{K: k})
}

// EnumerateRepairsWith is EnumerateRepairs with explicit executor and
// enumeration options. Opts is interpreted as for RunWith (Prepared,
// Parallelism, Ctx, Independent all apply; Warm hints are ignored — the
// space depends on the whole database, not on a previous single result).
//
// The provenance CNF is built once; the solver then runs up to k times,
// each solution's blocking clause excluding it and its supersets from
// later solves (see sat.EnumerateMinOnes). Every returned repair is
// verified to stabilize the database, exactly like the single-repair path.
func EnumerateRepairsWith(db *engine.Database, p *datalog.Program, opts Options, eopts EnumerateOptions) (*RepairSpace, error) {
	prep := opts.Prepared
	if prep == nil {
		var err error
		prep, err = datalog.Prepare(p, db.Schema)
		if err != nil {
			return nil, err
		}
	} else if p != nil && prep.Program != p {
		return nil, fmt.Errorf("core: prepared plan was built from a different program")
	} else if err := prep.CompatibleWith(db.Schema); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, err
	}
	return enumerateRepairs(opts.Ctx, db, prep, opts.Parallelism, opts.Independent, eopts)
}

func enumerateRepairs(ctx context.Context, db *engine.Database, prep *datalog.Prepared, par int, iopts IndependentOptions, eopts EnumerateOptions) (*RepairSpace, error) {
	k := ClampEnumK(eopts.K)
	ic, err := buildIndependentCNF(ctx, db, prep, par, iopts)
	if err != nil {
		return nil, err
	}

	solveStart := time.Now()
	enum := sat.EnumerateMinOnes(ic.cnf, k, eopts.CardinalityOnly, ic.satOptions(ctx, iopts))
	solveDur := time.Since(solveStart)
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if len(enum.Solutions) == 0 {
		// Cannot happen: every clause has a positive literal (the self
		// atom), so the all-true assignment satisfies the CNF — the first
		// solve always finds something.
		return nil, fmt.Errorf("core: provenance CNF unexpectedly unsatisfiable")
	}

	space := &RepairSpace{
		Complete:       enum.Complete,
		Optimal:        enum.Optimal,
		SolverNodes:    enum.Nodes,
		FormulaClauses: ic.formula.Len(),
	}
	updStart := time.Now()
	for _, sol := range enum.Solutions {
		deleted, _, err := ic.materialize(ctx, db, prep, par, sol.Assignment)
		if err != nil {
			return nil, err
		}
		res := newResult(SemIndependent, deleted)
		res.Optimal = sol.Optimal
		res.SolverNodes = sol.Nodes
		res.FormulaClauses = ic.formula.Len()
		res.RepairCost = sol.WeightedCost
		space.Repairs = append(space.Repairs, res)
	}
	updDur := time.Since(updStart)
	space.classify()
	space.Timing = Breakdown{Eval: ic.evalDur, ProcessProv: ic.ppDur, Solve: solveDur, Update: updDur}
	return space, nil
}
