package core

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/datalog"
	"repro/internal/engine"
)

// warmFixture builds a schema with a cascade program plus an Audit
// relation no rule reads, a base instance, and its prepared plans.
func warmFixture(t *testing.T) (*engine.Schema, *engine.Database, *datalog.Program, *datalog.Prepared) {
	t.Helper()
	schema, err := engine.ParseSchema("A(x)\nB(x, y)\nC(x)\nAudit(x, y)")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := datalog.ParseAndValidate(`
		Delta_A(x) :- A(x), x > 5.
		Delta_B(x, y) :- B(x, y), Delta_A(x).
		Delta_C(y) :- C(y), B(x, y), Delta_A(x).
	`, schema)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewDatabase(schema)
	for i := 0; i < 8; i++ {
		db.MustInsert("A", engine.Int(i))
	}
	for i := 0; i < 8; i++ {
		db.MustInsert("B", engine.Int(i), engine.Int(i%3))
	}
	for i := 0; i < 3; i++ {
		db.MustInsert("C", engine.Int(i))
	}
	db.MustInsert("Audit", engine.Int(1), engine.Int(1))
	prep, err := datalog.Prepare(prog, schema)
	if err != nil {
		t.Fatal(err)
	}
	return schema, db, prog, prep
}

func sortedKeys(res *Result) string {
	keys := res.Keys()
	sort.Strings(keys)
	return fmt.Sprintf("%v", keys)
}

// TestWarmShortcutOutsideReadSet: updates confined to relations no rule
// reads replay the previous result exactly, without deriving anything.
func TestWarmShortcutOutsideReadSet(t *testing.T) {
	_, db, prog, prep := warmFixture(t)
	snap := db.Freeze()

	for _, sem := range AllSemantics {
		prev, _, err := RunWith(snap.Fork(), prog, sem, Options{Prepared: prep})
		if err != nil {
			t.Fatalf("%s: %v", sem, err)
		}
		if prev.Size() == 0 {
			t.Fatalf("%s: fixture should require deletions", sem)
		}

		// Update only the Audit relation (outside the read-set).
		next, info, err := snap.Apply(
			[]engine.Row{{Rel: "Audit", Vals: []engine.Value{engine.Int(9), engine.Int(9)}}},
			[]engine.Row{{Rel: "Audit", Vals: []engine.Value{engine.Int(1), engine.Int(1)}}},
		)
		if err != nil {
			t.Fatal(err)
		}
		warm := &WarmStart{PrevResult: prev, ChangedRels: info.Changed, Inserted: info.InsertedTuples, InsertOnly: info.InsertOnly()}
		got, repaired, err := RunWith(next.Fork(), prog, sem, Options{Prepared: prep, Warm: warm})
		if err != nil {
			t.Fatalf("%s warm: %v", sem, err)
		}
		scratch, _, err := RunWith(next.Fork(), prog, sem, Options{Prepared: prep})
		if err != nil {
			t.Fatalf("%s scratch: %v", sem, err)
		}
		if sortedKeys(got) != sortedKeys(scratch) {
			t.Fatalf("%s: warm %s != scratch %s", sem, sortedKeys(got), sortedKeys(scratch))
		}
		// The shortcut must not have derived: Rounds carries over and the
		// repaired fork is stable.
		if got.Rounds != prev.Rounds || got.Optimal != prev.Optimal {
			t.Errorf("%s: diagnostics not carried over (%d/%v vs %d/%v)", sem, got.Rounds, got.Optimal, prev.Rounds, prev.Optimal)
		}
		stable, err := CheckStableP(repaired, prep)
		if err != nil || !stable {
			t.Errorf("%s: warm repaired fork not stable (err=%v)", sem, err)
		}
	}
}

// TestWarmShortcutRefusedInsideReadSet: an update touching a read-set
// relation must not replay the previous result — the semantics recompute
// and pick up the new tuples.
func TestWarmShortcutRefusedInsideReadSet(t *testing.T) {
	_, db, prog, prep := warmFixture(t)
	snap := db.Freeze()
	prev, _, err := RunWith(snap.Fork(), prog, SemStage, Options{Prepared: prep})
	if err != nil {
		t.Fatal(err)
	}
	// Insert a new violating A tuple: the stage repair must grow.
	next, info, err := snap.Apply([]engine.Row{{Rel: "A", Vals: []engine.Value{engine.Int(9)}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm := &WarmStart{PrevResult: prev, ChangedRels: info.Changed, Inserted: info.InsertedTuples, InsertOnly: true}
	got, _, err := RunWith(next.Fork(), prog, SemStage, Options{Prepared: prep, Warm: warm})
	if err != nil {
		t.Fatal(err)
	}
	scratch, _, err := RunWith(next.Fork(), prog, SemStage, Options{Prepared: prep})
	if err != nil {
		t.Fatal(err)
	}
	if sortedKeys(got) != sortedKeys(scratch) {
		t.Fatalf("warm %s != scratch %s", sortedKeys(got), sortedKeys(scratch))
	}
	if got.Size() <= prev.Size() {
		t.Fatalf("insert inside read-set should grow the repair (%d vs %d)", got.Size(), prev.Size())
	}
}

// TestWarmEndContinuation: after insert-only updates, end semantics
// continues the previous fixpoint (insert-seeded round 1, then normal
// seminaive) and matches a from-scratch run exactly — including when the
// inserts cascade through delta joins.
func TestWarmEndContinuation(t *testing.T) {
	_, db, prog, prep := warmFixture(t)
	snap := db.Freeze()
	prev, _, err := RunWith(snap.Fork(), prog, SemEnd, Options{Prepared: prep})
	if err != nil {
		t.Fatal(err)
	}

	cur := snap
	for step := 0; step < 4; step++ {
		// Each step inserts a violating A tuple and a B edge that cascades.
		next, info, err := cur.Apply([]engine.Row{
			{Rel: "A", Vals: []engine.Value{engine.Int(10 + step)}},
			{Rel: "B", Vals: []engine.Value{engine.Int(10 + step), engine.Int(step % 3)}},
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		warm := &WarmStart{PrevResult: prev, ChangedRels: info.Changed, Inserted: info.InsertedTuples, InsertOnly: info.InsertOnly()}
		got, repaired, err := RunWith(next.Fork(), prog, SemEnd, Options{Prepared: prep, Warm: warm})
		if err != nil {
			t.Fatal(err)
		}
		scratch, _, err := RunWith(next.Fork(), prog, SemEnd, Options{Prepared: prep})
		if err != nil {
			t.Fatal(err)
		}
		if sortedKeys(got) != sortedKeys(scratch) {
			t.Fatalf("step %d: warm end %s != scratch %s", step, sortedKeys(got), sortedKeys(scratch))
		}
		if got.Size() <= prev.Size() {
			t.Fatalf("step %d: cascade should grow the end repair", step)
		}
		stable, err := CheckStableP(repaired, prep)
		if err != nil || !stable {
			t.Fatalf("step %d: warm repaired fork not stable (err=%v)", step, err)
		}
		// The continuation must also work under parallel evaluation.
		par, _, err := RunWith(next.Fork(), prog, SemEnd, Options{Prepared: prep, Warm: warm, Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if sortedKeys(par) != sortedKeys(scratch) {
			t.Fatalf("step %d: parallel warm end diverged", step)
		}
		cur, prev = next, got
	}
}

// TestWarmEndRefusedAfterDeletes: a batch with deletions must not use the
// fixpoint continuation (stale support); results still match scratch.
func TestWarmEndRefusedAfterDeletes(t *testing.T) {
	_, db, prog, prep := warmFixture(t)
	snap := db.Freeze()
	prev, _, err := RunWith(snap.Fork(), prog, SemEnd, Options{Prepared: prep})
	if err != nil {
		t.Fatal(err)
	}
	// Delete A(i7): previously derived deltas rooted at it lose support.
	next, info, err := snap.Apply(nil, []engine.Row{{Rel: "A", Vals: []engine.Value{engine.Int(7)}}})
	if err != nil {
		t.Fatal(err)
	}
	warm := &WarmStart{PrevResult: prev, ChangedRels: info.Changed, Inserted: info.InsertedTuples, InsertOnly: info.InsertOnly()}
	got, _, err := RunWith(next.Fork(), prog, SemEnd, Options{Prepared: prep, Warm: warm})
	if err != nil {
		t.Fatal(err)
	}
	scratch, _, err := RunWith(next.Fork(), prog, SemEnd, Options{Prepared: prep})
	if err != nil {
		t.Fatal(err)
	}
	if sortedKeys(got) != sortedKeys(scratch) {
		t.Fatalf("post-delete warm end %s != scratch %s", sortedKeys(got), sortedKeys(scratch))
	}
	if got.Size() >= prev.Size() {
		t.Fatalf("deleting a violation root should shrink the repair (%d vs %d)", got.Size(), prev.Size())
	}
}

// TestCheckStableWarm: incremental stability probing matches full probes
// across update shapes — outside the read-set, deletion-only, and
// insert-driven instability.
func TestCheckStableWarm(t *testing.T) {
	schema, err := engine.ParseSchema("A(x)\nB(x)\nAudit(x)")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := datalog.ParseAndValidate("Delta_A(x) :- A(x), B(x).", schema)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := datalog.Prepare(prog, schema)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewDatabase(schema)
	db.MustInsert("A", engine.Int(1))
	db.MustInsert("B", engine.Int(2)) // disjoint: stable
	snap := db.Freeze()
	if stable, err := CheckStableP(snap.Fork(), prep); err != nil || !stable {
		t.Fatalf("fixture should start stable (err=%v)", err)
	}

	check := func(name string, snap *engine.Snapshot, info *engine.ApplyInfo) {
		t.Helper()
		warm := &WarmStart{PrevStable: true, ChangedRels: info.Changed, Inserted: info.InsertedTuples}
		got, err := CheckStableWarm(snap.Fork(), prep, warm)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := CheckStableP(snap.Fork(), prep)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Fatalf("%s: warm stability %v, full probe %v", name, got, want)
		}
	}

	// Outside the read-set: no evaluation needed, still stable.
	s1, info, err := snap.Apply([]engine.Row{{Rel: "Audit", Vals: []engine.Value{engine.Int(1)}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	check("outside read-set", s1, info)

	// Deletion-only: stable stays stable.
	s2, info, err := snap.Apply(nil, []engine.Row{{Rel: "B", Vals: []engine.Value{engine.Int(2)}}})
	if err != nil {
		t.Fatal(err)
	}
	check("deletion-only", s2, info)

	// Insert that keeps stability (no join partner).
	s3, info, err := snap.Apply([]engine.Row{{Rel: "B", Vals: []engine.Value{engine.Int(3)}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	check("benign insert", s3, info)

	// Insert that creates a violation: B(1) joins A(1).
	s4, info, err := snap.Apply([]engine.Row{{Rel: "B", Vals: []engine.Value{engine.Int(1)}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	check("violating insert", s4, info)
	warm := &WarmStart{PrevStable: true, ChangedRels: info.Changed, Inserted: info.InsertedTuples}
	if stable, _ := CheckStableWarm(s4.Fork(), prep, warm); stable {
		t.Fatal("violating insert reported stable")
	}

	// Without usable hints the warm probe falls back to a full check.
	if stable, err := CheckStableWarm(s4.Fork(), prep, nil); err != nil || stable {
		t.Fatalf("nil hints fallback: stable=%v err=%v", stable, err)
	}
}
