package core

import (
	"fmt"
	"testing"

	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/mas"
	"repro/internal/programs"
)

// assertIdentical fails unless the two results are the same set in the
// same deletion order — byte-identical repairs, not just set-equivalent.
func assertIdentical(t *testing.T, label string, sem Semantics, seq, par *Result) {
	t.Helper()
	if !seq.SameSet(par) {
		t.Fatalf("%s/%s: parallel set %v != sequential %v", label, sem, par.Keys(), seq.Keys())
	}
	sk, pk := seq.Keys(), par.Keys()
	for i := range sk {
		if sk[i] != pk[i] {
			t.Fatalf("%s/%s: deletion order diverges at %d: parallel %v, sequential %v", label, sem, i, pk, sk)
		}
	}
	if seq.Optimal != par.Optimal || seq.Rounds != par.Rounds {
		t.Fatalf("%s/%s: diagnostics diverge: parallel (optimal=%v rounds=%d) vs sequential (optimal=%v rounds=%d)",
			label, sem, par.Optimal, par.Rounds, seq.Optimal, seq.Rounds)
	}
}

// runBoth executes one semantics sequentially and with a worker pool over
// the same prepared program and checks the results are identical.
func runBoth(t *testing.T, label string, db *engine.Database, p *datalog.Program, prep *datalog.Prepared) {
	t.Helper()
	indOpts := IndependentOptions{MaxNodes: 150000}
	for _, sem := range AllSemantics {
		seq, _, err := RunWith(db, p, sem, Options{Prepared: prep, Independent: indOpts})
		if err != nil {
			t.Fatalf("%s/%s sequential: %v", label, sem, err)
		}
		par, _, err := RunWith(db, p, sem, Options{Prepared: prep, Independent: indOpts, Parallelism: 4})
		if err != nil {
			t.Fatalf("%s/%s parallel: %v", label, sem, err)
		}
		assertIdentical(t, label, sem, seq, par)
	}
}

// TestParallelDerivationMatchesSequentialMAS runs all 20 MAS programs under
// Parallelism: 4 and asserts every semantics produces the same stabilizing
// set in the same deletion order as sequential execution. Run with -race to
// exercise the concurrent evaluation paths.
func TestParallelDerivationMatchesSequentialMAS(t *testing.T) {
	ds := mas.Generate(mas.Config{Scale: 0.01, Seed: 1})
	for n := 1; n <= 20; n++ {
		p, err := programs.MAS(n, ds)
		if err != nil {
			t.Fatal(err)
		}
		prep, err := datalog.Prepare(p, ds.DB.Schema)
		if err != nil {
			t.Fatal(err)
		}
		runBoth(t, fmt.Sprintf("MAS-%d", n), ds.DB, p, prep)
	}
}

// TestParallelDerivationMatchesSequentialRunningExample covers the paper's
// running example (Figure 1) under the same parallel-vs-sequential check.
func TestParallelDerivationMatchesSequentialRunningExample(t *testing.T) {
	db := programs.RunningExampleDB()
	p, err := programs.RunningExampleProgram()
	if err != nil {
		t.Fatal(err)
	}
	prep, err := datalog.Prepare(p, db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	runBoth(t, "running-example", db, p, prep)
}

// TestPreparedRepeatedRunsShareState exercises the amortization path: many
// repeated repairs through one Prepared must keep producing identical
// results (pooled contexts and scratch relations must not leak state
// between runs).
func TestPreparedRepeatedRunsShareState(t *testing.T) {
	ds := mas.Generate(mas.Config{Scale: 0.01, Seed: 2})
	p, err := programs.MAS(10, ds)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := datalog.Prepare(p, ds.DB.Schema)
	if err != nil {
		t.Fatal(err)
	}
	var first *Result
	for i := 0; i < 5; i++ {
		res, _, err := RunWith(ds.DB, p, SemStage, Options{Prepared: prep})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
			continue
		}
		assertIdentical(t, fmt.Sprintf("run-%d", i), SemStage, first, res)
	}
}

// TestParallelIndependentWithStaleIndexes covers the pre-existing-deletion
// initialization (§3.6) under parallelism: the caller's database already
// has lazily built indexes with stale buckets from earlier deletions, and
// warming must flush them so the concurrent sweep performs no writes (run
// with -race).
func TestParallelIndependentWithStaleIndexes(t *testing.T) {
	db := programs.RunningExampleDB()
	p, err := programs.RunningExampleProgram()
	if err != nil {
		t.Fatal(err)
	}
	prep, err := datalog.Prepare(p, db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	// Build indexes lazily via a stability probe, then delete tuples so the
	// built buckets go stale.
	if _, err := CheckStableP(db, prep); err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{"AuthGrant", "Writes"} {
		tuples := db.Relation(rel).Tuples()
		db.DeleteTupleToDelta(tuples[len(tuples)-1])
	}
	seq, _, err := RunWith(db, p, SemIndependent, Options{Prepared: prep})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := RunWith(db, p, SemIndependent, Options{Prepared: prep, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "stale-index", SemIndependent, seq, par)
}

// TestPreparedAcceptsStructurallyEqualSchema: a snapshot-restored database
// has a distinct but structurally equal schema object; prepared plans must
// keep working against it, while a genuinely different schema errors
// instead of panicking mid-derivation.
func TestPreparedSchemaCompatibility(t *testing.T) {
	ds := mas.Generate(mas.Config{Scale: 0.01, Seed: 1})
	p, err := programs.MAS(10, ds)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := datalog.Prepare(p, ds.DB.Schema)
	if err != nil {
		t.Fatal(err)
	}
	// Different schema object, same structure (clone by re-declaring).
	clone := engine.NewSchema()
	for _, rs := range ds.DB.Schema.Relations {
		clone.MustAddRelation(rs.Name, rs.IDPrefix, rs.Attrs...)
	}
	db2 := engine.NewDatabase(clone)
	ds.DB.Relation(ds.DB.Schema.Relations[0].Name).Scan(func(tp *engine.Tuple) bool {
		db2.MustInsert(tp.Rel, tp.Vals...)
		return true
	})
	if _, _, err := RunWith(db2, p, SemStage, Options{Prepared: prep}); err != nil {
		t.Fatalf("structurally equal schema rejected: %v", err)
	}
	// Genuinely different schema: error, not panic.
	other := engine.NewSchema()
	other.MustAddRelation("Unrelated", "u", "a")
	db3 := engine.NewDatabase(other)
	if _, _, err := RunWith(db3, p, SemStage, Options{Prepared: prep}); err == nil {
		t.Fatal("mismatched schema accepted")
	}
}

// TestRunWithRejectsMismatchedPrepared guards the misuse path: a plan
// prepared from one program cannot silently execute another.
func TestRunWithRejectsMismatchedPrepared(t *testing.T) {
	ds := mas.Generate(mas.Config{Scale: 0.01, Seed: 1})
	p1, err := programs.MAS(1, ds)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := programs.MAS(2, ds)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := datalog.Prepare(p1, ds.DB.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunWith(ds.DB, p2, SemEnd, Options{Prepared: prep}); err == nil {
		t.Fatal("mismatched prepared program accepted")
	}
}

// TestCheckStablePRejectsMismatchedSchema: the stability probe enforces
// the same schema-compatibility guard as the executors.
func TestCheckStablePRejectsMismatchedSchema(t *testing.T) {
	ds := mas.Generate(mas.Config{Scale: 0.01, Seed: 1})
	p, err := programs.MAS(10, ds)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := datalog.Prepare(p, ds.DB.Schema)
	if err != nil {
		t.Fatal(err)
	}
	other := engine.NewSchema()
	other.MustAddRelation("Unrelated", "u", "a")
	if _, err := CheckStableP(engine.NewDatabase(other), prep); err == nil {
		t.Fatal("mismatched schema accepted by CheckStableP")
	}
	if stable, err := CheckStableP(ds.DB, prep); err != nil || stable {
		t.Fatalf("CheckStableP on matching schema = (%v, %v), want (false, nil)", stable, err)
	}
}
