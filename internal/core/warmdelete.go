package core

import (
	"context"
	"time"

	"repro/internal/datalog"
	"repro/internal/engine"
)

// Incremental delete maintenance for end semantics (DRed-style).
//
// runEndWarm continues the previous version's fixpoint after insert-only
// batches; this file extends the continuation to batches containing
// deletions, so every update batch costs O(changes) instead of falling
// off the warm path into a full seminaive recompute. The algorithm is
// the classic over-delete / re-derive pipeline (DRed), adapted to delta
// programs where every derived head is itself a live base tuple (the
// mandatory self atom, Def. 3.1):
//
//  1. Over-delete. Mark dead the previously derived tuples that were
//     themselves deleted by the batch (their self atom can no longer
//     bind), then close downward: any derivation of a previous-fixpoint
//     tuple that bound a batch-deleted base tuple or an already-dead
//     delta tuple kills its head too. The sweep re-finds those
//     derivations by seeded evaluation — deleted tuples drive the join
//     at each base atom, dead tuples at each delta atom — against
//     sources that over-approximate the previous version (live ∪ deleted
//     at base atoms, the full previous fixpoint at delta atoms), so no
//     invalidated derivation is missed. Over-approximation only ever
//     kills more (phase 2 recovers), never less.
//
//  2. Re-derive. A dead tuple that is still a live base row may have an
//     alternative derivation that bound nothing deleted or dead — pure
//     counting is unsound here precisely because recursive programs can
//     hold cyclic support alive. Recover exactly the well-founded
//     survivors by a least-fixpoint closure from below: seed each
//     candidate's self atom and ask whether a derivation exists over the
//     live base and the surviving fixpoint; every revival joins the
//     delta view and is propagated through the seminaive pass plans
//     until no candidate revives. Starting from the surviving fixpoint
//     and only ever adding derivable tuples keeps cyclic, mutually
//     supporting dead tuples dead — their revival would have to assume
//     itself.
//
//  3. Continue. The surviving-plus-revived fixpoint is installed as
//     already-processed deltas and derivation continues exactly like the
//     insert-only warm path: round 1 probes only the insert-seeded
//     passes (any genuinely new assignment binds an inserted tuple —
//     bodies are positive and phases 1–2 already computed everything
//     derivable without the inserts), later rounds run the normal
//     seminaive frontier.
//
// Exactness. Let F be the previous fixpoint over D_old and F_new the
// fixpoint over D_new. Phase 1 kills every F-tuple with any invalidated
// derivation, so each survivor has a derivation whose bindings all
// survive into D_new — by induction over derivation rounds the survivor
// set is ⊆ F_new. Phase 2 is a least fixpoint over D_new restricted to F
// members, so after it, the installed set F₁ equals every F_new tuple
// derivable without binding an inserted tuple anywhere in its
// derivation chain (a chain of non-inserted bindings grounds entirely in
// D_old content and F members). The remainder of F_new, each of whose
// derivation chains binds an inserted tuple somewhere, is exactly what
// phase 3's insert-seeded round and its cascade enumerate. The
// update-stream equivalence suite and the warm-delete differential
// suites assert byte-identity against from-scratch recomputation.
func runEndWarmDelete(ctx context.Context, db *engine.Database, prep *datalog.Prepared, par, shardMin int, w *WarmStart) (*Result, *engine.Database, bool, error) {
	if w == nil || w.InsertOnly || w.PrevResult == nil || w.PrevResult.Semantics != SemEnd {
		return nil, nil, false, nil
	}
	start := time.Now()
	work := db.Fork()
	schema := work.Schema
	prev := w.PrevResult

	// Interned identity of the batch-deleted tuples.
	deleted := make(map[engine.TupleID]bool)
	for _, tuples := range w.Deleted {
		for _, t := range tuples {
			deleted[t.TID] = true
		}
	}

	// Verify the hints against this version while collecting the forced
	// deaths: every previous-fixpoint tuple must either still be live or
	// be one of the batch-deleted tuples (then it is dead outright — no
	// self atom can bind it anymore). Anything else means the hints do
	// not describe this lineage; fall back to a full run.
	dead := make(map[engine.TupleID]bool)
	var frontier []*engine.Tuple
	for _, t := range prev.Deleted {
		if deleted[t.TID] {
			dead[t.TID] = true
			frontier = append(frontier, t)
			continue
		}
		if !work.Relation(t.Rel).ContainsTuple(t) {
			return nil, nil, false, nil // stale hint: recompute from scratch
		}
	}

	ec := prep.AcquireContext()
	defer prep.ReleaseContext(ec)

	// Phase 1: over-delete the downward closure.
	fAll := groupByRelation(schema, byRelation(prev.Deleted))
	delView := groupByRelation(schema, w.Deleted)
	overOld := func(rule *datalog.Rule) func(bi int) datalog.AtomSource {
		return func(bi int) datalog.AtomSource {
			rel := rule.Body[bi].Rel
			if rule.Body[bi].Delta {
				if f := fAll[rel]; f != nil {
					return datalog.AtomSource{f}
				}
				return datalog.AtomSource{}
			}
			if d := delView[rel]; d != nil {
				return datalog.AtomSource{work.Relation(rel), d}
			}
			return datalog.AtomSource{work.Relation(rel)}
		}
	}
	markDead := func(asn *datalog.Assignment) bool {
		head := asn.Head()
		if prev.ContainsID(head.TID) && !dead[head.TID] {
			dead[head.TID] = true
			frontier = append(frontier, head)
		}
		return true
	}
	for _, pr := range prep.Rules {
		if err := ctxErr(ctx); err != nil {
			return nil, nil, true, err
		}
		if err := pr.EvalChangeSeeded(delView, true, overOld(pr.Rule), ec, markDead); err != nil {
			return nil, nil, true, err
		}
	}
	for len(frontier) > 0 {
		batch := frontier
		frontier = nil
		seeds := groupByRelation(schema, byRelation(batch))
		for _, pr := range prep.Rules {
			if pr.NumDeltaBody() == 0 {
				continue // no delta atom can bind a dead tuple
			}
			if err := ctxErr(ctx); err != nil {
				return nil, nil, true, err
			}
			rule := pr.Rule
			for p := 0; p < pr.NumDeltaBody(); p++ {
				srcs := seededPassSources(work, rule, p, seeds, fAll, delView)
				if err := pr.EvalPass(p, srcs, ec, markDead); err != nil {
					return nil, nil, true, err
				}
			}
		}
	}

	// Phase 2: re-derive over-deleted tuples with surviving alternative
	// derivations. Candidates are the dead tuples still live as base rows;
	// the delta view starts at the surviving fixpoint and grows only by
	// revivals, so the closure is a least fixpoint from below.
	fSurv := make(map[string]*engine.Relation, len(fAll))
	candSet := make(map[engine.TupleID]bool, len(dead))
	var candLists map[string][]*engine.Tuple
	for _, t := range prev.Deleted {
		if !dead[t.TID] {
			surv := fSurv[t.Rel]
			if surv == nil {
				surv = engine.NewScratchRelation(t.Rel, schema.Relation(t.Rel).Arity())
				fSurv[t.Rel] = surv
			}
			surv.Insert(t)
			continue
		}
		if deleted[t.TID] || !work.Relation(t.Rel).ContainsTuple(t) {
			continue // gone from the base: stays dead
		}
		candSet[t.TID] = true
		if candLists == nil {
			candLists = make(map[string][]*engine.Tuple)
		}
		candLists[t.Rel] = append(candLists[t.Rel], t)
	}
	liveSrc := func(rule *datalog.Rule) func(bi int) datalog.AtomSource {
		return func(bi int) datalog.AtomSource {
			rel := rule.Body[bi].Rel
			if rule.Body[bi].Delta {
				if f := fSurv[rel]; f != nil {
					return datalog.AtomSource{f}
				}
				return datalog.AtomSource{}
			}
			return datalog.AtomSource{work.Relation(rel)}
		}
	}
	var pending []*engine.Tuple
	revive := func(asn *datalog.Assignment) bool {
		head := asn.Head()
		if candSet[head.TID] {
			delete(candSet, head.TID)
			pending = append(pending, head)
		}
		return true
	}
	if len(candSet) > 0 {
		candSeeds := groupByRelation(schema, candLists)
		for _, pr := range prep.Rules {
			if err := ctxErr(ctx); err != nil {
				return nil, nil, true, err
			}
			if err := pr.EvalSelfSeeded(candSeeds[pr.Rule.Head.Rel], liveSrc(pr.Rule), ec, revive); err != nil {
				return nil, nil, true, err
			}
		}
	}
	for len(pending) > 0 {
		batch := pending
		pending = nil
		// Install the revivals before propagating: the pass's non-frontier
		// delta atoms then read survivors ∪ all revivals so far, and the
		// frontier pass catches every derivation binding a new revival.
		for _, t := range batch {
			dead[t.TID] = false
			surv := fSurv[t.Rel]
			if surv == nil {
				surv = engine.NewScratchRelation(t.Rel, schema.Relation(t.Rel).Arity())
				fSurv[t.Rel] = surv
			}
			surv.Insert(t)
		}
		if len(candSet) == 0 {
			break // nothing left to revive
		}
		seeds := groupByRelation(schema, byRelation(batch))
		for _, pr := range prep.Rules {
			if pr.NumDeltaBody() == 0 {
				continue
			}
			if err := ctxErr(ctx); err != nil {
				return nil, nil, true, err
			}
			rule := pr.Rule
			for p := 0; p < pr.NumDeltaBody(); p++ {
				srcs := seededPassSources(work, rule, p, seeds, fSurv, nil)
				if err := pr.EvalPass(p, srcs, ec, revive); err != nil {
					return nil, nil, true, err
				}
			}
		}
	}

	// Phase 3: install the maintained fixpoint as already-processed deltas
	// and continue derivation with the inserted tuples as the round-1
	// frontier (exactly the insert-only warm continuation).
	prevLive := make([]*engine.Tuple, 0, len(prev.Deleted))
	for _, t := range prev.Deleted {
		if dead[t.TID] {
			continue
		}
		work.Delta(t.Rel).Insert(t)
		prevLive = append(prevLive, t)
	}
	derived, rounds, err := deriveAuto(work, prep, deriveConfig{
		parallelism: par,
		shardMin:    shardMin,
		ctx:         ctx,
		warmSeeds:   w.seedRelations(work),
	})
	evalDur := time.Since(start)
	if err != nil {
		return nil, nil, true, err
	}
	all := make([]*engine.Tuple, 0, len(prevLive)+len(derived))
	all = append(append(all, prevLive...), derived...)
	updStart := time.Now()
	for _, t := range all {
		work.Relation(t.Rel).DeleteTuple(t)
	}
	res := newResult(SemEnd, all)
	res.Rounds = rounds
	res.Optimal = true
	res.Timing = Breakdown{Eval: evalDur, Update: time.Since(updStart)}
	return res, work, true, nil
}

// byRelation groups tuples by relation name, preserving order.
func byRelation(tuples []*engine.Tuple) map[string][]*engine.Tuple {
	out := make(map[string][]*engine.Tuple)
	for _, t := range tuples {
		out[t.Rel] = append(out[t.Rel], t)
	}
	return out
}

// seededPassSources builds the per-atom sources for one seminaive pass of
// the dead/revival propagation sweeps: the pass-th delta atom reads the
// frontier seed, other delta atoms read the full delta view, and base
// atoms read the live base — extended by the deleted-tuple view when the
// sweep must over-approximate the previous version's bases (extra may be
// nil). Atoms whose relation has no tuples in a view read an empty
// source.
func seededPassSources(work *engine.Database, rule *datalog.Rule, pass int,
	seeds, deltaView, extra map[string]*engine.Relation) []datalog.AtomSource {

	sources := make([]datalog.AtomSource, len(rule.Body))
	di := 0
	for i, a := range rule.Body {
		if !a.Delta {
			if extra != nil && extra[a.Rel] != nil {
				sources[i] = datalog.AtomSource{work.Relation(a.Rel), extra[a.Rel]}
			} else {
				sources[i] = datalog.AtomSource{work.Relation(a.Rel)}
			}
			continue
		}
		switch {
		case di == pass:
			if s := seeds[a.Rel]; s != nil {
				sources[i] = datalog.AtomSource{s}
			} else {
				sources[i] = datalog.AtomSource{}
			}
		default:
			if f := deltaView[a.Rel]; f != nil {
				sources[i] = datalog.AtomSource{f}
			} else {
				sources[i] = datalog.AtomSource{}
			}
		}
		di++
	}
	return sources
}
