package core

// The paper's conclusions (§8) note that all definitions and results of
// Sections 2-4 also apply to recursive programs; the limitation is only
// provenance size for Algorithms 1 and 2. This repository supports
// recursive programs end to end: derivation terminates because delta
// relations grow monotonically within base-relation bounds, Algorithm 1's
// positivized provenance is a single finite pass regardless of recursion,
// and Algorithm 2's layers come from the (terminating) end run. These
// tests pin that behaviour.

import (
	"fmt"
	"testing"

	"repro/internal/datalog"
	"repro/internal/engine"
)

// chainDB builds a linked list Edge(1,2), ..., Edge(n-1,n) plus Node(i).
func chainDB(n int) *engine.Database {
	s := engine.NewSchema()
	s.MustAddRelation("Node", "n", "id")
	s.MustAddRelation("Edge", "e", "src", "dst")
	db := engine.NewDatabase(s)
	for i := 1; i <= n; i++ {
		db.MustInsert("Node", engine.Int(i))
	}
	for i := 1; i < n; i++ {
		db.MustInsert("Edge", engine.Int(i), engine.Int(i+1))
	}
	return db
}

// reachabilityProgram deletes node 1 and recursively every node reachable
// only through deleted nodes — transitive cascade, genuinely recursive.
func reachabilityProgram(t *testing.T, db *engine.Database) *datalog.Program {
	t.Helper()
	p, err := datalog.ParseAndValidate(`
(0) Delta_Node(x) :- Node(x), x = 1.
(1) Delta_Node(y) :- Node(y), Edge(x, y), Delta_Node(x).
`, db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Recursive {
		t.Fatal("reachability program should be flagged recursive")
	}
	return p
}

func TestRecursiveCascadeEndAndStage(t *testing.T) {
	const n = 12
	db := chainDB(n)
	p := reachabilityProgram(t, db)

	end, _, err := RunEnd(db, p)
	if err != nil {
		t.Fatal(err)
	}
	// Every node is reachable from node 1 along the chain.
	if end.Size() != n {
		t.Fatalf("end size = %d, want %d", end.Size(), n)
	}
	if end.Rounds != n {
		t.Fatalf("end rounds = %d, want %d (one hop per round)", end.Rounds, n)
	}
	stage, _, err := RunStage(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if !stage.SameSet(end) {
		t.Fatal("stage must equal end on the pure cascade")
	}
	mustStable(t, db, p, end)
}

func TestRecursiveCascadeStepAndIndependent(t *testing.T) {
	const n = 10
	db := chainDB(n)
	p := reachabilityProgram(t, db)

	step, _, err := RunStepGreedy(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if step.Size() != n {
		t.Fatalf("greedy step size = %d, want %d", step.Size(), n)
	}
	mustStable(t, db, p, step)

	// Algorithm 1 on a recursive program: the positivized provenance is
	// still a single finite pass; the minimum repair deletes node 1 and
	// then must cascade (rule 1's clauses are implications), OR cut the
	// chain by deleting an Edge... Edges are not deletable by any rule,
	// but independent semantics may delete them anyway — deleting the
	// first edge (1,2) stops the cascade at cost 2 (node 1 + edge).
	ind, _, err := RunIndependent(db, p, IndependentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ind.Size() != 2 {
		t.Fatalf("ind = %v, want node 1 plus one edge", ind.Keys())
	}
	mustStable(t, db, p, ind)
	by := ind.ByRelation()
	if by["Node"] != 1 || by["Edge"] != 1 {
		t.Fatalf("ind should delete one node and one edge: %v", by)
	}
}

func TestRecursiveCycleTerminates(t *testing.T) {
	// A cycle: deletion propagates all the way around and stops (delta
	// relations are sets; the fixpoint is reached when everything on the
	// cycle is deleted).
	s := engine.NewSchema()
	s.MustAddRelation("Node", "n", "id")
	s.MustAddRelation("Edge", "e", "src", "dst")
	db := engine.NewDatabase(s)
	const n = 6
	for i := 1; i <= n; i++ {
		db.MustInsert("Node", engine.Int(i))
		db.MustInsert("Edge", engine.Int(i), engine.Int(i%n+1))
	}
	p, err := datalog.ParseAndValidate(`
(0) Delta_Node(x) :- Node(x), x = 3.
(1) Delta_Node(y) :- Node(y), Edge(x, y), Delta_Node(x).
`, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, sem := range AllSemantics {
		res, _, err := Run(db, p, sem)
		if err != nil {
			t.Fatalf("%s: %v", sem, err)
		}
		mustStable(t, db, p, res)
		if sem == SemEnd || sem == SemStage || sem == SemStep {
			if res.ByRelation()["Node"] != n {
				t.Fatalf("%s should delete the whole cycle: %v", sem, res.ByRelation())
			}
		}
	}
}

func TestMutualRecursionAllSemantics(t *testing.T) {
	// Two mutually recursive relations: deleting an R propagates to S and
	// back. All four semantics must terminate and stabilize.
	s := engine.NewSchema()
	s.MustAddRelation("R", "r", "a")
	s.MustAddRelation("S", "s", "a")
	db := engine.NewDatabase(s)
	for i := 1; i <= 5; i++ {
		db.MustInsert("R", engine.Int(i))
		db.MustInsert("S", engine.Int(i))
	}
	p, err := datalog.ParseAndValidate(`
(0) Delta_R(x) :- R(x), x = 1.
(1) Delta_S(x) :- S(x), Delta_R(x).
(2) Delta_R(y) :- R(y), Delta_S(x), y = x + 0.
`, s)
	// The "+" syntax is not supported; use a join-free equivalent instead.
	if err != nil {
		p, err = datalog.ParseAndValidate(`
(0) Delta_R(x) :- R(x), x = 1.
(1) Delta_S(x) :- S(x), Delta_R(x).
(2) Delta_R(x) :- R(x), Delta_S(x).
`, s)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !p.Recursive {
		t.Fatal("program should be recursive")
	}
	for _, sem := range AllSemantics {
		res, _, err := Run(db, p, sem)
		if err != nil {
			t.Fatalf("%s: %v", sem, err)
		}
		mustStable(t, db, p, res)
	}
}

func TestRecursiveDeepChainScales(t *testing.T) {
	// A 400-deep recursion: exercises round bookkeeping and the
	// maxRounds guard headroom.
	const n = 400
	db := chainDB(n)
	p := reachabilityProgram(t, db)
	end, _, err := RunEnd(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if end.Size() != n || end.Rounds != n {
		t.Fatalf("deep chain: size %d rounds %d, want %d/%d", end.Size(), end.Rounds, n, n)
	}
}

func TestRecursiveProvenanceLayers(t *testing.T) {
	// Algorithm 2's layers on a recursive program equal the cascade depth.
	const n = 7
	db := chainDB(n)
	p := reachabilityProgram(t, db)
	res, _, err := RunStepGreedy(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != n {
		t.Fatalf("layers = %d, want %d", res.Rounds, n)
	}
	// Explanations trace the whole chain.
	ex, err := NewExplainer(db, p)
	if err != nil {
		t.Fatal(err)
	}
	lastKey := engine.ContentKey("Node", []engine.Value{engine.Int(n)})
	e := ex.Explain(lastKey)
	depth := 0
	for cur := e; cur != nil; {
		depth++
		if len(cur.After) == 0 {
			cur = nil
		} else {
			cur = cur.After[0]
		}
	}
	if depth != n {
		t.Fatalf("explanation depth = %d, want %d", depth, n)
	}
	_ = fmt.Sprint(e)
}
