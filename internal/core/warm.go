package core

import (
	"context"
	"time"

	"repro/internal/datalog"
	"repro/internal/engine"
)

// Warm-start execution over versioned bases.
//
// A serving layer answering repairs over mutable sessions knows exactly
// how one version differs from the previous one: which relations an
// update batch touched and which tuples it inserted. Two facts about
// delta programs turn that knowledge into skipped work, both relying on
// rule bodies being positive conjunctions (atoms plus comparisons — the
// language has no negation):
//
//  1. Read-set pruning. Every executor's output is a function of the
//     contents of the relations some rule body references (the prepared
//     read-set). An update confined to other relations cannot change the
//     stabilizing set — and because untouched relations share their
//     frozen cores across versions, the previous result's tuples are
//     live in the new version verbatim. The previous result is the new
//     result.
//  2. Insert-seeded probing. From a stable state, deletions keep the
//     database stable (shrinking a positive body's sources never creates
//     assignments), and any assignment created by an update must bind at
//     least one inserted tuple at some base atom. Stability after an
//     update therefore needs only the insert-seeded passes — pass 0 of a
//     seminaive evaluation whose frontier is the inserted tuples —
//     instead of a full re-derivation. The same argument lets
//     end-semantics derivation continue from the previous fixpoint after
//     insert-only updates.
//
// Both paths are exact: the update-stream equivalence suite
// (internal/gen) asserts incremental results are identical to
// from-scratch recomputation at every version, for all four semantics.

// WarmStart carries incremental-update hints into RunWith and
// CheckStableWarm. The caller (normally internal/server) is responsible
// for the hints' truth: PrevResult/PrevStable must describe an earlier
// version of the same database lineage, and ChangedRels/Inserted must
// cover every base change between that version and the database being
// run. Hints that do not apply to the requested semantics are ignored and
// the run falls back to a full computation, so a WarmStart never changes
// results — only how much work reproducing them takes.
type WarmStart struct {
	// PrevResult is the result computed for the same semantics at the
	// earlier version, enabling read-set pruning (all semantics) and
	// fixpoint continuation (end semantics, insert-only updates).
	PrevResult *Result
	// PrevStable, for CheckStableWarm: the earlier version was verified
	// stable.
	PrevStable bool
	// ChangedRels lists the base relations modified between the earlier
	// version and now.
	ChangedRels []string
	// Inserted holds the tuples the updates inserted, per relation (the
	// interned objects from engine.ApplyInfo.InsertedTuples).
	Inserted map[string][]*engine.Tuple
	// Deleted holds the tuples the updates deleted, per relation (the
	// objects from engine.ApplyInfo.DeletedTuples). The end-semantics
	// delete continuation over-deletes their downward closure from the
	// previous fixpoint, and the cached-result change probes seed their
	// sweeps with them.
	Deleted map[string][]*engine.Tuple
	// InsertOnly reports that the updates performed no deletions, the
	// precondition for continuing an end-semantics fixpoint without delete
	// propagation.
	InsertOnly bool
}

// touchesReadSet reports whether any changed relation is in the prepared
// read-set.
func (w *WarmStart) touchesReadSet(prep *datalog.Prepared) bool {
	return prep.ReadsAnyOf(w.ChangedRels)
}

// seedRelations materializes the inserted tuples as scratch relations
// keyed by relation name, the shape EvalInsertSeeded consumes. Tuples no
// longer live in db are dropped: across a multi-version hint range a
// tuple can be inserted at one version and deleted at a later one, and
// seeding a dead tuple would fabricate assignments that do not exist in
// the probed state (a later delete of the same content re-inserts a
// fresh tuple object, so liveness of the recorded object is exact).
func (w *WarmStart) seedRelations(db *engine.Database) map[string]*engine.Relation {
	seeds := make(map[string]*engine.Relation, len(w.Inserted))
	for rel, tuples := range w.Inserted {
		if len(tuples) == 0 {
			continue
		}
		live := db.Relation(rel)
		rs := db.Schema.Relation(rel)
		if rs == nil || live == nil {
			continue
		}
		var r *engine.Relation
		for _, t := range tuples {
			if !live.ContainsTuple(t) {
				continue // inserted then deleted within the hint range
			}
			if r == nil {
				r = engine.NewScratchRelation(rel, rs.Arity())
			}
			r.Insert(t)
		}
		if r != nil {
			seeds[rel] = r
		}
	}
	return seeds
}

// runWarmShortcut attempts the read-set-pruning shortcut: when no changed
// relation is in the prepared read-set, the previous result is replayed
// onto a fork of the new version without any derivation. handled reports
// whether the shortcut applied; when false the caller must run the full
// executor. The replay verifies every previous deletion is still live —
// a failed replay means the caller's hints were wrong, and the run falls
// back to a full computation rather than trusting them.
func runWarmShortcut(db *engine.Database, prep *datalog.Prepared, sem Semantics, w *WarmStart) (*Result, *engine.Database, bool) {
	if w == nil || w.PrevResult == nil || w.PrevResult.Semantics != sem || w.touchesReadSet(prep) {
		return nil, nil, false
	}
	return replayPrevResult(db.Fork(), w.PrevResult, time.Now())
}

// replayPrevResult re-applies a previous version's result onto a fork of
// the new version: every previously deleted tuple is moved base → delta
// again, and the result metadata is copied. ok is false when a previous
// deletion is no longer live — a stale hint; the caller then runs the
// full executor instead of trusting the hints.
func replayPrevResult(work *engine.Database, prev *Result, start time.Time) (*Result, *engine.Database, bool) {
	for _, t := range prev.Deleted {
		if !work.DeleteTupleToDelta(t) {
			return nil, nil, false // stale hint: recompute from scratch
		}
	}
	res := newResult(prev.Semantics, append([]*engine.Tuple(nil), prev.Deleted...))
	res.Rounds = prev.Rounds
	res.Optimal = prev.Optimal
	res.SolverNodes = prev.SolverNodes
	res.FormulaClauses = prev.FormulaClauses
	res.GraphAssignments = prev.GraphAssignments
	res.RepairCost = prev.RepairCost
	res.Timing = Breakdown{Update: time.Since(start)}
	return res, work, true
}

// runChangeProbe attempts cached-result replay for the semantics without
// an incremental executor (stage, step, independent) after an update
// batch that does touch the read-set. It probes whether any rule
// assignment binds any changed tuple: every atom position is seeded in
// turn with the batch's deleted and still-live inserted tuples, while
// every other position reads live ∪ deleted — a superset of both the
// previous and the current version's contents at every atom (base atoms:
// rows absent from both are irrelevant; delta atoms: whatever subset of
// base-or-deleted content an executor ranges over). Zero probe hits mean
// no assignment of any rule, under any executor's sources, binds a
// changed tuple, so the two versions have identical assignment universes
// — and identical enumeration order, because unchanged tuples keep their
// relative storage and index order across Apply (deletions hide rows,
// insertions append). Every executor is a deterministic function of that
// enumeration — including the variable numbering of Algorithm 1's
// formula and the tie-breaking of Algorithm 2's greedy — so the previous
// result is reproduced verbatim and is replayed without running the
// executor. Any probe hit falls back to the full executor; the probe's
// cost is bounded by the update batch and its join neighborhood, not the
// database.
func runChangeProbe(ctx context.Context, db *engine.Database, prep *datalog.Prepared, sem Semantics, w *WarmStart) (*Result, *engine.Database, bool, error) {
	if w == nil || w.PrevResult == nil || w.PrevResult.Semantics != sem {
		return nil, nil, false, nil
	}
	start := time.Now()
	work := db.Fork()
	schema := work.Schema

	// Seeds: the deleted tuples plus the still-live inserted tuples.
	// Folded multi-version hints may record tuples inserted then deleted
	// inside the range (in neither endpoint version); they stay in the
	// delete view, which only over-approximates — a spurious hit costs a
	// fallback, never correctness.
	deletes := groupByRelation(schema, w.Deleted)
	seeds := make(map[string]*engine.Relation, len(deletes))
	for rel, r := range deletes {
		seeds[rel] = r.Clone()
	}
	for rel, r := range w.seedRelations(work) {
		dst := seeds[rel]
		if dst == nil {
			seeds[rel] = r
			continue
		}
		r.Scan(func(t *engine.Tuple) bool {
			dst.Insert(t)
			return true
		})
	}
	if len(seeds) == 0 {
		// Every change was an insert-then-delete no-op inside the hint
		// range; both endpoint versions are identical.
		return probeReplay(work, w.PrevResult, start)
	}

	ec := prep.AcquireContext()
	defer prep.ReleaseContext(ec)
	for _, pr := range prep.Rules {
		if err := ctxErr(ctx); err != nil {
			return nil, nil, false, err
		}
		rule := pr.Rule
		src := func(bi int) datalog.AtomSource {
			rel := rule.Body[bi].Rel
			if d := deletes[rel]; d != nil {
				return datalog.AtomSource{work.Relation(rel), d}
			}
			return datalog.AtomSource{work.Relation(rel)}
		}
		hit := false
		err := pr.EvalChangeSeeded(seeds, false, src, ec, func(*datalog.Assignment) bool {
			hit = true
			return false
		})
		if err != nil {
			return nil, nil, false, err
		}
		if hit {
			return nil, nil, false, nil // the change interacts: full run
		}
	}
	return probeReplay(work, w.PrevResult, start)
}

// probeReplay adapts replayPrevResult's three-value shape to the
// (handled, error) dispatch convention of the warm executors.
func probeReplay(work *engine.Database, prev *Result, start time.Time) (*Result, *engine.Database, bool, error) {
	res, db, ok := replayPrevResult(work, prev, start)
	return res, db, ok, nil
}

// groupByRelation materializes per-relation tuple lists as scratch
// relations, dropping empty groups.
func groupByRelation(schema *engine.Schema, lists map[string][]*engine.Tuple) map[string]*engine.Relation {
	out := make(map[string]*engine.Relation, len(lists))
	for rel, tuples := range lists {
		if len(tuples) == 0 {
			continue
		}
		rs := schema.Relation(rel)
		if rs == nil {
			continue
		}
		r := engine.NewScratchRelation(rel, rs.Arity())
		for _, t := range tuples {
			r.Insert(t)
		}
		out[rel] = r
	}
	return out
}

// CheckStableWarm is CheckStableWarmCtx without cancellation.
func CheckStableWarm(db *engine.Database, prep *datalog.Prepared, w *WarmStart) (bool, error) {
	return CheckStableWarmCtx(nil, db, prep, w)
}

// CheckStableWarmParCtx is CheckStableWarmCtx whose cold path — no usable
// hints, so a full stability probe — fans the per-rule probes out over par
// workers (CheckStableParCtx). The warm path stays sequential: it probes
// only the insert-seeded passes, whose work is bounded by the update batch
// rather than the session.
func CheckStableWarmParCtx(ctx context.Context, db *engine.Database, prep *datalog.Prepared, w *WarmStart, par int) (bool, error) {
	if w == nil || !w.PrevStable {
		return CheckStableParCtx(ctx, db, prep, par)
	}
	return CheckStableWarmCtx(ctx, db, prep, w)
}

// CheckStableWarmCtx reports whether db is stable (Def. 3.12), using
// incremental hints to avoid a full probe. When the hints say an earlier
// version was stable, the new state can only be unstable through an
// assignment binding at least one freshly inserted tuple (rule bodies are
// positive; deletions never create assignments), so:
//
//   - an update outside the prepared read-set, or one that only deleted,
//     needs no evaluation at all;
//   - otherwise only the rules reading an inserted-into relation are
//     probed, and only through their insert-seeded passes.
//
// Without usable hints (nil w, or the earlier version was not known
// stable) this is exactly CheckStablePCtx.
func CheckStableWarmCtx(ctx context.Context, db *engine.Database, prep *datalog.Prepared, w *WarmStart) (bool, error) {
	if w == nil || !w.PrevStable {
		return CheckStablePCtx(ctx, db, prep)
	}
	if !w.touchesReadSet(prep) {
		return true, nil
	}
	seeds := w.seedRelations(db)
	if len(seeds) == 0 {
		// Deletion-only update from a stable state: still stable.
		return true, nil
	}
	ec := prep.AcquireContext()
	defer prep.ReleaseContext(ec)
	for _, pr := range prep.Rules {
		if !pr.ReadsAny(func(rel string) bool { return seeds[rel] != nil }) {
			continue
		}
		if err := ctxErr(ctx); err != nil {
			return false, err
		}
		found := false
		err := pr.EvalInsertSeeded(db, seeds, ec, func(*datalog.Assignment) bool {
			found = true
			return false
		})
		if err != nil {
			return false, err
		}
		if found {
			return false, nil
		}
	}
	return true, nil
}
