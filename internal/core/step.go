package core

import (
	"cmp"
	"context"
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"time"

	"repro/internal/datalog"
	"repro/internal/engine"
)

// RunStepGreedy computes a step-semantics stabilizing set with Algorithm 2:
// build the provenance graph of the end-semantics run, compute each tuple's
// benefit (assignments it participates in minus assignments its delta
// participates in), then traverse the graph layer by layer greedily adding
// the highest-benefit tuple and pruning delta tuples that can no longer be
// derived.
//
// Finding Step(P, D) — the minimum over all step executions — is NP-hard
// (Prop. 4.2); the greedy output is a stabilizing set realizable by a step
// execution, matching the paper's heuristic. The returned database is the
// repaired instance.
func RunStepGreedy(db *engine.Database, p *datalog.Program) (*Result, *engine.Database, error) {
	return RunStepGreedyWithOptions(db, p, StepGreedyOptions{})
}

// StepGreedyOptions configures Algorithm 2.
type StepGreedyOptions struct {
	// IgnoreBenefits disables the benefit-ordered selection: tuples are
	// picked in derivation order within each layer instead. Exists for the
	// benefit-heuristic ablation; the output is still a valid stabilizing
	// set, typically larger.
	IgnoreBenefits bool
}

// RunStepGreedyWithOptions is RunStepGreedy with explicit options.
func RunStepGreedyWithOptions(db *engine.Database, p *datalog.Program, opts StepGreedyOptions) (*Result, *engine.Database, error) {
	prep, err := datalog.Prepare(p, db.Schema)
	if err != nil {
		return nil, nil, err
	}
	return runStepGreedy(nil, db, prep, 0, opts)
}

func runStepGreedy(ctx context.Context, db *engine.Database, prep *datalog.Prepared, par int, opts StepGreedyOptions) (*Result, *engine.Database, error) {
	// Phase 1 (Eval): end run with provenance capture.
	endRes, _, graph, err := runEndCaptured(ctx, db, prep, true, par, 0)
	if err != nil {
		return nil, nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, nil, err
	}

	// Phase 2 (ProcessProv): flatten the graph into indexed clauses and
	// compute benefits. Everything is keyed by interned tuple IDs; no
	// content keys exist on this path.
	ppStart := time.Now()
	type flatClause struct {
		head     engine.TupleID
		pos, neg []engine.TupleID
	}
	var clauses []flatClause
	headAlive := make(map[engine.TupleID]int, len(graph.Heads))
	posIdx := make(map[engine.TupleID][]int32) // tuple -> clause ids where it ∈ Pos, ≠ head
	negIdx := make(map[engine.TupleID][]int32) // tuple -> clause ids where it ∈ Neg
	for _, h := range graph.Heads {
		for _, c := range graph.Assignments[h] {
			ci := int32(len(clauses))
			clauses = append(clauses, flatClause{head: h, pos: c.Pos, neg: c.Neg})
			headAlive[h]++
			for _, id := range c.Pos {
				if id != h {
					posIdx[id] = append(posIdx[id], ci)
				}
			}
			for _, id := range c.Neg {
				negIdx[id] = append(negIdx[id], ci)
			}
		}
	}
	benefits := graph.Benefits()

	// Pre-sort each layer's heads by (benefit desc, derivation order asc).
	layerOrder := make([][]engine.TupleID, graph.NumLayers+1)
	derivIdx := make(map[engine.TupleID]int, len(graph.Heads))
	for i, h := range graph.Heads {
		derivIdx[h] = i
		l := graph.Layer[h]
		layerOrder[l] = append(layerOrder[l], h)
	}
	if !opts.IgnoreBenefits {
		for _, heads := range layerOrder {
			sort.SliceStable(heads, func(i, j int) bool {
				bi, bj := benefits[heads[i]], benefits[heads[j]]
				if bi != bj {
					return bi > bj
				}
				return derivIdx[heads[i]] < derivIdx[heads[j]]
			})
		}
	}
	ppDur := time.Since(ppStart)
	if err := ctxErr(ctx); err != nil {
		return nil, nil, err
	}

	// Phase 3 (Traverse): greedy selection with cascading pruning.
	trStart := time.Now()
	inS := make(map[engine.TupleID]bool)
	removed := make(map[engine.TupleID]bool)
	void := make([]bool, len(clauses))
	var order []engine.TupleID

	var voidClause func(ci int32)
	var removeHead func(h engine.TupleID)
	voidClause = func(ci int32) {
		if void[ci] {
			return
		}
		void[ci] = true
		h := clauses[ci].head
		headAlive[h]--
		if headAlive[h] == 0 && !inS[h] && !removed[h] {
			removeHead(h)
		}
	}
	removeHead = func(h engine.TupleID) {
		removed[h] = true
		// Clauses requiring ∆(h) as a delta dependency are now void
		// (h was neither deleted nor remains derivable).
		for _, ci := range negIdx[h] {
			voidClause(ci)
		}
	}
	addToS := func(t engine.TupleID) {
		inS[t] = true
		order = append(order, t)
		// Deleting t voids every assignment using t positively (other than
		// deriving ∆(t) itself).
		for _, ci := range posIdx[t] {
			voidClause(ci)
		}
	}

	for layer := 1; layer <= graph.NumLayers; layer++ {
		for _, h := range layerOrder[layer] {
			if inS[h] || removed[h] {
				continue
			}
			addToS(h)
		}
	}
	trDur := time.Since(trStart)

	// Materialize the result and the repaired database. Tuples resolve by
	// ID against the input database; the fork shares tuple pointers.
	updStart := time.Now()
	work := db.Fork()
	deleted := make([]*engine.Tuple, 0, len(order))
	for _, id := range order {
		t := db.LookupID(id)
		if t == nil || !work.DeleteTupleToDelta(t) {
			return nil, nil, fmt.Errorf("core: step semantics selected unknown tuple t%d", id)
		}
		deleted = append(deleted, t)
	}
	updDur := time.Since(updStart)

	res := newResult(SemStep, deleted)
	res.Rounds = graph.NumLayers
	res.GraphAssignments = len(clauses)
	res.Timing = Breakdown{
		Eval:        endRes.Timing.Eval,
		ProcessProv: ppDur,
		Traverse:    trDur,
		Update:      updDur,
	}
	return res, work, nil
}

// StepExhaustiveOptions bounds the exhaustive search.
type StepExhaustiveOptions struct {
	// MaxStates caps the number of distinct deletion states explored;
	// 0 means DefaultMaxStepStates. Exceeding the cap returns an error.
	MaxStates int
	// Ctx, when non-nil, cancels the search: it is checked once per
	// explored state.
	Ctx context.Context
}

// DefaultMaxStepStates is the exhaustive search's default state budget.
const DefaultMaxStepStates = 250_000

// stateSig condenses a sorted deletion set into a 64-bit signature for
// visited-state dedup, mixing each tuple ID through an FNV-1a/avalanche
// round. Compared with the former binary-string key this removes the
// per-candidate string allocation and shrinks the visited set by ~an order
// of magnitude. The signature is a hash, not an exact key: two distinct
// states collide with probability ~n²/2⁶⁴ — about 10⁻⁹ at the default
// 250 000-state budget — which is negligible for the small validation
// instances the exhaustive search exists for.
func stateSig(tuples []*engine.Tuple) uint64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for _, t := range tuples {
		h ^= uint64(t.TID)
		h *= 1099511628211 // FNV-1a prime
	}
	// Final avalanche (splitmix64 tail) so near-identical sets spread.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// RunStepExhaustive computes the true Step(P, D): the minimum-size deletion
// set over all step executions (Def. 3.5), by breadth-first search over
// deletion states. Exponential — only usable on small databases; it exists
// to validate the greedy Algorithm 2 and for the paper's small examples.
func RunStepExhaustive(db *engine.Database, p *datalog.Program, opts StepExhaustiveOptions) (*Result, *engine.Database, error) {
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStepStates
	}
	prep, err := datalog.Prepare(p, db.Schema)
	if err != nil {
		return nil, nil, err
	}
	ctx := prep.AcquireContext()
	defer prep.ReleaseContext(ctx)

	type state struct {
		tuples []*engine.Tuple // deletion set, sorted by TupleID
	}

	start := time.Now()
	// Freeze the input once; each explored state then forks the shared
	// frozen base and replays its deletion set, costing O(deletions so
	// far) instead of the former O(database) deep clone per state — the
	// per-state indexes are the snapshot's warm ones, built once.
	snap := db.Freeze()
	visited := map[uint64]bool{stateSig(nil): true}
	frontier := []state{{}}

	for len(frontier) > 0 {
		var next []state
		for _, st := range frontier {
			if err := ctxErr(opts.Ctx); err != nil {
				return nil, nil, err
			}
			// Rebuild the database at this state. Tuple pointers are shared
			// between db and its forks, so the set applies to any fork.
			work := snap.Fork()
			for _, t := range st.tuples {
				work.DeleteTupleToDelta(t)
			}
			// Enumerate all current assignments; collect candidate heads.
			headSet := make(map[engine.TupleID]bool)
			var heads []*engine.Tuple
			for _, pr := range prep.Rules {
				err := pr.EvalOperational(work, ctx, func(a *datalog.Assignment) bool {
					h := a.Head()
					if !headSet[h.TID] {
						headSet[h.TID] = true
						heads = append(heads, h)
					}
					return true
				})
				if err != nil {
					return nil, nil, err
				}
			}
			if len(heads) == 0 {
				// Stable: BFS guarantees minimal |S| among step executions.
				res := newResult(SemStep, append([]*engine.Tuple(nil), st.tuples...))
				res.Optimal = true
				res.Rounds = len(st.tuples)
				res.Timing = Breakdown{Eval: time.Since(start)}
				return res, work, nil
			}
			for _, h := range heads {
				tuples := make([]*engine.Tuple, 0, len(st.tuples)+1)
				tuples = append(tuples, st.tuples...)
				tuples = append(tuples, h)
				slices.SortFunc(tuples, func(a, b *engine.Tuple) int {
					return cmp.Compare(a.TID, b.TID)
				})
				cand := state{tuples: tuples}
				sk := stateSig(cand.tuples)
				if visited[sk] {
					continue
				}
				if len(visited) >= maxStates {
					return nil, nil, fmt.Errorf("core: exhaustive step search exceeded %d states", maxStates)
				}
				visited[sk] = true
				next = append(next, cand)
			}
		}
		frontier = next
	}
	return nil, nil, fmt.Errorf("core: exhaustive step search exhausted without finding a stable state")
}

// RunStepRandom simulates one nondeterministic step execution (Def. 3.5):
// repeatedly pick a uniformly random satisfying assignment, delete its head,
// update the database, and continue until stable. Models what an arbitrary
// trigger-firing order can produce; the result is a stabilizing set but not
// necessarily a small one.
func RunStepRandom(db *engine.Database, p *datalog.Program, seed int64) (*Result, *engine.Database, error) {
	prep, err := datalog.Prepare(p, db.Schema)
	if err != nil {
		return nil, nil, err
	}
	ctx := prep.AcquireContext()
	defer prep.ReleaseContext(ctx)
	rng := rand.New(rand.NewSource(seed))
	work := db.Fork()
	start := time.Now()
	var deleted []*engine.Tuple
	for steps := 0; ; steps++ {
		if steps > db.TotalTuples()+1 {
			return nil, nil, fmt.Errorf("core: random step execution did not terminate")
		}
		var heads []*engine.Tuple
		headSet := make(map[engine.TupleID]bool)
		for _, pr := range prep.Rules {
			err := pr.EvalOperational(work, ctx, func(a *datalog.Assignment) bool {
				h := a.Head()
				if !headSet[h.TID] {
					headSet[h.TID] = true
					heads = append(heads, h)
				}
				return true
			})
			if err != nil {
				return nil, nil, err
			}
		}
		if len(heads) == 0 {
			break
		}
		h := heads[rng.Intn(len(heads))]
		deleted = append(deleted, h)
		work.DeleteTupleToDelta(h)
	}
	res := newResult(SemStep, deleted)
	res.Rounds = len(deleted)
	res.Timing = Breakdown{Eval: time.Since(start)}
	return res, work, nil
}
