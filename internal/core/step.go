package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/datalog"
	"repro/internal/engine"
)

// RunStepGreedy computes a step-semantics stabilizing set with Algorithm 2:
// build the provenance graph of the end-semantics run, compute each tuple's
// benefit (assignments it participates in minus assignments its delta
// participates in), then traverse the graph layer by layer greedily adding
// the highest-benefit tuple and pruning delta tuples that can no longer be
// derived.
//
// Finding Step(P, D) — the minimum over all step executions — is NP-hard
// (Prop. 4.2); the greedy output is a stabilizing set realizable by a step
// execution, matching the paper's heuristic. The returned database is the
// repaired instance.
func RunStepGreedy(db *engine.Database, p *datalog.Program) (*Result, *engine.Database, error) {
	return RunStepGreedyWithOptions(db, p, StepGreedyOptions{})
}

// StepGreedyOptions configures Algorithm 2.
type StepGreedyOptions struct {
	// IgnoreBenefits disables the benefit-ordered selection: tuples are
	// picked in derivation order within each layer instead. Exists for the
	// benefit-heuristic ablation; the output is still a valid stabilizing
	// set, typically larger.
	IgnoreBenefits bool
}

// RunStepGreedyWithOptions is RunStepGreedy with explicit options.
func RunStepGreedyWithOptions(db *engine.Database, p *datalog.Program, opts StepGreedyOptions) (*Result, *engine.Database, error) {
	// Phase 1 (Eval): end run with provenance capture.
	endRes, _, graph, err := runEndCaptured(db, p, true)
	if err != nil {
		return nil, nil, err
	}

	// Phase 2 (ProcessProv): flatten the graph into indexed clauses and
	// compute benefits.
	ppStart := time.Now()
	type flatClause struct {
		head     string
		pos, neg []string
	}
	var clauses []flatClause
	headAlive := make(map[string]int, len(graph.Heads))
	posIdx := make(map[string][]int) // tuple key -> clause ids where key ∈ Pos, key ≠ head
	negIdx := make(map[string][]int) // tuple key -> clause ids where key ∈ Neg
	for _, h := range graph.Heads {
		for _, c := range graph.Assignments[h] {
			ci := len(clauses)
			clauses = append(clauses, flatClause{head: h, pos: c.Pos, neg: c.Neg})
			headAlive[h]++
			for _, k := range c.Pos {
				if k != h {
					posIdx[k] = append(posIdx[k], ci)
				}
			}
			for _, k := range c.Neg {
				negIdx[k] = append(negIdx[k], ci)
			}
		}
	}
	benefits := graph.Benefits()

	// Pre-sort each layer's heads by (benefit desc, derivation order asc).
	layerOrder := make([][]string, graph.NumLayers+1)
	derivIdx := make(map[string]int, len(graph.Heads))
	for i, h := range graph.Heads {
		derivIdx[h] = i
		l := graph.Layer[h]
		layerOrder[l] = append(layerOrder[l], h)
	}
	if !opts.IgnoreBenefits {
		for _, heads := range layerOrder {
			sort.SliceStable(heads, func(i, j int) bool {
				bi, bj := benefits[heads[i]], benefits[heads[j]]
				if bi != bj {
					return bi > bj
				}
				return derivIdx[heads[i]] < derivIdx[heads[j]]
			})
		}
	}
	ppDur := time.Since(ppStart)

	// Phase 3 (Traverse): greedy selection with cascading pruning.
	trStart := time.Now()
	inS := make(map[string]bool)
	removed := make(map[string]bool)
	void := make([]bool, len(clauses))
	var order []string

	var voidClause func(ci int)
	var removeHead func(h string)
	voidClause = func(ci int) {
		if void[ci] {
			return
		}
		void[ci] = true
		h := clauses[ci].head
		headAlive[h]--
		if headAlive[h] == 0 && !inS[h] && !removed[h] {
			removeHead(h)
		}
	}
	removeHead = func(h string) {
		removed[h] = true
		// Clauses requiring ∆(h) as a delta dependency are now void
		// (h was neither deleted nor remains derivable).
		for _, ci := range negIdx[h] {
			voidClause(ci)
		}
	}
	addToS := func(t string) {
		inS[t] = true
		order = append(order, t)
		// Deleting t voids every assignment using t positively (other than
		// deriving ∆(t) itself).
		for _, ci := range posIdx[t] {
			voidClause(ci)
		}
	}

	for layer := 1; layer <= graph.NumLayers; layer++ {
		for _, h := range layerOrder[layer] {
			if inS[h] || removed[h] {
				continue
			}
			addToS(h)
		}
	}
	trDur := time.Since(trStart)

	// Materialize the result and the repaired database.
	updStart := time.Now()
	work := db.Clone()
	deleted := make([]*engine.Tuple, 0, len(order))
	for _, k := range order {
		t := work.Lookup(k)
		if t == nil {
			return nil, nil, fmt.Errorf("core: step semantics selected unknown tuple %s", k)
		}
		deleted = append(deleted, t)
		work.DeleteToDelta(k)
	}
	updDur := time.Since(updStart)

	res := newResult(SemStep, deleted)
	res.Rounds = graph.NumLayers
	res.GraphAssignments = len(clauses)
	res.Timing = Breakdown{
		Eval:        endRes.Timing.Eval,
		ProcessProv: ppDur,
		Traverse:    trDur,
		Update:      updDur,
	}
	return res, work, nil
}

// StepExhaustiveOptions bounds the exhaustive search.
type StepExhaustiveOptions struct {
	// MaxStates caps the number of distinct deletion states explored;
	// 0 means DefaultMaxStepStates. Exceeding the cap returns an error.
	MaxStates int
}

// DefaultMaxStepStates is the exhaustive search's default state budget.
const DefaultMaxStepStates = 250_000

// RunStepExhaustive computes the true Step(P, D): the minimum-size deletion
// set over all step executions (Def. 3.5), by breadth-first search over
// deletion states. Exponential — only usable on small databases; it exists
// to validate the greedy Algorithm 2 and for the paper's small examples.
func RunStepExhaustive(db *engine.Database, p *datalog.Program, opts StepExhaustiveOptions) (*Result, *engine.Database, error) {
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStepStates
	}

	type state struct {
		keys []string // sorted deletion set
	}
	stateKey := func(keys []string) string { return strings.Join(keys, "|") }

	start := time.Now()
	visited := map[string]bool{"": true}
	frontier := []state{{}}

	for len(frontier) > 0 {
		var next []state
		for _, st := range frontier {
			// Rebuild the database at this state.
			work := db.Clone()
			for _, k := range st.keys {
				work.DeleteToDelta(k)
			}
			// Enumerate all current assignments; collect candidate heads.
			headSet := make(map[string]bool)
			var heads []string
			for _, r := range p.Rules {
				err := datalog.EvalRuleOnDB(work, r, func(a *datalog.Assignment) bool {
					k := a.Head().Key()
					if !headSet[k] {
						headSet[k] = true
						heads = append(heads, k)
					}
					return true
				})
				if err != nil {
					return nil, nil, err
				}
			}
			if len(heads) == 0 {
				// Stable: BFS guarantees minimal |S| among step executions.
				deleted := make([]*engine.Tuple, 0, len(st.keys))
				for _, k := range st.keys {
					deleted = append(deleted, work.Lookup(k))
				}
				res := newResult(SemStep, deleted)
				res.Optimal = true
				res.Rounds = len(st.keys)
				res.Timing = Breakdown{Eval: time.Since(start)}
				return res, work, nil
			}
			for _, h := range heads {
				keys := make([]string, 0, len(st.keys)+1)
				keys = append(keys, st.keys...)
				keys = append(keys, h)
				sort.Strings(keys)
				sk := stateKey(keys)
				if visited[sk] {
					continue
				}
				if len(visited) >= maxStates {
					return nil, nil, fmt.Errorf("core: exhaustive step search exceeded %d states", maxStates)
				}
				visited[sk] = true
				next = append(next, state{keys: keys})
			}
		}
		frontier = next
	}
	return nil, nil, fmt.Errorf("core: exhaustive step search exhausted without finding a stable state")
}

// RunStepRandom simulates one nondeterministic step execution (Def. 3.5):
// repeatedly pick a uniformly random satisfying assignment, delete its head,
// update the database, and continue until stable. Models what an arbitrary
// trigger-firing order can produce; the result is a stabilizing set but not
// necessarily a small one.
func RunStepRandom(db *engine.Database, p *datalog.Program, seed int64) (*Result, *engine.Database, error) {
	rng := rand.New(rand.NewSource(seed))
	work := db.Clone()
	start := time.Now()
	var deleted []*engine.Tuple
	for steps := 0; ; steps++ {
		if steps > db.TotalTuples()+1 {
			return nil, nil, fmt.Errorf("core: random step execution did not terminate")
		}
		var heads []string
		headSet := make(map[string]bool)
		for _, r := range p.Rules {
			err := datalog.EvalRuleOnDB(work, r, func(a *datalog.Assignment) bool {
				k := a.Head().Key()
				if !headSet[k] {
					headSet[k] = true
					heads = append(heads, k)
				}
				return true
			})
			if err != nil {
				return nil, nil, err
			}
		}
		if len(heads) == 0 {
			break
		}
		k := heads[rng.Intn(len(heads))]
		deleted = append(deleted, work.Lookup(k))
		work.DeleteToDelta(k)
	}
	res := newResult(SemStep, deleted)
	res.Rounds = len(deleted)
	res.Timing = Breakdown{Eval: time.Since(start)}
	return res, work, nil
}
