package core

import (
	"fmt"
	"testing"

	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/mas"
	"repro/internal/programs"
)

// runSharded executes one semantics sequentially and with hash-sharded
// derivation (4 shards, no size floor) over the same prepared program and
// checks the results are byte-identical — same set, same deletion order,
// same round count.
func runSharded(t *testing.T, label string, db *engine.Database, p *datalog.Program, prep *datalog.Prepared) {
	t.Helper()
	indOpts := IndependentOptions{MaxNodes: 150000}
	for _, sem := range AllSemantics {
		seq, _, err := RunWith(db, p, sem, Options{Prepared: prep, Independent: indOpts})
		if err != nil {
			t.Fatalf("%s/%s sequential: %v", label, sem, err)
		}
		shd, _, err := RunWith(db, p, sem, Options{Prepared: prep, Independent: indOpts, Parallelism: 4, ShardMinTuples: -1})
		if err != nil {
			t.Fatalf("%s/%s sharded: %v", label, sem, err)
		}
		assertIdentical(t, label, sem, seq, shd)
	}
}

// TestShardedDerivationMatchesSequentialMAS runs all 20 MAS programs with
// Parallelism: 4 and the shard size floor removed, asserting every
// semantics produces the same stabilizing set in the same deletion order
// as sequential execution — regardless of whether the co-partitioning
// analysis admits sharding (non-shardable programs must fall back
// cleanly). Run with -race to exercise the per-shard goroutines.
func TestShardedDerivationMatchesSequentialMAS(t *testing.T) {
	ds := mas.Generate(mas.Config{Scale: 0.01, Seed: 1})
	for n := 1; n <= 20; n++ {
		p, err := programs.MAS(n, ds)
		if err != nil {
			t.Fatal(err)
		}
		prep, err := datalog.Prepare(p, ds.DB.Schema)
		if err != nil {
			t.Fatal(err)
		}
		runSharded(t, fmt.Sprintf("MAS-%d", n), ds.DB, p, prep)
	}
}

// TestShardedDerivationMatchesSequentialRunningExample covers the paper's
// running example (Figure 1) under the same sharded-vs-sequential check.
func TestShardedDerivationMatchesSequentialRunningExample(t *testing.T) {
	db := programs.RunningExampleDB()
	p, err := programs.RunningExampleProgram()
	if err != nil {
		t.Fatal(err)
	}
	prep, err := datalog.Prepare(p, db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	runSharded(t, "running-example", db, p, prep)
}

// TestMASShardabilityClassification pins the co-partitioning verdict for
// every MAS program. The split is structural, so a change here means the
// analysis (or a program definition) changed — update deliberately.
// Programs whose rules join the derived relation on rotating or swapped
// columns (the citation/collaboration cascades) are not co-partitionable;
// the author/publication lookup shapes are.
func TestMASShardabilityClassification(t *testing.T) {
	wantShardable := map[int]bool{
		1: true, 2: true, 3: true, 4: true, 5: true,
		6: false, 7: false, 8: false, 9: false, 10: false,
		11: true, 12: true, 13: true, 14: true, 15: true,
		16: true, 17: true,
		18: false, 19: false, 20: false,
	}
	ds := mas.Generate(mas.Config{Scale: 0.01, Seed: 1})
	got := make(map[int]bool)
	for n := 1; n <= 20; n++ {
		p, err := programs.MAS(n, ds)
		if err != nil {
			t.Fatal(err)
		}
		prep, err := datalog.Prepare(p, ds.DB.Schema)
		if err != nil {
			t.Fatal(err)
		}
		got[n] = prep.Shardable()
	}
	for n := 1; n <= 20; n++ {
		if got[n] != wantShardable[n] {
			t.Errorf("MAS-%d shardable = %v, want %v (full map: %v)", n, got[n], wantShardable[n], got)
		}
	}
}

// TestShardedWarmContinuation covers the interaction of sharding with the
// end-semantics fixpoint continuation: after an insert-only update, the
// warm path seeds the frontier with the inserted tuples, and the sharded
// executor must partition those seeds by the same keys as the frozen
// cores. Both legs receive identical warm hints on the same lineage, so
// results must be byte-identical.
func TestShardedWarmContinuation(t *testing.T) {
	ds := mas.Generate(mas.Config{Scale: 0.01, Seed: 3})
	p, err := programs.MAS(15, ds)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := datalog.Prepare(p, ds.DB.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if !prep.Shardable() {
		t.Fatal("MAS-15 must be shardable for this test to exercise sharded warm continuation")
	}

	// Rebuild the dataset holding back a few rows of a read-set relation,
	// so re-inserting them is a genuine insert-only update on one lineage.
	var holdRel string
	for _, rs := range ds.DB.Schema.Relations {
		if prep.Reads(rs.Name) && ds.DB.Relation(rs.Name).Len() >= 4 {
			holdRel = rs.Name
			break
		}
	}
	if holdRel == "" {
		t.Fatal("no read-set relation with enough rows to hold back")
	}
	db := engine.NewDatabase(ds.DB.Schema)
	var heldBack [][]engine.Value
	for _, rs := range ds.DB.Schema.Relations {
		rows := ds.DB.Relation(rs.Name).Tuples()
		for i, tp := range rows {
			if rs.Name == holdRel && i >= len(rows)-2 {
				heldBack = append(heldBack, tp.Vals)
				continue
			}
			db.MustInsert(rs.Name, tp.Vals...)
		}
	}

	prev, _, err := RunWith(db, p, SemEnd, Options{Prepared: prep})
	if err != nil {
		t.Fatal(err)
	}

	inserted := make([]*engine.Tuple, 0, len(heldBack))
	for _, vals := range heldBack {
		inserted = append(inserted, db.MustInsert(holdRel, vals...))
	}
	warm := &WarmStart{
		PrevResult:  prev,
		ChangedRels: []string{holdRel},
		Inserted:    map[string][]*engine.Tuple{holdRel: inserted},
		InsertOnly:  true,
	}

	seq, _, err := RunWith(db, p, SemEnd, Options{Prepared: prep, Warm: warm})
	if err != nil {
		t.Fatal(err)
	}
	shd, _, err := RunWith(db, p, SemEnd, Options{Prepared: prep, Warm: warm, Parallelism: 4, ShardMinTuples: -1})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "warm-continuation", SemEnd, seq, shd)

	// The warm answer must also match a cold run on the updated database.
	cold, _, err := RunWith(db, p, SemEnd, Options{Prepared: prep})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "warm-vs-cold", SemEnd, cold, seq)
}

// TestCheckStableParCtxMatchesSequential: the per-rule parallel stability
// probe must return the same verdict as the sequential probe, both on
// unstable inputs and on repaired (stable) instances.
func TestCheckStableParCtxMatchesSequential(t *testing.T) {
	ds := mas.Generate(mas.Config{Scale: 0.01, Seed: 1})
	for _, n := range []int{1, 10, 20} {
		p, err := programs.MAS(n, ds)
		if err != nil {
			t.Fatal(err)
		}
		prep, err := datalog.Prepare(p, ds.DB.Schema)
		if err != nil {
			t.Fatal(err)
		}
		seqStable, err := CheckStableP(ds.DB, prep)
		if err != nil {
			t.Fatal(err)
		}
		parStable, err := CheckStableParCtx(nil, ds.DB, prep, 4)
		if err != nil {
			t.Fatal(err)
		}
		if seqStable != parStable {
			t.Fatalf("MAS-%d: parallel stability %v, sequential %v", n, parStable, seqStable)
		}
		_, repaired, err := RunWith(ds.DB, p, SemEnd, Options{Prepared: prep})
		if err != nil {
			t.Fatal(err)
		}
		stable, err := CheckStableParCtx(nil, repaired, prep, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !stable {
			t.Fatalf("MAS-%d: repaired instance reported unstable by parallel probe", n)
		}
	}
}
