package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/programs"
)

// TestRunWithCanceledContext: every executor honors Options.Ctx — a
// pre-canceled context aborts with ctx.Err() before (or during) work, and
// a nil context means "never canceled".
func TestRunWithCanceledContext(t *testing.T) {
	db := programs.RunningExampleDB()
	p, err := programs.RunningExampleProgram()
	if err != nil {
		t.Fatal(err)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Minute))
	defer cancel2()

	for _, sem := range AllSemantics {
		if _, _, err := RunWith(db.Clone(), p, sem, Options{Ctx: canceled}); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: canceled ctx: got %v, want context.Canceled", sem, err)
		}
		if _, _, err := RunWith(db.Clone(), p, sem, Options{Ctx: expired}); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: expired deadline: got %v, want context.DeadlineExceeded", sem, err)
		}
		// A nil ctx (and a live ctx) must not change results.
		res, _, err := RunWith(db.Clone(), p, sem, Options{Ctx: context.Background()})
		if err != nil {
			t.Fatalf("%s: live ctx: %v", sem, err)
		}
		ref, _, err := Run(db.Clone(), p, sem)
		if err != nil {
			t.Fatal(err)
		}
		if !res.SameSet(ref) {
			t.Errorf("%s: ctx-aware run differs from plain run", sem)
		}
	}
}

// TestStepExhaustiveCancellation: the BFS honors StepExhaustiveOptions.Ctx
// per explored state.
func TestStepExhaustiveCancellation(t *testing.T) {
	db := programs.RunningExampleDB()
	p, err := programs.RunningExampleProgram()
	if err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := RunStepExhaustive(db.Clone(), p, StepExhaustiveOptions{Ctx: canceled}); !errors.Is(err, context.Canceled) {
		t.Errorf("exhaustive search: got %v, want context.Canceled", err)
	}
}
