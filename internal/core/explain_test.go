package core

import (
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/engine"
)

func TestExplainRunningExample(t *testing.T) {
	db, p := academicDB(), academicProgram(t)
	ex, err := NewExplainer(db, p)
	if err != nil {
		t.Fatal(err)
	}
	// w1 (Writes(4,6)) was deleted because p1 was present and a2's
	// deletion enabled rule (3); a2's deletion traces back to g2.
	w1Key := engine.ContentKey("Writes", []engine.Value{engine.Int(4), engine.Int(6)})
	if !ex.Explainable(w1Key) {
		t.Fatal("w1 should be explainable")
	}
	e := ex.Explain(w1Key)
	if e == nil || e.Layer != 3 {
		t.Fatalf("w1 explanation = %+v", e)
	}
	if len(e.After) != 1 {
		t.Fatalf("w1 should depend on one deletion, got %d", len(e.After))
	}
	a2 := e.After[0]
	if a2.Layer != 2 || len(a2.After) != 1 {
		t.Fatalf("a2 explanation = %+v", a2)
	}
	g2 := a2.After[0]
	if g2.Layer != 1 || len(g2.After) != 0 {
		t.Fatalf("g2 explanation = %+v", g2)
	}
	if !strings.Contains(g2.Tuple, "Grant") {
		t.Fatalf("chain should bottom out at the grant: %s", g2.Tuple)
	}
	// Rendering is an indented tree naming all three layers.
	s := e.String()
	for _, want := range []string{"layer 3", "layer 2", "layer 1", "after:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestExplainUnderivableTuple(t *testing.T) {
	db, p := academicDB(), academicProgram(t)
	ex, err := NewExplainer(db, p)
	if err != nil {
		t.Fatal(err)
	}
	// AuthGrant tuples are never derived by any rule: independent
	// semantics deletes them, but there is no derivation to show.
	agKey := engine.ContentKey("AuthGrant", []engine.Value{engine.Int(4), engine.Int(2)})
	if ex.Explainable(agKey) {
		t.Fatal("ag2 must not be explainable")
	}
	if ex.Explain(agKey) != nil {
		t.Fatal("ag2 explanation should be nil")
	}
}

func TestExplainResultCoversAllSemantics(t *testing.T) {
	db, p := academicDB(), academicProgram(t)
	ex, err := NewExplainer(db, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, sem := range AllSemantics {
		res, _, err := Run(db, p, sem)
		if err != nil {
			t.Fatal(err)
		}
		entries := ex.ExplainResult(res)
		if len(entries) != res.Size() {
			t.Fatalf("%s: %d entries for %d deletions", sem, len(entries), res.Size())
		}
		for _, entry := range entries {
			derivable := ex.Explainable(entry.Tuple.Key())
			if derivable && entry.Explanation == nil {
				t.Fatalf("%s: derivable %s lacks explanation", sem, entry.Tuple.Key())
			}
			if !derivable && entry.Explanation != nil {
				t.Fatalf("%s: underivable %s has explanation", sem, entry.Tuple.Key())
			}
		}
	}
	// Every step/stage/end deletion must be explainable (all derivable).
	for _, sem := range []Semantics{SemStep, SemStage, SemEnd} {
		res, _, _ := Run(db, p, sem)
		for _, entry := range ex.ExplainResult(res) {
			if entry.Explanation == nil {
				t.Fatalf("%s deletion %s unexplained", sem, entry.Tuple.Key())
			}
		}
	}
}

func TestExplainRecursiveProgramTerminates(t *testing.T) {
	// Mutually recursive deletions: explanations must not loop.
	s := engine.NewSchema()
	s.MustAddRelation("R", "r", "a")
	s.MustAddRelation("S", "s", "a")
	db := engine.NewDatabase(s)
	db.MustInsert("R", engine.Int(1))
	db.MustInsert("S", engine.Int(1))
	p, err := datalog.ParseAndValidate(`
Delta_R(x) :- R(x).
Delta_S(x) :- S(x), Delta_R(x).
Delta_R(x) :- R(x), Delta_S(x).
`, s)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Recursive {
		t.Fatal("program should be flagged recursive")
	}
	ex, err := NewExplainer(db, p)
	if err != nil {
		t.Fatal(err)
	}
	e := ex.Explain(engine.ContentKey("S", []engine.Value{engine.Int(1)}))
	if e == nil {
		t.Fatal("S(1) deletion should be explainable")
	}
	if len(e.After) != 1 || e.After[0].Layer != 1 {
		t.Fatalf("S(1) should trace to the layer-1 R deletion: %+v", e)
	}
}
