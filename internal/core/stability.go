package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/datalog"
	"repro/internal/engine"
)

// CheckStable reports whether db is a stable database w.r.t. the program
// (Def. 3.12): no rule has a satisfying assignment over the current state
// (live bases joined with recorded deltas).
func CheckStable(db *engine.Database, p *datalog.Program) (bool, error) {
	prep, err := datalog.Prepare(p, db.Schema)
	if err != nil {
		return false, err
	}
	return CheckStableP(db, prep)
}

// CheckStableP is CheckStable over a prepared program: repeated stability
// probes (server loops, the step debugger) reuse the prepared plans and a
// pooled execution context instead of re-planning per call.
func CheckStableP(db *engine.Database, prep *datalog.Prepared) (bool, error) {
	return CheckStablePCtx(nil, db, prep)
}

// CheckStablePCtx is CheckStableP with per-request cancellation, checked
// before every rule probe; serving layers use it so a stability probe
// against a heavy session honors its deadline instead of holding an
// admission slot.
func CheckStablePCtx(ctx context.Context, db *engine.Database, prep *datalog.Prepared) (bool, error) {
	if err := prep.CompatibleWith(db.Schema); err != nil {
		return false, fmt.Errorf("core: %w", err)
	}
	ec := prep.AcquireContext()
	defer prep.ReleaseContext(ec)
	for _, pr := range prep.Rules {
		if err := ctxErr(ctx); err != nil {
			return false, err
		}
		ok, err := pr.HasAssignment(db, ec)
		if err != nil {
			return false, err
		}
		if ok {
			return false, nil
		}
	}
	return true, nil
}

// CheckStableParCtx is CheckStablePCtx with the per-rule probes fanned out
// over up to par workers. Rules are independent reads of the same state,
// so the verdict is identical to the sequential probe; with several rules
// over a large session the wall-clock approaches the slowest single rule.
// The prepared plans' index requirements are pre-built first (a lazy index
// build mid-probe would be a data race), which is why par <= 1 falls back
// to the sequential probe and its cheaper lazy indexing.
func CheckStableParCtx(ctx context.Context, db *engine.Database, prep *datalog.Prepared, par int) (bool, error) {
	if par <= 1 || len(prep.Rules) <= 1 {
		return CheckStablePCtx(ctx, db, prep)
	}
	if err := prep.CompatibleWith(db.Schema); err != nil {
		return false, fmt.Errorf("core: %w", err)
	}
	prep.WarmIndexes(db)
	var unstable atomic.Bool
	rules := make([]int, len(prep.Rules))
	for ri := range rules {
		rules[ri] = ri
	}
	errs := forEachRuleParallel(prep, par, rules,
		func(ri int, ec *datalog.ExecContext) error {
			if unstable.Load() {
				return nil // some rule already has an assignment: verdict set
			}
			if err := ctxErr(ctx); err != nil {
				return err
			}
			ok, err := prep.Rules[ri].HasAssignment(db, ec)
			if ok {
				unstable.Store(true)
			}
			return err
		})
	for _, err := range errs {
		if err != nil {
			return false, err
		}
	}
	return !unstable.Load(), nil
}

// FirstViolation returns one satisfying assignment witnessing instability,
// or nil when db is stable. Useful in error messages and tests.
func FirstViolation(db *engine.Database, p *datalog.Program) (*datalog.Assignment, error) {
	for _, r := range p.Rules {
		var witness *datalog.Assignment
		err := datalog.EvalRuleOnDB(db, r, func(a *datalog.Assignment) bool {
			witness = a
			return false
		})
		if err != nil {
			return nil, err
		}
		if witness != nil {
			return witness, nil
		}
	}
	return nil, nil
}

// IsStabilizing reports whether deleting the tuples with the given content
// keys from db (and adding their delta counterparts) yields a stable
// database (Def. 3.14). The input database is not modified.
func IsStabilizing(db *engine.Database, p *datalog.Program, keys []string) (bool, error) {
	work := db.Fork()
	for _, k := range keys {
		work.DeleteToDelta(k)
	}
	return CheckStable(work, p)
}

// Apply deletes the result's stabilizing set from a clone of db and returns
// the repaired database; it verifies stability and errors if the set does
// not stabilize (which would indicate an executor bug).
func Apply(db *engine.Database, p *datalog.Program, res *Result) (*engine.Database, error) {
	work := db.Fork()
	for _, t := range res.Deleted {
		work.DeleteTupleToDelta(t)
	}
	stable, err := CheckStable(work, p)
	if err != nil {
		return nil, err
	}
	if !stable {
		w, _ := FirstViolation(work, p)
		return nil, fmt.Errorf("core: %s result of size %d does not stabilize the database (witness: %v)",
			res.Semantics, res.Size(), w)
	}
	return work, nil
}
