package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/datalog"
	"repro/internal/engine"
)

// spaceKeys renders a repair space as the ordered list of per-repair key
// lists — the byte-identity currency of the determinism tests.
func spaceKeys(rs *RepairSpace) [][]string {
	out := make([][]string, len(rs.Repairs))
	for i, r := range rs.Repairs {
		out[i] = r.Keys()
	}
	return out
}

func TestEnumerateK1MatchesRunIndependent(t *testing.T) {
	db, p := academicDB(), academicProgram(t)
	single, _, err := RunIndependent(academicDB(), p, IndependentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	space, err := EnumerateRepairs(db, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if space.K() != 1 {
		t.Fatalf("k=1 returned %d repairs", space.K())
	}
	got := space.Repairs[0]
	if !reflect.DeepEqual(got.Keys(), single.Keys()) {
		t.Fatalf("k=1 repair %v != RunIndependent %v", got.Keys(), single.Keys())
	}
	if got.Optimal != single.Optimal || got.RepairCost != single.RepairCost ||
		got.SolverNodes != single.SolverNodes {
		t.Fatalf("k=1 diagnostics diverged: %+v vs %+v", got, single)
	}
	// k=1 classification is trivial: certain == possible == the repair.
	if !reflect.DeepEqual(keysOf(space.CertainlyDeleted()), single.Keys()) ||
		!reflect.DeepEqual(keysOf(space.PossiblyDeleted()), single.Keys()) {
		t.Fatal("k=1 classification must equal the single repair")
	}
}

func keysOf(ts []*engine.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Key()
	}
	return out
}

func TestEnumerateRunningExampleSpace(t *testing.T) {
	db, p := academicDB(), academicProgram(t)
	space, err := EnumerateRepairs(db, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !space.Optimal {
		t.Fatal("default budget should prove optimality on the running example")
	}
	if space.K() < 2 {
		t.Fatalf("running example has multiple minimal repairs, got %d", space.K())
	}
	seen := make(map[string]bool)
	var prevCost int64 = -1
	for i, res := range space.Repairs {
		// Distinct.
		key := ""
		for _, k := range res.Keys() {
			key += k + ";"
		}
		if seen[key] {
			t.Fatalf("repair %d duplicates an earlier one: %v", i, res.Keys())
		}
		seen[key] = true
		// Nondecreasing cost.
		if res.RepairCost < prevCost {
			t.Fatalf("repair %d cost %d < previous %d", i, res.RepairCost, prevCost)
		}
		prevCost = res.RepairCost
		// Stabilizing and deletion-only (Apply checks both: it deletes
		// exactly the result set and verifies stability).
		mustStable(t, db, p, res)
	}
	// Classification == brute force over the enumerated set.
	inter := make(map[engine.TupleID]int)
	union := make(map[engine.TupleID]bool)
	for _, res := range space.Repairs {
		for _, tp := range res.Deleted {
			inter[tp.TID]++
			union[tp.TID] = true
		}
	}
	var wantCertain, wantPossible int
	for _, n := range inter {
		if n == space.K() {
			wantCertain++
		}
	}
	wantPossible = len(union)
	if len(space.CertainlyDeleted()) != wantCertain {
		t.Fatalf("certainly-deleted %d, brute force %d", len(space.CertainlyDeleted()), wantCertain)
	}
	if len(space.PossiblyDeleted()) != wantPossible {
		t.Fatalf("possibly-deleted %d, brute force %d", len(space.PossiblyDeleted()), wantPossible)
	}
	for _, tp := range space.CertainlyDeleted() {
		if inter[tp.TID] != space.K() {
			t.Fatalf("%s marked certainly deleted but missing from some repair", tp.Key())
		}
	}
	for _, tp := range space.PossiblyDeleted() {
		if !union[tp.TID] {
			t.Fatalf("%s marked possibly deleted but deleted nowhere", tp.Key())
		}
	}
	// Mask consistency: certain ⊆ every repair's deletions, possible = union.
	for _, tp := range space.CertainlyDeleted() {
		for i, res := range space.Repairs {
			if !res.ContainsTuple(tp) {
				t.Fatalf("certainly-deleted %s absent from repair %d", tp.Key(), i)
			}
		}
	}
}

func TestEnumerateCardinalityOnly(t *testing.T) {
	db, p := academicDB(), academicProgram(t)
	space, err := EnumerateRepairsWith(db, p, Options{}, EnumerateOptions{K: MaxEnumRepairs, CardinalityOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if !space.Complete || !space.Optimal {
		t.Fatalf("cardinality band should complete within budget: %+v", space)
	}
	min := space.Repairs[0].RepairCost
	for i, res := range space.Repairs {
		if res.RepairCost != min {
			t.Fatalf("repair %d cost %d, want tie at %d", i, res.RepairCost, min)
		}
	}
	// The band is a prefix of the set-minimal enumeration.
	full, err := EnumerateRepairs(academicDB(), p, MaxEnumRepairs)
	if err != nil {
		t.Fatal(err)
	}
	ties := 0
	for _, res := range full.Repairs {
		if res.RepairCost == min {
			ties++
		}
	}
	if space.K() != ties {
		t.Fatalf("cardinality band %d repairs, set-minimal enumeration has %d ties", space.K(), ties)
	}
	if !reflect.DeepEqual(spaceKeys(space), spaceKeys(full)[:space.K()]) {
		t.Fatal("cardinality band is not a prefix of the set-minimal enumeration")
	}
}

// TestEnumerateDeterminism: the same database and k yield byte-identical
// repair lists across sequential, prepared, forked, and parallel
// execution, and across a save/load round trip.
func TestEnumerateDeterminism(t *testing.T) {
	p := academicProgram(t)
	ref, err := EnumerateRepairs(academicDB(), p, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := spaceKeys(ref)

	// Prepared plan.
	db := academicDB()
	prep, err := datalog.Prepare(p, db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EnumerateRepairsWith(db, p, Options{Prepared: prep}, EnumerateOptions{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spaceKeys(got), want) {
		t.Fatalf("prepared enumeration diverged:\n %v\n %v", spaceKeys(got), want)
	}

	// CoW fork of a frozen snapshot.
	base := academicDB()
	snap := base.Freeze()
	got, err = EnumerateRepairs(snap.Fork(), p, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spaceKeys(got), want) {
		t.Fatalf("forked enumeration diverged:\n %v\n %v", spaceKeys(got), want)
	}

	// Parallel rule evaluation.
	got, err = EnumerateRepairsWith(academicDB(), p, Options{Parallelism: 4}, EnumerateOptions{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spaceKeys(got), want) {
		t.Fatalf("parallel enumeration diverged:\n %v\n %v", spaceKeys(got), want)
	}

	// Save/load round trip.
	var buf bytes.Buffer
	if err := academicDB().Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := engine.LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := datalog.ParseAndValidate(p.String(), loaded.Schema)
	if err != nil {
		t.Fatal(err)
	}
	got, err = EnumerateRepairs(loaded, lp, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spaceKeys(got), want) {
		t.Fatalf("save/load enumeration diverged:\n %v\n %v", spaceKeys(got), want)
	}
}

// TestEnumerateBudgetTruncation: an exhausted solver budget must surface
// Optimal=false on the space and stop the enumeration early rather than
// return repairs in unproven order.
func TestEnumerateBudgetTruncation(t *testing.T) {
	db, p := academicDB(), academicProgram(t)
	space, err := EnumerateRepairsWith(db, p, Options{Independent: IndependentOptions{MaxNodes: 1}}, EnumerateOptions{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	if space.Optimal {
		t.Fatal("1-node budget reported Optimal=true")
	}
	if space.Complete {
		t.Fatal("truncated enumeration reported Complete")
	}
	last := space.Repairs[space.K()-1]
	if last.Optimal {
		t.Fatal("last repair of a truncated enumeration marked Optimal")
	}
	// Even best-effort repairs must stabilize.
	for _, res := range space.Repairs {
		mustStable(t, db, p, res)
	}
}

func TestEnumerateKClamping(t *testing.T) {
	if got := ClampEnumK(0); got != 1 {
		t.Fatalf("ClampEnumK(0) = %d", got)
	}
	if got := ClampEnumK(-3); got != 1 {
		t.Fatalf("ClampEnumK(-3) = %d", got)
	}
	if got := ClampEnumK(1000); got != MaxEnumRepairs {
		t.Fatalf("ClampEnumK(1000) = %d", got)
	}
	db, p := academicDB(), academicProgram(t)
	space, err := EnumerateRepairs(db, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if space.K() != 1 {
		t.Fatalf("K=0 returned %d repairs, want 1", space.K())
	}
}
