package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/provenance"
)

// The paper's introduction motivates the framework with users "left
// uncertain about why the tuples have been deleted" by trigger systems.
// This file provides that answer: derivation-tree explanations for deleted
// tuples, extracted from the provenance graph of the end-semantics run
// (§5's provenance machinery, repurposed for reporting).

// Explanation is one derivation of a deleted tuple: the rule-shaped clause
// that justified its deletion, with delta dependencies resolved
// recursively up to the initiating deletions.
type Explanation struct {
	// Tuple is the deleted tuple's content key.
	Tuple string
	// Layer is the derivation layer (1 = initiating deletions).
	Layer int
	// Because lists the base tuples whose presence enabled the deletion
	// (excluding the tuple itself).
	Because []string
	// After lists the deletions this one depended on (delta body atoms),
	// each with its own explanation.
	After []*Explanation
}

// String renders the explanation as an indented tree.
func (e *Explanation) String() string {
	var b strings.Builder
	e.render(&b, 0)
	return b.String()
}

func (e *Explanation) render(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%s%s deleted (layer %d)", indent, e.Tuple, e.Layer)
	if len(e.Because) > 0 {
		fmt.Fprintf(b, " with %s present", strings.Join(e.Because, ", "))
	}
	b.WriteByte('\n')
	for _, dep := range e.After {
		fmt.Fprintf(b, "%s  after:\n", indent)
		dep.render(b, depth+2)
	}
}

// Explainer answers "why was this tuple deleted" for a database/program
// pair, using one end-semantics provenance capture. Explanations exist for
// every tuple deletable under end semantics — a superset of every
// semantics' result (Prop. 3.20), so results from any executor can be
// explained.
//
// The provenance graph is keyed by interned tuple IDs; the Explainer keeps
// the database to resolve IDs back to readable content keys when building
// Explanation trees (the one place this reverse mapping is needed).
type Explainer struct {
	graph *provenance.Graph
	db    *engine.Database
}

// NewExplainer captures provenance for the database and program. The
// database is not modified; it is retained (read-only) to render tuple IDs
// as content keys.
func NewExplainer(db *engine.Database, p *datalog.Program) (*Explainer, error) {
	prep, err := datalog.Prepare(p, db.Schema)
	if err != nil {
		return nil, err
	}
	_, _, graph, err := runEndCaptured(nil, db, prep, true, 0, 0)
	if err != nil {
		return nil, err
	}
	return &Explainer{graph: graph, db: db}, nil
}

// keyOf renders a tuple ID as its content key (reporting only).
func (ex *Explainer) keyOf(id engine.TupleID) string {
	return ex.db.DisplayKey(id)
}

// Explainable reports whether the tuple with the given content key has at
// least one derivation.
func (ex *Explainer) Explainable(key string) bool {
	t := ex.db.Lookup(key)
	return t != nil && len(ex.graph.Assignments[t.TID]) > 0
}

// Explain returns the first (earliest-layer) derivation of the tuple with
// the given content key, with delta dependencies expanded recursively; nil
// if the tuple is not derivable. Shared dependencies are expanded once per
// path; cycles cannot occur because dependencies strictly decrease in layer.
func (ex *Explainer) Explain(key string) *Explanation {
	t := ex.db.Lookup(key)
	if t == nil {
		return nil
	}
	return ex.ExplainTuple(t)
}

// ExplainTuple is Explain addressed by tuple.
func (ex *Explainer) ExplainTuple(t *engine.Tuple) *Explanation {
	return ex.explain(t.TID, make(map[engine.TupleID]bool))
}

func (ex *Explainer) explain(id engine.TupleID, onPath map[engine.TupleID]bool) *Explanation {
	clauses := ex.graph.Assignments[id]
	if len(clauses) == 0 || onPath[id] {
		return nil
	}
	onPath[id] = true
	defer delete(onPath, id)

	// Choose the clause whose delta dependencies sit in the earliest
	// layers (the most "direct" derivation), deterministically.
	best := -1
	bestScore := 1 << 30
	for i, c := range clauses {
		score := 0
		ok := true
		for _, dep := range c.Neg {
			l, known := ex.graph.Layer[dep]
			if !known || onPath[dep] {
				ok = false
				break
			}
			score += l
		}
		if ok && score < bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return nil
	}
	c := clauses[best]
	e := &Explanation{Tuple: ex.keyOf(id), Layer: ex.graph.Layer[id]}
	for _, pos := range c.Pos {
		if pos != id {
			e.Because = append(e.Because, ex.keyOf(pos))
		}
	}
	sort.Strings(e.Because)
	deps := make([]string, 0, len(c.Neg))
	depOf := make(map[string]engine.TupleID, len(c.Neg))
	for _, dep := range c.Neg {
		k := ex.keyOf(dep)
		deps = append(deps, k)
		depOf[k] = dep
	}
	sort.Strings(deps)
	for _, k := range deps {
		if sub := ex.explain(depOf[k], onPath); sub != nil {
			e.After = append(e.After, sub)
		}
	}
	return e
}

// ExplainResult explains every tuple of a result, in the result's order.
// Tuples without derivations (possible for independent semantics, which
// may delete underivable tuples) yield entries with a nil Explanation.
type ResultExplanation struct {
	Tuple       *engine.Tuple
	Explanation *Explanation // nil when the deletion has no derivation
}

// ExplainResult builds explanations for all tuples in the result.
func (ex *Explainer) ExplainResult(res *Result) []ResultExplanation {
	out := make([]ResultExplanation, 0, res.Size())
	for _, t := range res.Deleted {
		out = append(out, ResultExplanation{Tuple: t, Explanation: ex.ExplainTuple(t)})
	}
	return out
}
