package core

import (
	"testing"
	"testing/quick"

	"repro/internal/datalog"
	"repro/internal/engine"
)

// multiDeltaProgram exercises the subtle part of the seminaive pass
// structure: a rule with TWO delta body atoms, where an assignment may
// combine one old and one frontier delta in either order.
func multiDeltaProgram(t *testing.T) (*engine.Database, *datalog.Program) {
	t.Helper()
	s := engine.NewSchema()
	s.MustAddRelation("A", "a", "v")
	s.MustAddRelation("B", "b", "v")
	s.MustAddRelation("Pair", "p", "x", "y")
	db := engine.NewDatabase(s)
	for i := 1; i <= 4; i++ {
		db.MustInsert("A", engine.Int(i))
		db.MustInsert("B", engine.Int(i))
	}
	for x := 1; x <= 4; x++ {
		for y := 1; y <= 4; y++ {
			db.MustInsert("Pair", engine.Int(x), engine.Int(y))
		}
	}
	// A and B tuples fall in different rounds (B depends on A), and Pair
	// needs BOTH deltas: pairs become deletable only when their A-side and
	// B-side have fallen — possibly in different rounds.
	p, err := datalog.ParseAndValidate(`
(0) Delta_A(v) :- A(v), v <= 2.
(1) Delta_B(v) :- B(v), Delta_A(v).
(2) Delta_Pair(x, y) :- Pair(x, y), Delta_A(x), Delta_B(y).
`, s)
	if err != nil {
		t.Fatal(err)
	}
	return db, p
}

// TestSeminaiveMultiDeltaMatchesNaive: the pass-structured seminaive
// evaluation must derive exactly what naive evaluation derives when rules
// join two delta atoms across rounds.
func TestSeminaiveMultiDeltaMatchesNaive(t *testing.T) {
	db, p := multiDeltaProgram(t)
	semi, _, err := RunEnd(db, p)
	if err != nil {
		t.Fatal(err)
	}
	naive, _, err := RunEndNaive(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if !semi.SameSet(naive) {
		t.Fatalf("seminaive %v != naive %v", semi.Keys(), naive.Keys())
	}
	// Expected content: A{1,2}, B{1,2}, Pair{1,2}×{1,2} = 2+2+4 = 8.
	if semi.Size() != 8 {
		t.Fatalf("size = %d (%v), want 8", semi.Size(), semi.Keys())
	}
	by := semi.ByRelation()
	if by["Pair"] != 4 {
		t.Fatalf("pairs deleted = %d, want 4: %v", by["Pair"], semi.Keys())
	}
	mustStable(t, db, p, semi)
}

// TestSeminaivePropertyMatchesNaive: randomized cross-check of the
// seminaive pass structure against naive evaluation, with multi-delta
// rules in the mix.
func TestSeminaivePropertyMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		db, p, err := randomInstance(seed)
		if err != nil {
			return false
		}
		semi, _, err1 := RunEnd(db, p)
		naive, _, err2 := RunEndNaive(db, p)
		if err1 != nil || err2 != nil {
			t.Logf("seed %d: %v / %v", seed, err1, err2)
			return false
		}
		if !semi.SameSet(naive) {
			t.Logf("seed %d: seminaive %v != naive %v", seed, semi.Keys(), naive.Keys())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestBreakdownTotal covers the timing aggregate.
func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{Eval: 1, ProcessProv: 2, Solve: 3, Traverse: 4, Update: 5}
	if b.Total() != 15 {
		t.Fatalf("Total = %d, want 15", b.Total())
	}
}

// TestContainmentOnIdenticalResults: the flags on a pure cascade.
func TestContainmentOnIdenticalResults(t *testing.T) {
	db, p := multiDeltaProgram(t)
	rs, err := RunAll(db, p)
	if err != nil {
		t.Fatal(err)
	}
	c := CheckContainment(rs)
	if !c.StepEqStage || !c.IndInStage || !c.IndInStep || !c.StageInEnd || !c.StepInEnd {
		t.Fatalf("all flags should hold on identical results: %+v", c)
	}
}
