package core

import (
	"testing"

	"repro/internal/engine"
)

// TestWeightedIndependentRunningExample: with AuthGrant links made
// expensive, the minimum-weight repair abandons the paper's {g2, ag2, ag3}
// in favor of the cascade through authors and writes — demonstrating the
// minimum-weight generalization of the paper's cardinality metric.
func TestWeightedIndependentRunningExample(t *testing.T) {
	db, p := academicDB(), academicProgram(t)

	// Baseline: cardinality-minimum is {g2, ag2, ag3}.
	base, _, err := RunIndependent(db, p, IndependentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Size() != 3 || base.RepairCost != 3 {
		t.Fatalf("baseline: size %d cost %d", base.Size(), base.RepairCost)
	}

	// AuthGrant deletions cost 10: {g2, ag2, ag3} now costs 21, while
	// {g2, a2, a3, w1, w2} costs 5 — the solver must switch.
	weighted, _, err := RunIndependent(db, p, IndependentOptions{
		Weight: func(tp *engine.Tuple) int64 {
			if tp.Rel == "AuthGrant" {
				return 10
			}
			return 1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !weighted.Optimal {
		t.Fatal("tiny instance should be proven optimal")
	}
	if weighted.RepairCost != 5 {
		t.Fatalf("weighted cost = %d (%v), want 5", weighted.RepairCost, weighted.Keys())
	}
	by := weighted.ByRelation()
	if by["AuthGrant"] != 0 {
		t.Fatalf("weighted repair must avoid AuthGrant: %v", by)
	}
	mustStable(t, db, p, weighted)
}

// TestWeightedIndependentMildWeightKeepsOptimum: a small penalty that does
// not flip the balance keeps the cardinality-optimal set, with its cost
// reported under the weighted metric.
func TestWeightedIndependentMildWeightKeepsOptimum(t *testing.T) {
	db, p := academicDB(), academicProgram(t)
	res, _, err := RunIndependent(db, p, IndependentOptions{
		Weight: func(tp *engine.Tuple) int64 {
			if tp.Rel == "Grant" {
				return 2
			}
			return 1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// {g2, ag2, ag3} costs 2+1+1 = 4; the cascade alternative costs 5.
	if res.RepairCost != 4 || res.Size() != 3 {
		t.Fatalf("cost = %d size = %d (%v)", res.RepairCost, res.Size(), res.Keys())
	}
}

// TestWeightedIndependentStillStabilizes on random instances with a
// relation-based weight function.
func TestWeightedIndependentStillStabilizes(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		db, p, err := randomInstance(seed)
		if err != nil {
			continue
		}
		res, _, err := RunIndependent(db, p, IndependentOptions{
			Weight: func(tp *engine.Tuple) int64 {
				if tp.Rel == "R2" {
					return 3
				}
				return 1
			},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := Apply(db, p, res); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Cost accounting: recompute and compare.
		var want int64
		for _, tp := range res.Deleted {
			if tp.Rel == "R2" {
				want += 3
			} else {
				want++
			}
		}
		if res.RepairCost != want {
			t.Fatalf("seed %d: reported cost %d, recomputed %d", seed, res.RepairCost, want)
		}
	}
}
