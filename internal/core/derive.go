package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/provenance"
)

// deriveConfig controls the shared seminaive derivation loop.
type deriveConfig struct {
	// shrinkBases selects stage semantics behaviour: after each round the
	// newly derived heads are removed from their base relations, so later
	// rounds evaluate against the shrunken database (Def. 3.7). When false
	// the loop implements end-semantics derivation: bases stay at D⁰ and
	// only the delta side grows (Def. 3.10).
	shrinkBases bool
	// capture, when non-nil, records every assignment found into the
	// provenance graph with its derivation round as the layer (§5.2).
	capture *provenance.Graph
	// maxRounds guards against runaway recursion; 0 means no limit beyond
	// the natural bound (total tuple count + 1).
	maxRounds int
	// naive disables the seminaive frontier optimization: every round
	// re-evaluates every rule against the full delta contents. Used only
	// by the evaluation-strategy ablation benchmark; results are identical.
	naive bool
	// parallelism sets the per-round rule-evaluation worker count; 0 or 1
	// evaluates rules sequentially. Results are byte-identical either way:
	// workers only fill per-rule emit buffers, and the buffers are merged
	// in deterministic rule-then-enumeration order.
	parallelism int
	// warmSeeds, when non-nil, switches the loop into warm-continuation
	// mode (end semantics after insert-only base updates): work's
	// pre-existing deltas are installed as already-processed old deltas
	// instead of the round-1 frontier, and round 1 evaluates only the
	// insert-seeded passes over these relations — every genuinely new
	// assignment binds at least one inserted tuple. Incompatible with
	// capture and shrinkBases (the callers that set those re-derive from
	// scratch).
	warmSeeds map[string]*engine.Relation
	// ctx carries per-request cancellation into the round loop: it is
	// checked at the top of every round, before every rule evaluation, and
	// every evalCheckEvery emitted assignments. Nil means never canceled.
	ctx context.Context
}

// derive runs seminaive rounds of the prepared delta program over work
// (mutated in place: deltas always grow; bases shrink only under
// shrinkBases). It returns the derived delta tuples in derivation order and
// the number of rounds until fixpoint.
//
// Seminaive justification: under end semantics bases never shrink, so any
// assignment's validity persists and each assignment is enumerated exactly
// in the round following its newest delta dependency. Under stage semantics
// bases only shrink, so an assignment using no frontier delta would have
// been valid (and fired, deleting its head) one stage earlier — hence every
// genuinely new assignment uses a frontier delta and the same pass
// structure is sound.
//
// Within a round, rules are independent: every rule reads the same
// pre-round state (live bases, old deltas, the frontier) and all updates
// happen after the round. That is what makes per-rule parallel evaluation
// sound — and the deterministic merge makes it exact, not just
// set-equivalent. The caller must have pre-built the prepared plans' base
// index requirements on work (Prepared.WarmIndexes), so evaluation performs
// no writes on shared relations.
func derive(work *engine.Database, prep *datalog.Prepared, cfg deriveConfig) ([]*engine.Tuple, int, error) {
	schema := work.Schema
	old, frontier := prep.AcquireScratch()
	defer prep.ReleaseScratch(old, frontier)
	for _, rs := range schema.Relations {
		// Pre-existing deltas seed the frontier (user-initiated deletions,
		// §3.6) — except in warm-continuation mode, where they are a
		// previous version's already-processed fixpoint and go straight to
		// the old side; round 1 then probes only the inserted tuples.
		dst := frontier[rs.Name]
		if cfg.warmSeeds != nil {
			dst = old[rs.Name]
		}
		work.Delta(rs.Name).ScanRuns(func(run []*engine.Tuple) bool {
			for _, t := range run {
				dst.Insert(t)
			}
			return true
		})
	}

	maxRounds := cfg.maxRounds
	if maxRounds <= 0 {
		maxRounds = work.TotalTuples() + 2
	}

	var derivedAll []*engine.Tuple
	derivedSet := make(map[engine.TupleID]bool)
	rounds := 0

	ctx := prep.AcquireContext()
	defer prep.ReleaseContext(ctx)

	var newHeads []*engine.Tuple
	newSet := make(map[engine.TupleID]bool)

	for round := 1; ; round++ {
		if err := ctxErr(cfg.ctx); err != nil {
			return nil, rounds, err
		}
		if round > maxRounds {
			return nil, rounds, fmt.Errorf("core: derivation did not converge after %d rounds", maxRounds)
		}
		newHeads = newHeads[:0]
		clear(newSet)

		// process applies the shared per-assignment logic; it is the single
		// code path for both execution modes, invoked in (rule, pass,
		// enumeration) order either inline or from merged buffers.
		process := func(rule *datalog.Rule, asn *datalog.Assignment) {
			head := asn.Head()
			id := head.TID
			if cfg.capture != nil {
				// AddDerivation keeps the first layer for a known head.
				cfg.capture.AddDerivation(id, round, provenance.ClauseOf(asn))
			}
			if !derivedSet[id] && !newSet[id] && !work.Delta(rule.Head.Rel).ContainsID(id) {
				newSet[id] = true
				newHeads = append(newHeads, head)
			}
		}

		// Warm-continuation round 1 probes only the insert-seeded passes:
		// the pre-existing deltas are a fully processed fixpoint, so every
		// new assignment must bind an inserted tuple.
		warmRound := cfg.warmSeeds != nil && round == 1
		seeded := func(rel string) bool { return cfg.warmSeeds[rel] != nil }

		var eligible []int
		for ri, pr := range prep.Rules {
			if warmRound {
				if !pr.ReadsAny(seeded) {
					continue // no seeded relation in the body: nothing new
				}
			} else if pr.NumDeltaBody() == 0 && round > 1 && !cfg.naive {
				continue // condition rules fire only against D⁰/stage 1
			}
			eligible = append(eligible, ri)
		}

		evalOne := func(ri int, ec *datalog.ExecContext, emit func(*datalog.Assignment) bool) error {
			if warmRound {
				return prep.Rules[ri].EvalInsertSeeded(work, cfg.warmSeeds, ec, emit)
			}
			return evalRuleRound(work, prep, ri, cfg.naive, old, frontier, ec, emit)
		}

		// The warm round runs sequentially even under parallelism: its
		// plans probe live delta relations, whose indexes build lazily (a
		// write); the round is tiny — bounded by the inserted tuples — so
		// there is nothing worth parallelizing anyway.
		if cfg.parallelism > 1 && len(eligible) > 1 && !warmRound {
			bufs := make([][]*datalog.Assignment, len(prep.Rules))
			errs := forEachRuleParallel(prep, cfg.parallelism, eligible,
				func(ri int, ctx *datalog.ExecContext) error {
					if err := ctxErr(cfg.ctx); err != nil {
						return err
					}
					emitted := 0
					return evalOne(ri, ctx,
						func(asn *datalog.Assignment) bool {
							bufs[ri] = append(bufs[ri], asn)
							emitted++
							return emitted%evalCheckEvery != 0 || ctxErr(cfg.ctx) == nil
						})
				})
			for _, ri := range eligible {
				if errs[ri] != nil {
					return nil, rounds, errs[ri]
				}
				if err := ctxErr(cfg.ctx); err != nil {
					return nil, rounds, err
				}
				for _, asn := range bufs[ri] {
					process(prep.Rules[ri].Rule, asn)
				}
			}
		} else {
			for _, ri := range eligible {
				if err := ctxErr(cfg.ctx); err != nil {
					return nil, rounds, err
				}
				rule := prep.Rules[ri].Rule
				emitted := 0
				err := evalOne(ri, ctx,
					func(asn *datalog.Assignment) bool {
						process(rule, asn)
						emitted++
						return emitted%evalCheckEvery != 0 || ctxErr(cfg.ctx) == nil
					})
				if err != nil {
					return nil, rounds, err
				}
				if err := ctxErr(cfg.ctx); err != nil {
					return nil, rounds, err
				}
			}
		}

		if len(newHeads) == 0 {
			rounds = round - 1
			break
		}
		rounds = round

		// Rotate frontier into old (recycling the frontier relations in
		// place), install new heads as the next frontier, and record the
		// deletions.
		for _, rs := range schema.Relations {
			fr := frontier[rs.Name]
			if fr.Len() == 0 {
				continue
			}
			fr.ScanRuns(func(run []*engine.Tuple) bool {
				for _, t := range run {
					old[rs.Name].Insert(t)
				}
				return true
			})
			fr.Reset()
		}
		for _, head := range newHeads {
			derivedSet[head.TID] = true
			derivedAll = append(derivedAll, head)
			frontier[head.Rel].Insert(head)
			if cfg.shrinkBases {
				// Stage: move base → delta now.
				work.Relation(head.Rel).DeleteTuple(head)
			}
			work.Delta(head.Rel).Insert(head)
		}
		if cfg.shrinkBases && cfg.parallelism > 1 {
			// Flush index staleness left by the base deletions so the next
			// round's concurrent lookups perform no bucket compaction.
			for _, head := range newHeads {
				work.Relation(head.Rel).SyncIndexes()
			}
		}
	}
	return derivedAll, rounds, nil
}

// forEachRuleParallel runs eval(ri, ctx) for every listed rule on a pool
// of up to par workers, each holding a pooled execution context. It returns
// per-rule errors indexed like prep.Rules; callers merge per-rule outputs
// in rule order afterwards, which is what keeps parallel execution
// byte-identical to sequential. eval must only read shared state.
func forEachRuleParallel(prep *datalog.Prepared, par int, rules []int,
	eval func(ri int, ctx *datalog.ExecContext) error) []error {

	errs := make([]error, len(prep.Rules))
	jobs := make(chan int)
	var wg sync.WaitGroup
	if par > len(rules) {
		par = len(rules)
	}
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := prep.AcquireContext()
			defer prep.ReleaseContext(ctx)
			for ri := range jobs {
				errs[ri] = eval(ri, ctx)
			}
		}()
	}
	for _, ri := range rules {
		jobs <- ri
	}
	close(jobs)
	wg.Wait()
	return errs
}

// evalRuleRound evaluates one rule's passes for one round, emitting every
// assignment in deterministic enumeration order. It only reads work, old,
// and frontier, so distinct rules can run concurrently.
func evalRuleRound(work *engine.Database, prep *datalog.Prepared, ri int, naive bool,
	old, frontier map[string]*engine.Relation, ctx *datalog.ExecContext,
	emit func(*datalog.Assignment) bool) error {

	pr := prep.Rules[ri]
	rule := pr.Rule
	if naive || pr.NumDeltaBody() == 0 {
		return pr.EvalNaive(buildNaiveSources(work, rule, old, frontier), ctx, emit)
	}
	for pass := 0; pass < pr.NumDeltaBody(); pass++ {
		if err := pr.EvalPass(pass, buildPassSources(work, rule, old, frontier, pass), ctx, emit); err != nil {
			return err
		}
	}
	return nil
}

// buildNaiveSources assembles per-atom sources for naive evaluation: every
// delta atom reads the full delta contents (old ∪ frontier).
func buildNaiveSources(work *engine.Database, rule *datalog.Rule,
	old, frontier map[string]*engine.Relation) []datalog.AtomSource {

	sources := make([]datalog.AtomSource, len(rule.Body))
	for i, a := range rule.Body {
		if !a.Delta {
			sources[i] = datalog.AtomSource{work.Relation(a.Rel)}
		} else {
			sources[i] = datalog.AtomSource{old[a.Rel], frontier[a.Rel]}
		}
	}
	return sources
}

// buildPassSources assembles per-atom sources for one seminaive pass: the
// pass-th delta atom reads the frontier, earlier delta atoms read old
// deltas, later ones read old ∪ frontier; base atoms read live base
// relations.
func buildPassSources(work *engine.Database, rule *datalog.Rule,
	old, frontier map[string]*engine.Relation, pass int) []datalog.AtomSource {

	sources := make([]datalog.AtomSource, len(rule.Body))
	deltaIdx := 0
	for i, a := range rule.Body {
		if !a.Delta {
			sources[i] = datalog.AtomSource{work.Relation(a.Rel)}
			continue
		}
		switch {
		case deltaIdx < pass:
			sources[i] = datalog.AtomSource{old[a.Rel]}
		case deltaIdx == pass:
			sources[i] = datalog.AtomSource{frontier[a.Rel]}
		default:
			sources[i] = datalog.AtomSource{old[a.Rel], frontier[a.Rel]}
		}
		deltaIdx++
	}
	return sources
}
