package core

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/provenance"
)

// deriveConfig controls the shared seminaive derivation loop.
type deriveConfig struct {
	// shrinkBases selects stage semantics behaviour: after each round the
	// newly derived heads are removed from their base relations, so later
	// rounds evaluate against the shrunken database (Def. 3.7). When false
	// the loop implements end-semantics derivation: bases stay at D⁰ and
	// only the delta side grows (Def. 3.10).
	shrinkBases bool
	// capture, when non-nil, records every assignment found into the
	// provenance graph with its derivation round as the layer (§5.2).
	capture *provenance.Graph
	// maxRounds guards against runaway recursion; 0 means no limit beyond
	// the natural bound (total tuple count + 1).
	maxRounds int
	// naive disables the seminaive frontier optimization: every round
	// re-evaluates every rule against the full delta contents. Used only
	// by the evaluation-strategy ablation benchmark; results are identical.
	naive bool
}

// derive runs seminaive rounds of the delta program over work (mutated in
// place: deltas always grow; bases shrink only under shrinkBases). It
// returns the derived delta tuples in derivation order and the number of
// rounds until fixpoint.
//
// Seminaive justification: under end semantics bases never shrink, so any
// assignment's validity persists and each assignment is enumerated exactly
// in the round following its newest delta dependency. Under stage semantics
// bases only shrink, so an assignment using no frontier delta would have
// been valid (and fired, deleting its head) one stage earlier — hence every
// genuinely new assignment uses a frontier delta and the same pass
// structure is sound.
func derive(work *engine.Database, p *datalog.Program, cfg deriveConfig) ([]*engine.Tuple, int, error) {
	schema := work.Schema
	old := make(map[string]*engine.Relation, len(schema.Relations))
	frontier := make(map[string]*engine.Relation, len(schema.Relations))
	for _, rs := range schema.Relations {
		old[rs.Name] = engine.NewScratchRelation(rs.Name, rs.Arity())
		fr := engine.NewScratchRelation(rs.Name, rs.Arity())
		// Pre-existing deltas (user-initiated deletions) seed the frontier.
		work.Delta(rs.Name).Scan(func(t *engine.Tuple) bool {
			fr.Insert(t)
			return true
		})
		frontier[rs.Name] = fr
	}

	maxRounds := cfg.maxRounds
	if maxRounds <= 0 {
		maxRounds = work.TotalTuples() + 2
	}

	var derivedAll []*engine.Tuple
	derivedSet := make(map[engine.TupleID]bool)
	rounds := 0

	for round := 1; ; round++ {
		if round > maxRounds {
			return nil, rounds, fmt.Errorf("core: derivation did not converge after %d rounds", maxRounds)
		}
		var newHeads []*engine.Tuple
		newSet := make(map[engine.TupleID]bool)

		for _, rule := range p.Rules {
			nDelta := rule.DeltaBodyCount()
			if nDelta == 0 && round > 1 && !cfg.naive {
				continue // condition rules fire only against D⁰/stage 1
			}
			passes := 1
			if nDelta > 0 && !cfg.naive {
				passes = nDelta
			}
			for pass := 0; pass < passes; pass++ {
				var sources []datalog.AtomSource
				if cfg.naive {
					sources = buildNaiveSources(work, rule, old, frontier)
				} else {
					sources = buildPassSources(work, rule, old, frontier, pass)
				}
				err := datalog.EvalRule(rule, sources, func(asn *datalog.Assignment) bool {
					head := asn.Head()
					id := head.TID
					if cfg.capture != nil {
						// AddDerivation keeps the first layer for a known head.
						cfg.capture.AddDerivation(id, round, provenance.ClauseOf(asn))
					}
					if !derivedSet[id] && !newSet[id] && !work.Delta(rule.Head.Rel).ContainsID(id) {
						newSet[id] = true
						newHeads = append(newHeads, head)
					}
					return true
				})
				if err != nil {
					return nil, rounds, err
				}
			}
		}

		if len(newHeads) == 0 {
			rounds = round - 1
			break
		}
		rounds = round

		// Rotate frontier into old, install new heads as the next frontier,
		// and record the deletions.
		for _, rs := range schema.Relations {
			fr := frontier[rs.Name]
			fr.Scan(func(t *engine.Tuple) bool {
				old[rs.Name].Insert(t)
				return true
			})
			frontier[rs.Name] = engine.NewScratchRelation(rs.Name, rs.Arity())
		}
		for _, head := range newHeads {
			derivedSet[head.TID] = true
			derivedAll = append(derivedAll, head)
			frontier[head.Rel].Insert(head)
			if cfg.shrinkBases {
				// Stage: move base → delta now.
				work.Relation(head.Rel).DeleteTuple(head)
			}
			work.Delta(head.Rel).Insert(head)
		}
	}
	return derivedAll, rounds, nil
}

// buildNaiveSources assembles per-atom sources for naive evaluation: every
// delta atom reads the full delta contents (old ∪ frontier).
func buildNaiveSources(work *engine.Database, rule *datalog.Rule,
	old, frontier map[string]*engine.Relation) []datalog.AtomSource {

	sources := make([]datalog.AtomSource, len(rule.Body))
	for i, a := range rule.Body {
		if !a.Delta {
			sources[i] = datalog.AtomSource{work.Relation(a.Rel)}
		} else {
			sources[i] = datalog.AtomSource{old[a.Rel], frontier[a.Rel]}
		}
	}
	return sources
}

// buildPassSources assembles per-atom sources for one seminaive pass: the
// pass-th delta atom reads the frontier, earlier delta atoms read old
// deltas, later ones read old ∪ frontier; base atoms read live base
// relations.
func buildPassSources(work *engine.Database, rule *datalog.Rule,
	old, frontier map[string]*engine.Relation, pass int) []datalog.AtomSource {

	sources := make([]datalog.AtomSource, len(rule.Body))
	deltaIdx := 0
	for i, a := range rule.Body {
		if !a.Delta {
			sources[i] = datalog.AtomSource{work.Relation(a.Rel)}
			continue
		}
		switch {
		case deltaIdx < pass:
			sources[i] = datalog.AtomSource{old[a.Rel]}
		case deltaIdx == pass:
			sources[i] = datalog.AtomSource{frontier[a.Rel]}
		default:
			sources[i] = datalog.AtomSource{old[a.Rel], frontier[a.Rel]}
		}
		deltaIdx++
	}
	return sources
}
