package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/provenance"
)

// deriveConfig controls the shared seminaive derivation loop.
type deriveConfig struct {
	// shrinkBases selects stage semantics behaviour: after each round the
	// newly derived heads are removed from their base relations, so later
	// rounds evaluate against the shrunken database (Def. 3.7). When false
	// the loop implements end-semantics derivation: bases stay at D⁰ and
	// only the delta side grows (Def. 3.10).
	shrinkBases bool
	// capture, when non-nil, records every assignment found into the
	// provenance graph with its derivation round as the layer (§5.2).
	capture *provenance.Graph
	// maxRounds guards against runaway recursion; 0 means no limit beyond
	// the natural bound (total tuple count + 1).
	maxRounds int
	// naive disables the seminaive frontier optimization: every round
	// re-evaluates every rule against the full delta contents. Used only
	// by the evaluation-strategy ablation benchmark; results are identical.
	naive bool
	// parallelism is the requested shard fan-out, consumed by deriveAuto's
	// heuristic (see shardWidth); derive itself always runs sequentially.
	// Results are byte-identical either way: shards partition the work by
	// hash and the merge replays in global Seq order.
	parallelism int
	// shardMin overrides the minimum live base size before deriveAuto
	// shards: 0 means the default threshold, negative disables the floor
	// (tests force sharding on tiny databases with it).
	shardMin int
	// warmSeeds, when non-nil, switches the loop into warm-continuation
	// mode (end semantics after insert-only base updates): work's
	// pre-existing deltas are installed as already-processed old deltas
	// instead of the round-1 frontier, and round 1 evaluates only the
	// insert-seeded passes over these relations — every genuinely new
	// assignment binds at least one inserted tuple. Incompatible with
	// capture and shrinkBases (the callers that set those re-derive from
	// scratch).
	warmSeeds map[string]*engine.Relation
	// ctx carries per-request cancellation into the round loop: it is
	// checked at the top of every round, before every rule evaluation, and
	// every evalCheckEvery emitted assignments. Nil means never canceled.
	ctx context.Context
}

// derive runs seminaive rounds of the prepared delta program over work
// (mutated in place: deltas always grow; bases shrink only under
// shrinkBases). It returns the derived delta tuples in derivation order and
// the number of rounds until fixpoint.
//
// Seminaive justification: under end semantics bases never shrink, so any
// assignment's validity persists and each assignment is enumerated exactly
// in the round following its newest delta dependency. Under stage semantics
// bases only shrink, so an assignment using no frontier delta would have
// been valid (and fired, deleting its head) one stage earlier — hence every
// genuinely new assignment uses a frontier delta and the same pass
// structure is sound.
//
// derive is strictly sequential; parallel execution happens one level up,
// in deriveSharded, which runs this whole loop per hash-shard. (The old
// per-round rule fan-out — workers filling per-rule buffers behind a merge
// barrier every round — consistently lost to sequential evaluation on
// real programs and was retired in its favor.)
func derive(work *engine.Database, prep *datalog.Prepared, cfg deriveConfig) ([]*engine.Tuple, int, error) {
	schema := work.Schema
	scr := prep.AcquireScratch()
	old, frontier := scr.Old, scr.Frontier
	derivedSet, newSet := scr.Derived, scr.Fresh
	newHeads := scr.Heads[:0]
	eligible := scr.Eligible[:0]
	defer func() {
		// Hand grown buffers back so the pool keeps their capacity.
		scr.Heads, scr.Eligible = newHeads, eligible
		prep.ReleaseScratch(scr)
	}()
	for _, rs := range schema.Relations {
		// Pre-existing deltas seed the frontier (user-initiated deletions,
		// §3.6) — except in warm-continuation mode, where they are a
		// previous version's already-processed fixpoint and go straight to
		// the old side; round 1 then probes only the inserted tuples.
		dst := frontier[rs.Name]
		if cfg.warmSeeds != nil {
			dst = old[rs.Name]
		}
		work.Delta(rs.Name).ScanRuns(func(run []*engine.Tuple) bool {
			for _, t := range run {
				dst.Insert(t)
			}
			return true
		})
	}

	maxRounds := cfg.maxRounds
	if maxRounds <= 0 {
		maxRounds = work.TotalTuples() + 2
	}

	var derivedAll []*engine.Tuple
	rounds := 0

	ctx := prep.AcquireContext()
	defer prep.ReleaseContext(ctx)

	for round := 1; ; round++ {
		if err := ctxErr(cfg.ctx); err != nil {
			return nil, rounds, err
		}
		if round > maxRounds {
			return nil, rounds, fmt.Errorf("core: derivation did not converge after %d rounds", maxRounds)
		}
		newHeads = newHeads[:0]
		clear(newSet)

		// process applies the shared per-assignment logic; it is the single
		// code path for both execution modes, invoked in (rule, pass,
		// enumeration) order either inline or from merged buffers.
		process := func(rule *datalog.Rule, asn *datalog.Assignment) {
			head := asn.Head()
			id := head.TID
			if cfg.capture != nil {
				// AddDerivation keeps the first layer for a known head.
				cfg.capture.AddDerivation(id, round, provenance.ClauseOf(asn))
			}
			if !derivedSet[id] && !newSet[id] && !work.Delta(rule.Head.Rel).ContainsID(id) {
				newSet[id] = true
				newHeads = append(newHeads, head)
			}
		}

		// Warm-continuation round 1 probes only the insert-seeded passes:
		// the pre-existing deltas are a fully processed fixpoint, so every
		// new assignment must bind an inserted tuple.
		warmRound := cfg.warmSeeds != nil && round == 1
		seeded := func(rel string) bool { return cfg.warmSeeds[rel] != nil }

		eligible = eligible[:0]
		for ri, pr := range prep.Rules {
			if warmRound {
				if !pr.ReadsAny(seeded) {
					continue // no seeded relation in the body: nothing new
				}
			} else if pr.NumDeltaBody() == 0 && round > 1 && !cfg.naive {
				continue // condition rules fire only against D⁰/stage 1
			}
			eligible = append(eligible, ri)
		}

		evalOne := func(ri int, ec *datalog.ExecContext, emit func(*datalog.Assignment) bool) error {
			if warmRound {
				return prep.Rules[ri].EvalInsertSeeded(work, cfg.warmSeeds, ec, emit)
			}
			return evalRuleRound(work, prep, ri, cfg.naive, old, frontier, ec, emit)
		}

		for _, ri := range eligible {
			if err := ctxErr(cfg.ctx); err != nil {
				return nil, rounds, err
			}
			rule := prep.Rules[ri].Rule
			emitted := 0
			err := evalOne(ri, ctx,
				func(asn *datalog.Assignment) bool {
					process(rule, asn)
					emitted++
					return emitted%evalCheckEvery != 0 || ctxErr(cfg.ctx) == nil
				})
			if err != nil {
				return nil, rounds, err
			}
			if err := ctxErr(cfg.ctx); err != nil {
				return nil, rounds, err
			}
		}

		if len(newHeads) == 0 {
			rounds = round - 1
			break
		}
		rounds = round

		// Rotate frontier into old (recycling the frontier relations in
		// place), install new heads as the next frontier, and record the
		// deletions.
		for _, rs := range schema.Relations {
			fr := frontier[rs.Name]
			if fr.Len() == 0 {
				continue
			}
			fr.ScanRuns(func(run []*engine.Tuple) bool {
				for _, t := range run {
					old[rs.Name].Insert(t)
				}
				return true
			})
			fr.Reset()
		}
		for _, head := range newHeads {
			derivedSet[head.TID] = true
			derivedAll = append(derivedAll, head)
			frontier[head.Rel].Insert(head)
			if cfg.shrinkBases {
				// Stage: move base → delta now.
				work.Relation(head.Rel).DeleteTuple(head)
			}
			work.Delta(head.Rel).Insert(head)
		}
	}
	return derivedAll, rounds, nil
}

// defaultShardMinTuples is the live-base size below which deriveAuto never
// shards: fork + partition-bitmap setup costs a few microseconds per
// relation, which only amortizes once the fixpoint has real work.
const defaultShardMinTuples = 2048

// deriveAuto runs the seminaive fixpoint, hash-sharded across
// cfg.parallelism workers when the co-partitioning analysis proved the
// program shard-local and the database is big enough to amortize shard
// setup; otherwise plain sequential derive. Results are byte-identical
// either way.
func deriveAuto(work *engine.Database, prep *datalog.Prepared, cfg deriveConfig) ([]*engine.Tuple, int, error) {
	if p := shardWidth(work, prep, cfg); p > 1 {
		return deriveSharded(work, prep, cfg, p)
	}
	return derive(work, prep, cfg)
}

// shardWidth is the auto-parallelism heuristic: the effective shard count
// for this derivation, or 0 to run sequentially. Sharding engages only
// when the caller asked for parallelism, the program is shard-local under
// the co-partitioning analysis, the run does not capture provenance (the
// graph records global rounds-and-layers structure, so capture paths stay
// sequential) or use naive evaluation (the ablation measures the reference
// strategy), and the live base is large enough that shard setup amortizes.
func shardWidth(work *engine.Database, prep *datalog.Prepared, cfg deriveConfig) int {
	p := cfg.parallelism
	if p <= 1 || cfg.capture != nil || cfg.naive || !prep.Shardable() {
		return 0
	}
	// A single-core host runs the shards sequentially anyway and still
	// pays partition + merge (~15% on comparison/sharded_vs_sequential),
	// so sharding needs real parallelism. A negative shardMin keeps
	// forcing shards — the differential suites use it to exercise the
	// sharded path byte-identically on any host.
	if cfg.shardMin >= 0 && runtime.GOMAXPROCS(0) == 1 {
		return 0
	}
	if p > engine.MaxShards {
		p = engine.MaxShards
	}
	floor := cfg.shardMin
	if floor == 0 {
		floor = defaultShardMinTuples
	}
	if floor > 0 && work.TotalTuples() < floor {
		return 0
	}
	return p
}

// deriveSharded runs the entire seminaive fixpoint shard-locally on p
// hash-partitions of work and merges once at the end.
//
// Soundness and exactness: every rule is shard-local (shardWidth checked
// prep.Shardable), meaning under the partition-key assignment κ every
// assignment of every rule binds derived-relation tuples whose κ-column
// values are equal — so the assignment is visible, in full, to exactly the
// shard owning that value, and to no other (replicated relations are
// present everywhere and impose no constraint). By induction over rounds,
// each shard's round-r frontier is exactly the κ-owned slice of the
// sequential round-r frontier: round 1 seeds are partitioned by κ, and a
// round r+1 derivation exists in shard s iff its body tuples do, iff the
// sequential derivation's head hashes to s. Hence the union of shard
// fixpoints equals the sequential fixpoint, per-shard dedup is global
// dedup (heads stay in their owner shard), and the maximum shard round
// count equals the sequential round count. The merge replays derived heads
// in global Seq order — the canonical order every consumer normalizes to
// (newResult sorts Deleted by Seq) — so results are byte-identical to
// sequential execution.
//
// Each shard is a copy-on-write fork whose deletion bitmaps hide the rows
// other shards own (no tuple copies; columnar probes stay columnar), with
// its own pooled scratch, running the full fixpoint with zero cross-shard
// coordination. Frozen-side index and columnar builds are shared across
// shards behind the snapshot's mutex-and-atomic-publish discipline;
// WarmSeminaiveIndexes pre-builds the probed ones so shards do not contend
// building them mid-join.
func deriveSharded(work *engine.Database, prep *datalog.Prepared, cfg deriveConfig, p int) ([]*engine.Tuple, int, error) {
	snap := work.Freeze()
	prep.WarmSeminaiveIndexes(work)
	keys := prep.PartitionKeys()
	shards := snap.ShardForks(p, keys)

	derived := make([][]*engine.Tuple, p)
	rounds := make([]int, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scfg := cfg
			scfg.parallelism = 0
			if cfg.warmSeeds != nil {
				scfg.warmSeeds = shardSeeds(cfg.warmSeeds, keys, i, p)
			}
			derived[i], rounds[i], errs[i] = derive(shards[i], prep, scfg)
		}(i)
	}
	wg.Wait()
	maxRounds, total := 0, 0
	for i := 0; i < p; i++ {
		if errs[i] != nil {
			return nil, 0, errs[i]
		}
		if rounds[i] > maxRounds {
			maxRounds = rounds[i]
		}
		total += len(derived[i])
	}

	// Merge: concatenate the disjoint shard outputs, restore the global
	// derivation order by Seq, and replay the head installs on the parent
	// (deltas always; base shrinking only under stage semantics, mirroring
	// what derive did inside each shard).
	merged := make([]*engine.Tuple, 0, total)
	for i := 0; i < p; i++ {
		merged = append(merged, derived[i]...)
	}
	sort.Slice(merged, func(a, b int) bool { return merged[a].Seq < merged[b].Seq })
	for _, t := range merged {
		if cfg.shrinkBases {
			work.Relation(t.Rel).DeleteTuple(t)
		}
		work.Delta(t.Rel).Insert(t)
	}
	return merged, maxRounds, nil
}

// shardSeeds splits warm-start insert seeds for one shard: relations with
// a partition key keep only the tuples hashing to the shard; seeds over
// replicated (unkeyed) relations are copied whole. Every shard gets
// private seed relations — evaluation may lazily build indexes on them, a
// write that must not be shared across shard goroutines.
func shardSeeds(seeds map[string]*engine.Relation, keys map[string]int, shard, p int) map[string]*engine.Relation {
	out := make(map[string]*engine.Relation, len(seeds))
	for name, src := range seeds {
		col, keyed := keys[name]
		dst := engine.NewScratchRelation(name, src.Arity)
		src.Scan(func(t *engine.Tuple) bool {
			if !keyed || engine.ShardOf(t.Vals[col], p) == shard {
				dst.Insert(t)
			}
			return true
		})
		out[name] = dst
	}
	return out
}

// forEachRuleParallel runs eval(ri, ctx) for every listed rule on a pool
// of up to par workers, each holding a pooled execution context. It returns
// per-rule errors indexed like prep.Rules; callers merge per-rule outputs
// in rule order afterwards, which is what keeps parallel execution
// byte-identical to sequential. eval must only read shared state.
func forEachRuleParallel(prep *datalog.Prepared, par int, rules []int,
	eval func(ri int, ctx *datalog.ExecContext) error) []error {

	errs := make([]error, len(prep.Rules))
	jobs := make(chan int)
	var wg sync.WaitGroup
	if par > len(rules) {
		par = len(rules)
	}
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := prep.AcquireContext()
			defer prep.ReleaseContext(ctx)
			for ri := range jobs {
				errs[ri] = eval(ri, ctx)
			}
		}()
	}
	for _, ri := range rules {
		jobs <- ri
	}
	close(jobs)
	wg.Wait()
	return errs
}

// evalRuleRound evaluates one rule's passes for one round, emitting every
// assignment in deterministic enumeration order. It only reads work, old,
// and frontier, so distinct rules can run concurrently.
func evalRuleRound(work *engine.Database, prep *datalog.Prepared, ri int, naive bool,
	old, frontier map[string]*engine.Relation, ctx *datalog.ExecContext,
	emit func(*datalog.Assignment) bool) error {

	pr := prep.Rules[ri]
	rule := pr.Rule
	if naive || pr.NumDeltaBody() == 0 {
		return pr.EvalNaive(buildNaiveSources(work, rule, old, frontier), ctx, emit)
	}
	for pass := 0; pass < pr.NumDeltaBody(); pass++ {
		if err := pr.EvalPass(pass, buildPassSources(work, rule, old, frontier, pass), ctx, emit); err != nil {
			return err
		}
	}
	return nil
}

// buildNaiveSources assembles per-atom sources for naive evaluation: every
// delta atom reads the full delta contents (old ∪ frontier).
func buildNaiveSources(work *engine.Database, rule *datalog.Rule,
	old, frontier map[string]*engine.Relation) []datalog.AtomSource {

	sources := make([]datalog.AtomSource, len(rule.Body))
	for i, a := range rule.Body {
		if !a.Delta {
			sources[i] = datalog.AtomSource{work.Relation(a.Rel)}
		} else {
			sources[i] = datalog.AtomSource{old[a.Rel], frontier[a.Rel]}
		}
	}
	return sources
}

// buildPassSources assembles per-atom sources for one seminaive pass: the
// pass-th delta atom reads the frontier, earlier delta atoms read old
// deltas, later ones read old ∪ frontier; base atoms read live base
// relations.
func buildPassSources(work *engine.Database, rule *datalog.Rule,
	old, frontier map[string]*engine.Relation, pass int) []datalog.AtomSource {

	sources := make([]datalog.AtomSource, len(rule.Body))
	deltaIdx := 0
	for i, a := range rule.Body {
		if !a.Delta {
			sources[i] = datalog.AtomSource{work.Relation(a.Rel)}
			continue
		}
		switch {
		case deltaIdx < pass:
			sources[i] = datalog.AtomSource{old[a.Rel]}
		case deltaIdx == pass:
			sources[i] = datalog.AtomSource{frontier[a.Rel]}
		default:
			sources[i] = datalog.AtomSource{old[a.Rel], frontier[a.Rel]}
		}
		deltaIdx++
	}
	return sources
}
