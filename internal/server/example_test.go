package server_test

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/server"
)

// ExampleService shows the serving pattern end to end: register a named
// (schema, program, database) session once, then answer requests off the
// cached prepared plan and frozen snapshot — the service prepares and
// freezes on the first request and forks per request after that.
func ExampleService() {
	schema, _ := engine.ParseSchema(`
		Grant(gid, name)
		Author(aid, gid)`)
	db := engine.NewDatabase(schema)
	db.MustInsert("Grant", engine.Int(1), engine.Str("NSF"))
	db.MustInsert("Grant", engine.Int(2), engine.Str("ERC"))
	db.MustInsert("Author", engine.Int(10), engine.Int(2))
	prog, _ := datalog.ParseAndValidate(`
		Delta_Grant(g, n) :- Grant(g, n), n = 'ERC'.
		Delta_Author(a, g) :- Author(a, g), Delta_Grant(g, n).`, schema)

	svc := server.New(server.Config{})
	if err := svc.Register("grants", schema, db, prog); err != nil {
		fmt.Println(err)
		return
	}

	// Requests are safe to issue concurrently; each works on a private
	// copy-on-write fork of the session's frozen snapshot.
	res, _, err := svc.Repair(context.Background(), "grants", core.SemStage, server.RequestOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s deleted %d tuples: %v\n", res.Semantics, res.Size(), res.Keys())

	stable, _ := svc.IsStable(context.Background(), "grants", server.RequestOptions{})
	fmt.Printf("session database stable: %v\n", stable)
	// Output:
	// stage deleted 2 tuples: [Grant(i2,"ERC") Author(i10,i2)]
	// session database stable: false
}

// ExampleService_update shows mutable sessions: base-table updates mint
// new snapshot versions in place — no re-registration, no re-preparing,
// untouched relations share storage with every earlier version — and
// requests may pin a version for read-your-writes while the head moves
// on.
func ExampleService_update() {
	schema, _ := engine.ParseSchema(`
		Grant(gid, name)
		Author(aid, gid)`)
	db := engine.NewDatabase(schema)
	db.MustInsert("Grant", engine.Int(1), engine.Str("NSF"))
	db.MustInsert("Grant", engine.Int(2), engine.Str("ERC"))
	db.MustInsert("Author", engine.Int(10), engine.Int(2))
	prog, _ := datalog.ParseAndValidate(`
		Delta_Grant(g, n) :- Grant(g, n), n = 'ERC'.
		Delta_Author(a, g) :- Author(a, g), Delta_Grant(g, n).`, schema)

	svc := server.New(server.Config{})
	if err := svc.Register("grants", schema, db, prog); err != nil {
		fmt.Println(err)
		return
	}
	ctx := context.Background()

	// Another author joins the doomed ERC grant: one update, new version.
	upd, _ := svc.Update(ctx, "grants",
		[]engine.Row{{Rel: "Author", Vals: []engine.Value{engine.Int(11), engine.Int(2)}}},
		nil, server.RequestOptions{})
	fmt.Printf("update minted version %d (+%d row)\n", upd.Version, upd.Inserted)

	// The head sees the new author cascade into the repair...
	res, _, version, _ := svc.RepairVersioned(ctx, "grants", core.SemStage, server.RequestOptions{})
	fmt.Printf("v%d: %s deleted %d tuples\n", version, res.Semantics, res.Size())

	// ...while pinning the pre-update version still answers as before.
	res, _, version, _ = svc.RepairVersioned(ctx, "grants", core.SemStage,
		server.RequestOptions{Version: 1})
	fmt.Printf("v%d: %s deleted %d tuples\n", version, res.Semantics, res.Size())
	// Output:
	// update minted version 2 (+1 row)
	// v2: stage deleted 3 tuples
	// v1: stage deleted 2 tuples
}
