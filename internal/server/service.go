// Package server turns the repair library into a concurrent repair
// service: named (schema, program, database) sessions are registered
// once, compiled and frozen once (datalog.Prepare + Database.Freeze), and
// every request forks the shared snapshot — zero deep copies and zero
// re-planning on the hot path. The package exposes both an embeddable Go
// API (Service) and a net/http JSON API (Service.Handler); cmd/deltarepaird
// wraps the latter in a binary.
//
// Concurrency model:
//
//   - Admission control: a bounded token pool (Config.MaxInFlight) caps
//     the number of repairs executing at once; excess requests queue in
//     acquire() and honor their context while waiting.
//   - Session cache: an LRU keyed by session name caches the Prepared
//     plan and frozen Snapshot. Warming is single-flight (sync.Once per
//     session): concurrent first requests prepare and freeze exactly once.
//   - Isolation: every request works on a private Snapshot.Fork; forks
//     share the frozen storage and warm indexes read-only, so requests
//     never observe each other's deletions.
//   - Cancellation: per-request deadlines (Config.DefaultTimeout or the
//     request's own timeout) flow through core.Options.Ctx into the
//     executors' derivation rounds and the SAT search.
package server

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/server/durability"
	"repro/internal/sideeffect"
)

// Service errors distinguished by the HTTP layer.
var (
	// ErrNotFound reports a request against an unknown (or evicted)
	// session name.
	ErrNotFound = errors.New("server: session not found")
	// ErrDuplicate reports a Register against a name already registered.
	ErrDuplicate = errors.New("server: session already registered")
	// ErrBadRequest wraps client-side input errors (e.g. a malformed view
	// source) so the HTTP layer maps them to 400 rather than 500.
	ErrBadRequest = errors.New("server: bad request")
	// ErrSchemaMismatch reports an update batch that does not fit the
	// session's schema (unknown relation or wrong arity): the client's
	// view of the session conflicts with its actual shape (409).
	ErrSchemaMismatch = errors.New("server: update does not match session schema")
	// ErrVersionGone reports a request pinned to a version that has been
	// evicted from the session's retained-version ring (409): the client
	// must retry against a newer version.
	ErrVersionGone = errors.New("server: pinned version no longer retained")
)

// Default configuration values.
const (
	// DefaultMaxSessions is the session-cache capacity when
	// Config.MaxSessions is 0.
	DefaultMaxSessions = 64
)

// Config tunes a Service.
type Config struct {
	// MaxSessions caps the session cache; registering beyond it evicts
	// the least-recently-used session. 0 means DefaultMaxSessions.
	MaxSessions int
	// MaxInFlight bounds the number of concurrently executing repairs
	// (admission control); excess requests queue, honoring their context
	// while waiting. 0 means 2×GOMAXPROCS.
	MaxInFlight int
	// DefaultTimeout bounds each request when the request itself does not
	// choose a timeout. 0 means no default deadline.
	DefaultTimeout time.Duration
	// Parallelism is the per-request rule-evaluation worker count handed
	// to core.Options.Parallelism (0 or 1 = sequential). Total executor
	// concurrency is bounded by MaxInFlight × Parallelism.
	Parallelism int
	// SolverMaxNodes is the default Min-Ones-SAT budget for independent
	// semantics and view-tuple deletion. 0 means the solver default.
	SolverMaxNodes int64
	// MaxVersions is the per-session retained-version window: how many
	// snapshot versions (head included) stay resolvable for pinned reads
	// after base-table updates. 0 means engine.DefaultRetainedVersions.
	// In-flight requests on older versions always complete — eviction only
	// limits *new* pinned reads.
	MaxVersions int

	// DataDir enables durability: every registered session is persisted
	// (snapshot + write-ahead log of update batches) under this directory,
	// updates are logged before they become visible, and sessions are
	// recovered lazily after a restart. Empty means pure in-memory
	// sessions (the pre-durability behavior). Services with a DataDir must
	// be built with Open, which can surface filesystem errors.
	DataDir string
	// NoFsync relaxes the WAL flush policy from fsync-per-append (the
	// default: acknowledged updates survive power loss) to OS-buffered
	// writes (acknowledged updates survive a process crash only).
	NoFsync bool
	// SnapshotEvery is the compaction cadence: after this many WAL
	// records a fresh snapshot is written and the WAL truncated. 0 means
	// durability.DefaultSnapshotEvery; negative disables automatic
	// compaction.
	SnapshotEvery int
}

// Service is a concurrent repair service over a cache of named sessions.
// All methods are safe for concurrent use.
type Service struct {
	cfg    Config
	tokens chan struct{}

	mu      sync.Mutex
	byName  map[string]*list.Element
	lru     *list.List // of *Session; front = most recently used
	loading map[string]*loadFlight

	// dur is non-nil when durability is enabled (Config.DataDir set).
	dur *durability.Manager

	metrics   *svcMetrics
	evictions atomic.Int64
}

// loadFlight deduplicates concurrent lazy recoveries of one session:
// followers wait for the leader's disk load instead of racing it.
type loadFlight struct {
	done chan struct{}
	err  error
}

// New builds a Service; zero-value Config fields take the documented
// defaults. New panics when Config.DataDir is set and the data directory
// cannot be prepared — durable services should use Open, which returns
// the error instead.
func New(cfg Config) *Service {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open is New returning filesystem errors: with Config.DataDir set it
// prepares the data directory and arms lazy crash recovery — every
// session persisted by an earlier process is restored (newest snapshot +
// WAL tail replay) on its first access.
func Open(cfg Config) (*Service, error) {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	s := &Service{
		cfg:     cfg,
		tokens:  make(chan struct{}, cfg.MaxInFlight),
		byName:  make(map[string]*list.Element),
		lru:     list.New(),
		loading: make(map[string]*loadFlight),
	}
	s.metrics = newSvcMetrics(s)
	if cfg.DataDir != "" {
		fsync := durability.FsyncAlways
		if cfg.NoFsync {
			fsync = durability.FsyncNever
		}
		m, err := durability.NewManager(durability.Options{
			Dir: cfg.DataDir, Fsync: fsync, SnapshotEvery: cfg.SnapshotEvery,
		})
		if err != nil {
			return nil, err
		}
		s.dur = m
	}
	return s, nil
}

// Durable reports whether sessions persist across restarts.
func (s *Service) Durable() bool { return s.dur != nil }

// Persisted lists the names of sessions with durable state on disk
// (resident in the cache or awaiting lazy recovery). Nil when durability
// is disabled.
func (s *Service) Persisted() ([]string, error) {
	if s.dur == nil {
		return nil, nil
	}
	return s.dur.List()
}

// Close flushes and closes every resident session's WAL. Durable state
// stays on disk for the next process; the Service must not be used after
// Close.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for el := s.lru.Front(); el != nil; el = el.Next() {
		sess := el.Value.(*Session)
		if sess.store == nil {
			continue
		}
		sess.verMu.Lock()
		err := sess.store.Close()
		sess.verMu.Unlock()
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Session is one registered (schema, program, database) triple with its
// lazily warmed execution state. Sessions are owned by the Service;
// callers interact through Service methods.
type Session struct {
	name        string
	schema      *engine.Schema
	db          *engine.Database
	prog        *datalog.Program
	tuples      int // live tuple count at Register time (db may be mid-freeze later)
	maxVersions int

	// store is the session's open durable state (WAL handle + compaction
	// cadence); nil when durability is disabled. Guarded by verMu for
	// appends and compaction, by the Service eviction path for Close.
	store *durability.SessionStore
	// recSnap/recVersion carry a crash-recovered head into warm(): the
	// ring then starts at the recovered version instead of freezing db
	// (which recovered sessions do not have) at version 1.
	recSnap    *engine.Snapshot
	recVersion uint64

	// Single-flight warming: the first request (or Warm call) compiles
	// the program and freezes the database exactly once; concurrent
	// callers block on the Once and then share the results. warmDone is
	// set (release-store) after a successful warm so stats readers can
	// peek at snap/ring without blocking on a warm in flight.
	warmOnce sync.Once
	prep     *datalog.Prepared
	snap     *engine.Snapshot // version 1 (registration state)
	warmErr  error
	warmDone atomic.Bool

	// Mutable-session state. The ring holds the retained snapshot
	// versions together with the per-version ApplyInfo that warm-start
	// hints are assembled from (readers go through the ring's own lock);
	// verMu serializes writers so the version history stays linear.
	// cacheMu guards the latest-result cache and the stability knowledge.
	verMu sync.Mutex
	ring  *engine.SnapshotRing

	cacheMu sync.Mutex
	results map[core.Semantics]*cachedResult
	stable  *stableState
	spaces  map[spaceKey]*core.RepairSpace

	requests atomic.Int64
	updates  atomic.Int64
}

// cachedResult is the most recent repair result for one semantics, with
// the version it was computed at and the effective solver budget it ran
// under (results of independent semantics depend on the budget: a
// truncated search can return a non-minimal repair, which must never be
// replayed for a request that asked for a different budget).
type cachedResult struct {
	version     uint64
	solverNodes int64
	res         *core.Result
}

// stableState is the most recent stability verdict and its version.
type stableState struct {
	version uint64
	stable  bool
}

func (sess *Session) warm() error {
	sess.warmOnce.Do(func() {
		prep, err := datalog.Prepare(sess.prog, sess.schema)
		if err != nil {
			sess.warmErr = fmt.Errorf("server: preparing session %q: %w", sess.name, err)
			return
		}
		sess.prep = prep
		if sess.recSnap != nil {
			sess.snap = sess.recSnap
			sess.ring = engine.NewSnapshotRingAt(sess.recSnap, sess.recVersion, sess.maxVersions)
		} else {
			sess.snap = sess.db.Freeze()
			sess.ring = engine.NewSnapshotRing(sess.snap, sess.maxVersions)
		}
		sess.results = make(map[core.Semantics]*cachedResult)
		sess.spaces = make(map[spaceKey]*core.RepairSpace)
		sess.warmDone.Store(true)
	})
	return sess.warmErr
}

// resolve maps a pinned version (0 = head) to its retained snapshot.
func (sess *Session) resolve(version uint64) (*engine.Snapshot, uint64, error) {
	if version == 0 {
		snap, head := sess.ring.Head()
		return snap, head, nil
	}
	if snap, ok := sess.ring.At(version); ok {
		return snap, version, nil
	}
	head := sess.ring.HeadVersion()
	if version > head {
		return nil, 0, fmt.Errorf("%w: session %q version %d not yet minted (head is %d)",
			ErrBadRequest, sess.name, version, head)
	}
	return nil, 0, fmt.Errorf("%w: session %q version %d (retained %d..%d)",
		ErrVersionGone, sess.name, version, sess.ring.Oldest(), head)
}

// repairHints assembles incremental-execution hints for a repair at the
// given version: the latest cached result for the semantics (if computed
// at the same or an earlier retained version, under the same effective
// solver budget where the budget matters) plus the union of the base
// changes between that version and this one. Returns nil when no exact
// hints exist — the request then runs from scratch.
func (sess *Session) repairHints(sem core.Semantics, version uint64, solverNodes int64) *core.WarmStart {
	sess.cacheMu.Lock()
	cached := sess.results[sem]
	sess.cacheMu.Unlock()
	if cached == nil || cached.version > version {
		return nil
	}
	// Only independent semantics consults the SAT budget; for the others
	// results are budget-independent and any cached entry qualifies.
	if sem == core.SemIndependent && cached.solverNodes != solverNodes {
		return nil
	}
	w, ok := sess.changesSince(cached.version, version)
	if !ok {
		return nil
	}
	w.PrevResult = cached.res
	return w
}

// stableHints assembles incremental hints for a stability probe at the
// given version: usable only when an earlier retained version was
// verified *stable* (an unstable predecessor says nothing — deletions may
// have removed the violations since).
func (sess *Session) stableHints(version uint64) *core.WarmStart {
	sess.cacheMu.Lock()
	st := sess.stable
	sess.cacheMu.Unlock()
	if st == nil || !st.stable || st.version > version {
		return nil
	}
	w, ok := sess.changesSince(st.version, version)
	if !ok {
		return nil
	}
	w.PrevStable = true
	return w
}

// changesSince folds the ring's per-version update metadata in (from, to]
// into a WarmStart's change fields. ok is false when any version in the
// range has been evicted from the ring, in which case no exact hints
// exist. Reading needs no writer lock: a version's metadata never changes
// once recorded, and an eviction racing the walk simply reports the chain
// broken (no hints) — the same answer a consistent read after the
// eviction would give.
func (sess *Session) changesSince(from, to uint64) (*core.WarmStart, bool) {
	w := &core.WarmStart{InsertOnly: true}
	changedSet := make(map[string]bool)
	for v := from + 1; v <= to; v++ {
		info, ok := sess.ring.AppliedAt(v)
		if !ok {
			return nil, false
		}
		for _, rel := range info.Changed {
			if !changedSet[rel] {
				changedSet[rel] = true
				w.ChangedRels = append(w.ChangedRels, rel)
			}
		}
		if !info.InsertOnly() {
			w.InsertOnly = false
		}
		for rel, tuples := range info.InsertedTuples {
			if w.Inserted == nil {
				w.Inserted = make(map[string][]*engine.Tuple)
			}
			w.Inserted[rel] = append(w.Inserted[rel], tuples...)
		}
		for rel, tuples := range info.DeletedTuples {
			if w.Deleted == nil {
				w.Deleted = make(map[string][]*engine.Tuple)
			}
			w.Deleted[rel] = append(w.Deleted[rel], tuples...)
		}
	}
	return w, true
}

// storeResult caches a computed result for warm-starting later requests;
// the cache only moves forward in version order.
func (sess *Session) storeResult(sem core.Semantics, version uint64, solverNodes int64, res *core.Result) {
	sess.cacheMu.Lock()
	defer sess.cacheMu.Unlock()
	if cur := sess.results[sem]; cur == nil || version >= cur.version {
		sess.results[sem] = &cachedResult{version: version, solverNodes: solverNodes, res: res}
	}
}

// storeStable records a stability verdict; forward-only like storeResult.
func (sess *Session) storeStable(version uint64, stable bool) {
	sess.cacheMu.Lock()
	defer sess.cacheMu.Unlock()
	if sess.stable == nil || version >= sess.stable.version {
		sess.stable = &stableState{version: version, stable: stable}
	}
}

// Register adds a named session. The Service takes ownership of db: the
// caller must not mutate it afterwards (the first request freezes it into
// the shared snapshot). Registering an existing name returns ErrDuplicate;
// when the cache is full the least-recently-used session is evicted
// (in-flight requests on an evicted session complete normally on their
// forks; with durability enabled its state stays on disk and the session
// is recovered lazily on next access). The program must already be
// validated against the schema.
//
// With durability enabled the registration is persisted — metadata, an
// initial snapshot at version 1, and an empty WAL — before the session
// becomes visible, and the atomic session-directory create arbitrates
// duplicate names (an evicted-but-persisted session still counts as
// registered).
func (s *Service) Register(name string, schema *engine.Schema, db *engine.Database, prog *datalog.Program) (err error) {
	defer s.track("register", time.Now(), &err)
	if name == "" {
		return fmt.Errorf("server: session name must be non-empty")
	}
	if schema == nil || db == nil || prog == nil {
		return fmt.Errorf("server: session %q needs a schema, database, and program", name)
	}
	if db.Schema != schema {
		return fmt.Errorf("server: session %q database built over a different schema", name)
	}
	sess := &Session{
		name: name, schema: schema, db: db, prog: prog,
		tuples:      db.TotalTuples(),
		maxVersions: s.cfg.MaxVersions,
	}
	if s.dur != nil {
		meta := durability.Meta{Name: name, Schema: schema.String(), Program: prog.String()}
		store, cerr := s.dur.Create(meta, db)
		if os.IsExist(cerr) {
			return fmt.Errorf("%w: %q", ErrDuplicate, name)
		}
		if cerr != nil {
			return fmt.Errorf("server: persisting session %q: %w", name, cerr)
		}
		sess.store = store
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byName[name]; ok {
		// Unreachable with durability on (Create would have hit ErrExist);
		// the in-memory check carries the non-durable configuration.
		return fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	s.byName[name] = s.lru.PushFront(sess)
	s.evictOverflowLocked()
	return nil
}

// evictOverflowLocked trims the LRU to capacity; caller holds s.mu.
// Eviction is not deletion: a durable victim's WAL handle is closed but
// its on-disk state survives for lazy recovery.
func (s *Service) evictOverflowLocked() {
	for s.lru.Len() > s.cfg.MaxSessions {
		oldest := s.lru.Back()
		victim := oldest.Value.(*Session)
		s.lru.Remove(oldest)
		delete(s.byName, victim.name)
		s.evictions.Add(1)
		if victim.store != nil {
			// verMu keeps the close ordered after any in-flight append on
			// the victim (lock order s.mu→verMu is acyclic: request paths
			// never take s.mu while holding verMu).
			victim.verMu.Lock()
			victim.store.Close()
			victim.verMu.Unlock()
		}
	}
}

// Deregister removes a session by name, reporting whether it existed.
// With durability enabled this deletes the on-disk state too — the
// counterpart of cache eviction, which merely closes it.
func (s *Service) Deregister(name string) bool {
	var err error
	defer s.track("deregister", time.Now(), &err)
	s.mu.Lock()
	el, ok := s.byName[name]
	if ok {
		s.lru.Remove(el)
		delete(s.byName, name)
		sess := el.Value.(*Session)
		if sess.store != nil {
			sess.verMu.Lock()
			sess.store.Close()
			sess.verMu.Unlock()
		}
	}
	s.mu.Unlock()
	existed := ok
	if s.dur != nil && s.dur.Exists(name) {
		existed = true
		if derr := s.dur.Delete(name); derr != nil && err == nil {
			err = derr
		}
	}
	if !existed {
		err = ErrNotFound
	}
	return existed
}

// session returns the named session, promoting it to most-recently-used.
// With durability enabled, a cache miss for a persisted session triggers
// lazy crash recovery (single-flight per name): the newest snapshot is
// loaded, the WAL tail replayed, and the session re-enters the cache at
// its pre-crash head version.
func (s *Service) session(name string) (*Session, error) {
	for {
		s.mu.Lock()
		if el, ok := s.byName[name]; ok {
			s.lru.MoveToFront(el)
			s.mu.Unlock()
			return el.Value.(*Session), nil
		}
		if s.dur == nil || !s.dur.Exists(name) {
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		if fl, ok := s.loading[name]; ok {
			s.mu.Unlock()
			<-fl.done
			if fl.err != nil {
				return nil, fl.err
			}
			continue // leader inserted it; resolve through the cache
		}
		fl := &loadFlight{done: make(chan struct{})}
		s.loading[name] = fl
		s.mu.Unlock()

		sess, err := s.loadSession(name)
		s.mu.Lock()
		delete(s.loading, name)
		if err == nil {
			s.byName[name] = s.lru.PushFront(sess)
			s.evictOverflowLocked()
		}
		s.mu.Unlock()
		fl.err = err
		close(fl.done)
		if err != nil {
			return nil, err
		}
		return sess, nil
	}
}

// loadSession recovers one session from the durability layer.
func (s *Service) loadSession(name string) (*Session, error) {
	start := time.Now()
	rec, err := s.dur.Open(name)
	if err != nil {
		return nil, fmt.Errorf("server: recovering session %q: %w", name, err)
	}
	schema := rec.Snapshot.Schema()
	prog, err := datalog.ParseAndValidate(rec.Meta.Program, schema)
	if err != nil {
		rec.Store.Close()
		return nil, fmt.Errorf("server: recovering session %q program: %w", name, err)
	}
	s.metrics.recoverySeconds.ObserveSeconds(time.Since(start))
	s.metrics.replayedRecords.Add(uint64(rec.Replayed))
	if rec.WalStats.TornTail {
		s.metrics.tornTails.Inc()
	}
	s.metrics.corruptRecords.Add(uint64(rec.WalStats.CorruptRecords))
	s.metrics.starts.With("recovered").Inc()
	return &Session{
		name:        name,
		schema:      schema,
		prog:        prog,
		tuples:      rec.Snapshot.TotalTuples(),
		maxVersions: s.cfg.MaxVersions,
		store:       rec.Store,
		recSnap:     rec.Snapshot,
		recVersion:  rec.Version,
	}, nil
}

// Warm eagerly compiles and freezes the named session (normally done
// lazily by the first request).
func (s *Service) Warm(name string) error {
	sess, err := s.session(name)
	if err != nil {
		return err
	}
	return sess.warm()
}

// SessionInfo is a point-in-time snapshot of one cached session's state.
type SessionInfo struct {
	Name      string `json:"name"`
	Relations int    `json:"relations"`
	Rules     int    `json:"rules"`
	Tuples    int    `json:"tuples"`
	Recursive bool   `json:"recursive"`
	Warmed    bool   `json:"warmed"`
	// Requests counts repair/is-stable/view-deletion/update calls served.
	Requests int64 `json:"requests"`
	// Forks counts working copies minted from the session's snapshot
	// versions — the engine's concurrent fork accounting; ≥ Requests once
	// warmed because the executors fork internally too.
	Forks int64 `json:"forks"`
	// Version is the head (newest) snapshot version; versions start at 1
	// (the registration state) and advance by one per update. 0 until
	// warmed.
	Version uint64 `json:"version,omitempty"`
	// OldestVersion is the oldest version still resolvable for pinned
	// reads; older pinned requests get 409.
	OldestVersion uint64 `json:"oldest_version,omitempty"`
	// RetainedVersions is the number of live versions in the ring
	// (Version - OldestVersion + 1).
	RetainedVersions int `json:"retained_versions,omitempty"`
	// Updates counts base-table update batches applied.
	Updates int64 `json:"updates,omitempty"`
}

// Sessions lists cached sessions, most recently used first.
func (s *Service) Sessions() []SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SessionInfo, 0, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		sess := el.Value.(*Session)
		info := SessionInfo{
			Name:      sess.name,
			Relations: len(sess.schema.Relations),
			Rules:     len(sess.prog.Rules),
			Recursive: sess.prog.Recursive,
			Requests:  sess.requests.Load(),
		}
		// snap/ring are published by warmDone's release-store; an
		// acquire-load here means stats never block on (or race with) a
		// warm in flight.
		if sess.warmDone.Load() {
			info.Warmed = true
			head, version := sess.ring.Head()
			info.Tuples = head.TotalTuples()
			info.Version = version
			info.OldestVersion = sess.ring.Oldest()
			info.RetainedVersions = sess.ring.Retained()
			info.Updates = sess.updates.Load()
			// Fork accounting spans every retained version, so the stat
			// keeps counting requests that read pinned older versions.
			for v := info.OldestVersion; v <= version; v++ {
				if s, ok := sess.ring.At(v); ok {
					info.Forks += s.Forks()
				}
			}
		} else {
			info.Tuples = sess.tuples
		}
		out = append(out, info)
	}
	return out
}

// Evictions returns the number of sessions evicted by LRU pressure.
func (s *Service) Evictions() int64 { return s.evictions.Load() }

// MaxInFlight returns the effective admission bound (the resolved value,
// after defaulting).
func (s *Service) MaxInFlight() int { return cap(s.tokens) }

// Len returns the number of cached sessions.
func (s *Service) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// RequestOptions tunes one request.
type RequestOptions struct {
	// Timeout overrides Config.DefaultTimeout for this request: > 0 sets
	// a deadline, < 0 disables the default, 0 keeps the default.
	Timeout time.Duration
	// Parallelism overrides Config.Parallelism (> 0).
	Parallelism int
	// SolverMaxNodes overrides Config.SolverMaxNodes (> 0).
	SolverMaxNodes int64
	// Version pins the request to a specific snapshot version
	// (read-your-writes: pin the version an earlier Update returned).
	// 0 reads the head. Pinning a version evicted from the retention ring
	// fails with ErrVersionGone; pinning ahead of the head with
	// ErrBadRequest.
	Version uint64
}

// acquire takes an admission token, honoring ctx while queued.
func (s *Service) acquire(ctx context.Context) error {
	select {
	case s.tokens <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Service) release() { <-s.tokens }

func normalize(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// requestCtx applies the effective timeout.
func (s *Service) requestCtx(ctx context.Context, opts RequestOptions) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	switch {
	case opts.Timeout > 0:
		d = opts.Timeout
	case opts.Timeout < 0:
		d = 0
	}
	if d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return ctx, func() {}
}

func (s *Service) coreOptions(sess *Session, ctx context.Context, opts RequestOptions) core.Options {
	par := s.cfg.Parallelism
	if opts.Parallelism > 0 {
		par = opts.Parallelism
	}
	nodes := s.cfg.SolverMaxNodes
	if opts.SolverMaxNodes > 0 {
		nodes = opts.SolverMaxNodes
	}
	return core.Options{
		Prepared:    sess.prep,
		Parallelism: par,
		Ctx:         ctx,
		Independent: core.IndependentOptions{MaxNodes: nodes},
	}
}

// begin is the shared request prologue: admission, session lookup,
// single-flight warming, accounting, and deadline installation. The caller
// must defer both returned closures' work via done().
func (s *Service) begin(ctx context.Context, name string, opts RequestOptions) (*Session, context.Context, func(), error) {
	ctx = normalize(ctx)
	if err := s.acquire(ctx); err != nil {
		return nil, nil, nil, err
	}
	sess, err := s.session(name)
	if err != nil {
		s.release()
		return nil, nil, nil, err
	}
	wasWarm := sess.warmDone.Load()
	if err := sess.warm(); err != nil {
		s.release()
		return nil, nil, nil, err
	}
	if wasWarm {
		s.metrics.starts.With("warm").Inc()
	} else if sess.recSnap == nil {
		// Recovered sessions were already counted as "recovered" at load
		// time; everything else warming for the first time is a cold start.
		s.metrics.starts.With("cold").Inc()
	}
	reqCtx, cancel := s.requestCtx(ctx, opts)
	sess.requests.Add(1)
	done := func() {
		cancel()
		s.release()
	}
	return sess, reqCtx, done, nil
}

// Repair computes the stabilizing set for the named session under the
// chosen semantics on a private fork of the session's snapshot (the head
// version, or the version pinned in opts). It returns the result and the
// repaired fork (safe to read; discarding it is free).
func (s *Service) Repair(ctx context.Context, name string, sem core.Semantics, opts RequestOptions) (*core.Result, *engine.Database, error) {
	res, db, _, err := s.RepairVersioned(ctx, name, sem, opts)
	return res, db, err
}

// RepairVersioned is Repair additionally reporting the snapshot version
// the repair executed against — the head at admission time, or the pinned
// opts.Version. Results computed at a version warm-start later requests:
// an update confined to relations outside the program's read-set replays
// the cached result with no derivation at all, and insert-only updates
// continue the end-semantics fixpoint from the previous result.
func (s *Service) RepairVersioned(ctx context.Context, name string, sem core.Semantics, opts RequestOptions) (_ *core.Result, _ *engine.Database, _ uint64, err error) {
	defer s.track("repair", time.Now(), &err)
	sess, reqCtx, done, err := s.begin(ctx, name, opts)
	if err != nil {
		return nil, nil, 0, err
	}
	defer done()
	snap, version, err := sess.resolve(opts.Version)
	if err != nil {
		return nil, nil, 0, err
	}
	copts := s.coreOptions(sess, reqCtx, opts)
	copts.Warm = sess.repairHints(sem, version, copts.Independent.MaxNodes)
	res, repaired, err := core.RunWith(snap.Fork(), sess.prog, sem, copts)
	if err != nil {
		return nil, nil, 0, err
	}
	sess.storeResult(sem, version, copts.Independent.MaxNodes, res)
	return res, repaired, version, nil
}

// RepairAll runs all four semantics for the named session under one
// admission token and one deadline, returning results keyed by semantics.
func (s *Service) RepairAll(ctx context.Context, name string, opts RequestOptions) (map[core.Semantics]*core.Result, error) {
	out, _, err := s.RepairAllVersioned(ctx, name, opts)
	return out, err
}

// RepairAllVersioned is RepairAll additionally reporting the snapshot
// version the repairs executed against.
func (s *Service) RepairAllVersioned(ctx context.Context, name string, opts RequestOptions) (_ map[core.Semantics]*core.Result, _ uint64, err error) {
	defer s.track("repair_all", time.Now(), &err)
	sess, reqCtx, done, err := s.begin(ctx, name, opts)
	if err != nil {
		return nil, 0, err
	}
	defer done()
	snap, version, err := sess.resolve(opts.Version)
	if err != nil {
		return nil, 0, err
	}
	out := make(map[core.Semantics]*core.Result, len(core.AllSemantics))
	for _, sem := range core.AllSemantics {
		copts := s.coreOptions(sess, reqCtx, opts)
		copts.Warm = sess.repairHints(sem, version, copts.Independent.MaxNodes)
		res, _, err := core.RunWith(snap.Fork(), sess.prog, sem, copts)
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %w", sem, err)
		}
		sess.storeResult(sem, version, copts.Independent.MaxNodes, res)
		out[sem] = res
	}
	return out, version, nil
}

// IsStable reports whether the session's database is already stable
// (Def. 3.12) using the cached prepared plans. The request deadline is
// honored between rule probes.
func (s *Service) IsStable(ctx context.Context, name string, opts RequestOptions) (bool, error) {
	stable, _, err := s.IsStableVersioned(ctx, name, opts)
	return stable, err
}

// IsStableVersioned is IsStable additionally reporting the snapshot
// version probed. Stability verdicts warm-start later probes: once a
// version is known stable, probing a later version evaluates only the
// insert-seeded passes of rules reading updated relations (deletions
// alone can never destabilize a stable database — rule bodies are
// positive), and updates outside the program's read-set need no
// evaluation at all.
func (s *Service) IsStableVersioned(ctx context.Context, name string, opts RequestOptions) (_ bool, _ uint64, err error) {
	defer s.track("is_stable", time.Now(), &err)
	sess, reqCtx, done, err := s.begin(ctx, name, opts)
	if err != nil {
		return false, 0, err
	}
	defer done()
	snap, version, err := sess.resolve(opts.Version)
	if err != nil {
		return false, 0, err
	}
	par := s.cfg.Parallelism
	if opts.Parallelism > 0 {
		par = opts.Parallelism
	}
	stable, err := core.CheckStableWarmParCtx(reqCtx, snap.Fork(), sess.prep, sess.stableHints(version), par)
	if err != nil {
		return false, 0, err
	}
	sess.storeStable(version, stable)
	return stable, version, nil
}

// UpdateResult reports an applied base-table update batch.
type UpdateResult struct {
	// Version is the new head version; pin it in later requests for
	// read-your-writes.
	Version uint64 `json:"version"`
	// OldestVersion is the oldest version still retained for pinned reads.
	OldestVersion uint64 `json:"oldest_version"`
	// Inserted and Deleted count the rows that took effect (set
	// semantics: duplicate inserts and absent deletes are no-ops).
	Inserted int `json:"inserted"`
	Deleted  int `json:"deleted"`
	// Changed lists the relations the batch modified, sorted.
	Changed []string `json:"changed_relations,omitempty"`
}

// Update applies a base-table update batch (deletes first, then inserts)
// to the named session, producing a new snapshot version and returning
// its number. The session's data changes for subsequent requests;
// requests already in flight keep reading the version they resolved, and
// pinned reads on retained older versions keep working (the retention
// window is Config.MaxVersions).
//
// Untouched relations share their frozen storage and warm indexes with
// the previous version, so an update costs O(touched relations +
// changes), not O(database) — and nothing of the session's prepared
// plans is recomputed. A batch that does not fit the session schema
// (unknown relation, wrong arity) fails atomically with
// ErrSchemaMismatch. Concurrent updates to one session serialize;
// versions advance one batch at a time.
//
// With durability enabled the batch is appended to the session's
// write-ahead log — flushed per the fsync policy — *before* the new
// version becomes visible: an acknowledged update survives a crash. A
// crash after the WAL append but before acknowledgement replays the batch
// on recovery (at-least-once; replay is deterministic, so the recovered
// state is exactly what the acknowledged history would have produced).
// Every Config.SnapshotEvery batches the WAL is compacted into a fresh
// snapshot.
func (s *Service) Update(ctx context.Context, name string, inserts, deletes []engine.Row, opts RequestOptions) (_ *UpdateResult, err error) {
	defer s.track("update", time.Now(), &err)
	sess, _, done, err := s.begin(ctx, name, opts)
	if err != nil {
		return nil, err
	}
	defer done()
	sess.verMu.Lock()
	defer sess.verMu.Unlock()
	head, headVer := sess.ring.Head()
	next, info, err := head.Apply(inserts, deletes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSchemaMismatch, err)
	}
	if sess.store != nil {
		// The record carries the raw batch, not the effective rows: Apply
		// is deterministic (no-ops stay no-ops), so replay reproduces the
		// same state, tuple identities included.
		rec := &durability.Record{Version: headVer + 1, Inserts: inserts, Deletes: deletes}
		t0 := time.Now()
		aerr := sess.store.Append(rec)
		s.metrics.walAppendSeconds.ObserveSeconds(time.Since(t0))
		if aerr != nil {
			return nil, fmt.Errorf("server: persisting update for session %q: %w", name, aerr)
		}
	}
	version := sess.ring.AdvanceApplied(next, info)
	if sess.store != nil && sess.store.ShouldCompact() {
		// A failed compaction is not a failed update (the batch is already
		// durable in the WAL); the next batch simply retries.
		if cerr := sess.store.Compact(next, version); cerr == nil {
			s.metrics.compactions.Inc()
		}
	}
	oldest := sess.ring.Oldest()
	sess.updates.Add(1)
	return &UpdateResult{
		Version:       version,
		OldestVersion: oldest,
		Inserted:      info.Inserted,
		Deleted:       info.Deleted,
		Changed:       info.Changed,
	}, nil
}

// DeleteViewTuple solves the deletion-propagation problem for the named
// session: find a minimum base-deletion set removing the view row with the
// given values while keeping the database stable under the session's
// program (§7 of the paper). The view source is parsed per request against
// the session schema.
func (s *Service) DeleteViewTuple(ctx context.Context, name, viewSrc string, target []engine.Value, opts RequestOptions) (_ *sideeffect.Result, err error) {
	defer s.track("delete_view", time.Now(), &err)
	sess, reqCtx, done, err := s.begin(ctx, name, opts)
	if err != nil {
		return nil, err
	}
	defer done()
	snap, _, err := sess.resolve(opts.Version)
	if err != nil {
		return nil, err
	}
	v, err := sideeffect.ParseView(viewSrc, sess.schema)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	nodes := s.cfg.SolverMaxNodes
	if opts.SolverMaxNodes > 0 {
		nodes = opts.SolverMaxNodes
	}
	res, _, err := sideeffect.DeleteViewTuple(snap.Fork(), v, target, sess.prog,
		sideeffect.Options{MaxNodes: nodes, Ctx: reqCtx})
	if errors.Is(err, sideeffect.ErrNoSuchRow) {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return res, err
}
