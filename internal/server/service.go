// Package server turns the repair library into a concurrent repair
// service: named (schema, program, database) sessions are registered
// once, compiled and frozen once (datalog.Prepare + Database.Freeze), and
// every request forks the shared snapshot — zero deep copies and zero
// re-planning on the hot path. The package exposes both an embeddable Go
// API (Service) and a net/http JSON API (Service.Handler); cmd/deltarepaird
// wraps the latter in a binary.
//
// Concurrency model:
//
//   - Admission control: a bounded token pool (Config.MaxInFlight) caps
//     the number of repairs executing at once; excess requests queue in
//     acquire() and honor their context while waiting.
//   - Session cache: an LRU keyed by session name caches the Prepared
//     plan and frozen Snapshot. Warming is single-flight (sync.Once per
//     session): concurrent first requests prepare and freeze exactly once.
//   - Isolation: every request works on a private Snapshot.Fork; forks
//     share the frozen storage and warm indexes read-only, so requests
//     never observe each other's deletions.
//   - Cancellation: per-request deadlines (Config.DefaultTimeout or the
//     request's own timeout) flow through core.Options.Ctx into the
//     executors' derivation rounds and the SAT search.
package server

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/sideeffect"
)

// Service errors distinguished by the HTTP layer.
var (
	// ErrNotFound reports a request against an unknown (or evicted)
	// session name.
	ErrNotFound = errors.New("server: session not found")
	// ErrDuplicate reports a Register against a name already registered.
	ErrDuplicate = errors.New("server: session already registered")
	// ErrBadRequest wraps client-side input errors (e.g. a malformed view
	// source) so the HTTP layer maps them to 400 rather than 500.
	ErrBadRequest = errors.New("server: bad request")
)

// Default configuration values.
const (
	// DefaultMaxSessions is the session-cache capacity when
	// Config.MaxSessions is 0.
	DefaultMaxSessions = 64
)

// Config tunes a Service.
type Config struct {
	// MaxSessions caps the session cache; registering beyond it evicts
	// the least-recently-used session. 0 means DefaultMaxSessions.
	MaxSessions int
	// MaxInFlight bounds the number of concurrently executing repairs
	// (admission control); excess requests queue, honoring their context
	// while waiting. 0 means 2×GOMAXPROCS.
	MaxInFlight int
	// DefaultTimeout bounds each request when the request itself does not
	// choose a timeout. 0 means no default deadline.
	DefaultTimeout time.Duration
	// Parallelism is the per-request rule-evaluation worker count handed
	// to core.Options.Parallelism (0 or 1 = sequential). Total executor
	// concurrency is bounded by MaxInFlight × Parallelism.
	Parallelism int
	// SolverMaxNodes is the default Min-Ones-SAT budget for independent
	// semantics and view-tuple deletion. 0 means the solver default.
	SolverMaxNodes int64
}

// Service is a concurrent repair service over a cache of named sessions.
// All methods are safe for concurrent use.
type Service struct {
	cfg    Config
	tokens chan struct{}

	mu     sync.Mutex
	byName map[string]*list.Element
	lru    *list.List // of *Session; front = most recently used

	evictions atomic.Int64
}

// New builds a Service; zero-value Config fields take the documented
// defaults.
func New(cfg Config) *Service {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	return &Service{
		cfg:    cfg,
		tokens: make(chan struct{}, cfg.MaxInFlight),
		byName: make(map[string]*list.Element),
		lru:    list.New(),
	}
}

// Session is one registered (schema, program, database) triple with its
// lazily warmed execution state. Sessions are owned by the Service;
// callers interact through Service methods.
type Session struct {
	name   string
	schema *engine.Schema
	db     *engine.Database
	prog   *datalog.Program
	tuples int // live tuple count at Register time (db may be mid-freeze later)

	// Single-flight warming: the first request (or Warm call) compiles
	// the program and freezes the database exactly once; concurrent
	// callers block on the Once and then share the results. warmDone is
	// set (release-store) after a successful warm so stats readers can
	// peek at snap without blocking on a warm in flight.
	warmOnce sync.Once
	prep     *datalog.Prepared
	snap     *engine.Snapshot
	warmErr  error
	warmDone atomic.Bool

	requests atomic.Int64
}

func (sess *Session) warm() error {
	sess.warmOnce.Do(func() {
		prep, err := datalog.Prepare(sess.prog, sess.schema)
		if err != nil {
			sess.warmErr = fmt.Errorf("server: preparing session %q: %w", sess.name, err)
			return
		}
		sess.prep = prep
		sess.snap = sess.db.Freeze()
		sess.warmDone.Store(true)
	})
	return sess.warmErr
}

// Register adds a named session. The Service takes ownership of db: the
// caller must not mutate it afterwards (the first request freezes it into
// the shared snapshot). Registering an existing name returns ErrDuplicate;
// when the cache is full the least-recently-used session is evicted
// (in-flight requests on an evicted session complete normally on their
// forks). The program must already be validated against the schema.
func (s *Service) Register(name string, schema *engine.Schema, db *engine.Database, prog *datalog.Program) error {
	if name == "" {
		return fmt.Errorf("server: session name must be non-empty")
	}
	if schema == nil || db == nil || prog == nil {
		return fmt.Errorf("server: session %q needs a schema, database, and program", name)
	}
	if db.Schema != schema {
		return fmt.Errorf("server: session %q database built over a different schema", name)
	}
	sess := &Session{name: name, schema: schema, db: db, prog: prog, tuples: db.TotalTuples()}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byName[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	s.byName[name] = s.lru.PushFront(sess)
	for s.lru.Len() > s.cfg.MaxSessions {
		oldest := s.lru.Back()
		victim := oldest.Value.(*Session)
		s.lru.Remove(oldest)
		delete(s.byName, victim.name)
		s.evictions.Add(1)
	}
	return nil
}

// Deregister evicts a session by name, reporting whether it existed.
func (s *Service) Deregister(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byName[name]
	if !ok {
		return false
	}
	s.lru.Remove(el)
	delete(s.byName, name)
	return true
}

// session returns the named session, promoting it to most-recently-used.
func (s *Service) session(name string) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	s.lru.MoveToFront(el)
	return el.Value.(*Session), nil
}

// Warm eagerly compiles and freezes the named session (normally done
// lazily by the first request).
func (s *Service) Warm(name string) error {
	sess, err := s.session(name)
	if err != nil {
		return err
	}
	return sess.warm()
}

// SessionInfo is a point-in-time snapshot of one cached session's state.
type SessionInfo struct {
	Name      string `json:"name"`
	Relations int    `json:"relations"`
	Rules     int    `json:"rules"`
	Tuples    int    `json:"tuples"`
	Recursive bool   `json:"recursive"`
	Warmed    bool   `json:"warmed"`
	// Requests counts repair/is-stable/view-deletion calls served.
	Requests int64 `json:"requests"`
	// Forks counts working copies minted from the shared snapshot — the
	// engine's concurrent fork accounting; ≥ Requests once warmed because
	// the executors fork internally too.
	Forks int64 `json:"forks"`
}

// Sessions lists cached sessions, most recently used first.
func (s *Service) Sessions() []SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SessionInfo, 0, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		sess := el.Value.(*Session)
		info := SessionInfo{
			Name:      sess.name,
			Relations: len(sess.schema.Relations),
			Rules:     len(sess.prog.Rules),
			Recursive: sess.prog.Recursive,
			Requests:  sess.requests.Load(),
		}
		// snap is published by warmDone's release-store; an acquire-load
		// here means stats never block on (or race with) a warm in flight.
		if sess.warmDone.Load() {
			info.Warmed = true
			info.Tuples = sess.snap.TotalTuples()
			info.Forks = sess.snap.Forks()
		} else {
			info.Tuples = sess.tuples
		}
		out = append(out, info)
	}
	return out
}

// Evictions returns the number of sessions evicted by LRU pressure.
func (s *Service) Evictions() int64 { return s.evictions.Load() }

// MaxInFlight returns the effective admission bound (the resolved value,
// after defaulting).
func (s *Service) MaxInFlight() int { return cap(s.tokens) }

// Len returns the number of cached sessions.
func (s *Service) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// RequestOptions tunes one request.
type RequestOptions struct {
	// Timeout overrides Config.DefaultTimeout for this request: > 0 sets
	// a deadline, < 0 disables the default, 0 keeps the default.
	Timeout time.Duration
	// Parallelism overrides Config.Parallelism (> 0).
	Parallelism int
	// SolverMaxNodes overrides Config.SolverMaxNodes (> 0).
	SolverMaxNodes int64
}

// acquire takes an admission token, honoring ctx while queued.
func (s *Service) acquire(ctx context.Context) error {
	select {
	case s.tokens <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Service) release() { <-s.tokens }

func normalize(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// requestCtx applies the effective timeout.
func (s *Service) requestCtx(ctx context.Context, opts RequestOptions) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	switch {
	case opts.Timeout > 0:
		d = opts.Timeout
	case opts.Timeout < 0:
		d = 0
	}
	if d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return ctx, func() {}
}

func (s *Service) coreOptions(sess *Session, ctx context.Context, opts RequestOptions) core.Options {
	par := s.cfg.Parallelism
	if opts.Parallelism > 0 {
		par = opts.Parallelism
	}
	nodes := s.cfg.SolverMaxNodes
	if opts.SolverMaxNodes > 0 {
		nodes = opts.SolverMaxNodes
	}
	return core.Options{
		Prepared:    sess.prep,
		Parallelism: par,
		Ctx:         ctx,
		Independent: core.IndependentOptions{MaxNodes: nodes},
	}
}

// begin is the shared request prologue: admission, session lookup,
// single-flight warming, accounting, and deadline installation. The caller
// must defer both returned closures' work via done().
func (s *Service) begin(ctx context.Context, name string, opts RequestOptions) (*Session, context.Context, func(), error) {
	ctx = normalize(ctx)
	if err := s.acquire(ctx); err != nil {
		return nil, nil, nil, err
	}
	sess, err := s.session(name)
	if err != nil {
		s.release()
		return nil, nil, nil, err
	}
	if err := sess.warm(); err != nil {
		s.release()
		return nil, nil, nil, err
	}
	reqCtx, cancel := s.requestCtx(ctx, opts)
	sess.requests.Add(1)
	done := func() {
		cancel()
		s.release()
	}
	return sess, reqCtx, done, nil
}

// Repair computes the stabilizing set for the named session under the
// chosen semantics on a private fork of the shared snapshot. It returns
// the result and the repaired fork (safe to read; discarding it is free).
func (s *Service) Repair(ctx context.Context, name string, sem core.Semantics, opts RequestOptions) (*core.Result, *engine.Database, error) {
	sess, reqCtx, done, err := s.begin(ctx, name, opts)
	if err != nil {
		return nil, nil, err
	}
	defer done()
	return core.RunWith(sess.snap.Fork(), sess.prog, sem, s.coreOptions(sess, reqCtx, opts))
}

// RepairAll runs all four semantics for the named session under one
// admission token and one deadline, returning results keyed by semantics.
func (s *Service) RepairAll(ctx context.Context, name string, opts RequestOptions) (map[core.Semantics]*core.Result, error) {
	sess, reqCtx, done, err := s.begin(ctx, name, opts)
	if err != nil {
		return nil, err
	}
	defer done()
	out := make(map[core.Semantics]*core.Result, len(core.AllSemantics))
	for _, sem := range core.AllSemantics {
		res, _, err := core.RunWith(sess.snap.Fork(), sess.prog, sem, s.coreOptions(sess, reqCtx, opts))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sem, err)
		}
		out[sem] = res
	}
	return out, nil
}

// IsStable reports whether the session's database is already stable
// (Def. 3.12) using the cached prepared plans. The request deadline is
// honored between rule probes.
func (s *Service) IsStable(ctx context.Context, name string, opts RequestOptions) (bool, error) {
	sess, reqCtx, done, err := s.begin(ctx, name, opts)
	if err != nil {
		return false, err
	}
	defer done()
	return core.CheckStablePCtx(reqCtx, sess.snap.Fork(), sess.prep)
}

// DeleteViewTuple solves the deletion-propagation problem for the named
// session: find a minimum base-deletion set removing the view row with the
// given values while keeping the database stable under the session's
// program (§7 of the paper). The view source is parsed per request against
// the session schema.
func (s *Service) DeleteViewTuple(ctx context.Context, name, viewSrc string, target []engine.Value, opts RequestOptions) (*sideeffect.Result, error) {
	sess, reqCtx, done, err := s.begin(ctx, name, opts)
	if err != nil {
		return nil, err
	}
	defer done()
	v, err := sideeffect.ParseView(viewSrc, sess.schema)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	nodes := s.cfg.SolverMaxNodes
	if opts.SolverMaxNodes > 0 {
		nodes = opts.SolverMaxNodes
	}
	res, _, err := sideeffect.DeleteViewTuple(sess.snap.Fork(), v, target, sess.prog,
		sideeffect.Options{MaxNodes: nodes, Ctx: reqCtx})
	if errors.Is(err, sideeffect.ErrNoSuchRow) {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return res, err
}
