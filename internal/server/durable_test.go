package server

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server/durability"
)

// Server-level durability tests: crash recovery (including the mid-batch,
// torn-tail, and corrupt-record shapes), evict-then-reload, deregister
// deleting disk state, and the /metrics endpoint.

func openDurable(t *testing.T, dir string, cfg Config) *Service {
	t.Helper()
	cfg.DataDir = dir
	cfg.NoFsync = true // tests exercise crash recovery, not power loss
	svc, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return svc
}

// dumpHead renders a session's head state (every tuple's identity and
// content, in scan order) for byte-identity assertions.
func dumpHead(t *testing.T, svc *Service, name string) (string, uint64) {
	t.Helper()
	sess, err := svc.session(name)
	if err != nil {
		t.Fatalf("session %q: %v", name, err)
	}
	if err := sess.warm(); err != nil {
		t.Fatalf("warm %q: %v", name, err)
	}
	head, ver := sess.ring.Head()
	var b strings.Builder
	fork := head.Fork()
	for _, rs := range fork.Schema.Relations {
		fork.Relation(rs.Name).Scan(func(tu *engine.Tuple) bool {
			b.WriteString(tu.ID + "|" + tu.Key() + "\n")
			return true
		})
	}
	return b.String(), ver
}

func walPath(dir, name string) string {
	return filepath.Join(dir, "s-"+name, "wal.log")
}

// TestDurableCrashRecoveryAllSemantics is the headline guarantee: after a
// crash (no clean shutdown) spanning a compaction boundary, the recovered
// session is byte-identical — same tuples, same identities, same version —
// and every semantics produces the same repair it did before the crash.
func TestDurableCrashRecoveryAllSemantics(t *testing.T) {
	dir := t.TempDir()
	svc := openDurable(t, dir, Config{SnapshotEvery: 2})
	register(t, svc, "papers")
	ctx := context.Background()

	// Three batches (insert-only, mixed, delete-only) cross the
	// SnapshotEvery=2 compaction boundary: recovery must load the
	// compacted snapshot and replay the WAL tail.
	batches := []struct{ ins, del []engine.Row }{
		{ins: []engine.Row{row("Writes", engine.Int(2), engine.Int(6))}},
		{ins: []engine.Row{row("Cite", engine.Int(6), engine.Int(7))},
			del: []engine.Row{row("AuthGrant", engine.Int(4), engine.Int(2))}},
		{del: []engine.Row{row("Writes", engine.Int(2), engine.Int(6))}},
	}
	var version uint64
	for i, b := range batches {
		res, err := svc.Update(ctx, "papers", b.ins, b.del, RequestOptions{})
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		version = res.Version
	}
	if version != 4 {
		t.Fatalf("head version %d, want 4", version)
	}
	before := make(map[core.Semantics]string)
	for _, sem := range core.AllSemantics {
		res, _, err := svc.Repair(ctx, "papers", sem, RequestOptions{})
		if err != nil {
			t.Fatalf("pre-crash %s: %v", sem, err)
		}
		before[sem] = keysOf(res)
	}
	wantDump, _ := dumpHead(t, svc, "papers")
	// Crash: abandon svc without Close.

	svc2 := openDurable(t, dir, Config{SnapshotEvery: 2})
	defer svc2.Close()
	gotDump, gotVer := dumpHead(t, svc2, "papers")
	if gotVer != version {
		t.Fatalf("recovered version %d, want %d", gotVer, version)
	}
	if gotDump != wantDump {
		t.Fatalf("recovered state not byte-identical:\n got:\n%s\nwant:\n%s", gotDump, wantDump)
	}
	for _, sem := range core.AllSemantics {
		res, _, err := svc2.Repair(ctx, "papers", sem, RequestOptions{})
		if err != nil {
			t.Fatalf("post-recovery %s: %v", sem, err)
		}
		if keysOf(res) != before[sem] {
			t.Fatalf("%s repair diverged:\n before: %s\n after:  %s", sem, before[sem], keysOf(res))
		}
	}
	// The recovered session keeps accepting updates with continuous
	// version numbers.
	res, err := svc2.Update(ctx, "papers", []engine.Row{row("Grant", engine.Int(3), engine.Str("DFG"))}, nil, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != version+1 {
		t.Fatalf("post-recovery update version %d, want %d", res.Version, version+1)
	}
}

// TestDurableMidBatchCrash simulates a crash after the WAL append but
// before the update became visible (or acknowledged): recovery replays the
// record, restoring the at-least-once contract.
func TestDurableMidBatchCrash(t *testing.T) {
	dir := t.TempDir()
	svc := openDurable(t, dir, Config{})
	register(t, svc, "papers")
	ctx := context.Background()
	if _, err := svc.Update(ctx, "papers", []engine.Row{row("Grant", engine.Int(3), engine.Str("DFG"))}, nil, RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	// Append version 3's record directly to the WAL, exactly as
	// Service.Update would have, and "crash" before advancing memory.
	log, err := durability.OpenLog(walPath(dir, "papers"), durability.FsyncNever)
	if err != nil {
		t.Fatal(err)
	}
	rec := &durability.Record{Version: 3, Inserts: []engine.Row{row("Grant", engine.Int(4), engine.Str("ANR"))}}
	if err := log.Append(rec); err != nil {
		t.Fatal(err)
	}
	log.Close()

	svc2 := openDurable(t, dir, Config{})
	defer svc2.Close()
	dump, ver := dumpHead(t, svc2, "papers")
	if ver != 3 {
		t.Fatalf("recovered version %d, want 3 (mid-batch record replayed)", ver)
	}
	if !strings.Contains(dump, `Grant(i4,"ANR")`) {
		t.Fatalf("mid-batch insert lost in recovery:\n%s", dump)
	}
}

// TestDurableTornTail covers a crash mid-append at the server level: the
// torn final record is truncated away and the session recovers to the
// last intact version.
func TestDurableTornTail(t *testing.T) {
	dir := t.TempDir()
	svc := openDurable(t, dir, Config{})
	register(t, svc, "papers")
	ctx := context.Background()
	if _, err := svc.Update(ctx, "papers", []engine.Row{row("Grant", engine.Int(3), engine.Str("DFG"))}, nil, RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	frame, err := durability.EncodeRecord(&durability.Record{Version: 3,
		Inserts: []engine.Row{row("Grant", engine.Int(4), engine.Str("ANR"))}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(walPath(dir, "papers"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	svc2 := openDurable(t, dir, Config{})
	defer svc2.Close()
	dump, ver := dumpHead(t, svc2, "papers")
	if ver != 2 {
		t.Fatalf("recovered version %d, want 2 (torn record dropped)", ver)
	}
	if strings.Contains(dump, "ANR") {
		t.Fatalf("torn record partially applied:\n%s", dump)
	}
	// The torn-tail repair is surfaced in the metrics.
	rr := httptest.NewRecorder()
	svc2.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rr.Body.String(), "deltarepaird_recovery_torn_tails_total 1") {
		t.Errorf("torn tail not surfaced in metrics:\n%s", rr.Body.String())
	}
}

// TestDurableCorruptRecord covers a flipped byte in a WAL record: the
// corrupt record (and anything after it) is dropped and counted.
func TestDurableCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	svc := openDurable(t, dir, Config{})
	register(t, svc, "papers")
	ctx := context.Background()
	for i, rel := range []string{"DFG", "ANR"} {
		ins := []engine.Row{row("Grant", engine.Int(3+i), engine.Str(rel))}
		if _, err := svc.Update(ctx, "papers", ins, nil, RequestOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	wal := walPath(dir, "papers")
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatal(err)
	}

	svc2 := openDurable(t, dir, Config{})
	defer svc2.Close()
	dump, ver := dumpHead(t, svc2, "papers")
	if ver != 2 {
		t.Fatalf("recovered version %d, want 2 (corrupt record dropped)", ver)
	}
	if strings.Contains(dump, "ANR") {
		t.Fatalf("corrupt record applied:\n%s", dump)
	}
	rr := httptest.NewRecorder()
	svc2.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rr.Body.String(), "deltarepaird_recovery_corrupt_records_total 1") {
		t.Errorf("corrupt record not surfaced in metrics:\n%s", rr.Body.String())
	}
}

// TestDurableEvictThenReload: cache eviction is not deletion — the
// evicted session's disk state stays, and the next access recovers it
// with its update history intact.
func TestDurableEvictThenReload(t *testing.T) {
	dir := t.TempDir()
	svc := openDurable(t, dir, Config{MaxSessions: 1})
	defer svc.Close()
	register(t, svc, "first")
	ctx := context.Background()
	if _, err := svc.Update(ctx, "first", []engine.Row{row("Grant", engine.Int(3), engine.Str("DFG"))}, nil, RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	register(t, svc, "second") // evicts "first" (closes its WAL, keeps disk)
	if svc.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", svc.Evictions())
	}
	// Accessing "first" reloads it from disk at version 2; "second" is
	// evicted in turn.
	res, err := svc.Update(ctx, "first", []engine.Row{row("Grant", engine.Int(4), engine.Str("ANR"))}, nil, RequestOptions{})
	if err != nil {
		t.Fatalf("update after evict+reload: %v", err)
	}
	if res.Version != 3 {
		t.Fatalf("version after reload %d, want 3", res.Version)
	}
}

// TestDurableDeregisterDeletesDisk: deregistration removes the durable
// state, so the name is gone after a restart and re-registerable now.
func TestDurableDeregisterDeletesDisk(t *testing.T) {
	dir := t.TempDir()
	svc := openDurable(t, dir, Config{})
	register(t, svc, "papers")
	if !svc.Deregister("papers") {
		t.Fatal("deregister reported not found")
	}
	if _, err := svc.session("papers"); err == nil {
		t.Fatal("session resolvable after deregister")
	}
	register(t, svc, "papers") // name free again
	svc.Close()

	svc2 := openDurable(t, dir, Config{})
	defer svc2.Close()
	names, err := svc2.Persisted()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "papers" {
		t.Fatalf("persisted after restart: %v", names)
	}
}

// TestDurableDuplicateAcrossEviction: an evicted-but-persisted session
// still counts as registered.
func TestDurableDuplicateAcrossEviction(t *testing.T) {
	dir := t.TempDir()
	svc := openDurable(t, dir, Config{MaxSessions: 1})
	defer svc.Close()
	register(t, svc, "first")
	register(t, svc, "second") // evicts "first"
	db, prog := fixture(t)
	if err := svc.Register("first", db.Schema, db, prog); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("re-register of evicted durable session: %v, want duplicate", err)
	}
}

// TestMetricsEndpoint exercises the inventory end to end over HTTP.
func TestMetricsEndpoint(t *testing.T) {
	svc := New(Config{})
	register(t, svc, "papers")
	ctx := context.Background()
	if _, _, err := svc.Repair(ctx, "papers", core.SemEnd, RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Repair(ctx, "papers", core.SemEnd, RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Update(ctx, "papers", []engine.Row{row("Grant", engine.Int(3), engine.Str("DFG"))}, nil, RequestOptions{}); err != nil {
		t.Fatal(err)
	}

	rr := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /metrics = %d", rr.Code)
	}
	body := rr.Body.String()
	for _, want := range []string{
		`deltarepaird_requests_total{kind="register",status="ok"} 1`,
		`deltarepaird_requests_total{kind="repair",status="ok"} 2`,
		`deltarepaird_requests_total{kind="update",status="ok"} 1`,
		`deltarepaird_session_starts_total{type="cold"} 1`,
		`deltarepaird_session_starts_total{type="warm"} 2`,
		"deltarepaird_sessions 1",
		"deltarepaird_session_versions 2",
		"deltarepaird_request_seconds_count 4",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if !strings.Contains(body, "# TYPE deltarepaird_request_seconds histogram") {
		t.Error("histogram type line missing")
	}
}
