package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/sideeffect"
)

// The JSON API. All bodies are JSON; errors come back as
// {"error": "..."} with a meaningful status code.
//
//	GET    /healthz                                liveness + cache stats
//	GET    /metrics                                Prometheus text metrics
//	GET    /v1/sessions                            list cached sessions
//	POST   /v1/sessions                            register a session
//	DELETE /v1/sessions/{name}                     evict a session
//	POST   /v1/sessions/{name}/update              insert/delete base tuples → new version
//	POST   /v1/sessions/{name}/repair              run one semantics
//	POST   /v1/sessions/{name}/repair-all          run all four + containments
//	POST   /v1/sessions/{name}/repairs             enumerate the k best repairs
//	POST   /v1/sessions/{name}/query               certain/possible answers (CQA)
//	POST   /v1/sessions/{name}/is-stable           stability probe
//	POST   /v1/sessions/{name}/delete-view-tuple   deletion propagation (§7)
//
// Sessions are mutable: update applies a base-table batch and returns the
// new monotonically increasing version. Request bodies may pin "version"
// (read-your-writes) to any retained version; responses echo the version
// they executed against. Status codes: 400 malformed input / future
// version, 404 unknown session, 409 duplicate register / schema-mismatch
// update / evicted version, 499 client canceled, 504 deadline exceeded.

// RegisterRequest is the POST /v1/sessions body.
type RegisterRequest struct {
	// Name identifies the session in later requests.
	Name string `json:"name"`
	// Schema is the schema source, one "Rel(attr, ...)" per line.
	Schema string `json:"schema"`
	// Program is the delta program source.
	Program string `json:"program"`
	// Tuples lists rows per relation. Values are JSON scalars: integral
	// numbers become ints, other numbers floats, strings strings.
	Tuples map[string][][]any `json:"tuples"`
	// Warm eagerly prepares and freezes the session instead of leaving it
	// to the first request.
	Warm bool `json:"warm,omitempty"`
}

// RepairRequest is the body of repair, repair-all, and is-stable calls.
type RepairRequest struct {
	// Semantics is one of "independent", "step", "stage", "end"
	// (repair only).
	Semantics string `json:"semantics,omitempty"`
	// TimeoutMS bounds the request; 0 uses the server default, < 0
	// disables it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Parallelism overrides the server's per-request worker count.
	Parallelism int `json:"parallelism,omitempty"`
	// SolverMaxNodes overrides the SAT budget (independent semantics).
	SolverMaxNodes int64 `json:"solver_max_nodes,omitempty"`
	// Version pins the request to a retained snapshot version
	// (read-your-writes); 0 reads the head.
	Version uint64 `json:"version,omitempty"`
}

func (rr *RepairRequest) options() RequestOptions {
	opts := RequestOptions{
		Parallelism:    rr.Parallelism,
		SolverMaxNodes: rr.SolverMaxNodes,
		Version:        rr.Version,
	}
	switch {
	case rr.TimeoutMS > 0:
		opts.Timeout = time.Duration(rr.TimeoutMS) * time.Millisecond
	case rr.TimeoutMS < 0:
		opts.Timeout = -1
	}
	return opts
}

// RepairResponse reports one semantics' repair.
type RepairResponse struct {
	Session string `json:"session"`
	// Version is the snapshot version the repair executed against (the
	// head at admission, or the pinned request version).
	Version   uint64         `json:"version"`
	Semantics string         `json:"semantics"`
	Size      int            `json:"size"`
	Deleted   []string       `json:"deleted"`
	ByRel     map[string]int `json:"deleted_by_relation,omitempty"`
	Rounds    int            `json:"rounds"`
	Optimal   bool           `json:"optimal"`
	ElapsedUS int64          `json:"elapsed_us"`
}

func repairResponse(name string, version uint64, res *core.Result) RepairResponse {
	return RepairResponse{
		Session:   name,
		Version:   version,
		Semantics: res.Semantics.String(),
		Size:      res.Size(),
		Deleted:   res.Keys(),
		ByRel:     res.ByRelation(),
		Rounds:    res.Rounds,
		Optimal:   res.Optimal,
		ElapsedUS: res.Timing.Total().Microseconds(),
	}
}

// RepairAllResponse reports all four semantics plus the paper's Table 3
// containment flags.
type RepairAllResponse struct {
	Session     string                    `json:"session"`
	Version     uint64                    `json:"version"`
	Results     map[string]RepairResponse `json:"results"`
	Containment core.Containment          `json:"containment"`
}

// UpdateRequest is the POST /v1/sessions/{name}/update body: base-table
// rows to delete and insert (deletes apply first, so one batch can
// replace a row). Values follow the RegisterRequest conventions.
type UpdateRequest struct {
	Inserts   map[string][][]any `json:"inserts,omitempty"`
	Deletes   map[string][][]any `json:"deletes,omitempty"`
	TimeoutMS int64              `json:"timeout_ms,omitempty"`
}

// ViewDeleteRequest is the delete-view-tuple body.
type ViewDeleteRequest struct {
	// View is a conjunctive query, e.g. "V(x, y) :- R(x, z), S(z, y).".
	View string `json:"view"`
	// Values selects the view row to remove.
	Values         []any  `json:"values"`
	TimeoutMS      int64  `json:"timeout_ms,omitempty"`
	SolverMaxNodes int64  `json:"solver_max_nodes,omitempty"`
	Version        uint64 `json:"version,omitempty"`
}

// ViewDeleteResponse reports a deletion-propagation solution.
type ViewDeleteResponse struct {
	Session        string   `json:"session"`
	Size           int      `json:"size"`
	Deleted        []string `json:"deleted"`
	Optimal        bool     `json:"optimal"`
	ViewRowsBefore int      `json:"view_rows_before"`
	ViewRowsAfter  int      `json:"view_rows_after"`
	ElapsedUS      int64    `json:"elapsed_us"`
}

// Handler returns the JSON API over this service.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("POST /v1/sessions", s.handleRegister)
	mux.HandleFunc("DELETE /v1/sessions/{name}", s.handleDeregister)
	mux.HandleFunc("POST /v1/sessions/{name}/update", s.handleUpdate)
	mux.HandleFunc("POST /v1/sessions/{name}/repair", s.handleRepair)
	mux.HandleFunc("POST /v1/sessions/{name}/repair-all", s.handleRepairAll)
	mux.HandleFunc("POST /v1/sessions/{name}/repairs", s.handleRepairs)
	mux.HandleFunc("POST /v1/sessions/{name}/query", s.handleQuery)
	mux.HandleFunc("POST /v1/sessions/{name}/is-stable", s.handleIsStable)
	mux.HandleFunc("POST /v1/sessions/{name}/delete-view-tuple", s.handleDeleteViewTuple)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrDuplicate), errors.Is(err, ErrSchemaMismatch), errors.Is(err, ErrVersionGone):
		status = http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = 499 // client closed request (nginx convention)
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeBadRequest(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
}

// decodeBody decodes a JSON body with numbers kept exact; an empty body
// decodes to the zero value so POSTs without options work.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	if err := dec.Decode(v); err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

// jsonValue converts one decoded JSON scalar to an engine Value.
func jsonValue(raw any) (engine.Value, error) {
	switch x := raw.(type) {
	case string:
		return engine.Str(x), nil
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return engine.Int64(i), nil
		}
		f, err := x.Float64()
		if err != nil {
			return engine.Value{}, fmt.Errorf("bad number %q", x.String())
		}
		return engine.Float(f), nil
	case float64: // decoder without UseNumber
		if x == float64(int64(x)) {
			return engine.Int64(int64(x)), nil
		}
		return engine.Float(x), nil
	default:
		return engine.Value{}, fmt.Errorf("unsupported value %v (%T): want string or number", raw, raw)
	}
}

func jsonValues(raw []any) ([]engine.Value, error) {
	out := make([]engine.Value, len(raw))
	for i, r := range raw {
		v, err := jsonValue(r)
		if err != nil {
			return nil, fmt.Errorf("value %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

func (s *Service) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":        true,
		"sessions":  s.Len(),
		"evictions": s.Evictions(),
	})
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Sessions())
}

func (s *Service) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := decodeBody(r, &req); err != nil {
		writeBadRequest(w, err)
		return
	}
	schema, db, prog, err := buildSession(&req)
	if err != nil {
		writeBadRequest(w, err)
		return
	}
	// Count before Register publishes the session: a concurrent first
	// request may start freezing db the moment it is visible.
	tuples := db.TotalTuples()
	if err := s.Register(req.Name, schema, db, prog); err != nil {
		writeErr(w, err)
		return
	}
	if req.Warm {
		if err := s.Warm(req.Name); err != nil {
			writeErr(w, err)
			return
		}
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"name":   req.Name,
		"tuples": tuples,
		"rules":  len(prog.Rules),
	})
}

// buildSession parses and loads a RegisterRequest into engine objects.
func buildSession(req *RegisterRequest) (*engine.Schema, *engine.Database, *datalog.Program, error) {
	if req.Name == "" {
		return nil, nil, nil, fmt.Errorf("missing session name")
	}
	schema, err := engine.ParseSchema(req.Schema)
	if err != nil {
		return nil, nil, nil, err
	}
	for rel := range req.Tuples {
		if schema.Relation(rel) == nil {
			return nil, nil, nil, fmt.Errorf("tuples reference unknown relation %q", rel)
		}
	}
	db := engine.NewDatabase(schema)
	// Load relations in schema declaration order (not map order) so tuple
	// identities — and therefore result ordering — are deterministic for a
	// given registration body.
	for _, rs := range schema.Relations {
		for ri, row := range req.Tuples[rs.Name] {
			vals, err := jsonValues(row)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("relation %s row %d: %w", rs.Name, ri, err)
			}
			if _, err := db.Insert(rs.Name, vals...); err != nil {
				return nil, nil, nil, fmt.Errorf("relation %s row %d: %w", rs.Name, ri, err)
			}
		}
	}
	prog, err := datalog.ParseAndValidate(req.Program, schema)
	if err != nil {
		return nil, nil, nil, err
	}
	return schema, db, prog, nil
}

func (s *Service) handleDeregister(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.Deregister(name) {
		writeErr(w, fmt.Errorf("%w: %q", ErrNotFound, name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"evicted": name})
}

func semFromString(s string) (core.Semantics, error) {
	switch s {
	case "":
		return 0, fmt.Errorf("missing semantics: want one of independent, step, stage, end")
	case "independent", "ind":
		return core.SemIndependent, nil
	case "step":
		return core.SemStep, nil
	case "stage":
		return core.SemStage, nil
	case "end":
		return core.SemEnd, nil
	default:
		return 0, fmt.Errorf("unknown semantics %q: want one of independent, step, stage, end", s)
	}
}

// updateRows converts an UpdateRequest tuple map into engine rows, in
// schema declaration order then row order, so batch application order —
// and therefore tuple identity assignment — is deterministic for a given
// request body.
func (s *Service) updateRows(schema map[string][][]any) ([]engine.Row, error) {
	if len(schema) == 0 {
		return nil, nil
	}
	rels := make([]string, 0, len(schema))
	for rel := range schema {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	var out []engine.Row
	for _, rel := range rels {
		for ri, row := range schema[rel] {
			vals, err := jsonValues(row)
			if err != nil {
				return nil, fmt.Errorf("relation %s row %d: %w", rel, ri, err)
			}
			out = append(out, engine.Row{Rel: rel, Vals: vals})
		}
	}
	return out, nil
}

func (s *Service) handleUpdate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req UpdateRequest
	if err := decodeBody(r, &req); err != nil {
		writeBadRequest(w, err)
		return
	}
	inserts, err := s.updateRows(req.Inserts)
	if err != nil {
		writeBadRequest(w, err)
		return
	}
	deletes, err := s.updateRows(req.Deletes)
	if err != nil {
		writeBadRequest(w, err)
		return
	}
	opts := (&RepairRequest{TimeoutMS: req.TimeoutMS}).options()
	res, err := s.Update(r.Context(), name, inserts, deletes, opts)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"session":           name,
		"version":           res.Version,
		"oldest_version":    res.OldestVersion,
		"inserted":          res.Inserted,
		"deleted":           res.Deleted,
		"changed_relations": res.Changed,
	})
}

func (s *Service) handleRepair(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req RepairRequest
	if err := decodeBody(r, &req); err != nil {
		writeBadRequest(w, err)
		return
	}
	sem, err := semFromString(req.Semantics)
	if err != nil {
		writeBadRequest(w, err)
		return
	}
	res, _, version, err := s.RepairVersioned(r.Context(), name, sem, req.options())
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, repairResponse(name, version, res))
}

func (s *Service) handleRepairAll(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req RepairRequest
	if err := decodeBody(r, &req); err != nil {
		writeBadRequest(w, err)
		return
	}
	results, version, err := s.RepairAllVersioned(r.Context(), name, req.options())
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := RepairAllResponse{
		Session:     name,
		Version:     version,
		Results:     make(map[string]RepairResponse, len(results)),
		Containment: core.CheckContainment(results),
	}
	for sem, res := range results {
		resp.Results[sem.String()] = repairResponse(name, version, res)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleIsStable(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req RepairRequest
	if err := decodeBody(r, &req); err != nil {
		writeBadRequest(w, err)
		return
	}
	stable, version, err := s.IsStableVersioned(r.Context(), name, req.options())
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"session": name, "version": version, "stable": stable})
}

func (s *Service) handleDeleteViewTuple(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req ViewDeleteRequest
	if err := decodeBody(r, &req); err != nil {
		writeBadRequest(w, err)
		return
	}
	if req.View == "" {
		writeBadRequest(w, fmt.Errorf("missing view source"))
		return
	}
	target, err := jsonValues(req.Values)
	if err != nil {
		writeBadRequest(w, err)
		return
	}
	opts := (&RepairRequest{TimeoutMS: req.TimeoutMS, SolverMaxNodes: req.SolverMaxNodes, Version: req.Version}).options()
	res, err := s.DeleteViewTuple(r.Context(), name, req.View, target, opts)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, viewDeleteResponse(name, res))
}

func viewDeleteResponse(name string, res *sideeffect.Result) ViewDeleteResponse {
	keys := make([]string, len(res.Deleted))
	for i, t := range res.Deleted {
		keys[i] = t.Key()
	}
	return ViewDeleteResponse{
		Session:        name,
		Size:           res.Size(),
		Deleted:        keys,
		Optimal:        res.Optimal,
		ViewRowsBefore: res.ViewRowsBefore,
		ViewRowsAfter:  res.ViewRowsAfter,
		ElapsedUS:      res.Elapsed.Microseconds(),
	}
}
