package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/programs"
)

const registerBody = `{
  "name": "papers",
  "schema": "Grant(gid, name)\nAuthGrant(aid, gid)\nAuthor(aid, name)\nWrites(aid, pid)\nPub(pid, title)\nCite(citing, cited)",
  "program": "(0) Delta_Grant(g, n) :- Grant(g, n), n = 'ERC'.\n(1) Delta_Author(a, n) :- Author(a, n), AuthGrant(a, g), Delta_Grant(g, gn).\n(2) Delta_Pub(p, t) :- Pub(p, t), Writes(a, p), Delta_Author(a, n).\n(3) Delta_Writes(a, p) :- Pub(p, t), Writes(a, p), Delta_Author(a, n).\n(4) Delta_Cite(c, p) :- Cite(c, p), Delta_Pub(p, t), Writes(a1, c), Writes(a2, p).",
  "tuples": {
    "Grant": [[1, "NSF"], [2, "ERC"]],
    "AuthGrant": [[2, 1], [4, 2], [5, 2]],
    "Author": [[2, "Maggie"], [4, "Marge"], [5, "Homer"]],
    "Cite": [[7, 6]],
    "Writes": [[4, 6], [5, 7]],
    "Pub": [[6, "x"], [7, "y"]]
  },
  "warm": true
}`

func postJSON(t *testing.T, client *http.Client, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: decoding response: %v", url, err)
	}
	return resp.StatusCode, out
}

func TestHTTPEndToEnd(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	// Health before any session.
	resp, err := client.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v (%v)", resp.StatusCode, err)
	}
	resp.Body.Close()

	// Register the running example via JSON.
	status, body := postJSON(t, client, ts.URL+"/v1/sessions", registerBody)
	if status != http.StatusCreated {
		t.Fatalf("register: status %d, body %v", status, body)
	}
	if body["tuples"].(float64) != 13 {
		t.Fatalf("register: want 13 tuples, got %v", body["tuples"])
	}

	// Duplicate register conflicts.
	if status, _ := postJSON(t, client, ts.URL+"/v1/sessions", registerBody); status != http.StatusConflict {
		t.Fatalf("duplicate register: status %d, want 409", status)
	}

	// The served stage repair equals the direct library result.
	refDB := programs.RunningExampleDB()
	prog, err := programs.RunningExampleProgram()
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := core.Run(refDB, prog, core.SemStage)
	if err != nil {
		t.Fatal(err)
	}
	status, body = postJSON(t, client, ts.URL+"/v1/sessions/papers/repair", `{"semantics": "stage"}`)
	if status != http.StatusOK {
		t.Fatalf("repair: status %d, body %v", status, body)
	}
	if int(body["size"].(float64)) != want.Size() {
		t.Errorf("repair size %v, want %d", body["size"], want.Size())
	}
	deleted := body["deleted"].([]any)
	for i, k := range want.Keys() {
		if deleted[i].(string) != k {
			t.Errorf("deleted[%d] = %v, want %s", i, deleted[i], k)
		}
	}

	// repair-all returns all four semantics and the containment flags.
	status, body = postJSON(t, client, ts.URL+"/v1/sessions/papers/repair-all", `{}`)
	if status != http.StatusOK {
		t.Fatalf("repair-all: status %d, body %v", status, body)
	}
	results := body["results"].(map[string]any)
	for _, sem := range []string{"independent", "step", "stage", "end"} {
		if _, ok := results[sem]; !ok {
			t.Errorf("repair-all missing %s", sem)
		}
	}
	cont := body["containment"].(map[string]any)
	if cont["StageInEnd"] != true || cont["StepInEnd"] != true {
		t.Errorf("containment flags wrong: %v", cont)
	}

	// Stability probe.
	status, body = postJSON(t, client, ts.URL+"/v1/sessions/papers/is-stable", `{}`)
	if status != http.StatusOK || body["stable"] != false {
		t.Fatalf("is-stable: status %d, body %v", status, body)
	}

	// Deletion propagation.
	status, body = postJSON(t, client, ts.URL+"/v1/sessions/papers/delete-view-tuple",
		`{"view": "V(a, p) :- Author(a, n), Writes(a, p).", "values": [4, 6]}`)
	if status != http.StatusOK {
		t.Fatalf("delete-view-tuple: status %d, body %v", status, body)
	}
	if body["view_rows_before"].(float64) < 1 || len(body["deleted"].([]any)) == 0 {
		t.Errorf("delete-view-tuple: unexpected solution %v", body)
	}

	// Session listing shows the warmed session with request accounting.
	resp, err = client.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var infos []SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].Name != "papers" || !infos[0].Warmed || infos[0].Requests < 4 {
		t.Errorf("session listing: %+v", infos)
	}

	// Evict, then further requests 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/papers", nil)
	resp, err = client.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("delete session: %v (%v)", resp.StatusCode, err)
	}
	resp.Body.Close()
	if status, _ := postJSON(t, client, ts.URL+"/v1/sessions/papers/repair", `{"semantics": "end"}`); status != http.StatusNotFound {
		t.Errorf("repair after evict: status %d, want 404", status)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	cases := []struct {
		name, url, body string
		wantStatus      int
	}{
		{"bad json", "/v1/sessions", `{"name": `, http.StatusBadRequest},
		{"missing name", "/v1/sessions", `{"schema": "R(a)", "program": "Delta_R(x) :- R(x)."}`, http.StatusBadRequest},
		{"bad schema", "/v1/sessions", `{"name": "x", "schema": "not a schema", "program": "Delta_R(x) :- R(x)."}`, http.StatusBadRequest},
		{"bad program", "/v1/sessions", `{"name": "x", "schema": "R(a)", "program": "R(x) :- R(x)."}`, http.StatusBadRequest},
		{"bad tuple value", "/v1/sessions", `{"name": "x", "schema": "R(a)", "program": "Delta_R(x) :- R(x).", "tuples": {"R": [[true]]}}`, http.StatusBadRequest},
		{"bad arity", "/v1/sessions", `{"name": "x", "schema": "R(a)", "program": "Delta_R(x) :- R(x).", "tuples": {"R": [[1, 2]]}}`, http.StatusBadRequest},
		{"unknown semantics", "/v1/sessions/none/repair", `{"semantics": "quantum"}`, http.StatusBadRequest},
		{"missing semantics", "/v1/sessions/none/repair", `{}`, http.StatusBadRequest},
		{"unknown session", "/v1/sessions/none/repair", `{"semantics": "end"}`, http.StatusNotFound},
		{"missing view", "/v1/sessions/none/delete-view-tuple", `{}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		status, body := postJSON(t, client, ts.URL+tc.url, tc.body)
		if status != tc.wantStatus {
			t.Errorf("%s: status %d (body %v), want %d", tc.name, status, body, tc.wantStatus)
		}
		if _, ok := body["error"]; !ok && status >= 400 {
			t.Errorf("%s: error body missing: %v", tc.name, body)
		}
	}

	// Unknown session DELETE 404s.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/none", nil)
	resp, err := client.Do(req)
	if err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delete unknown: %v (%v)", resp.StatusCode, err)
	}
	resp.Body.Close()
}

func TestHTTPMalformedViewIs400(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	if status, body := postJSON(t, ts.Client(), ts.URL+"/v1/sessions", registerBody); status != http.StatusCreated {
		t.Fatalf("register: %d %v", status, body)
	}
	// A client-side view syntax error must be a 400, not a 500.
	status, body := postJSON(t, ts.Client(), ts.URL+"/v1/sessions/papers/delete-view-tuple",
		`{"view": "V(a :- Author(a).", "values": [1]}`)
	if status != http.StatusBadRequest {
		t.Fatalf("malformed view: status %d (body %v), want 400", status, body)
	}
}

func TestHTTPTimeout(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	status, body := postJSON(t, ts.Client(), ts.URL+"/v1/sessions", registerBody)
	if status != http.StatusCreated {
		t.Fatalf("register: %d %v", status, body)
	}
	// An expired budget maps to 504. Racing a real 1 ms deadline against
	// the repair is machine-dependent, so drive the handler directly with a
	// request context whose deadline has already passed — the admission
	// check observes it before any work starts, on any machine.
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/sessions/papers/repair",
		strings.NewReader(`{"semantics": "independent"}`)).WithContext(expired)
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: status %d (body %s), want 504", rec.Code, rec.Body.String())
	}
	var errBody map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &errBody); err != nil {
		t.Fatalf("timeout body: %v", err)
	}
	if !strings.Contains(fmt.Sprint(errBody["error"]), "deadline") {
		t.Errorf("timeout body: %v", errBody)
	}
}

func TestHTTPNoSuchViewRowIs400(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	if status, body := postJSON(t, ts.Client(), ts.URL+"/v1/sessions", registerBody); status != http.StatusCreated {
		t.Fatalf("register: %d %v", status, body)
	}
	// A valid view but a row that does not exist is a client error.
	status, body := postJSON(t, ts.Client(), ts.URL+"/v1/sessions/papers/delete-view-tuple",
		`{"view": "V(a, p) :- Author(a, n), Writes(a, p).", "values": [99, 99]}`)
	if status != http.StatusBadRequest {
		t.Fatalf("missing view row: status %d (body %v), want 400", status, body)
	}
}
