package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/programs"
)

// Service-level tests for mutable sessions: versioned updates,
// read-your-writes pinning, retention, warm-start result caching, and
// isolation between versions.

func row(rel string, vals ...engine.Value) engine.Row { return engine.Row{Rel: rel, Vals: vals} }

func TestServiceUpdateBasics(t *testing.T) {
	svc := New(Config{})
	register(t, svc, "papers")
	ctx := context.Background()

	base, _, v1, err := svc.RepairVersioned(ctx, "papers", core.SemStage, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 1 {
		t.Fatalf("initial version %d, want 1", v1)
	}

	// Delete the second author-grant edge: Marge no longer cascades.
	res, err := svc.Update(ctx, "papers", nil, []engine.Row{row("AuthGrant", engine.Int(4), engine.Int(2))}, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 || res.Deleted != 1 || res.Inserted != 0 {
		t.Fatalf("update result %+v", res)
	}
	if len(res.Changed) != 1 || res.Changed[0] != "AuthGrant" {
		t.Fatalf("changed relations %v", res.Changed)
	}

	after, _, v2, err := svc.RepairVersioned(ctx, "papers", core.SemStage, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v2 != 2 {
		t.Fatalf("head version %d, want 2", v2)
	}
	if after.Size() >= base.Size() {
		t.Fatalf("removing a cascade root should shrink the repair: %d vs %d", after.Size(), base.Size())
	}
	if after.Contains(`Author(i4,"Marge")`) {
		t.Error("Marge still deleted after her grant edge was removed")
	}

	// Read-your-writes: pinning version 1 reproduces the original repair.
	pinned, _, pv, err := svc.RepairVersioned(ctx, "papers", core.SemStage, RequestOptions{Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pv != 1 || keysOf(pinned) != keysOf(base) {
		t.Fatalf("pinned v1 drifted: %s vs %s", keysOf(pinned), keysOf(base))
	}

	// Session stats surface the version state.
	info := svc.Sessions()[0]
	if info.Version != 2 || info.OldestVersion != 1 || info.RetainedVersions != 2 || info.Updates != 1 {
		t.Fatalf("session info version state: %+v", info)
	}
}

func TestServiceUpdateSchemaMismatchIs409Class(t *testing.T) {
	svc := New(Config{})
	register(t, svc, "papers")
	ctx := context.Background()

	if _, err := svc.Update(ctx, "papers", []engine.Row{row("Nope", engine.Int(1))}, nil, RequestOptions{}); !errors.Is(err, ErrSchemaMismatch) {
		t.Errorf("unknown relation: got %v, want ErrSchemaMismatch", err)
	}
	if _, err := svc.Update(ctx, "papers", []engine.Row{row("Author", engine.Int(1))}, nil, RequestOptions{}); !errors.Is(err, ErrSchemaMismatch) {
		t.Errorf("arity mismatch: got %v, want ErrSchemaMismatch", err)
	}
	// A failed update must not mint a version.
	if info := svc.Sessions()[0]; info.Updates != 0 || info.Version != 1 {
		t.Fatalf("failed updates advanced the session: %+v", info)
	}
	if _, err := svc.Update(ctx, "missing", nil, nil, RequestOptions{}); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown session: got %v, want ErrNotFound", err)
	}
}

func TestServiceVersionRetention(t *testing.T) {
	svc := New(Config{MaxVersions: 2})
	register(t, svc, "papers")
	ctx := context.Background()

	// Mint versions 2 and 3; with a window of 2, version 1 is evicted.
	for i := 0; i < 2; i++ {
		if _, err := svc.Update(ctx, "papers", []engine.Row{row("Pub", engine.Int(100+i), engine.Str("t"))}, nil, RequestOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, err := svc.RepairVersioned(ctx, "papers", core.SemEnd, RequestOptions{Version: 1}); !errors.Is(err, ErrVersionGone) {
		t.Errorf("evicted version: got %v, want ErrVersionGone", err)
	}
	if _, _, _, err := svc.RepairVersioned(ctx, "papers", core.SemEnd, RequestOptions{Version: 99}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("future version: got %v, want ErrBadRequest", err)
	}
	for _, v := range []uint64{2, 3} {
		if _, _, got, err := svc.RepairVersioned(ctx, "papers", core.SemEnd, RequestOptions{Version: v}); err != nil || got != v {
			t.Errorf("retained version %d: got %d, err %v", v, got, err)
		}
	}
}

// TestServiceWarmStartCacheCorrectness drives the cache-sensitive paths
// directly: repeated repairs at one version (replay), repairs after
// updates outside the read-set (read-set pruning), insert-only updates
// (end continuation), and a mixed update (full recompute) — every answer
// must equal a cold service's.
func TestServiceWarmStartCacheCorrectness(t *testing.T) {
	ctx := context.Background()
	// Audit is in the schema but referenced by no rule.
	schemaSrc := "A(x)\nB(x, y)\nAudit(x)"
	progSrc := `
		Delta_A(x) :- A(x), x > 5.
		Delta_B(x, y) :- B(x, y), Delta_A(x).
	`
	build := func() *Service {
		svc := New(Config{})
		schema, err := engine.ParseSchema(schemaSrc)
		if err != nil {
			t.Fatal(err)
		}
		db := engine.NewDatabase(schema)
		for i := 0; i < 10; i++ {
			db.MustInsert("A", engine.Int(i))
			db.MustInsert("B", engine.Int(i), engine.Int(i+1))
		}
		prog, err := datalog.ParseAndValidate(progSrc, schema)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Register("s", schema, db, prog); err != nil {
			t.Fatal(err)
		}
		return svc
	}
	warmSvc, coldRef := build(), build()

	steps := []struct {
		name             string
		inserts, deletes []engine.Row
	}{
		{"outside-read-set", []engine.Row{row("Audit", engine.Int(1))}, nil},
		{"insert-only-cascade", []engine.Row{row("A", engine.Int(11)), row("B", engine.Int(11), engine.Int(3))}, nil},
		{"mixed", []engine.Row{row("A", engine.Int(12))}, []engine.Row{row("A", engine.Int(7))}},
		{"delete-only", nil, []engine.Row{row("B", engine.Int(8), engine.Int(9))}},
	}
	for _, step := range steps {
		// warmSvc accumulates cached results version over version; coldRef
		// is rebuilt fresh each step so it can never warm-start.
		for _, svc := range []*Service{warmSvc, coldRef} {
			if _, err := svc.Update(ctx, "s", step.inserts, step.deletes, RequestOptions{}); err != nil {
				t.Fatalf("%s: %v", step.name, err)
			}
		}
		for _, sem := range core.AllSemantics {
			warm, _, _, err := warmSvc.RepairVersioned(ctx, "s", sem, RequestOptions{})
			if err != nil {
				t.Fatalf("%s/%s warm: %v", step.name, sem, err)
			}
			cold, _, _, err := coldRef.RepairVersioned(ctx, "s", sem, RequestOptions{})
			if err != nil {
				t.Fatalf("%s/%s cold: %v", step.name, sem, err)
			}
			if keysOf(warm) != keysOf(cold) {
				t.Fatalf("%s/%s: warm-start drifted: %s vs %s", step.name, sem, keysOf(warm), keysOf(cold))
			}
			// Replay at the same version must also agree.
			again, _, _, err := warmSvc.RepairVersioned(ctx, "s", sem, RequestOptions{})
			if err != nil || keysOf(again) != keysOf(cold) {
				t.Fatalf("%s/%s: replay drifted (err=%v)", step.name, sem, err)
			}
		}
		warmStable, _, err := warmSvc.IsStableVersioned(ctx, "s", RequestOptions{})
		if err != nil {
			t.Fatal(err)
		}
		coldStable, _, err := coldRef.IsStableVersioned(ctx, "s", RequestOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if warmStable != coldStable {
			t.Fatalf("%s: stability warm %v, cold %v", step.name, warmStable, coldStable)
		}
	}
}

// TestServiceStableWarmInsertThenDelete: a stability probe may skip
// versions, so the warm hints can span an insert at one version and a
// delete of the same tuple at a later one. The dead tuple must not be
// used as a probe seed — the regression here reported a stable database
// as unstable.
func TestServiceStableWarmInsertThenDelete(t *testing.T) {
	ctx := context.Background()
	svc := New(Config{})
	schema, err := engine.ParseSchema("R(x)\nS(x)")
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewDatabase(schema)
	db.MustInsert("S", engine.Int(5)) // R empty: stable
	prog, err := datalog.ParseAndValidate("Delta_R(x) :- R(x), S(x).", schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Register("s", schema, db, prog); err != nil {
		t.Fatal(err)
	}
	// v1 known stable (cached).
	if stable, _, err := svc.IsStableVersioned(ctx, "s", RequestOptions{}); err != nil || !stable {
		t.Fatalf("v1 should be stable (err=%v)", err)
	}
	// v2: insert R(5) — NOT probed, so the stable cache stays at v1.
	if _, err := svc.Update(ctx, "s", []engine.Row{row("R", engine.Int(5))}, nil, RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	// v3: delete R(5) again. The hint range (v1, v3] contains the dead
	// inserted tuple.
	if _, err := svc.Update(ctx, "s", nil, []engine.Row{row("R", engine.Int(5))}, RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	stable, v, err := svc.IsStableVersioned(ctx, "s", RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 || !stable {
		t.Fatalf("v%d reported stable=%v; R is empty, the database is stable", v, stable)
	}
	// And a version where the insert IS live must still be caught: probe
	// pinned v2, where R(5) joins S(5).
	stable, _, err = svc.IsStableVersioned(ctx, "s", RequestOptions{Version: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stable {
		t.Fatal("v2 has the violation live and must be unstable")
	}
}

// TestServiceReplayRespectsSolverBudget: a budget-truncated independent
// repair must not be replayed for a request with a different SAT budget
// — the cache is keyed on the effective budget for independent
// semantics.
func TestServiceReplayRespectsSolverBudget(t *testing.T) {
	ctx := context.Background()
	svc := New(Config{})
	register(t, svc, "papers")

	// Cold reference under the default (unlimited) budget.
	coldSvc := New(Config{})
	register(t, coldSvc, "papers")
	want, _, err := coldSvc.Repair(ctx, "papers", core.SemIndependent, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Prime the cache with a 1-node budget (truncated, normally
	// non-optimal).
	truncated, _, err := svc.Repair(ctx, "papers", core.SemIndependent, RequestOptions{SolverMaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Now ask with the default budget: must NOT replay the truncated
	// result.
	got, _, err := svc.Repair(ctx, "papers", core.SemIndependent, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if keysOf(got) != keysOf(want) || got.Optimal != want.Optimal {
		t.Fatalf("default-budget repair got %s (optimal=%v), want %s (optimal=%v) — truncated result (%s, optimal=%v) leaked through the cache",
			keysOf(got), got.Optimal, keysOf(want), want.Optimal, keysOf(truncated), truncated.Optimal)
	}
	// Same budget twice IS allowed to replay — and must agree with cold.
	again, _, err := svc.Repair(ctx, "papers", core.SemIndependent, RequestOptions{})
	if err != nil || keysOf(again) != keysOf(want) {
		t.Fatalf("same-budget replay drifted (err=%v)", err)
	}
}

// TestServiceUpdateRepairHammer interleaves updates with repairs,
// stability probes, and pinned reads on ONE session from many
// goroutines: every repair response must match the expected result for
// the version it reports — proving forks are isolated across versions
// while the head advances underneath them.
func TestServiceUpdateRepairHammer(t *testing.T) {
	ctx := context.Background()
	svc := New(Config{MaxInFlight: 16, MaxVersions: 64})
	register(t, svc, "hot")

	// Expected result per version, computed on demand from an independent
	// replica of the version's contents. Version v has pubs 1000..1000+v-2
	// added (one per update).
	expectedMu := sync.Mutex{}
	expected := map[uint64]string{}
	expectFor := func(v uint64) string {
		expectedMu.Lock()
		defer expectedMu.Unlock()
		if s, ok := expected[v]; ok {
			return s
		}
		db := programs.RunningExampleDB()
		for i := uint64(0); i+2 <= v; i++ {
			db.MustInsert("Pub", engine.Int(int(1000+i)), engine.Str("extra"))
			db.MustInsert("Writes", engine.Int(5), engine.Int(int(1000+i)))
		}
		prog, err := datalog.ParseAndValidate(programs.RunningExampleSource, db.Schema)
		if err != nil {
			panic(err)
		}
		res, _, err := core.Run(db, prog, core.SemStage)
		if err != nil {
			panic(err)
		}
		expected[v] = keysOf(res)
		return expected[v]
	}

	const (
		updates = 24
		readers = 8
		iters   = 30
	)
	var wg sync.WaitGroup
	errCh := make(chan error, readers*iters+updates)

	// Writer: serial updates, each adding a pub Homer writes (the stage
	// repair grows by one Pub + one Writes per version).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < updates; i++ {
			res, err := svc.Update(ctx, "hot", []engine.Row{
				row("Pub", engine.Int(1000+i), engine.Str("extra")),
				row("Writes", engine.Int(5), engine.Int(1000+i)),
			}, nil, RequestOptions{})
			if err != nil {
				errCh <- fmt.Errorf("update %d: %w", i, err)
				return
			}
			if res.Version != uint64(i+2) {
				errCh <- fmt.Errorf("update %d minted version %d", i, res.Version)
				return
			}
		}
	}()

	// Readers: repair at head or at a pinned version; whatever version
	// the response names, the result must be that version's.
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var seen []uint64
			for i := 0; i < iters; i++ {
				opts := RequestOptions{}
				if len(seen) > 0 && i%3 == 0 {
					opts.Version = seen[i%len(seen)] // pin an earlier version
				}
				res, _, v, err := svc.RepairVersioned(ctx, "hot", core.SemStage, opts)
				if err != nil {
					errCh <- fmt.Errorf("reader %d: %w", w, err)
					return
				}
				if opts.Version != 0 && v != opts.Version {
					errCh <- fmt.Errorf("reader %d: pinned %d, executed %d", w, opts.Version, v)
					return
				}
				if got, want := keysOf(res), expectFor(v); got != want {
					errCh <- fmt.Errorf("reader %d: version %d result drifted:\n got %s\nwant %s", w, v, got, want)
					return
				}
				seen = append(seen, v)
				if i%5 == 4 {
					if _, _, err := svc.IsStableVersioned(ctx, "hot", RequestOptions{}); err != nil {
						errCh <- fmt.Errorf("reader %d stability: %w", w, err)
						return
					}
				}
			}
		}(w)
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Post-storm: the head answers the final version's expected result.
	res, _, v, err := svc.RepairVersioned(ctx, "hot", core.SemStage, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v != updates+1 {
		t.Fatalf("final head %d, want %d", v, updates+1)
	}
	if keysOf(res) != expectFor(v) {
		t.Fatalf("final head drifted")
	}
}
