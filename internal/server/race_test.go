package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/engine"
)

// TestServiceConcurrentHammer drives the service the way production
// traffic would, under the race detector: many goroutines hammer one hot
// cached session with every request type while another goroutine
// registers and evicts sessions (churning the LRU past its capacity) and
// a third polls stats. Every response on the hot session is compared
// against the sequential baseline — any cross-request state leakage
// (forks observing each other's deletions, warm-state corruption) shows
// up as a drifted result, and any locking mistake as a race report.
func TestServiceConcurrentHammer(t *testing.T) {
	svc := New(Config{MaxSessions: 4, MaxInFlight: 8})
	_, prog := register(t, svc, "hot")

	// Sequential baselines, computed outside the service.
	refDB := func() *engine.Database {
		db, _ := fixture(t)
		return db
	}()
	baseline := make(map[core.Semantics]string, len(core.AllSemantics))
	for _, sem := range core.AllSemantics {
		res, _, err := core.Run(refDB.Clone(), prog, sem)
		if err != nil {
			t.Fatal(err)
		}
		baseline[sem] = keysOf(res)
	}

	const (
		workers = 8
		iters   = 25
	)
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, workers*iters+64)

	// Hammer workers: rotate over every request type on the hot session.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sem := core.AllSemantics[(w+i)%len(core.AllSemantics)]
				switch i % 4 {
				case 0, 1:
					res, _, err := svc.Repair(ctx, "hot", sem, RequestOptions{})
					if err != nil {
						errCh <- fmt.Errorf("worker %d repair %s: %w", w, sem, err)
						return
					}
					if keysOf(res) != baseline[sem] {
						errCh <- fmt.Errorf("worker %d: %s drifted to %s (want %s)", w, sem, keysOf(res), baseline[sem])
						return
					}
				case 2:
					stable, err := svc.IsStable(ctx, "hot", RequestOptions{})
					if err != nil {
						errCh <- fmt.Errorf("worker %d is-stable: %w", w, err)
						return
					}
					if stable {
						errCh <- fmt.Errorf("worker %d: hot session reported stable", w)
						return
					}
				case 3:
					res, err := svc.DeleteViewTuple(ctx, "hot",
						"V(a, p) :- Author(a, n), Writes(a, p).",
						[]engine.Value{engine.Int(4), engine.Int(6)}, RequestOptions{})
					if err != nil {
						errCh <- fmt.Errorf("worker %d view delete: %w", w, err)
						return
					}
					if res.Size() == 0 {
						errCh <- fmt.Errorf("worker %d: empty view-delete solution", w)
						return
					}
				}
			}
		}(w)
	}

	// Churn goroutine: register/evict sessions to force LRU pressure and
	// concurrent warming while the hot session serves. The fixtures are
	// built up front on the test goroutine (t.Fatalf must not run on a
	// spawned goroutine); sequential register/evict cycles may reuse a
	// pair because only this goroutine ever touches it.
	type churnFixture struct {
		db *engine.Database
		p  *datalog.Program
	}
	churn := make([]churnFixture, 6)
	for i := range churn {
		db, p := fixture(t)
		churn[i] = churnFixture{db: db, p: p}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			name := fmt.Sprintf("churn-%d", i%6)
			db, p := churn[i%6].db, churn[i%6].p
			// Promote the hot session so the LRU victim of this register is
			// always a churn session: this goroutine is the only one that
			// registers, so nothing can demote "hot" past three younger
			// sessions before the eviction below runs.
			if _, err := svc.session("hot"); err != nil {
				errCh <- fmt.Errorf("hot session vanished: %w", err)
				return
			}
			err := svc.Register(name, db.Schema, db, p)
			if err != nil && !errors.Is(err, ErrDuplicate) {
				errCh <- fmt.Errorf("churn register: %w", err)
				return
			}
			if err == nil {
				// Warm some of the churn sessions to exercise concurrent
				// Prepare+Freeze against the hammer traffic.
				if i%3 == 0 {
					if _, _, err := svc.Repair(ctx, name, core.SemEnd, RequestOptions{}); err != nil && !errors.Is(err, ErrNotFound) {
						errCh <- fmt.Errorf("churn repair: %w", err)
						return
					}
				}
			}
			if i%2 == 1 {
				svc.Deregister(name)
			}
		}
	}()

	// Stats poller: session listing must never block on or race with
	// warming.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			for _, info := range svc.Sessions() {
				if info.Name == "hot" && info.Warmed && info.Tuples == 0 {
					errCh <- fmt.Errorf("stats: warmed hot session reports 0 tuples")
					return
				}
			}
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// The hot session must still serve pristine results after the storm.
	res, _, err := svc.Repair(ctx, "hot", core.SemStage, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if keysOf(res) != baseline[core.SemStage] {
		t.Fatalf("post-storm drift: %s vs %s", keysOf(res), baseline[core.SemStage])
	}
}
