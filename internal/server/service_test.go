package server

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/programs"
)

// fixture returns the paper's running example as a (db, program) pair with
// the program validated against the database's own schema object.
func fixture(t testing.TB) (*engine.Database, *datalog.Program) {
	t.Helper()
	db := programs.RunningExampleDB()
	prog, err := datalog.ParseAndValidate(programs.RunningExampleSource, db.Schema)
	if err != nil {
		t.Fatalf("parsing running example: %v", err)
	}
	return db, prog
}

func register(t testing.TB, svc *Service, name string) (*engine.Database, *datalog.Program) {
	t.Helper()
	db, prog := fixture(t)
	if err := svc.Register(name, db.Schema, db, prog); err != nil {
		t.Fatalf("register %s: %v", name, err)
	}
	return db, prog
}

func keysOf(res *core.Result) string { return fmt.Sprintf("%v", res.Keys()) }

func TestServiceRepairMatchesDirect(t *testing.T) {
	svc := New(Config{})
	_, prog := register(t, svc, "papers")
	// The reference database must be an independent instance: the service
	// owns the registered one.
	refDB := programs.RunningExampleDB()

	for _, sem := range core.AllSemantics {
		want, _, err := core.Run(refDB.Clone(), prog, sem)
		if err != nil {
			t.Fatalf("%s direct: %v", sem, err)
		}
		got, repaired, err := svc.Repair(context.Background(), "papers", sem, RequestOptions{})
		if err != nil {
			t.Fatalf("%s served: %v", sem, err)
		}
		if keysOf(got) != keysOf(want) {
			t.Errorf("%s: served %s, direct %s", sem, keysOf(got), keysOf(want))
		}
		stable, err := core.CheckStable(repaired, prog)
		if err != nil || !stable {
			t.Errorf("%s: served repaired database not stable (err=%v)", sem, err)
		}
	}
}

func TestServiceRequestsAreIsolated(t *testing.T) {
	svc := New(Config{})
	register(t, svc, "papers")
	first, _, err := svc.Repair(context.Background(), "papers", core.SemStage, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Size() == 0 {
		t.Fatal("running example repair should delete tuples")
	}
	// Every subsequent request must see the pristine base, not earlier
	// requests' deletions.
	for i := 0; i < 10; i++ {
		res, _, err := svc.Repair(context.Background(), "papers", core.SemStage, RequestOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if keysOf(res) != keysOf(first) {
			t.Fatalf("request %d drifted: %s vs %s", i, keysOf(res), keysOf(first))
		}
	}
	infos := svc.Sessions()
	if len(infos) != 1 || !infos[0].Warmed {
		t.Fatalf("expected one warmed session, got %+v", infos)
	}
	if infos[0].Requests != 11 {
		t.Errorf("request accounting: got %d, want 11", infos[0].Requests)
	}
	// Fork accounting: at least one fork per request (the service forks
	// once per request and the executors fork internally again).
	if infos[0].Forks < infos[0].Requests {
		t.Errorf("fork accounting: %d forks < %d requests", infos[0].Forks, infos[0].Requests)
	}
}

func TestServiceRepairAllAndStability(t *testing.T) {
	svc := New(Config{})
	register(t, svc, "papers")
	results, err := svc.RepairAll(context.Background(), "papers", RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(core.AllSemantics) {
		t.Fatalf("want %d results, got %d", len(core.AllSemantics), len(results))
	}
	cont := core.CheckContainment(results)
	if !cont.StageInEnd || !cont.StepInEnd || !cont.IndLeStep || !cont.IndLeStage {
		t.Errorf("always-true containments violated: %+v", cont)
	}
	stable, err := svc.IsStable(context.Background(), "papers", RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stable {
		t.Error("running example starts unstable")
	}
}

func TestServiceDeleteViewTuple(t *testing.T) {
	svc := New(Config{})
	register(t, svc, "papers")
	res, err := svc.DeleteViewTuple(context.Background(), "papers",
		"V(a, p) :- Author(a, n), Writes(a, p).",
		[]engine.Value{engine.Int(4), engine.Int(6)}, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() == 0 || res.ViewRowsBefore == 0 {
		t.Errorf("expected a non-trivial solution, got %+v", res)
	}
}

func TestServiceSessionLifecycle(t *testing.T) {
	svc := New(Config{MaxSessions: 2})
	register(t, svc, "a")
	if _, _, err := svc.Repair(context.Background(), "missing", core.SemEnd, RequestOptions{}); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown session: got %v, want ErrNotFound", err)
	}
	db, prog := fixture(t)
	if err := svc.Register("a", db.Schema, db, prog); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate register: got %v, want ErrDuplicate", err)
	}
	register(t, svc, "b")
	// Touch "a" so "b" is the LRU victim when "c" arrives.
	if _, _, err := svc.Repair(context.Background(), "a", core.SemEnd, RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	register(t, svc, "c")
	if svc.Len() != 2 {
		t.Fatalf("cache len %d, want 2", svc.Len())
	}
	if svc.Evictions() != 1 {
		t.Fatalf("evictions %d, want 1", svc.Evictions())
	}
	if _, _, err := svc.Repair(context.Background(), "b", core.SemEnd, RequestOptions{}); !errors.Is(err, ErrNotFound) {
		t.Errorf("evicted session: got %v, want ErrNotFound", err)
	}
	if !svc.Deregister("c") || svc.Deregister("c") {
		t.Error("deregister should succeed once")
	}
}

func TestServiceCancellation(t *testing.T) {
	svc := New(Config{})
	register(t, svc, "papers")

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := svc.Repair(canceled, "papers", core.SemStage, RequestOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled ctx: got %v, want context.Canceled", err)
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel2()
	if _, _, err := svc.Repair(expired, "papers", core.SemIndependent, RequestOptions{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired deadline: got %v, want context.DeadlineExceeded", err)
	}
}

func TestServiceAdmissionBound(t *testing.T) {
	svc := New(Config{MaxInFlight: 1})
	register(t, svc, "papers")
	// With one token, concurrent requests serialize but all complete.
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, _, err := svc.Repair(context.Background(), "papers", core.SemStage, RequestOptions{})
			errs <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestServiceWarmingIsSingleFlight(t *testing.T) {
	svc := New(Config{})
	register(t, svc, "papers")
	// Fire concurrent first requests; all must succeed and the session
	// must end up with exactly one snapshot (warming ran once).
	const n = 16
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, _, err := svc.Repair(context.Background(), "papers", core.SemEnd, RequestOptions{})
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	sess, err := svc.session("papers")
	if err != nil {
		t.Fatal(err)
	}
	if sess.snap == nil || sess.prep == nil {
		t.Fatal("session not warmed")
	}
	if got := sess.requests.Load(); got != n {
		t.Errorf("requests %d, want %d", got, n)
	}
}

func TestServiceRejectsInvalidSessions(t *testing.T) {
	svc := New(Config{})
	db, prog := fixture(t)
	if err := svc.Register("", db.Schema, db, prog); err == nil {
		t.Error("empty name accepted")
	}
	if err := svc.Register("x", nil, db, prog); err == nil {
		t.Error("nil schema accepted")
	}
	other := programs.RunningExampleSchema()
	if err := svc.Register("x", other, db, prog); err == nil {
		t.Error("mismatched schema accepted")
	}
	// A program that fails to prepare surfaces its error on first use.
	bad := &datalog.Program{}
	if err := svc.Register("bad", db.Schema, db, bad); err != nil {
		t.Fatalf("register: %v", err)
	}
	if _, _, err := svc.Repair(context.Background(), "bad", core.SemEnd, RequestOptions{}); err == nil {
		t.Error("empty program should fail to warm")
	}
}
