package server

import (
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/cqa"
	"repro/internal/engine"
)

// RepairsRequest is the POST /v1/sessions/{name}/repairs body.
type RepairsRequest struct {
	// K caps the number of repairs returned; clamped to [1, 64]. 0 means 1.
	K int `json:"k,omitempty"`
	// Minimal selects the minimality notion: "set" (default) enumerates the
	// k best set-minimal repairs in nondecreasing cost order;
	// "cardinality" restricts the space to minimum-cost repairs only.
	Minimal        string `json:"minimal,omitempty"`
	TimeoutMS      int64  `json:"timeout_ms,omitempty"`
	Parallelism    int    `json:"parallelism,omitempty"`
	SolverMaxNodes int64  `json:"solver_max_nodes,omitempty"`
	Version        uint64 `json:"version,omitempty"`
}

// QueryRequest is the POST /v1/sessions/{name}/query body. The repair-space
// knobs (k, minimal, solver_max_nodes) select the space the query is
// answered against, exactly as for the repairs endpoint.
type QueryRequest struct {
	// Query is a conjunctive query over the session schema, e.g.
	// "Q(a, t) :- Writes(a, p), Pub(p, t).".
	Query          string `json:"query"`
	K              int    `json:"k,omitempty"`
	Minimal        string `json:"minimal,omitempty"`
	TimeoutMS      int64  `json:"timeout_ms,omitempty"`
	Parallelism    int    `json:"parallelism,omitempty"`
	SolverMaxNodes int64  `json:"solver_max_nodes,omitempty"`
	Version        uint64 `json:"version,omitempty"`
}

// RepairAlternative is one enumerated repair inside a RepairsResponse.
type RepairAlternative struct {
	Size    int            `json:"size"`
	Cost    int64          `json:"cost"`
	Deleted []string       `json:"deleted"`
	ByRel   map[string]int `json:"deleted_by_relation,omitempty"`
	// Optimal is false when the solver budget ran out during this solve —
	// the repair stabilizes the database but may not be cost-minimal.
	Optimal bool `json:"optimal"`
}

// RepairsResponse reports the k-best repair space of one session version.
type RepairsResponse struct {
	Session string `json:"session"`
	Version uint64 `json:"version"`
	// K is the number of repairs actually enumerated; KRequested echoes the
	// clamped request. K < KRequested with Complete=true means the space
	// holds fewer repairs than asked for.
	K          int                 `json:"k"`
	KRequested int                 `json:"k_requested"`
	Minimal    string              `json:"minimal"`
	Complete   bool                `json:"complete"`
	Optimal    bool                `json:"optimal"`
	Repairs    []RepairAlternative `json:"repairs"`
	// CertainDeleted lists tuples deleted in every enumerated repair;
	// PossiblyDeleted those deleted in at least one.
	CertainDeleted  []string `json:"certain_deleted"`
	PossiblyDeleted []string `json:"possibly_deleted"`
	SolverNodes     int64    `json:"solver_nodes"`
	ElapsedUS       int64    `json:"elapsed_us"`
}

// QueryResponse reports the consistent answers of one query.
type QueryResponse struct {
	Session string `json:"session"`
	Version uint64 `json:"version"`
	Columns int    `json:"columns"`
	// Certain rows hold in every enumerated repair; Possible rows in at
	// least one (certain rows included).
	Certain  [][]any `json:"certain"`
	Possible [][]any `json:"possible"`
	// Repairs is the number of repairs classified against; when Complete is
	// false the space was truncated and Certain/Possible are relative to
	// the enumerated repairs only.
	Complete bool `json:"complete"`
	Optimal  bool `json:"optimal"`
	Repairs  int  `json:"repairs"`
}

// minimalMode maps the JSON "minimal" field to EnumerateOptions.CardinalityOnly.
func minimalMode(s string) (bool, error) {
	switch s {
	case "", "set":
		return false, nil
	case "cardinality", "card":
		return true, nil
	default:
		return false, fmt.Errorf("unknown minimality %q: want set or cardinality", s)
	}
}

// jsonFromValue converts an engine Value to its JSON representation,
// inverting jsonValue.
func jsonFromValue(v engine.Value) any {
	switch v.Kind {
	case engine.KindInt:
		return v.Int
	case engine.KindFloat:
		return v.Flt
	default:
		return v.Str
	}
}

func jsonRows(rows [][]engine.Value) [][]any {
	out := make([][]any, len(rows))
	for i, vals := range rows {
		row := make([]any, len(vals))
		for j, v := range vals {
			row[j] = jsonFromValue(v)
		}
		out[i] = row
	}
	return out
}

func tupleKeys(ts []*engine.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Key()
	}
	return out
}

func repairsResponse(name string, version uint64, eopts core.EnumerateOptions, minimal string, sp *core.RepairSpace) RepairsResponse {
	resp := RepairsResponse{
		Session:         name,
		Version:         version,
		K:               sp.K(),
		KRequested:      core.ClampEnumK(eopts.K),
		Minimal:         minimal,
		Complete:        sp.Complete,
		Optimal:         sp.Optimal,
		Repairs:         make([]RepairAlternative, 0, sp.K()),
		CertainDeleted:  tupleKeys(sp.CertainlyDeleted()),
		PossiblyDeleted: tupleKeys(sp.PossiblyDeleted()),
		SolverNodes:     sp.SolverNodes,
		ElapsedUS:       sp.Timing.Total().Microseconds(),
	}
	for _, res := range sp.Repairs {
		resp.Repairs = append(resp.Repairs, RepairAlternative{
			Size:    res.Size(),
			Cost:    res.RepairCost,
			Deleted: res.Keys(),
			ByRel:   res.ByRelation(),
			Optimal: res.Optimal,
		})
	}
	return resp
}

func (s *Service) handleRepairs(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req RepairsRequest
	if err := decodeBody(r, &req); err != nil {
		writeBadRequest(w, err)
		return
	}
	cardOnly, err := minimalMode(req.Minimal)
	if err != nil {
		writeBadRequest(w, err)
		return
	}
	minimal := "set"
	if cardOnly {
		minimal = "cardinality"
	}
	opts := (&RepairRequest{
		TimeoutMS:      req.TimeoutMS,
		Parallelism:    req.Parallelism,
		SolverMaxNodes: req.SolverMaxNodes,
		Version:        req.Version,
	}).options()
	eopts := core.EnumerateOptions{K: req.K, CardinalityOnly: cardOnly}
	sp, version, err := s.EnumerateRepairs(r.Context(), name, eopts, opts)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, repairsResponse(name, version, eopts, minimal, sp))
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req QueryRequest
	if err := decodeBody(r, &req); err != nil {
		writeBadRequest(w, err)
		return
	}
	if req.Query == "" {
		writeBadRequest(w, fmt.Errorf("missing query source"))
		return
	}
	cardOnly, err := minimalMode(req.Minimal)
	if err != nil {
		writeBadRequest(w, err)
		return
	}
	opts := (&RepairRequest{
		TimeoutMS:      req.TimeoutMS,
		Parallelism:    req.Parallelism,
		SolverMaxNodes: req.SolverMaxNodes,
		Version:        req.Version,
	}).options()
	eopts := core.EnumerateOptions{K: req.K, CardinalityOnly: cardOnly}
	ans, version, err := s.Query(r.Context(), name, req.Query, eopts, opts)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, queryResponse(name, version, ans))
}

func queryResponse(name string, version uint64, ans *cqa.Answers) QueryResponse {
	return QueryResponse{
		Session:  name,
		Version:  version,
		Columns:  ans.Columns,
		Certain:  jsonRows(ans.Certain),
		Possible: jsonRows(ans.Possible),
		Complete: ans.Complete,
		Optimal:  ans.Optimal,
		Repairs:  ans.Repairs,
	}
}
