package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

func TestServiceEnumerateRepairs(t *testing.T) {
	ctx := context.Background()
	svc := New(Config{})
	register(t, svc, "papers")

	sp, version, err := svc.EnumerateRepairs(ctx, "papers", core.EnumerateOptions{K: 4}, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 {
		t.Fatalf("version %d, want 1", version)
	}
	if sp.K() < 2 || !sp.Optimal {
		t.Fatalf("running example space: k=%d optimal=%v", sp.K(), sp.Optimal)
	}
	// The first repair is the single independent repair.
	single, _, err := svc.Repair(ctx, "papers", core.SemIndependent, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp.Repairs[0].Keys(), single.Keys()) {
		t.Fatalf("repairs[0] %v != independent repair %v", sp.Repairs[0].Keys(), single.Keys())
	}
	// Distinct repairs.
	seen := map[string]bool{}
	for _, res := range sp.Repairs {
		k := fmt.Sprint(res.Keys())
		if seen[k] {
			t.Fatalf("duplicate repair %s", k)
		}
		seen[k] = true
	}
	// Certain deletions appear in every repair.
	for _, tp := range sp.CertainlyDeleted() {
		for i, res := range sp.Repairs {
			if !res.ContainsTuple(tp) {
				t.Fatalf("certain tuple %s missing from repair %d", tp.Key(), i)
			}
		}
	}
}

func TestServiceSpaceCacheReplayAndBudgetKey(t *testing.T) {
	ctx := context.Background()
	svc := New(Config{})
	register(t, svc, "papers")

	first, _, err := svc.EnumerateRepairs(ctx, "papers", core.EnumerateOptions{K: 4}, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Same (version, k, budget, mode) replays the cached space verbatim.
	again, _, err := svc.EnumerateRepairs(ctx, "papers", core.EnumerateOptions{K: 4}, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatal("identical request did not replay the cached space")
	}
	// A different solver budget must NOT replay the cached space: a
	// truncated enumeration under 1 node is not the default-budget answer.
	truncated, _, err := svc.EnumerateRepairs(ctx, "papers", core.EnumerateOptions{K: 4}, RequestOptions{SolverMaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if truncated == first {
		t.Fatal("1-node request replayed the default-budget space")
	}
	if truncated.Optimal {
		t.Fatal("1-node enumeration reported Optimal=true")
	}
	// And the default budget afterwards still gets the optimal space, not
	// the truncated one.
	back, _, err := svc.EnumerateRepairs(ctx, "papers", core.EnumerateOptions{K: 4}, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if back != first {
		t.Fatal("default-budget request did not return to the cached optimal space")
	}
	// Different k or minimality mode is a different space.
	other, _, err := svc.EnumerateRepairs(ctx, "papers", core.EnumerateOptions{K: 4, CardinalityOnly: true}, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if other == first {
		t.Fatal("cardinality-only request replayed the set-minimal space")
	}
}

func TestServiceSpaceCacheAcrossVersions(t *testing.T) {
	ctx := context.Background()
	svc := New(Config{})
	register(t, svc, "papers")

	v1Space, v1, err := svc.EnumerateRepairs(ctx, "papers", core.EnumerateOptions{K: 4}, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Mint v2: drop an AuthGrant edge feeding the delta program.
	if _, err := svc.Update(ctx, "papers", nil,
		[]engine.Row{row("AuthGrant", engine.Int(4), engine.Int(2))}, RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	headSpace, headV, err := svc.EnumerateRepairs(ctx, "papers", core.EnumerateOptions{K: 4}, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if headV != v1+1 {
		t.Fatalf("head version %d, want %d", headV, v1+1)
	}
	if headSpace == v1Space {
		t.Fatal("new version replayed the old version's space")
	}
	// Pinning v1 still replays the v1 space from cache.
	pinned, pv, err := svc.EnumerateRepairs(ctx, "papers", core.EnumerateOptions{K: 4}, RequestOptions{Version: v1})
	if err != nil {
		t.Fatal(err)
	}
	if pv != v1 || pinned != v1Space {
		t.Fatalf("pinned v%d did not replay the cached v1 space", pv)
	}
}

func TestServiceQuery(t *testing.T) {
	ctx := context.Background()
	svc := New(Config{})
	register(t, svc, "papers")

	// Grant(1,'NSF') survives every repair; Grant(2,'ERC') none.
	ans, _, err := svc.Query(ctx, "papers", "Q(g, n) :- Grant(g, n).", core.EnumerateOptions{K: 8}, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Certain) != 1 || len(ans.Possible) != 1 {
		t.Fatalf("Grant query: certain %d possible %d, want 1/1", len(ans.Certain), len(ans.Possible))
	}
	if ans.Certain[0][1].Str != "NSF" {
		t.Fatalf("certain grant %v, want NSF", ans.Certain[0])
	}
	// Writes rows split across repairs: some possible-only answers.
	ans, _, err = svc.Query(ctx, "papers", "Q(a, p) :- Writes(a, p).", core.EnumerateOptions{K: 8}, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Possible) <= len(ans.Certain) {
		t.Fatalf("Writes query: certain %d possible %d, want possible-only rows", len(ans.Certain), len(ans.Possible))
	}
	// A malformed query is a bad request, not an internal error.
	if _, _, err = svc.Query(ctx, "papers", "Q(a :- Writes(a, p).", core.EnumerateOptions{}, RequestOptions{}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("malformed query error = %v, want ErrBadRequest", err)
	}
}

func TestHTTPRepairsEndpoint(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()
	if status, body := postJSON(t, client, ts.URL+"/v1/sessions", registerBody); status != http.StatusCreated {
		t.Fatalf("register: %d %v", status, body)
	}

	// k=1 matches the single-repair endpoint byte for byte.
	status, single := postJSON(t, client, ts.URL+"/v1/sessions/papers/repair", `{"semantics": "independent"}`)
	if status != http.StatusOK {
		t.Fatalf("repair: %d %v", status, single)
	}
	status, body := postJSON(t, client, ts.URL+"/v1/sessions/papers/repairs", `{"k": 1}`)
	if status != http.StatusOK {
		t.Fatalf("repairs k=1: %d %v", status, body)
	}
	repairs := body["repairs"].([]any)
	if len(repairs) != 1 {
		t.Fatalf("k=1 returned %d repairs", len(repairs))
	}
	if got, want := repairs[0].(map[string]any)["deleted"], single["deleted"]; !reflect.DeepEqual(got, want) {
		t.Fatalf("k=1 deleted %v != /repair deleted %v", got, want)
	}

	// k=8: multiple distinct repairs, certain ⊆ possible, complete space.
	status, body = postJSON(t, client, ts.URL+"/v1/sessions/papers/repairs", `{"k": 8}`)
	if status != http.StatusOK {
		t.Fatalf("repairs k=8: %d %v", status, body)
	}
	repairs = body["repairs"].([]any)
	if len(repairs) < 2 {
		t.Fatalf("k=8 returned %d repairs, want several", len(repairs))
	}
	if body["optimal"] != true {
		t.Fatalf("default budget not optimal: %v", body)
	}
	seen := map[string]bool{}
	for _, r := range repairs {
		k := fmt.Sprint(r.(map[string]any)["deleted"])
		if seen[k] {
			t.Fatalf("duplicate repair %s", k)
		}
		seen[k] = true
	}
	if len(body["certain_deleted"].([]any)) > len(body["possibly_deleted"].([]any)) {
		t.Fatalf("more certain than possible deletions: %v", body)
	}

	// Cardinality mode: every repair ties at the minimum cost.
	status, body = postJSON(t, client, ts.URL+"/v1/sessions/papers/repairs", `{"k": 8, "minimal": "cardinality"}`)
	if status != http.StatusOK {
		t.Fatalf("repairs cardinality: %d %v", status, body)
	}
	if body["minimal"] != "cardinality" || body["complete"] != true {
		t.Fatalf("cardinality response: %v", body)
	}
	var minCost any
	for i, r := range body["repairs"].([]any) {
		cost := r.(map[string]any)["cost"]
		if i == 0 {
			minCost = cost
		} else if cost != minCost {
			t.Fatalf("cardinality repair %d cost %v, want tie at %v", i, cost, minCost)
		}
	}

	// Unknown minimality is a 400.
	if status, _ := postJSON(t, client, ts.URL+"/v1/sessions/papers/repairs", `{"minimal": "subset"}`); status != http.StatusBadRequest {
		t.Fatalf("bad minimal: status %d, want 400", status)
	}
}

func TestHTTPQueryEndpoint(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()
	if status, body := postJSON(t, client, ts.URL+"/v1/sessions", registerBody); status != http.StatusCreated {
		t.Fatalf("register: %d %v", status, body)
	}

	status, body := postJSON(t, client, ts.URL+"/v1/sessions/papers/query",
		`{"query": "Q(g, n) :- Grant(g, n).", "k": 8}`)
	if status != http.StatusOK {
		t.Fatalf("query: %d %v", status, body)
	}
	certain := body["certain"].([]any)
	possible := body["possible"].([]any)
	if len(certain) != 1 || len(possible) != 1 {
		t.Fatalf("Grant query: certain %v possible %v, want one row each", certain, possible)
	}
	if got := certain[0].([]any); got[1] != "NSF" {
		t.Fatalf("certain row %v, want [1 NSF]", got)
	}
	// The running example holds more than 8 set-minimal repairs, so the
	// k=8 space is optimal (every solve proved its rank) but not complete.
	if body["columns"].(float64) != 2 || body["optimal"] != true || body["repairs"].(float64) != 8 {
		t.Fatalf("query metadata: %v", body)
	}

	// Missing and malformed queries are 400s.
	if status, _ := postJSON(t, client, ts.URL+"/v1/sessions/papers/query", `{}`); status != http.StatusBadRequest {
		t.Fatalf("missing query: status %d, want 400", status)
	}
	if status, _ := postJSON(t, client, ts.URL+"/v1/sessions/papers/query",
		`{"query": "Q(g :- Grant(g, n)."}`); status != http.StatusBadRequest {
		t.Fatalf("malformed query: status %d, want 400", status)
	}
	// Unknown session is a 404.
	if status, _ := postJSON(t, client, ts.URL+"/v1/sessions/none/query",
		`{"query": "Q(g, n) :- Grant(g, n)."}`); status != http.StatusNotFound {
		t.Fatalf("unknown session: status %d, want 404", status)
	}
}

// TestHTTPOptimalitySurfacing: a truncated solver budget must surface
// optimal:false in the JSON of both the single-repair and the
// enumeration endpoints — a best-effort repair silently presented as
// optimal is the bug this guards against.
func TestHTTPOptimalitySurfacing(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()
	if status, body := postJSON(t, client, ts.URL+"/v1/sessions", registerBody); status != http.StatusCreated {
		t.Fatalf("register: %d %v", status, body)
	}

	status, body := postJSON(t, client, ts.URL+"/v1/sessions/papers/repair",
		`{"semantics": "independent", "solver_max_nodes": 1}`)
	if status != http.StatusOK {
		t.Fatalf("repair: %d %v", status, body)
	}
	if body["optimal"] != false {
		t.Fatalf("/repair with 1-node budget: optimal = %v, want false", body["optimal"])
	}

	status, body = postJSON(t, client, ts.URL+"/v1/sessions/papers/repairs",
		`{"k": 4, "solver_max_nodes": 1}`)
	if status != http.StatusOK {
		t.Fatalf("repairs: %d %v", status, body)
	}
	if body["optimal"] != false || body["complete"] != false {
		t.Fatalf("/repairs with 1-node budget: optimal=%v complete=%v, want false/false", body["optimal"], body["complete"])
	}
	repairs := body["repairs"].([]any)
	if last := repairs[len(repairs)-1].(map[string]any); last["optimal"] != false {
		t.Fatalf("last truncated repair marked optimal: %v", last)
	}

	status, body = postJSON(t, client, ts.URL+"/v1/sessions/papers/query",
		`{"query": "Q(g, n) :- Grant(g, n).", "k": 4, "solver_max_nodes": 1}`)
	if status != http.StatusOK {
		t.Fatalf("query: %d %v", status, body)
	}
	if body["optimal"] != false {
		t.Fatalf("/query with 1-node budget: optimal = %v, want false", body["optimal"])
	}
}
