package server

import (
	"net/http"
	"time"

	"repro/internal/metrics"
)

// svcMetrics is the Service's metric inventory, rendered by GET /metrics
// in the Prometheus text format. Every Service carries its own registry
// (no process-global state), so embedded services and tests never collide.
type svcMetrics struct {
	reg *metrics.Registry

	// requests partitions by request kind (repair, repair_all, is_stable,
	// update, delete_view, register, deregister) and outcome (ok, error).
	requests *metrics.CounterVec
	// requestSeconds is end-to-end request latency, queueing included.
	requestSeconds *metrics.Histogram
	// starts partitions session activations: "warm" (already compiled and
	// frozen), "cold" (first-request compile+freeze), "recovered" (loaded
	// from the durability layer after a restart or eviction).
	starts *metrics.CounterVec

	// WAL and recovery instrumentation; all zero when durability is off.
	walAppendSeconds *metrics.Histogram
	recoverySeconds  *metrics.Histogram
	replayedRecords  *metrics.Counter
	tornTails        *metrics.Counter
	corruptRecords   *metrics.Counter
	compactions      *metrics.Counter
}

func newSvcMetrics(s *Service) *svcMetrics {
	reg := metrics.NewRegistry()
	m := &svcMetrics{
		reg: reg,
		requests: reg.NewCounterVec("deltarepaird_requests_total",
			"Requests served, by kind and outcome.", "kind", "status"),
		requestSeconds: reg.NewHistogram("deltarepaird_request_seconds",
			"End-to-end request latency in seconds, admission queueing included.", nil),
		starts: reg.NewCounterVec("deltarepaird_session_starts_total",
			"Session activations by start type: warm, cold, or recovered from disk.", "type"),
		walAppendSeconds: reg.NewHistogram("deltarepaird_wal_append_seconds",
			"WAL append latency in seconds (includes fsync when the policy demands it).", nil),
		recoverySeconds: reg.NewHistogram("deltarepaird_recovery_seconds",
			"Per-session crash-recovery time in seconds (snapshot load + WAL replay).", nil),
		replayedRecords: reg.NewCounter("deltarepaird_recovery_replayed_records_total",
			"WAL records replayed during session recovery."),
		tornTails: reg.NewCounter("deltarepaird_recovery_torn_tails_total",
			"Recoveries that truncated a torn final WAL record."),
		corruptRecords: reg.NewCounter("deltarepaird_recovery_corrupt_records_total",
			"WAL records dropped for checksum or decode failures during recovery."),
		compactions: reg.NewCounter("deltarepaird_snapshot_compactions_total",
			"Snapshot compactions (WAL truncated into a fresh snapshot)."),
	}
	reg.NewGaugeFunc("deltarepaird_sessions",
		"Sessions currently resident in the cache.",
		func() float64 { return float64(s.Len()) })
	reg.NewGaugeFunc("deltarepaird_evictions_total",
		"Sessions evicted from the cache by LRU pressure (monotonic).",
		func() float64 { return float64(s.Evictions()) })
	reg.NewGaugeFunc("deltarepaird_session_versions",
		"Sum of head snapshot versions across warmed resident sessions.",
		func() float64 {
			var sum uint64
			for _, info := range s.Sessions() {
				sum += info.Version
			}
			return float64(sum)
		})
	return m
}

// track records one request's outcome and latency; defer it at the top of
// each public request method with the named error result.
func (s *Service) track(kind string, start time.Time, errp *error) {
	status := "ok"
	if *errp != nil {
		status = "error"
	}
	s.metrics.requests.With(kind, status).Inc()
	s.metrics.requestSeconds.ObserveSeconds(time.Since(start))
}

// Metrics renders the service's metrics in the Prometheus text format.
func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = s.metrics.reg.WriteTo(w)
}
