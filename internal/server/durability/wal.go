// Package durability persists serving sessions across process restarts: a
// per-session write-ahead log of update batches plus periodic snapshot
// compaction, mirroring how the engine already treats state as version
// deltas over immutable snapshots (Snapshot.Apply). A session's durable
// state is a directory holding its registration metadata, the newest
// snapshot (snap-<version>.snap via engine.Save), and a log of the update
// batches applied since that snapshot. Recovery loads the snapshot and
// replays the log tail; Apply is deterministic given the prior state and
// the row order, so the recovered head is byte-identical to the pre-crash
// head.
package durability

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/engine"
)

// Record is one durable update batch: the version it produced and the
// rows it applied, exactly as they were handed to Snapshot.Apply (deletes
// are applied before inserts there, so replay preserves replace
// semantics).
type Record struct {
	Version uint64
	Inserts []engine.Row
	Deletes []engine.Row
}

// Frame layout: uint32 payload length (LE), uint32 CRC-32C of the payload
// (LE), then the gob-encoded Record. Each record gets its own gob encoder
// so frames are self-contained — a truncated or skipped frame never
// poisons decoder state for its successors.
const frameHeader = 8

// maxFrameLen bounds a single record; a length field beyond it means the
// header bytes are garbage (torn write into the length word), not a real
// giant batch.
const maxFrameLen = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// FsyncPolicy controls when the log file is flushed to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways flushes after every append: an acknowledged update
	// survives power loss, at the cost of one fsync per batch.
	FsyncAlways FsyncPolicy = iota
	// FsyncNever leaves flushing to the OS page cache: an acknowledged
	// update survives a process crash but may be lost on power failure.
	FsyncNever
)

// Log is an append-only write-ahead log of Records. Appends are
// serialized internally; one Log has one writer file handle.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	fsync  FsyncPolicy
	count  int // records appended since open (compaction cadence)
	closed bool
}

// OpenLog opens (creating if absent) the log at path for appending.
func OpenLog(path string, fsync FsyncPolicy) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Log{f: f, path: path, fsync: fsync}, nil
}

// EncodeRecord frames one record: header plus self-contained gob payload.
// Exposed for tests that build WAL fixtures byte-by-byte.
func EncodeRecord(rec *Record) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(rec); err != nil {
		return nil, fmt.Errorf("durability: encoding record: %w", err)
	}
	buf := make([]byte, frameHeader+payload.Len())
	binary.LittleEndian.PutUint32(buf[0:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload.Bytes(), crcTable))
	copy(buf[frameHeader:], payload.Bytes())
	return buf, nil
}

// Append frames rec and writes it with a single write call (so a crash
// tears at most the final record, never interleaves two), then flushes
// per the fsync policy. It returns only after the record is as durable as
// the policy promises.
func (l *Log) Append(rec *Record) error {
	buf, err := EncodeRecord(rec)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("durability: append to closed log")
	}
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("durability: appending WAL record: %w", err)
	}
	if l.fsync == FsyncAlways {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("durability: fsync WAL: %w", err)
		}
	}
	l.count++
	return nil
}

// AppendCount returns the number of records appended since the log was
// opened (not the total records in the file).
func (l *Log) AppendCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Reset truncates the log to empty and restarts the append count; called
// after a covering snapshot is durably in place. The O_APPEND handle keeps
// working — subsequent appends start at the new (zero) end of file.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("durability: reset of closed log")
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("durability: truncating WAL after compaction: %w", err)
	}
	l.count = 0
	return nil
}

// Sync flushes buffered writes to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.f.Sync()
}

// Close flushes and closes the log. Further Appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// ReadStats reports what ReadLog found and repaired.
type ReadStats struct {
	// Records is the number of intact records returned.
	Records int
	// TornTail is true when the file ended mid-record (incomplete header
	// or short payload) — the expected shape after a crash during Append.
	TornTail bool
	// CorruptRecords counts records whose checksum did not match the
	// payload. The first corrupt record and everything after it are
	// dropped: a bad checksum means the tail cannot be trusted.
	CorruptRecords int
	// TruncatedAt is the byte offset the file was (or should be)
	// truncated to; equal to the file size when the log was clean.
	TruncatedAt int64
}

// Clean reports whether the log needed no repair.
func (s *ReadStats) Clean() bool { return !s.TornTail && s.CorruptRecords == 0 }

// ReadLog reads every intact record from the log at path, in order. A
// torn final record (crash mid-append) or a corrupt checksum ends the
// read: the intact prefix is returned and, when repair is true, the file
// is truncated to that prefix so the next append starts on a clean
// boundary. A missing file is an empty log.
func ReadLog(path string, repair bool) ([]*Record, *ReadStats, error) {
	stats := &ReadStats{}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, stats, nil
	}
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()

	var recs []*Record
	var offset int64
	header := make([]byte, frameHeader)
	for {
		if _, err := io.ReadFull(f, header); err != nil {
			if errors.Is(err, io.EOF) {
				break // clean end
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				stats.TornTail = true
				break
			}
			return nil, nil, fmt.Errorf("durability: reading WAL header: %w", err)
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length > maxFrameLen {
			// Garbage length word: treat like a torn record — nothing after
			// this offset can be framed.
			stats.TornTail = true
			break
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				stats.TornTail = true
				break
			}
			return nil, nil, fmt.Errorf("durability: reading WAL payload: %w", err)
		}
		if crc32.Checksum(payload, crcTable) != sum {
			stats.CorruptRecords++
			break
		}
		var rec Record
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			// Checksum matched but gob won't parse: count it as corruption
			// (e.g. a record written by an incompatible build) and stop.
			stats.CorruptRecords++
			break
		}
		recs = append(recs, &rec)
		offset += frameHeader + int64(length)
		stats.Records++
	}
	stats.TruncatedAt = offset

	if repair && !stats.Clean() {
		if err := os.Truncate(path, offset); err != nil {
			return nil, nil, fmt.Errorf("durability: truncating damaged WAL tail: %w", err)
		}
	}
	return recs, stats, nil
}
