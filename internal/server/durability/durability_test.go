package durability

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
)

// testDB builds a small two-relation database.
func testDB(t *testing.T) (*engine.Schema, *engine.Database) {
	t.Helper()
	schema := engine.NewSchema()
	if _, err := schema.AddRelation("R", "r", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := schema.AddRelation("S", "s", "x"); err != nil {
		t.Fatal(err)
	}
	db := engine.NewDatabase(schema)
	for i := int64(0); i < 5; i++ {
		if _, err := db.Insert("R", engine.Int64(i), engine.Int64(i*10)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Insert("S", engine.Str("hello")); err != nil {
		t.Fatal(err)
	}
	return schema, db
}

func mgr(t *testing.T, dir string, every int) *Manager {
	t.Helper()
	m, err := NewManager(Options{Dir: dir, Fsync: FsyncNever, SnapshotEvery: every})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func row(rel string, vals ...engine.Value) engine.Row { return engine.Row{Rel: rel, Vals: vals} }

// dumpSnap renders a snapshot's full content deterministically for
// byte-identity assertions.
func dumpSnap(t *testing.T, s *engine.Snapshot) string {
	t.Helper()
	var out string
	fork := s.Fork()
	for _, rs := range fork.Schema.Relations {
		rel := fork.Relation(rs.Name)
		rel.Scan(func(tu *engine.Tuple) bool {
			out += tu.ID + "|" + tu.Rel + "|" + tu.Key() + "\n"
			return true
		})
	}
	return out
}

func TestCreateOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := mgr(t, dir, 0)
	_, db := testDB(t)
	st, err := m.Create(Meta{Name: "sess", Schema: "R(a,b)\nS(x)", Program: "p"}, db)
	if err != nil {
		t.Fatal(err)
	}

	want := db.Freeze()
	// Two update batches.
	for v := uint64(2); v <= 3; v++ {
		var rec Record
		rec.Version = v
		rec.Inserts = []engine.Row{row("R", engine.Int64(int64(100*v)), engine.Int64(1))}
		if v == 3 {
			rec.Deletes = []engine.Row{row("S", engine.Str("hello"))}
		}
		next, _, err := want.Apply(rec.Inserts, rec.Deletes)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Append(&rec); err != nil {
			t.Fatal(err)
		}
		want = next
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := m.Open("sess")
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Store.Close()
	if rec.Version != 3 || rec.Replayed != 2 || rec.SnapshotVersion != 1 {
		t.Fatalf("recovered version=%d replayed=%d snapVer=%d, want 3/2/1",
			rec.Version, rec.Replayed, rec.SnapshotVersion)
	}
	if !rec.WalStats.Clean() {
		t.Fatalf("clean WAL reported damage: %+v", rec.WalStats)
	}
	if rec.Meta.Program != "p" || rec.Meta.Name != "sess" {
		t.Fatalf("meta round trip: %+v", rec.Meta)
	}
	if got, want := dumpSnap(t, rec.Snapshot), dumpSnap(t, want); got != want {
		t.Fatalf("recovered state differs:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestDuplicateCreate(t *testing.T) {
	m := mgr(t, t.TempDir(), 0)
	_, db := testDB(t)
	st, err := m.Create(Meta{Name: "dup"}, db)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	_, db2 := testDB(t)
	if _, err := m.Create(Meta{Name: "dup"}, db2); !os.IsExist(err) {
		t.Fatalf("duplicate create: got %v, want ErrExist", err)
	}
}

func TestExistsListDelete(t *testing.T) {
	m := mgr(t, t.TempDir(), 0)
	for _, name := range []string{"zz", "aa", "weird/../name with spaces"} {
		_, db := testDB(t)
		st, err := m.Create(Meta{Name: name}, db)
		if err != nil {
			t.Fatalf("create %q: %v", name, err)
		}
		st.Close()
		if !m.Exists(name) {
			t.Fatalf("Exists(%q) = false after create", name)
		}
	}
	names, err := m.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "aa" || names[2] != "zz" {
		t.Fatalf("List = %v", names)
	}
	if err := m.Delete("aa"); err != nil {
		t.Fatal(err)
	}
	if m.Exists("aa") {
		t.Fatal("Exists after Delete")
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	m := mgr(t, dir, 0)
	_, db := testDB(t)
	st, err := m.Create(Meta{Name: "torn"}, db)
	if err != nil {
		t.Fatal(err)
	}
	good := &Record{Version: 2, Inserts: []engine.Row{row("S", engine.Str("a"))}}
	if err := st.Append(good); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Simulate a crash mid-append: a second record with its payload cut
	// short.
	frame, err := EncodeRecord(&Record{Version: 3, Inserts: []engine.Row{row("S", engine.Str("b"))}})
	if err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, encodeName("torn"), "wal.log")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sizeBefore := fileSize(t, walPath)

	rec, err := m.Open("torn")
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Store.Close()
	if rec.Version != 2 || rec.Replayed != 1 {
		t.Fatalf("recovered version=%d replayed=%d, want 2/1", rec.Version, rec.Replayed)
	}
	if !rec.WalStats.TornTail || rec.WalStats.CorruptRecords != 0 {
		t.Fatalf("stats = %+v, want torn tail", rec.WalStats)
	}
	if got := fileSize(t, walPath); got >= sizeBefore || got != rec.WalStats.TruncatedAt {
		t.Fatalf("WAL not truncated: size %d (was %d), TruncatedAt %d",
			got, sizeBefore, rec.WalStats.TruncatedAt)
	}

	// The repaired log accepts new appends and recovers again cleanly.
	if err := rec.Store.Append(&Record{Version: 3, Inserts: []engine.Row{row("S", engine.Str("c"))}}); err != nil {
		t.Fatal(err)
	}
	rec.Store.Close()
	again, err := m.Open("torn")
	if err != nil {
		t.Fatal(err)
	}
	defer again.Store.Close()
	if again.Version != 3 || !again.WalStats.Clean() {
		t.Fatalf("post-repair recovery: version=%d stats=%+v", again.Version, again.WalStats)
	}
}

func TestCorruptChecksumTruncated(t *testing.T) {
	dir := t.TempDir()
	m := mgr(t, dir, 0)
	_, db := testDB(t)
	st, err := m.Create(Meta{Name: "corrupt"}, db)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(&Record{Version: 2, Inserts: []engine.Row{row("S", engine.Str("a"))}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(&Record{Version: 3, Inserts: []engine.Row{row("S", engine.Str("b"))}}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Flip one payload byte in the final record.
	walPath := filepath.Join(dir, encodeName("corrupt"), "wal.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := m.Open("corrupt")
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Store.Close()
	if rec.Version != 2 || rec.Replayed != 1 {
		t.Fatalf("recovered version=%d replayed=%d, want 2/1", rec.Version, rec.Replayed)
	}
	if rec.WalStats.CorruptRecords != 1 {
		t.Fatalf("stats = %+v, want 1 corrupt record", rec.WalStats)
	}
	if got := fileSize(t, walPath); got != rec.WalStats.TruncatedAt {
		t.Fatalf("WAL size %d != TruncatedAt %d", got, rec.WalStats.TruncatedAt)
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	m := mgr(t, dir, 2)
	_, db := testDB(t)
	st, err := m.Create(Meta{Name: "compact"}, db)
	if err != nil {
		t.Fatal(err)
	}
	head := db.Freeze()
	for v := uint64(2); v <= 5; v++ {
		ins := []engine.Row{row("S", engine.Int64(int64(v)))}
		next, _, err := head.Apply(ins, nil)
		if err != nil {
			t.Fatal(err)
		}
		head = next
		if err := st.Append(&Record{Version: v, Inserts: ins}); err != nil {
			t.Fatal(err)
		}
		if st.ShouldCompact() {
			if err := st.Compact(head, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	// 4 appends with cadence 2 → compactions at v=3 and v=5; WAL empty.
	if st.SnapshotVersion() != 5 {
		t.Fatalf("snapshot version = %d, want 5", st.SnapshotVersion())
	}
	sessDir := filepath.Join(dir, encodeName("compact"))
	if got := fileSize(t, filepath.Join(sessDir, "wal.log")); got != 0 {
		t.Fatalf("WAL size after compaction = %d, want 0", got)
	}
	entries, _ := os.ReadDir(sessDir)
	snaps := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".snap" {
			snaps++
		}
	}
	if snaps != 1 {
		t.Fatalf("%d snapshot files after compaction, want 1", snaps)
	}
	st.Close()

	rec, err := m.Open("compact")
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Store.Close()
	if rec.Version != 5 || rec.Replayed != 0 || rec.SnapshotVersion != 5 {
		t.Fatalf("recovered version=%d replayed=%d snapVer=%d, want 5/0/5",
			rec.Version, rec.Replayed, rec.SnapshotVersion)
	}
	if got, want := dumpSnap(t, rec.Snapshot), dumpSnap(t, head); got != want {
		t.Fatalf("compacted recovery differs:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestCrashBetweenSnapshotAndTruncate covers the compaction crash window:
// the new snapshot is in place but the WAL still holds records at or below
// its version. Recovery must skip them.
func TestCrashBetweenSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	m := mgr(t, dir, -1)
	_, db := testDB(t)
	st, err := m.Create(Meta{Name: "window"}, db)
	if err != nil {
		t.Fatal(err)
	}
	head := db.Freeze()
	for v := uint64(2); v <= 4; v++ {
		ins := []engine.Row{row("S", engine.Int64(int64(v)))}
		next, _, err := head.Apply(ins, nil)
		if err != nil {
			t.Fatal(err)
		}
		head = next
		if err := st.Append(&Record{Version: v, Inserts: ins}); err != nil {
			t.Fatal(err)
		}
	}
	// Write the snapshot at version 3 directly, without truncating the WAL
	// — exactly the state a crash between rename and truncate leaves.
	cur := db.Freeze()
	for v := uint64(2); v <= 3; v++ {
		next, _, err := cur.Apply([]engine.Row{row("S", engine.Int64(int64(v)))}, nil)
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	sessDir := filepath.Join(dir, encodeName("window"))
	if err := writeSnapshotFile(filepath.Join(sessDir, snapName(3)), cur.Fork()); err != nil {
		t.Fatal(err)
	}
	st.Close()

	rec, err := m.Open("window")
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Store.Close()
	if rec.SnapshotVersion != 3 || rec.Version != 4 || rec.Replayed != 1 {
		t.Fatalf("recovered snapVer=%d version=%d replayed=%d, want 3/4/1",
			rec.SnapshotVersion, rec.Version, rec.Replayed)
	}
	if got, want := dumpSnap(t, rec.Snapshot), dumpSnap(t, head); got != want {
		t.Fatalf("crash-window recovery differs:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
