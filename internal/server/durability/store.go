package durability

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/engine"
)

// On-disk layout, one directory per session under Options.Dir:
//
//	<dir>/<encoded-name>/meta.json       registration metadata (name, sources)
//	<dir>/<encoded-name>/snap-<V>.snap   newest engine snapshot, at version V
//	<dir>/<encoded-name>/wal.log         update batches applied since version V
//
// Snapshots are written to a .tmp file, fsynced, and renamed into place, so
// every crash window leaves either the old snapshot or the new one — never
// a half-written file. The WAL is truncated only after the covering
// snapshot is durably in place; recovery skips WAL records at or below the
// snapshot version, so a crash between the rename and the truncate is
// harmless (the stale tail is simply ignored and dropped by the next
// compaction).

// DefaultSnapshotEvery is the compaction cadence (WAL records between
// snapshots) when Options.SnapshotEvery is 0.
const DefaultSnapshotEvery = 64

// Options configures a Manager.
type Options struct {
	// Dir is the root data directory; one subdirectory per session.
	Dir string
	// Fsync is the WAL flush policy.
	Fsync FsyncPolicy
	// SnapshotEvery is the number of WAL records that triggers snapshot
	// compaction. 0 means DefaultSnapshotEvery; negative disables
	// automatic compaction.
	SnapshotEvery int
}

// Meta is a session's registration metadata, stored as meta.json. Schema
// and Program are source text: Program is re-parsed during recovery (the
// engine snapshot carries only data, not rules); Schema is informational —
// the authoritative schema is reconstructed by engine.LoadSnapshot.
type Meta struct {
	Name    string `json:"name"`
	Schema  string `json:"schema"`
	Program string `json:"program"`
}

// Manager owns the root data directory and its session stores.
type Manager struct {
	opts Options
}

// NewManager creates the root directory if needed and returns a Manager.
func NewManager(opts Options) (*Manager, error) {
	if opts.Dir == "" {
		return nil, errors.New("durability: data directory must be non-empty")
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("durability: creating data dir: %w", err)
	}
	return &Manager{opts: opts}, nil
}

// encodeName maps an arbitrary session name to a safe directory name.
// Names confined to [A-Za-z0-9_.-] (with no leading dot) keep themselves
// readable under an "s-" prefix; anything else is hex-encoded under "x-".
// The prefixes cannot collide, and meta.json carries the real name.
func encodeName(name string) string {
	safe := name != "" && name[0] != '.'
	for i := 0; safe && i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.':
		default:
			safe = false
		}
	}
	if safe {
		return "s-" + name
	}
	return "x-" + hex.EncodeToString([]byte(name))
}

func (m *Manager) sessionDir(name string) string {
	return filepath.Join(m.opts.Dir, encodeName(name))
}

// Exists reports whether a durable session directory exists for name.
func (m *Manager) Exists(name string) bool {
	_, err := os.Stat(filepath.Join(m.sessionDir(name), "meta.json"))
	return err == nil
}

// List returns the names of every persisted session, sorted. Directories
// without a readable meta.json are skipped (a crash during Create can
// leave one; Create is only acknowledged after meta.json is in place).
func (m *Manager) List() ([]string, error) {
	entries, err := os.ReadDir(m.opts.Dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		var meta Meta
		if readJSON(filepath.Join(m.opts.Dir, e.Name(), "meta.json"), &meta) == nil && meta.Name != "" {
			names = append(names, meta.Name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Delete removes a session's durable state entirely (deregistration —
// distinct from cache eviction, which only closes the store).
func (m *Manager) Delete(name string) error {
	return os.RemoveAll(m.sessionDir(name))
}

// Create persists a new session: its metadata, an initial snapshot at
// version 1, and an empty WAL. A session directory that already exists
// fails with os.ErrExist — concurrent Creates race on the atomic Mkdir,
// so the filesystem is the duplicate-registration arbiter.
func (m *Manager) Create(meta Meta, db *engine.Database) (*SessionStore, error) {
	dir := m.sessionDir(meta.Name)
	if err := os.Mkdir(dir, 0o755); err != nil {
		return nil, err // ErrExist = duplicate
	}
	if err := writeSnapshotFile(filepath.Join(dir, snapName(1)), db); err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	// meta.json lands last: its presence marks the directory complete
	// (List and Exists key off it).
	if err := writeJSON(filepath.Join(dir, "meta.json"), &meta); err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	log, err := OpenLog(filepath.Join(dir, "wal.log"), m.opts.Fsync)
	if err != nil {
		return nil, err
	}
	return &SessionStore{dir: dir, log: log, snapshotEvery: m.opts.SnapshotEvery, snapVersion: 1}, nil
}

// Recovered is a session restored from disk: its metadata, the replayed
// head state, and the reopened store for further appends.
type Recovered struct {
	Meta Meta
	// Snapshot is the recovered head — the newest durable snapshot with
	// the WAL tail replayed onto it via Snapshot.Apply (deterministic, so
	// the head is byte-identical to the pre-crash state).
	Snapshot *engine.Snapshot
	// Version is the head's version number.
	Version uint64
	// SnapshotVersion is the version of the on-disk snapshot the replay
	// started from.
	SnapshotVersion uint64
	// Replayed is the number of WAL records applied on top of it.
	Replayed int
	// WalStats reports what the WAL read found (torn tail, corrupt
	// records); the damaged tail has already been truncated.
	WalStats *ReadStats
	// Store accepts the session's future appends.
	Store *SessionStore
}

// Open recovers the named session: load the newest snapshot, replay the
// WAL tail (repairing a torn or corrupt tail by truncation), and reopen
// the log for appending.
func (m *Manager) Open(name string) (*Recovered, error) {
	dir := m.sessionDir(name)
	var meta Meta
	if err := readJSON(filepath.Join(dir, "meta.json"), &meta); err != nil {
		return nil, fmt.Errorf("durability: session %q: %w", name, err)
	}
	snapPath, snapVer, err := newestSnapshot(dir)
	if err != nil {
		return nil, fmt.Errorf("durability: session %q: %w", name, err)
	}
	db, err := engine.LoadSnapshotFile(snapPath)
	if err != nil {
		return nil, fmt.Errorf("durability: session %q snapshot: %w", name, err)
	}
	walPath := filepath.Join(dir, "wal.log")
	recs, stats, err := ReadLog(walPath, true)
	if err != nil {
		return nil, fmt.Errorf("durability: session %q: %w", name, err)
	}
	snap := db.Freeze()
	version := snapVer
	replayed := 0
	for _, rec := range recs {
		if rec.Version <= version {
			continue // pre-snapshot tail left by a crash mid-compaction
		}
		if rec.Version != version+1 {
			// A gap can only mean a record sequence this build never writes;
			// stop at the last version that is provably continuous.
			break
		}
		next, _, err := snap.Apply(rec.Inserts, rec.Deletes)
		if err != nil {
			return nil, fmt.Errorf("durability: session %q replaying version %d: %w", name, rec.Version, err)
		}
		snap = next
		version = rec.Version
		replayed++
	}
	log, err := OpenLog(walPath, m.opts.Fsync)
	if err != nil {
		return nil, err
	}
	// Seed the compaction cadence with the replayed tail so a session that
	// crashed just short of a compaction does not need another full window
	// of appends to get one.
	log.count = replayed
	return &Recovered{
		Meta:            meta,
		Snapshot:        snap,
		Version:         version,
		SnapshotVersion: snapVer,
		Replayed:        replayed,
		WalStats:        stats,
		Store:           &SessionStore{dir: dir, log: log, snapshotEvery: m.opts.SnapshotEvery, snapVersion: snapVer},
	}, nil
}

// SessionStore is one session's open durable state: the append handle on
// its WAL plus the compaction cadence. Callers serialize Append and
// Compact per session (the server's per-session writer lock).
type SessionStore struct {
	dir           string
	log           *Log
	snapshotEvery int
	snapVersion   uint64
}

// Append makes one update batch durable (per the fsync policy) before the
// caller makes it visible in memory.
func (st *SessionStore) Append(rec *Record) error {
	return st.log.Append(rec)
}

// ShouldCompact reports whether the WAL has accumulated enough records
// since the last snapshot to warrant compaction.
func (st *SessionStore) ShouldCompact() bool {
	return st.snapshotEvery > 0 && st.log.AppendCount() >= st.snapshotEvery
}

// Compact writes a snapshot of head at the given version and truncates
// the WAL. The snapshot lands via tmp+fsync+rename, the WAL is truncated
// only afterwards, and older snapshot files are removed last — every
// crash window recovers to the same head.
func (st *SessionStore) Compact(head *engine.Snapshot, version uint64) error {
	path := filepath.Join(st.dir, snapName(version))
	// Fork is O(relations) and shares all frozen storage; Save reads
	// base/delta/nextID/seq from the fork, which Freeze/Fork round-trip.
	if err := writeSnapshotFile(path, head.Fork()); err != nil {
		return err
	}
	if err := st.log.Reset(); err != nil {
		return err
	}
	prev := st.snapVersion
	st.snapVersion = version
	// Best-effort removal of superseded snapshots; recovery always picks
	// the newest, so leftovers cost only disk.
	if prev != version {
		os.Remove(filepath.Join(st.dir, snapName(prev)))
	}
	return nil
}

// SnapshotVersion returns the version of the newest durable snapshot.
func (st *SessionStore) SnapshotVersion() uint64 { return st.snapVersion }

// Sync flushes the WAL regardless of policy (clean shutdown).
func (st *SessionStore) Sync() error { return st.log.Sync() }

// Close flushes and closes the WAL handle. The durable state stays on
// disk — Close is cache eviction, not deletion.
func (st *SessionStore) Close() error { return st.log.Close() }

func snapName(version uint64) string { return fmt.Sprintf("snap-%d.snap", version) }

// newestSnapshot finds the highest-versioned snap-<V>.snap in dir.
func newestSnapshot(dir string) (string, uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, err
	}
	best := uint64(0)
	found := false
	for _, e := range entries {
		var v uint64
		if n, _ := fmt.Sscanf(e.Name(), "snap-%d.snap", &v); n == 1 && strings.HasSuffix(e.Name(), ".snap") {
			if !found || v > best {
				best, found = v, true
			}
		}
	}
	if !found {
		return "", 0, errors.New("no snapshot file")
	}
	return filepath.Join(dir, snapName(best)), best, nil
}

// writeSnapshotFile saves db to path atomically: tmp, fsync, rename.
func writeSnapshotFile(path string, db *engine.Database) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := db.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss;
// best-effort (some filesystems reject directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}
