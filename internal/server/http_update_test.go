package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// HTTP-level coverage of mutable sessions: the update endpoint, version
// pinning across the endpoint matrix, every mapped status code, and a
// concurrency hammer interleaving HTTP updates with repairs.

func TestHTTPUpdateEndToEnd(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	if status, body := postJSON(t, client, ts.URL+"/v1/sessions", registerBody); status != http.StatusCreated {
		t.Fatalf("register: %d %v", status, body)
	}

	// Baseline stage repair at version 1.
	status, body := postJSON(t, client, ts.URL+"/v1/sessions/papers/repair", `{"semantics": "stage"}`)
	if status != http.StatusOK {
		t.Fatalf("repair: %d %v", status, body)
	}
	if body["version"].(float64) != 1 {
		t.Fatalf("initial repair version %v, want 1", body["version"])
	}
	baseSize := int(body["size"].(float64))

	// Update: drop the AuthGrant edge that dooms Marge, insert an
	// unrelated pub.
	status, body = postJSON(t, client, ts.URL+"/v1/sessions/papers/update",
		`{"deletes": {"AuthGrant": [[4, 2]]}, "inserts": {"Pub": [[50, "new"]]}}`)
	if status != http.StatusOK {
		t.Fatalf("update: %d %v", status, body)
	}
	if body["version"].(float64) != 2 || body["inserted"].(float64) != 1 || body["deleted"].(float64) != 1 {
		t.Fatalf("update response %v", body)
	}
	changed := fmt.Sprintf("%v", body["changed_relations"])
	if changed != "[AuthGrant Pub]" {
		t.Fatalf("changed_relations %s", changed)
	}

	// Head repair sees the new data and reports version 2.
	status, body = postJSON(t, client, ts.URL+"/v1/sessions/papers/repair", `{"semantics": "stage"}`)
	if status != http.StatusOK || body["version"].(float64) != 2 {
		t.Fatalf("head repair after update: %d %v", status, body)
	}
	if int(body["size"].(float64)) >= baseSize {
		t.Fatalf("dropping a cascade root should shrink the repair (%v vs %d)", body["size"], baseSize)
	}

	// Read-your-writes: pinning version 1 reproduces the original size.
	status, body = postJSON(t, client, ts.URL+"/v1/sessions/papers/repair", `{"semantics": "stage", "version": 1}`)
	if status != http.StatusOK || body["version"].(float64) != 1 || int(body["size"].(float64)) != baseSize {
		t.Fatalf("pinned repair: %d %v", status, body)
	}

	// Version pinning flows through the whole matrix.
	status, body = postJSON(t, client, ts.URL+"/v1/sessions/papers/repair-all", `{"version": 1}`)
	if status != http.StatusOK || body["version"].(float64) != 1 {
		t.Fatalf("pinned repair-all: %d %v", status, body)
	}
	status, body = postJSON(t, client, ts.URL+"/v1/sessions/papers/is-stable", `{"version": 2}`)
	if status != http.StatusOK || body["version"].(float64) != 2 || body["stable"] != false {
		t.Fatalf("pinned is-stable: %d %v", status, body)
	}
	status, body = postJSON(t, client, ts.URL+"/v1/sessions/papers/delete-view-tuple",
		`{"view": "V(a, p) :- Author(a, n), Writes(a, p).", "values": [4, 6], "version": 1}`)
	if status != http.StatusOK {
		t.Fatalf("pinned delete-view-tuple: %d %v", status, body)
	}

	// Session listing surfaces the version state.
	resp, err := client.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var infos []SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].Version != 2 || infos[0].RetainedVersions != 2 || infos[0].Updates != 1 {
		t.Fatalf("session listing: %+v", infos)
	}
}

// TestHTTPStatusCodeMatrix exercises every status the API maps: 400,
// 404, 409 (duplicate, schema mismatch, evicted version), 499, 504.
func TestHTTPStatusCodeMatrix(t *testing.T) {
	svc := New(Config{MaxVersions: 1}) // head-only retention: updates evict instantly
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()
	if status, body := postJSON(t, client, ts.URL+"/v1/sessions", registerBody); status != http.StatusCreated {
		t.Fatalf("register: %d %v", status, body)
	}
	// Mint version 2; with MaxVersions=1 version 1 is immediately gone.
	if status, body := postJSON(t, client, ts.URL+"/v1/sessions/papers/update",
		`{"inserts": {"Pub": [[51, "x"]]}}`); status != http.StatusOK {
		t.Fatalf("update: %d %v", status, body)
	}

	cases := []struct {
		name, url, body string
		wantStatus      int
	}{
		{"400 bad update json", "/v1/sessions/papers/update", `{"inserts": `, http.StatusBadRequest},
		{"400 bad update value", "/v1/sessions/papers/update", `{"inserts": {"Pub": [[true, "x"]]}}`, http.StatusBadRequest},
		{"400 future version", "/v1/sessions/papers/repair", `{"semantics": "end", "version": 99}`, http.StatusBadRequest},
		{"404 unknown session update", "/v1/sessions/none/update", `{}`, http.StatusNotFound},
		{"409 duplicate register", "/v1/sessions", registerBody, http.StatusConflict},
		{"409 unknown relation", "/v1/sessions/papers/update", `{"inserts": {"Nope": [[1]]}}`, http.StatusConflict},
		{"409 arity mismatch", "/v1/sessions/papers/update", `{"deletes": {"Author": [[1]]}}`, http.StatusConflict},
		{"409 evicted version", "/v1/sessions/papers/repair", `{"semantics": "end", "version": 1}`, http.StatusConflict},
	}
	for _, tc := range cases {
		status, body := postJSON(t, client, ts.URL+tc.url, tc.body)
		if status != tc.wantStatus {
			t.Errorf("%s: status %d (body %v), want %d", tc.name, status, body, tc.wantStatus)
		}
		if _, ok := body["error"]; !ok && status >= 400 {
			t.Errorf("%s: error body missing: %v", tc.name, body)
		}
	}

	// 499: a request whose client has already gone away. Drive the handler
	// directly with a pre-canceled request context and a recorder — the
	// status is written to the (dead) connection, which is the one place
	// it is observable.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/sessions/papers/repair",
		bytes.NewReader([]byte(`{"semantics": "stage"}`))).WithContext(canceled)
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, req)
	if rec.Code != 499 {
		t.Errorf("canceled client: status %d, want 499", rec.Code)
	}

	// 504: a deadline that passed before admission, driven directly like
	// the 499 case above — deterministic, no race against a real clock.
	expired, cancelExpired := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancelExpired()
	req = httptest.NewRequest(http.MethodPost, "/v1/sessions/papers/repair",
		bytes.NewReader([]byte(`{"semantics": "independent", "solver_max_nodes": 1}`))).WithContext(expired)
	rec = httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Errorf("expired deadline: status %d, want 504", rec.Code)
	}
}

// TestHTTPUpdateRepairHammer hammers one session over HTTP: one writer
// posting updates, many readers repairing at head and pinned versions.
// Each response's version must be internally consistent with its size —
// proving fork isolation across versions end to end through the HTTP
// stack.
func TestHTTPUpdateRepairHammer(t *testing.T) {
	svc := New(Config{MaxInFlight: 16, MaxVersions: 64})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()
	if status, body := postJSON(t, client, ts.URL+"/v1/sessions", registerBody); status != http.StatusCreated {
		t.Fatalf("register: %d %v", status, body)
	}
	// Baseline: version 1 stage repair size.
	_, body := postJSON(t, client, ts.URL+"/v1/sessions/papers/repair", `{"semantics": "stage"}`)
	baseSize := int(body["size"].(float64))

	const updates = 12
	var wg sync.WaitGroup
	errCh := make(chan error, 64)

	// Writer: each update adds one pub written by Homer (aid 5), growing
	// the stage repair by exactly 2 (the pub + the writes edge) per
	// version: expected size at version v is baseSize + 2(v-1).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < updates; i++ {
			upd := fmt.Sprintf(`{"inserts": {"Pub": [[%d, "extra"]], "Writes": [[5, %d]]}}`, 2000+i, 2000+i)
			status, body := postJSON(t, client, ts.URL+"/v1/sessions/papers/update", upd)
			if status != http.StatusOK {
				errCh <- fmt.Errorf("update %d: %d %v", i, status, body)
				return
			}
		}
	}()
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var seen []int
			for i := 0; i < 20; i++ {
				reqBody := `{"semantics": "stage"}`
				pinned := 0
				if len(seen) > 0 && i%3 == 0 {
					pinned = seen[i%len(seen)]
					reqBody = fmt.Sprintf(`{"semantics": "stage", "version": %d}`, pinned)
				}
				status, body := postJSON(t, client, ts.URL+"/v1/sessions/papers/repair", reqBody)
				if status != http.StatusOK {
					errCh <- fmt.Errorf("reader %d: %d %v", w, status, body)
					return
				}
				v := int(body["version"].(float64))
				if pinned != 0 && v != pinned {
					errCh <- fmt.Errorf("reader %d: pinned %d executed %d", w, pinned, v)
					return
				}
				if got, want := int(body["size"].(float64)), baseSize+2*(v-1); got != want {
					errCh <- fmt.Errorf("reader %d: version %d size %d, want %d", w, v, got, want)
					return
				}
				seen = append(seen, v)
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
