package server

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cqa"
	"repro/internal/sideeffect"
)

// spaceKey identifies one cached repair space. Spaces depend on everything
// the key carries: the snapshot version, the effective (clamped) k, the
// effective solver budget — a truncated enumeration under a small budget
// must never be replayed for a request that asked for a larger one — and
// the minimality mode.
type spaceKey struct {
	version  uint64
	k        int
	nodes    int64
	cardOnly bool
}

// cachedSpace returns the space cached under key, or nil.
func (sess *Session) cachedSpace(key spaceKey) *core.RepairSpace {
	sess.cacheMu.Lock()
	defer sess.cacheMu.Unlock()
	return sess.spaces[key]
}

// storeSpace caches an enumerated space, pruning entries whose version has
// left the retention ring (they can never be requested again — resolve
// fails first), which bounds the cache to the retained-version window.
func (sess *Session) storeSpace(key spaceKey, sp *core.RepairSpace) {
	oldest := sess.ring.Oldest()
	sess.cacheMu.Lock()
	defer sess.cacheMu.Unlock()
	for k := range sess.spaces {
		if k.version < oldest {
			delete(sess.spaces, k)
		}
	}
	sess.spaces[key] = sp
}

// spaceFor returns the session's repair space for (version, k, budget,
// mode), enumerating and caching it on a miss. The caller must hold an
// admission token (begin) and have resolved the version.
func (s *Service) spaceFor(sess *Session, reqCtx context.Context, version uint64, eopts core.EnumerateOptions, opts RequestOptions) (*core.RepairSpace, error) {
	copts := s.coreOptions(sess, reqCtx, opts)
	key := spaceKey{
		version:  version,
		k:        core.ClampEnumK(eopts.K),
		nodes:    copts.Independent.MaxNodes,
		cardOnly: eopts.CardinalityOnly,
	}
	if sp := sess.cachedSpace(key); sp != nil {
		return sp, nil
	}
	snap, _, err := sess.resolve(version)
	if err != nil {
		return nil, err
	}
	sp, err := core.EnumerateRepairsWith(snap.Fork(), sess.prog, copts, eopts)
	if err != nil {
		return nil, err
	}
	sess.storeSpace(key, sp)
	return sp, nil
}

// EnumerateRepairs computes the k-best independent-semantics repair space
// for the named session — distinct minimal repairs in nondecreasing cost
// order plus the per-tuple certain/possible classification — on a private
// fork of the session's snapshot (head, or the version pinned in opts).
// Spaces are cached per (version, k, solver budget, minimality mode) and
// replayed until an update mints a new version.
func (s *Service) EnumerateRepairs(ctx context.Context, name string, eopts core.EnumerateOptions, opts RequestOptions) (_ *core.RepairSpace, _ uint64, err error) {
	defer s.track("repairs", time.Now(), &err)
	sess, reqCtx, done, err := s.begin(ctx, name, opts)
	if err != nil {
		return nil, 0, err
	}
	defer done()
	_, version, err := sess.resolve(opts.Version)
	if err != nil {
		return nil, 0, err
	}
	sp, err := s.spaceFor(sess, reqCtx, version, eopts, opts)
	if err != nil {
		return nil, 0, err
	}
	return sp, version, nil
}

// Query answers a conjunctive query consistently across the session's
// repair space: certain answers hold in every enumerated repair, possible
// answers in at least one. The query source is parsed per request against
// the session schema (same surface as DeleteViewTuple views); the space is
// resolved through the same per-(version, k, budget, mode) cache as
// EnumerateRepairs, so repeated queries against one version enumerate
// once.
func (s *Service) Query(ctx context.Context, name, querySrc string, eopts core.EnumerateOptions, opts RequestOptions) (_ *cqa.Answers, _ uint64, err error) {
	defer s.track("query", time.Now(), &err)
	sess, reqCtx, done, err := s.begin(ctx, name, opts)
	if err != nil {
		return nil, 0, err
	}
	defer done()
	v, err := sideeffect.ParseView(querySrc, sess.schema)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	snap, version, err := sess.resolve(opts.Version)
	if err != nil {
		return nil, 0, err
	}
	sp, err := s.spaceFor(sess, reqCtx, version, eopts, opts)
	if err != nil {
		return nil, 0, err
	}
	ans, err := cqa.Answer(snap.Fork(), v, sp)
	if err != nil {
		return nil, 0, err
	}
	return ans, version, nil
}
