package datalog

import (
	"strings"
	"testing"

	"repro/internal/engine"
)

func exampleSchema() *engine.Schema {
	s := engine.NewSchema()
	s.MustAddRelation("Grant", "g", "gid", "name")
	s.MustAddRelation("AuthGrant", "ag", "aid", "gid")
	s.MustAddRelation("Author", "a", "aid", "name")
	s.MustAddRelation("Writes", "w", "aid", "pid")
	s.MustAddRelation("Pub", "p", "pid", "title")
	s.MustAddRelation("Cite", "c", "citing", "cited")
	return s
}

func TestValidateRunningExample(t *testing.T) {
	p := MustParse(runningExampleSrc)
	if err := p.Validate(exampleSchema()); err != nil {
		t.Fatal(err)
	}
	// Self atoms: rule 0 -> body[0]; rules 2,3 share bodies but different
	// heads: rule 2 head Pub -> body[0] (Pub), rule 3 head Writes -> body[1].
	wantSelf := []int{0, 0, 0, 1, 0}
	for i, r := range p.Rules {
		if r.SelfIdx != wantSelf[i] {
			t.Errorf("rule %d SelfIdx = %d, want %d", i, r.SelfIdx, wantSelf[i])
		}
	}
	if p.Recursive {
		t.Error("running example is not recursive")
	}
}

func TestValidateRejectsNonDeltaHead(t *testing.T) {
	p := &Program{Rules: []*Rule{
		NewRule("", NewAtom("R", V("x")), []Atom{NewAtom("R", V("x"))}),
	}}
	if err := p.Validate(nil); err == nil || !strings.Contains(err.Error(), "delta atom") {
		t.Fatalf("want delta-head error, got %v", err)
	}
}

func TestValidateRejectsMissingSelfAtom(t *testing.T) {
	// Head terms (x, y) but body atom has (y, x): not the same vector.
	p := &Program{Rules: []*Rule{
		NewRule("", NewDeltaAtom("R", V("x"), V("y")), []Atom{NewAtom("R", V("y"), V("x"))}),
	}}
	if err := p.Validate(nil); err == nil || !strings.Contains(err.Error(), "Def. 3.1") {
		t.Fatalf("want self-atom error, got %v", err)
	}
	// A delta atom with the same terms does not count as self.
	p2 := &Program{Rules: []*Rule{
		NewRule("", NewDeltaAtom("R", V("x")), []Atom{NewDeltaAtom("R", V("x"))}),
	}}
	if err := p2.Validate(nil); err == nil {
		t.Fatal("delta-only body should be rejected")
	}
}

func TestValidateRejectsEmptyBody(t *testing.T) {
	p := &Program{Rules: []*Rule{NewRule("", NewDeltaAtom("R", V("x")), nil)}}
	if err := p.Validate(nil); err == nil {
		t.Fatal("empty body should be rejected")
	}
}

func TestValidateRejectsUnboundComparisonVar(t *testing.T) {
	p := &Program{Rules: []*Rule{
		NewRule("", NewDeltaAtom("R", V("x")), []Atom{NewAtom("R", V("x"))},
			Comparison{Left: V("z"), Op: OpLT, Right: CInt(5)}),
	}}
	if err := p.Validate(nil); err == nil || !strings.Contains(err.Error(), "not bound") {
		t.Fatalf("want unbound-variable error, got %v", err)
	}
}

func TestValidateSchemaChecks(t *testing.T) {
	s := exampleSchema()
	// Unknown relation in body.
	p := MustParse("Delta_Grant(g, n) :- Grant(g, n), Mystery(g).")
	if err := p.Validate(s); err == nil || !strings.Contains(err.Error(), "unknown relation") {
		t.Fatalf("want unknown-relation error, got %v", err)
	}
	// Arity mismatch in head.
	p2 := MustParse("Delta_Grant(g) :- Grant(g).")
	if err := p2.Validate(s); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("want arity error, got %v", err)
	}
}

func TestValidateConstantHead(t *testing.T) {
	// Initialization rules ∆_i(C) :- R_i(C) are legal (§3.6).
	p := MustParse("Delta_Grant(2, 'ERC') :- Grant(2, 'ERC').")
	if err := p.Validate(exampleSchema()); err != nil {
		t.Fatal(err)
	}
	if p.Rules[0].SelfIdx != 0 {
		t.Fatalf("SelfIdx = %d", p.Rules[0].SelfIdx)
	}
	// Constant kinds must match: Grant(2) vs Grant('2') are different.
	q := &Program{Rules: []*Rule{
		NewRule("", NewDeltaAtom("R", CInt(2)), []Atom{NewAtom("R", CStr("2"))}),
	}}
	if err := q.Validate(nil); err == nil {
		t.Fatal("constant kind mismatch should not match the self atom")
	}
}

func TestRecursionDetection(t *testing.T) {
	// ∆R depends on ∆S and vice versa: cyclic.
	src := `
Delta_R(x) :- R(x), Delta_S(x).
Delta_S(x) :- S(x), Delta_R(x).
`
	p := MustParse(src)
	if err := p.Validate(nil); err != nil {
		t.Fatal(err)
	}
	if !p.Recursive {
		t.Fatal("mutually recursive program should be flagged")
	}
	if p.Strata() != nil {
		t.Fatal("recursive program has no stratification")
	}

	// Self-loop: ∆R depends on ∆R.
	p2 := MustParse("Delta_R(x) :- R(x), Delta_R(y), x != y.")
	if err := p2.Validate(nil); err != nil {
		t.Fatal(err)
	}
	if !p2.Recursive {
		t.Fatal("self-recursive program should be flagged")
	}
}

func TestStrata(t *testing.T) {
	p := MustParse(runningExampleSrc)
	if err := p.Validate(exampleSchema()); err != nil {
		t.Fatal(err)
	}
	strata := p.Strata()
	// Grant at depth 0; Author at 1; Pub, Writes at 2; Cite at 3.
	if len(strata) != 4 {
		t.Fatalf("strata = %v", strata)
	}
	if strata[0][0] != "Grant" || strata[1][0] != "Author" || strata[3][0] != "Cite" {
		t.Fatalf("strata = %v", strata)
	}
	if len(strata[2]) != 2 {
		t.Fatalf("stratum 2 = %v, want Pub and Writes", strata[2])
	}
}

func TestRuleNameHelper(t *testing.T) {
	labeled := NewRule("7", NewDeltaAtom("R", V("x")), []Atom{NewAtom("R", V("x"))})
	if ruleName(labeled) != "(7)" {
		t.Fatalf("ruleName = %q", ruleName(labeled))
	}
	unlabeled := NewRule("", NewDeltaAtom("R", V("x")), []Atom{NewAtom("R", V("x"))})
	if ruleName(unlabeled) != "Delta_R(x)" {
		t.Fatalf("ruleName = %q", ruleName(unlabeled))
	}
}
