package datalog

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token types of the rule language.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokImplies // ":-"
	tokDot
	tokOp // = != <> < <= > >=
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokImplies:
		return "':-'"
	case tokDot:
		return "'.'"
	case tokOp:
		return "operator"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

// token is one lexical token with its source position (1-based line).
type token struct {
	kind tokenKind
	text string
	line int
}

// lexer tokenizes delta-rule source text. Comments run from '#', '%', or
// "//" to end of line. The delta prefix handling happens in the parser; the
// lexer treats "Delta_Grant" as a single identifier and the Unicode deltas
// ('∆', 'Δ') as identifier-leading characters.
type lexer struct {
	src  []rune
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1}
}

func isDeltaRune(r rune) bool { return r == 'Δ' || r == '∆' }

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || isDeltaRune(r)
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) at(off int) rune {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '#' || r == '%':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.at(1) == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// next returns the next token or an error for unlexable input.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	line := l.line
	r := l.peek()
	switch {
	case r == '(':
		l.advance()
		return token{tokLParen, "(", line}, nil
	case r == ')':
		l.advance()
		return token{tokRParen, ")", line}, nil
	case r == ',':
		l.advance()
		return token{tokComma, ",", line}, nil
	case r == '.':
		// Distinguish the rule terminator from a leading decimal point of
		// a number like ".5" (we require a leading digit, so '.' is always
		// the terminator).
		l.advance()
		return token{tokDot, ".", line}, nil
	case r == ':':
		l.advance()
		if l.peek() != '-' {
			return token{}, fmt.Errorf("line %d: expected ':-' after ':'", line)
		}
		l.advance()
		return token{tokImplies, ":-", line}, nil
	case r == '=':
		l.advance()
		return token{tokOp, "=", line}, nil
	case r == '!':
		l.advance()
		if l.peek() != '=' {
			return token{}, fmt.Errorf("line %d: expected '=' after '!'", line)
		}
		l.advance()
		return token{tokOp, "!=", line}, nil
	case r == '≠':
		l.advance()
		return token{tokOp, "!=", line}, nil
	case r == '<':
		l.advance()
		switch l.peek() {
		case '=':
			l.advance()
			return token{tokOp, "<=", line}, nil
		case '>':
			l.advance()
			return token{tokOp, "!=", line}, nil
		default:
			return token{tokOp, "<", line}, nil
		}
	case r == '≤':
		l.advance()
		return token{tokOp, "<=", line}, nil
	case r == '>':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return token{tokOp, ">=", line}, nil
		}
		return token{tokOp, ">", line}, nil
	case r == '≥':
		l.advance()
		return token{tokOp, ">=", line}, nil
	case r == '\'' || r == '"':
		quote := r
		l.advance()
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, fmt.Errorf("line %d: unterminated string", line)
			}
			c := l.advance()
			if c == quote {
				break
			}
			if c == '\\' && l.pos < len(l.src) {
				c = l.advance()
			}
			b.WriteRune(c)
		}
		return token{tokString, b.String(), line}, nil
	case unicode.IsDigit(r) || (r == '-' && unicode.IsDigit(l.at(1))):
		var b strings.Builder
		if r == '-' {
			b.WriteRune(l.advance())
		}
		for l.pos < len(l.src) && (unicode.IsDigit(l.peek()) || l.peek() == '.') {
			// Stop at '.' if not followed by a digit: it is the terminator.
			if l.peek() == '.' && !unicode.IsDigit(l.at(1)) {
				break
			}
			b.WriteRune(l.advance())
		}
		return token{tokNumber, b.String(), line}, nil
	case isIdentStart(r):
		var b strings.Builder
		b.WriteRune(l.advance())
		for l.pos < len(l.src) && isIdentRune(l.peek()) {
			b.WriteRune(l.advance())
		}
		return token{tokIdent, b.String(), line}, nil
	default:
		return token{}, fmt.Errorf("line %d: unexpected character %q", line, r)
	}
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
