package datalog

import (
	"fmt"
	"sync"

	"repro/internal/engine"
)

// Validate checks the program against Def. 3.1 and the usual datalog safety
// conditions, records each rule's SelfIdx, and detects recursion in the
// delta-dependency graph. When schema is non-nil, relation names and arities
// are checked against it.
//
// The conditions per rule are:
//   - the head is a ∆-atom;
//   - the body contains a non-∆ atom R_i(X) with exactly the head's term
//     vector (so rules only delete existing facts);
//   - every variable used in a comparison appears in some body atom
//     (safety: comparisons alone cannot bind variables).
func (p *Program) Validate(schema *engine.Schema) error {
	for i, r := range p.Rules {
		if err := r.validate(schema); err != nil {
			return fmt.Errorf("rule %d (%s): %w", i, ruleName(r), err)
		}
	}
	p.Recursive = p.detectRecursion()
	return nil
}

func ruleName(r *Rule) string {
	if r.Label != "" {
		return "(" + r.Label + ")"
	}
	return r.Head.String()
}

func (r *Rule) validate(schema *engine.Schema) error {
	if !r.Head.Delta {
		return fmt.Errorf("head %s must be a delta atom", r.Head)
	}
	if len(r.Body) == 0 {
		return fmt.Errorf("body must be non-empty")
	}
	// Def 3.1: find the self atom R_i(X).
	r.SelfIdx = -1
	for i, a := range r.Body {
		if !a.Delta && a.Rel == r.Head.Rel && a.SameTerms(r.Head) {
			r.SelfIdx = i
			break
		}
	}
	if r.SelfIdx < 0 {
		return fmt.Errorf("body must contain the base atom %s matching the head (Def. 3.1)",
			Atom{Rel: r.Head.Rel, Terms: r.Head.Terms})
	}
	// Schema checks.
	if schema != nil {
		check := func(a Atom) error {
			rs := schema.Relation(a.Rel)
			if rs == nil {
				return fmt.Errorf("atom %s: unknown relation %q", a, a.Rel)
			}
			if len(a.Terms) != rs.Arity() {
				return fmt.Errorf("atom %s: arity %d, schema says %d", a, len(a.Terms), rs.Arity())
			}
			return nil
		}
		if err := check(r.Head); err != nil {
			return err
		}
		for _, a := range r.Body {
			if err := check(a); err != nil {
				return err
			}
		}
	}
	// Safety: comparison variables must be bound by body atoms.
	bound := make(map[string]bool)
	for _, a := range r.Body {
		for _, t := range a.Terms {
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
	}
	for _, c := range r.Comps {
		for _, t := range []Term{c.Left, c.Right} {
			if t.IsVar() && !bound[t.Var] {
				return fmt.Errorf("comparison %s: variable %s not bound by any body atom", c, t.Var)
			}
		}
	}
	// Invalidate any cached plan built before validation.
	r.compiled = nil
	r.compileOnce = sync.Once{}
	return nil
}

// detectRecursion builds the delta-dependency graph (edge ∆_b → ∆_h when a
// rule with head ∆_h has ∆_b in its body) and reports whether it is cyclic.
func (p *Program) detectRecursion() bool {
	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	for _, r := range p.Rules {
		nodes[r.Head.Rel] = true
		for _, a := range r.Body {
			if a.Delta {
				nodes[a.Rel] = true
				adj[a.Rel] = append(adj[a.Rel], r.Head.Rel)
			}
		}
	}
	// Kahn's algorithm: if we cannot consume every node, there is a cycle.
	indeg := make(map[string]int, len(nodes))
	for n := range nodes {
		indeg[n] = 0
	}
	for _, outs := range adj {
		for _, h := range outs {
			indeg[h]++
		}
	}
	var queue []string
	for n, d := range indeg {
		if d == 0 {
			queue = append(queue, n)
		}
	}
	consumed := 0
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		consumed++
		for _, h := range adj[n] {
			indeg[h]--
			if indeg[h] == 0 {
				queue = append(queue, h)
			}
		}
	}
	return consumed < len(nodes)
}

// Strata returns the delta relations grouped by dependency depth: stratum 0
// holds delta relations derivable without reading any delta atom, stratum
// k+1 those depending on stratum-k deltas. Returns nil for recursive
// programs (no finite stratification).
func (p *Program) Strata() [][]string {
	if p.detectRecursion() {
		return nil
	}
	depth := make(map[string]int)
	// Iterate to fixpoint; the graph is acyclic so this terminates.
	changed := true
	for changed {
		changed = false
		for _, r := range p.Rules {
			d := 0
			for _, a := range r.Body {
				if a.Delta {
					if bd := depth[a.Rel] + 1; bd > d {
						d = bd
					}
				}
			}
			if d > depth[r.Head.Rel] {
				depth[r.Head.Rel] = d
				changed = true
			}
		}
	}
	maxD := 0
	for _, rel := range p.DeltaRelations() {
		if depth[rel] > maxD {
			maxD = depth[rel]
		}
	}
	out := make([][]string, maxD+1)
	for _, rel := range p.DeltaRelations() {
		out[depth[rel]] = append(out[depth[rel]], rel)
	}
	return out
}
