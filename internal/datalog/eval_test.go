package datalog

import (
	"testing"

	"repro/internal/engine"
)

// exampleDB builds the database instance D of Figure 1.
func exampleDB() *engine.Database {
	db := engine.NewDatabase(exampleSchema())
	db.MustInsert("Grant", engine.Int(1), engine.Str("NSF"))
	db.MustInsert("Grant", engine.Int(2), engine.Str("ERC"))
	db.MustInsert("AuthGrant", engine.Int(2), engine.Int(1))
	db.MustInsert("AuthGrant", engine.Int(4), engine.Int(2))
	db.MustInsert("AuthGrant", engine.Int(5), engine.Int(2))
	db.MustInsert("Author", engine.Int(2), engine.Str("Maggie"))
	db.MustInsert("Author", engine.Int(4), engine.Str("Marge"))
	db.MustInsert("Author", engine.Int(5), engine.Str("Homer"))
	db.MustInsert("Cite", engine.Int(7), engine.Int(6))
	db.MustInsert("Writes", engine.Int(4), engine.Int(6))
	db.MustInsert("Writes", engine.Int(5), engine.Int(7))
	db.MustInsert("Pub", engine.Int(6), engine.Str("x"))
	db.MustInsert("Pub", engine.Int(7), engine.Str("y"))
	return db
}

func validatedExample(t *testing.T) *Program {
	t.Helper()
	p := MustParse(runningExampleSrc)
	if err := p.Validate(exampleSchema()); err != nil {
		t.Fatal(err)
	}
	return p
}

func collect(t *testing.T, db *engine.Database, r *Rule) []*Assignment {
	t.Helper()
	var out []*Assignment
	if err := EvalRuleOnDB(db, r, func(a *Assignment) bool {
		out = append(out, a)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestEvalRuleWithConstantSelection(t *testing.T) {
	db := exampleDB()
	p := validatedExample(t)
	// Rule (0): ∆Grant(g, n) :- Grant(g, n), n = 'ERC' has exactly one
	// assignment, binding the g2 tuple.
	asns := collect(t, db, p.Rules[0])
	if len(asns) != 1 {
		t.Fatalf("rule 0 assignments = %d, want 1", len(asns))
	}
	if asns[0].Head().ID != "g2" {
		t.Fatalf("rule 0 head = %v, want g2", asns[0].Head())
	}
}

func TestEvalRuleJoinsThroughDelta(t *testing.T) {
	db := exampleDB()
	p := validatedExample(t)
	// Before any deletion, rule (1) has no assignment: ∆Grant is empty.
	asns := collect(t, db, p.Rules[1])
	if len(asns) != 0 {
		t.Fatalf("rule 1 should have no assignments before deletion, got %d", len(asns))
	}
	// Delete g2: now rule (1) matches Marge (a2/ag2) and Homer (a3/ag3),
	// exactly the two assignments α1, α2 of Example 2.1.
	db.DeleteToDelta(engine.ContentKey("Grant", []engine.Value{engine.Int(2), engine.Str("ERC")}))
	asns = collect(t, db, p.Rules[1])
	if len(asns) != 2 {
		t.Fatalf("rule 1 assignments = %d, want 2", len(asns))
	}
	heads := map[string]bool{}
	for _, a := range asns {
		heads[a.Head().ID] = true
	}
	if !heads["a2"] || !heads["a3"] {
		t.Fatalf("rule 1 heads = %v, want a2 and a3", heads)
	}
}

func TestEvalRuleDeltaFromBaseMode(t *testing.T) {
	db := exampleDB()
	p := validatedExample(t)
	// In DeltaFromBase mode (Algorithm 1 provenance), rule (1) ranges its
	// ∆Grant atom over the Grant base relation: both grants join, giving
	// 3 assignments (Maggie-NSF, Marge-ERC, Homer-ERC).
	var n int
	err := EvalRule(p.Rules[1], SourcesFor(db, p.Rules[1], DeltaFromBase), func(*Assignment) bool {
		n++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("DeltaFromBase assignments = %d, want 3", n)
	}
}

func TestEvalEarlyStop(t *testing.T) {
	db := exampleDB()
	p := validatedExample(t)
	db.DeleteToDelta(engine.ContentKey("Grant", []engine.Value{engine.Int(2), engine.Str("ERC")}))
	n := 0
	if err := EvalRuleOnDB(db, p.Rules[1], func(*Assignment) bool {
		n++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("early stop visited %d assignments, want 1", n)
	}
	ok, err := HasAssignment(db, p.Rules[1])
	if err != nil || !ok {
		t.Fatalf("HasAssignment = %v, %v", ok, err)
	}
	ok, err = HasAssignment(db, p.Rules[4])
	if err != nil || ok {
		t.Fatalf("rule 4 should have no assignment yet, got %v, %v", ok, err)
	}
}

func TestEvalRepeatedVariables(t *testing.T) {
	s := engine.NewSchema()
	s.MustAddRelation("E", "e", "src", "dst")
	db := engine.NewDatabase(s)
	db.MustInsert("E", engine.Int(1), engine.Int(1)) // self-loop
	db.MustInsert("E", engine.Int(1), engine.Int(2))
	db.MustInsert("E", engine.Int(2), engine.Int(2)) // self-loop
	p, err := ParseAndValidate("Delta_E(x, x) :- E(x, x).", s)
	if err != nil {
		t.Fatal(err)
	}
	asns := collect(t, db, p.Rules[0])
	if len(asns) != 2 {
		t.Fatalf("self-loop assignments = %d, want 2", len(asns))
	}
}

func TestEvalComparisonsAllOps(t *testing.T) {
	s := engine.NewSchema()
	s.MustAddRelation("N", "n", "v")
	db := engine.NewDatabase(s)
	for i := 1; i <= 10; i++ {
		db.MustInsert("N", engine.Int(i))
	}
	cases := []struct {
		src  string
		want int
	}{
		{"Delta_N(x) :- N(x), x < 4.", 3},
		{"Delta_N(x) :- N(x), x <= 4.", 4},
		{"Delta_N(x) :- N(x), x > 8.", 2},
		{"Delta_N(x) :- N(x), x >= 8.", 3},
		{"Delta_N(x) :- N(x), x = 5.", 1},
		{"Delta_N(x) :- N(x), x != 5.", 9},
		{"Delta_N(x) :- N(x), N(y), x < y.", 45},
	}
	for _, c := range cases {
		p, err := ParseAndValidate(c.src, s)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		got := len(collect(t, db, p.Rules[0]))
		if got != c.want {
			t.Errorf("%s: assignments = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestEvalConstantOnlyComparison(t *testing.T) {
	s := engine.NewSchema()
	s.MustAddRelation("N", "n", "v")
	db := engine.NewDatabase(s)
	db.MustInsert("N", engine.Int(1))
	// A false constant comparison gates the whole rule.
	p := &Program{Rules: []*Rule{
		NewRule("", NewDeltaAtom("N", V("x")), []Atom{NewAtom("N", V("x"))},
			Comparison{Left: CInt(1), Op: OpEQ, Right: CInt(2)}),
	}}
	if err := p.Validate(s); err != nil {
		t.Fatal(err)
	}
	if got := len(collect(t, db, p.Rules[0])); got != 0 {
		t.Fatalf("false constant gate: %d assignments, want 0", got)
	}
	// A true constant comparison is a no-op.
	p2 := &Program{Rules: []*Rule{
		NewRule("", NewDeltaAtom("N", V("x")), []Atom{NewAtom("N", V("x"))},
			Comparison{Left: CInt(1), Op: OpEQ, Right: CInt(1)}),
	}}
	if err := p2.Validate(s); err != nil {
		t.Fatal(err)
	}
	if got := len(collect(t, db, p2.Rules[0])); got != 1 {
		t.Fatalf("true constant gate: %d assignments, want 1", got)
	}
}

func TestEvalUnvalidatedRuleErrors(t *testing.T) {
	p := MustParse("Delta_R(x) :- R(x).")
	err := EvalRule(p.Rules[0], []AtomSource{nil}, func(*Assignment) bool { return true })
	if err == nil {
		t.Fatal("evaluating an unvalidated rule should error")
	}
}

func TestEvalSourceCountMismatch(t *testing.T) {
	s := engine.NewSchema()
	s.MustAddRelation("R", "r", "a")
	p, err := ParseAndValidate("Delta_R(x) :- R(x), R(y).", s)
	if err != nil {
		t.Fatal(err)
	}
	if err := EvalRule(p.Rules[0], []AtomSource{nil}, func(*Assignment) bool { return true }); err == nil {
		t.Fatal("source count mismatch should error")
	}
}

func TestEvalUnionSources(t *testing.T) {
	s := engine.NewSchema()
	s.MustAddRelation("R", "r", "a")
	db := engine.NewDatabase(s)
	p, err := ParseAndValidate("Delta_R(x) :- R(x), Delta_R(y), x != y.", s)
	if err != nil {
		t.Fatal(err)
	}
	// Two halves of a split delta relation must behave as their union.
	old := engine.NewRelation("R", 1)
	fresh := engine.NewRelation("R", 1)
	t1 := db.MustInsert("R", engine.Int(1))
	t2 := db.MustInsert("R", engine.Int(2))
	t3 := db.MustInsert("R", engine.Int(3))
	_ = t1
	old.Insert(t2)
	fresh.Insert(t3)

	sources := []AtomSource{
		{db.Relation("R")},
		{old, fresh},
	}
	var n int
	if err := EvalRule(p.Rules[0], sources, func(a *Assignment) bool {
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	// R has 3 tuples, delta union {2,3}; pairs with x != y: (1,2),(1,3),
	// (2,3),(3,2) = 4... wait: x ranges over R={1,2,3}, y over {2,3}:
	// (1,2),(1,3),(2,3),(3,2) -> 4.
	if n != 4 {
		t.Fatalf("union-source assignments = %d, want 4", n)
	}
}

func TestAssignmentString(t *testing.T) {
	db := exampleDB()
	p := validatedExample(t)
	asns := collect(t, db, p.Rules[0])
	if len(asns) != 1 {
		t.Fatal("want one assignment")
	}
	s := asns[0].String()
	if s == "" || s[0] != '(' {
		t.Fatalf("Assignment.String = %q", s)
	}
}

func TestEvalNilSourceRelation(t *testing.T) {
	s := engine.NewSchema()
	s.MustAddRelation("R", "r", "a")
	p, err := ParseAndValidate("Delta_R(x) :- R(x).", s)
	if err != nil {
		t.Fatal(err)
	}
	// nil relation inside a source is skipped, not a crash.
	var n int
	if err := EvalRule(p.Rules[0], []AtomSource{{nil}}, func(*Assignment) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("nil source produced %d assignments", n)
	}
}
