package datalog

import (
	"sort"

	"repro/internal/engine"
)

// Co-partitioning analysis: the static pass behind sharded parallel
// evaluation. The seminaive fixpoint is embarrassingly parallel when the
// data can be hash-partitioned so that every assignment of every rule binds
// tuples of a single partition: each shard then runs the entire fixpoint
// locally, with no cross-shard coordination and a single deterministic
// merge at the end. Whether such a partitioning exists is a property of the
// program alone, so Prepare computes it once and bakes the verdict into the
// plan shapes.
//
// The analysis works over (relation, column) pairs. Relations that appear
// in some rule head are *derived*: their contents (base and delta side)
// must be split across shards, so each needs a partition key column κ(R).
// Relations never derived are *replicated*: a copy-on-write fork shares
// their frozen cores with every shard for free, so they impose no
// constraint. A rule is then shard-local under κ iff the value at the head
// relation's key column determines the value at κ(Q) for every derived
// relation Q its body touches — syntactically, the head term at κ(head)
// and the body term at κ(Q) are the same variable (or equal constants).
// The self atom (Def. 3.1) guarantees the head's terms all appear in the
// body, so the partition value is always bound.
//
// Finding κ has two stages. First a greatest-fixpoint pruning shrinks each
// derived relation's candidate-column set: column c of R survives iff, in
// every rule deriving R, every derived body atom has *some* candidate
// column co-keyed with the head term at c — propagating partition-key
// candidates through heads exactly as recursion demands (a candidate dies
// when any deriving rule cannot co-locate it, and its death cascades to
// candidates that depended on it). A relation whose candidate set empties
// is *non-partitionable*. Then a deterministic backtracking search picks
// one globally consistent assignment from the surviving candidates
// (relations in name order, columns ascending); rules whose relations all
// carry keys and whose key terms line up are ShardLocal, everything else is
// Shard0.

// ShardMode classifies how one rule behaves under sharded evaluation.
type ShardMode int

const (
	// ShardLocal: under the program's partition-key assignment, every
	// assignment of the rule binds tuples of a single hash shard, so the
	// rule can run on every shard against its local partition.
	ShardLocal ShardMode = iota
	// Shard0: the rule joins derived relations on non-key columns (or
	// touches a non-partitionable relation), so its assignments may span
	// shards. Plans containing such rules run sequentially — the sharded
	// executor declines to shard them.
	Shard0
)

// String returns the mode name.
func (m ShardMode) String() string {
	if m == ShardLocal {
		return "shard-local"
	}
	return "shard0"
}

// Partitioning is the co-partitioning verdict for one program.
type Partitioning struct {
	// Keys maps each partitionable derived relation to its partition key
	// column: hash-splitting the relation (base and delta cores) on that
	// column keeps every ShardLocal rule's assignments within one shard.
	Keys map[string]int
	// Replicated lists the referenced relations that are never derived,
	// sorted. They are broadcast whole to every shard (zero-copy: shards
	// are copy-on-write forks sharing the frozen cores).
	Replicated []string
	// NonPartitionable lists the derived relations with no viable key
	// column, sorted. Rules touching them cannot run shard-local.
	NonPartitionable []string
	// Shardable reports that every rule is ShardLocal: the whole fixpoint
	// can run shard-local and merge once at the end.
	Shardable bool
}

// copartitionSearchBudget bounds the backtracking key search. Real
// programs have a handful of derived relations with one or two surviving
// candidates each; the budget only exists so a pathological generated
// program degrades to the (sound) Shard0 fallback instead of stalling
// Prepare.
const copartitionSearchBudget = 4096

// coKeyed reports whether two terms are statically known to carry equal
// values in every assignment: the same variable, or equal constants.
func coKeyed(a, b Term) bool {
	if a.IsVar() || b.IsVar() {
		return a.IsVar() && b.IsVar() && a.Var == b.Var
	}
	return a.Const.Equal(b.Const)
}

// analyzePartitioning classifies the program's relations and rules for
// sharded evaluation. The returned modes slice parallels p.Rules.
func analyzePartitioning(p *Program, schema *engine.Schema) (*Partitioning, []ShardMode) {
	derived := make(map[string]bool)
	for _, r := range p.Rules {
		derived[r.Head.Rel] = true
	}

	// Candidate key columns per derived relation, shrunk to the greatest
	// fixpoint of: column c of R survives iff every rule deriving R can
	// co-locate it — each derived body atom has some surviving candidate
	// column co-keyed with the head term at c.
	viable := make(map[string]map[int]bool, len(derived))
	for rel := range derived {
		rs := schema.Relation(rel)
		cols := make(map[int]bool)
		if rs != nil {
			for c := 0; c < rs.Arity(); c++ {
				cols[c] = true
			}
		}
		viable[rel] = cols
	}
	supported := func(ht Term, a Atom) bool {
		for c := range viable[a.Rel] {
			if coKeyed(ht, a.Terms[c]) {
				return true
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for _, r := range p.Rules {
			hv := viable[r.Head.Rel]
			for c := range hv {
				ok := true
				for _, a := range r.Body {
					if !derived[a.Rel] {
						continue
					}
					if !supported(r.Head.Terms[c], a) {
						ok = false
						break
					}
				}
				if !ok {
					delete(hv, c)
					changed = true
				}
			}
		}
	}

	part := &Partitioning{Keys: make(map[string]int)}
	referenced := make(map[string]bool)
	for _, r := range p.Rules {
		referenced[r.Head.Rel] = true
		for _, a := range r.Body {
			referenced[a.Rel] = true
		}
	}
	for rel := range referenced {
		if !derived[rel] {
			part.Replicated = append(part.Replicated, rel)
		}
	}
	sort.Strings(part.Replicated)
	keyed := make([]string, 0, len(derived)) // partitionable derived rels, name order
	for rel := range derived {
		if len(viable[rel]) == 0 {
			part.NonPartitionable = append(part.NonPartitionable, rel)
		} else {
			keyed = append(keyed, rel)
		}
	}
	sort.Strings(part.NonPartitionable)
	sort.Strings(keyed)

	// A rule is eligible for a shard-local plan only if every derived
	// relation it touches still has candidates; ineligible rules are Shard0
	// regardless of κ and must not constrain the key search.
	eligible := make([]bool, len(p.Rules))
	for i, r := range p.Rules {
		ok := len(viable[r.Head.Rel]) > 0
		for _, a := range r.Body {
			if derived[a.Rel] && len(viable[a.Rel]) == 0 {
				ok = false
			}
		}
		eligible[i] = ok
	}

	// ruleLocalUnder reports whether rule r's key terms line up under the
	// partial assignment: the head term at κ(head) must be co-keyed with
	// the term at κ(Q) of every derived body atom whose key is assigned.
	// With a full assignment this is exactly the shard-local condition.
	ruleLocalUnder := func(r *Rule, assign map[string]int) bool {
		hk, ok := assign[r.Head.Rel]
		if !ok {
			return true // head key unassigned: nothing to check yet
		}
		ht := r.Head.Terms[hk]
		for _, a := range r.Body {
			if !derived[a.Rel] {
				continue
			}
			bk, ok := assign[a.Rel]
			if !ok {
				continue
			}
			if !coKeyed(ht, a.Terms[bk]) {
				return false
			}
		}
		return true
	}
	consistent := func(assign map[string]int) bool {
		for i, r := range p.Rules {
			if eligible[i] && !ruleLocalUnder(r, assign) {
				return false
			}
		}
		return true
	}

	// Deterministic backtracking over the surviving candidates: relations
	// in name order, columns ascending, pruning on the rules constraining
	// already-assigned relations.
	assign := make(map[string]int, len(keyed))
	nodes := 0
	var solve func(i int) bool
	solve = func(i int) bool {
		if i == len(keyed) {
			return true
		}
		rel := keyed[i]
		cols := make([]int, 0, len(viable[rel]))
		for c := range viable[rel] {
			cols = append(cols, c)
		}
		sort.Ints(cols)
		for _, c := range cols {
			nodes++
			if nodes > copartitionSearchBudget {
				return false
			}
			assign[rel] = c
			if consistent(assign) && solve(i+1) {
				return true
			}
		}
		delete(assign, rel)
		return false
	}
	solved := solve(0)
	if !solved {
		// No globally consistent key survives (or the search budget ran
		// out): fall back to the lowest candidate per relation so the
		// verdict still names a key per partitionable relation, and let the
		// per-rule check below demote the rules that conflict.
		for _, rel := range keyed {
			best := -1
			for c := range viable[rel] {
				if best < 0 || c < best {
					best = c
				}
			}
			assign[rel] = best
		}
	}
	for rel, c := range assign {
		part.Keys[rel] = c
	}

	modes := make([]ShardMode, len(p.Rules))
	part.Shardable = true
	for i, r := range p.Rules {
		if eligible[i] && ruleLocalUnder(r, part.Keys) {
			modes[i] = ShardLocal
		} else {
			modes[i] = Shard0
			part.Shardable = false
		}
	}
	return part, modes
}
