package datalog

import (
	"sort"
	"testing"

	"repro/internal/engine"
)

func preparedExample(t *testing.T) (*engine.Database, *Program, *Prepared) {
	t.Helper()
	db := exampleDB()
	p := validatedExample(t)
	pp, err := Prepare(p, exampleSchema())
	if err != nil {
		t.Fatal(err)
	}
	return db, p, pp
}

// assignmentKeys renders an assignment set order-independently for
// comparison between evaluation paths.
func assignmentKeys(asns []*Assignment) []string {
	out := make([]string, len(asns))
	for i, a := range asns {
		out[i] = a.String()
	}
	sort.Strings(out)
	return out
}

// TestPreparedOperationalMatchesEvalRule: the prepared operational plan
// enumerates exactly the assignments the per-call planner finds, for every
// rule, both on the clean database and mid-repair (non-empty deltas).
func TestPreparedOperationalMatchesEvalRule(t *testing.T) {
	db, p, pp := preparedExample(t)
	// Seed a delta so operational evaluation has something to join.
	db.DeleteToDelta(db.Relation("Grant").Keys()[1])

	ctx := pp.AcquireContext()
	defer pp.ReleaseContext(ctx)
	for i, r := range p.Rules {
		var legacy []*Assignment
		if err := EvalRuleOnDB(db, r, func(a *Assignment) bool {
			legacy = append(legacy, a)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		var prepared []*Assignment
		if err := pp.Rules[i].EvalOperational(db, ctx, func(a *Assignment) bool {
			prepared = append(prepared, a)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		lk, pk := assignmentKeys(legacy), assignmentKeys(prepared)
		if len(lk) != len(pk) {
			t.Fatalf("rule %d: prepared %d assignments, legacy %d", i, len(pk), len(lk))
		}
		for j := range lk {
			if lk[j] != pk[j] {
				t.Fatalf("rule %d: assignment sets differ: %v vs %v", i, pk, lk)
			}
		}
	}
}

// TestPreparedFromBaseMatchesEvalRule: the FromBase plan matches the
// DeltaFromBase per-call path (the Algorithm 1 / view-witness shape).
func TestPreparedFromBaseMatchesEvalRule(t *testing.T) {
	db, p, pp := preparedExample(t)
	ctx := pp.AcquireContext()
	defer pp.ReleaseContext(ctx)
	for i, r := range p.Rules {
		var legacy, prepared []*Assignment
		if err := EvalRule(r, SourcesFor(db, r, DeltaFromBase), func(a *Assignment) bool {
			legacy = append(legacy, a)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if err := pp.Rules[i].EvalFromBase(db, false, ctx, func(a *Assignment) bool {
			prepared = append(prepared, a)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		lk, pk := assignmentKeys(legacy), assignmentKeys(prepared)
		if len(lk) != len(pk) {
			t.Fatalf("rule %d: prepared %d assignments, legacy %d", i, len(pk), len(lk))
		}
		for j := range lk {
			if lk[j] != pk[j] {
				t.Fatalf("rule %d: assignment sets differ: %v vs %v", i, pk, lk)
			}
		}
	}
}

// TestPrepareRejectsUnvalidated: preparation requires validated rules and
// a schema, never guessing at semantics.
func TestPrepareRejectsUnvalidated(t *testing.T) {
	p := MustParse(runningExampleSrc) // parsed but not validated
	if _, err := Prepare(p, exampleSchema()); err == nil {
		t.Fatal("Prepare accepted an unvalidated program")
	}
	vp := MustParse(runningExampleSrc)
	if err := vp.Validate(exampleSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := Prepare(vp, nil); err == nil {
		t.Fatal("Prepare accepted a nil schema")
	}
	if _, err := Prepare(nil, exampleSchema()); err == nil {
		t.Fatal("Prepare accepted a nil program")
	}
}

// TestPreparedIndexReqs: every declared requirement names a schema
// relation and an in-range column, and warming builds exactly the base and
// delta targets.
func TestPreparedIndexReqs(t *testing.T) {
	db, _, pp := preparedExample(t)
	reqs := pp.IndexReqs()
	if len(reqs) == 0 {
		t.Fatal("no index requirements declared for a multi-join program")
	}
	seen := make(map[IndexReq]bool)
	for _, rq := range reqs {
		if seen[rq] {
			t.Fatalf("duplicate requirement %+v", rq)
		}
		seen[rq] = true
		rs := pp.Schema.Relation(rq.Rel)
		if rs == nil {
			t.Fatalf("requirement %+v names unknown relation", rq)
		}
		if rq.Col < 0 || rq.Col >= rs.Arity() {
			t.Fatalf("requirement %+v column out of range", rq)
		}
	}
	pp.WarmIndexes(db)
	for _, rq := range reqs {
		switch rq.Target {
		case TargetBase:
			if cols := db.Relation(rq.Rel).IndexedColumns(); !containsInt(cols, rq.Col) {
				t.Fatalf("base index %s.%d not built by WarmIndexes", rq.Rel, rq.Col)
			}
		case TargetDelta:
			if cols := db.Delta(rq.Rel).IndexedColumns(); !containsInt(cols, rq.Col) {
				t.Fatalf("delta index %s.%d not built by WarmIndexes", rq.Rel, rq.Col)
			}
		}
	}
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// TestPreparedReadSet: the program-level and per-rule read-sets name
// exactly the relations rule bodies reference, so relations outside the
// read-set are provably irrelevant to every repair.
func TestPreparedReadSet(t *testing.T) {
	schema, err := engine.ParseSchema("A(x)\nB(x)\nC(x)\nAudit(x, y)")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ParseAndValidate(`
		Delta_A(x) :- A(x), B(x).
		Delta_B(x) :- B(x), Delta_A(x).
	`, schema)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := Prepare(prog, schema)
	if err != nil {
		t.Fatal(err)
	}
	if got := pp.ReadSet(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("program read-set %v, want [A B]", got)
	}
	if !pp.Reads("A") || !pp.Reads("B") || pp.Reads("C") || pp.Reads("Audit") {
		t.Fatal("Reads misclassifies relations")
	}
	if pp.ReadsAnyOf([]string{"C", "Audit"}) {
		t.Fatal("ReadsAnyOf claims the program reads untouched relations")
	}
	if !pp.ReadsAnyOf([]string{"Audit", "B"}) {
		t.Fatal("ReadsAnyOf misses a read relation")
	}
	r0 := pp.Rules[0]
	if !r0.Reads("A") || !r0.Reads("B") || r0.Reads("C") {
		t.Fatalf("rule 0 read-set %v", r0.ReadSet())
	}
	if !r0.ReadsAny(func(rel string) bool { return rel == "B" }) {
		t.Fatal("rule 0 ReadsAny misses B")
	}
	// Rule 1's delta atom still contributes A to its read-set: delta
	// contents are derived from A's base content.
	if r1 := pp.Rules[1]; !r1.Reads("A") || !r1.Reads("B") {
		t.Fatalf("rule 1 read-set %v", r1.ReadSet())
	}
}

// TestEvalInsertSeeded: the insert-seeded passes enumerate exactly the
// assignments that appeared because of an insert batch — the set
// difference between evaluating the updated database and the original —
// for every rule of the running example.
func TestEvalInsertSeeded(t *testing.T) {
	db, p, pp := preparedExample(t)
	// Mid-repair state: one grant already deleted, so delta joins fire.
	db.DeleteToDelta(db.Relation("Grant").Keys()[1])

	before := make([][]string, len(p.Rules))
	for i, r := range p.Rules {
		var asns []*Assignment
		if err := EvalRuleOnDB(db, r, func(a *Assignment) bool { asns = append(asns, a); return true }); err != nil {
			t.Fatal(err)
		}
		before[i] = assignmentKeys(asns)
	}

	// Insert new base tuples wiring author 5 to the deleted grant's world.
	seeds := map[string]*engine.Relation{
		"AuthGrant": engine.NewScratchRelation("AuthGrant", 2),
		"Writes":    engine.NewScratchRelation("Writes", 2),
	}
	for _, row := range [][2]int{{2, 2}} {
		tp := db.MustInsert("AuthGrant", engine.Int(row[0]), engine.Int(row[1]))
		seeds["AuthGrant"].Insert(tp)
	}
	tp := db.MustInsert("Writes", engine.Int(2), engine.Int(6))
	seeds["Writes"].Insert(tp)

	ctx := pp.AcquireContext()
	defer pp.ReleaseContext(ctx)
	for i, r := range p.Rules {
		var after []*Assignment
		if err := EvalRuleOnDB(db, r, func(a *Assignment) bool { after = append(after, a); return true }); err != nil {
			t.Fatal(err)
		}
		afterKeys := assignmentKeys(after)
		// wantNew = after \ before (both sorted string sets).
		prev := make(map[string]bool, len(before[i]))
		for _, k := range before[i] {
			prev[k] = true
		}
		var wantNew []string
		for _, k := range afterKeys {
			if !prev[k] {
				wantNew = append(wantNew, k)
			}
		}
		seeded := make(map[string]bool)
		if err := pp.Rules[i].EvalInsertSeeded(db, seeds, ctx, func(a *Assignment) bool {
			seeded[a.String()] = true
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(seeded) != len(wantNew) {
			t.Fatalf("rule %d: insert-seeded found %d assignments, want %d new (%v)", i, len(seeded), len(wantNew), wantNew)
		}
		for _, k := range wantNew {
			if !seeded[k] {
				t.Fatalf("rule %d: insert-seeded missed new assignment %s", i, k)
			}
		}
	}
}

// TestScratchPoolRoundTrip: acquired scratch is empty with registered
// indexes, and reacquiring after release hands back reset relations.
func TestScratchPoolRoundTrip(t *testing.T) {
	_, _, pp := preparedExample(t)
	s := pp.AcquireScratch()
	for _, rs := range pp.Schema.Relations {
		if s.Old[rs.Name] == nil || s.Frontier[rs.Name] == nil {
			t.Fatalf("scratch missing relation %s", rs.Name)
		}
		if s.Old[rs.Name].Len() != 0 || s.Frontier[rs.Name].Len() != 0 {
			t.Fatalf("scratch for %s not empty", rs.Name)
		}
	}
	// Dirty the scratch, release, reacquire: must come back empty.
	tp := engine.NewTuple("Grant", engine.Int(9), engine.Str("X"))
	s.Frontier["Grant"].Insert(tp)
	s.Derived[tp.TID] = true
	s.Heads = append(s.Heads, tp)
	s.Eligible = append(s.Eligible, 0)
	pp.ReleaseScratch(s)
	s2 := pp.AcquireScratch()
	defer pp.ReleaseScratch(s2)
	for _, rs := range pp.Schema.Relations {
		if s2.Old[rs.Name].Len() != 0 || s2.Frontier[rs.Name].Len() != 0 {
			t.Fatalf("recycled scratch for %s not reset", rs.Name)
		}
	}
	if len(s2.Derived) != 0 || len(s2.Fresh) != 0 || len(s2.Heads) != 0 || len(s2.Eligible) != 0 {
		t.Fatal("recycled scratch sets/buffers not reset")
	}
}
