package datalog

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/engine"
)

// This file implements the prepared-execution layer: Prepare compiles a
// validated program once — per rule, a static join-order plan for every
// source shape evaluation can run under, plus the set of (relation, column)
// index requirements those plans probe — so server-style callers can
// amortize planning across millions of repair requests. Execution state
// (binding buffers, seminaive scratch relations) is pooled on the Prepared
// so repeated runs allocate near-zero.

// IndexTarget says which concrete relation an index requirement applies to.
type IndexTarget int

// Index requirement targets.
const (
	// TargetBase is the live base relation R_i.
	TargetBase IndexTarget = iota
	// TargetDelta is the delta relation ∆_i.
	TargetDelta
	// TargetScratch is evaluation-internal scratch (the seminaive old and
	// frontier relations a derivation loop maintains per delta relation).
	TargetScratch
)

// IndexReq declares one single-column hash index a prepared plan probes.
type IndexReq struct {
	Rel    string
	Col    int
	Target IndexTarget
}

// PreparedRule is one rule with its compiled form and per-shape plans.
type PreparedRule struct {
	// Rule is the underlying validated rule.
	Rule *Rule

	cr *compiledRule

	// operational: delta atoms read ∆_i (the live deltas) — stability
	// checks, step executions, trigger statements.
	operational *plan
	// fromBase: delta atoms read base content (every base tuple is a
	// possible deletion) — Algorithm 1 provenance capture, view witnesses.
	fromBase *plan
	// passes[p]: seminaive pass p — the p-th delta atom reads the frontier,
	// earlier delta atoms read old deltas, later ones old ∪ frontier.
	passes []*plan
	// naive: delta atoms read the full delta contents (old ∪ frontier) —
	// the evaluation-strategy ablation.
	naive *plan
	// insertPasses[i]: base atom baseIdx[i] reads only a caller-supplied
	// seed of freshly inserted tuples, other base atoms read the live base,
	// delta atoms read ∆_i. Warm-start stability probes and incremental
	// derivations use these: after a base-table update, every genuinely new
	// assignment must bind at least one inserted tuple (rule bodies are
	// positive), so the union over these passes covers exactly the new work.
	insertPasses []*plan

	// Shard is the rule's mode under sharded parallel evaluation, from the
	// co-partitioning analysis (see copartition.go): ShardLocal rules can
	// run on every shard against its local partition; a plan containing any
	// Shard0 rule is evaluated sequentially.
	Shard ShardMode

	// deltaIdx holds the body indexes of the rule's delta atoms, in order.
	deltaIdx []int
	// baseIdx holds the body indexes of the rule's base atoms, in order.
	baseIdx []int
	// reads holds the distinct relation names the rule body references
	// (base or delta side), in first-use order.
	reads []string
}

// NumDeltaBody returns the number of ∆-atoms in the rule body (the number
// of seminaive passes).
func (pr *PreparedRule) NumDeltaBody() int { return len(pr.deltaIdx) }

// ReadSet returns the distinct relation names the rule body references
// (base or delta side), in first-use order. The head relation is always
// included via the mandatory self atom (Def. 3.1). Callers must not
// mutate the returned slice.
func (pr *PreparedRule) ReadSet() []string { return pr.reads }

// Reads reports whether the rule body references the relation (base or
// delta side).
func (pr *PreparedRule) Reads(rel string) bool {
	for _, r := range pr.reads {
		if r == rel {
			return true
		}
	}
	return false
}

// ReadsAny reports whether the rule body references any relation for
// which changed returns true.
func (pr *PreparedRule) ReadsAny(changed func(rel string) bool) bool {
	for _, r := range pr.reads {
		if changed(r) {
			return true
		}
	}
	return false
}

// Prepared is a program compiled for repeated execution: validated rules,
// static join plans per source shape, declared index requirements, and
// pooled execution state. A Prepared is immutable after construction and
// safe for concurrent use.
type Prepared struct {
	// Program is the prepared program.
	Program *Program
	// Schema is the schema the program was prepared against.
	Schema *engine.Schema
	// Rules holds one PreparedRule per program rule, in program order.
	Rules []*PreparedRule

	// Declared index requirements, per plan shape. Sequential execution
	// leaves index construction lazy (only columns a run actually probes
	// get built — cheaper when rules never fire); concurrent execution
	// pre-builds its shape's requirements so lookups perform no writes.
	reqs          []IndexReq // union of all shapes, deduplicated
	seminaiveReqs []IndexReq // pass/naive plans: base + scratch targets
	fromBaseReqs  []IndexReq // fromBase plans: base + delta targets

	// readSet is the union of the rules' read-sets: every relation some
	// rule body references. A base-table update that touches no read-set
	// relation cannot change any rule's assignments — serving layers use
	// this to skip re-derivation entirely after such updates.
	readSet    map[string]bool
	readSorted []string

	// part is the co-partitioning verdict for the program: partition keys
	// for the derived relations, replicated relations, and whether every
	// rule is shard-local (see copartition.go).
	part *Partitioning

	ctxPool     sync.Pool
	scratchPool sync.Pool
}

// Prepare compiles the program against the schema for repeated execution.
// Every rule must already be validated (ParseAndValidate or
// Program.Validate); Prepare fails otherwise rather than guessing at
// semantics.
func Prepare(p *Program, schema *engine.Schema) (*Prepared, error) {
	if p == nil || len(p.Rules) == 0 {
		return nil, fmt.Errorf("datalog: cannot prepare an empty program")
	}
	if schema == nil {
		return nil, fmt.Errorf("datalog: cannot prepare without a schema")
	}
	pp := &Prepared{Program: p, Schema: schema, Rules: make([]*PreparedRule, len(p.Rules))}
	seen := make(map[IndexReq]bool)
	addReq := func(list *[]IndexReq, rq IndexReq) {
		for _, have := range *list {
			if have == rq {
				return
			}
		}
		*list = append(*list, rq)
		if !seen[rq] {
			seen[rq] = true
			pp.reqs = append(pp.reqs, rq)
		}
	}
	for i, r := range p.Rules {
		if r.SelfIdx < 0 {
			return nil, fmt.Errorf("datalog: rule %s not validated", ruleName(r))
		}
		pr := &PreparedRule{Rule: r, cr: r.compile()}
		for bi, a := range r.Body {
			if a.Delta {
				pr.deltaIdx = append(pr.deltaIdx, bi)
			} else {
				pr.baseIdx = append(pr.baseIdx, bi)
			}
			if !pr.Reads(a.Rel) {
				pr.reads = append(pr.reads, a.Rel)
			}
			if pp.readSet == nil {
				pp.readSet = make(map[string]bool)
			}
			pp.readSet[a.Rel] = true
		}

		// Static plans per source shape. The greedy planner breaks bound-
		// score ties by weight; without live cardinalities, weights rank the
		// shapes' typical sizes: frontier (one round's derivations) < deltas
		// (all deletions so far) < base relations.
		isDelta := func(bi int) bool { return r.Body[bi].Delta }
		pr.operational = planFor(pr.cr, func(bi int) int {
			if isDelta(bi) {
				return 0 // live deltas are usually far smaller than bases
			}
			return 1
		})
		pr.fromBase = planFor(pr.cr, func(bi int) int {
			if isDelta(bi) {
				return 1 // reads base ∪ delta: at least as large as a base
			}
			return 0
		})
		pr.naive = planFor(pr.cr, func(bi int) int {
			if isDelta(bi) {
				return 0
			}
			return 1
		})
		pr.passes = make([]*plan, len(pr.deltaIdx))
		for pass := range pr.deltaIdx {
			frontierAtom := pr.deltaIdx[pass]
			pr.passes[pass] = planFor(pr.cr, func(bi int) int {
				switch {
				case bi == frontierAtom:
					return 0 // the frontier seeds the join
				case isDelta(bi):
					return 1
				default:
					return 2
				}
			})
		}
		pr.insertPasses = make([]*plan, len(pr.baseIdx))
		for i := range pr.baseIdx {
			seedAtom := pr.baseIdx[i]
			pr.insertPasses[i] = planFor(pr.cr, func(bi int) int {
				switch {
				case bi == seedAtom:
					return 0 // the inserted-tuple seed drives the join
				case isDelta(bi):
					return 1
				default:
					return 2
				}
			})
		}

		// Collect the index requirements each plan's probes imply, bucketed
		// by shape so executors warm only what their phase reads.
		collect := func(list *[]IndexReq, pl *plan, deltaTargets ...IndexTarget) {
			for d, bi := range pl.order {
				col := pl.lookup[d]
				if col < 0 {
					continue
				}
				a := r.Body[bi]
				if !a.Delta {
					addReq(list, IndexReq{Rel: a.Rel, Col: col, Target: TargetBase})
					continue
				}
				for _, tg := range deltaTargets {
					addReq(list, IndexReq{Rel: a.Rel, Col: col, Target: tg})
				}
			}
		}
		var opReqs []IndexReq // operational probes fold into the union only
		collect(&opReqs, pr.operational, TargetDelta)
		// FromBase delta atoms may read base alone (views, stability
		// formulas) or base ∪ delta (Algorithm 1 with pre-existing
		// deletions); require both.
		collect(&pp.fromBaseReqs, pr.fromBase, TargetBase, TargetDelta)
		collect(&pp.seminaiveReqs, pr.naive, TargetScratch)
		for _, pl := range pr.passes {
			collect(&pp.seminaiveReqs, pl, TargetScratch)
		}

		pp.Rules[i] = pr
	}
	pp.readSorted = make([]string, 0, len(pp.readSet))
	for rel := range pp.readSet {
		pp.readSorted = append(pp.readSorted, rel)
	}
	sort.Strings(pp.readSorted)
	part, modes := analyzePartitioning(p, schema)
	pp.part = part
	for i, m := range modes {
		pp.Rules[i].Shard = m
	}
	pp.ctxPool.New = func() any { return NewExecContext() }
	pp.scratchPool.New = func() any { return pp.newScratch() }
	return pp, nil
}

// IndexReqs returns the declared index requirements, deduplicated, in
// first-use order.
func (pp *Prepared) IndexReqs() []IndexReq { return pp.reqs }

// Partitioning returns the co-partitioning verdict computed at Prepare
// time. Callers must not mutate the returned struct.
func (pp *Prepared) Partitioning() *Partitioning { return pp.part }

// Shardable reports whether every rule is shard-local under the program's
// partition-key assignment, i.e. the whole seminaive fixpoint can run
// hash-sharded with a single merge at the end.
func (pp *Prepared) Shardable() bool { return pp.part.Shardable }

// PartitionKeys returns the partition key column per partitionable derived
// relation. Callers must not mutate the returned map.
func (pp *Prepared) PartitionKeys() map[string]int { return pp.part.Keys }

// ReadSet returns the relations any rule body references (base or delta
// side), sorted. A base-table update confined to relations outside this
// set cannot change any rule's assignments — and therefore cannot change
// any repair — so serving layers reuse the previous version's results
// verbatim for such updates. Callers must not mutate the returned slice.
func (pp *Prepared) ReadSet() []string { return pp.readSorted }

// Reads reports whether any rule body references the relation.
func (pp *Prepared) Reads(rel string) bool { return pp.readSet[rel] }

// ReadsAnyOf reports whether any rule body references any of the given
// relations.
func (pp *Prepared) ReadsAnyOf(rels []string) bool {
	for _, rel := range rels {
		if pp.readSet[rel] {
			return true
		}
	}
	return false
}

// CompatibleWith reports whether databases over the given schema can be
// executed against these prepared plans: both schemas must declare the
// same relation names with the same arities. Distinct but structurally
// equal schema objects (e.g. a snapshot-restored database) are compatible;
// a genuinely different schema yields an error instead of a mid-derivation
// panic on a missing relation.
func (pp *Prepared) CompatibleWith(schema *engine.Schema) error {
	if schema == pp.Schema {
		return nil
	}
	if schema == nil {
		return fmt.Errorf("datalog: prepared plans executed without a schema")
	}
	if len(schema.Relations) != len(pp.Schema.Relations) {
		return fmt.Errorf("datalog: prepared plans built for a %d-relation schema, database has %d",
			len(pp.Schema.Relations), len(schema.Relations))
	}
	for _, rs := range pp.Schema.Relations {
		have := schema.Relation(rs.Name)
		if have == nil {
			return fmt.Errorf("datalog: prepared plans reference relation %s, absent from the database schema", rs.Name)
		}
		if have.Arity() != rs.Arity() {
			return fmt.Errorf("datalog: relation %s prepared with arity %d, database schema has %d",
				rs.Name, rs.Arity(), have.Arity())
		}
	}
	return nil
}

// warm builds the base/delta requirements of one shape's list on db. An
// index that already exists may hold stale buckets from earlier deletions
// (lazy compaction is a write), so every touched relation is also synced —
// after warming, concurrent lookups perform no writes.
func warm(db *engine.Database, reqs []IndexReq) {
	for _, rq := range reqs {
		switch rq.Target {
		case TargetBase:
			if r := db.Relation(rq.Rel); r != nil {
				r.EnsureIndex(rq.Col)
				r.SyncIndexes()
			}
		case TargetDelta:
			if d := db.Delta(rq.Rel); d != nil {
				d.EnsureIndex(rq.Col)
				d.SyncIndexes()
			}
		}
	}
}

// WarmIndexes pre-builds every base- and delta-relation index any prepared
// plan probes, so no lazy index construction happens on the evaluation hot
// path. Use it on long-lived databases that serve repeated requests; for
// one-shot sequential runs lazy building is cheaper (columns of rules that
// never fire are never built), so the executors call the shape-specific
// warmers below only when running concurrently — there, a lazy index build
// mid-lookup would be a data race.
func (pp *Prepared) WarmIndexes(db *engine.Database) {
	warm(db, pp.reqs)
}

// WarmSeminaiveIndexes pre-builds the base-relation indexes the seminaive
// pass plans probe (delta atoms read derive-internal scratch, covered by
// AcquireScratch). Required before parallel derivation.
func (pp *Prepared) WarmSeminaiveIndexes(db *engine.Database) {
	for _, rq := range pp.seminaiveReqs {
		if rq.Target == TargetBase {
			if r := db.Relation(rq.Rel); r != nil {
				r.EnsureIndex(rq.Col)
				r.SyncIndexes()
			}
		}
	}
}

// WarmFromBaseIndexes pre-builds the base- and delta-relation indexes the
// FromBase plans probe. Required before Algorithm 1's parallel provenance
// sweep.
func (pp *Prepared) WarmFromBaseIndexes(db *engine.Database) {
	warm(db, pp.fromBaseReqs)
}

// AcquireContext returns a pooled execution context for use with the
// prepared Eval* methods. Contexts are not safe for concurrent use; acquire
// one per goroutine and release it when done.
func (pp *Prepared) AcquireContext() *ExecContext { return pp.ctxPool.Get().(*ExecContext) }

// ReleaseContext returns a context to the pool.
func (pp *Prepared) ReleaseContext(ctx *ExecContext) { pp.ctxPool.Put(ctx) }

// Scratch is the recycled per-derivation state of one seminaive fixpoint:
// the old/frontier relation pair per schema relation (with the plans'
// scratch index requirements pre-registered so inserts maintain them
// incrementally), plus the round-recycled dedup sets and buffers the
// derivation loop needs. Pooling the whole bundle means repeated
// derivations — and each shard of a sharded run — allocate near-zero.
type Scratch struct {
	// Old and Frontier are the seminaive scratch relations, keyed by
	// relation name: Old holds deltas from completed rounds, Frontier the
	// current round's.
	Old, Frontier map[string]*engine.Relation
	// Derived dedups heads across rounds; Fresh dedups within one round.
	Derived, Fresh map[engine.TupleID]bool
	// Heads buffers one round's newly derived head tuples.
	Heads []*engine.Tuple
	// Eligible buffers the rule indexes evaluated in one round.
	Eligible []int
}

func (pp *Prepared) newScratch() *Scratch {
	s := &Scratch{
		Old:      make(map[string]*engine.Relation, len(pp.Schema.Relations)),
		Frontier: make(map[string]*engine.Relation, len(pp.Schema.Relations)),
		Derived:  make(map[engine.TupleID]bool),
		Fresh:    make(map[engine.TupleID]bool),
	}
	for _, rs := range pp.Schema.Relations {
		s.Old[rs.Name] = engine.NewScratchRelation(rs.Name, rs.Arity())
		s.Frontier[rs.Name] = engine.NewScratchRelation(rs.Name, rs.Arity())
	}
	for _, rq := range pp.seminaiveReqs {
		if rq.Target != TargetScratch {
			continue
		}
		if r := s.Old[rq.Rel]; r != nil {
			r.EnsureIndex(rq.Col)
			s.Frontier[rq.Rel].EnsureIndex(rq.Col)
		}
	}
	return s
}

// AcquireScratch returns pooled seminaive scratch state, empty, with
// scratch index requirements registered. Release with ReleaseScratch so
// repeated derivations reuse the allocations.
func (pp *Prepared) AcquireScratch() *Scratch {
	return pp.scratchPool.Get().(*Scratch)
}

// ReleaseScratch resets and pools scratch obtained from AcquireScratch.
func (pp *Prepared) ReleaseScratch(s *Scratch) {
	for _, r := range s.Old {
		r.Reset()
	}
	for _, r := range s.Frontier {
		r.Reset()
	}
	clear(s.Derived)
	clear(s.Fresh)
	s.Heads = s.Heads[:0]
	s.Eligible = s.Eligible[:0]
	pp.scratchPool.Put(s)
}

// ---------- prepared evaluation entry points ----------

// evalWith runs one plan; a nil ctx gets a transient context.
func (pr *PreparedRule) evalWith(pl *plan, sources []AtomSource, ctx *ExecContext, emit func(*Assignment) bool) error {
	if ctx == nil {
		ctx = NewExecContext()
	}
	return evalPlan(pr.Rule, pr.cr, pl, sources, ctx, emit)
}

// EvalOperational enumerates the rule's assignments with operational
// sources: base atoms read live base relations, delta atoms read ∆_i.
func (pr *PreparedRule) EvalOperational(db *engine.Database, ctx *ExecContext, emit func(*Assignment) bool) error {
	return pr.evalWith(pr.operational, SourcesFor(db, pr.Rule, DeltaFromDelta), ctx, emit)
}

// EvalFromBase enumerates assignments with delta atoms ranging over base
// content — every base tuple is a possible deletion (Algorithm 1, §5.1).
// With includeDeleted, delta atoms additionally range over already-deleted
// tuples (the §3.6 initialization where a user deletes a specific set).
func (pr *PreparedRule) EvalFromBase(db *engine.Database, includeDeleted bool, ctx *ExecContext, emit func(*Assignment) bool) error {
	var sources []AtomSource
	if includeDeleted {
		sources = make([]AtomSource, len(pr.Rule.Body))
		for i, a := range pr.Rule.Body {
			if a.Delta {
				sources[i] = AtomSource{db.Relation(a.Rel), db.Delta(a.Rel)}
			} else {
				sources[i] = AtomSource{db.Relation(a.Rel)}
			}
		}
	} else {
		sources = SourcesFor(db, pr.Rule, DeltaFromBase)
	}
	return pr.evalWith(pr.fromBase, sources, ctx, emit)
}

// EvalInsertSeeded enumerates the rule's assignments that use at least one
// freshly inserted base tuple: for each base atom in turn, that atom reads
// only the matching seed relation (the tuples a base-table update
// inserted), the other base atoms read the live base, and delta atoms read
// ∆_i. Because rule bodies are positive conjunctions, every assignment
// that did not exist before the insert must bind an inserted tuple at some
// base atom, so the union over these passes is exactly the new
// assignments (an assignment using several inserted tuples is emitted once
// per such atom; dedup if that matters). Atoms whose relation has no seed
// (or an empty one) are skipped.
//
// This is the evaluation primitive behind warm-start stability probes and
// incremental derivation after updates: probing only the delta between
// versions instead of re-enumerating every assignment from scratch.
func (pr *PreparedRule) EvalInsertSeeded(db *engine.Database, seeds map[string]*engine.Relation, ctx *ExecContext, emit func(*Assignment) bool) error {
	for i, bi := range pr.baseIdx {
		seed := seeds[pr.Rule.Body[bi].Rel]
		if seed == nil || seed.Len() == 0 {
			continue
		}
		sources := make([]AtomSource, len(pr.Rule.Body))
		for j, a := range pr.Rule.Body {
			switch {
			case j == bi:
				sources[j] = AtomSource{seed}
			case a.Delta:
				sources[j] = AtomSource{db.Delta(a.Rel)}
			default:
				sources[j] = AtomSource{db.Relation(a.Rel)}
			}
		}
		if err := pr.evalWith(pr.insertPasses[i], sources, ctx, emit); err != nil {
			return err
		}
	}
	return nil
}

// EvalChangeSeeded enumerates the rule's assignments that bind at least
// one changed tuple: for each body atom in turn — base atoms via the
// insert-pass plans, delta atoms via the seminaive pass plans — that atom
// reads only the matching seed relation while every other atom reads the
// sources src supplies for its body position. Because rule bodies are
// positive conjunctions, an assignment present in one of two database
// states but not the other must bind a changed tuple at some atom, so as
// long as src covers both states at every position, the union over these
// passes covers every assignment the change created or invalidated (an
// assignment binding several changed tuples is emitted once per such
// atom; dedup if that matters). With baseOnly, seeding is restricted to
// base atoms and delta atoms read only their src sources — the shape
// delete propagation wants, where changed delta-side tuples are swept
// separately through the dead-tuple frontier.
//
// This is the delete-side sibling of EvalInsertSeeded, generalized: the
// caller chooses the per-position sources, so the same primitive drives
// DRed over-deletion (deleted tuples seeded over a superset of the old
// version) and cached-result change probes (deletes plus inserts seeded
// over a superset of both versions).
func (pr *PreparedRule) EvalChangeSeeded(seeds map[string]*engine.Relation, baseOnly bool, src func(bi int) AtomSource, ctx *ExecContext, emit func(*Assignment) bool) error {
	evalAt := func(pl *plan, seedAt int, seed *engine.Relation) error {
		sources := make([]AtomSource, len(pr.Rule.Body))
		for j := range pr.Rule.Body {
			if j == seedAt {
				sources[j] = AtomSource{seed}
			} else {
				sources[j] = src(j)
			}
		}
		return pr.evalWith(pl, sources, ctx, emit)
	}
	for i, bi := range pr.baseIdx {
		seed := seeds[pr.Rule.Body[bi].Rel]
		if seed == nil || seed.Len() == 0 {
			continue
		}
		if err := evalAt(pr.insertPasses[i], bi, seed); err != nil {
			return err
		}
	}
	if baseOnly {
		return nil
	}
	for p, bi := range pr.deltaIdx {
		seed := seeds[pr.Rule.Body[bi].Rel]
		if seed == nil || seed.Len() == 0 {
			continue
		}
		if err := evalAt(pr.passes[p], bi, seed); err != nil {
			return err
		}
	}
	return nil
}

// EvalSelfSeeded enumerates exactly the derivations of the seed tuples:
// the rule's mandatory self atom (Rule.SelfIdx — the base atom carrying
// the head's terms, Def. 3.1) reads only the seed, so every emitted
// assignment's head is a seed tuple, while every other atom reads the
// sources src supplies for its body position. Incremental re-derivation
// uses this to ask "does this over-deleted tuple still have a surviving
// derivation?" at a cost bounded by the seed, not the database.
func (pr *PreparedRule) EvalSelfSeeded(seed *engine.Relation, src func(bi int) AtomSource, ctx *ExecContext, emit func(*Assignment) bool) error {
	if seed == nil || seed.Len() == 0 {
		return nil
	}
	for i, bi := range pr.baseIdx {
		if bi != pr.Rule.SelfIdx {
			continue
		}
		sources := make([]AtomSource, len(pr.Rule.Body))
		for j := range pr.Rule.Body {
			if j == bi {
				sources[j] = AtomSource{seed}
			} else {
				sources[j] = src(j)
			}
		}
		return pr.evalWith(pr.insertPasses[i], sources, ctx, emit)
	}
	// Unreachable for validated rules: the self atom is always a base atom.
	return fmt.Errorf("datalog: rule %s has no base self atom", ruleName(pr.Rule))
}

// EvalPass enumerates assignments for one seminaive pass over
// caller-supplied sources (built to the pass shape: the pass-th delta atom
// reads the frontier, earlier delta atoms old deltas, later ones
// old ∪ frontier).
func (pr *PreparedRule) EvalPass(pass int, sources []AtomSource, ctx *ExecContext, emit func(*Assignment) bool) error {
	return pr.evalWith(pr.passes[pass], sources, ctx, emit)
}

// EvalNaive enumerates assignments with every delta atom reading the full
// delta contents, over caller-supplied sources.
func (pr *PreparedRule) EvalNaive(sources []AtomSource, ctx *ExecContext, emit func(*Assignment) bool) error {
	return pr.evalWith(pr.naive, sources, ctx, emit)
}

// HasAssignment reports whether the rule has at least one assignment over
// the database's operational state.
func (pr *PreparedRule) HasAssignment(db *engine.Database, ctx *ExecContext) (bool, error) {
	found := false
	err := pr.EvalOperational(db, ctx, func(*Assignment) bool {
		found = true
		return false
	})
	return found, err
}
