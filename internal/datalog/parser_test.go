package datalog

import (
	"strings"
	"testing"

	"repro/internal/engine"
)

// runningExampleSrc is the delta program of Figure 2 in the paper.
const runningExampleSrc = `
# Delta program for the academic database (Figure 2).
(0) Delta_Grant(g, n) :- Grant(g, n), n = 'ERC'.
(1) Delta_Author(a, n) :- Author(a, n), AuthGrant(a, g), Delta_Grant(g, gn).
(2) Delta_Pub(p, t) :- Pub(p, t), Writes(a, p), Delta_Author(a, n).
(3) Delta_Writes(a, p) :- Pub(p, t), Writes(a, p), Delta_Author(a, n).
(4) Delta_Cite(c, p) :- Cite(c, p), Delta_Pub(p, t), Writes(a1, c), Writes(a2, p).
`

func TestParseRunningExample(t *testing.T) {
	p, err := Parse(runningExampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 5 {
		t.Fatalf("parsed %d rules, want 5", len(p.Rules))
	}
	r0 := p.Rules[0]
	if r0.Label != "0" {
		t.Errorf("rule 0 label = %q", r0.Label)
	}
	if !r0.Head.Delta || r0.Head.Rel != "Grant" {
		t.Errorf("rule 0 head = %v", r0.Head)
	}
	if len(r0.Body) != 1 || len(r0.Comps) != 1 {
		t.Errorf("rule 0 body/comps = %d/%d", len(r0.Body), len(r0.Comps))
	}
	if r0.Comps[0].Op != OpEQ || r0.Comps[0].Right.Const.Str != "ERC" {
		t.Errorf("rule 0 comparison = %v", r0.Comps[0])
	}
	r4 := p.Rules[4]
	if len(r4.Body) != 4 {
		t.Errorf("rule 4 body size = %d, want 4", len(r4.Body))
	}
	if !r4.Body[1].Delta || r4.Body[1].Rel != "Pub" {
		t.Errorf("rule 4 second atom = %v, want Delta_Pub", r4.Body[1])
	}
}

func TestParseUnicodeDeltaAndOperators(t *testing.T) {
	src := `∆Pub(p1, t1, c1) :- Pub(p1, t1, c1), Pub(p2, t2, c2), t1 = t2, c1 ≠ c2, p1 ≤ 10, p2 ≥ 0.`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Rules[0]
	if !r.Head.Delta || r.Head.Rel != "Pub" {
		t.Fatalf("head = %v", r.Head)
	}
	wantOps := []CompOp{OpEQ, OpNEQ, OpLEQ, OpGEQ}
	if len(r.Comps) != len(wantOps) {
		t.Fatalf("comps = %d, want %d", len(r.Comps), len(wantOps))
	}
	for i, op := range wantOps {
		if r.Comps[i].Op != op {
			t.Errorf("comp %d op = %v, want %v", i, r.Comps[i].Op, op)
		}
	}
}

func TestParseTermKinds(t *testing.T) {
	src := `Delta_R(x, y, z) :- R(x, y, z), S(x, 42, 'str', -7, 2.5, _, _).`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Rules[0].Body[1]
	if s.Terms[1].Const.Int != 42 {
		t.Errorf("int const = %v", s.Terms[1])
	}
	if s.Terms[2].Const.Str != "str" {
		t.Errorf("string const = %v", s.Terms[2])
	}
	if s.Terms[3].Const.Int != -7 {
		t.Errorf("negative const = %v", s.Terms[3])
	}
	if s.Terms[4].Const.Flt != 2.5 {
		t.Errorf("float const = %v", s.Terms[4])
	}
	// Anonymous variables must be distinct.
	if !s.Terms[5].IsVar() || !s.Terms[6].IsVar() || s.Terms[5].Var == s.Terms[6].Var {
		t.Errorf("anonymous vars not distinct: %v vs %v", s.Terms[5], s.Terms[6])
	}
}

func TestParseCommentsAndWhitespace(t *testing.T) {
	src := "% percent comment\n// slash comment\n  Delta_R(x) :- R(x). # trailing\n"
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 1 {
		t.Fatalf("rules = %d, want 1", len(p.Rules))
	}
}

func TestParseRoundTrip(t *testing.T) {
	p := MustParse(runningExampleSrc)
	// String() output must reparse to an equivalent program.
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("reparse failed: %v\nsource:\n%s", err, p.String())
	}
	if p2.String() != p.String() {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", p.String(), p2.String())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                                   // empty program
		"Delta_R(x)",                         // missing :- and .
		"Delta_R(x) :- R(x)",                 // missing dot
		"Delta_R(x) : R(x).",                 // broken implies
		"Delta_R(x) :- R(x), .",              // dangling comma
		"Delta_R(x) :- R(x, ).",              // missing term
		"Delta_R(x) :- R(x), x ! 3.",         // broken operator
		"Delta_R(x) :- R(x), 'unterminated.", // unterminated string
		"(x Delta_R(x) :- R(x).",             // malformed label
		"Delta_(x) :- R(x).",                 // empty relation after prefix
		"Delta_R(x) :- R(x), @.",             // unlexable char
		"Delta_R(x) :- R(x), x =.",           // missing comparison operand
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on bad input should panic")
		}
	}()
	MustParse("garbage(")
}

func TestParseAndValidate(t *testing.T) {
	schema := engine.NewSchema()
	schema.MustAddRelation("R", "r", "a")
	if _, err := ParseAndValidate("Delta_R(x) :- R(x).", schema); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	if _, err := ParseAndValidate("Delta_R(x) :- S(x).", schema); err == nil {
		t.Fatal("program missing self atom should be rejected")
	}
	if _, err := ParseAndValidate("Delta_R(x, y) :- R(x, y).", schema); err == nil {
		t.Fatal("arity mismatch should be rejected")
	}
}

func TestProgramAccessors(t *testing.T) {
	p := MustParse(runningExampleSrc)
	drels := p.DeltaRelations()
	want := []string{"Grant", "Author", "Pub", "Writes", "Cite"}
	if len(drels) != len(want) {
		t.Fatalf("DeltaRelations = %v", drels)
	}
	for i := range want {
		if drels[i] != want[i] {
			t.Fatalf("DeltaRelations[%d] = %s, want %s", i, drels[i], want[i])
		}
	}
	used := p.RelationsUsed()
	if len(used) != 6 { // Grant, Author, AuthGrant, Pub, Writes, Cite
		t.Fatalf("RelationsUsed = %v", used)
	}
	if !strings.Contains(p.String(), "Delta_Cite(c, p)") {
		t.Fatalf("String missing rule 4: %s", p.String())
	}
}

func TestRuleVarsAndDeltaCount(t *testing.T) {
	p := MustParse(runningExampleSrc)
	r4 := p.Rules[4]
	vars := r4.Vars()
	want := []string{"c", "p", "t", "a1", "a2"}
	if len(vars) != len(want) {
		t.Fatalf("Vars = %v, want %v", vars, want)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("Vars[%d] = %s, want %s", i, vars[i], want[i])
		}
	}
	if r4.DeltaBodyCount() != 1 {
		t.Fatalf("DeltaBodyCount = %d, want 1", r4.DeltaBodyCount())
	}
	if p.Rules[0].DeltaBodyCount() != 0 {
		t.Fatal("rule 0 has no delta body atoms")
	}
}
