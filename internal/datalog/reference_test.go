package datalog

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/engine"
)

// referenceEval enumerates assignments by brute-force nested loops over the
// cross product of all atom sources, checking every constraint at the end.
// It is the executable specification the optimized join is tested against.
func referenceEval(rule *Rule, sources []AtomSource) []string {
	var results []string
	tuples := make([]*engine.Tuple, len(rule.Body))

	var rec func(i int)
	rec = func(i int) {
		if i == len(rule.Body) {
			if asn := checkAssignment(rule, tuples); asn != "" {
				results = append(results, asn)
			}
			return
		}
		for _, rel := range sources[i] {
			if rel == nil {
				continue
			}
			for _, tp := range rel.Tuples() {
				tuples[i] = tp
				rec(i + 1)
			}
		}
		tuples[i] = nil
	}
	rec(0)
	sort.Strings(results)
	return results
}

// checkAssignment validates a candidate tuple vector against the rule's
// constants, repeated variables, and comparisons; it returns a canonical
// string for comparison or "" if invalid.
func checkAssignment(rule *Rule, tuples []*engine.Tuple) string {
	bind := make(map[string]engine.Value)
	for i, a := range rule.Body {
		for col, term := range a.Terms {
			v := tuples[i].Vals[col]
			if !term.IsVar() {
				if !term.Const.Equal(v) {
					return ""
				}
				continue
			}
			if prev, ok := bind[term.Var]; ok {
				if !prev.Equal(v) {
					return ""
				}
			} else {
				bind[term.Var] = v
			}
		}
	}
	for _, c := range rule.Comps {
		l, r := c.Left.Const, c.Right.Const
		if c.Left.IsVar() {
			l = bind[c.Left.Var]
		}
		if c.Right.IsVar() {
			r = bind[c.Right.Var]
		}
		if !c.Op.Eval(l, r) {
			return ""
		}
	}
	key := ""
	for _, tp := range tuples {
		key += tp.Key() + "|"
	}
	return key
}

// randomEvalInstance builds a random database and rule for the equivalence
// property.
func randomEvalInstance(seed int64) (*engine.Database, *Rule, error) {
	rng := rand.New(rand.NewSource(seed))
	s := engine.NewSchema()
	s.MustAddRelation("A", "a", "x", "y")
	s.MustAddRelation("B", "b", "x")
	s.MustAddRelation("C", "c", "x", "y", "z")

	db := engine.NewDatabase(s)
	dom := 1 + rng.Intn(4)
	for i, n := 0, rng.Intn(7); i < n; i++ {
		db.MustInsert("A", engine.Int(rng.Intn(dom)), engine.Int(rng.Intn(dom)))
	}
	for i, n := 0, rng.Intn(5); i < n; i++ {
		db.MustInsert("B", engine.Int(rng.Intn(dom)))
	}
	for i, n := 0, rng.Intn(6); i < n; i++ {
		db.MustInsert("C", engine.Int(rng.Intn(dom)), engine.Int(rng.Intn(dom)), engine.Int(rng.Intn(dom)))
	}

	// Random rule: head over A, body with 1-3 extra atoms and random
	// variable sharing from a small pool.
	pool := []string{"x", "y", "z", "w"}
	rels := []struct {
		name  string
		arity int
	}{{"A", 2}, {"B", 1}, {"C", 3}}
	head := Atom{Delta: true, Rel: "A", Terms: []Term{V("x"), V("y")}}
	body := []Atom{{Rel: "A", Terms: []Term{V("x"), V("y")}}}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		r := rels[rng.Intn(len(rels))]
		terms := make([]Term, r.arity)
		for j := range terms {
			if rng.Intn(5) == 0 {
				terms[j] = CInt(int64(rng.Intn(dom)))
			} else {
				terms[j] = V(pool[rng.Intn(len(pool))])
			}
		}
		body = append(body, Atom{Rel: r.name, Terms: terms})
	}
	var comps []Comparison
	if rng.Intn(2) == 0 {
		comps = append(comps, Comparison{
			Left:  V("x"),
			Op:    CompOp(rng.Intn(6)),
			Right: CInt(int64(rng.Intn(dom))),
		})
	}
	rule := NewRule("", head, body, comps...)
	p := NewProgram(rule)
	if err := p.Validate(s); err != nil {
		return nil, nil, err
	}
	return db, rule, nil
}

// TestPropertyJoinMatchesReference: the optimized index-assisted join must
// enumerate exactly the assignments of the brute-force reference, for
// random rules and databases.
func TestPropertyJoinMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		db, rule, err := randomEvalInstance(seed)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		sources := SourcesFor(db, rule, DeltaFromDelta)
		var got []string
		if err := EvalRule(rule, sources, func(a *Assignment) bool {
			key := ""
			for _, tp := range a.Tuples {
				key += tp.Key() + "|"
			}
			got = append(got, key)
			return true
		}); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		sort.Strings(got)
		want := referenceEval(rule, sources)
		if len(got) != len(want) {
			t.Logf("seed %d: got %d assignments, reference %d\nrule: %s",
				seed, len(got), len(want), rule)
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				t.Logf("seed %d: assignment %d differs:\n  got  %s\n  want %s",
					seed, i, got[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestPropertyJoinWithDeltaAtoms repeats the equivalence with delta atoms
// in the body (sourced from partially-deleted databases).
func TestPropertyJoinWithDeltaAtoms(t *testing.T) {
	f := func(seed int64) bool {
		db, _, err := randomEvalInstance(seed)
		if err != nil {
			return false
		}
		// Delete ~a third of A's tuples into the delta side.
		rng := rand.New(rand.NewSource(seed ^ 0xdead))
		for _, tp := range db.Relation("A").Tuples() {
			if rng.Intn(3) == 0 {
				db.DeleteToDelta(tp.Key())
			}
		}
		rule := NewRule("",
			Atom{Delta: true, Rel: "C", Terms: []Term{V("x"), V("y"), V("z")}},
			[]Atom{
				{Rel: "C", Terms: []Term{V("x"), V("y"), V("z")}},
				{Delta: true, Rel: "A", Terms: []Term{V("x"), V("w")}},
			})
		p := NewProgram(rule)
		if err := p.Validate(db.Schema); err != nil {
			return false
		}
		sources := SourcesFor(db, rule, DeltaFromDelta)
		var got []string
		if err := EvalRule(rule, sources, func(a *Assignment) bool {
			key := ""
			for _, tp := range a.Tuples {
				key += tp.Key() + "|"
			}
			got = append(got, key)
			return true
		}); err != nil {
			return false
		}
		sort.Strings(got)
		want := referenceEval(rule, sources)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Logf("seed %d: delta-join mismatch: got %v want %v", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
