package datalog

import "testing"

// FuzzParse checks that the parser never panics on arbitrary input, and
// that anything it accepts round-trips through String() to an equivalent
// program (run with `go test -fuzz=FuzzParse ./internal/datalog` to
// explore beyond the seed corpus).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"Delta_R(x) :- R(x).",
		"(0) Delta_Grant(g, n) :- Grant(g, n), n = 'ERC'.",
		"∆Pub(p1, t1) :- Pub(p1, t1), Pub(p2, t2), t1 = t2, p1 != p2.",
		"Delta_R(x) :- R(x), S(x, 42, 'str', -7, 2.5, _).",
		"Delta_R(x) :- R(x), x <= 10, x >= 0, x <> 5.",
		"# comment\nDelta_R(x) :- R(x). % other\n",
		"Delta_R(x) :- R(x), Delta_S(x), Delta_R(y), x != y.",
		"Delta_R(x) :-",
		"(((((",
		"Delta_R(x) :- R(x), 'unterminated",
		"Δ_R(x) :- R(x).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		rendered := p.String()
		p2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("round trip failed: %v\noriginal: %q\nrendered: %q", err, src, rendered)
		}
		if p2.String() != rendered {
			t.Fatalf("unstable rendering:\nfirst:  %q\nsecond: %q", rendered, p2.String())
		}
	})
}

// FuzzLexer checks the tokenizer alone never panics or loops.
func FuzzLexer(f *testing.F) {
	for _, s := range []string{":-", "''", "≠≤≥", "1.2.3", "-", "--1", "a_b9", "\\", "\x00"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lexAll(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Fatal("lexAll must end with EOF")
		}
	})
}
