package datalog

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/engine"
)

// Parse parses a delta program in the concrete syntax:
//
//	# rule (0) of the running example
//	(0) Delta_Grant(g, n) :- Grant(g, n), n = 'ERC'.
//	(1) Delta_Author(a, n) :- Author(a, n), AuthGrant(a, g), Delta_Grant(g, gn).
//
// Rules are optionally labeled with a parenthesized identifier or number.
// Delta atoms are written with a "Delta_" prefix or a Unicode delta ('∆' or
// 'Δ'). Terms are variables (bare identifiers; '_' is an anonymous
// variable), integers, floats, or quoted strings. Comparisons use
// =, !=, <>, <, <=, >, >= and may appear anywhere among the body items.
// Each rule ends with '.'; '#', '%%' and '//' start comments.
//
// The returned program is parsed but not validated; call Validate to check
// Def. 3.1 conditions and resolve SelfIdx before evaluating.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for p.peek().kind != tokEOF {
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	if len(prog.Rules) == 0 {
		return nil, fmt.Errorf("datalog: empty program")
	}
	return prog, nil
}

// MustParse is Parse that panics on error; for static program definitions.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseAndValidate parses then validates against the schema.
func ParseAndValidate(src string, schema *engine.Schema) (*Program, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := p.Validate(schema); err != nil {
		return nil, err
	}
	return p, nil
}

type parser struct {
	toks []token
	pos  int
	anon int // counter for '_' anonymous variables
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) at(i int) token {
	if p.pos+i >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+i]
}
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.peek()
	if t.kind != kind {
		return t, fmt.Errorf("line %d: expected %v, found %v %q", t.line, kind, t.kind, t.text)
	}
	return p.advance(), nil
}

// parseRule parses "[label] head :- body."
func (p *parser) parseRule() (*Rule, error) {
	label := ""
	// Optional "(ident-or-number)" label followed by an identifier (the
	// head atom). Lookahead distinguishes a label from nothing: a rule
	// cannot start with '('.
	if p.peek().kind == tokLParen {
		inner := p.at(1)
		if (inner.kind == tokIdent || inner.kind == tokNumber) && p.at(2).kind == tokRParen {
			p.advance()
			label = p.advance().text
			p.advance()
		} else {
			return nil, fmt.Errorf("line %d: malformed rule label", p.peek().line)
		}
	}
	head, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokImplies); err != nil {
		return nil, err
	}
	r := &Rule{Label: label, Head: head, SelfIdx: -1}
	for {
		item, comp, isComp, err := p.parseBodyItem()
		if err != nil {
			return nil, err
		}
		if isComp {
			r.Comps = append(r.Comps, comp)
		} else {
			r.Body = append(r.Body, item)
		}
		if p.peek().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokDot); err != nil {
		return nil, err
	}
	return r, nil
}

// parseBodyItem parses either an atom or a comparison.
func (p *parser) parseBodyItem() (Atom, Comparison, bool, error) {
	t := p.peek()
	// An atom starts with an identifier followed by '('.
	if t.kind == tokIdent && p.at(1).kind == tokLParen {
		a, err := p.parseAtom()
		return a, Comparison{}, false, err
	}
	// Otherwise a comparison: term op term.
	left, err := p.parseTerm()
	if err != nil {
		return Atom{}, Comparison{}, false, err
	}
	opTok, err := p.expect(tokOp)
	if err != nil {
		return Atom{}, Comparison{}, false, err
	}
	op, err := parseOp(opTok.text)
	if err != nil {
		return Atom{}, Comparison{}, false, fmt.Errorf("line %d: %w", opTok.line, err)
	}
	right, err := p.parseTerm()
	if err != nil {
		return Atom{}, Comparison{}, false, err
	}
	return Atom{}, Comparison{Left: left, Op: op, Right: right}, true, nil
}

func parseOp(s string) (CompOp, error) {
	switch s {
	case "=":
		return OpEQ, nil
	case "!=", "<>":
		return OpNEQ, nil
	case "<":
		return OpLT, nil
	case "<=":
		return OpLEQ, nil
	case ">":
		return OpGT, nil
	case ">=":
		return OpGEQ, nil
	default:
		return 0, fmt.Errorf("unknown operator %q", s)
	}
}

// parseAtom parses "Name(term, ...)" handling the delta prefixes.
func (p *parser) parseAtom() (Atom, error) {
	nameTok, err := p.expect(tokIdent)
	if err != nil {
		return Atom{}, err
	}
	name := nameTok.text
	delta := false
	switch {
	case strings.HasPrefix(name, "Delta_"):
		delta = true
		name = strings.TrimPrefix(name, "Delta_")
	case strings.HasPrefix(name, "delta_"):
		delta = true
		name = strings.TrimPrefix(name, "delta_")
	case strings.HasPrefix(name, "Δ") || strings.HasPrefix(name, "∆"):
		delta = true
		name = strings.TrimPrefix(strings.TrimPrefix(name, "Δ"), "∆")
		name = strings.TrimPrefix(name, "_")
	}
	if name == "" {
		return Atom{}, fmt.Errorf("line %d: empty relation name after delta prefix", nameTok.line)
	}
	if _, err := p.expect(tokLParen); err != nil {
		return Atom{}, err
	}
	var terms []Term
	for {
		t, err := p.parseTerm()
		if err != nil {
			return Atom{}, err
		}
		terms = append(terms, t)
		if p.peek().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return Atom{}, err
	}
	return Atom{Delta: delta, Rel: name, Terms: terms}, nil
}

// parseTerm parses a variable or constant.
func (p *parser) parseTerm() (Term, error) {
	t := p.peek()
	switch t.kind {
	case tokIdent:
		p.advance()
		if t.text == "_" {
			p.anon++
			return V(fmt.Sprintf("_anon%d", p.anon)), nil
		}
		return V(t.text), nil
	case tokNumber:
		p.advance()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Term{}, fmt.Errorf("line %d: bad number %q", t.line, t.text)
			}
			return C(engine.Float(f)), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Term{}, fmt.Errorf("line %d: bad number %q", t.line, t.text)
		}
		return C(engine.Int64(i)), nil
	case tokString:
		p.advance()
		return C(engine.Str(t.text)), nil
	default:
		return Term{}, fmt.Errorf("line %d: expected a term, found %v %q", t.line, t.kind, t.text)
	}
}
