// Package datalog implements the paper's delta-rule language (§3.1): a
// non-recursive-equivalent datalog dialect in which every intensional
// relation is a delta relation ∆_i recording deletions from the base
// relation R_i.
//
// A delta rule has the form
//
//	∆_i(X) :- R_i(X), Q_1(Y_1), ..., Q_l(Y_l), comparisons...
//
// where each Q_j is a base or delta relation (Def. 3.1). The package
// provides the AST, a text parser for the concrete syntax used throughout
// this repository ("Delta_Author(a, n) :- Author(a, n), Delta_Grant(g, gn),
// n = 'ERC'."), validation, and assignment enumeration (the join machinery
// every semantics in internal/core is built on).
package datalog

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/engine"
)

// Term is a variable or a constant appearing in an atom or comparison.
type Term struct {
	// Var is the variable name; empty when the term is a constant.
	Var string
	// Const holds the constant value when Var is empty.
	Const engine.Value
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(v engine.Value) Term { return Term{Const: v} }

// CInt returns an integer constant term.
func CInt(i int64) Term { return C(engine.Int64(i)) }

// CStr returns a string constant term.
func CStr(s string) Term { return C(engine.Str(s)) }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String renders the term: variables bare, constants via Value.String.
func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	return t.Const.String()
}

// Atom is a (possibly delta) relational atom: Rel(t1, ..., tk).
type Atom struct {
	// Delta marks ∆-atoms: the atom ranges over deleted tuples.
	Delta bool
	// Rel is the base relation name (even for delta atoms; ∆_i shares R_i's
	// name and schema).
	Rel string
	// Terms are the atom's arguments.
	Terms []Term
}

// NewAtom builds a base atom.
func NewAtom(rel string, terms ...Term) Atom {
	return Atom{Rel: rel, Terms: terms}
}

// NewDeltaAtom builds a ∆-atom.
func NewDeltaAtom(rel string, terms ...Term) Atom {
	return Atom{Delta: true, Rel: rel, Terms: terms}
}

// String renders the atom, prefixing delta atoms with "Delta_".
func (a Atom) String() string {
	var b strings.Builder
	if a.Delta {
		b.WriteString("Delta_")
	}
	b.WriteString(a.Rel)
	b.WriteByte('(')
	for i, t := range a.Terms {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// SameTerms reports whether two atoms have identical term lists.
func (a Atom) SameTerms(o Atom) bool {
	if len(a.Terms) != len(o.Terms) {
		return false
	}
	for i := range a.Terms {
		x, y := a.Terms[i], o.Terms[i]
		if x.IsVar() != y.IsVar() {
			return false
		}
		if x.IsVar() {
			if x.Var != y.Var {
				return false
			}
		} else if !x.Const.Equal(y.Const) || x.Const.Kind != y.Const.Kind {
			return false
		}
	}
	return true
}

// CompOp enumerates comparison operators usable in rule bodies; the paper
// allows ◦ ∈ {<, >, =, ≠, ≤, ≥} (§3.6).
type CompOp uint8

// Comparison operators.
const (
	OpEQ CompOp = iota
	OpNEQ
	OpLT
	OpLEQ
	OpGT
	OpGEQ
)

// String renders the operator in the concrete syntax.
func (op CompOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpNEQ:
		return "!="
	case OpLT:
		return "<"
	case OpLEQ:
		return "<="
	case OpGT:
		return ">"
	case OpGEQ:
		return ">="
	default:
		return fmt.Sprintf("CompOp(%d)", uint8(op))
	}
}

// Eval applies the operator to two values.
func (op CompOp) Eval(a, b engine.Value) bool {
	switch op {
	case OpEQ:
		return a.Equal(b)
	case OpNEQ:
		return !a.Equal(b)
	case OpLT:
		return a.Compare(b) < 0
	case OpLEQ:
		return a.Compare(b) <= 0
	case OpGT:
		return a.Compare(b) > 0
	case OpGEQ:
		return a.Compare(b) >= 0
	default:
		return false
	}
}

// Comparison is a built-in predicate "left op right" in a rule body.
type Comparison struct {
	Left  Term
	Op    CompOp
	Right Term
}

// String renders "left op right".
func (c Comparison) String() string {
	return c.Left.String() + " " + c.Op.String() + " " + c.Right.String()
}

// Rule is a single delta rule.
type Rule struct {
	// Label is an optional identifier, e.g. "0" for the paper's rule (0).
	Label string
	// Head is the ∆-atom derived by the rule.
	Head Atom
	// Body holds the relational atoms (base and delta).
	Body []Atom
	// Comps holds the comparison predicates.
	Comps []Comparison

	// SelfIdx is the index in Body of the mandatory R_i(X) atom matching
	// the head (Def. 3.1). Set by Validate; -1 until then.
	SelfIdx int

	compileOnce sync.Once     // guards compiled for concurrent evaluation
	compiled    *compiledRule // lazily built evaluation plan input
}

// NewRule builds a rule with SelfIdx unset.
func NewRule(label string, head Atom, body []Atom, comps ...Comparison) *Rule {
	return &Rule{Label: label, Head: head, Body: body, Comps: comps, SelfIdx: -1}
}

// String renders the rule in concrete syntax, with its label if present.
func (r *Rule) String() string {
	var b strings.Builder
	if r.Label != "" {
		fmt.Fprintf(&b, "(%s) ", r.Label)
	}
	b.WriteString(r.Head.String())
	b.WriteString(" :- ")
	parts := make([]string, 0, len(r.Body)+len(r.Comps))
	for _, a := range r.Body {
		parts = append(parts, a.String())
	}
	for _, c := range r.Comps {
		parts = append(parts, c.String())
	}
	b.WriteString(strings.Join(parts, ", "))
	b.WriteByte('.')
	return b.String()
}

// DeltaBodyCount returns the number of ∆-atoms in the body.
func (r *Rule) DeltaBodyCount() int {
	n := 0
	for _, a := range r.Body {
		if a.Delta {
			n++
		}
	}
	return n
}

// Vars returns the distinct variable names in the rule, in first-occurrence
// order (head, then body atoms, then comparisons).
func (r *Rule) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	add := func(t Term) {
		if t.IsVar() && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	for _, t := range r.Head.Terms {
		add(t)
	}
	for _, a := range r.Body {
		for _, t := range a.Terms {
			add(t)
		}
	}
	for _, c := range r.Comps {
		add(c.Left)
		add(c.Right)
	}
	return out
}

// Program is an ordered set of delta rules.
type Program struct {
	Rules []*Rule

	// Recursive is set by Validate when the delta-dependency graph is
	// cyclic. The paper restricts attention to bounded (non-inherently-
	// recursive) programs; evaluation still terminates either way because
	// delta relations grow monotonically and are bounded by base content.
	Recursive bool
}

// NewProgram builds a program from rules.
func NewProgram(rules ...*Rule) *Program {
	return &Program{Rules: rules}
}

// String renders the program one rule per line.
func (p *Program) String() string {
	var b strings.Builder
	for i, r := range p.Rules {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(r.String())
	}
	return b.String()
}

// DeltaRelations returns the distinct relation names whose deltas appear in
// rule heads, in first-occurrence order.
func (p *Program) DeltaRelations() []string {
	var out []string
	seen := make(map[string]bool)
	for _, r := range p.Rules {
		if !seen[r.Head.Rel] {
			seen[r.Head.Rel] = true
			out = append(out, r.Head.Rel)
		}
	}
	return out
}

// RelationsUsed returns the distinct relation names referenced anywhere in
// the program (heads and bodies), in first-occurrence order.
func (p *Program) RelationsUsed() []string {
	var out []string
	seen := make(map[string]bool)
	add := func(rel string) {
		if !seen[rel] {
			seen[rel] = true
			out = append(out, rel)
		}
	}
	for _, r := range p.Rules {
		add(r.Head.Rel)
		for _, a := range r.Body {
			add(a.Rel)
		}
	}
	return out
}
