package datalog

import (
	"testing"

	"repro/internal/engine"
)

// prepSrc prepares a program source against a schema source, failing the
// test on any parse/validate/prepare error.
func prepSrc(t *testing.T, schemaSrc, progSrc string) *Prepared {
	t.Helper()
	schema, err := engine.ParseSchema(schemaSrc)
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	p, err := ParseAndValidate(progSrc, schema)
	if err != nil {
		t.Fatalf("program: %v", err)
	}
	pp, err := Prepare(p, schema)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	return pp
}

// TestCopartitionSimpleJoin: a join of the derived relation against a
// never-derived one on the same variable is shard-local on that column;
// the never-derived relation is replicated.
func TestCopartitionSimpleJoin(t *testing.T) {
	pp := prepSrc(t, "A(x)\nB(x)", "Delta_A(x) :- A(x), B(x).")
	part := pp.Partitioning()
	if !part.Shardable || !pp.Shardable() {
		t.Fatalf("simple join not shardable: %+v", part)
	}
	if got, ok := part.Keys["A"]; !ok || got != 0 {
		t.Fatalf("key for A = %d (present=%v), want 0", got, ok)
	}
	if len(part.Replicated) != 1 || part.Replicated[0] != "B" {
		t.Fatalf("replicated = %v, want [B]", part.Replicated)
	}
	if len(part.NonPartitionable) != 0 {
		t.Fatalf("non-partitionable = %v, want none", part.NonPartitionable)
	}
	if pp.Rules[0].Shard != ShardLocal {
		t.Fatalf("rule mode = %v, want shard-local", pp.Rules[0].Shard)
	}
}

// TestCopartitionMutualRecursion: two mutually recursive derived relations
// joined on a common variable co-partition on that column.
func TestCopartitionMutualRecursion(t *testing.T) {
	pp := prepSrc(t, "R(x)\nS(x)", `
Delta_R(x) :- R(x), Delta_S(x).
Delta_S(x) :- S(x), Delta_R(x).
`)
	part := pp.Partitioning()
	if !part.Shardable {
		t.Fatalf("mutual recursion not shardable: %+v", part)
	}
	if part.Keys["R"] != 0 || part.Keys["S"] != 0 {
		t.Fatalf("keys = %v, want R:0 S:0", part.Keys)
	}
	if len(part.Replicated) != 0 {
		t.Fatalf("replicated = %v, want none (both relations are derived)", part.Replicated)
	}
	for i, pr := range pp.Rules {
		if pr.Shard != ShardLocal {
			t.Fatalf("rule %d mode = %v, want shard-local", i, pr.Shard)
		}
	}
}

// TestCopartitionKeyChoiceViaHead: when column 0 is a constant in the
// head, the join variable's column is chosen instead — the analysis must
// pick a key the rules actually co-locate on, not just the first column.
func TestCopartitionKeyChoiceViaHead(t *testing.T) {
	pp := prepSrc(t, "G(k, v)\nH(v)", "Delta_G(k, v) :- G(k, v), H(v), Delta_G(k, w), v != w.")
	part := pp.Partitioning()
	if !part.Shardable {
		t.Fatalf("not shardable: %+v", part)
	}
	// Column 0 works (head k co-keys with both body G atoms at column 0);
	// the deterministic search takes the lowest viable column.
	if part.Keys["G"] != 0 {
		t.Fatalf("key for G = %d, want 0", part.Keys["G"])
	}
}

// TestCopartitionCascadeNonPartitionable: a recursive rule whose body
// joins the head relation on a *different* column each hop (the key
// "rotates") admits no partition key at all.
func TestCopartitionCascadeNonPartitionable(t *testing.T) {
	pp := prepSrc(t, "P(a, b)", "Delta_P(x, y) :- P(x, y), Delta_P(y, z).")
	part := pp.Partitioning()
	if part.Shardable || pp.Shardable() {
		t.Fatalf("rotating-key cascade must not be shardable: %+v", part)
	}
	if len(part.NonPartitionable) != 1 || part.NonPartitionable[0] != "P" {
		t.Fatalf("non-partitionable = %v, want [P]", part.NonPartitionable)
	}
	if _, ok := part.Keys["P"]; ok {
		t.Fatalf("non-partitionable relation got a key: %v", part.Keys)
	}
	if pp.Rules[0].Shard != Shard0 {
		t.Fatalf("rule mode = %v, want shard0", pp.Rules[0].Shard)
	}
}

// TestCopartitionSwapSurvivesFixpointFailsSearch: a swap join keeps both
// columns viable per-column (each head column co-keys with *some* column
// of the recursive atom) but no single global key works — the consistency
// search must fail and demote the swap rule to Shard0 while an unrelated
// rule stays shard-local.
func TestCopartitionSwapSurvivesFixpointFailsSearch(t *testing.T) {
	pp := prepSrc(t, "A(x)\nC(a, b)", `
Delta_A(x) :- A(x).
Delta_C(x, y) :- C(x, y), Delta_C(y, x).
`)
	part := pp.Partitioning()
	if part.Shardable {
		t.Fatalf("swap join must not be globally shardable: %+v", part)
	}
	if pp.Rules[0].Shard != ShardLocal {
		t.Fatalf("independent rule demoted: mode = %v", pp.Rules[0].Shard)
	}
	if pp.Rules[1].Shard != Shard0 {
		t.Fatalf("swap rule mode = %v, want shard0", pp.Rules[1].Shard)
	}
	// C stays out of NonPartitionable (columns survived the fixpoint) and
	// still receives a fallback key.
	if len(part.NonPartitionable) != 0 {
		t.Fatalf("non-partitionable = %v, want none", part.NonPartitionable)
	}
	if _, ok := part.Keys["C"]; !ok {
		t.Fatalf("fallback key for C missing: %v", part.Keys)
	}
}

// TestCopartitionConstantsCoKey: equal constants in head and body key
// positions co-locate (every matching tuple carries the constant, so all
// land on one shard); differing constants do not.
func TestCopartitionConstantsCoKey(t *testing.T) {
	pp := prepSrc(t, "F(a, b)", "Delta_F(1, y) :- F(1, y), Delta_F(1, z), y != z.")
	part := pp.Partitioning()
	if !part.Shardable {
		t.Fatalf("constant key join not shardable: %+v", part)
	}
	// Both columns are viable (y co-keys at column 1 too? no — Delta_F's
	// column-1 term is z ≠ y, so only the constant column co-locates).
	if part.Keys["F"] != 0 {
		t.Fatalf("key for F = %d, want the constant column 0", part.Keys["F"])
	}
}

// TestCopartitionDeltaOnlyNeverDerived: a delta atom over a relation no
// rule derives (pre-existing user deletions) leaves that relation
// replicated and the rule shard-local — its assignments complete in the
// shard owning the self atom's tuple.
func TestCopartitionDeltaOnlyNeverDerived(t *testing.T) {
	pp := prepSrc(t, "A(x)\nQ(x)", "Delta_A(x) :- A(x), Delta_Q(x).")
	part := pp.Partitioning()
	if !part.Shardable {
		t.Fatalf("never-derived delta atom must not block sharding: %+v", part)
	}
	if len(part.Replicated) != 1 || part.Replicated[0] != "Q" {
		t.Fatalf("replicated = %v, want [Q]", part.Replicated)
	}
}

// TestShardModeString covers the mode names used in diagnostics.
func TestShardModeString(t *testing.T) {
	if ShardLocal.String() != "shard-local" || Shard0.String() != "shard0" {
		t.Fatalf("mode names: %s, %s", ShardLocal, Shard0)
	}
}
