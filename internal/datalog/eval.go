package datalog

import (
	"fmt"

	"repro/internal/engine"
)

// Assignment is a satisfying assignment α : body(r) → D (§2): one tuple per
// body atom, respecting relation names, repeated variables, constants, and
// the rule's comparisons. Tuples bound to delta atoms are the deleted base
// tuples themselves (delta relations share tuple pointers with base).
type Assignment struct {
	Rule   *Rule
	Tuples []*engine.Tuple
}

// Head returns α(head(r)): the tuple the rule derives a delta for. By
// Def. 3.1 the head's term vector equals the self atom R_i(X), so the head
// tuple is the tuple bound at SelfIdx.
func (a *Assignment) Head() *engine.Tuple {
	return a.Tuples[a.Rule.SelfIdx]
}

// String renders the assignment as "rule-label: [t1, t2, ...]".
func (a *Assignment) String() string {
	s := "["
	for i, t := range a.Tuples {
		if i > 0 {
			s += ", "
		}
		s += t.String()
	}
	return ruleName(a.Rule) + " " + s + "]"
}

// AtomSource lists the relations an atom ranges over during evaluation.
// Multiple relations act as a disjoint union (used by seminaive passes where
// a delta atom reads old ∪ frontier).
type AtomSource []*engine.Relation

func (s AtomSource) totalLen() int {
	n := 0
	for _, r := range s {
		if r != nil {
			n += r.Len()
		}
	}
	return n
}

// DeltaMode selects what delta atoms range over when building sources.
type DeltaMode int

const (
	// DeltaFromDelta: delta atoms read ∆_i content (operational semantics).
	DeltaFromDelta DeltaMode = iota
	// DeltaFromBase: delta atoms read R_i base content — every base tuple
	// is a *possible* deletion. Used by Algorithm 1 to build the provenance
	// of all possible delta tuples (§5.1).
	DeltaFromBase
)

// SourcesFor builds the per-atom sources for evaluating rule against db.
func SourcesFor(db *engine.Database, rule *Rule, mode DeltaMode) []AtomSource {
	out := make([]AtomSource, len(rule.Body))
	for i, a := range rule.Body {
		switch {
		case !a.Delta:
			out[i] = AtomSource{db.Relation(a.Rel)}
		case mode == DeltaFromBase:
			out[i] = AtomSource{db.Relation(a.Rel)}
		default:
			out[i] = AtomSource{db.Delta(a.Rel)}
		}
	}
	return out
}

// EvalRule enumerates every assignment of rule over the given per-atom
// sources, invoking emit for each; emit returning false stops enumeration
// early. The rule must have been validated (SelfIdx resolved). Enumeration
// order is deterministic.
func EvalRule(rule *Rule, sources []AtomSource, emit func(*Assignment) bool) error {
	if rule.SelfIdx < 0 {
		return fmt.Errorf("datalog: rule %s not validated", ruleName(rule))
	}
	if len(sources) != len(rule.Body) {
		return fmt.Errorf("datalog: rule %s: %d sources for %d body atoms", ruleName(rule), len(sources), len(rule.Body))
	}
	cr := rule.compile()
	ev := &evaluator{
		rule:     rule,
		cr:       cr,
		sources:  sources,
		bindings: make([]engine.Value, cr.nvars),
		bound:    make([]bool, cr.nvars),
		tuples:   make([]*engine.Tuple, len(rule.Body)),
		emit:     emit,
	}
	ev.planOrder()
	// Constant-only comparisons gate the whole rule.
	for _, c := range cr.comps {
		if c.left.varID < 0 && c.right.varID < 0 {
			if !c.op.Eval(c.left.constVal, c.right.constVal) {
				return nil
			}
		}
	}
	ev.run(0)
	return nil
}

// EvalRuleOnDB enumerates assignments with the standard operational sources
// (base atoms from R, delta atoms from ∆).
func EvalRuleOnDB(db *engine.Database, rule *Rule, emit func(*Assignment) bool) error {
	return EvalRule(rule, SourcesFor(db, rule, DeltaFromDelta), emit)
}

// HasAssignment reports whether the rule has at least one assignment over
// the database's current state.
func HasAssignment(db *engine.Database, rule *Rule) (bool, error) {
	found := false
	err := EvalRuleOnDB(db, rule, func(*Assignment) bool {
		found = true
		return false
	})
	return found, err
}

// ---------- rule compilation ----------

// cTerm is a compiled term: a variable index or an inline constant.
type cTerm struct {
	varID    int // -1 for constants
	constVal engine.Value
}

type compiledAtom struct {
	terms []cTerm
}

type compiledComp struct {
	left, right cTerm
	op          CompOp
}

type compiledRule struct {
	nvars int
	atoms []compiledAtom
	comps []compiledComp
}

// compile numbers the rule's variables and inlines constants; the result
// is cached on the rule under a sync.Once so concurrent evaluations (e.g.
// core.RunAllParallel) share one plan safely.
func (r *Rule) compile() *compiledRule {
	r.compileOnce.Do(r.doCompile)
	return r.compiled
}

func (r *Rule) doCompile() {
	ids := make(map[string]int)
	intern := func(t Term) cTerm {
		if !t.IsVar() {
			return cTerm{varID: -1, constVal: t.Const}
		}
		id, ok := ids[t.Var]
		if !ok {
			id = len(ids)
			ids[t.Var] = id
		}
		return cTerm{varID: id}
	}
	cr := &compiledRule{}
	cr.atoms = make([]compiledAtom, len(r.Body))
	for i, a := range r.Body {
		ts := make([]cTerm, len(a.Terms))
		for j, t := range a.Terms {
			ts[j] = intern(t)
		}
		cr.atoms[i] = compiledAtom{terms: ts}
	}
	cr.comps = make([]compiledComp, len(r.Comps))
	for i, c := range r.Comps {
		cr.comps[i] = compiledComp{left: intern(c.Left), right: intern(c.Right), op: c.Op}
	}
	cr.nvars = len(ids)
	r.compiled = cr
}

// ---------- evaluation ----------

type evaluator struct {
	rule    *Rule
	cr      *compiledRule
	sources []AtomSource

	order    []int   // body atom indexes in join order
	compAt   [][]int // comparisons runnable after each depth
	bindings []engine.Value
	bound    []bool
	tuples   []*engine.Tuple // per body atom (original indexing)
	fresh    [][]int         // per-depth scratch for binding undo
	emit     func(*Assignment) bool
	stopped  bool
}

// planOrder picks a greedy join order: repeatedly select the atom with the
// most bound terms (constants + already-bound variables), breaking ties by
// smaller source cardinality, then by original position. Comparisons are
// scheduled at the first depth where both sides are bound.
func (ev *evaluator) planOrder() {
	n := len(ev.cr.atoms)
	used := make([]bool, n)
	varBound := make([]bool, ev.cr.nvars)
	ev.order = make([]int, 0, n)

	for len(ev.order) < n {
		best, bestScore, bestSize := -1, -1, 0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			score := 0
			for _, t := range ev.cr.atoms[i].terms {
				if t.varID < 0 || varBound[t.varID] {
					score++
				}
			}
			size := ev.sources[i].totalLen()
			if best == -1 || score > bestScore || (score == bestScore && size < bestSize) {
				best, bestScore, bestSize = i, score, size
			}
		}
		used[best] = true
		ev.order = append(ev.order, best)
		for _, t := range ev.cr.atoms[best].terms {
			if t.varID >= 0 {
				varBound[t.varID] = true
			}
		}
	}

	// Schedule comparisons.
	ev.compAt = make([][]int, n)
	varDepth := make([]int, ev.cr.nvars)
	for i := range varDepth {
		varDepth[i] = -1
	}
	for d, ai := range ev.order {
		for _, t := range ev.cr.atoms[ai].terms {
			if t.varID >= 0 && varDepth[t.varID] < 0 {
				varDepth[t.varID] = d
			}
		}
	}
	for ci, c := range ev.cr.comps {
		d := -1
		for _, t := range []cTerm{c.left, c.right} {
			if t.varID >= 0 {
				if varDepth[t.varID] < 0 {
					d = -2 // unreachable: validation guarantees boundness
					break
				}
				if varDepth[t.varID] > d {
					d = varDepth[t.varID]
				}
			}
		}
		if d >= 0 {
			ev.compAt[d] = append(ev.compAt[d], ci)
		}
	}

	// Per-depth undo scratch, sized to each atom's arity.
	ev.fresh = make([][]int, n)
	for d, ai := range ev.order {
		ev.fresh[d] = make([]int, 0, len(ev.cr.atoms[ai].terms))
	}
}

func (ev *evaluator) termValue(t cTerm) (engine.Value, bool) {
	if t.varID < 0 {
		return t.constVal, true
	}
	if ev.bound[t.varID] {
		return ev.bindings[t.varID], true
	}
	return engine.Value{}, false
}

// run enumerates candidates for the atom at the given join depth.
func (ev *evaluator) run(depth int) {
	if ev.stopped {
		return
	}
	if depth == len(ev.order) {
		asn := &Assignment{Rule: ev.rule, Tuples: append([]*engine.Tuple(nil), ev.tuples...)}
		if !ev.emit(asn) {
			ev.stopped = true
		}
		return
	}
	ai := ev.order[depth]
	atom := ev.cr.atoms[ai]

	// Pick a bound column for index lookup, if any.
	lookupCol := -1
	var lookupVal engine.Value
	for col, t := range atom.terms {
		if v, ok := ev.termValue(t); ok {
			lookupCol, lookupVal = col, v
			break
		}
	}

	tryTuple := func(tp *engine.Tuple) bool {
		if ev.stopped {
			return false
		}
		// Match terms; record fresh bindings for undo.
		fresh := ev.fresh[depth][:0]
		ok := true
		for col, t := range atom.terms {
			v := tp.Vals[col]
			if t.varID < 0 {
				if !t.constVal.Equal(v) {
					ok = false
					break
				}
				continue
			}
			if ev.bound[t.varID] {
				if !ev.bindings[t.varID].Equal(v) {
					ok = false
					break
				}
				continue
			}
			ev.bound[t.varID] = true
			ev.bindings[t.varID] = v
			fresh = append(fresh, t.varID)
		}
		undo := func() {
			for _, id := range fresh {
				ev.bound[id] = false
			}
		}
		if !ok {
			undo()
			return true
		}
		// Run comparisons that just became fully bound.
		for _, ci := range ev.compAt[depth] {
			c := ev.cr.comps[ci]
			lv, _ := ev.termValue(c.left)
			rv, _ := ev.termValue(c.right)
			if !c.op.Eval(lv, rv) {
				undo()
				return true
			}
		}
		ev.tuples[ai] = tp
		ev.run(depth + 1)
		ev.tuples[ai] = nil
		undo()
		return !ev.stopped
	}

	for _, rel := range ev.sources[ai] {
		if rel == nil {
			continue
		}
		if lookupCol >= 0 {
			for _, tp := range rel.Lookup(lookupCol, lookupVal) {
				if !tryTuple(tp) {
					return
				}
			}
		} else {
			rel.Scan(tryTuple)
			if ev.stopped {
				return
			}
		}
	}
}
