package datalog

import (
	"fmt"

	"repro/internal/engine"
)

// Assignment is a satisfying assignment α : body(r) → D (§2): one tuple per
// body atom, respecting relation names, repeated variables, constants, and
// the rule's comparisons. Tuples bound to delta atoms are the deleted base
// tuples themselves (delta relations share tuple pointers with base).
type Assignment struct {
	Rule   *Rule
	Tuples []*engine.Tuple
}

// Head returns α(head(r)): the tuple the rule derives a delta for. By
// Def. 3.1 the head's term vector equals the self atom R_i(X), so the head
// tuple is the tuple bound at SelfIdx.
func (a *Assignment) Head() *engine.Tuple {
	return a.Tuples[a.Rule.SelfIdx]
}

// String renders the assignment as "rule-label: [t1, t2, ...]".
func (a *Assignment) String() string {
	s := "["
	for i, t := range a.Tuples {
		if i > 0 {
			s += ", "
		}
		s += t.String()
	}
	return ruleName(a.Rule) + " " + s + "]"
}

// AtomSource lists the relations an atom ranges over during evaluation.
// Multiple relations act as a disjoint union (used by seminaive passes where
// a delta atom reads old ∪ frontier).
type AtomSource []*engine.Relation

func (s AtomSource) totalLen() int {
	n := 0
	for _, r := range s {
		if r != nil {
			n += r.Len()
		}
	}
	return n
}

// DeltaMode selects what delta atoms range over when building sources.
type DeltaMode int

const (
	// DeltaFromDelta: delta atoms read ∆_i content (operational semantics).
	DeltaFromDelta DeltaMode = iota
	// DeltaFromBase: delta atoms read R_i base content — every base tuple
	// is a *possible* deletion. Used by Algorithm 1 to build the provenance
	// of all possible delta tuples (§5.1).
	DeltaFromBase
)

// SourcesFor builds the per-atom sources for evaluating rule against db.
func SourcesFor(db *engine.Database, rule *Rule, mode DeltaMode) []AtomSource {
	out := make([]AtomSource, len(rule.Body))
	for i, a := range rule.Body {
		switch {
		case !a.Delta:
			out[i] = AtomSource{db.Relation(a.Rel)}
		case mode == DeltaFromBase:
			out[i] = AtomSource{db.Relation(a.Rel)}
		default:
			out[i] = AtomSource{db.Delta(a.Rel)}
		}
	}
	return out
}

// EvalRule enumerates every assignment of rule over the given per-atom
// sources, invoking emit for each; emit returning false stops enumeration
// early. The rule must have been validated (SelfIdx resolved). Enumeration
// order is deterministic.
//
// This entry point plans the join order per call from the live source
// cardinalities. Repeated executions over the same program should go
// through Prepare, which plans once per source shape and reuses pooled
// execution state.
func EvalRule(rule *Rule, sources []AtomSource, emit func(*Assignment) bool) error {
	if rule.SelfIdx < 0 {
		return fmt.Errorf("datalog: rule %s not validated", ruleName(rule))
	}
	if len(sources) != len(rule.Body) {
		return fmt.Errorf("datalog: rule %s: %d sources for %d body atoms", ruleName(rule), len(sources), len(rule.Body))
	}
	cr := rule.compile()
	pl := planFor(cr, func(i int) int { return sources[i].totalLen() })
	ctx := NewExecContext()
	return evalPlan(rule, cr, pl, sources, ctx, emit)
}

// EvalRuleOnDB enumerates assignments with the standard operational sources
// (base atoms from R, delta atoms from ∆).
func EvalRuleOnDB(db *engine.Database, rule *Rule, emit func(*Assignment) bool) error {
	return EvalRule(rule, SourcesFor(db, rule, DeltaFromDelta), emit)
}

// HasAssignment reports whether the rule has at least one assignment over
// the database's current state.
func HasAssignment(db *engine.Database, rule *Rule) (bool, error) {
	found := false
	err := EvalRuleOnDB(db, rule, func(*Assignment) bool {
		found = true
		return false
	})
	return found, err
}

// ---------- rule compilation ----------

// cTerm is a compiled term: a variable index or an inline constant.
type cTerm struct {
	varID    int // -1 for constants
	constVal engine.Value
}

type compiledAtom struct {
	terms []cTerm
}

type compiledComp struct {
	left, right cTerm
	op          CompOp
}

type compiledRule struct {
	nvars int
	atoms []compiledAtom
	comps []compiledComp
	// constFalse marks a rule gated off by a constant-only comparison that
	// evaluates to false: the rule can never have an assignment.
	constFalse bool
}

// compile numbers the rule's variables and inlines constants; the result
// is cached on the rule under a sync.Once so concurrent evaluations (e.g.
// core.RunAllParallel) share one plan safely.
func (r *Rule) compile() *compiledRule {
	r.compileOnce.Do(r.doCompile)
	return r.compiled
}

func (r *Rule) doCompile() {
	ids := make(map[string]int)
	intern := func(t Term) cTerm {
		if !t.IsVar() {
			return cTerm{varID: -1, constVal: t.Const}
		}
		id, ok := ids[t.Var]
		if !ok {
			id = len(ids)
			ids[t.Var] = id
		}
		return cTerm{varID: id}
	}
	cr := &compiledRule{}
	cr.atoms = make([]compiledAtom, len(r.Body))
	for i, a := range r.Body {
		ts := make([]cTerm, len(a.Terms))
		for j, t := range a.Terms {
			ts[j] = intern(t)
		}
		cr.atoms[i] = compiledAtom{terms: ts}
	}
	cr.comps = make([]compiledComp, len(r.Comps))
	for i, c := range r.Comps {
		cc := compiledComp{left: intern(c.Left), right: intern(c.Right), op: c.Op}
		if cc.left.varID < 0 && cc.right.varID < 0 && !cc.op.Eval(cc.left.constVal, cc.right.constVal) {
			cr.constFalse = true
		}
		cr.comps[i] = cc
	}
	cr.nvars = len(ids)
	r.compiled = cr
}

// ---------- join planning ----------

// plan is a static join strategy for one rule under one source shape: the
// join order, the per-depth index-probe column, and the comparison
// schedule. Plans are immutable once built and shared freely between
// concurrent evaluations; EvalRule builds one per call (sized from the
// live sources), Prepare builds one per (rule, source shape) up front.
type plan struct {
	order  []int   // body atom indexes in join order
	lookup []int   // per depth: column probed via index, -1 = full scan
	checks [][]int // per depth: further columns bound before the depth
	compAt [][]int // comparisons runnable after each depth
}

// planFor computes the greedy join order: repeatedly select the atom with
// the most bound terms (constants + already-bound variables), breaking ties
// by smaller weight (live cardinality for per-call plans, a static
// source-shape rank for prepared plans), then by original position.
// Comparisons are scheduled at the first depth where both sides are bound,
// and the index-probe column of each depth — the first column whose term is
// a constant or a variable bound at an earlier depth — is fixed statically.
// Every other column bound before the depth becomes a check column: the
// probe pushes it down as an engine.ColCheck, culling candidates on frozen
// column vectors before their tuples are materialized.
func planFor(cr *compiledRule, weight func(atom int) int) *plan {
	n := len(cr.atoms)
	used := make([]bool, n)
	varBound := make([]bool, cr.nvars)
	pl := &plan{order: make([]int, 0, n), lookup: make([]int, n), checks: make([][]int, n)}

	for len(pl.order) < n {
		best, bestScore, bestWeight := -1, -1, 0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			score := 0
			for _, t := range cr.atoms[i].terms {
				if t.varID < 0 || varBound[t.varID] {
					score++
				}
			}
			w := weight(i)
			if best == -1 || score > bestScore || (score == bestScore && w < bestWeight) {
				best, bestScore, bestWeight = i, score, w
			}
		}
		used[best] = true
		// Fix the probe and check columns before the atom's own variables
		// bind: the first bound column probes the index, the rest become
		// pushed-down equality checks.
		d := len(pl.order)
		pl.lookup[d] = -1
		for col, t := range cr.atoms[best].terms {
			if t.varID < 0 || varBound[t.varID] {
				if pl.lookup[d] < 0 {
					pl.lookup[d] = col
				} else {
					pl.checks[d] = append(pl.checks[d], col)
				}
			}
		}
		pl.order = append(pl.order, best)
		for _, t := range cr.atoms[best].terms {
			if t.varID >= 0 {
				varBound[t.varID] = true
			}
		}
	}

	// Schedule comparisons.
	pl.compAt = make([][]int, n)
	varDepth := make([]int, cr.nvars)
	for i := range varDepth {
		varDepth[i] = -1
	}
	for d, ai := range pl.order {
		for _, t := range cr.atoms[ai].terms {
			if t.varID >= 0 && varDepth[t.varID] < 0 {
				varDepth[t.varID] = d
			}
		}
	}
	for ci, c := range cr.comps {
		d := -1
		for _, t := range []cTerm{c.left, c.right} {
			if t.varID >= 0 {
				if varDepth[t.varID] < 0 {
					d = -2 // unreachable: validation guarantees boundness
					break
				}
				if varDepth[t.varID] > d {
					d = varDepth[t.varID]
				}
			}
		}
		if d >= 0 {
			pl.compAt[d] = append(pl.compAt[d], ci)
		}
	}
	return pl
}

// ---------- evaluation ----------

// ExecContext is the reusable per-evaluation state: variable bindings,
// bound flags, the per-atom tuple vector, and per-depth undo scratch. A
// context is private to one evaluation at a time but can be reused across
// any number of sequential evaluations (of different rules) without
// reallocating; Prepared pools them so repeated runs allocate near-zero.
type ExecContext struct {
	bindings []engine.Value
	bound    []bool
	tuples   []*engine.Tuple
	fresh    [][]int
	checks   [][]engine.ColCheck // per-depth pushed-down check scratch

	// asnChunk/tupChunk are bump allocators for emitted assignments: each
	// emit hands out the next slot of a chunk instead of allocating, cutting
	// per-assignment allocations to ~2 per chunk. Handed-out slots are never
	// reused — the chunks are abandoned to the GC as they fill — so callers
	// may retain emitted Assignments indefinitely, exactly as before.
	asnChunk []Assignment
	tupChunk []*engine.Tuple
}

// NewExecContext returns an empty context; it grows to fit each rule it
// evaluates.
func NewExecContext() *ExecContext { return &ExecContext{} }

// assignment chunk sizes: amortize the two allocations per emitted
// assignment over whole chunks.
const (
	asnChunkLen = 64
	tupChunkLen = 256
)

// newAssignment builds an emitted assignment from the current tuple vector
// using the context's bump allocator.
func (ctx *ExecContext) newAssignment(rule *Rule, tuples []*engine.Tuple) *Assignment {
	if len(ctx.asnChunk) == 0 {
		ctx.asnChunk = make([]Assignment, asnChunkLen)
	}
	asn := &ctx.asnChunk[0]
	ctx.asnChunk = ctx.asnChunk[1:]
	n := len(tuples)
	if len(ctx.tupChunk) < n {
		size := tupChunkLen
		if n > size {
			size = n
		}
		ctx.tupChunk = make([]*engine.Tuple, size)
	}
	buf := ctx.tupChunk[:n:n]
	ctx.tupChunk = ctx.tupChunk[n:]
	copy(buf, tuples)
	asn.Rule = rule
	asn.Tuples = buf
	return asn
}

// ensure sizes the context for a rule with nvars variables and natoms body
// atoms and clears the bound flags (cheap, and it keeps a context that was
// abandoned mid-join — an early stop or a panicking emit callback — from
// poisoning its next evaluation).
func (ctx *ExecContext) ensure(nvars, natoms int) {
	if cap(ctx.bindings) < nvars {
		ctx.bindings = make([]engine.Value, nvars)
		ctx.bound = make([]bool, nvars)
	}
	ctx.bindings = ctx.bindings[:nvars]
	ctx.bound = ctx.bound[:nvars]
	for i := range ctx.bound {
		ctx.bound[i] = false
	}
	if cap(ctx.tuples) < natoms {
		ctx.tuples = make([]*engine.Tuple, natoms)
	}
	ctx.tuples = ctx.tuples[:natoms]
	for len(ctx.fresh) < natoms {
		ctx.fresh = append(ctx.fresh, nil)
	}
	for len(ctx.checks) < natoms {
		ctx.checks = append(ctx.checks, nil)
	}
}

type evaluator struct {
	rule    *Rule
	cr      *compiledRule
	pl      *plan
	sources []AtomSource
	ctx     *ExecContext
	emit    func(*Assignment) bool
	stopped bool
}

// evalPlan enumerates the rule's assignments following the given plan,
// using ctx for all mutable state. The sources must match the plan's shape
// (same per-atom indexing as rule.Body).
func evalPlan(rule *Rule, cr *compiledRule, pl *plan, sources []AtomSource, ctx *ExecContext, emit func(*Assignment) bool) error {
	if cr.constFalse {
		return nil // gated off by a constant-only comparison
	}
	ctx.ensure(cr.nvars, len(cr.atoms))
	ev := &evaluator{rule: rule, cr: cr, pl: pl, sources: sources, ctx: ctx, emit: emit}
	ev.run(0)
	if ev.stopped {
		// Early stop leaves bindings mid-join; scrub so the context can be
		// reused (normal completion unwinds every binding on its own).
		for i := range ctx.bound {
			ctx.bound[i] = false
		}
	}
	return nil
}

func (ev *evaluator) termValue(t cTerm) (engine.Value, bool) {
	if t.varID < 0 {
		return t.constVal, true
	}
	if ev.ctx.bound[t.varID] {
		return ev.ctx.bindings[t.varID], true
	}
	return engine.Value{}, false
}

// run enumerates candidates for the atom at the given join depth.
func (ev *evaluator) run(depth int) {
	if ev.stopped {
		return
	}
	ctx := ev.ctx
	if depth == len(ev.pl.order) {
		if !ev.emit(ctx.newAssignment(ev.rule, ctx.tuples)) {
			ev.stopped = true
		}
		return
	}
	ai := ev.pl.order[depth]
	atom := ev.cr.atoms[ai]

	// The probe and check columns are fixed by the plan; resolve their
	// values now. Checks are pushed down into the probe/scan so the engine
	// can cull failing frozen candidates on column vectors.
	lookupCol := ev.pl.lookup[depth]
	var lookupVal engine.Value
	if lookupCol >= 0 {
		lookupVal, _ = ev.termValue(atom.terms[lookupCol])
	}
	checks := ctx.checks[depth][:0]
	for _, col := range ev.pl.checks[depth] {
		v, _ := ev.termValue(atom.terms[col])
		checks = append(checks, engine.ColCheck{Col: col, Val: v})
	}
	ctx.checks[depth] = checks

	tryTuple := func(tp *engine.Tuple) bool {
		if ev.stopped {
			return false
		}
		// Match terms; record fresh bindings for undo.
		fresh := ctx.fresh[depth][:0]
		ok := true
		for col, t := range atom.terms {
			v := tp.Vals[col]
			if t.varID < 0 {
				if !t.constVal.Equal(v) {
					ok = false
					break
				}
				continue
			}
			if ctx.bound[t.varID] {
				if !ctx.bindings[t.varID].Equal(v) {
					ok = false
					break
				}
				continue
			}
			ctx.bound[t.varID] = true
			ctx.bindings[t.varID] = v
			fresh = append(fresh, t.varID)
		}
		ctx.fresh[depth] = fresh
		undo := func() {
			for _, id := range fresh {
				ctx.bound[id] = false
			}
		}
		if !ok {
			undo()
			return true
		}
		// Run comparisons that just became fully bound.
		for _, ci := range ev.pl.compAt[depth] {
			c := ev.cr.comps[ci]
			lv, _ := ev.termValue(c.left)
			rv, _ := ev.termValue(c.right)
			if !c.op.Eval(lv, rv) {
				undo()
				return true
			}
		}
		ctx.tuples[ai] = tp
		ev.run(depth + 1)
		ctx.tuples[ai] = nil
		undo()
		return !ev.stopped
	}

	for _, rel := range ev.sources[ai] {
		if rel == nil {
			continue
		}
		if lookupCol >= 0 {
			rel.LookupEach(lookupCol, lookupVal, checks, tryTuple)
		} else {
			rel.ScanChecked(checks, tryTuple)
		}
		if ev.stopped {
			return
		}
	}
}
