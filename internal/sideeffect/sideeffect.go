// Package sideeffect implements the source side-effect variant of deletion
// propagation, combined with delta programs as the paper proposes (§7,
// "Deletion propagation"): given a conjunctive-query view, a view tuple to
// remove, and a delta program describing the database's repair cascades,
// find the cheapest set of source deletions that (a) removes the view
// tuple and (b) leaves the database stable — counting the cascade cost the
// delta program imposes.
//
// The solver reduces to the same Min-Ones-SAT machinery as the paper's
// Algorithm 1: every witness (assignment deriving the view tuple) becomes
// a clause "delete at least one witness tuple", and the delta program's
// positivized provenance contributes its stability clauses; minimizing
// true variables minimizes total deletions including cascades.
package sideeffect

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/sat"
)

// View is a conjunctive query over base relations: Head(X) :- Body....
// It reuses the datalog machinery with an ordinary (non-delta) head; body
// atoms must be non-delta.
type View struct {
	// Name is the view's output relation name (display only).
	Name string
	// HeadVars are the distinguished variables, in output-column order.
	HeadVars []string
	// Body holds the base atoms.
	Body []datalog.Atom
	// Comps holds comparison predicates.
	Comps []datalog.Comparison

	rule *datalog.Rule     // internal evaluation vehicle
	prep *datalog.Prepared // lazy single-rule plan; built on first Eval
}

// ParseView parses "Name(x, y) :- R(x, z), S(z, y), x < 5." into a View.
// The head relation name is arbitrary (it names the view); body atoms must
// be base atoms from the schema.
func ParseView(src string, schema *engine.Schema) (*View, error) {
	p, err := datalog.Parse(src)
	if err != nil {
		return nil, err
	}
	if len(p.Rules) != 1 {
		return nil, fmt.Errorf("sideeffect: a view is a single rule, got %d", len(p.Rules))
	}
	r := p.Rules[0]
	v := &View{Name: r.Head.Rel}
	for _, t := range r.Head.Terms {
		if !t.IsVar() {
			return nil, fmt.Errorf("sideeffect: view head terms must be variables, got %s", t)
		}
		v.HeadVars = append(v.HeadVars, t.Var)
	}
	bound := make(map[string]bool)
	for _, a := range r.Body {
		if a.Delta {
			return nil, fmt.Errorf("sideeffect: view bodies must not contain delta atoms (%s)", a)
		}
		if schema != nil {
			rs := schema.Relation(a.Rel)
			if rs == nil {
				return nil, fmt.Errorf("sideeffect: unknown relation %q", a.Rel)
			}
			if rs.Arity() != len(a.Terms) {
				return nil, fmt.Errorf("sideeffect: atom %s arity mismatch", a)
			}
		}
		for _, t := range a.Terms {
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
		v.Body = append(v.Body, a)
	}
	for _, hv := range v.HeadVars {
		if !bound[hv] {
			return nil, fmt.Errorf("sideeffect: head variable %s not bound in body", hv)
		}
	}
	v.Comps = r.Comps
	v.buildRule()
	return v, nil
}

// buildRule assembles the internal evaluation rule. Views have ordinary
// heads, so the delta-rule self-atom requirement does not apply; we bypass
// Validate and compile the rule directly by marking SelfIdx on a synthetic
// basis (EvalRule only needs SelfIdx ≥ 0 to run; Head() is meaningless for
// views and unused).
func (v *View) buildRule() {
	v.rule = datalog.NewRule(v.Name,
		datalog.Atom{Delta: true, Rel: v.Body[0].Rel, Terms: v.Body[0].Terms},
		v.Body, v.Comps...)
	v.rule.SelfIdx = 0
}

// Row is one output tuple of the view.
type Row struct {
	Values []engine.Value
	// Witnesses lists, per witness assignment, the base tuples involved.
	Witnesses [][]*engine.Tuple
}

// Key renders the row's values for display and matching in reports.
func (r *Row) Key() string { return valuesKey(r.Values) }

// valuesKey renders a value list as "view(...)" for row grouping and
// display. View rows are projections, not stored tuples, so they have no
// interned TupleID; a rendered key is their only identity. The encoding is
// injective: strings are quoted (embedded commas or quotes cannot collide)
// and numerics are normalized so 1 and 1.0 group together, matching
// Value.Equal.
func valuesKey(vals []engine.Value) string {
	var b strings.Builder
	b.WriteString("view(")
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(',')
		}
		switch v.Kind {
		case engine.KindString:
			b.WriteString(strconv.Quote(v.Str))
		case engine.KindInt:
			b.WriteString(strconv.FormatInt(v.Int, 10))
		default:
			// Normalize integral floats to int form so 1.0 groups with 1,
			// mirroring Value.Equal; non-integral floats format exactly.
			if f := v.Flt; f == float64(int64(f)) {
				b.WriteString(strconv.FormatInt(int64(f), 10))
			} else {
				b.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
			}
		}
	}
	b.WriteByte(')')
	return b.String()
}

// MatchesRow reports whether the row's values equal target (cross-kind
// numeric equality, as in Value.Equal).
func (r *Row) MatchesRow(target []engine.Value) bool {
	if len(r.Values) != len(target) {
		return false
	}
	for i := range target {
		if !r.Values[i].Equal(target[i]) {
			return false
		}
	}
	return true
}

// Eval computes the view over the database's live base relations,
// grouping witness assignments by output row. The first Eval prepares the
// view's join plan against the database's schema; later calls reuse it.
func (v *View) Eval(db *engine.Database) ([]*Row, error) {
	varIdx := make(map[string]int, len(v.HeadVars))
	for i, hv := range v.HeadVars {
		varIdx[hv] = i
	}
	if v.prep == nil {
		// The view rule passes validation (its synthetic delta head mirrors
		// body[0]), so it prepares like any single-rule program.
		prep, err := datalog.Prepare(datalog.NewProgram(v.rule), db.Schema)
		if err != nil {
			return nil, fmt.Errorf("sideeffect: preparing view: %w", err)
		}
		v.prep = prep
	}
	ctx := v.prep.AcquireContext()
	defer v.prep.ReleaseContext(ctx)
	rows := make(map[string]*Row)
	var order []string
	err := v.prep.Rules[0].EvalFromBase(db, false, ctx, func(asn *datalog.Assignment) bool {
		// Project the head variables out of the assignment.
		vals := make([]engine.Value, len(v.HeadVars))
		for bi, a := range v.Body {
			for col, t := range a.Terms {
				if t.IsVar() {
					if i, ok := varIdx[t.Var]; ok {
						vals[i] = asn.Tuples[bi].Vals[col]
					}
				}
			}
		}
		key := valuesKey(vals)
		row := rows[key]
		if row == nil {
			row = &Row{Values: vals}
			rows[key] = row
			order = append(order, key)
		}
		row.Witnesses = append(row.Witnesses, asn.Tuples)
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make([]*Row, 0, len(order))
	for _, k := range order {
		out = append(out, rows[k])
	}
	return out, nil
}

// ErrNoSuchRow reports that the requested view row does not exist (a
// caller-input error, distinguished so serving layers can map it to a
// client-error status).
var ErrNoSuchRow = errors.New("sideeffect: view has no row")

// Options tunes the side-effect solver.
type Options struct {
	// MaxNodes is the Min-Ones-SAT budget (0 = solver default).
	MaxNodes int64
	// MaxClauses caps the stability formula (0 = core default).
	MaxClauses int
	// Ctx, when non-nil, cancels the solve: it is polled inside the SAT
	// search and checked between phases, so a canceled request returns
	// ctx.Err() instead of blocking on a hard instance.
	Ctx context.Context
}

// Result reports a side-effect solution.
type Result struct {
	// Deleted is the chosen source deletion set (including cascades), in
	// deterministic order.
	Deleted []*engine.Tuple
	// Optimal reports whether the solver proved minimality.
	Optimal bool
	// ViewRowsBefore/After are the view cardinalities before and after.
	ViewRowsBefore, ViewRowsAfter int
	// Elapsed is the total solve time.
	Elapsed time.Duration
}

// Size returns the number of deleted tuples.
func (r *Result) Size() int { return len(r.Deleted) }

// DeleteViewTuple finds a minimum set of base deletions that removes the
// view row with the given values while keeping the database stable w.r.t.
// the delta program, and returns it with the repaired database. The
// program may be nil (pure deletion propagation, no cascade constraints).
func DeleteViewTuple(db *engine.Database, v *View, target []engine.Value, p *datalog.Program, opts Options) (*Result, *engine.Database, error) {
	start := time.Now()
	rows, err := v.Eval(db)
	if err != nil {
		return nil, nil, err
	}
	var row *Row
	for _, r := range rows {
		if r.MatchesRow(target) {
			row = r
			break
		}
	}
	if row == nil {
		return nil, nil, fmt.Errorf("%w %v", ErrNoSuchRow, target)
	}

	// Build the formula: per witness, delete at least one participating
	// tuple; plus the program's stability clauses (Algorithm 1 form).
	// Tuples are identified by interned ID throughout; witness clauses get
	// the synthetic head 0 (the view row is not a stored tuple).
	formula := provenance.NewFormula()
	for _, w := range row.Witnesses {
		c := provenance.Clause{}
		seen := make(map[engine.TupleID]bool, len(w))
		for _, tp := range w {
			if !seen[tp.TID] {
				seen[tp.TID] = true
				// The requirement is the *opposite* of a stability clause —
				// we NEED one deletion per witness. We encode witnesses
				// directly as positive SAT clauses below, so collect them
				// as Pos here.
				c.Pos = append(c.Pos, tp.TID)
			}
		}
		formula.Add(0, c)
	}

	maxClauses := opts.MaxClauses
	if maxClauses <= 0 {
		maxClauses = core.DefaultMaxClauses
	}
	stability := provenance.NewFormula()
	var progPrep *datalog.Prepared
	if p != nil {
		// Prepare the delta program once: its FromBase plans serve both the
		// stability clauses here and the final stability verification.
		progPrep, err = datalog.Prepare(p, db.Schema)
		if err != nil {
			return nil, nil, err
		}
		ctx := progPrep.AcquireContext()
		var evalErr error
		for _, pr := range progPrep.Rules {
			err := pr.EvalFromBase(db, false, ctx, func(asn *datalog.Assignment) bool {
				stability.Add(asn.Head().TID, provenance.ClauseOf(asn))
				if stability.Len() > maxClauses {
					evalErr = fmt.Errorf("sideeffect: stability formula exceeded %d clauses", maxClauses)
					return false
				}
				return true
			})
			if err != nil {
				progPrep.ReleaseContext(ctx)
				return nil, nil, err
			}
			if evalErr != nil {
				progPrep.ReleaseContext(ctx)
				return nil, nil, evalErr
			}
		}
		progPrep.ReleaseContext(ctx)
	}
	if err := core.CtxErr(opts.Ctx); err != nil {
		return nil, nil, err
	}

	// Variable space: all tuples mentioned anywhere.
	varOf := make(map[engine.TupleID]int)
	ids := []engine.TupleID{}
	intern := func(id engine.TupleID) int {
		if v, ok := varOf[id]; ok {
			return v
		}
		v := len(ids) + 1
		varOf[id] = v
		ids = append(ids, id)
		return v
	}
	var clauses [][]int
	for _, c := range formula.Clauses {
		lits := make([]int, 0, len(c.Pos))
		for _, id := range c.Pos {
			lits = append(lits, intern(id)) // witness: delete one of these
		}
		clauses = append(clauses, lits)
	}
	for _, c := range stability.Clauses {
		lits := make([]int, 0, len(c.Pos)+len(c.Neg))
		for _, id := range c.Pos {
			lits = append(lits, intern(id))
		}
		for _, id := range c.Neg {
			lits = append(lits, -intern(id))
		}
		clauses = append(clauses, lits)
	}
	cnf := sat.NewFormula(len(ids))
	for _, lits := range clauses {
		if err := cnf.AddClause(lits...); err != nil {
			return nil, nil, err
		}
	}
	var cancel func() bool
	if opts.Ctx != nil {
		cancel = func() bool { return opts.Ctx.Err() != nil }
	}
	solved := sat.MinOnes(cnf, sat.Options{MaxNodes: opts.MaxNodes, Cancel: cancel})
	if err := core.CtxErr(opts.Ctx); err != nil {
		return nil, nil, err
	}
	if !solved.Satisfiable {
		return nil, nil, fmt.Errorf("sideeffect: no deletion set removes the view tuple")
	}

	work := db.Fork()
	var deleted []*engine.Tuple
	for i, id := range ids {
		if solved.Assignment[i+1] {
			t := db.LookupID(id)
			if t == nil || !work.DeleteTupleToDelta(t) {
				return nil, nil, fmt.Errorf("sideeffect: unknown tuple t%d", id)
			}
			deleted = append(deleted, t)
		}
	}
	// Verify: view tuple gone and (when a program is given) database stable.
	after, err := v.Eval(work)
	if err != nil {
		return nil, nil, err
	}
	for _, r := range after {
		if r.MatchesRow(target) {
			return nil, nil, fmt.Errorf("sideeffect: internal error: view tuple survived")
		}
	}
	if p != nil {
		stable, err := core.CheckStableP(work, progPrep)
		if err != nil {
			return nil, nil, err
		}
		if !stable {
			return nil, nil, fmt.Errorf("sideeffect: internal error: repair not stable")
		}
	}
	res := &Result{
		Deleted:        deleted,
		Optimal:        solved.Optimal,
		ViewRowsBefore: len(rows),
		ViewRowsAfter:  len(after),
		Elapsed:        time.Since(start),
	}
	return res, work, nil
}
