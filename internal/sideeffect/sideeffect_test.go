package sideeffect

import (
	"testing"

	"repro/internal/datalog"
	"repro/internal/engine"
)

func schemaRS(t *testing.T) *engine.Schema {
	t.Helper()
	s := engine.NewSchema()
	s.MustAddRelation("R", "r", "a", "b")
	s.MustAddRelation("S", "s", "b", "c")
	return s
}

// joinDB: R(1,10) R(2,10) R(3,20); S(10,100) S(20,200).
func joinDB(t *testing.T) *engine.Database {
	t.Helper()
	db := engine.NewDatabase(schemaRS(t))
	db.MustInsert("R", engine.Int(1), engine.Int(10))
	db.MustInsert("R", engine.Int(2), engine.Int(10))
	db.MustInsert("R", engine.Int(3), engine.Int(20))
	db.MustInsert("S", engine.Int(10), engine.Int(100))
	db.MustInsert("S", engine.Int(20), engine.Int(200))
	return db
}

func TestParseViewValidation(t *testing.T) {
	s := schemaRS(t)
	if _, err := ParseView("V(a, c) :- R(a, b), S(b, c).", s); err != nil {
		t.Fatalf("valid view rejected: %v", err)
	}
	bad := []struct {
		src, why string
	}{
		{"V(a) :- R(a, b). V2(a) :- R(a, b).", "two rules"},
		{"V(a, 3) :- R(a, b).", "constant head"},
		{"V(z) :- R(a, b).", "unbound head var"},
		{"V(a) :- R(a, b), Delta_S(b, c).", "delta atom"},
		{"V(a) :- Mystery(a).", "unknown relation"},
		{"V(a) :- R(a).", "arity mismatch"},
	}
	for _, c := range bad {
		if _, err := ParseView(c.src, s); err == nil {
			t.Errorf("view with %s should be rejected: %s", c.why, c.src)
		}
	}
}

func TestViewEval(t *testing.T) {
	db := joinDB(t)
	v, err := ParseView("V(a, c) :- R(a, b), S(b, c).", db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := v.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	// V = {(1,100), (2,100), (3,200)}.
	if len(rows) != 3 {
		t.Fatalf("view rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if len(r.Witnesses) != 1 {
			t.Fatalf("row %v witnesses = %d, want 1", r.Values, len(r.Witnesses))
		}
	}
}

func TestViewEvalProjectionMergesWitnesses(t *testing.T) {
	db := joinDB(t)
	// Project only c: V(c) has (100) with two witnesses (via R(1,10), R(2,10)).
	v, err := ParseView("V(c) :- R(a, b), S(b, c).", db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := v.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	var r100 *Row
	for _, r := range rows {
		if r.MatchesRow([]engine.Value{engine.Int(100)}) {
			r100 = r
		}
	}
	if r100 == nil || len(r100.Witnesses) != 2 {
		t.Fatalf("(100) row = %v, want 2 witnesses", r100)
	}
}

func TestDeleteViewTupleNoProgram(t *testing.T) {
	db := joinDB(t)
	v, _ := ParseView("V(c) :- R(a, b), S(b, c).", db.Schema)
	// Removing (100) requires breaking both witnesses; cheapest is the
	// shared tuple S(10,100): one deletion.
	res, repaired, err := DeleteViewTuple(db, v, []engine.Value{engine.Int(100)}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 1 || res.Deleted[0].Rel != "S" {
		t.Fatalf("deletion = %v, want the shared S tuple", res.Deleted)
	}
	if !res.Optimal {
		t.Fatal("tiny instance should be solved optimally")
	}
	if res.ViewRowsBefore != 2 || res.ViewRowsAfter != 1 {
		t.Fatalf("view rows %d -> %d, want 2 -> 1", res.ViewRowsBefore, res.ViewRowsAfter)
	}
	// Side effect check: the other row survives.
	rows, _ := v.Eval(repaired)
	if len(rows) != 1 || !rows[0].Values[0].Equal(engine.Int(200)) {
		t.Fatalf("surviving rows = %v", rows)
	}
}

func TestDeleteViewTupleWithCascade(t *testing.T) {
	db := joinDB(t)
	v, _ := ParseView("V(c) :- R(a, b), S(b, c).", db.Schema)
	// Cascade program: deleting an S tuple forces deleting all R tuples
	// joined to it. Now removing (100) via S(10,100) costs 1 + 2 cascade;
	// deleting R(1,10) and R(2,10) costs 2 — the solver must switch.
	p, err := datalog.ParseAndValidate(`
Delta_R(a, b) :- R(a, b), Delta_S(b, c).
`, db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	res, repaired, err := DeleteViewTuple(db, v, []engine.Value{engine.Int(100)}, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 2 {
		t.Fatalf("deletions = %v, want the two R tuples", res.Deleted)
	}
	for _, tp := range res.Deleted {
		if tp.Rel != "R" {
			t.Fatalf("cascade-aware repair should delete R tuples, got %v", tp)
		}
	}
	if repaired.Relation("S").Len() != 2 {
		t.Fatal("S must be untouched")
	}
}

func TestDeleteViewTupleMissingRow(t *testing.T) {
	db := joinDB(t)
	v, _ := ParseView("V(c) :- R(a, b), S(b, c).", db.Schema)
	if _, _, err := DeleteViewTuple(db, v, []engine.Value{engine.Int(999)}, nil, Options{}); err == nil {
		t.Fatal("missing view row should error")
	}
}

func TestDeleteViewTupleDoesNotMutateInput(t *testing.T) {
	db := joinDB(t)
	before := db.TotalTuples()
	v, _ := ParseView("V(a, c) :- R(a, b), S(b, c).", db.Schema)
	_, _, err := DeleteViewTuple(db, v, []engine.Value{engine.Int(1), engine.Int(100)}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if db.TotalTuples() != before || db.TotalDeltaTuples() != 0 {
		t.Fatal("input database mutated")
	}
}

func TestDeleteViewTupleSelfJoin(t *testing.T) {
	// Self-join view: pairs of R tuples sharing b.
	db := joinDB(t)
	v, err := ParseView("V(a1, a2) :- R(a1, b), R(a2, b), a1 < a2.", db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := v.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 { // only (1,2) via b=10
		t.Fatalf("rows = %v", rows)
	}
	res, _, err := DeleteViewTuple(db, v, []engine.Value{engine.Int(1), engine.Int(2)}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 1 || res.Deleted[0].Rel != "R" {
		t.Fatalf("self-join repair = %v, want one R tuple", res.Deleted)
	}
}
