// Package viz renders repair artifacts as Graphviz DOT: the layered
// provenance graph of §5.2 (the paper's Figure 5), explanation trees, and
// a semantics-comparison diagram. The output is plain DOT text; render it
// with `dot -Tsvg` or any graphviz viewer.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/provenance"
)

// escape quotes a DOT label.
func escape(s string) string {
	return strings.ReplaceAll(s, `"`, `\"`)
}

// ProvenanceDOT renders the provenance graph in the paper's Figure 5
// layout: base tuples as boxes annotated with their benefits, delta tuples
// as ellipses ranked by derivation layer, and an edge from every
// participating tuple to each delta tuple it helps derive (solid for
// positive participation, dashed for delta dependencies).
//
// The graph identifies tuples by interned ID; name resolves an ID to its
// display label (typically Database.LookupID + Tuple.Key). A nil name
// renders bare "t<id>" labels.
func ProvenanceDOT(g *provenance.Graph, name func(engine.TupleID) string) string {
	if name == nil {
		name = func(id engine.TupleID) string { return fmt.Sprintf("t%d", id) }
	}
	var b strings.Builder
	b.WriteString("digraph provenance {\n")
	b.WriteString("  rankdir=BT;\n  node [fontsize=10];\n")

	benefits := g.Benefits()

	// Delta nodes grouped per layer with rank=same.
	for layer := 1; layer <= g.NumLayers; layer++ {
		heads := g.LayerHeads(layer)
		if len(heads) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  { rank=same; // layer %d\n", layer)
		for _, h := range heads {
			n := name(h)
			fmt.Fprintf(&b, "    \"d:%s\" [label=\"Δ(%s)\", shape=ellipse];\n", escape(n), escape(n))
		}
		b.WriteString("  }\n")
	}

	// Base tuple nodes: every tuple mentioned in any clause.
	baseSeen := make(map[engine.TupleID]bool)
	var baseOrder []string
	benefitOf := make(map[string]int)
	for _, h := range g.Heads {
		for _, c := range g.Assignments[h] {
			for _, id := range c.Pos {
				if !baseSeen[id] {
					baseSeen[id] = true
					n := name(id)
					baseOrder = append(baseOrder, n)
					benefitOf[n] = benefits[id]
				}
			}
		}
	}
	sort.Strings(baseOrder)
	for _, n := range baseOrder {
		fmt.Fprintf(&b, "  \"t:%s\" [label=\"%s, %d\", shape=box];\n", escape(n), escape(n), benefitOf[n])
	}

	// Edges: per assignment, positive tuples (solid) and delta deps
	// (dashed) point to the derived delta node.
	edgeSeen := make(map[string]bool)
	edge := func(from, to, style string) {
		key := from + "→" + to + style
		if edgeSeen[key] {
			return
		}
		edgeSeen[key] = true
		fmt.Fprintf(&b, "  %s -> %s [style=%s];\n", from, to, style)
	}
	for _, h := range g.Heads {
		target := fmt.Sprintf("\"d:%s\"", escape(name(h)))
		for _, c := range g.Assignments[h] {
			for _, id := range c.Pos {
				edge(fmt.Sprintf("\"t:%s\"", escape(name(id))), target, "solid")
			}
			for _, id := range c.Neg {
				edge(fmt.Sprintf("\"d:%s\"", escape(name(id))), target, "dashed")
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// ExplanationDOT renders one explanation tree: each deleted tuple is a
// node; "after" dependencies are edges toward the initiating deletion.
func ExplanationDOT(e *core.Explanation) string {
	var b strings.Builder
	b.WriteString("digraph explanation {\n  rankdir=BT;\n  node [shape=box, fontsize=10];\n")
	seen := make(map[string]bool)
	var walk func(x *core.Explanation)
	walk = func(x *core.Explanation) {
		id := fmt.Sprintf("\"%s\"", escape(x.Tuple))
		if !seen[x.Tuple] {
			seen[x.Tuple] = true
			label := fmt.Sprintf("%s\\nlayer %d", escape(x.Tuple), x.Layer)
			if len(x.Because) > 0 {
				label += "\\nwith " + escape(strings.Join(x.Because, ", "))
			}
			fmt.Fprintf(&b, "  %s [label=\"%s\"];\n", id, label)
		}
		for _, dep := range x.After {
			fmt.Fprintf(&b, "  %s -> \"%s\";\n", id, escape(dep.Tuple))
			walk(dep)
		}
	}
	walk(e)
	b.WriteString("}\n")
	return b.String()
}

// ComparisonDOT renders the Figure 3-style relationship diagram for a set
// of computed results: one node per semantics with its size, and subset
// edges where containment holds on this instance.
func ComparisonDOT(results map[core.Semantics]*core.Result) string {
	var b strings.Builder
	b.WriteString("digraph comparison {\n  rankdir=LR;\n  node [shape=box, fontsize=11];\n")
	for _, sem := range core.AllSemantics {
		r := results[sem]
		if r == nil {
			continue
		}
		fmt.Fprintf(&b, "  %s [label=\"%s\\n%d deleted\"];\n", sem, sem, r.Size())
	}
	for _, a := range core.AllSemantics {
		for _, bSem := range core.AllSemantics {
			if a == bSem || results[a] == nil || results[bSem] == nil {
				continue
			}
			if results[a].SubsetOf(results[bSem]) && !results[a].SameSet(results[bSem]) {
				fmt.Fprintf(&b, "  %s -> %s [label=\"⊆\"];\n", a, bSem)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
