package viz

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/programs"
)

func runningExample(t *testing.T) (*engine.Database, *core.Result, map[core.Semantics]*core.Result) {
	t.Helper()
	db := programs.RunningExampleDB()
	p, err := programs.RunningExampleProgram()
	if err != nil {
		t.Fatal(err)
	}
	results, err := core.RunAll(db, p)
	if err != nil {
		t.Fatal(err)
	}
	return db, results[core.SemEnd], results
}

func TestProvenanceDOTFigure5(t *testing.T) {
	db := programs.RunningExampleDB()
	p, err := programs.RunningExampleProgram()
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.CaptureProvenance(db, p)
	if err != nil {
		t.Fatal(err)
	}
	dot := ProvenanceDOT(g, func(id engine.TupleID) string { return db.LookupID(id).Key() })
	// Structural spot checks against Figure 5.
	for _, want := range []string{
		"digraph provenance",
		"// layer 1", "// layer 2", "// layer 3", "// layer 4",
		`Δ(Grant(i2,\"ERC\")`,   // the initiating delta
		"style=dashed",          // delta dependencies
		"style=solid",           // positive participation
		`Writes(i4,i6), 3`,      // w1's benefit from Figure 5
		`Grant(i2,\"ERC\"), -1`, // g2's benefit
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Balanced braces: crude well-formedness check.
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Error("unbalanced braces in DOT output")
	}
}

func TestExplanationDOT(t *testing.T) {
	db := programs.RunningExampleDB()
	p, err := programs.RunningExampleProgram()
	if err != nil {
		t.Fatal(err)
	}
	ex, err := core.NewExplainer(db, p)
	if err != nil {
		t.Fatal(err)
	}
	key := engine.ContentKey("Writes", []engine.Value{engine.Int(4), engine.Int(6)})
	e := ex.Explain(key)
	if e == nil {
		t.Fatal("w1 should be explainable")
	}
	dot := ExplanationDOT(e)
	for _, want := range []string{
		"digraph explanation",
		"layer 3", "layer 2", "layer 1",
		"->",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Three nodes in the chain w1 -> a2 -> g2.
	if got := strings.Count(dot, "label="); got != 3 {
		t.Errorf("node count = %d, want 3", got)
	}
}

func TestComparisonDOT(t *testing.T) {
	_, _, results := runningExample(t)
	dot := ComparisonDOT(results)
	for _, want := range []string{
		"independent [label=\"independent\\n3 deleted\"]",
		"step [label=\"step\\n5 deleted\"]",
		"stage [label=\"stage\\n7 deleted\"]",
		"end [label=\"end\\n8 deleted\"]",
		"step -> stage", // step ⊆ stage on this instance
		"stage -> end",  // stage ⊆ end
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Independent is not contained in anything here.
	if strings.Contains(dot, "independent ->") {
		t.Error("independent should have no subset edges on the running example")
	}
}

func TestComparisonDOTPartialMap(t *testing.T) {
	_, endRes, _ := runningExample(t)
	dot := ComparisonDOT(map[core.Semantics]*core.Result{core.SemEnd: endRes})
	if !strings.Contains(dot, "end") || strings.Contains(dot, "step") {
		t.Errorf("partial map render wrong:\n%s", dot)
	}
}
