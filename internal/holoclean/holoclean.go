// Package holoclean implements the cell-repair baseline the paper compares
// against (§6, "Comparison with HoloClean"). HoloClean treats denial
// constraints as soft constraints and repairs individual cells using
// statistical signal from the clean portion of the data; consequently it
// (a) repairs cells rather than deleting tuples, (b) under-repairs
// increasingly as the error rate grows (Table 4's −26…−693 column), and
// (c) can leave residual DC violations (Table 5). This package simulates
// exactly that behavioural signature with a majority-vote model over
// attribute co-occurrence, gated by a confidence threshold — without the
// original's Torch/ML stack (see DESIGN.md §3, substitution 5).
//
// Scope mirrors the paper's comparison setup: a single extended Author
// table Author(aid, name, oid, organization) with DC1-DC4 (the default
// single-table input of the HoloClean release the paper used).
package holoclean

import (
	"time"

	"repro/internal/datalog"
	"repro/internal/engine"
)

// Config tunes the repair model.
type Config struct {
	// ConfidenceThreshold is the minimum fraction of co-occurrence
	// evidence that must agree on a repair value before a cell is changed;
	// 0 means DefaultConfidence. Lower thresholds repair more cells but
	// risk wrong repairs — HoloClean's precision/recall dial.
	ConfidenceThreshold float64
}

// DefaultConfidence matches a precision-oriented HoloClean configuration.
const DefaultConfidence = 0.9

// Report summarizes one repair run.
type Report struct {
	// NoisyCells is the number of cells flagged by DC violation detection.
	NoisyCells int
	// RepairedCells is the number of cells actually rewritten.
	RepairedCells int
	// RepairedTuples is the number of tuples with at least one repaired
	// cell (the paper's Table 4 counts repaired tuples).
	RepairedTuples int
	// Elapsed is the wall-clock repair time.
	Elapsed time.Duration
}

// Repair runs detection and inference over a clone of db and returns the
// repaired database. The input is not modified.
func Repair(db *engine.Database, cfg Config) (*Report, *engine.Database, error) {
	threshold := cfg.ConfidenceThreshold
	if threshold <= 0 {
		threshold = DefaultConfidence
	}
	start := time.Now()
	work := db.Fork()
	rep := &Report{}

	authors := work.Relation("Author")
	tuples := authors.Tuples()

	// --- Error detection: cells in conflict under DC1-DC4. ---
	// Group by aid (DC1-DC3) and by oid (DC4).
	byAid := make(map[int64][]*engine.Tuple)
	byOid := make(map[int64][]*engine.Tuple)
	for _, t := range tuples {
		byAid[t.Vals[0].Int] = append(byAid[t.Vals[0].Int], t)
		byOid[t.Vals[2].Int] = append(byOid[t.Vals[2].Int], t)
	}
	noisy := make(map[engine.TupleID]map[int]bool) // tuple -> conflicted columns
	markNoisy := func(t *engine.Tuple, col int) {
		m := noisy[t.TID]
		if m == nil {
			m = make(map[int]bool)
			noisy[t.TID] = m
		}
		if !m[col] {
			m[col] = true
			rep.NoisyCells++
		}
	}
	for _, group := range byAid {
		if len(group) < 2 {
			continue
		}
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				a, b := group[i], group[j]
				for _, col := range []int{1, 2, 3} { // name, oid, organization
					if !a.Vals[col].Equal(b.Vals[col]) {
						markNoisy(a, col)
						markNoisy(b, col)
					}
				}
			}
		}
	}
	// DC4: same oid, conflicting organization name. Majority statistics
	// come from the full oid group, so collect counts while detecting.
	orgNameVotes := make(map[int64]map[string]int)
	for oid, group := range byOid {
		votes := make(map[string]int)
		for _, t := range group {
			votes[t.Vals[3].Str]++
		}
		orgNameVotes[oid] = votes
		if len(votes) > 1 {
			for _, t := range group {
				markNoisy(t, 3)
			}
		}
	}

	// --- Inference: majority vote per noisy cell, gated by confidence. ---
	// organization (col 3): vote by oid co-occurrence.
	// name (col 1): vote within the aid group (usually a 2-way tie: no
	// repair, like HoloClean's behaviour on key-duplication errors).
	type cellRepair struct {
		t   *engine.Tuple
		col int
		val engine.Value
	}
	var repairs []cellRepair
	repairedTuple := make(map[engine.TupleID]bool)
	for _, t := range tuples {
		cols := noisy[t.TID]
		if cols == nil {
			continue
		}
		if cols[3] {
			votes := orgNameVotes[t.Vals[2].Int]
			total, bestVal, bestN := 0, "", 0
			for v, n := range votes {
				total += n
				if n > bestN || (n == bestN && v < bestVal) {
					bestVal, bestN = v, n
				}
			}
			conf := float64(bestN) / float64(total)
			if conf >= threshold && t.Vals[3].Str != bestVal {
				repairs = append(repairs, cellRepair{t, 3, engine.Str(bestVal)})
			}
		}
		if cols[1] {
			group := byAid[t.Vals[0].Int]
			votes := make(map[string]int)
			for _, u := range group {
				votes[u.Vals[1].Str]++
			}
			total, bestVal, bestN := 0, "", 0
			for v, n := range votes {
				total += n
				if n > bestN || (n == bestN && v < bestVal) {
					bestVal, bestN = v, n
				}
			}
			conf := float64(bestN) / float64(total)
			if conf >= threshold && t.Vals[1].Str != bestVal {
				repairs = append(repairs, cellRepair{t, 1, engine.Str(bestVal)})
			}
		}
		// oid conflicts (col 2) have no co-occurrence signal beyond the
		// conflicting pair itself; like HoloClean on key duplication, no
		// repair is proposed.
	}

	// --- Apply repairs (UPDATEs as delete+insert under set semantics). ---
	for _, r := range repairs {
		if !authors.ContainsTuple(r.t) {
			continue // an earlier repair already rewrote this tuple
		}
		vals := append([]engine.Value(nil), r.t.Vals...)
		vals[r.col] = r.val
		authors.DeleteTuple(r.t)
		if _, err := work.Insert("Author", vals...); err != nil {
			return nil, nil, err
		}
		rep.RepairedCells++
		if !repairedTuple[r.t.TID] {
			repairedTuple[r.t.TID] = true
			rep.RepairedTuples++
		}
	}

	rep.Elapsed = time.Since(start)
	return rep, work, nil
}

// ViolatingTuples counts, for each rule of the DC program, the number of
// distinct tuples participating in at least one violating assignment — the
// measurement of Table 5 ("number of tuples that violate a DC with other
// tuples"; tuples violating several DCs count once per DC). The returned
// slice is indexed by rule position; the second value is the total across
// DCs (which may exceed the number of distinct tuples overall, as in the
// paper's Total column).
func ViolatingTuples(db *engine.Database, dcs *datalog.Program) ([]int, int, error) {
	out := make([]int, len(dcs.Rules))
	total := 0
	for i, r := range dcs.Rules {
		seen := make(map[engine.TupleID]bool)
		err := datalog.EvalRuleOnDB(db, r, func(a *datalog.Assignment) bool {
			for _, tp := range a.Tuples {
				seen[tp.TID] = true
			}
			return true
		})
		if err != nil {
			return nil, 0, err
		}
		out[i] = len(seen)
		total += len(seen)
	}
	return out, total, nil
}
