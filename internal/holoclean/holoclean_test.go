package holoclean

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/programs"
)

func TestRepairCleanTableIsNoOp(t *testing.T) {
	db := programs.CleanAuthorTable(500, 20, 1)
	rep, repaired, err := Repair(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NoisyCells != 0 || rep.RepairedCells != 0 {
		t.Fatalf("clean table produced repairs: %+v", rep)
	}
	if repaired.Relation("Author").Len() != 500 {
		t.Fatal("row count changed")
	}
}

func TestRepairFixesOrgNameTypos(t *testing.T) {
	db := programs.CleanAuthorTable(400, 8, 2)
	// Inject pure orgname typos by hand: corrupt 10 rows' organization.
	authors := db.Relation("Author")
	tuples := authors.Tuples()
	for i := 0; i < 10; i++ {
		victim := tuples[i*7]
		vals := append([]engine.Value(nil), victim.Vals...)
		vals[3] = engine.Str(vals[3].Str + "_typo")
		authors.Delete(victim.Key())
		db.MustInsert("Author", vals...)
	}
	dcs, err := programs.DCs()
	if err != nil {
		t.Fatal(err)
	}
	perDC, totalBefore, err := ViolatingTuples(db, dcs)
	if err != nil {
		t.Fatal(err)
	}
	if perDC[3] == 0 {
		t.Fatalf("DC4 violations expected before repair: %v", perDC)
	}
	rep, repaired, err := Repair(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// With a low error rate, every org still has a ≥90% majority, so all
	// 10 typo cells are repaired.
	if rep.RepairedTuples != 10 {
		t.Fatalf("repaired %d tuples, want 10 (report: %+v)", rep.RepairedTuples, rep)
	}
	_, totalAfter, err := ViolatingTuples(repaired, dcs)
	if err != nil {
		t.Fatal(err)
	}
	if totalAfter != 0 {
		t.Fatalf("violations after repair = %d, want 0 (before: %d)", totalAfter, totalBefore)
	}
}

func TestRepairLeavesAidDuplicatesUnrepaired(t *testing.T) {
	db := programs.CleanAuthorTable(300, 10, 3)
	// Duplicate-aid corruption: copy another row's aid.
	authors := db.Relation("Author")
	tuples := authors.Tuples()
	victim, donor := tuples[10], tuples[200]
	vals := append([]engine.Value(nil), victim.Vals...)
	vals[0] = donor.Vals[0]
	authors.Delete(victim.Key())
	db.MustInsert("Author", vals...)

	rep, repaired, err := Repair(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A 2-way tie on every conflicting cell: nothing clears the threshold.
	if rep.RepairedCells != 0 {
		t.Fatalf("aid duplication should not be repairable, repaired %d cells", rep.RepairedCells)
	}
	dcs, err := programs.DCs()
	if err != nil {
		t.Fatal(err)
	}
	_, totalAfter, err := ViolatingTuples(repaired, dcs)
	if err != nil {
		t.Fatal(err)
	}
	if totalAfter == 0 {
		t.Fatal("unrepairable violation should remain (HoloClean under-repair signature)")
	}
	if rep.NoisyCells == 0 {
		t.Fatal("detection should flag the conflicting cells")
	}
}

// TestUnderRepairGrowsWithErrorRate reproduces the Table 4 signature: as
// injected errors grow, the fraction HoloClean repairs falls.
func TestUnderRepairGrowsWithErrorRate(t *testing.T) {
	rates := []int{30, 300}
	var repairedFrac []float64
	for _, errs := range rates {
		db := programs.CleanAuthorTable(2000, 20, 4)
		programs.InjectErrors(db, errs, 5)
		rep, _, err := Repair(db, Config{})
		if err != nil {
			t.Fatal(err)
		}
		repairedFrac = append(repairedFrac, float64(rep.RepairedTuples)/float64(errs))
	}
	if repairedFrac[0] <= repairedFrac[1] {
		t.Fatalf("repair fraction should fall with error rate: %v", repairedFrac)
	}
	if repairedFrac[0] < 0.3 {
		t.Fatalf("low-error repair fraction too low: %v", repairedFrac)
	}
}

// TestSemanticsAlwaysFixAllViolations vs HoloClean's residual violations:
// the Table 5 contrast.
func TestSemanticsAlwaysFixAllViolations(t *testing.T) {
	db := programs.CleanAuthorTable(500, 10, 6)
	programs.InjectErrors(db, 50, 7)
	dcs, err := programs.DCs()
	if err != nil {
		t.Fatal(err)
	}
	_, before, err := ViolatingTuples(db, dcs)
	if err != nil {
		t.Fatal(err)
	}
	if before == 0 {
		t.Fatal("errors must create violations")
	}
	for _, sem := range core.AllSemantics {
		_, repaired, err := core.Run(db, dcs, sem)
		if err != nil {
			t.Fatalf("%s: %v", sem, err)
		}
		_, after, err := ViolatingTuples(repaired, dcs)
		if err != nil {
			t.Fatal(err)
		}
		if after != 0 {
			t.Fatalf("%s left %d violating tuples", sem, after)
		}
	}
	// HoloClean leaves some.
	_, hcRepaired, err := Repair(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, after, err := ViolatingTuples(hcRepaired, dcs)
	if err != nil {
		t.Fatal(err)
	}
	if after == 0 {
		t.Fatal("the cell-repair baseline should under-repair this workload")
	}
	if after >= before {
		t.Fatalf("repair should reduce violations: %d -> %d", before, after)
	}
}

func TestConfidenceThresholdDial(t *testing.T) {
	mk := func() *engine.Database {
		db := programs.CleanAuthorTable(200, 4, 8)
		programs.InjectErrors(db, 40, 9)
		return db
	}
	strict, _, err := Repair(mk(), Config{ConfidenceThreshold: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	loose, _, err := Repair(mk(), Config{ConfidenceThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if strict.RepairedCells > loose.RepairedCells {
		t.Fatalf("stricter threshold repaired more: %d vs %d", strict.RepairedCells, loose.RepairedCells)
	}
}

func TestRepairDoesNotMutateInput(t *testing.T) {
	db := programs.CleanAuthorTable(100, 5, 10)
	programs.InjectErrors(db, 10, 11)
	before := db.Relation("Author").Keys()
	if _, _, err := Repair(db, Config{}); err != nil {
		t.Fatal(err)
	}
	after := db.Relation("Author").Keys()
	if len(before) != len(after) {
		t.Fatal("input mutated")
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("input mutated")
		}
	}
}
