// Package tpch generates a synthetic TPC-H fragment with the shape the
// paper evaluates on: the eight TPC-H tables at reduced cardinalities
// totalling ~376K tuples at scale 1.0 (the paper's fragment size), keeping
// the standard TPC-H cardinality ratios (lineitem ≈ 4× orders,
// partsupp = 4× part, etc.). See DESIGN.md §3, substitution 4.
//
// Attribute lists are simplified to the key and join columns the paper's
// programs use (Table 2 writes the remaining attributes as X/Y/Z).
package tpch

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/engine"
)

// Cardinalities at scale 1.0, totalling ~376K tuples.
const (
	baseRegions   = 5
	baseNations   = 25
	baseSuppliers = 500
	baseCustomers = 7500
	baseParts     = 10000
	basePartSupp  = 40000
	baseOrders    = 63500
	baseLineItems = 254000
)

// Config controls generation.
type Config struct {
	// Scale multiplies all base cardinalities; 1.0 ≈ 376K tuples.
	Scale float64
	// Seed drives the deterministic random stream.
	Seed int64
}

// Dataset is the generated database plus metadata for rule constants.
type Dataset struct {
	DB *engine.Database

	NumRegions, NumNations, NumSuppliers, NumCustomers int
	NumParts, NumPartSupp, NumOrders, NumLineItems     int

	// SuppKeyCut selects ~2% of suppliers via "sk < SuppKeyCut" (T-1..T-3, T-6).
	SuppKeyCut int
	// OrderKeyCut selects ~0.5% of orders via "ok < OrderKeyCut" (T-4, T-6).
	OrderKeyCut int
	// TargetNation is the nation key used by T-5's "nk = C".
	TargetNation int
	// CustKeyCut selects ~1% of customers via "ck < CustKeyCut" (T-6).
	CustKeyCut int
}

// Schema returns the TPC-H fragment schema:
//
//	Region(rk, name)                Nation(nk, name, rk)
//	Customer(ck, name, nk)          Supplier(sk, name, nk)
//	Part(pk, name)                  PartSupp(pk, sk, qty)
//	Orders(ok, ck, price)           LineItem(ok, ln, pk, sk, qty)
func Schema() *engine.Schema {
	s := engine.NewSchema()
	s.MustAddRelation("Region", "r", "rk", "name")
	s.MustAddRelation("Nation", "n", "nk", "name", "rk")
	s.MustAddRelation("Customer", "c", "ck", "name", "nk")
	s.MustAddRelation("Supplier", "s", "sk", "name", "nk")
	s.MustAddRelation("Part", "p", "pk", "name")
	s.MustAddRelation("PartSupp", "ps", "pk", "sk", "qty")
	s.MustAddRelation("Orders", "o", "ok", "ck", "price")
	s.MustAddRelation("LineItem", "li", "ok", "ln", "pk", "sk", "qty")
	return s
}

func scaled(base int, scale float64) int {
	n := int(math.Round(float64(base) * scale))
	if n < 1 {
		n = 1
	}
	return n
}

// Generate builds the dataset deterministically from the config.
func Generate(cfg Config) *Dataset {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := engine.NewDatabase(Schema())

	nRegions := scaled(baseRegions, cfg.Scale)
	nNations := scaled(baseNations, cfg.Scale)
	nSuppliers := scaled(baseSuppliers, cfg.Scale)
	nCustomers := scaled(baseCustomers, cfg.Scale)
	nParts := scaled(baseParts, cfg.Scale)
	nPartSupp := scaled(basePartSupp, cfg.Scale)
	nOrders := scaled(baseOrders, cfg.Scale)
	nLineItems := scaled(baseLineItems, cfg.Scale)
	if nNations < nRegions {
		nNations = nRegions
	}

	for r := 1; r <= nRegions; r++ {
		db.MustInsert("Region", engine.Int(r), engine.Str(fmt.Sprintf("region%d", r)))
	}
	for n := 1; n <= nNations; n++ {
		db.MustInsert("Nation", engine.Int(n), engine.Str(fmt.Sprintf("nation%d", n)),
			engine.Int(1+(n-1)%nRegions))
	}
	for s := 1; s <= nSuppliers; s++ {
		db.MustInsert("Supplier", engine.Int(s), engine.Str(fmt.Sprintf("supplier%d", s)),
			engine.Int(1+rng.Intn(nNations)))
	}
	for c := 1; c <= nCustomers; c++ {
		db.MustInsert("Customer", engine.Int(c), engine.Str(fmt.Sprintf("customer%d", c)),
			engine.Int(1+rng.Intn(nNations)))
	}
	for p := 1; p <= nParts; p++ {
		db.MustInsert("Part", engine.Int(p), engine.Str(fmt.Sprintf("part%d", p)))
	}
	// PartSupp: spread suppliers over parts round-robin with jitter,
	// deduplicated by set semantics.
	for db.Relation("PartSupp").Len() < nPartSupp {
		pk := 1 + rng.Intn(nParts)
		sk := 1 + rng.Intn(nSuppliers)
		db.MustInsert("PartSupp", engine.Int(pk), engine.Int(sk), engine.Int(1+rng.Intn(9999)))
	}
	for o := 1; o <= nOrders; o++ {
		db.MustInsert("Orders", engine.Int(o), engine.Int(1+rng.Intn(nCustomers)),
			engine.Int(100+rng.Intn(99900)))
	}
	// LineItems: each order gets ~4 lines on average; line numbers make
	// rows unique. Parts/suppliers are drawn independently (the paper's
	// programs join only on ok and sk).
	ln := 0
	order := 1
	for db.Relation("LineItem").Len() < nLineItems {
		ln++
		db.MustInsert("LineItem",
			engine.Int(order), engine.Int(ln),
			engine.Int(1+rng.Intn(nParts)), engine.Int(1+rng.Intn(nSuppliers)),
			engine.Int(1+rng.Intn(50)))
		if ln >= 1+rng.Intn(7) {
			ln = 0
			order++
			if order > nOrders {
				order = 1 // wrap: remaining lines pile on early orders
			}
		}
	}

	ds := &Dataset{DB: db}
	ds.NumRegions = db.Relation("Region").Len()
	ds.NumNations = db.Relation("Nation").Len()
	ds.NumSuppliers = db.Relation("Supplier").Len()
	ds.NumCustomers = db.Relation("Customer").Len()
	ds.NumParts = db.Relation("Part").Len()
	ds.NumPartSupp = db.Relation("PartSupp").Len()
	ds.NumOrders = db.Relation("Orders").Len()
	ds.NumLineItems = db.Relation("LineItem").Len()

	// Cuts select ~2% of suppliers / ~0.5% of orders / ~1% of customers but
	// always at least one row each, so every program has work even at tiny
	// scales.
	ds.SuppKeyCut = nSuppliers/50 + 2
	ds.OrderKeyCut = nOrders/200 + 2
	ds.TargetNation = 1
	ds.CustKeyCut = nCustomers/100 + 2
	return ds
}

// Total returns the total number of base tuples in the dataset.
func (d *Dataset) Total() int {
	return d.NumRegions + d.NumNations + d.NumSuppliers + d.NumCustomers +
		d.NumParts + d.NumPartSupp + d.NumOrders + d.NumLineItems
}
