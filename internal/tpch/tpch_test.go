package tpch

import (
	"testing"

	"repro/internal/engine"
)

func TestGenerateFullScaleCardinalities(t *testing.T) {
	ds := Generate(Config{Scale: 1.0, Seed: 1})
	if got := ds.Total(); got < 370000 || got > 382000 {
		t.Fatalf("total tuples = %d, want ≈376K", got)
	}
	// Standard TPC-H ratios: lineitem ≈ 4× orders; partsupp = 4× part.
	if r := float64(ds.NumLineItems) / float64(ds.NumOrders); r < 3.5 || r > 4.5 {
		t.Fatalf("lineitem/orders = %.2f, want ≈4", r)
	}
	if r := float64(ds.NumPartSupp) / float64(ds.NumParts); r < 3.5 || r > 4.5 {
		t.Fatalf("partsupp/part = %.2f, want 4", r)
	}
	if ds.NumRegions != 5 || ds.NumNations != 25 {
		t.Fatalf("regions/nations = %d/%d, want 5/25", ds.NumRegions, ds.NumNations)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := Generate(Config{Scale: 0.01, Seed: 5})
	b := Generate(Config{Scale: 0.01, Seed: 5})
	for _, rel := range a.DB.Schema.Names() {
		ka, kb := a.DB.Relation(rel).Keys(), b.DB.Relation(rel).Keys()
		if len(ka) != len(kb) {
			t.Fatalf("%s: %d vs %d tuples", rel, len(ka), len(kb))
		}
		for i := range ka {
			if ka[i] != kb[i] {
				t.Fatalf("%s[%d]: %s vs %s", rel, i, ka[i], kb[i])
			}
		}
	}
}

func TestGenerateReferentialIntegrity(t *testing.T) {
	ds := Generate(Config{Scale: 0.02, Seed: 3})
	db := ds.DB
	bad := 0
	db.Relation("Nation").Scan(func(tp *engine.Tuple) bool {
		if db.Relation("Region").LookupCount(0, tp.Vals[2]) == 0 {
			bad++
		}
		return true
	})
	db.Relation("Supplier").Scan(func(tp *engine.Tuple) bool {
		if db.Relation("Nation").LookupCount(0, tp.Vals[2]) == 0 {
			bad++
		}
		return true
	})
	db.Relation("Customer").Scan(func(tp *engine.Tuple) bool {
		if db.Relation("Nation").LookupCount(0, tp.Vals[2]) == 0 {
			bad++
		}
		return true
	})
	db.Relation("PartSupp").Scan(func(tp *engine.Tuple) bool {
		if db.Relation("Part").LookupCount(0, tp.Vals[0]) == 0 {
			bad++
		}
		if db.Relation("Supplier").LookupCount(0, tp.Vals[1]) == 0 {
			bad++
		}
		return true
	})
	db.Relation("Orders").Scan(func(tp *engine.Tuple) bool {
		if db.Relation("Customer").LookupCount(0, tp.Vals[1]) == 0 {
			bad++
		}
		return true
	})
	db.Relation("LineItem").Scan(func(tp *engine.Tuple) bool {
		if db.Relation("Orders").LookupCount(0, tp.Vals[0]) == 0 {
			bad++
		}
		if db.Relation("Part").LookupCount(0, tp.Vals[2]) == 0 {
			bad++
		}
		if db.Relation("Supplier").LookupCount(0, tp.Vals[3]) == 0 {
			bad++
		}
		return true
	})
	if bad > 0 {
		t.Fatalf("%d dangling references", bad)
	}
}

func TestGenerateCutConstants(t *testing.T) {
	ds := Generate(Config{Scale: 0.1, Seed: 1})
	// The cut constants must select non-empty, small fractions.
	nSupp := 0
	ds.DB.Relation("Supplier").Scan(func(tp *engine.Tuple) bool {
		if tp.Vals[0].Int < int64(ds.SuppKeyCut) {
			nSupp++
		}
		return true
	})
	if nSupp == 0 || nSupp > ds.NumSuppliers/10 {
		t.Fatalf("SuppKeyCut selects %d of %d suppliers", nSupp, ds.NumSuppliers)
	}
	if ds.TargetNation < 1 || ds.TargetNation > ds.NumNations {
		t.Fatalf("TargetNation = %d out of range", ds.TargetNation)
	}
	if ds.OrderKeyCut < 2 || ds.CustKeyCut < 2 {
		t.Fatalf("cuts too small: ok<%d ck<%d", ds.OrderKeyCut, ds.CustKeyCut)
	}
}

func TestGenerateTinyScale(t *testing.T) {
	ds := Generate(Config{Scale: 0.001, Seed: 1})
	for _, rel := range ds.DB.Schema.Names() {
		if ds.DB.Relation(rel).Len() == 0 {
			t.Fatalf("%s empty at tiny scale", rel)
		}
	}
	if ds2 := Generate(Config{Seed: 2, Scale: 0}); ds2.NumRegions != 5 {
		t.Fatal("scale 0 should default to 1.0")
	}
}
