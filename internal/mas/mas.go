// Package mas generates a synthetic academic database with the shape of the
// MAS (Microsoft Academic Search) fragment the paper evaluates on:
// Organization, Author, Writes, Publication, and Cite relations totalling
// ~124K tuples at scale 1.0.
//
// The real MAS fragment is not redistributable; the experiments only depend
// on the schema, the relative cardinalities, and skewed join fan-outs
// (hub organizations with many authors, prolific authors with many papers,
// well-cited publications). The generator reproduces those properties
// deterministically from a seed (see DESIGN.md §3, substitution 3).
package mas

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/engine"
)

// Cardinalities at scale 1.0, totalling ~124K tuples like the paper's
// fragment.
const (
	baseOrganizations = 600
	baseAuthors       = 20000
	basePublications  = 40000
	baseWrites        = 55000
	baseCites         = 8400
)

// Config controls generation.
type Config struct {
	// Scale multiplies all base cardinalities; 1.0 ≈ 124K tuples.
	Scale float64
	// Seed drives the deterministic random stream.
	Seed int64
}

// Dataset is the generated database plus the metadata experiments need to
// pick rule constants (hub entities, sizes).
type Dataset struct {
	DB *engine.Database

	// NumOrganizations .. NumCites are the realized cardinalities.
	NumOrganizations int
	NumAuthors       int
	NumPublications  int
	NumWrites        int
	NumCites         int

	// HubOrg is the organization id with the most authors (used as the
	// constant C of programs 4, 10, 16-20).
	HubOrg int
	// HubOrgAuthors is the number of authors affiliated with HubOrg.
	HubOrgAuthors int
	// HubAuthor is the author id with the most Writes tuples (constant C
	// of programs 2, 3, 8).
	HubAuthor int
	// HubAuthorName is HubAuthor's name (constant C1 of programs 1, 5, 6, 9).
	HubAuthorName string
	// HubAuthorWrites is the number of papers HubAuthor writes.
	HubAuthorWrites int
	// HubPub is the publication id with the most citations (constant C of
	// program 7).
	HubPub int
}

// Schema returns the MAS schema:
//
//	Organization(oid, name)    Author(aid, name, oid)
//	Writes(aid, pid)           Publication(pid, title)
//	Cite(citing, cited)
func Schema() *engine.Schema {
	s := engine.NewSchema()
	s.MustAddRelation("Organization", "o", "oid", "name")
	s.MustAddRelation("Author", "a", "aid", "name", "oid")
	s.MustAddRelation("Writes", "w", "aid", "pid")
	s.MustAddRelation("Publication", "p", "pid", "title")
	s.MustAddRelation("Cite", "c", "citing", "cited")
	return s
}

func scaled(base int, scale float64) int {
	n := int(math.Round(float64(base) * scale))
	if n < 1 {
		n = 1
	}
	return n
}

// Generate builds the dataset. The same Config always yields the same
// database, tuple for tuple.
func Generate(cfg Config) *Dataset {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := engine.NewDatabase(Schema())

	nOrgs := scaled(baseOrganizations, cfg.Scale)
	nAuthors := scaled(baseAuthors, cfg.Scale)
	nPubs := scaled(basePublications, cfg.Scale)
	nWrites := scaled(baseWrites, cfg.Scale)
	nCites := scaled(baseCites, cfg.Scale)

	ds := &Dataset{DB: db}

	// Organizations: org 1 is the designated hub holding ~5% of authors.
	for o := 1; o <= nOrgs; o++ {
		db.MustInsert("Organization", engine.Int(o), engine.Str(fmt.Sprintf("org%d", o)))
	}

	// Authors with a skewed org assignment: 5% to the hub, the rest by a
	// quadratic skew favouring low org ids.
	orgAuthors := make(map[int]int, nOrgs)
	for a := 1; a <= nAuthors; a++ {
		var org int
		if rng.Float64() < 0.05 || nOrgs == 1 {
			org = 1
		} else {
			// Quadratic skew over orgs 2..nOrgs (org 1's share comes only
			// from the explicit 5% hub branch above).
			u := rng.Float64()
			org = 2 + int(u*u*float64(nOrgs-1))
			if org > nOrgs {
				org = nOrgs
			}
		}
		orgAuthors[org]++
		db.MustInsert("Author", engine.Int(a), engine.Str(fmt.Sprintf("author%d", a)), engine.Int(org))
	}

	// Publications.
	for p := 1; p <= nPubs; p++ {
		db.MustInsert("Publication", engine.Int(p), engine.Str(fmt.Sprintf("title%d", p)))
	}

	// Writes: author 1 is the designated prolific hub (~0.2% of all Writes
	// tuples, at least 20); remaining writes pair a skewed author with a
	// random paper. Duplicate (aid,pid) pairs collapse via set semantics,
	// so we loop until the target count is reached.
	hubWrites := nWrites / 500
	if hubWrites < 20 {
		hubWrites = 20
	}
	if hubWrites > nPubs {
		hubWrites = nPubs
	}
	for db.Relation("Writes").Len() < hubWrites {
		pid := 1 + rng.Intn(nPubs)
		db.MustInsert("Writes", engine.Int(1), engine.Int(pid))
	}
	for db.Relation("Writes").Len() < nWrites {
		u := rng.Float64()
		aid := 1 + int(u*u*float64(nAuthors))
		if aid > nAuthors {
			aid = nAuthors
		}
		pid := 1 + rng.Intn(nPubs)
		db.MustInsert("Writes", engine.Int(aid), engine.Int(pid))
	}

	// Cites: pub 1 is the designated well-cited hub; citing != cited.
	hubCites := nCites / 100
	if hubCites < 5 {
		hubCites = 5
	}
	for db.Relation("Cite").Len() < hubCites {
		citing := 2 + rng.Intn(nPubs-1)
		db.MustInsert("Cite", engine.Int(citing), engine.Int(1))
	}
	for db.Relation("Cite").Len() < nCites {
		citing := 1 + rng.Intn(nPubs)
		cited := 1 + rng.Intn(nPubs)
		if citing == cited {
			continue
		}
		db.MustInsert("Cite", engine.Int(citing), engine.Int(cited))
	}

	ds.NumOrganizations = db.Relation("Organization").Len()
	ds.NumAuthors = db.Relation("Author").Len()
	ds.NumPublications = db.Relation("Publication").Len()
	ds.NumWrites = db.Relation("Writes").Len()
	ds.NumCites = db.Relation("Cite").Len()
	ds.HubOrg = 1
	ds.HubOrgAuthors = orgAuthors[1]
	ds.HubAuthor = 1
	ds.HubAuthorName = "author1"
	ds.HubAuthorWrites = db.Relation("Writes").LookupCount(0, engine.Int(1))
	ds.HubPub = 1
	return ds
}

// Total returns the total number of base tuples in the dataset.
func (d *Dataset) Total() int {
	return d.NumOrganizations + d.NumAuthors + d.NumPublications + d.NumWrites + d.NumCites
}
