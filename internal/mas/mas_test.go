package mas

import (
	"testing"

	"repro/internal/engine"
)

func TestGenerateFullScaleCardinalities(t *testing.T) {
	ds := Generate(Config{Scale: 1.0, Seed: 1})
	if got := ds.Total(); got < 120000 || got > 128000 {
		t.Fatalf("total tuples = %d, want ≈124K", got)
	}
	if ds.NumOrganizations != 600 {
		t.Fatalf("orgs = %d, want 600", ds.NumOrganizations)
	}
	if ds.NumAuthors != 20000 {
		t.Fatalf("authors = %d, want 20000", ds.NumAuthors)
	}
	if ds.NumWrites != 55000 {
		t.Fatalf("writes = %d, want 55000", ds.NumWrites)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := Generate(Config{Scale: 0.02, Seed: 7})
	b := Generate(Config{Scale: 0.02, Seed: 7})
	for _, rel := range a.DB.Schema.Names() {
		ka, kb := a.DB.Relation(rel).Keys(), b.DB.Relation(rel).Keys()
		if len(ka) != len(kb) {
			t.Fatalf("%s: %d vs %d tuples", rel, len(ka), len(kb))
		}
		for i := range ka {
			if ka[i] != kb[i] {
				t.Fatalf("%s[%d]: %s vs %s", rel, i, ka[i], kb[i])
			}
		}
	}
	// A different seed yields a different database.
	c := Generate(Config{Scale: 0.02, Seed: 8})
	same := true
	ka, kc := a.DB.Relation("Writes").Keys(), c.DB.Relation("Writes").Keys()
	if len(ka) == len(kc) {
		for i := range ka {
			if ka[i] != kc[i] {
				same = false
				break
			}
		}
	} else {
		same = false
	}
	if same {
		t.Fatal("different seeds produced identical Writes relations")
	}
}

func TestGenerateReferentialIntegrity(t *testing.T) {
	ds := Generate(Config{Scale: 0.05, Seed: 3})
	db := ds.DB
	// Author.oid must reference an Organization.
	bad := 0
	db.Relation("Author").Scan(func(tp *engine.Tuple) bool {
		if db.Relation("Organization").LookupCount(0, tp.Vals[2]) == 0 {
			bad++
		}
		return true
	})
	if bad > 0 {
		t.Fatalf("%d authors with dangling org references", bad)
	}
	// Writes.aid/pid must reference Author/Publication.
	db.Relation("Writes").Scan(func(tp *engine.Tuple) bool {
		if db.Relation("Author").LookupCount(0, tp.Vals[0]) == 0 {
			bad++
		}
		if db.Relation("Publication").LookupCount(0, tp.Vals[1]) == 0 {
			bad++
		}
		return true
	})
	if bad > 0 {
		t.Fatalf("%d dangling Writes references", bad)
	}
	// Cite tuples never self-cite.
	db.Relation("Cite").Scan(func(tp *engine.Tuple) bool {
		if tp.Vals[0].Equal(tp.Vals[1]) {
			bad++
		}
		return true
	})
	if bad > 0 {
		t.Fatalf("%d self-citations", bad)
	}
}

func TestGenerateHubs(t *testing.T) {
	ds := Generate(Config{Scale: 0.1, Seed: 2})
	if ds.HubOrg != 1 || ds.HubAuthor != 1 || ds.HubPub != 1 {
		t.Fatalf("hub ids wrong: %+v", ds)
	}
	// The hub org holds roughly 5% of authors: allow 3-8%.
	frac := float64(ds.HubOrgAuthors) / float64(ds.NumAuthors)
	if frac < 0.03 || frac > 0.08 {
		t.Fatalf("hub org fraction = %.3f, want ≈0.05", frac)
	}
	// The hub author writes far more than the average author.
	avg := float64(ds.NumWrites) / float64(ds.NumAuthors)
	if float64(ds.HubAuthorWrites) < 4*avg {
		t.Fatalf("hub author writes %d, average %.1f: not a hub", ds.HubAuthorWrites, avg)
	}
	// The hub pub is cited multiple times.
	if n := ds.DB.Relation("Cite").LookupCount(1, engine.Int(1)); n < 5 {
		t.Fatalf("hub pub citations = %d, want ≥5", n)
	}
	if ds.HubAuthorName != "author1" {
		t.Fatalf("hub author name = %q", ds.HubAuthorName)
	}
}

func TestGenerateDefaultScale(t *testing.T) {
	ds := Generate(Config{Seed: 1, Scale: 0}) // 0 means 1.0
	if ds.NumOrganizations != 600 {
		t.Fatalf("default scale should be 1.0, got %d orgs", ds.NumOrganizations)
	}
}

func TestGenerateTinyScale(t *testing.T) {
	ds := Generate(Config{Scale: 0.001, Seed: 1})
	// Every relation must be non-empty even at extreme downscaling.
	for _, rel := range ds.DB.Schema.Names() {
		if ds.DB.Relation(rel).Len() == 0 {
			t.Fatalf("%s empty at tiny scale", rel)
		}
	}
}
