package sat

import (
	"math/rand"
	"reflect"
	"testing"
)

// trueSet renders an assignment as its set of true variables.
func trueSet(asn []bool) []int {
	var out []int
	for v := 1; v < len(asn); v++ {
		if asn[v] {
			out = append(out, v)
		}
	}
	return out
}

// bruteMinimalSolutions enumerates all set-minimal satisfying assignments
// of f (no other satisfying assignment is a strict subset), as sets of
// true variables. Only usable for small n.
func bruteMinimalSolutions(f *Formula) [][]int {
	n := f.NumVars()
	var sats []uint
	asn := make([]bool, n+1)
	for mask := uint(0); mask < 1<<n; mask++ {
		for v := 1; v <= n; v++ {
			asn[v] = mask&(1<<(v-1)) != 0
		}
		if f.Eval(asn) {
			sats = append(sats, mask)
		}
	}
	var out [][]int
	for _, m := range sats {
		minimal := true
		for _, o := range sats {
			if o != m && o&m == o {
				minimal = false
				break
			}
		}
		if minimal {
			var set []int
			for v := 1; v <= n; v++ {
				if m&(1<<(v-1)) != 0 {
					set = append(set, v)
				}
			}
			out = append(out, set)
		}
	}
	return out
}

// chainFormula builds (x1 ∨ x2) ∧ (x2 ∨ x3) ∧ (x3 ∨ x4): minimal
// solutions {2,3}, {2,4}, {1,3}, {1,2,4}... computed by brute force in the
// tests rather than by hand.
func chainFormula(t *testing.T) *Formula {
	t.Helper()
	f := NewFormula(4)
	for _, c := range [][]int{{1, 2}, {2, 3}, {3, 4}} {
		if err := f.AddClause(c...); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestEnumerateFirstMatchesMinOnes(t *testing.T) {
	single := MinOnes(chainFormula(t), Options{})
	enum := EnumerateMinOnes(chainFormula(t), 1, false, Options{})
	if len(enum.Solutions) != 1 {
		t.Fatalf("k=1 returned %d solutions", len(enum.Solutions))
	}
	got := enum.Solutions[0]
	if !reflect.DeepEqual(got.Assignment, single.Assignment) ||
		got.Cost != single.Cost || got.WeightedCost != single.WeightedCost ||
		got.Optimal != single.Optimal || got.Nodes != single.Nodes {
		t.Fatalf("k=1 solution %+v != single MinOnes %+v", got, single)
	}
	if enum.Complete {
		t.Fatal("k=1 on a multi-solution formula must not report Complete")
	}
}

func TestEnumerateAllMinimalSolutions(t *testing.T) {
	want := bruteMinimalSolutions(chainFormula(t))
	enum := EnumerateMinOnes(chainFormula(t), 64, false, Options{})
	if !enum.Complete || !enum.Optimal {
		t.Fatalf("enum flags = %+v", enum)
	}
	if len(enum.Solutions) != len(want) {
		t.Fatalf("enumerated %d solutions, brute force found %d minimal", len(enum.Solutions), len(want))
	}
	// Every enumerated solution is one of the brute-force minimal sets,
	// each exactly once, and costs never decrease.
	seen := make(map[string]bool)
	for i, sol := range enum.Solutions {
		set := trueSet(sol.Assignment)
		key := ""
		for _, v := range set {
			key += string(rune('0' + v))
		}
		if seen[key] {
			t.Fatalf("solution %v enumerated twice", set)
		}
		seen[key] = true
		found := false
		for _, w := range want {
			if reflect.DeepEqual(set, w) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("enumerated non-minimal solution %v", set)
		}
		if i > 0 && sol.WeightedCost < enum.Solutions[i-1].WeightedCost {
			t.Fatalf("cost order violated at %d: %d < %d", i, sol.WeightedCost, enum.Solutions[i-1].WeightedCost)
		}
	}
}

func TestEnumerateMinCostOnly(t *testing.T) {
	f := chainFormula(t)
	minCost := MinOnes(chainFormula(t), Options{}).WeightedCost
	enum := EnumerateMinOnes(f, 64, true, Options{})
	if !enum.Complete || !enum.Optimal {
		t.Fatalf("enum flags = %+v", enum)
	}
	if len(enum.Solutions) == 0 {
		t.Fatal("no solutions")
	}
	for _, sol := range enum.Solutions {
		if sol.WeightedCost != minCost {
			t.Fatalf("minCostOnly returned cost %d, want %d", sol.WeightedCost, minCost)
		}
	}
	// Cross-check the tie count against the set-minimal enumeration.
	all := EnumerateMinOnes(chainFormula(t), 64, false, Options{})
	ties := 0
	for _, sol := range all.Solutions {
		if sol.WeightedCost == minCost {
			ties++
		}
	}
	if len(enum.Solutions) != ties {
		t.Fatalf("minCostOnly found %d solutions, set-minimal enumeration has %d ties", len(enum.Solutions), ties)
	}
}

func TestEnumerateForcedSingleton(t *testing.T) {
	// x1 forced true and nothing else constrainable: the only set-minimal
	// solution is {1}; blocking it must terminate the enumeration.
	f := NewFormula(2)
	if err := f.AddClause(1); err != nil {
		t.Fatal(err)
	}
	enum := EnumerateMinOnes(f, 8, false, Options{})
	if len(enum.Solutions) != 1 || !enum.Complete || !enum.Optimal {
		t.Fatalf("enum = %+v", enum)
	}
	if got := trueSet(enum.Solutions[0].Assignment); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("solution = %v, want [1]", got)
	}
}

func TestEnumerateEmptySolutionCompletes(t *testing.T) {
	// (¬x1 ∨ ¬x2) is satisfied by the empty set: one solution, then the
	// empty blocking clause proves completeness.
	f := NewFormula(2)
	if err := f.AddClause(-1, -2); err != nil {
		t.Fatal(err)
	}
	enum := EnumerateMinOnes(f, 4, false, Options{})
	if len(enum.Solutions) != 1 || enum.Solutions[0].Cost != 0 || !enum.Complete {
		t.Fatalf("enum = %+v", enum)
	}
}

func TestEnumerateUnsat(t *testing.T) {
	f := NewFormula(1)
	if err := f.AddClause(1); err != nil {
		t.Fatal(err)
	}
	if err := f.AddClause(-1); err != nil {
		t.Fatal(err)
	}
	enum := EnumerateMinOnes(f, 4, false, Options{})
	if len(enum.Solutions) != 0 || !enum.Complete || !enum.Optimal {
		t.Fatalf("enum = %+v", enum)
	}
}

func TestEnumerateBudgetTruncation(t *testing.T) {
	// A 1-node budget on a random vertex-cover formula (all-positive
	// 2-literal clauses — no root propagation, real branching) exhausts
	// mid-search; the enumeration must stop after the best-effort solution
	// and say so.
	f := NewFormula(20)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		if err := f.AddClause(rng.Intn(20)+1, rng.Intn(20)+1); err != nil {
			t.Fatal(err)
		}
	}
	enum := EnumerateMinOnes(f, 8, false, Options{MaxNodes: 1})
	if enum.Optimal {
		t.Fatal("1-node budget reported Optimal")
	}
	if enum.Complete {
		t.Fatal("truncated enumeration reported Complete")
	}
	if len(enum.Solutions) > 1 {
		t.Fatalf("enumeration continued past a truncated solve: %d solutions", len(enum.Solutions))
	}
	for _, sol := range enum.Solutions {
		if sol.Optimal {
			t.Fatal("truncated solve marked its solution Optimal")
		}
		if !f.Eval(sol.Assignment) {
			t.Fatal("best-effort solution does not satisfy the formula")
		}
	}
}

func TestEnumerateDeterministic(t *testing.T) {
	build := func() *Formula {
		f := NewFormula(10)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 25; i++ {
			lits := []int{rng.Intn(10) + 1, rng.Intn(10) + 1, rng.Intn(10) + 1}
			if err := f.AddClause(lits...); err != nil {
				t.Fatal(err)
			}
		}
		return f
	}
	a := EnumerateMinOnes(build(), 6, false, Options{})
	b := EnumerateMinOnes(build(), 6, false, Options{})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("enumeration not deterministic:\n a=%+v\n b=%+v", a, b)
	}
}
