package sat

import (
	"math/rand"
	"testing"
)

// bruteMinWeight computes the exact minimum-weight satisfying assignment
// by enumeration; -1 when unsatisfiable.
func bruteMinWeight(f *Formula, weights []int64) int64 {
	n := f.NumVars()
	best := int64(-1)
	asn := make([]bool, n+1)
	for mask := 0; mask < 1<<n; mask++ {
		var cost int64
		for v := 1; v <= n; v++ {
			asn[v] = mask&(1<<(v-1)) != 0
			if asn[v] {
				w := int64(1)
				if weights != nil && v < len(weights) && weights[v] > 0 {
					w = weights[v]
				}
				cost += w
			}
		}
		if f.Eval(asn) && (best < 0 || cost < best) {
			best = cost
		}
	}
	return best
}

func TestWeightedFlipsTheOptimum(t *testing.T) {
	// (x1 ∨ x2): uniform weights pick either; weight(x1)=5 forces x2.
	f := NewFormula(2)
	f.AddClause(1, 2)
	res := MinOnes(f, Options{Weights: []int64{0, 5, 1}})
	if !res.Satisfiable || !res.Optimal {
		t.Fatalf("result: %+v", res)
	}
	if res.WeightedCost != 1 || res.Assignment[1] || !res.Assignment[2] {
		t.Fatalf("weighted optimum wrong: %+v", res)
	}
}

func TestWeightedHubVsLeaves(t *testing.T) {
	// Star cover: hub 1 covers clauses (1∨v) for v=2..6. Uniform weights
	// pick the hub (cost 1). Hub weight 10 > 5 leaves -> pick the leaves.
	build := func() *Formula {
		f := NewFormula(6)
		for v := 2; v <= 6; v++ {
			f.AddClause(1, v)
		}
		return f
	}
	uniform := MinOnes(build(), Options{})
	if uniform.Cost != 1 || !uniform.Assignment[1] {
		t.Fatalf("uniform should pick the hub: %+v", uniform)
	}
	heavy := MinOnes(build(), Options{Weights: []int64{0, 10, 1, 1, 1, 1, 1}})
	if heavy.WeightedCost != 5 || heavy.Assignment[1] {
		t.Fatalf("heavy hub should push to leaves: %+v", heavy)
	}
	// And a 4-weight hub is still cheaper than 5 leaves.
	mid := MinOnes(build(), Options{Weights: []int64{0, 4, 1, 1, 1, 1, 1}})
	if mid.WeightedCost != 4 || !mid.Assignment[1] {
		t.Fatalf("4-weight hub should win: %+v", mid)
	}
}

func TestWeightedUniformMatchesUnweighted(t *testing.T) {
	f := NewFormula(4)
	f.AddClause(1, 2)
	f.AddClause(2, 3)
	f.AddClause(3, 4)
	a := MinOnes(f, Options{})
	b := MinOnes(f, Options{Weights: []int64{0, 1, 1, 1, 1}})
	if a.Cost != b.Cost || b.WeightedCost != int64(a.Cost) {
		t.Fatalf("uniform weights diverge: %+v vs %+v", a, b)
	}
}

func TestWeightedAgainstBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 200; iter++ {
		n := 3 + rng.Intn(7)
		f := NewFormula(n)
		m := 1 + rng.Intn(3*n)
		for c := 0; c < m; c++ {
			k := 1 + rng.Intn(3)
			lits := make([]int, 0, k)
			for i := 0; i < k; i++ {
				v := 1 + rng.Intn(n)
				if rng.Intn(2) == 0 {
					v = -v
				}
				lits = append(lits, v)
			}
			f.AddClause(lits...)
		}
		weights := make([]int64, n+1)
		for v := 1; v <= n; v++ {
			weights[v] = int64(1 + rng.Intn(9))
		}
		want := bruteMinWeight(f, weights)
		res := MinOnes(f, Options{Weights: weights})
		if want < 0 {
			if res.Satisfiable {
				t.Fatalf("iter %d: found solution for unsat formula", iter)
			}
			continue
		}
		if !res.Satisfiable || !res.Optimal {
			t.Fatalf("iter %d: incomplete on tiny formula: %+v", iter, res)
		}
		if res.WeightedCost != want {
			t.Fatalf("iter %d: weighted cost %d, brute force %d\n%s",
				iter, res.WeightedCost, want, f.DIMACS())
		}
		if !f.Eval(res.Assignment) {
			t.Fatalf("iter %d: assignment does not satisfy", iter)
		}
	}
}

func TestWeightedNonPositiveAndShortWeights(t *testing.T) {
	// Zero/negative weights and short slices default to 1 per variable.
	f := NewFormula(3)
	f.AddClause(1, 2, 3)
	res := MinOnes(f, Options{Weights: []int64{0, -5}})
	if !res.Satisfiable || res.WeightedCost != 1 {
		t.Fatalf("defaulted weights wrong: %+v", res)
	}
}
