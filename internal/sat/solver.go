package sat

// Options configures the Min-Ones search.
type Options struct {
	// MaxNodes bounds the number of search nodes; 0 means a generous
	// default. When the budget is exhausted the best solution found so far
	// is returned with Optimal=false.
	MaxNodes int64
	// Prefer ranks variables for tie-breaking: when branching must set some
	// variable true, lower-ranked (earlier) preferred variables are tried
	// first, steering which of several equally-sized optima is found.
	// Variables absent from Prefer rank after all present ones.
	Prefer []int
	// Weights assigns a positive cost to setting each variable true
	// (1-based; index 0 unused). Nil means uniform weight 1, i.e. classic
	// Min-Ones. The search minimizes total weight; Result.Cost still
	// counts true variables while Result.WeightedCost is the objective.
	Weights []int64
	// Cancel, when non-nil, is polled every cancelCheckEvery search nodes;
	// returning true aborts the search as if the node budget were
	// exhausted (the best solution found so far is returned with
	// Optimal=false). Used to thread request cancellation into the solver.
	Cancel func() bool
}

// cancelCheckEvery is the node interval between Options.Cancel polls.
const cancelCheckEvery = 256

// DefaultMaxNodes is the search budget used when Options.MaxNodes is 0.
// The greedy descent seeds a good solution before the search starts, so an
// exhausted budget still returns a high-quality (if unproven) answer.
const DefaultMaxNodes = 400_000

// Result reports the outcome of a Min-Ones search.
type Result struct {
	// Satisfiable reports whether any satisfying assignment was found.
	Satisfiable bool
	// Assignment holds variable values (index 1..NumVars; index 0 unused).
	Assignment []bool
	// Cost is the number of true variables in Assignment.
	Cost int
	// WeightedCost is the minimized objective: the total weight of true
	// variables (equal to Cost under uniform weights).
	WeightedCost int64
	// Optimal reports whether the search proved minimality.
	Optimal bool
	// Nodes is the number of search nodes explored.
	Nodes int64
}

// MinOnes finds a satisfying assignment with as few true variables as the
// search budget allows; it is exact (Optimal=true) when the budget is not
// exhausted. The search is fully deterministic.
func MinOnes(f *Formula, opts Options) Result {
	s := newSolver(f, opts)
	return s.solve()
}

type solver struct {
	f        *Formula
	maxNodes int64

	state      []int8  // per var: 0 unknown, +1 true, -1 false
	satisfied  []bool  // per clause
	unassigned []int32 // per clause: count of unassigned literals
	occPos     [][]int32
	occNeg     [][]int32
	posCount   []int32 // static +v occurrence count, for branch ordering
	prefRank   []int32

	trail    []int32 // assigned vars in order
	satTrail []int32 // clauses satisfied in order

	// usedStamp/usedEpoch implement the zero-allocation disjointness set for
	// lowerBound: a variable is "used" iff its stamp equals the current
	// epoch, and bumping the epoch clears the whole set in O(1). lowerBound
	// runs at every search node, so a per-call map here dominated the
	// solver's allocation and hash-probe cost.
	usedStamp []int64
	usedEpoch int64

	// litsStack holds per-depth branching-literal scratch, reused across
	// the whole search (recursion depth d always reuses slot d).
	litsStack [][]int

	cancel    func() bool
	weights   []int64
	costNow   int64
	bestCost  int64
	bestAsn   []bool
	foundAny  bool
	nodes     int64
	work      int64 // clause-visit counter; bounds per-node scan cost
	maxWork   int64
	exhausted bool

	firstUnsat int // scan hint: all clauses before it are satisfied
}

// workPerNode converts the node budget into a clause-visit budget, so huge
// formulas exhaust proportionally sooner than small ones (a node on a
// 100K-clause formula is far more expensive than on a 100-clause one).
const workPerNode = 64

func newSolver(f *Formula, opts Options) *solver {
	n := f.numVars
	s := &solver{
		f:          f,
		maxNodes:   opts.MaxNodes,
		state:      make([]int8, n+1),
		satisfied:  make([]bool, len(f.clauses)),
		unassigned: make([]int32, len(f.clauses)),
		occPos:     make([][]int32, n+1),
		occNeg:     make([][]int32, n+1),
		posCount:   make([]int32, n+1),
		prefRank:   make([]int32, n+1),
		usedStamp:  make([]int64, n+1),
	}
	if s.maxNodes <= 0 {
		s.maxNodes = DefaultMaxNodes
	}
	s.cancel = opts.Cancel
	s.maxWork = s.maxNodes * workPerNode
	if opts.Weights != nil {
		s.weights = make([]int64, n+1)
		for v := 1; v <= n; v++ {
			w := int64(1)
			if v < len(opts.Weights) && opts.Weights[v] > 0 {
				w = opts.Weights[v]
			}
			s.weights[v] = w
		}
	}
	for ci, c := range f.clauses {
		s.unassigned[ci] = int32(len(c))
		for _, l := range c {
			if l > 0 {
				s.occPos[l] = append(s.occPos[l], int32(ci))
				s.posCount[l]++
			} else {
				s.occNeg[-l] = append(s.occNeg[-l], int32(ci))
			}
		}
	}
	for v := range s.prefRank {
		s.prefRank[v] = int32(n + 1)
	}
	for i, v := range opts.Prefer {
		if v >= 1 && v <= n && s.prefRank[v] == int32(n+1) {
			s.prefRank[v] = int32(i)
		}
	}
	return s
}

func (s *solver) solve() Result {
	// An empty clause is immediately unsatisfiable.
	for _, c := range s.f.clauses {
		if len(c) == 0 {
			return Result{Satisfiable: false, Nodes: 0, Optimal: true}
		}
	}
	// Root simplification: assign pure-negative variables false (free), and
	// propagate root units.
	conflict := false
	for v := 1; v <= s.f.numVars; v++ {
		if s.state[v] == 0 && len(s.occPos[v]) == 0 && len(s.occNeg[v]) > 0 {
			if !s.assignAndPropagate(v, false) {
				conflict = true
				break
			}
		}
	}
	if !conflict {
		for ci := range s.f.clauses {
			if !s.satisfied[ci] && s.unassigned[ci] == 1 {
				if !s.propagateClause(int32(ci)) {
					conflict = true
					break
				}
			}
		}
	}
	if !conflict {
		// Seed the bound with a greedy max-coverage solution: it both makes
		// branch-and-bound prune aggressively and guarantees a good answer
		// if the node budget runs out mid-search.
		s.greedyDescent()
		s.search(0)
	}
	res := Result{
		Satisfiable: s.foundAny,
		Nodes:       s.nodes,
		Optimal:     !s.exhausted,
	}
	if s.foundAny {
		res.Assignment = s.bestAsn
		res.Cost = CountOnes(res.Assignment)
		res.WeightedCost = s.bestCost
	}
	return res
}

// assign sets v to val, updating clause states. It reports false on
// conflict (an unsatisfied clause ran out of literals). All bookkeeping is
// reversible via undoTo regardless of conflicts.
func (s *solver) assign(v int, val bool) bool {
	if val {
		s.state[v] = 1
		s.costNow += s.weight(v)
	} else {
		s.state[v] = -1
	}
	s.trail = append(s.trail, int32(v))

	trueOcc, falseOcc := s.occPos[v], s.occNeg[v]
	if !val {
		trueOcc, falseOcc = falseOcc, trueOcc
	}
	for _, ci := range trueOcc {
		s.unassigned[ci]--
		if !s.satisfied[ci] {
			s.satisfied[ci] = true
			s.satTrail = append(s.satTrail, ci)
		}
	}
	ok := true
	for _, ci := range falseOcc {
		s.unassigned[ci]--
		if !s.satisfied[ci] && s.unassigned[ci] == 0 {
			ok = false
		}
	}
	return ok
}

// propagateClause resolves a unit clause: find its sole unassigned literal
// and assign it satisfying the clause, then chain propagation.
func (s *solver) propagateClause(ci int32) bool {
	if s.satisfied[ci] {
		return true
	}
	for _, l := range s.f.clauses[ci] {
		v := l
		if v < 0 {
			v = -v
		}
		if s.state[v] == 0 {
			return s.assignAndPropagate(v, l > 0)
		}
	}
	// No unassigned literal left in an unsatisfied clause: conflict.
	return false
}

// assignAndPropagate assigns and then resolves any unit clauses created.
func (s *solver) assignAndPropagate(v int, val bool) bool {
	if !s.assign(v, val) {
		return false
	}
	falseOcc := s.occNeg[v]
	if !val {
		falseOcc = s.occPos[v]
	}
	for _, ci := range falseOcc {
		if !s.satisfied[ci] && s.unassigned[ci] == 1 {
			if !s.propagateClause(ci) {
				return false
			}
		}
	}
	return true
}

type checkpoint struct {
	trailLen, satLen int
	firstUnsat       int
}

func (s *solver) mark() checkpoint {
	return checkpoint{len(s.trail), len(s.satTrail), s.firstUnsat}
}

func (s *solver) undoTo(cp checkpoint) {
	s.firstUnsat = cp.firstUnsat
	for len(s.satTrail) > cp.satLen {
		ci := s.satTrail[len(s.satTrail)-1]
		s.satTrail = s.satTrail[:len(s.satTrail)-1]
		s.satisfied[ci] = false
	}
	for len(s.trail) > cp.trailLen {
		v := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		if s.state[v] == 1 {
			s.costNow -= s.weight(int(v))
		}
		s.state[v] = 0
		for _, ci := range s.occPos[v] {
			s.unassigned[ci]++
		}
		for _, ci := range s.occNeg[v] {
			s.unassigned[ci]++
		}
	}
}

// lowerBound counts variable-disjoint unsatisfied clauses whose remaining
// literals are all positive: each such clause forces at least one more true
// variable. Scanning stops as soon as the bound suffices to prune, and the
// scan is charged against the work budget (an early abort just returns a
// weaker — still valid — bound).
func (s *solver) lowerBound(enough int64) int64 {
	if enough <= 0 {
		return 0
	}
	s.usedEpoch++
	epoch := s.usedEpoch
	var lb int64
	for ci := s.firstUnsat; ci < len(s.f.clauses); ci++ {
		c := s.f.clauses[ci]
		s.work++
		if s.satisfied[ci] {
			continue
		}
		allPos, disjoint := true, true
		for _, l := range c {
			if l < 0 {
				if s.state[-l] == 0 {
					allPos = false
					break
				}
				continue
			}
			if s.state[l] != 0 {
				continue
			}
			if s.usedStamp[l] == epoch {
				disjoint = false
			}
		}
		if !allPos || !disjoint {
			continue
		}
		// The clause forces at least its cheapest unassigned literal.
		minW := int64(1 << 62)
		for _, l := range c {
			if l > 0 && s.state[l] == 0 {
				if w := s.weight(l); w < minW {
					minW = w
				}
			}
		}
		lb += minW
		if lb >= enough {
			return lb
		}
		for _, l := range c {
			if l > 0 && s.state[l] == 0 {
				s.usedStamp[l] = epoch
			}
		}
	}
	return lb
}

// weight returns the cost of setting v true (1 under uniform weights).
func (s *solver) weight(v int) int64 {
	if s.weights == nil {
		return 1
	}
	return s.weights[v]
}

// pickClause chooses an unsatisfied clause to branch on; returns -1 when
// every clause is satisfied. It scans from the firstUnsat hint (advancing
// the hint over the satisfied prefix — restored on undo via checkpoints)
// and picks the clause with the fewest unassigned literals within a small
// lookahead window past the first unsatisfied one, bounding per-node cost.
func (s *solver) pickClause() int {
	for s.firstUnsat < len(s.f.clauses) && s.satisfied[s.firstUnsat] {
		s.firstUnsat++
		s.work++
	}
	if s.firstUnsat >= len(s.f.clauses) {
		return -1
	}
	const lookahead = 128
	bestCi := s.firstUnsat
	bestN := s.unassigned[bestCi]
	end := s.firstUnsat + lookahead
	if end > len(s.f.clauses) {
		end = len(s.f.clauses)
	}
	for ci := s.firstUnsat + 1; ci < end && bestN > 2; ci++ {
		s.work++
		if s.satisfied[ci] {
			continue
		}
		if n := s.unassigned[ci]; n < bestN {
			bestCi, bestN = ci, n
		}
	}
	return bestCi
}

// greedyDescent runs one greedy pass from the current (root-propagated)
// state: repeatedly satisfy the tightest unsatisfied clause, using a free
// negative literal when available and otherwise the positive variable
// covering the most currently-unsatisfied clauses (set-cover greedy).
// Preference ranks break coverage ties. The resulting solution seeds the
// branch-and-bound's best bound; all assignments are undone afterwards.
func (s *solver) greedyDescent() {
	cp := s.mark()
	defer s.undoTo(cp)
	for {
		ci := s.pickClause()
		if ci < 0 {
			s.record()
			return
		}
		// Free move: a negative unassigned literal satisfies the clause at
		// zero cost.
		var bestVar int
		bestCover := -1
		for _, l := range s.f.clauses[ci] {
			v := l
			if v < 0 {
				v = -v
			}
			if s.state[v] != 0 {
				continue
			}
			if l < 0 {
				if !s.assignAndPropagate(v, false) {
					return // greedy dead end: give up, search() will handle it
				}
				bestVar = 0
				break
			}
			cover := 0
			for _, cj := range s.occPos[v] {
				if !s.satisfied[cj] {
					cover++
				}
			}
			// Maximize coverage per unit weight (cover/w), comparing as
			// cross products to stay in integers; prefRank breaks ties.
			better := bestCover < 0 ||
				int64(cover)*s.weight(bestVar) > int64(bestCover)*s.weight(v) ||
				(int64(cover)*s.weight(bestVar) == int64(bestCover)*s.weight(v) && s.prefRank[v] < s.prefRank[bestVar])
			if better {
				bestCover, bestVar = cover, v
			}
		}
		if bestCover >= 0 && bestVar != 0 {
			if !s.assignAndPropagate(bestVar, true) {
				return
			}
		} else if bestCover < 0 && bestVar == 0 {
			continue // clause got satisfied by the negative-literal move
		}
	}
}

func (s *solver) record() {
	cost := s.costNow
	if s.foundAny && cost >= s.bestCost {
		return
	}
	s.foundAny = true
	s.bestCost = cost
	asn := make([]bool, s.f.numVars+1)
	for v := 1; v <= s.f.numVars; v++ {
		asn[v] = s.state[v] == 1 // unassigned vars default to false
	}
	s.bestAsn = asn
}

// litLess orders branching literals: negative (free) first, then positive
// by preference rank, then by weight, then by static occurrence
// (descending), then by variable index.
func (s *solver) litLess(li, lj int) bool {
	ni, nj := li < 0, lj < 0
	if ni != nj {
		return ni
	}
	vi, vj := abs(li), abs(lj)
	if !ni { // both positive
		if s.prefRank[vi] != s.prefRank[vj] {
			return s.prefRank[vi] < s.prefRank[vj]
		}
		if s.weights != nil && s.weight(vi) != s.weight(vj) {
			return s.weight(vi) < s.weight(vj)
		}
		if s.posCount[vi] != s.posCount[vj] {
			return s.posCount[vi] > s.posCount[vj]
		}
	}
	return vi < vj
}

func (s *solver) search(depth int) {
	s.nodes++
	if s.nodes > s.maxNodes || s.work > s.maxWork {
		s.exhausted = true
		return
	}
	if s.cancel != nil && s.nodes%cancelCheckEvery == 0 && s.cancel() {
		s.exhausted = true
		return
	}
	if s.foundAny {
		margin := s.bestCost - s.costNow
		if margin <= 0 {
			return
		}
		if s.lowerBound(margin) >= margin {
			return
		}
	}
	ci := s.pickClause()
	if ci < 0 {
		s.record()
		return
	}
	// Collect the clause's unassigned literals into this depth's reusable
	// scratch slot (clauses are short, so the insertion sort below beats a
	// sort.Slice call — and neither allocates).
	if depth >= len(s.litsStack) {
		s.litsStack = append(s.litsStack, nil)
	}
	lits := s.litsStack[depth][:0]
	for _, l := range s.f.clauses[ci] {
		v := l
		if v < 0 {
			v = -v
		}
		if s.state[v] == 0 {
			lits = append(lits, l)
		}
	}
	for i := 1; i < len(lits); i++ {
		for j := i; j > 0 && s.litLess(lits[j], lits[j-1]); j-- {
			lits[j], lits[j-1] = lits[j-1], lits[j]
		}
	}
	s.litsStack[depth] = lits
	// Branch: literal i true, literals 0..i-1 false.
	for i, l := range lits {
		cp := s.mark()
		ok := true
		for _, prev := range lits[:i] {
			v, val := abs(prev), prev < 0 // falsify prev: v=true if prev was negative
			if s.state[v] != 0 {
				if (s.state[v] == 1) != val {
					ok = false
				}
			} else if !s.assignAndPropagate(v, val) {
				ok = false
			}
			if !ok {
				break
			}
		}
		if ok {
			v, val := abs(l), l > 0
			if s.state[v] != 0 {
				ok = (s.state[v] == 1) == val
			} else {
				ok = s.assignAndPropagate(v, val)
			}
			if ok {
				s.search(depth + 1)
			}
		}
		s.undoTo(cp)
		if s.exhausted {
			return
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
