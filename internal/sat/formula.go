// Package sat implements a deterministic Min-Ones-SAT solver: given a CNF
// formula, find a satisfying assignment mapping the minimum number of
// variables to true.
//
// The paper's Algorithm 1 negates the provenance formula of all possible
// delta tuples and feeds it to the Z3 optimizing SMT solver; this package is
// the offline substitution. It is exact when the branch-and-bound search
// completes within its node budget; when the budget runs out it returns the
// best satisfying assignment found so far (which still yields a stabilizing
// set, per the paper's remark that any satisfying assignment stabilizes the
// database).
package sat

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

// Formula is a CNF formula over variables 1..NumVars. Literals are signed
// integers: +v means "v is true", -v means "v is false". Duplicate clauses
// are stored once (delta-rule provenance frequently derives the same CNF
// clause from several rules or symmetric join orders); dedup hashes the
// sorted literal slice directly — no string keys are built on this path.
type Formula struct {
	numVars int
	clauses [][]int
	seen    map[uint64][]int32 // clause hash -> indexes of clauses with it
}

// NewFormula creates a formula over numVars variables.
func NewFormula(numVars int) *Formula {
	return &Formula{numVars: numVars}
}

// NumVars returns the number of variables.
func (f *Formula) NumVars() int { return f.numVars }

// NumClauses returns the number of stored clauses (tautologies are dropped
// at AddClause time).
func (f *Formula) NumClauses() int { return len(f.clauses) }

// AddVar adds a fresh variable and returns its 1-based index.
func (f *Formula) AddVar() int {
	f.numVars++
	return f.numVars
}

// AddClause adds a disjunction of literals. Duplicate literals are removed;
// tautological clauses (v ∨ ¬v) are dropped. An empty clause makes the
// formula unsatisfiable and is stored as such.
func (f *Formula) AddClause(lits ...int) error {
	seen := make(map[int]bool, len(lits))
	clause := make([]int, 0, len(lits))
	for _, l := range lits {
		v := l
		if v < 0 {
			v = -v
		}
		if l == 0 || v > f.numVars {
			return fmt.Errorf("sat: literal %d out of range (numVars=%d)", l, f.numVars)
		}
		if seen[-l] {
			return nil // tautology: always satisfied
		}
		if !seen[l] {
			seen[l] = true
			clause = append(clause, l)
		}
	}
	sort.Ints(clause)
	if f.seen == nil {
		f.seen = make(map[uint64][]int32)
	}
	h := hashLits(clause)
	for _, ci := range f.seen[h] {
		if slices.Equal(f.clauses[ci], clause) {
			return nil // duplicate clause
		}
	}
	f.seen[h] = append(f.seen[h], int32(len(f.clauses)))
	f.clauses = append(f.clauses, clause)
	return nil
}

// hashLits is an FNV-1a hash over a sorted literal slice.
func hashLits(lits []int) uint64 {
	h := uint64(14695981039346656037)
	for _, l := range lits {
		x := uint64(uint32(int32(l)))
		for i := 0; i < 4; i++ {
			h ^= x & 0xff
			h *= 1099511628211
			x >>= 8
		}
	}
	return h
}

// Clause returns the i-th stored clause (shared slice; do not mutate).
func (f *Formula) Clause(i int) []int { return f.clauses[i] }

// Eval reports whether the assignment (1-based; assignment[v] is v's value)
// satisfies every clause.
func (f *Formula) Eval(assignment []bool) bool {
	for _, c := range f.clauses {
		ok := false
		for _, l := range c {
			if l > 0 && assignment[l] || l < 0 && !assignment[-l] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// CountOnes returns the number of true variables in the assignment.
func CountOnes(assignment []bool) int {
	n := 0
	for _, b := range assignment {
		if b {
			n++
		}
	}
	return n
}

// DIMACS renders the formula in DIMACS CNF format (for debugging and for
// feeding external solvers).
func (f *Formula) DIMACS() string {
	var b strings.Builder
	fmt.Fprintf(&b, "p cnf %d %d\n", f.numVars, len(f.clauses))
	for _, c := range f.clauses {
		for _, l := range c {
			fmt.Fprintf(&b, "%d ", l)
		}
		b.WriteString("0\n")
	}
	return b.String()
}
