package sat

import (
	"math/rand"
	"strings"
	"testing"
)

// bruteMinOnes computes the exact Min-Ones cost by enumerating all 2^n
// assignments; -1 when unsatisfiable. Only usable for small n.
func bruteMinOnes(f *Formula) int {
	n := f.NumVars()
	best := -1
	asn := make([]bool, n+1)
	for mask := 0; mask < 1<<n; mask++ {
		ones := 0
		for v := 1; v <= n; v++ {
			asn[v] = mask&(1<<(v-1)) != 0
			if asn[v] {
				ones++
			}
		}
		if f.Eval(asn) && (best < 0 || ones < best) {
			best = ones
		}
	}
	return best
}

func TestMinOnesTrivial(t *testing.T) {
	f := NewFormula(2)
	// (x1) ∧ (¬x2): forced x1=true, x2=false.
	if err := f.AddClause(1); err != nil {
		t.Fatal(err)
	}
	if err := f.AddClause(-2); err != nil {
		t.Fatal(err)
	}
	res := MinOnes(f, Options{})
	if !res.Satisfiable || !res.Optimal {
		t.Fatalf("result = %+v", res)
	}
	if res.Cost != 1 || !res.Assignment[1] || res.Assignment[2] {
		t.Fatalf("assignment = %v cost = %d", res.Assignment, res.Cost)
	}
}

func TestMinOnesEmptyClauseUnsat(t *testing.T) {
	f := NewFormula(1)
	if err := f.AddClause(); err != nil {
		t.Fatal(err)
	}
	res := MinOnes(f, Options{})
	if res.Satisfiable {
		t.Fatal("empty clause should be unsatisfiable")
	}
}

func TestMinOnesConflictUnsat(t *testing.T) {
	f := NewFormula(1)
	f.AddClause(1)
	f.AddClause(-1)
	res := MinOnes(f, Options{})
	if res.Satisfiable {
		t.Fatal("x ∧ ¬x should be unsatisfiable")
	}
}

func TestMinOnesNoClausesAllFalse(t *testing.T) {
	f := NewFormula(3)
	res := MinOnes(f, Options{})
	if !res.Satisfiable || res.Cost != 0 {
		t.Fatalf("empty formula should cost 0, got %+v", res)
	}
}

func TestMinOnesPrefersFalse(t *testing.T) {
	// (x1 ∨ ¬x2): both satisfiable with zero ones via x2=false.
	f := NewFormula(2)
	f.AddClause(1, -2)
	res := MinOnes(f, Options{})
	if res.Cost != 0 {
		t.Fatalf("cost = %d, want 0", res.Cost)
	}
}

func TestMinOnesVertexCoverPath(t *testing.T) {
	// Path graph 1-2-3-4: clauses (x1∨x2)(x2∨x3)(x3∨x4).
	// Minimum vertex cover = {2, 3}, cost 2.
	f := NewFormula(4)
	f.AddClause(1, 2)
	f.AddClause(2, 3)
	f.AddClause(3, 4)
	res := MinOnes(f, Options{})
	if res.Cost != 2 || !res.Optimal {
		t.Fatalf("path cover: %+v", res)
	}
	if !res.Assignment[2] || !res.Assignment[3] {
		t.Fatalf("expected {2,3} cover, got %v", res.Assignment)
	}
}

func TestMinOnesVertexCoverStar(t *testing.T) {
	// Star: center 1 connected to 2..6. Minimum cover = {1}.
	f := NewFormula(6)
	for v := 2; v <= 6; v++ {
		f.AddClause(1, v)
	}
	res := MinOnes(f, Options{})
	if res.Cost != 1 || !res.Assignment[1] {
		t.Fatalf("star cover: %+v", res)
	}
}

func TestMinOnesCascadeImplications(t *testing.T) {
	// x1 forced; implications x1→x2→x3→x4 encoded as (¬x_i ∨ x_{i+1}).
	// All four must be true: exactly the shape of cascade-deletion CNF.
	f := NewFormula(4)
	f.AddClause(1)
	f.AddClause(-1, 2)
	f.AddClause(-2, 3)
	f.AddClause(-3, 4)
	res := MinOnes(f, Options{})
	if res.Cost != 4 || !res.Optimal {
		t.Fatalf("cascade: %+v", res)
	}
}

func TestMinOnesChoiceVsCascade(t *testing.T) {
	// The running-example shape (Example 5.1): deleting g2 is forced; then
	// per author either the author or the authgrant link must go.
	//   (g) ∧ (a1 ∨ l1 ∨ ¬g) ∧ (a2 ∨ l2 ∨ ¬g)
	// Wait: the paper's negated provenance is (¬g2)∧(¬a2∨¬ag2∨g2)... with
	// deletion variables the clause is (g) ∧ (a1 ∨ l1) ∧ (a2 ∨ l2) after g
	// fixed true; minimum = 3 (g plus one per author).
	f := NewFormula(5) // g=1, a1=2, l1=3, a2=4, l2=5
	f.AddClause(1)
	f.AddClause(2, 3, -1)
	f.AddClause(4, 5, -1)
	res := MinOnes(f, Options{})
	if res.Cost != 3 {
		t.Fatalf("choice cost = %d, want 3", res.Cost)
	}
}

func TestMinOnesPreferSteersTies(t *testing.T) {
	// (x1 ∨ x2): both optima cost 1. Preference picks the winner.
	for _, pref := range [][]int{{1}, {2}} {
		f := NewFormula(2)
		f.AddClause(1, 2)
		res := MinOnes(f, Options{Prefer: pref})
		if res.Cost != 1 {
			t.Fatalf("cost = %d", res.Cost)
		}
		if !res.Assignment[pref[0]] {
			t.Fatalf("prefer %v: assignment %v should set x%d", pref, res.Assignment, pref[0])
		}
	}
}

func TestMinOnesAgainstBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		n := 3 + rng.Intn(8) // 3..10 vars
		f := NewFormula(n)
		m := 1 + rng.Intn(3*n)
		for c := 0; c < m; c++ {
			k := 1 + rng.Intn(3)
			lits := make([]int, 0, k)
			for i := 0; i < k; i++ {
				v := 1 + rng.Intn(n)
				if rng.Intn(2) == 0 {
					v = -v
				}
				lits = append(lits, v)
			}
			if err := f.AddClause(lits...); err != nil {
				t.Fatal(err)
			}
		}
		want := bruteMinOnes(f)
		res := MinOnes(f, Options{})
		if want < 0 {
			if res.Satisfiable {
				t.Fatalf("iter %d: solver found solution for unsat formula\n%s", iter, f.DIMACS())
			}
			continue
		}
		if !res.Satisfiable {
			t.Fatalf("iter %d: solver missed solution, brute force found cost %d\n%s", iter, want, f.DIMACS())
		}
		if !res.Optimal {
			t.Fatalf("iter %d: budget exhausted on tiny formula", iter)
		}
		if res.Cost != want {
			t.Fatalf("iter %d: cost = %d, brute force = %d\n%s", iter, res.Cost, want, f.DIMACS())
		}
		if !f.Eval(res.Assignment) {
			t.Fatalf("iter %d: returned assignment does not satisfy formula", iter)
		}
		if CountOnes(res.Assignment) != res.Cost {
			t.Fatalf("iter %d: cost %d mismatches assignment ones %d", iter, res.Cost, CountOnes(res.Assignment))
		}
	}
}

func TestMinOnesBudgetExhaustionStillSatisfies(t *testing.T) {
	// A larger random instance with a tiny node budget: the solver must
	// still return some satisfying assignment, just not prove optimality.
	rng := rand.New(rand.NewSource(7))
	n := 60
	f := NewFormula(n)
	for c := 0; c < 150; c++ {
		a, b := 1+rng.Intn(n), 1+rng.Intn(n)
		f.AddClause(a, b) // all-positive 2-clauses: always satisfiable
	}
	res := MinOnes(f, Options{MaxNodes: 50})
	if !res.Satisfiable {
		t.Fatal("budget-limited search must still return its first descent solution")
	}
	if !f.Eval(res.Assignment) {
		t.Fatal("assignment does not satisfy formula")
	}
}

func TestMinOnesLargeForcedChain(t *testing.T) {
	// 20k-variable implication chain: exercises iterative propagation depth
	// and trail handling at cascade scale (programs 16-20 shape).
	n := 20000
	f := NewFormula(n)
	f.AddClause(1)
	for v := 1; v < n; v++ {
		f.AddClause(-v, v+1)
	}
	res := MinOnes(f, Options{})
	if !res.Satisfiable || res.Cost != n {
		t.Fatalf("chain: cost = %d, want %d (sat=%v)", res.Cost, n, res.Satisfiable)
	}
	if !res.Optimal {
		t.Fatal("forced chain should be proven optimal by propagation")
	}
}

func TestFormulaAPI(t *testing.T) {
	f := NewFormula(2)
	v := f.AddVar()
	if v != 3 || f.NumVars() != 3 {
		t.Fatalf("AddVar = %d, NumVars = %d", v, f.NumVars())
	}
	if err := f.AddClause(4); err == nil {
		t.Fatal("out-of-range literal should error")
	}
	if err := f.AddClause(0); err == nil {
		t.Fatal("zero literal should error")
	}
	// Tautology dropped.
	if err := f.AddClause(1, -1); err != nil {
		t.Fatal(err)
	}
	if f.NumClauses() != 0 {
		t.Fatalf("tautology stored: %d clauses", f.NumClauses())
	}
	// Duplicate literals deduped.
	f.AddClause(1, 1, 2)
	if got := f.Clause(0); len(got) != 2 {
		t.Fatalf("dedup failed: %v", got)
	}
	d := f.DIMACS()
	if !strings.HasPrefix(d, "p cnf 3 1\n") || !strings.Contains(d, "1 2 0") {
		t.Fatalf("DIMACS = %q", d)
	}
}
