package sat

// Solution is one satisfying assignment found during an enumeration.
type Solution struct {
	// Assignment holds variable values (index 1..NumVars; index 0 unused).
	Assignment []bool
	// Cost is the number of true variables in Assignment.
	Cost int
	// WeightedCost is the objective value under Options.Weights (equal to
	// Cost under uniform weights).
	WeightedCost int64
	// Optimal reports whether this solution's search proved it minimal
	// among the solutions not blocked before it.
	Optimal bool
	// Nodes is the node count of the search that found this solution.
	Nodes int64
}

// EnumResult reports a blocking-clause enumeration.
type EnumResult struct {
	// Solutions lists distinct solutions in nondecreasing (weighted) cost
	// order. While Optimal holds, every solution is set-minimal: a
	// non-minimal solution is a strict superset of some cheaper minimal one
	// (weights are ≥ 1), which is found first and whose blocking clause
	// then excludes all its supersets.
	Solutions []Solution
	// Complete reports that the enumeration provably exhausted the space:
	// the final search was unsatisfiable, or — with minCostOnly — proved
	// the next-best cost exceeds the minimum. False when the enumeration
	// stopped at k solutions or on an exhausted node budget.
	Complete bool
	// Optimal reports whether every search proved optimality. False means
	// some node budget ran out: the last solution (and the cost order near
	// it) is best-effort.
	Optimal bool
	// Nodes totals search nodes across all searches.
	Nodes int64
}

// EnumerateMinOnes enumerates up to k satisfying assignments of f in
// nondecreasing (weighted) cost order by iterating MinOnes with blocking
// clauses: after each solution with true-set T, the clause (∨_{v∈T} ¬v) is
// added to f, excluding T and every superset of T from later searches. The
// first search is exactly MinOnes(f, opts), so k=1 reproduces the single
// solve byte for byte. When minCostOnly is set, only solutions tied with
// the first (minimum) cost are returned, and the enumeration reports
// Complete as soon as a search proves the next-best cost exceeds it.
//
// Every search runs under opts anew, so the total node budget is at most
// k+1 times the per-search budget. A budget-exhausted search contributes
// its best-effort solution and stops the enumeration with Optimal=false:
// continuing would yield solutions in unproven order.
//
// f is mutated: the blocking clauses remain after the call. The whole
// enumeration is deterministic.
func EnumerateMinOnes(f *Formula, k int, minCostOnly bool, opts Options) EnumResult {
	if k < 1 {
		k = 1
	}
	out := EnumResult{Optimal: true}
	for len(out.Solutions) < k {
		solved := MinOnes(f, opts)
		out.Nodes += solved.Nodes
		if !solved.Optimal {
			out.Optimal = false
		}
		if !solved.Satisfiable {
			// No further solutions — provably, unless the search was cut
			// off before it could find (or rule out) one.
			out.Complete = solved.Optimal
			return out
		}
		if minCostOnly && len(out.Solutions) > 0 && solved.WeightedCost > out.Solutions[0].WeightedCost {
			// The next-best solution costs strictly more: the minimum-cost
			// band is exhausted iff the search proved that minimum.
			out.Complete = solved.Optimal
			return out
		}
		out.Solutions = append(out.Solutions, Solution{
			Assignment:   solved.Assignment,
			Cost:         solved.Cost,
			WeightedCost: solved.WeightedCost,
			Optimal:      solved.Optimal,
			Nodes:        solved.Nodes,
		})
		if !solved.Optimal {
			return out
		}
		// Block this solution and all its supersets. An all-false solution
		// yields the empty clause, making f unsatisfiable — correct: the
		// empty set is a subset of everything, so no other set-minimal
		// solution exists.
		lits := make([]int, 0, solved.Cost)
		for v := 1; v < len(solved.Assignment); v++ {
			if solved.Assignment[v] {
				lits = append(lits, -v)
			}
		}
		if err := f.AddClause(lits...); err != nil {
			// Unreachable: the literals come from f's own variables. Report
			// a truncated enumeration rather than panic.
			out.Optimal = false
			return out
		}
	}
	return out
}
